// Package cadel is the public API of the CADEL home server — a
// reproduction of "Framework and Rule-based Language for Facilitating
// Context-aware Computing using Information Appliances" (Nishigaki et al.,
// ICDCS 2005).
//
// A Server ties the framework's five modules together (Fig. 3 of the
// paper): the rule description support module (lexicon + lookup service),
// the CADEL rule database, the consistency & conflict check module, the
// rule execution module, and the UPnP communication interface. Since the
// fleet subsystem landed, a Server is a thin single-home client of a
// fleet.Hub: the rule database, priority table and execution engine live in
// the hub's one home, and the Server contributes what is inherently local —
// UPnP discovery, event subscriptions, the lookup service, and action
// dispatch to the discovered appliances. Multi-home deployments use
// internal/fleet's Hub directly (cmd/homeserver -fleet).
//
// Typical use:
//
//	network := cadel.NewNetwork()
//	hm, _ := home.New(network, home.DefaultConfig())   // virtual appliances
//	srv, _ := cadel.NewServer(network, cadel.WithClock(hm.Clock.Now))
//	defer srv.Close()
//	srv.RegisterUser("tom")
//	srv.DiscoverDevices(500 * time.Millisecond)
//	res, _ := srv.Submit("If hot and stuffy, turn on the air conditioner "+
//	    "with 25 degrees of temperature setting.", "tom")
package cadel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/lookup"
	"repro/internal/upnp"
	"repro/internal/vocab"
)

// Re-exported building blocks so applications only import this package.
type (
	// Network is the simulated LAN segment devices and the server share.
	Network = upnp.Network
	// Rule is a compiled CADEL rule object.
	Rule = core.Rule
	// DeviceRef identifies a rule's target device.
	DeviceRef = core.DeviceRef
	// Context is the world snapshot conditions are evaluated against.
	Context = core.Context
	// Conflict pairs a new rule with an existing rule it can clash with.
	Conflict = conflict.Conflict
	// Fired is one dispatched action in the execution log.
	Fired = engine.Fired
	// Query selects devices in the lookup service.
	Query = lookup.Query
	// RemoteDevice is a discovered UPnP device.
	RemoteDevice = upnp.RemoteDevice
	// SubmitResult reports the outcome of registering a CADEL command.
	SubmitResult = fleet.Result
	// SymbolStats is the home's symbol-table and id-slice footprint.
	SymbolStats = engine.SymbolStats
	// CompactStats reports one symbol-compaction epoch.
	CompactStats = engine.CompactStats
)

// NewNetwork creates a LAN segment.
func NewNetwork() *Network { return upnp.NewNetwork() }

// Errors reported by the server (defined by the fleet subsystem).
var (
	// ErrInconsistent marks a rule whose condition can never hold; the
	// server refuses it so the user can fix the condition (Sect. 4.4).
	ErrInconsistent = fleet.ErrInconsistent
	// ErrUnknownUser marks a submission by an unregistered user.
	ErrUnknownUser = fleet.ErrUnknownUser
	// ErrForbidden marks a rule whose owner lacks the privilege for the
	// target device and action (the paper's future-work security check).
	ErrForbidden = fleet.ErrForbidden
)

// Option configures a Server.
type Option interface{ apply(*options) }

type options struct {
	now        func() time.Time
	eventTTL   time.Duration
	onFire     func(Fired)
	interval   bool
	fullScan   bool
	stringKeys bool
	perms      *auth.Store
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithClock supplies the time source (e.g. a simulation clock).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(o *options) { o.now = now })
}

// WithEventTTL sets how long arrival events ("alan got home from work")
// stay part of the context.
func WithEventTTL(ttl time.Duration) Option {
	return optionFunc(func(o *options) { o.eventTTL = ttl })
}

// WithOnFire installs a callback invoked after every dispatched action. It
// runs on the hub's shard goroutine; it must not call back into the Server.
func WithOnFire(fn func(Fired)) Option {
	return optionFunc(func(o *options) { o.onFire = fn })
}

// WithIntervalFastPath enables interval propagation instead of the simplex
// method for single-variable feasibility checks (an ablation of the paper's
// design; results are identical, see the benchmarks).
func WithIntervalFastPath() Option {
	return optionFunc(func(o *options) { o.interval = true })
}

// WithFullScanEngine makes the rule execution module re-evaluate every
// registered rule on every context change, as the paper's prototype does,
// instead of the default incremental evaluation that only re-checks rules
// whose condition dependencies were touched. Mostly useful as an oracle or
// baseline; results are identical (see the engine's equivalence tests).
func WithFullScanEngine() Option {
	return optionFunc(func(o *options) { o.fullScan = true })
}

// WithStringKeyedEngine makes the rule execution module evaluate on the
// retained string-keyed path — map-backed context, per-leaf name resolution,
// string dirty keys — instead of the default symbol-interned hot path.
// Mostly useful as an oracle or baseline; results are identical (see the
// engine's interned-equivalence tests).
func WithStringKeyedEngine() Option {
	return optionFunc(func(o *options) { o.stringKeys = true })
}

// WithPermissions installs a privilege store (the paper's future-work
// security mechanism): rule submissions are rejected when the owner lacks
// permission for the target device and action.
func WithPermissions(store *auth.Store) Option {
	return optionFunc(func(o *options) { o.perms = store })
}

// localHome is the id of the Server's single home inside its hub.
const localHome = "home"

// Server is the CADEL home server: a fleet.Hub scoped to one home, plus the
// UPnP communication interface and the lookup service.
type Server struct {
	hub    *fleet.Hub
	lex    *vocab.Lexicon
	cp     *upnp.ControlPoint
	lookup *lookup.Service

	mu     sync.Mutex
	unsubs []func() error
}

// NewServer starts a home server on the network.
func NewServer(network *Network, opts ...Option) (*Server, error) {
	o := options{now: time.Now, eventTTL: 4 * time.Hour}
	for _, opt := range opts {
		opt.apply(&o)
	}
	cp, err := upnp.NewControlPoint(network)
	if err != nil {
		return nil, err
	}
	lex := vocab.Default()
	s := &Server{
		lex:    lex,
		cp:     cp,
		lookup: lookup.New(lex),
	}
	hubOpts := []fleet.HubOption{
		fleet.WithShards(1),
		fleet.WithClock(o.now),
		fleet.WithEventTTL(o.eventTTL),
		fleet.WithLexiconFactory(func(string) *vocab.Lexicon { return lex }),
		fleet.WithDispatcher(func(_ string, ref core.DeviceRef, action core.Action) error {
			return s.dispatch(ref, action)
		}),
	}
	if o.onFire != nil {
		fn := o.onFire
		hubOpts = append(hubOpts, fleet.WithOnFire(func(_ string, f Fired) { fn(f) }))
	}
	if o.fullScan {
		hubOpts = append(hubOpts, fleet.WithFullScan())
	}
	if o.stringKeys {
		hubOpts = append(hubOpts, fleet.WithStringKeys())
	}
	if o.interval {
		hubOpts = append(hubOpts, fleet.WithIntervalFeasibility())
	}
	if o.perms != nil {
		perms := o.perms
		hubOpts = append(hubOpts, fleet.WithAuthorizer(
			func(_, owner string, ref core.DeviceRef, verb string) bool {
				return perms.Allowed(owner, ref, verb)
			}))
	}
	s.hub, err = fleet.NewHub(hubOpts...)
	if err != nil {
		_ = cp.Close()
		return nil, err
	}
	return s, nil
}

// Close stops the server, its subscriptions and its hub.
func (s *Server) Close() error {
	s.mu.Lock()
	unsubs := s.unsubs
	s.unsubs = nil
	s.mu.Unlock()
	for _, u := range unsubs {
		_ = u()
	}
	err := s.cp.Close()
	if herr := s.hub.Close(); err == nil {
		err = herr
	}
	return err
}

// ---- users ----

// RegisterUser adds a home user with optional favourite keywords (used by
// "my favorite movie is on air").
func (s *Server) RegisterUser(name string, favorites ...string) error {
	return s.hub.RegisterUser(localHome, name, favorites...)
}

// Users returns the registered users.
func (s *Server) Users() []string {
	users, _ := s.hub.Users(localHome)
	return users
}

// ---- devices ----

// DiscoverDevices searches the network and subscribes to the events of every
// discovered device. It returns the number of known devices.
func (s *Server) DiscoverDevices(window time.Duration) (int, error) {
	devices := s.cp.Search(upnp.TargetAll, window)
	var firstErr error
	for _, rd := range devices {
		if err := s.watch(rd); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return len(devices), firstErr
}

// watch subscribes to all services of a device and feeds events to the hub.
// Ingestion is asynchronous, but the hub's mailbox is FIFO per home: any
// Server call made after a subscription callback returns observes the event.
func (s *Server) watch(rd *upnp.RemoteDevice) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, svc := range rd.Services {
		rd := rd
		cancel, err := s.cp.Subscribe(rd, svc.ServiceType, func(vars map[string]string) {
			_ = s.hub.PostEvent(localHome, rd.DeviceType, rd.FriendlyName, rd.Location, vars)
		})
		if err != nil {
			return fmt.Errorf("cadel: watch %s/%s: %w", rd.FriendlyName, svc.ServiceType, err)
		}
		s.unsubs = append(s.unsubs, cancel)
	}
	return nil
}

// Devices returns the discovered devices.
func (s *Server) Devices() []*RemoteDevice { return s.cp.Devices() }

// FindDevice retrieves one device by friendly name over the network
// (the paper's E1a operation).
func (s *Server) FindDevice(name string, window time.Duration) (*RemoteDevice, error) {
	return s.cp.FindByName(name, window)
}

// Find runs a lookup query over the discovered devices (Figs. 5-6).
func (s *Server) Find(q Query) []*RemoteDevice {
	return s.lookup.Find(s.cp.Devices(), q)
}

// AllowedVerbs lists the actions a device accepts.
func (s *Server) AllowedVerbs(rd *RemoteDevice) []string { return s.lookup.AllowedVerbs(rd) }

// WordsFor lists user-defined words involving the device's sensors.
func (s *Server) WordsFor(rd *RemoteDevice) []string { return s.lookup.WordsFor(rd) }

// ---- rule registration ----

// Submit parses and registers one CADEL command for the owner: a rule
// definition, a condition-word definition or a configuration-word
// definition. Rule submissions run the consistency check (inconsistent rules
// are rejected with ErrInconsistent) and the conflict check (conflicting
// rules are registered and reported so the user can set a priority order).
func (s *Server) Submit(source, owner string) (*SubmitResult, error) {
	return s.hub.Submit(localHome, source, owner)
}

// RemoveRule deletes a rule by id.
func (s *Server) RemoveRule(id string) error { return s.hub.RemoveRule(localHome, id) }

// Rules returns all registered rules in registration order.
func (s *Server) Rules() []*Rule {
	rules, _ := s.hub.Rules(localHome)
	return rules
}

// RulesByOwner returns one user's rules.
func (s *Server) RulesByOwner(owner string) []*Rule {
	rules, _ := s.hub.RulesByOwner(localHome, owner)
	return rules
}

// ExportRules serializes the rule database (Sect. 4.3(iv)).
func (s *Server) ExportRules() ([]byte, error) { return s.hub.ExportRules(localHome) }

// ImportRules loads rules exported by ExportRules, recompiling their CADEL
// sources against this server's lexicon.
func (s *Server) ImportRules(data []byte) (int, error) {
	return s.hub.ImportRules(localHome, data)
}

// SetPriority records a priority order for a device: users listed highest
// first, optionally attached to a context written in CADEL condition syntax
// ("alan got home from work"). An empty context makes it the device's
// default order (Sect. 3.2, Fig. 7).
func (s *Server) SetPriority(ref DeviceRef, users []string, contextSource string) error {
	return s.hub.SetPriority(localHome, ref, users, contextSource)
}

// PriorityOrders returns the orders applying to a device, contextual orders
// first. The slice is a cached snapshot shared with the priority table:
// treat it as read-only.
func (s *Server) PriorityOrders(ref DeviceRef) []conflict.Order {
	orders, _ := s.hub.PriorityOrders(localHome, ref)
	return orders
}

// ---- runtime ----

// Tick re-evaluates all rules at the current clock time. Call it after
// advancing a simulation clock.
func (s *Server) Tick() { _ = s.hub.Tick(localHome) }

// Log returns the executed-action log. The log is a bounded ring (the
// fleet's DefaultLogLimit, most recent entries kept), so a long-running
// server does not grow it without bound.
func (s *Server) Log() []Fired {
	log, _ := s.hub.Log(localHome)
	return log
}

// Snapshot returns a copy of the current context.
func (s *Server) Snapshot() *Context {
	ctx, _ := s.hub.Context(localHome)
	return ctx
}

// SymbolStats returns the home's symbol-table and id-slice footprint (zero
// before the first user or rule registration materializes the home).
func (s *Server) SymbolStats() SymbolStats {
	st, err := s.hub.HomeStats(localHome)
	if err != nil {
		return SymbolStats{}
	}
	return st.Symbols
}

// CompactSymbols forces a symbol-compaction epoch on the server's home:
// symbol ids orphaned by removed rules are reclaimed and the live ids
// renumbered densely. The engine also compacts automatically once enough
// ids are dead; this passthrough mirrors the fleet API's per-home compact
// endpoint. ok is false when there is nothing to compact (no home yet, or
// an oracle-mode engine).
func (s *Server) CompactSymbols() (CompactStats, bool) {
	st, compacted, err := s.hub.CompactHome(localHome)
	if err != nil {
		return CompactStats{}, false
	}
	return st, compacted
}

// Hub exposes the server's underlying single-home fleet hub.
func (s *Server) Hub() *fleet.Hub { return s.hub }

// dispatch routes a rule action to the matching discovered device.
func (s *Server) dispatch(ref core.DeviceRef, action core.Action) error {
	var target *upnp.RemoteDevice
	for _, rd := range s.cp.Devices() {
		if rd.FriendlyName != ref.Name {
			continue
		}
		if ref.Location != "" && rd.Location != "" && rd.Location != ref.Location {
			continue
		}
		target = rd
		break
	}
	if target == nil {
		return fmt.Errorf("cadel: no discovered device matches %s", ref)
	}
	return device.ApplyAction(s.cp, target, action)
}
