// Package cadel is the public API of the CADEL home server — a
// reproduction of "Framework and Rule-based Language for Facilitating
// Context-aware Computing using Information Appliances" (Nishigaki et al.,
// ICDCS 2005).
//
// A Server ties the framework's five modules together (Fig. 3 of the
// paper): the rule description support module (lexicon + lookup service),
// the CADEL rule database, the consistency & conflict check module, the
// rule execution module, and the UPnP communication interface.
//
// Typical use:
//
//	network := cadel.NewNetwork()
//	hm, _ := home.New(network, home.DefaultConfig())   // virtual appliances
//	srv, _ := cadel.NewServer(network, cadel.WithClock(hm.Clock.Now))
//	defer srv.Close()
//	srv.RegisterUser("tom")
//	srv.DiscoverDevices(500 * time.Millisecond)
//	res, _ := srv.Submit("If hot and stuffy, turn on the air conditioner "+
//	    "with 25 degrees of temperature setting.", "tom")
package cadel

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/lookup"
	"repro/internal/registry"
	"repro/internal/upnp"
	"repro/internal/vocab"
)

// Re-exported building blocks so applications only import this package.
type (
	// Network is the simulated LAN segment devices and the server share.
	Network = upnp.Network
	// Rule is a compiled CADEL rule object.
	Rule = core.Rule
	// DeviceRef identifies a rule's target device.
	DeviceRef = core.DeviceRef
	// Context is the world snapshot conditions are evaluated against.
	Context = core.Context
	// Conflict pairs a new rule with an existing rule it can clash with.
	Conflict = conflict.Conflict
	// Fired is one dispatched action in the execution log.
	Fired = engine.Fired
	// Query selects devices in the lookup service.
	Query = lookup.Query
	// RemoteDevice is a discovered UPnP device.
	RemoteDevice = upnp.RemoteDevice
)

// NewNetwork creates a LAN segment.
func NewNetwork() *Network { return upnp.NewNetwork() }

// Errors reported by the server.
var (
	// ErrInconsistent marks a rule whose condition can never hold; the
	// server refuses it so the user can fix the condition (Sect. 4.4).
	ErrInconsistent = errors.New("cadel: rule condition can never hold")
	// ErrUnknownUser marks a submission by an unregistered user.
	ErrUnknownUser = errors.New("cadel: unknown user")
	// ErrForbidden marks a rule whose owner lacks the privilege for the
	// target device and action (the paper's future-work security check).
	ErrForbidden = errors.New("cadel: user may not perform this action on this device")
)

// SubmitResult reports the outcome of registering a CADEL command.
type SubmitResult struct {
	// Rule is the registered rule object; nil for CondDef/ConfDef commands.
	Rule *Rule
	// DefinedWord is the new word for CondDef/ConfDef commands.
	DefinedWord string
	// Conflicts lists existing rules the new rule can conflict with. The
	// rule is registered regardless; the caller should present the list and
	// record a priority order (Fig. 7), e.g. via SetPriority.
	Conflicts []Conflict
}

// Option configures a Server.
type Option interface{ apply(*options) }

type options struct {
	now      func() time.Time
	eventTTL time.Duration
	onFire   func(Fired)
	interval bool
	fullScan bool
	perms    *auth.Store
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithClock supplies the time source (e.g. a simulation clock).
func WithClock(now func() time.Time) Option {
	return optionFunc(func(o *options) { o.now = now })
}

// WithEventTTL sets how long arrival events ("alan got home from work")
// stay part of the context.
func WithEventTTL(ttl time.Duration) Option {
	return optionFunc(func(o *options) { o.eventTTL = ttl })
}

// WithOnFire installs a callback invoked after every dispatched action.
func WithOnFire(fn func(Fired)) Option {
	return optionFunc(func(o *options) { o.onFire = fn })
}

// WithIntervalFastPath enables interval propagation instead of the simplex
// method for single-variable feasibility checks (an ablation of the paper's
// design; results are identical, see the benchmarks).
func WithIntervalFastPath() Option {
	return optionFunc(func(o *options) { o.interval = true })
}

// WithFullScanEngine makes the rule execution module re-evaluate every
// registered rule on every context change, as the paper's prototype does,
// instead of the default incremental evaluation that only re-checks rules
// whose condition dependencies were touched. Mostly useful as an oracle or
// baseline; results are identical (see the engine's equivalence tests).
func WithFullScanEngine() Option {
	return optionFunc(func(o *options) { o.fullScan = true })
}

// WithPermissions installs a privilege store (the paper's future-work
// security mechanism): rule submissions are rejected when the owner lacks
// permission for the target device and action.
func WithPermissions(store *auth.Store) Option {
	return optionFunc(func(o *options) { o.perms = store })
}

// Server is the CADEL home server.
type Server struct {
	lex        *vocab.Lexicon
	compiler   *core.Compiler
	db         *registry.DB
	priorities *conflict.Table
	checker    conflict.Checker
	engine     *engine.Engine
	cp         *upnp.ControlPoint
	lookup     *lookup.Service
	perms      *auth.Store
	now        func() time.Time

	mu      sync.Mutex
	users   []string
	unsubs  []func() error
	ruleSeq atomic.Uint64
}

// NewServer starts a home server on the network.
func NewServer(network *Network, opts ...Option) (*Server, error) {
	o := options{now: time.Now, eventTTL: 4 * time.Hour}
	for _, opt := range opts {
		opt.apply(&o)
	}
	cp, err := upnp.NewControlPoint(network)
	if err != nil {
		return nil, err
	}
	lex := vocab.Default()
	s := &Server{
		lex:        lex,
		compiler:   core.NewCompiler(lex),
		db:         registry.New(),
		priorities: conflict.NewTable(),
		checker:    conflict.Checker{UseIntervalFastPath: o.interval},
		cp:         cp,
		lookup:     lookup.New(lex),
		perms:      o.perms,
		now:        o.now,
	}
	engineOpts := []engine.Option{engine.WithEventTTL(o.eventTTL)}
	if o.onFire != nil {
		engineOpts = append(engineOpts, engine.WithOnFire(o.onFire))
	}
	if o.fullScan {
		engineOpts = append(engineOpts, engine.WithFullScan())
	}
	s.engine = engine.New(s.db, s.priorities, o.now, s.dispatch, engineOpts...)
	return s, nil
}

// Close stops the server and its subscriptions.
func (s *Server) Close() error {
	s.mu.Lock()
	unsubs := s.unsubs
	s.unsubs = nil
	s.mu.Unlock()
	for _, u := range unsubs {
		_ = u()
	}
	return s.cp.Close()
}

// ---- users ----

// RegisterUser adds a home user with optional favourite keywords (used by
// "my favorite movie is on air").
func (s *Server) RegisterUser(name string, favorites ...string) error {
	name = vocab.Normalize(name)
	if name == "" {
		return errors.New("cadel: empty user name")
	}
	if err := s.lex.Add(vocab.Entry{Phrase: name, Kind: vocab.KindPerson}); err != nil {
		return err
	}
	s.mu.Lock()
	s.users = append(s.users, name)
	users := append([]string(nil), s.users...)
	s.mu.Unlock()
	s.engine.SetUsers(users)
	if len(favorites) > 0 {
		s.engine.SetFavorites(name, favorites)
	}
	return nil
}

// Users returns the registered users.
func (s *Server) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.users...)
}

func (s *Server) isUser(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		if u == name {
			return true
		}
	}
	return false
}

// ---- devices ----

// DiscoverDevices searches the network and subscribes to the events of every
// discovered device. It returns the number of known devices.
func (s *Server) DiscoverDevices(window time.Duration) (int, error) {
	devices := s.cp.Search(upnp.TargetAll, window)
	var firstErr error
	for _, rd := range devices {
		if err := s.watch(rd); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return len(devices), firstErr
}

// watch subscribes to all services of a device and feeds events to the
// engine.
func (s *Server) watch(rd *upnp.RemoteDevice) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, svc := range rd.Services {
		rd := rd
		cancel, err := s.cp.Subscribe(rd, svc.ServiceType, func(vars map[string]string) {
			s.engine.HandleDeviceEvent(rd.DeviceType, rd.FriendlyName, rd.Location, vars)
		})
		if err != nil {
			return fmt.Errorf("cadel: watch %s/%s: %w", rd.FriendlyName, svc.ServiceType, err)
		}
		s.unsubs = append(s.unsubs, cancel)
	}
	return nil
}

// Devices returns the discovered devices.
func (s *Server) Devices() []*RemoteDevice { return s.cp.Devices() }

// FindDevice retrieves one device by friendly name over the network
// (the paper's E1a operation).
func (s *Server) FindDevice(name string, window time.Duration) (*RemoteDevice, error) {
	return s.cp.FindByName(name, window)
}

// Find runs a lookup query over the discovered devices (Figs. 5-6).
func (s *Server) Find(q Query) []*RemoteDevice {
	return s.lookup.Find(s.cp.Devices(), q)
}

// AllowedVerbs lists the actions a device accepts.
func (s *Server) AllowedVerbs(rd *RemoteDevice) []string { return s.lookup.AllowedVerbs(rd) }

// WordsFor lists user-defined words involving the device's sensors.
func (s *Server) WordsFor(rd *RemoteDevice) []string { return s.lookup.WordsFor(rd) }

// ---- rule registration ----

// Submit parses and registers one CADEL command for the owner: a rule
// definition, a condition-word definition or a configuration-word
// definition. Rule submissions run the consistency check (inconsistent rules
// are rejected with ErrInconsistent) and the conflict check (conflicting
// rules are registered and reported so the user can set a priority order).
func (s *Server) Submit(source, owner string) (*SubmitResult, error) {
	owner = vocab.Normalize(owner)
	if !s.isUser(owner) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, owner)
	}
	cmd, err := lang.Parse(source, s.lex)
	if err != nil {
		return nil, err
	}
	switch c := cmd.(type) {
	case *lang.CondDef:
		exprSource := c.Expr.String()
		// Validate the definition compiles before registering the word.
		if _, err := s.compiler.CompileCondExpr(c.Expr, owner); err != nil {
			return nil, err
		}
		if err := s.lex.DefineCondWord(c.Name, exprSource, owner); err != nil {
			return nil, err
		}
		return &SubmitResult{DefinedWord: vocab.Normalize(c.Name)}, nil
	case *lang.ConfDef:
		parts := make([]string, len(c.Confs))
		for i, item := range c.Confs {
			parts[i] = item.String()
		}
		confSource := joinAnd(parts)
		if err := s.lex.DefineConfWord(c.Name, confSource, owner); err != nil {
			return nil, err
		}
		return &SubmitResult{DefinedWord: vocab.Normalize(c.Name)}, nil
	case *lang.RuleDef:
		id := fmt.Sprintf("%s-%s", owner, strconv.FormatUint(s.ruleSeq.Add(1), 10))
		rule, err := s.compiler.CompileRule(c, id, owner)
		if err != nil {
			return nil, err
		}
		if s.perms != nil && !s.perms.Allowed(owner, rule.Device, rule.Action.Verb) {
			return nil, fmt.Errorf("%w: %s on %s by %s", ErrForbidden, rule.Action.Verb, rule.Device, owner)
		}
		ok, err := s.checker.Consistent(rule)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrInconsistent, rule.Cond)
		}
		candidates := s.db.SameDevice(rule.Device)
		conflicts, err := s.checker.FindConflicts(rule, candidates)
		if err != nil {
			return nil, err
		}
		if err := s.db.Add(rule); err != nil {
			return nil, err
		}
		s.engine.Tick()
		return &SubmitResult{Rule: rule, Conflicts: conflicts}, nil
	default:
		return nil, fmt.Errorf("cadel: unsupported command %T", cmd)
	}
}

func joinAnd(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " and "
		}
		out += p
	}
	return out
}

// RemoveRule deletes a rule by id.
func (s *Server) RemoveRule(id string) error { return s.db.Remove(id) }

// Rules returns all registered rules in registration order.
func (s *Server) Rules() []*Rule { return s.db.All() }

// RulesByOwner returns one user's rules.
func (s *Server) RulesByOwner(owner string) []*Rule {
	return s.db.ByOwner(vocab.Normalize(owner))
}

// ExportRules serializes the rule database (Sect. 4.3(iv)).
func (s *Server) ExportRules() ([]byte, error) { return s.db.Export() }

// ImportRules loads rules exported by ExportRules, recompiling their CADEL
// sources against this server's lexicon.
func (s *Server) ImportRules(data []byte) (int, error) {
	n, err := s.db.Import(data, func(source, id, owner string) (*core.Rule, error) {
		cmd, err := lang.Parse(source, s.lex)
		if err != nil {
			return nil, err
		}
		def, ok := cmd.(*lang.RuleDef)
		if !ok {
			return nil, fmt.Errorf("cadel: import: %q is not a rule", source)
		}
		return s.compiler.CompileRule(def, id, owner)
	})
	if n > 0 {
		s.engine.Tick()
	}
	return n, err
}

// SetPriority records a priority order for a device: users listed highest
// first, optionally attached to a context written in CADEL condition syntax
// ("alan got home from work"). An empty context makes it the device's
// default order (Sect. 3.2, Fig. 7).
func (s *Server) SetPriority(ref DeviceRef, users []string, contextSource string) error {
	order := conflict.Order{Device: ref, ContextSource: contextSource}
	for _, u := range users {
		order.Users = append(order.Users, vocab.Normalize(u))
	}
	if contextSource != "" {
		expr, err := lang.ParseCondExpr(contextSource, s.lex)
		if err != nil {
			return fmt.Errorf("cadel: priority context: %w", err)
		}
		cond, err := s.compiler.CompileCondExpr(expr, "")
		if err != nil {
			return fmt.Errorf("cadel: priority context: %w", err)
		}
		order.Context = cond
	}
	s.priorities.Set(order)
	s.engine.Tick()
	return nil
}

// PriorityOrders returns the orders applying to a device, contextual orders
// first.
func (s *Server) PriorityOrders(ref DeviceRef) []conflict.Order {
	return s.priorities.OrdersFor(ref)
}

// ---- runtime ----

// Tick re-evaluates all rules at the current clock time. Call it after
// advancing a simulation clock.
func (s *Server) Tick() { s.engine.Tick() }

// Log returns the executed-action log.
func (s *Server) Log() []Fired { return s.engine.Log() }

// Snapshot returns a copy of the current context.
func (s *Server) Snapshot() *Context { return s.engine.Context() }

// dispatch routes a rule action to the matching discovered device.
func (s *Server) dispatch(ref core.DeviceRef, action core.Action) error {
	var target *upnp.RemoteDevice
	for _, rd := range s.cp.Devices() {
		if rd.FriendlyName != ref.Name {
			continue
		}
		if ref.Location != "" && rd.Location != "" && rd.Location != ref.Location {
			continue
		}
		target = rd
		break
	}
	if target == nil {
		return fmt.Errorf("cadel: no discovered device matches %s", ref)
	}
	return device.ApplyAction(s.cp, target, action)
}
