package cadel

import (
	"testing"
)

// TestServerCompactSymbols covers the single-home passthrough of the fleet's
// per-home symbol compaction: register and remove rules, force an epoch,
// and check the footprint observability before and after.
func TestServerCompactSymbols(t *testing.T) {
	_, srv := newHomeServer(t)

	// Before any state exists... the home was materialized by RegisterUser
	// in newHomeServer, so stats are live but the table is untouched.
	if st := srv.SymbolStats(); st.Epoch != 0 {
		t.Fatalf("fresh server epoch = %d, want 0", st.Epoch)
	}

	res, err := srv.Submit("If temperature is higher than 28 degrees, turn on the air conditioner.", "tom")
	if err != nil {
		t.Fatal(err)
	}
	before := srv.SymbolStats()
	if before.Symbols == 0 {
		t.Fatal("no symbols after rule registration")
	}
	if err := srv.RemoveRule(res.Rule.ID); err != nil {
		t.Fatal(err)
	}
	if st := srv.SymbolStats(); st.DeadEstimate == 0 {
		t.Fatalf("dead estimate zero after removal: %+v", st)
	}

	cst, ok := srv.CompactSymbols()
	if !ok {
		t.Fatal("CompactSymbols refused")
	}
	if cst.Epoch != 1 || cst.After >= before.Symbols {
		t.Fatalf("compaction = %+v, want epoch 1 and fewer than %d symbols", cst, before.Symbols)
	}
	after := srv.SymbolStats()
	if after.Epoch != 1 || after.DeadEstimate != 0 {
		t.Fatalf("post-compaction stats = %+v", after)
	}

	// The server still registers and evaluates rules on the renumbered ids.
	if _, err := srv.Submit("If humidity is higher than 60 %, turn on the dehumidifier.", "tom"); err != nil {
		t.Fatal(err)
	}
}
