// Command homeserver runs the CADEL home server against the simulated home
// as an interactive shell: type CADEL commands to register rules and words,
// and colon-commands to drive the simulation.
//
//	$ homeserver
//	cadel> If hot and stuffy, turn on the air conditioner at the living room.
//	cadel> :arrive tom living room return-home
//	cadel> :climate living room 27 66
//	cadel> :tick 30m
//	cadel> :log
//
// Colon commands:
//
//	:users                          list registered users
//	:user NAME [favorite...]        register a user
//	:owner NAME                     set the submitting user
//	:devices                        list discovered devices
//	:find KEY=VALUE ...             lookup query (name=, location=, sensor=, verb=, word=, keyword=)
//	:verbs DEVICE                   allowed actions of a device
//	:arrive USER ROOM [EVENT]       user arrives
//	:leave USER                     user leaves home
//	:climate ROOM TEMP HUMID        override a room's climate
//	:dark ROOM on|off               override a room's darkness
//	:priority DEVICE u1>u2>... [CTX]  set a priority order
//	:tick DURATION                  advance the simulation clock (e.g. 30m)
//	:rules | :log | :export | :quit
//
// Multi-home mode: -fleet ADDR runs a sharded fleet hub instead of the
// single-home shell, serving the /fleet JSON API (submit rules, post sensor
// events, read per-home fired-action logs) for any number of homes:
//
//	$ homeserver -fleet :8090 -shards 8 -store ./fleet-db
//	$ curl -X POST localhost:8090/fleet/homes/alpha/users -d '{"name":"tom"}'
//	$ curl -X POST localhost:8090/fleet/homes/alpha/rules \
//	      -d '{"source":"Turn on the light at the hall.","owner":"tom"}'
//
// With -store the hub journals every home's rules to an append-only
// JSON-lines log and rehydrates them on restart; -store remote://host:port
// journals to a cmd/logserver record-log service instead (idempotent
// appends, retry/backoff, fail-closed degraded mode).
//
// In either mode -admin ADDR serves net/http/pprof on a separate listener
// (kept off the API address so diagnostics are never publicly routed):
//
//	$ homeserver -fleet :8090 -admin localhost:6060
//	$ go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -admin: profiling endpoints on a separate listener
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	cadel "repro"
	"repro/internal/fleet"
	"repro/internal/home"
	"repro/internal/httpapi"
	"repro/internal/ingest"
	"repro/internal/rawhttp"
	"repro/internal/ring"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	httpAddr := flag.String("http", "", "also serve the JSON API for interface devices (e.g. :8080)")
	fleetAddr := flag.String("fleet", "", "run in multi-home mode, serving the fleet JSON API on this address (e.g. :8090)")
	shards := flag.Int("shards", 0, "fleet mode: shard count (0 = one per CPU)")
	storeDir := flag.String("store", "", "fleet mode: persist rules to this directory (append-only JSONL), or to a remote log server with remote://host:port (see cmd/logserver)")
	workers := flag.Int("dispatch-workers", 4, "fleet mode: dispatch worker pool size")
	ingestRate := flag.Float64("ingest-rate", 0, "fleet mode: per-home event admission rate (events/sec, 0 = unlimited)")
	ingestBurst := flag.Float64("ingest-burst", 0, "fleet mode: per-home admission burst (0 = max(rate, 1))")
	ingestBacklog := flag.Int("ingest-backlog", 0, "fleet mode: shed events once a home's shard queue exceeds this depth (0 = never)")
	adminAddr := flag.String("admin", "", "serve net/http/pprof diagnostics on this address (e.g. localhost:6060); off by default")
	nodeAddr := flag.String("node", "", "fleet mode: this node's advertised ring address (host:port); defaults to the -fleet address")
	peersFlag := flag.String("peers", "", "fleet mode: comma-separated ring membership (host:port,...), or @FILE to read one address per line; empty = single-node ring")
	rawIngest := flag.String("raw-ingest", "", "fleet mode: also serve POST /fleet/homes/{home}/events on this address via the raw-socket HTTP/1.1 front end (e.g. :8091); admin/API routes stay on -fleet")
	flag.Parse()
	if *adminAddr != "" {
		// pprof registers its handlers on http.DefaultServeMux at import.
		// The admin listener is separate from the API listeners so profiling
		// endpoints are never exposed on the fleet or home API address.
		admin := &http.Server{
			Addr:              *adminAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin listener: %v", err)
			}
		}()
		fmt.Printf("admin: pprof at http://%s/debug/pprof/\n", *adminAddr)
	}
	if *fleetAddr != "" {
		limits := ingest.Limits{Rate: *ingestRate, Burst: *ingestBurst, MaxBacklog: *ingestBacklog}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		return runFleet(*fleetAddr, *shards, *storeDir, *workers, limits, *nodeAddr, peers, *rawIngest)
	}

	network := cadel.NewNetwork()
	hm, err := home.New(network, home.DefaultConfig())
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	srv, err := cadel.NewServer(network,
		cadel.WithClock(hm.Clock.Now),
		cadel.WithEventTTL(6*time.Hour),
		cadel.WithOnFire(func(f cadel.Fired) { fmt.Println("! " + f.String()) }),
	)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			return err
		}
	}
	if err := srv.RegisterUser("emily", "roman holiday"); err != nil {
		return err
	}
	n, err := srv.DiscoverDevices(700 * time.Millisecond)
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		api := &http.Server{Addr: *httpAddr, Handler: httpapi.New(srv)}
		go func() {
			if err := api.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http api: %v", err)
			}
		}()
		defer func() { _ = api.Close() }()
		fmt.Printf("interface-device API on http://%s/api/\n", *httpAddr)
	}
	fmt.Printf("cadel home server — %d devices discovered, users: %s\n",
		n, strings.Join(srv.Users(), ", "))
	fmt.Printf("clock: %s — type CADEL or :help\n", hm.Clock.Now().Format("15:04"))

	owner := "tom"
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("cadel> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":exit":
			return nil
		case strings.HasPrefix(line, ":"):
			if err := colon(hm, srv, &owner, line); err != nil {
				fmt.Println("error:", err)
			}
		default:
			res, err := srv.Submit(line, owner)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case res.DefinedWord != "":
				fmt.Printf("defined word %q\n", res.DefinedWord)
			default:
				fmt.Printf("registered rule %s\n", res.Rule.ID)
				for _, c := range res.Conflicts {
					fmt.Printf("  conflicts with %s (owner %s) — set a :priority\n",
						c.Existing.ID, c.Existing.Owner)
				}
			}
		}
		fmt.Print("cadel> ")
	}
	return sc.Err()
}

// runFleet serves the sharded multi-home hub over HTTP until the process
// receives SIGINT or SIGTERM. Homes are created on first touch through the
// API; fired actions are logged per home (no real appliances are attached in
// this mode).
//
// The hot POST-events route is served by the ingest fast path (zero-alloc
// decoder plus token-bucket/backlog admission control); every other route
// goes through the stock encoding/json handlers. On shutdown the HTTP
// listener drains in-flight requests first, then the hub quiesces its shards
// and flushes the store, so an orderly stop never loses accepted events or
// journal appends.
// parsePeers decodes -peers: a comma-separated list, or @FILE with one
// address per line (blank lines and #-comments ignored) — static membership
// for fleets managed by config file.
func parsePeers(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	if file, ok := strings.CutPrefix(spec, "@"); ok {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("read -peers file: %w", err)
		}
		var peers []string
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			peers = append(peers, line)
		}
		return peers, nil
	}
	var peers []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers, nil
}

func runFleet(addr string, shards int, storeDir string, workers int, limits ingest.Limits, nodeAddr string, peers []string, rawAddr string) error {
	opts := []fleet.HubOption{
		fleet.WithDispatchWorkers(workers),
		fleet.WithLogLimit(1024),
	}
	if shards > 0 {
		opts = append(opts, fleet.WithShards(shards))
	}
	if storeDir != "" {
		if host, ok := strings.CutPrefix(storeDir, "remote://"); ok {
			opts = append(opts, fleet.WithStore(fleet.OpenRemoteStore("http://"+host)))
		} else {
			st, err := fleet.OpenFileStore(storeDir)
			if err != nil {
				return err
			}
			opts = append(opts, fleet.WithStore(st))
		}
	}
	hub, err := fleet.NewHub(opts...)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }()
	st, err := hub.Stats()
	if err != nil {
		return err
	}

	sink := fleet.NewEventSink(hub, limits)
	inner := fleet.NewHTTPHandler(hub, fleet.WithEventSink(sink))

	// Every fleet process is a ring node, even alone: the node layer adds
	// /healthz, /readyz and /ring, and a single-node ring grows into a fleet
	// by POSTing a bigger membership to /ring/members.
	self := nodeAddr
	if self == "" {
		self = addr
	}
	if strings.HasPrefix(self, ":") {
		self = "localhost" + self
	}
	found := false
	for _, p := range peers {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		peers = append(peers, self)
	}
	node, err := ring.NewNode(ring.NodeConfig{Self: self, Hub: hub, Handler: inner, Peers: peers})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           node,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// The raw-socket event front end shares the net/http handler's sink, so
	// both transports draw on one admission budget and answer identically.
	var raw *rawhttp.Server
	rawErrc := make(chan error, 1)
	if rawAddr != "" {
		raw = fleet.NewRawIngest(hub, sink)
		go func() { rawErrc <- raw.ListenAndServe(rawAddr) }()
		rawDisplay := rawAddr
		if strings.HasPrefix(rawDisplay, ":") {
			rawDisplay = "localhost" + rawDisplay
		}
		fmt.Printf("raw ingest: POST http://%s/fleet/homes/{home}/events\n", rawDisplay)
	}

	display := addr
	if strings.HasPrefix(display, ":") {
		display = "localhost" + display
	}
	fmt.Printf("cadel fleet hub — %d shards, %d homes rehydrated, API at http://%s/fleet/\n",
		st.Shards, st.Homes, display)
	fmt.Printf("ring: node %s, members %s (probes at /healthz /readyz, status at /ring)\n",
		node.Self(), strings.Join(node.Ring().Members(), ","))
	if limits.Rate > 0 || limits.MaxBacklog > 0 {
		fmt.Printf("admission: rate %g ev/s, burst %g, max backlog %d\n",
			limits.Rate, limits.Burst, limits.MaxBacklog)
	}

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case err := <-rawErrc:
		return err // raw listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("\nshutting down...")
	// Flip readiness first so supervisors and load balancers stop routing
	// here while the listeners drain in-flight requests. The raw listener
	// drains through the same window: its keep-alive loops observe the
	// shutdown flag, answer the in-flight request with Connection: close,
	// and idle connections are poked awake — all before the hub quiesces,
	// so every accepted event still reaches its shard.
	node.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		_ = srv.Close()
		log.Printf("http shutdown: %v", err)
	}
	if raw != nil {
		if err := raw.Shutdown(shutCtx); err != nil {
			_ = raw.Close()
			log.Printf("raw ingest shutdown: %v", err)
		}
		if err := <-rawErrc; err != nil && !errors.Is(err, rawhttp.ErrServerClosed) {
			return err
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Drain the shards (accepted events finish evaluating) and flush the
	// store before the deferred Close tears the hub down.
	if err := hub.Quiesce(); err != nil {
		return err
	}
	return hub.Close()
}

func colon(hm *home.Home, srv *cadel.Server, owner *string, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":help":
		fmt.Println("commands: :users :user :owner :devices :find :verbs :arrive :leave :climate :dark :priority :tick :rules :log :export :quit")
		return nil
	case ":users":
		fmt.Println(strings.Join(srv.Users(), ", "))
		return nil
	case ":user":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :user NAME [favorite...]")
		}
		return srv.RegisterUser(fields[1], fields[2:]...)
	case ":owner":
		if len(fields) != 2 {
			return fmt.Errorf("usage: :owner NAME")
		}
		*owner = fields[1]
		return nil
	case ":devices":
		devs := srv.Devices()
		sort.Slice(devs, func(i, j int) bool { return devs[i].FriendlyName < devs[j].FriendlyName })
		for _, d := range devs {
			fmt.Printf("  %-20s %-12s %s\n", d.FriendlyName, d.Location, d.DeviceType)
		}
		return nil
	case ":find":
		var q cadel.Query
		for _, kv := range fields[1:] {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("want key=value, got %q", kv)
			}
			value = strings.ReplaceAll(value, "_", " ")
			switch key {
			case "name":
				q.Name = value
			case "location":
				q.Location = value
			case "sensor":
				q.SensorType = value
			case "verb":
				q.Verb = value
			case "word":
				q.Word = value
			case "keyword":
				q.Keyword = value
			default:
				return fmt.Errorf("unknown query key %q", key)
			}
		}
		for _, d := range srv.Find(q) {
			fmt.Printf("  %-20s %-12s words: %s\n",
				d.FriendlyName, d.Location, strings.Join(srv.WordsFor(d), ", "))
		}
		return nil
	case ":verbs":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :verbs DEVICE")
		}
		name := strings.Join(fields[1:], " ")
		rd, err := srv.FindDevice(name, time.Second)
		if err != nil {
			return err
		}
		fmt.Println(strings.Join(srv.AllowedVerbs(rd), ", "))
		return nil
	case ":arrive":
		if len(fields) < 3 {
			return fmt.Errorf("usage: :arrive USER ROOM... [EVENT]")
		}
		event := "return-home"
		roomWords := fields[2:]
		if last := roomWords[len(roomWords)-1]; strings.Contains(last, "-") {
			event = last
			roomWords = roomWords[:len(roomWords)-1]
		}
		return hm.Arrive(fields[1], strings.Join(roomWords, " "), event)
	case ":leave":
		if len(fields) != 2 {
			return fmt.Errorf("usage: :leave USER")
		}
		return hm.Leave(fields[1])
	case ":climate":
		if len(fields) < 4 {
			return fmt.Errorf("usage: :climate ROOM... TEMP HUMID")
		}
		temp, err1 := strconv.ParseFloat(fields[len(fields)-2], 64)
		humid, err2 := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad numbers in %q", line)
		}
		room := strings.Join(fields[1:len(fields)-2], " ")
		if err := hm.SetClimate(room, temp, humid); err != nil {
			return err
		}
		srv.Tick()
		return nil
	case ":dark":
		if len(fields) < 3 {
			return fmt.Errorf("usage: :dark ROOM... on|off")
		}
		on := fields[len(fields)-1] == "on"
		room := strings.Join(fields[1:len(fields)-1], " ")
		if err := hm.SetDark(room, on); err != nil {
			return err
		}
		srv.Tick()
		return nil
	case ":priority":
		if len(fields) < 3 {
			return fmt.Errorf("usage: :priority DEVICE u1>u2>... [CONTEXT...]")
		}
		// The users argument is the first field containing '>'.
		idx := -1
		for i := 2; i < len(fields); i++ {
			if strings.Contains(fields[i], ">") {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("no user order (u1>u2>...) given")
		}
		deviceName := strings.Join(fields[1:idx], " ")
		users := strings.Split(fields[idx], ">")
		context := strings.Join(fields[idx+1:], " ")
		return srv.SetPriority(cadel.DeviceRef{Name: deviceName}, users, context)
	case ":tick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: :tick DURATION (e.g. 30m)")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return err
		}
		if err := hm.Step(d); err != nil {
			return err
		}
		srv.Tick()
		fmt.Printf("clock: %s\n", hm.Clock.Now().Format("15:04"))
		return nil
	case ":rules":
		for _, r := range srv.Rules() {
			fmt.Printf("  %s\n", r)
		}
		return nil
	case ":log":
		for _, f := range srv.Log() {
			fmt.Printf("  %s\n", f)
		}
		return nil
	case ":export":
		data, err := srv.ExportRules()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	default:
		return fmt.Errorf("unknown command %q (:help)", fields[0])
	}
}
