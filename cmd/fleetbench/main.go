// Command fleetbench measures fleet-hub ingestion throughput across shard
// counts and writes the result as JSON, so CI can track the perf trajectory
// (BENCH_fleet.json).
//
//	$ fleetbench -homes 10000 -events 200000 -shards 1,4,16 -out BENCH_fleet.json
//
// Every home holds one user and one temperature rule; events sweep the homes
// round-robin with values that flip each rule's readiness, so a pass
// re-arbitrates and fires — the full hot path. The run ends when every shard
// has drained (hub.Quiesce), so the rate includes evaluation and dispatch,
// not just enqueueing. coalesce_factor is events per evaluation pass: > 1
// means bursts collapsed into shared passes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchwork"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ring"
	"repro/internal/vocab"
)

type shardResult struct {
	Shards         int     `json:"shards"`
	Seconds        float64 `json:"seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	CoalesceFactor float64 `json:"coalesce_factor"`
}

type migrationResult struct {
	Homes       int     `json:"homes"`
	Shards      int     `json:"shards"`
	Seconds     float64 `json:"seconds"`
	HomesPerSec float64 `json:"homes_per_sec"`
	// Gap is the per-home availability gap: the seal-to-release window in
	// which external posts answer 503 + Retry-After.
	GapAvgMs float64 `json:"gap_avg_ms"`
	GapP99Ms float64 `json:"gap_p99_ms"`
}

type report struct {
	Name      string           `json:"name"`
	Homes     int              `json:"homes"`
	Events    int              `json:"events"`
	Producers int              `json:"producers"`
	MaxProcs  int              `json:"maxprocs"`
	Results   []shardResult    `json:"results"`
	Migration *migrationResult `json:"migration,omitempty"`
}

func main() {
	homes := flag.Int("homes", 10000, "number of homes")
	events := flag.Int("events", 200000, "number of events to ingest per shard count")
	shardList := flag.String("shards", "1,4,16", "comma-separated shard counts")
	producers := flag.Int("producers", 4, "event producer goroutines")
	migrate := flag.Int("migrate", 64, "homes to migrate in the ring-migration sweep (0 = skip)")
	out := flag.String("out", "BENCH_fleet.json", "output file")
	flag.Parse()

	rep := report{
		Name:      "fleet-ingest",
		Homes:     *homes,
		Events:    *events,
		Producers: *producers,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, s := range strings.Split(*shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad shard count %q: %v", s, err)
		}
		res, err := run(*homes, *events, n, *producers)
		if err != nil {
			log.Fatal(err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("shards=%-3d %9.0f events/sec  (%.2fs, coalesce %.1f)\n",
			n, res.EventsPerSec, res.Seconds, res.CoalesceFactor)
	}
	if *migrate > 0 {
		mres, err := runMigration(*migrate, 4)
		if err != nil {
			log.Fatal(err)
		}
		rep.Migration = &mres
		fmt.Printf("migrate    %9.0f homes/sec  (gap avg %.2fms, p99 %.2fms)\n",
			mres.HomesPerSec, mres.GapAvgMs, mres.GapP99Ms)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runMigration measures ring migration: two in-process nodes on loopback
// listeners, the source seeded with the standard fleet workload, every home
// migrated to the target over the real transfer protocol. The availability
// gap per home is the seal-to-release window (posts answer 503 inside it).
func runMigration(homes, shards int) (migrationResult, error) {
	srcHub, ids, err := benchwork.BuildHub(homes, shards)
	if err != nil {
		return migrationResult{}, err
	}
	defer func() { _ = srcHub.Close() }()
	lex := vocab.Default()
	dstHub, err := fleet.NewHub(
		fleet.WithShards(shards),
		fleet.WithClock(func() time.Time { return benchwork.Epoch }),
		fleet.WithLexiconFactory(func(string) *vocab.Lexicon { return lex }),
		fleet.WithLogLimit(64),
	)
	if err != nil {
		return migrationResult{}, err
	}
	defer func() { _ = dstHub.Close() }()

	srcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return migrationResult{}, err
	}
	defer srcLn.Close()
	dstLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return migrationResult{}, err
	}
	defer dstLn.Close()
	peers := []string{srcLn.Addr().String(), dstLn.Addr().String()}

	srcNode, err := ring.NewNode(ring.NodeConfig{
		Self: peers[0], Hub: srcHub, Handler: fleet.NewHTTPHandler(srcHub), Peers: peers})
	if err != nil {
		return migrationResult{}, err
	}
	dstNode, err := ring.NewNode(ring.NodeConfig{
		Self: peers[1], Hub: dstHub, Handler: fleet.NewHTTPHandler(dstHub), Peers: peers})
	if err != nil {
		return migrationResult{}, err
	}
	go func() { _ = http.Serve(srcLn, srcNode) }()
	go func() { _ = http.Serve(dstLn, dstNode) }()

	gaps := make([]time.Duration, 0, homes)
	start := time.Now()
	for _, home := range ids {
		t0 := time.Now()
		if err := srcNode.Migrate(context.Background(), home, peers[1]); err != nil {
			return migrationResult{}, fmt.Errorf("fleetbench: migrate %s: %w", home, err)
		}
		gaps = append(gaps, time.Since(t0))
	}
	elapsed := time.Since(start)

	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	var sum time.Duration
	for _, g := range gaps {
		sum += g
	}
	p99i := (len(gaps) * 99) / 100
	if p99i >= len(gaps) {
		p99i = len(gaps) - 1
	}
	p99 := gaps[p99i]
	return migrationResult{
		Homes:       homes,
		Shards:      shards,
		Seconds:     elapsed.Seconds(),
		HomesPerSec: float64(homes) / elapsed.Seconds(),
		GapAvgMs:    float64(sum.Milliseconds()) / float64(len(gaps)),
		GapP99Ms:    float64(p99.Nanoseconds()) / 1e6,
	}, nil
}

func run(homes, events, shards, producers int) (shardResult, error) {
	// The hub and its seeded homes come from internal/benchwork — the same
	// workload the root package's BenchmarkFleetIngest drives — so the JSON
	// trend and `go test -bench` measure the same thing.
	hub, ids, err := benchwork.BuildHub(homes, shards)
	if err != nil {
		return shardResult{}, err
	}
	defer func() { _ = hub.Close() }()

	before, err := hub.Stats()
	if err != nil {
		return shardResult{}, err
	}

	var idx atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1)
				if i > uint64(events) {
					return
				}
				home := ids[i%uint64(homes)]
				if err := hub.PostEvent(home, device.TypeThermometer, "thermometer",
					"living room", map[string]string{"temperature": benchwork.FleetEventValue(i, homes)}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		// A failed producer means fewer events than configured were ingested;
		// publishing events/elapsed anyway would inflate the tracked number.
		return shardResult{}, fmt.Errorf("fleetbench: ingestion failed: %w", err)
	default:
	}
	if err := hub.Quiesce(); err != nil {
		return shardResult{}, err
	}
	elapsed := time.Since(start)

	st, err := hub.Stats()
	if err != nil {
		return shardResult{}, err
	}
	// Count only the event phase's passes; setup (submits, user ticks) ran
	// its own passes before the clock started.
	coalesce := 0.0
	if delta := st.Passes - before.Passes; delta > 0 {
		coalesce = float64(st.Events) / float64(delta)
	}
	return shardResult{
		Shards:         shards,
		Seconds:        elapsed.Seconds(),
		EventsPerSec:   float64(events) / elapsed.Seconds(),
		CoalesceFactor: coalesce,
	}, nil
}
