// Command ingestbench measures wire-level event ingestion throughput over a
// real TCP socket — the stock encoding/json handler, the ingest fast path
// behind net/http, and the raw-socket front end — and exercises admission
// control under deliberate overload, writing the result as JSON so CI can
// track the perf trajectory (BENCH_ingest.json).
//
//	$ ingestbench -homes 256 -events 100000 -shards 4 -out BENCH_ingest.json
//
// All modes serve the event route on a loopback listener and replay the
// identical body stream (temperatures alternating across the rule threshold,
// so every event flips readiness and the full evaluate/arbitrate/dispatch
// path runs) through the same hand-rolled keep-alive client — prebuilt
// request bytes out, pipelined when depth > 1, responses counted in place —
// so the client costs the same everywhere and the measured difference is the
// server. The run ends when every shard has drained (hub.Quiesce), so the
// rate includes evaluation, not just acks. The saturation phase floods one
// home past a configured admission rate and verifies over-budget posts shed
// with 429 + Retry-After while an in-budget home on the same shard is served.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchwork"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ingest"
)

type modeResult struct {
	Mode         string  `json:"mode"`     // "baseline", "fast", or "raw"
	Pipeline     int     `json:"pipeline"` // requests in flight per connection
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type saturationResult struct {
	RateLimit      float64 `json:"rate_limit"`
	Burst          float64 `json:"burst"`
	FloodPosted    int     `json:"flood_posted"`
	FloodAdmitted  int     `json:"flood_admitted"`
	FloodShed      int     `json:"flood_shed"`
	CalmPosted     int     `json:"calm_posted"`
	CalmAdmitted   int     `json:"calm_admitted"`
	RetryAfterSeen bool    `json:"retry_after_seen"`
	ShedRate       uint64  `json:"shed_rate"`
	ShedBacklog    uint64  `json:"shed_backlog"`
}

type report struct {
	Name          string            `json:"name"`
	GeneratedUnix int64             `json:"generated_unix"`
	Meta          benchwork.RunMeta `json:"meta"`
	Homes         int               `json:"homes"`
	Events        int               `json:"events"`
	Shards        int               `json:"shards"`
	Producers     int               `json:"producers"`
	MaxProcs      int               `json:"maxprocs"`
	Results       []modeResult      `json:"results"`
	Speedup       float64           `json:"speedup"`     // fast over baseline, depth 1
	RawSpeedup    float64           `json:"raw_speedup"` // raw over baseline, depth 1
	Saturation    saturationResult  `json:"saturation"`
}

func main() {
	homes := flag.Int("homes", 256, "number of homes")
	events := flag.Int("events", 100000, "number of events to post per mode")
	shards := flag.Int("shards", 4, "hub shard count")
	producers := flag.Int("producers", 4, "client connections")
	depths := flag.String("depths", "1,16", "comma-separated pipeline depths to sweep")
	rate := flag.Float64("sat-rate", 50, "saturation phase: admission rate (events/sec)")
	burst := flag.Float64("sat-burst", 10, "saturation phase: admission burst")
	flood := flag.Int("sat-flood", 500, "saturation phase: posts from the over-budget home")
	out := flag.String("out", "BENCH_ingest.json", "output file")
	flag.Parse()

	var sweep []int
	for _, f := range bytes.Split([]byte(*depths), []byte(",")) {
		var d int
		if _, err := fmt.Sscanf(string(f), "%d", &d); err != nil || d < 1 {
			log.Fatalf("bad -depths entry %q", f)
		}
		sweep = append(sweep, d)
	}

	rep := report{
		Name:          "wire-ingest",
		GeneratedUnix: time.Now().Unix(),
		Meta:          benchwork.NewRunMeta(),
		Homes:         *homes,
		Events:        *events,
		Shards:        *shards,
		Producers:     *producers,
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	perSec := map[string]float64{} // "mode/depth" → events/sec
	for _, mode := range []string{"baseline", "fast", "raw"} {
		for _, depth := range sweep {
			res, err := runWire(mode, depth, *homes, *events, *shards, *producers)
			if err != nil {
				log.Fatal(err)
			}
			rep.Results = append(rep.Results, res)
			perSec[fmt.Sprintf("%s/%d", mode, depth)] = res.EventsPerSec
			fmt.Printf("%-8s depth %-3d %9.0f events/sec  (%.2fs)\n",
				mode, depth, res.EventsPerSec, res.Seconds)
		}
	}
	d0 := fmt.Sprintf("/%d", sweep[0])
	rep.Speedup = perSec["fast"+d0] / perSec["baseline"+d0]
	rep.RawSpeedup = perSec["raw"+d0] / perSec["baseline"+d0]
	fmt.Printf("speedup  fast %.2fx  raw %.2fx (over baseline, depth %d)\n",
		rep.Speedup, rep.RawSpeedup, sweep[0])

	sat, err := runSaturation(*rate, *burst, *flood)
	if err != nil {
		log.Fatal(err)
	}
	rep.Saturation = sat
	fmt.Printf("saturation: flood %d/%d admitted (%d shed, retry-after %v), calm %d/%d admitted\n",
		sat.FloodAdmitted, sat.FloodPosted, sat.FloodShed, sat.RetryAfterSeen,
		sat.CalmAdmitted, sat.CalmPosted)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// startServer serves the mode's transport for the hub on a loopback
// listener and returns its address and a shutdown func.
func startServer(mode string, hub *fleet.Hub) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	switch mode {
	case "baseline":
		srv := &http.Server{Handler: fleet.NewHTTPHandler(hub), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(ln) }()
		return ln.Addr().String(), func() { _ = srv.Close() }, nil
	case "fast":
		h := fleet.NewHTTPHandler(hub, fleet.WithEventSink(fleet.NewEventSink(hub, ingest.Limits{})))
		srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(ln) }()
		return ln.Addr().String(), func() { _ = srv.Close() }, nil
	case "raw":
		raw := fleet.NewRawIngest(hub, fleet.NewEventSink(hub, ingest.Limits{}))
		go func() { _ = raw.Serve(ln) }()
		return ln.Addr().String(), func() { _ = raw.Close() }, nil
	}
	return "", nil, fmt.Errorf("unknown mode %q", mode)
}

// eventBody builds the thermometer JSON body posted for the given value —
// the same shape the fleet workload's PostEvent calls produce.
func eventBody(value string) []byte {
	return fmt.Appendf(nil,
		`{"deviceType":%q,"name":"thermometer","location":"living room","vars":{"temperature":%q}}`,
		device.TypeThermometer, value)
}

// benchConn is the shared measurement client: one keep-alive TCP
// connection, prebuilt request bytes gathered into a single write per
// batch, responses verified by scanning for head terminators in place. The
// responses under test are header-only (202), so a terminator is a full
// response.
type benchConn struct {
	conn net.Conn
	wbuf []byte
	rbuf []byte
}

func dialBench(addr string) (*benchConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &benchConn{conn: conn, rbuf: make([]byte, 64<<10)}, nil
}

// batch writes every request in one syscall and reads until each has a
// response, verifying the status bytes of each head.
func (c *benchConn) batch(reqs [][]byte) error {
	c.wbuf = c.wbuf[:0]
	for _, r := range reqs {
		c.wbuf = append(c.wbuf, r...)
	}
	c.conn.SetDeadline(time.Now().Add(time.Minute))
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return err
	}
	fill, scan, respStart, got := 0, 0, 0, 0
	for got < len(reqs) {
		if fill == len(c.rbuf) {
			return fmt.Errorf("response batch overflows %d-byte client buffer", len(c.rbuf))
		}
		n, err := c.conn.Read(c.rbuf[fill:])
		if err != nil {
			return fmt.Errorf("reading response %d/%d: %w", got+1, len(reqs), err)
		}
		fill += n
		for i := scan; i+3 < fill; i++ {
			if c.rbuf[i] != '\r' || c.rbuf[i+1] != '\n' || c.rbuf[i+2] != '\r' || c.rbuf[i+3] != '\n' {
				continue
			}
			head := c.rbuf[respStart : i+4]
			if len(head) < 12 || string(head[9:12]) != "202" {
				return fmt.Errorf("response %d: %q", got+1, head)
			}
			got++
			respStart = i + 4
			i += 3
		}
		if scan = fill - 3; scan < respStart {
			scan = respStart
		}
	}
	return nil
}

func (c *benchConn) Close() error { return c.conn.Close() }

func runWire(mode string, depth, homes, events, shards, producers int) (modeResult, error) {
	hub, ids, err := benchwork.BuildHub(homes, shards)
	if err != nil {
		return modeResult{}, err
	}
	defer func() { _ = hub.Close() }()

	addr, stop, err := startServer(mode, hub)
	if err != nil {
		return modeResult{}, err
	}
	defer stop()

	// Prebuilt request bytes per home per body variant: the producers only
	// gather and write.
	bodies := [2][]byte{eventBody("31"), eventBody("20")}
	reqs := make([][2][]byte, homes)
	for i, id := range ids {
		for v, body := range bodies {
			reqs[i][v] = fmt.Appendf(nil,
				"POST /fleet/homes/%s/events HTTP/1.1\r\nHost: bench\r\nContent-Length: %d\r\n\r\n%s",
				id, len(body), body)
		}
	}

	var idx atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dialBench(addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			batch := make([][]byte, 0, depth)
			for {
				lo := idx.Add(uint64(depth)) - uint64(depth)
				if lo >= uint64(events) {
					return
				}
				hi := lo + uint64(depth)
				if hi > uint64(events) {
					hi = uint64(events)
				}
				batch = batch[:0]
				for i := lo + 1; i <= hi; i++ { // 1-based, matching the fleet workload
					v := 0
					if benchwork.FleetEventValue(i, homes) != "31" {
						v = 1
					}
					batch = append(batch, reqs[i%uint64(homes)][v])
				}
				if err := conn.batch(batch); err != nil {
					errs <- fmt.Errorf("%s/depth %d: %w", mode, depth, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		// A failed producer means fewer events than configured went through;
		// publishing events/elapsed anyway would inflate the tracked number.
		return modeResult{}, fmt.Errorf("ingestbench: %w", err)
	default:
	}
	if err := hub.Quiesce(); err != nil {
		return modeResult{}, err
	}
	elapsed := time.Since(start)
	return modeResult{
		Mode:         mode,
		Pipeline:     depth,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
	}, nil
}

// ---- saturation (admission under overload, via the stock client) ----

func post(client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp, nil
}

// runSaturation floods one home past the admission budget while a second
// home on the same (single) shard posts within budget: the flood must shed
// with 429 + Retry-After, the calm home must stay fully served.
func runSaturation(rate, burst float64, flood int) (saturationResult, error) {
	hub, ids, err := benchwork.BuildHub(2, 1)
	if err != nil {
		return saturationResult{}, err
	}
	defer func() { _ = hub.Close() }()

	adm := ingest.NewAdmission(ingest.Limits{Rate: rate, Burst: burst}, hub.Backlog)
	sink := fleet.NewEventSink(hub, ingest.Limits{}, ingest.WithAdmission(adm))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return saturationResult{}, err
	}
	srv := &http.Server{
		Handler:           fleet.NewHTTPHandler(hub, fleet.WithEventSink(sink)),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	tr := &http.Transport{MaxIdleConns: 2, MaxIdleConnsPerHost: 2}
	client := &http.Client{Transport: tr}
	defer func() {
		tr.CloseIdleConnections()
		_ = srv.Close()
	}()
	base := "http://" + ln.Addr().String()

	res := saturationResult{RateLimit: rate, Burst: burst}
	body := eventBody("31")
	for i := 0; i < flood; i++ {
		resp, err := post(client, base+"/fleet/homes/"+ids[0]+"/events", body)
		if err != nil {
			return res, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			res.FloodAdmitted++
		case http.StatusTooManyRequests:
			res.FloodShed++
			if resp.Header.Get("Retry-After") != "" {
				res.RetryAfterSeen = true
			}
		default:
			return res, fmt.Errorf("flood: status %d", resp.StatusCode)
		}
		res.FloodPosted++
	}

	// The calm home spends well under the burst; every post must land even
	// though the flood home on the same shard is being shed.
	calm := int(burst / 2)
	if calm < 1 {
		calm = 1
	}
	for i := 0; i < calm; i++ {
		resp, err := post(client, base+"/fleet/homes/"+ids[1]+"/events", body)
		if err != nil {
			return res, err
		}
		if resp.StatusCode == http.StatusAccepted {
			res.CalmAdmitted++
		}
		res.CalmPosted++
	}
	if err := hub.Quiesce(); err != nil {
		return res, err
	}
	st := adm.Stats()
	res.ShedRate, res.ShedBacklog = st.ShedRate, st.ShedBacklog
	if res.CalmAdmitted != res.CalmPosted {
		return res, fmt.Errorf("saturation: calm home shed %d of %d posts",
			res.CalmPosted-res.CalmAdmitted, res.CalmPosted)
	}
	if res.FloodShed == 0 {
		return res, fmt.Errorf("saturation: flood of %d posts was never shed", flood)
	}
	if !res.RetryAfterSeen {
		return res, fmt.Errorf("saturation: 429 responses missing Retry-After")
	}
	return res, nil
}
