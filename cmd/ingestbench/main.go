// Command ingestbench measures wire-level event ingestion throughput over a
// real TCP socket — the stock encoding/json handler versus the ingest fast
// path — and exercises admission control under deliberate overload, writing
// the result as JSON so CI can track the perf trajectory (BENCH_ingest.json).
//
//	$ ingestbench -homes 256 -events 100000 -shards 4 -out BENCH_ingest.json
//
// Both modes serve the identical fleet API on a loopback listener and replay
// the identical body stream (temperatures alternating across the rule
// threshold, so every event flips readiness and the full evaluate/arbitrate/
// dispatch path runs); the only difference is the POST-events route's
// handler. The run ends when every shard has drained (hub.Quiesce), so the
// rate includes evaluation, not just acks. The saturation phase floods one
// home past a configured admission rate and verifies over-budget posts shed
// with 429 + Retry-After while an in-budget home on the same shard is served.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchwork"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ingest"
)

type modeResult struct {
	Mode         string  `json:"mode"` // "baseline" (encoding/json) or "fast" (ingest sink)
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type saturationResult struct {
	RateLimit      float64 `json:"rate_limit"`
	Burst          float64 `json:"burst"`
	FloodPosted    int     `json:"flood_posted"`
	FloodAdmitted  int     `json:"flood_admitted"`
	FloodShed      int     `json:"flood_shed"`
	CalmPosted     int     `json:"calm_posted"`
	CalmAdmitted   int     `json:"calm_admitted"`
	RetryAfterSeen bool    `json:"retry_after_seen"`
	ShedRate       uint64  `json:"shed_rate"`
	ShedBacklog    uint64  `json:"shed_backlog"`
}

type report struct {
	Name          string            `json:"name"`
	GeneratedUnix int64             `json:"generated_unix"`
	Meta          benchwork.RunMeta `json:"meta"`
	Homes         int               `json:"homes"`
	Events        int               `json:"events"`
	Shards        int               `json:"shards"`
	Producers     int               `json:"producers"`
	MaxProcs      int               `json:"maxprocs"`
	Results       []modeResult      `json:"results"`
	Speedup       float64           `json:"speedup"` // fast events/sec over baseline
	Saturation    saturationResult  `json:"saturation"`
}

func main() {
	homes := flag.Int("homes", 256, "number of homes")
	events := flag.Int("events", 100000, "number of events to post per mode")
	shards := flag.Int("shards", 4, "hub shard count")
	producers := flag.Int("producers", 4, "HTTP client goroutines")
	rate := flag.Float64("sat-rate", 50, "saturation phase: admission rate (events/sec)")
	burst := flag.Float64("sat-burst", 10, "saturation phase: admission burst")
	flood := flag.Int("sat-flood", 500, "saturation phase: posts from the over-budget home")
	out := flag.String("out", "BENCH_ingest.json", "output file")
	flag.Parse()

	rep := report{
		Name:          "wire-ingest",
		GeneratedUnix: time.Now().Unix(),
		Meta:          benchwork.NewRunMeta(),
		Homes:         *homes,
		Events:        *events,
		Shards:        *shards,
		Producers:     *producers,
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	for _, mode := range []string{"baseline", "fast"} {
		res, err := runWire(mode, *homes, *events, *shards, *producers)
		if err != nil {
			log.Fatal(err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-8s %9.0f events/sec  (%.2fs)\n", mode, res.EventsPerSec, res.Seconds)
	}
	rep.Speedup = rep.Results[1].EventsPerSec / rep.Results[0].EventsPerSec
	fmt.Printf("speedup  %9.2fx\n", rep.Speedup)

	sat, err := runSaturation(*rate, *burst, *flood)
	if err != nil {
		log.Fatal(err)
	}
	rep.Saturation = sat
	fmt.Printf("saturation: flood %d/%d admitted (%d shed, retry-after %v), calm %d/%d admitted\n",
		sat.FloodAdmitted, sat.FloodPosted, sat.FloodShed, sat.RetryAfterSeen,
		sat.CalmAdmitted, sat.CalmPosted)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// serve starts an HTTP server for the handler on a loopback listener and
// returns the base URL, a keep-alive client sized for the producer count,
// and a shutdown func.
func serve(handler http.Handler, producers int) (string, *http.Client, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	tr := &http.Transport{
		MaxIdleConns:        producers * 2,
		MaxIdleConnsPerHost: producers * 2,
	}
	client := &http.Client{Transport: tr}
	stop := func() {
		tr.CloseIdleConnections()
		_ = srv.Close()
	}
	return "http://" + ln.Addr().String(), client, stop, nil
}

// eventBody builds the thermometer JSON body posted for the given value —
// the same shape the fleet workload's PostEvent calls produce.
func eventBody(value string) []byte {
	return fmt.Appendf(nil,
		`{"deviceType":%q,"name":"thermometer","location":"living room","vars":{"temperature":%q}}`,
		device.TypeThermometer, value)
}

func post(client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp, nil
}

func runWire(mode string, homes, events, shards, producers int) (modeResult, error) {
	hub, ids, err := benchwork.BuildHub(homes, shards)
	if err != nil {
		return modeResult{}, err
	}
	defer func() { _ = hub.Close() }()

	var opts []fleet.HandlerOption
	if mode == "fast" {
		opts = append(opts, fleet.WithEventSink(fleet.NewEventSink(hub, ingest.Limits{})))
	}
	base, client, stop, err := serve(fleet.NewHTTPHandler(hub, opts...), producers)
	if err != nil {
		return modeResult{}, err
	}
	defer stop()

	bodies := [2][]byte{eventBody("31"), eventBody("20")}
	urls := make([]string, homes)
	for i, id := range ids {
		urls[i] = base + "/fleet/homes/" + id + "/events"
	}

	var idx atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := idx.Add(1)
				if i > uint64(events) {
					return
				}
				var body []byte
				if benchwork.FleetEventValue(i, homes) == "31" {
					body = bodies[0]
				} else {
					body = bodies[1]
				}
				resp, err := post(client, urls[i%uint64(homes)], body)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("%s: post: status %d", mode, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		// A failed producer means fewer events than configured went through;
		// publishing events/elapsed anyway would inflate the tracked number.
		return modeResult{}, fmt.Errorf("ingestbench: %w", err)
	default:
	}
	if err := hub.Quiesce(); err != nil {
		return modeResult{}, err
	}
	elapsed := time.Since(start)
	return modeResult{
		Mode:         mode,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
	}, nil
}

// runSaturation floods one home past the admission budget while a second
// home on the same (single) shard posts within budget: the flood must shed
// with 429 + Retry-After, the calm home must stay fully served.
func runSaturation(rate, burst float64, flood int) (saturationResult, error) {
	hub, ids, err := benchwork.BuildHub(2, 1)
	if err != nil {
		return saturationResult{}, err
	}
	defer func() { _ = hub.Close() }()

	adm := ingest.NewAdmission(ingest.Limits{Rate: rate, Burst: burst}, hub.Backlog)
	sink := fleet.NewEventSink(hub, ingest.Limits{}, ingest.WithAdmission(adm))
	base, client, stop, err := serve(
		fleet.NewHTTPHandler(hub, fleet.WithEventSink(sink)), 1)
	if err != nil {
		return saturationResult{}, err
	}
	defer stop()

	res := saturationResult{RateLimit: rate, Burst: burst}
	body := eventBody("31")
	for i := 0; i < flood; i++ {
		resp, err := post(client, base+"/fleet/homes/"+ids[0]+"/events", body)
		if err != nil {
			return res, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			res.FloodAdmitted++
		case http.StatusTooManyRequests:
			res.FloodShed++
			if resp.Header.Get("Retry-After") != "" {
				res.RetryAfterSeen = true
			}
		default:
			return res, fmt.Errorf("flood: status %d", resp.StatusCode)
		}
		res.FloodPosted++
	}

	// The calm home spends well under the burst; every post must land even
	// though the flood home on the same shard is being shed.
	calm := int(burst / 2)
	if calm < 1 {
		calm = 1
	}
	for i := 0; i < calm; i++ {
		resp, err := post(client, base+"/fleet/homes/"+ids[1]+"/events", body)
		if err != nil {
			return res, err
		}
		if resp.StatusCode == http.StatusAccepted {
			res.CalmAdmitted++
		}
		res.CalmPosted++
	}
	if err := hub.Quiesce(); err != nil {
		return res, err
	}
	st := adm.Stats()
	res.ShedRate, res.ShedBacklog = st.ShedRate, st.ShedBacklog
	if res.CalmAdmitted != res.CalmPosted {
		return res, fmt.Errorf("saturation: calm home shed %d of %d posts",
			res.CalmPosted-res.CalmAdmitted, res.CalmPosted)
	}
	if res.FloodShed == 0 {
		return res, fmt.Errorf("saturation: flood of %d posts was never shed", flood)
	}
	if !res.RetryAfterSeen {
		return res, fmt.Errorf("saturation: 429 responses missing Retry-After")
	}
	return res, nil
}
