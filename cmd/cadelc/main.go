// Command cadelc is the CADEL rule compiler and checker: it parses a CADEL
// command, prints its normalized form, the compiled condition tree, the
// device action, the sensor variables it reads, and the consistency verdict.
//
//	cadelc "If humidity is higher than 80 percent, turn on the fan."
//	echo "At night, if entrance door is unlocked for 1 hour, turn on the alarm." | cadelc
//	cadelc -owner alan -users tom,alan "If i am in the living room, turn on the tv."
//	cadelc -word 'hot and stuffy=humidity is over 60 percent and temperature is over 28 degrees' \
//	       "If hot and stuffy, turn on the air conditioner."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/vocab"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("cadelc", flag.ContinueOnError)
	owner := fs.String("owner", "user", "rule owner")
	users := fs.String("users", "tom,alan,emily", "comma-separated known users")
	var words wordFlags
	fs.Var(&words, "word", "user word definition name=condition (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lex := vocab.Default()
	for _, u := range strings.Split(*users, ",") {
		u = vocab.Normalize(u)
		if u == "" {
			continue
		}
		if err := lex.Add(vocab.Entry{Phrase: u, Kind: vocab.KindPerson}); err != nil {
			return err
		}
	}
	if name := vocab.Normalize(*owner); name != "" {
		if _, ok := lex.Lookup(vocab.KindPerson, name); !ok {
			if err := lex.Add(vocab.Entry{Phrase: name, Kind: vocab.KindPerson}); err != nil {
				return err
			}
		}
	}
	for _, w := range words {
		if err := lex.DefineCondWord(w.name, w.def, *owner); err != nil {
			return err
		}
	}

	source := strings.Join(fs.Args(), " ")
	if strings.TrimSpace(source) == "" {
		sc := bufio.NewScanner(os.Stdin)
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		source = strings.Join(lines, " ")
	}
	if strings.TrimSpace(source) == "" {
		return fmt.Errorf("cadelc: no CADEL input (argument or stdin)")
	}

	cmd, err := lang.Parse(source, lex)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "normalized : %s\n", cmd)

	compiler := core.NewCompiler(lex)
	switch c := cmd.(type) {
	case *lang.CondDef:
		cond, err := compiler.CompileCondExpr(c.Expr, *owner)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "kind       : condition word definition\n")
		fmt.Fprintf(out, "word       : %s\n", c.Name)
		fmt.Fprintf(out, "condition  : %s\n", cond)
		fmt.Fprintf(out, "variables  : %s\n", strings.Join(cond.Vars(nil), ", "))
	case *lang.ConfDef:
		fmt.Fprintf(out, "kind       : configuration word definition\n")
		fmt.Fprintf(out, "word       : %s\n", c.Name)
	case *lang.RuleDef:
		rule, err := compiler.CompileRule(c, "cli-1", vocab.Normalize(*owner))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "kind       : rule\n")
		fmt.Fprintf(out, "device     : %s\n", rule.Device)
		fmt.Fprintf(out, "action     : %s\n", rule.Action)
		fmt.Fprintf(out, "condition  : %s\n", rule.Cond)
		fmt.Fprintf(out, "variables  : %s\n", strings.Join(rule.Vars(), ", "))
		var checker conflict.Checker
		ok, err := checker.Consistent(rule)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(out, "consistency: satisfiable\n")
		} else {
			fmt.Fprintf(out, "consistency: NEVER HOLDS — fix the condition\n")
		}
	}
	return nil
}

type wordDef struct{ name, def string }

type wordFlags []wordDef

func (w *wordFlags) String() string {
	parts := make([]string, len(*w))
	for i, d := range *w {
		parts[i] = d.name
	}
	return strings.Join(parts, ",")
}

func (w *wordFlags) Set(value string) error {
	name, def, ok := strings.Cut(value, "=")
	if !ok {
		return fmt.Errorf("want name=definition, got %q", value)
	}
	*w = append(*w, wordDef{name: strings.TrimSpace(name), def: strings.TrimSpace(def)})
	return nil
}
