// Command scenario replays the paper's Fig. 1 control scenario — Tom, Alan
// and Emily's conflicting evening in the living room — against the simulated
// home, and prints the resulting control time-chart.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	cadel "repro"
	"repro/internal/home"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := cadel.NewNetwork()
	hm, err := home.New(network, home.DefaultConfig())
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	srv, err := cadel.NewServer(network,
		cadel.WithClock(hm.Clock.Now),
		cadel.WithEventTTL(6*time.Hour),
		cadel.WithOnFire(func(f cadel.Fired) { fmt.Println("  " + f.String()) }),
	)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			return err
		}
	}
	if err := srv.RegisterUser("emily", "roman holiday"); err != nil {
		return err
	}
	if n, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		return err
	} else {
		fmt.Printf("discovered %d virtual UPnP devices\n\n", n)
	}

	submissions := []struct{ src, owner string }{
		{"Let's call the condition that temperature is higher than 26 degrees and humidity is higher than 65 percent hot and stuffy", "tom"},
		{"Let's call the condition that temperature is higher than 25 degrees and humidity is higher than 60 percent muggy", "alan"},
		{"Let's call the condition that temperature is higher than 29 degrees and humidity is higher than 75 percent sticky", "emily"},
		{"Let's call the configuration that 50 percent of brightness setting half-lighting", "tom"},
		{"In the evening, if i am in the living room, play the stereo with jazz of mode setting and 40 percent of volume setting.", "tom"},
		{"When i am in the living room, turn on the floor lamp with half-lighting.", "tom"},
		{"If i am in the living room and hot and stuffy, turn on the air conditioner at the living room with 25 degrees of temperature setting and 60 percent of humidity setting.", "tom"},
		{"If i am in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.", "alan"},
		{"If emily is in the living room and a baseball game is on air, record the video recorder.", "alan"},
		{"If i am in the living room and muggy, turn on the air conditioner at the living room with 24 degrees of temperature setting and 55 percent of humidity setting.", "alan"},
		{"If i am in the living room and my favorite movie is on air, turn on the tv with 3 of channel setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, play the stereo with movie of mode setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, turn on the fluorescent light.", "emily"},
		{"If i am in the living room and sticky, turn on the air conditioner at the living room with 27 degrees of temperature setting and 65 percent of humidity setting.", "emily"},
	}
	fmt.Println("registering rules:")
	for _, s := range submissions {
		res, err := srv.Submit(s.src, s.owner)
		if err != nil {
			return fmt.Errorf("submit %q: %w", s.src, err)
		}
		switch {
		case res.DefinedWord != "":
			fmt.Printf("  %-6s defined word %q\n", s.owner, res.DefinedWord)
		case len(res.Conflicts) > 0:
			fmt.Printf("  %-6s rule %s CONFLICTS with:\n", s.owner, res.Rule.ID)
			for _, c := range res.Conflicts {
				fmt.Printf("         - %s (owner %s)\n", c.Existing.ID, c.Existing.Owner)
			}
		default:
			fmt.Printf("  %-6s rule %s registered\n", s.owner, res.Rule.ID)
		}
	}

	fmt.Println("\nsetting priority orders (Fig. 7):")
	priorities := []struct {
		device  string
		users   []string
		context string
	}{
		{"tv", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"tv", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
		{"stereo", []string{"emily", "tom", "alan"}, "emily got home from shopping"},
		{"air conditioner", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"air conditioner", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
	}
	for _, p := range priorities {
		if err := srv.SetPriority(cadel.DeviceRef{Name: p.device}, p.users, p.context); err != nil {
			return err
		}
		fmt.Printf("  %-16s [%s]: %v\n", p.device, p.context, p.users)
	}

	fmt.Println("\n--- 17:00  Tom comes to the living room (*1) ---")
	if err := hm.Arrive("tom", "living room", "return-home"); err != nil {
		return err
	}
	settle()

	fmt.Println("\n--- 17:30  the room turns hot and stuffy ---")
	hm.Clock.Advance(30 * time.Minute)
	if err := hm.SetClimate("living room", 27, 66); err != nil {
		return err
	}
	srv.Tick()
	settle()

	fmt.Println("\n--- 18:00  baseball game on air; Alan got home from work (*2) ---")
	hm.Clock.Set(time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC))
	if err := hm.Step(0); err != nil {
		return err
	}
	if err := hm.Arrive("alan", "living room", "home-from-work"); err != nil {
		return err
	}
	settle()

	fmt.Println("\n--- 19:00  movie on air; Emily got home from shopping (*3) ---")
	hm.Clock.Set(time.Date(2005, 3, 7, 19, 0, 0, 0, time.UTC))
	if err := hm.Step(0); err != nil {
		return err
	}
	if err := hm.Arrive("emily", "living room", "home-from-shopping"); err != nil {
		return err
	}
	settle()

	fmt.Println("\n--- control time-chart (compare with Fig. 1) ---")
	printChart(srv.Log(), os.Stdout)
	return nil
}

// settle gives asynchronous UPnP events time to propagate.
func settle() { time.Sleep(400 * time.Millisecond) }

// printChart renders the executed-action log as a device-by-time chart.
func printChart(log []cadel.Fired, out *os.File) {
	devices := []string{"stereo", "tv", "video recorder", "floor lamp", "fluorescent light", "light", "air conditioner"}
	fmt.Fprintf(out, "%-18s", "device")
	for h := 17; h <= 19; h++ {
		fmt.Fprintf(out, " | %d:00-%d:59", h, h)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "-------------------------------------------------------------------")
	for _, dev := range devices {
		fmt.Fprintf(out, "%-18s", dev)
		for h := 17; h <= 19; h++ {
			owner := ""
			for _, f := range log {
				if f.Rule.Device.Name != dev {
					continue
				}
				if f.Time.Hour() <= h {
					owner = f.Rule.Owner + ":" + f.Rule.Action.Verb
				}
			}
			fmt.Fprintf(out, " | %-10s", owner)
		}
		fmt.Fprintln(out)
	}
}
