// Command benchtab regenerates the paper's evaluation tables (Sect. 5) with
// parameter sweeps around the published operating points.
//
//	benchtab -exp e1   # device retrieval time vs. number of virtual devices
//	benchtab -exp e2   # same-device extraction + conflict feasibility vs. DB size
//	benchtab -exp all  # both
//
// The paper's numbers (Athlon2200+, JDK 1.5, CyberLink UPnP, C simplex):
// retrieval <= 10 ms at 50 devices; extraction <= 10 ms at 10,000 rules;
// feasibility of 100 x 4 inequalities ~= 0.2 ms. benchtab reports the same
// operations on this implementation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
	"repro/internal/upnp"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1, e2 or all")
	trials := flag.Int("trials", 15, "trials per configuration (median reported)")
	flag.Parse()

	switch *exp {
	case "e1":
		runE1(*trials)
	case "e2":
		runE2(*trials)
	case "all":
		runE1(*trials)
		fmt.Println()
		runE2(*trials)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want e1, e2 or all)\n", *exp)
		os.Exit(1)
	}
}

func median(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// runE1 measures device retrieval by name and by service over real UDP/HTTP
// for a sweep of device counts (the paper's point: 50 devices, <= 10 ms).
func runE1(trials int) {
	fmt.Println("E1 — Time for retrieving devices (paper: <= 10 ms at N=50)")
	fmt.Println("N devices | by name (cold) | by service (cold) | by name (cached)")
	fmt.Println("----------|----------------|-------------------|-----------------")
	for _, n := range []int{10, 25, 50, 100, 200} {
		byName, bySvc, warm, err := measureRetrieval(n, trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E1 n=%d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%9d | %14s | %17s | %15s\n", n, byName, bySvc, warm)
	}
}

const uniqueSvc = "urn:cadel-home:service:Unique:1"

func measureRetrieval(n, trials int) (byName, byService, warm time.Duration, err error) {
	network := upnp.NewNetwork()
	host, err := upnp.NewDeviceHost(network)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = host.Close() }()
	var targetUDN, targetName string
	for i := 0; i < n; i++ {
		unit := device.NewLight(fmt.Sprintf("bench light %d", i), i, "hall")
		if i == n/2 {
			unit.Dev.Services = append(unit.Dev.Services,
				upnp.NewService("urn:cadel-home:serviceId:Unique", uniqueSvc))
			targetUDN, targetName = unit.Dev.UDN, unit.Dev.FriendlyName
		}
		if err := unit.Publish(host); err != nil {
			return 0, 0, 0, err
		}
	}
	cp, err := upnp.NewControlPoint(network)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = cp.Close() }()
	deadline := time.Now().Add(10 * time.Second)
	for len(cp.Devices()) < n && time.Now().Before(deadline) {
		cp.Search(upnp.TargetAll, 100*time.Millisecond)
	}
	if len(cp.Devices()) < n {
		return 0, 0, 0, fmt.Errorf("primed only %d/%d devices", len(cp.Devices()), n)
	}

	nameSamples := make([]time.Duration, 0, trials)
	svcSamples := make([]time.Duration, 0, trials)
	warmSamples := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		cp.Forget(targetUDN)
		start := time.Now()
		if _, err := cp.FindByName(targetName, 5*time.Second); err != nil {
			return 0, 0, 0, err
		}
		nameSamples = append(nameSamples, time.Since(start))

		cp.Forget(targetUDN)
		start = time.Now()
		if _, err := cp.FindByService(uniqueSvc, 5*time.Second); err != nil {
			return 0, 0, 0, err
		}
		svcSamples = append(svcSamples, time.Since(start))

		start = time.Now()
		if _, err := cp.FindByName(targetName, 5*time.Second); err != nil {
			return 0, 0, 0, err
		}
		warmSamples = append(warmSamples, time.Since(start))
	}
	return median(nameSamples), median(svcSamples), median(warmSamples), nil
}

// runE2 measures same-device extraction and 100-candidate conflict
// feasibility for a sweep of database sizes (the paper's point: 10,000 rules,
// 100 same-device, extraction <= 10 ms, feasibility ~0.2 ms).
func runE2(trials int) {
	fmt.Println("E2 — Time for detecting conflicting rules (paper: extract <= 10 ms,")
	fmt.Println("     100 x 4-inequality feasibility ~= 0.2 ms, at 10,000 rules)")
	fmt.Println("total rules | same-device | extract (indexed) | extract (scan) | feasibility x100 (simplex) | (interval)")
	fmt.Println("------------|-------------|-------------------|----------------|----------------------------|-----------")
	for _, total := range []int{1000, 10000, 50000} {
		sameDevice := 100
		db := buildDB(total, sameDevice)
		ref := core.DeviceRef{Name: "air conditioner"}
		newRule := &core.Rule{
			ID: "new", Owner: "newuser", Device: ref,
			Action: core.Action{Verb: "turn-on",
				Settings: map[string]core.Value{"temperature": {IsNumber: true, Number: 19}}},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: "temperature", Op: simplex.GT, Value: 26},
				&core.Compare{Var: "humidity", Op: simplex.GT, Value: 65},
			}},
		}

		extract := sample(trials, func() {
			if got := db.SameDevice(ref); len(got) != sameDevice {
				panic(fmt.Sprintf("extracted %d", len(got)))
			}
		})
		scan := sample(trials, func() {
			_ = db.SameDeviceScan(ref)
		})
		candidates := db.SameDevice(ref)
		var checker conflict.Checker
		feas := sample(trials, func() {
			if _, err := checker.FindConflicts(newRule, candidates); err != nil {
				panic(err)
			}
		})
		ivChecker := conflict.Checker{UseIntervalFastPath: true}
		feasIv := sample(trials, func() {
			if _, err := ivChecker.FindConflicts(newRule, candidates); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%11d | %11d | %17s | %14s | %26s | %9s\n",
			total, sameDevice, extract, scan, feas, feasIv)
	}
}

func sample(trials int, op func()) time.Duration {
	samples := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		op()
		samples = append(samples, time.Since(start))
	}
	return median(samples)
}

func buildDB(total, sameDevice int) *registry.DB {
	db := registry.New()
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("device-%d", i%((total/sameDevice)+1))
		if i < sameDevice {
			name = "air conditioner"
		}
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  fmt.Sprintf("user%d", i%5),
			Device: core.DeviceRef{Name: name},
			Action: core.Action{Verb: "turn-on",
				Settings: map[string]core.Value{"temperature": {IsNumber: true, Number: float64(20 + i%10)}}},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: "temperature", Op: simplex.GT, Value: float64(20 + i%10)},
				&core.Compare{Var: "humidity", Op: simplex.GT, Value: float64(50 + i%20)},
			}},
		}
		if err := db.Add(rule); err != nil {
			panic(err)
		}
	}
	return db
}
