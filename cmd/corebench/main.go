// Command corebench measures the engine evaluation hot path and fleet
// ingestion, and emits BENCH_core.json for CI trend tracking — the perf
// trajectory baseline of the symbol-interned evaluation core. The workloads
// come from internal/benchwork, the same builders the root package's
// `go test -bench` benchmarks use, so the JSON rows and the benchmark output
// measure exactly the same thing.
//
// Three engine workloads are swept over the -rules counts:
//
//	engine_evaluate  one steady-state single-key sensor event (Example Rule
//	                 1 shape: rule 0 reads the unqualified "temperature",
//	                 every other rule its own room's qualified key)
//	presence_eval    one presence-churn pass (Example Rules 2/3 shape:
//	                 nobody/everyone/someone-at/arrival quantifiers
//	                 re-evaluated as a user moves between rooms)
//	arbitrate        one arbitration-heavy pass (Fig. 1 hand-off shape:
//	                 contending owners on one device under a contextual
//	                 priority order dirtied by presence churn; the winner
//	                 never changes, so nothing fires)
//	rule_churn       one rule-lifecycle step (add a unique-named rule,
//	                 remove the oldest, evaluate) over a fixed live window,
//	                 with the default symbol-compaction watermark ("compact")
//	                 and with compaction disabled ("nocompact") — the symtab
//	                 id-space hygiene rows
//
// each on the evaluator configurations:
//
//	interned    pre-bound conditions + id-indexed context (the default)
//	stringkeys  the retained string-keyed oracle path
//	fullscan    the naive re-evaluate-everything oracle (engine_evaluate only)
//
// recording ns/op, allocs/op and B/op. The interned rows carry the
// acceptance targets: 0 allocs/op, flat across rule counts. A fleet section
// times end-to-end hub ingestion (post → coalesce → evaluate → quiesce) per
// shard count so the engine-level win is visible through the sharded
// pipeline too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benchwork"
	"repro/internal/device"
	"repro/internal/engine"
)

type engineRow struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"`
	Rules       int     `json:"rules"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type fleetRow struct {
	Bench        string  `json:"bench"`
	Homes        int     `json:"homes"`
	Shards       int     `json:"shards"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int     `json:"iterations"`
}

type doc struct {
	GeneratedUnix int64             `json:"generated_unix"`
	Meta          benchwork.RunMeta `json:"meta"`
	Engine        []engineRow       `json:"engine"`
	Fleet         []fleetRow        `json:"fleet"`
}

func main() {
	rulesFlag := flag.String("rules", "1000,10000", "comma-separated rule counts for the engine sweeps")
	homes := flag.Int("homes", 1000, "homes for the fleet ingest measurement")
	shardsFlag := flag.String("shards", "1,4", "comma-separated shard counts for the fleet sweep")
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	flag.Parse()

	d := doc{GeneratedUnix: time.Now().Unix(), Meta: benchwork.NewRunMeta()}

	for _, n := range parseInts(*rulesFlag) {
		for _, mode := range []string{"interned", "stringkeys", "fullscan"} {
			r := benchEngine("engine_evaluate", n, mode)
			d.Engine = append(d.Engine, r)
			printRow(r)
		}
		for _, mode := range []string{"interned", "stringkeys"} {
			r := benchEngine("presence_eval", n, mode)
			d.Engine = append(d.Engine, r)
			printRow(r)
		}
		for _, mode := range []string{"interned", "stringkeys"} {
			r := benchEngine("arbitrate", n, mode)
			d.Engine = append(d.Engine, r)
			printRow(r)
		}
		for _, mode := range []string{"compact", "nocompact"} {
			r := benchChurn(n, mode)
			d.Engine = append(d.Engine, r)
			printRow(r)
		}
	}
	for _, shards := range parseInts(*shardsFlag) {
		r := benchFleet(*homes, shards)
		d.Fleet = append(d.Fleet, r)
		fmt.Printf("fleet_ingest    homes=%-6d shards=%-6d %10.1f ns/op %6d allocs/op %10.0f events/sec\n",
			*homes, shards, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
	}

	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func printRow(r engineRow) {
	fmt.Printf("%-15s rules=%-6d mode=%-10s %12.1f ns/op %6d allocs/op %8d B/op\n",
		r.Bench, r.Rules, r.Mode, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
}

func parseInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad count %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corebench:", err)
	os.Exit(1)
}

// benchEngine runs one named benchwork workload on one evaluator
// configuration — the exact timed loop of the root package's benchmarks.
func benchEngine(bench string, n int, mode string) engineRow {
	var opts []engine.Option
	switch mode {
	case "stringkeys":
		opts = append(opts, engine.WithStringKeys())
	case "fullscan":
		opts = append(opts, engine.WithFullScan())
	}
	res := testing.Benchmark(func(b *testing.B) {
		w, err := benchwork.NewEngineWorkload(bench, n, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Replay(i)
		}
	})
	return engineRow{
		Bench:       bench,
		Mode:        mode,
		Rules:       n,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}

// benchChurn runs the rule-churn workload (add a unique-named rule, remove
// the oldest, evaluate) over a live window of n rules, with the default
// compaction watermark ("compact") or compaction disabled ("nocompact") —
// the symtab id-space hygiene rows.
func benchChurn(n int, mode string) engineRow {
	var opts []engine.Option
	if mode == "nocompact" {
		opts = append(opts, engine.WithCompactFloor(0))
	}
	res := testing.Benchmark(func(b *testing.B) {
		w, err := benchwork.NewChurnWorkload(n, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return engineRow{
		Bench:       "rule_churn",
		Mode:        mode,
		Rules:       n,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}

func benchFleet(homes, shards int) fleetRow {
	res := testing.Benchmark(func(b *testing.B) {
		hub, ids, err := benchwork.BuildHub(homes, shards)
		if err != nil {
			b.Fatal(err)
		}
		defer hub.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			home := ids[i%homes]
			if err := hub.PostEvent(home, device.TypeThermometer, "thermometer",
				"living room", map[string]string{"temperature": benchwork.FleetEventValue(uint64(i), homes)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := hub.Quiesce(); err != nil {
			b.Fatal(err)
		}
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	return fleetRow{
		Bench:        "fleet_ingest",
		Homes:        homes,
		Shards:       shards,
		NsPerOp:      ns,
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		EventsPerSec: 1e9 / ns,
		Iterations:   res.N,
	}
}
