// Command corebench measures the engine evaluation hot path and fleet
// ingestion, and emits BENCH_core.json for CI trend tracking — the perf
// trajectory baseline of the symbol-interned evaluation core.
//
// For each rule-count in -rules it times one steady-state single-key sensor
// event (the BenchmarkEngineEvaluate workload: rule 0 reads the unqualified
// "temperature", every other rule its own room's qualified temperature, all
// rooms populated) on three evaluator configurations:
//
//	interned    pre-bound conditions + id-indexed context (the default)
//	stringkeys  the retained string-keyed oracle path
//	fullscan    the naive re-evaluate-everything oracle
//
// and records ns/op, allocs/op and B/op. The interned row is the one with
// the acceptance targets: 0 allocs/op and a multiple-x ns/op win over
// stringkeys at 10k rules. A fleet section times end-to-end hub ingestion
// (post → coalesce → evaluate → quiesce) per shard count so the engine-level
// win is visible through the sharded pipeline too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

type engineRow struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"`
	Rules       int     `json:"rules"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type fleetRow struct {
	Bench        string  `json:"bench"`
	Homes        int     `json:"homes"`
	Shards       int     `json:"shards"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int     `json:"iterations"`
}

type doc struct {
	GeneratedUnix int64       `json:"generated_unix"`
	Engine        []engineRow `json:"engine"`
	Fleet         []fleetRow  `json:"fleet"`
}

func main() {
	rulesFlag := flag.String("rules", "1000,10000", "comma-separated rule counts for the engine sweep")
	homes := flag.Int("homes", 1000, "homes for the fleet ingest measurement")
	shardsFlag := flag.String("shards", "1,4", "comma-separated shard counts for the fleet sweep")
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	flag.Parse()

	d := doc{GeneratedUnix: time.Now().Unix()}

	for _, n := range parseInts(*rulesFlag) {
		for _, mode := range []string{"interned", "stringkeys", "fullscan"} {
			r := benchEngine(n, mode)
			d.Engine = append(d.Engine, r)
			fmt.Printf("engine_evaluate rules=%-6d mode=%-10s %12.1f ns/op %6d allocs/op %8d B/op\n",
				n, mode, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	for _, shards := range parseInts(*shardsFlag) {
		r := benchFleet(*homes, shards)
		d.Fleet = append(d.Fleet, r)
		fmt.Printf("fleet_ingest    homes=%-6d shards=%-6d %10.1f ns/op %6d allocs/op %10.0f events/sec\n",
			*homes, shards, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
	}

	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func parseInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad count %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corebench:", err)
	os.Exit(1)
}

// benchDB mirrors the root package's engineBenchDB: rule 0 reads the
// unqualified "temperature", rule i > 0 its own room's qualified key.
func benchDB(n int) (*registry.DB, error) {
	db := registry.New()
	for i := 0; i < n; i++ {
		v := "temperature"
		if i > 0 {
			v = fmt.Sprintf("room%d/temperature", i)
		}
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: v, Op: simplex.GT, Value: float64(20 + i%15)},
				&core.Presence{Person: "tom", Place: "living room"},
			}},
		}
		if err := db.Add(rule); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func benchEngine(n int, mode string) engineRow {
	res := testing.Benchmark(func(b *testing.B) {
		db, err := benchDB(n)
		if err != nil {
			b.Fatal(err)
		}
		var opts []engine.Option
		switch mode {
		case "stringkeys":
			opts = append(opts, engine.WithStringKeys())
		case "fullscan":
			opts = append(opts, engine.WithFullScan())
		}
		now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
		e := engine.New(db, conflict.NewTable(), func() time.Time { return now }, nil, opts...)
		e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
			map[string]string{"presence-tom": "living room"})
		low := map[string]string{"temperature": "10"}
		for i := 1; i < n; i++ {
			e.Ingest(device.TypeThermometer, "thermometer", fmt.Sprintf("room%d", i), low)
		}
		e.Tick()
		events := make([]map[string]string, 10)
		for i := range events {
			events[i] = map[string]string{"temperature": strconv.Itoa(10 + i)}
		}
		for _, ev := range events {
			e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", events[i%len(events)])
		}
	})
	return engineRow{
		Bench:       "engine_evaluate",
		Mode:        mode,
		Rules:       n,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}

func benchFleet(homes, shards int) fleetRow {
	res := testing.Benchmark(func(b *testing.B) {
		lex := vocab.Default()
		now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
		hub, err := fleet.NewHub(
			fleet.WithShards(shards),
			fleet.WithClock(func() time.Time { return now }),
			fleet.WithLexiconFactory(func(string) *vocab.Lexicon { return lex }),
			fleet.WithLogLimit(64),
		)
		if err != nil {
			b.Fatal(err)
		}
		defer hub.Close()
		ids := make([]string, homes)
		for i := range ids {
			ids[i] = fmt.Sprintf("home-%06d", i)
			if err := hub.RegisterUser(ids[i], "u"); err != nil {
				b.Fatal(err)
			}
			if _, err := hub.Submit(ids[i],
				"If temperature is higher than 28 degrees, turn on the air conditioner.", "u"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			home := ids[i%homes]
			v := "31"
			if (i/homes)%2 == 1 {
				v = "20"
			}
			if err := hub.PostEvent(home, device.TypeThermometer, "thermometer",
				"living room", map[string]string{"temperature": v}); err != nil {
				b.Fatal(err)
			}
		}
		if err := hub.Quiesce(); err != nil {
			b.Fatal(err)
		}
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	return fleetRow{
		Bench:        "fleet_ingest",
		Homes:        homes,
		Shards:       shards,
		NsPerOp:      ns,
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		EventsPerSec: 1e9 / ns,
		Iterations:   res.N,
	}
}
