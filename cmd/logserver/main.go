// Command logserver runs the remote record-log service behind
// fleet.RemoteStore: a durable, idempotent append/replay/snapshot store over
// one fleet.FileStore directory. Point one or more home servers at it with
//
//	homeserver -fleet -store remote://host:9377
//
// and the hubs rehydrate from and journal to this node instead of a local
// file. See internal/logserver for the protocol and internal/fleet/README.md
// for the store contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/logserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9377", "listen address")
	dir := flag.String("dir", "cadel-log", "record-log store directory")
	sync := flag.Bool("sync", true, "fsync every append before acknowledging it (group-committed)")
	flag.Parse()

	srv, err := logserver.New(logserver.Config{Dir: *dir, NoSync: !*sync})
	if err != nil {
		log.Fatalf("logserver: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("logserver: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The harness and scripts wait for this exact line before dialing.
	fmt.Printf("logserver: serving on http://%s (dir=%s, sync=%v)\n", ln.Addr(), *dir, *sync)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("logserver: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("logserver: serve: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("logserver: close store: %v", err)
	}
}
