package cadel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/device"
	"repro/internal/home"
)

const settle = 3 * time.Second

// waitFor polls until cond holds or the deadline passes; UPnP events travel
// over real loopback HTTP, so state changes are asynchronous.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(settle)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// newHomeServer builds a simulated home plus a server discovered onto it.
func newHomeServer(t *testing.T, opts ...Option) (*home.Home, *Server) {
	t.Helper()
	network := NewNetwork()
	hm, err := home.New(network, home.DefaultConfig())
	if err != nil {
		t.Fatalf("home.New: %v", err)
	}
	t.Cleanup(func() { _ = hm.Close() })
	opts = append([]Option{WithClock(hm.Clock.Now), WithEventTTL(6 * time.Hour)}, opts...)
	srv, err := NewServer(network, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RegisterUser("emily", "roman holiday"); err != nil {
		t.Fatal(err)
	}
	if n, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		t.Fatalf("discover: %v", err)
	} else if n < 20 {
		t.Fatalf("discovered %d devices, want 20", n)
	}
	return hm, srv
}

// applianceState reads an appliance variable as a string.
func applianceState(t *testing.T, hm *home.Home, room, name, svc, varName string) func() string {
	t.Helper()
	unit, ok := hm.Appliance(room, name)
	if !ok {
		t.Fatalf("appliance %s/%s missing", room, name)
	}
	return func() string {
		v, err := unit.Get(svc, varName)
		if err != nil {
			t.Fatalf("get %s/%s: %v", name, varName, err)
		}
		return v
	}
}

func TestRegisterUserValidation(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.RegisterUser(""); err == nil {
		t.Error("empty user should fail")
	}
	if err := srv.RegisterUser("tom"); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterUser("Tom"); err == nil {
		t.Error("duplicate user should fail")
	}
	if got := srv.Users(); len(got) != 1 || got[0] != "tom" {
		t.Errorf("users = %v", got)
	}
}

func TestSubmitRequiresKnownUser(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	_, err = srv.Submit("Turn on the tv.", "stranger")
	if !errors.Is(err, ErrUnknownUser) {
		t.Errorf("error = %v, want ErrUnknownUser", err)
	}
}

func TestSubmitWordDefinitions(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.RegisterUser("tom"); err != nil {
		t.Fatal(err)
	}

	res, err := srv.Submit("Let's call the condition that humidity is higher than 65 % "+
		"and temperature is higher than 26 degrees hot and stuffy", "tom")
	if err != nil {
		t.Fatalf("CondDef: %v", err)
	}
	if res.DefinedWord != "hot and stuffy" || res.Rule != nil {
		t.Errorf("result = %+v", res)
	}

	res, err = srv.Submit("Let's call the configuration that 50 percent of brightness setting half-lighting", "tom")
	if err != nil {
		t.Fatalf("ConfDef: %v", err)
	}
	if res.DefinedWord != "half-lighting" {
		t.Errorf("result = %+v", res)
	}

	// The new words are immediately usable in a rule.
	ruleRes, err := srv.Submit(
		"If hot and stuffy, turn on the floor lamp with half-lighting.", "tom")
	if err != nil {
		t.Fatalf("rule using words: %v", err)
	}
	if ruleRes.Rule == nil {
		t.Fatal("no rule registered")
	}
	if v := ruleRes.Rule.Action.Settings["brightness"]; v.Number != 50 {
		t.Errorf("expanded brightness = %+v", v)
	}

	// Redefinition is rejected.
	if _, err := srv.Submit("Let's call the condition that temperature is higher than 1 degrees hot and stuffy", "tom"); err == nil {
		t.Error("duplicate word should fail")
	}
}

func TestSubmitInconsistentRuleRejected(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.RegisterUser("tom"); err != nil {
		t.Fatal(err)
	}
	_, err = srv.Submit(
		"If temperature is higher than 30 degrees and temperature is lower than 20 degrees, turn on the fan.", "tom")
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("error = %v, want ErrInconsistent", err)
	}
	if len(srv.Rules()) != 0 {
		t.Error("inconsistent rule must not be registered")
	}
}

func TestSubmitDetectsConflictAndPriorityResolves(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	res1, err := srv.Submit(
		"If temperature is higher than 26 degrees, turn on the air conditioner with 25 degrees of temperature setting.", "tom")
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Conflicts) != 0 {
		t.Errorf("first rule conflicts = %v", res1.Conflicts)
	}
	res2, err := srv.Submit(
		"If temperature is higher than 25 degrees, turn on the air conditioner with 24 degrees of temperature setting.", "alan")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Conflicts) != 1 {
		t.Fatalf("conflicts = %v, want 1", res2.Conflicts)
	}
	if res2.Conflicts[0].Existing.Owner != "tom" {
		t.Errorf("conflicting owner = %s", res2.Conflicts[0].Existing.Owner)
	}
	// Both rules are registered (the paper registers and asks for a
	// priority order).
	if len(srv.Rules()) != 2 {
		t.Errorf("rules = %d, want 2", len(srv.Rules()))
	}
	if err := srv.SetPriority(DeviceRef{Name: "air conditioner"}, []string{"alan", "tom"}, ""); err != nil {
		t.Fatal(err)
	}
	orders := srv.PriorityOrders(DeviceRef{Name: "air conditioner"})
	if len(orders) != 1 || orders[0].Users[0] != "alan" {
		t.Errorf("orders = %v", orders)
	}
	// A contextual priority parses its CADEL context.
	if err := srv.SetPriority(DeviceRef{Name: "air conditioner"},
		[]string{"tom", "alan"}, "alan got home from work"); err != nil {
		t.Fatal(err)
	}
	if orders := srv.PriorityOrders(DeviceRef{Name: "air conditioner"}); len(orders) != 2 {
		t.Errorf("orders = %v", orders)
	}
	if err := srv.SetPriority(DeviceRef{Name: "tv"}, []string{"tom"}, "gibberish blargh"); err == nil {
		t.Error("unparseable context should fail")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	srv, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.RegisterUser("tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("At night, if entrance door is unlocked for 1 hour, turn on the alarm.", "tom"); err != nil {
		t.Fatal(err)
	}
	data, err := srv.ExportRules()
	if err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(NewNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv2.Close() }()
	if err := srv2.RegisterUser("tom"); err != nil {
		t.Fatal(err)
	}
	n, err := srv2.ImportRules(data)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if n != 1 || len(srv2.Rules()) != 1 {
		t.Errorf("imported %d rules", n)
	}
}

func TestLookupOverDiscoveredDevices(t *testing.T) {
	_, srv := newHomeServer(t)
	// Fig. 5: retrieval by sensor type "temperature" finds the thermometer
	// and the air conditioner.
	found := srv.Find(Query{SensorType: "temperature"})
	names := make([]string, len(found))
	for i, d := range found {
		names[i] = d.FriendlyName
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "thermometer") || !strings.Contains(joined, "air conditioner") {
		t.Errorf("temperature devices = %s", joined)
	}
	// Define a word, then retrieve sensors by it (Fig. 5) and words by
	// device (reverse).
	if _, err := srv.Submit("Let's call the condition that humidity is higher than 65 % "+
		"and temperature is higher than 26 degrees hot and stuffy", "tom"); err != nil {
		t.Fatal(err)
	}
	byWord := srv.Find(Query{Word: "hot and stuffy", Location: "living room"})
	wordNames := make([]string, len(byWord))
	for i, d := range byWord {
		wordNames[i] = d.FriendlyName
	}
	got := strings.Join(wordNames, ",")
	if !strings.Contains(got, "thermometer") || !strings.Contains(got, "hygrometer") {
		t.Errorf("hot-and-stuffy devices = %s", got)
	}
	th := byWord[len(byWord)-1] // thermometer (sorted)
	if words := srv.WordsFor(th); len(words) != 1 || words[0] != "hot and stuffy" {
		t.Errorf("WordsFor = %v", words)
	}
	// Fig. 6: allowed actions of the TV.
	tv, err := srv.FindDevice("tv", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	verbs := strings.Join(srv.AllowedVerbs(tv), ",")
	if !strings.Contains(verbs, "turn-on") || !strings.Contains(verbs, "play") {
		t.Errorf("tv verbs = %s", verbs)
	}
}

// TestPaperRule2EndToEnd runs example rule (2): "After evening, if someone
// returns home and the hall is dark, turn on the light at the hall."
func TestPaperRule2EndToEnd(t *testing.T) {
	hm, srv := newHomeServer(t)
	if _, err := srv.Submit(
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.", "tom"); err != nil {
		t.Fatal(err)
	}
	hallLight := applianceState(t, hm, "hall", "light", device.SvcSwitchPower, "power")
	if hallLight() != "0" {
		t.Fatal("hall light should start off")
	}
	// 17:00 is after evening start; the hall is dark by default config.
	if err := hm.Arrive("tom", "hall", "return-home"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hallLight() == "1" }, "hall light on after arrival")
}

// TestPaperRule3EndToEnd runs example rule (3): "At night, if entrance door
// is unlocked for 1 hour, turn on the alarm."
func TestPaperRule3EndToEnd(t *testing.T) {
	hm, srv := newHomeServer(t)
	if _, err := srv.Submit(
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.", "tom"); err != nil {
		t.Fatal(err)
	}
	alarm := applianceState(t, hm, "hall", "alarm", device.SvcSwitchPower, "power")
	door, _ := hm.Appliance("entrance", "entrance door")

	// 23:00, door unlocked.
	hm.Clock.Set(time.Date(2005, 3, 7, 23, 0, 0, 0, time.UTC))
	srv.Tick()
	if err := door.Set(device.SvcLock, "locked", "0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		snap := srv.Snapshot()
		v, ok := snap.Bool("entrance door/locked")
		return ok && !v
	}, "door state to reach the server")

	// 40 minutes: nothing yet.
	hm.Clock.Advance(40 * time.Minute)
	srv.Tick()
	if alarm() != "0" {
		t.Fatal("alarm fired too early")
	}
	// 65 minutes total: alarm.
	hm.Clock.Advance(25 * time.Minute)
	srv.Tick()
	waitFor(t, func() bool { return alarm() == "1" }, "alarm after an hour unlocked at night")
}

// TestFigure1Scenario reproduces the paper's Fig. 1 control scenario end to
// end: Tom's evening jazz, Alan taking the TV when he returns from work,
// Emily taking both TV and stereo when she returns from shopping, the video
// recorder picking up the baseball game, and the air conditioner following
// the highest-priority occupant's comfort band.
func TestFigure1Scenario(t *testing.T) {
	hm, srv := newHomeServer(t)

	// --- word definitions (each user's comfort band from Sect. 3.1) ---
	words := []struct{ src, owner string }{
		{"Let's call the condition that temperature is higher than 26 degrees and humidity is higher than 65 percent hot and stuffy", "tom"},
		{"Let's call the condition that temperature is higher than 25 degrees and humidity is higher than 60 percent muggy", "alan"},
		{"Let's call the condition that temperature is higher than 29 degrees and humidity is higher than 75 percent sticky", "emily"},
		{"Let's call the configuration that 50 percent of brightness setting half-lighting", "tom"},
	}
	for _, w := range words {
		if _, err := srv.Submit(w.src, w.owner); err != nil {
			t.Fatalf("define %q: %v", w.src, err)
		}
	}

	// --- rules ---
	rules := []struct{ src, owner string }{
		{"In the evening, if i am in the living room, play the stereo with jazz of mode setting and 40 percent of volume setting.", "tom"},
		{"When i am in the living room, turn on the floor lamp with half-lighting.", "tom"},
		{"If i am in the living room and hot and stuffy, turn on the air conditioner at the living room with 25 degrees of temperature setting and 60 percent of humidity setting.", "tom"},
		{"If i am in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.", "alan"},
		{"If emily is in the living room and a baseball game is on air, record the video recorder.", "alan"},
		{"If i am in the living room and muggy, turn on the air conditioner at the living room with 24 degrees of temperature setting and 55 percent of humidity setting.", "alan"},
		{"If i am in the living room and my favorite movie is on air, turn on the tv with 3 of channel setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, play the stereo with movie of mode setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, turn on the fluorescent light.", "emily"},
		{"If i am in the living room and sticky, turn on the air conditioner at the living room with 27 degrees of temperature setting and 65 percent of humidity setting.", "emily"},
	}
	var sawConflict bool
	for _, r := range rules {
		res, err := srv.Submit(r.src, r.owner)
		if err != nil {
			t.Fatalf("submit %q: %v", r.src, err)
		}
		if len(res.Conflicts) > 0 {
			sawConflict = true
		}
	}
	if !sawConflict {
		t.Fatal("the Sect. 3.1 rule set must produce conflicts (TV, stereo, air conditioner)")
	}

	// --- priority orders (Sect. 3.1's household policy) ---
	priorities := []struct {
		device  string
		users   []string
		context string
	}{
		{"tv", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"tv", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
		{"stereo", []string{"emily", "tom", "alan"}, "emily got home from shopping"},
		{"air conditioner", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"air conditioner", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
	}
	for _, p := range priorities {
		if err := srv.SetPriority(DeviceRef{Name: p.device}, p.users, p.context); err != nil {
			t.Fatalf("priority %s: %v", p.device, err)
		}
	}

	stereoPlaying := applianceState(t, hm, "living room", "stereo", device.SvcPlayback, "playing")
	stereoMode := applianceState(t, hm, "living room", "stereo", device.SvcPlayback, "mode")
	lampPower := applianceState(t, hm, "living room", "floor lamp", device.SvcSwitchPower, "power")
	lampBrightness := applianceState(t, hm, "living room", "floor lamp", device.SvcDimming, "brightness")
	tvPower := applianceState(t, hm, "living room", "tv", device.SvcSwitchPower, "power")
	tvChannel := applianceState(t, hm, "living room", "tv", device.SvcChannel, "channel")
	acPower := applianceState(t, hm, "living room", "air conditioner", device.SvcSwitchPower, "power")
	acTarget := applianceState(t, hm, "living room", "air conditioner", device.SvcThermostat, "target-temperature")
	recRecording := applianceState(t, hm, "living room", "video recorder", device.SvcRecording, "recording")
	fluorescent := applianceState(t, hm, "living room", "fluorescent light", device.SvcSwitchPower, "power")

	// --- 17:00: Tom comes to the living room (Fig. 1 *1) ---
	if err := hm.Arrive("tom", "living room", "return-home"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return stereoPlaying() == "1" && stereoMode() == "jazz" }, "Tom's jazz (s1)")
	waitFor(t, func() bool { return lampPower() == "1" && lampBrightness() == "50" }, "half-lit floor lamp (l1)")

	// The room turns hot and stuffy: Tom's air conditioner rule (a1).
	if err := hm.SetClimate("living room", 27, 66); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return acPower() == "1" && acTarget() == "25" }, "Tom's aircon (a1)")

	// --- 18:00: baseball game on air; Alan returns from work (*2) ---
	hm.Clock.Set(time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC))
	if err := hm.Step(0); err != nil { // refresh the EPG line-up
		t.Fatal(err)
	}
	if err := hm.Arrive("alan", "living room", "home-from-work"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return tvPower() == "1" && tvChannel() == "1" }, "Alan's game on TV (t2)")
	// Alan outranks Tom on the air conditioner now; the room is muggy for
	// him, so his stricter setting wins (a2).
	waitFor(t, func() bool { return acTarget() == "24" }, "Alan's aircon setting (a2)")

	// --- 19:00: the movie joins the line-up; Emily returns from shopping (*3) ---
	hm.Clock.Set(time.Date(2005, 3, 7, 19, 0, 0, 0, time.UTC))
	if err := hm.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := hm.Arrive("emily", "living room", "home-from-shopping"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return tvChannel() == "3" }, "Emily's movie on TV (t3)")
	waitFor(t, func() bool { return stereoMode() == "movie" }, "movie audio on the stereo (s3)")
	waitFor(t, func() bool { return fluorescent() == "1" }, "bright fluorescent light (l3)")
	waitFor(t, func() bool { return recRecording() == "1" }, "recorder picks up the game (r2)")
	// Emily outranks everyone on the aircon, but the room (27C/66%) is not
	// "sticky" for her (needs >29C/>75%), so her rule is not ready and
	// Alan's setting stays — consistent with arbitration over ready rules.
	if acTarget() != "24" {
		t.Errorf("aircon target = %s, want Alan's 24 (Emily's band not reached)", acTarget())
	}

	// The log records the hand-offs with suppressed losers.
	var sawSuppression bool
	for _, f := range srv.Log() {
		if len(f.Suppressed) > 0 {
			sawSuppression = true
		}
	}
	if !sawSuppression {
		t.Error("no arbitration recorded in the log")
	}
}

func TestPermissionsEnforced(t *testing.T) {
	perms := auth.New(true)
	srv, err := NewServer(NewNetwork(), WithPermissions(perms))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	for _, u := range []string{"tom", "kid"} {
		if err := srv.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	// The kid may only switch the hall light; everyone else is unrestricted
	// (default-allow, as in the paper's open prototype).
	perms.Allow("kid", DeviceRef{Name: "light", Location: "hall"}, "turn-on", "turn-off")

	if _, err := srv.Submit("Turn on the tv.", "kid"); !errors.Is(err, ErrForbidden) {
		t.Errorf("kid's tv rule error = %v, want ErrForbidden", err)
	}
	if _, err := srv.Submit("Turn on the light at the hall.", "kid"); err != nil {
		t.Errorf("kid's hall light rule rejected: %v", err)
	}
	if _, err := srv.Submit("Turn on the tv.", "tom"); err != nil {
		t.Errorf("tom's tv rule rejected: %v", err)
	}
	if len(srv.Rules()) != 2 {
		t.Errorf("rules = %d, want 2", len(srv.Rules()))
	}
}
