package cadel

// The observability bargain, enforced: with metrics and tracing enabled the
// steady-state interned pass must still allocate nothing, and the metrics
// accounting alone must cost at most 5% of the uninstrumented pass time.
// BenchmarkObsOverhead publishes the instrumented-vs-bare pair CI compares;
// TestObsOverheadGate enforces both budgets in tier-1 (`go test ./...`).
//
// benchwork instruments every workload by default (a live *obs.EngineMetrics
// and a warm trace ring — see benchwork.NewEngineWorkload); the bare rows
// strip it back out by appending overriding options.

import (
	"testing"
	"time"

	"repro/internal/benchwork"
	"repro/internal/engine"
)

// bareOpts strips the default instrumentation: no metrics sink, no trace
// ring — the pre-observability engine configuration.
func bareOpts() []engine.Option {
	return []engine.Option{engine.WithMetrics(nil), engine.WithTrace(0)}
}

// BenchmarkObsOverhead reruns the 1k-rule single-key evaluate workload at
// three instrumentation levels. CI diffs the pair: allocs/op must be 0 on
// all three rows and metrics ns/op at most 5% above bare. The full row
// (trace ring writes every pass) is published for the record but not
// ratio-gated — its budget is the zero-alloc contract, enforced here and in
// engine.TestTraceSteadyStateZeroAlloc.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		benchmarkEngineWorkload(b, "engine_evaluate", 1000, bareOpts()...)
	})
	b.Run("metrics", func(b *testing.B) {
		benchmarkEngineWorkload(b, "engine_evaluate", 1000, engine.WithTrace(0))
	})
	b.Run("full", func(b *testing.B) {
		benchmarkEngineWorkload(b, "engine_evaluate", 1000)
	})
}

// timeReplays runs iters replays and returns the wall time. Interleaved
// min-of-k sampling (below) filters scheduler noise the same way
// benchstat's min does.
func timeReplays(w *benchwork.EngineWorkload, iters int) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		w.Replay(i)
	}
	return time.Since(start)
}

// TestObsOverheadGate is the in-tree enforcement of the zero-alloc contract
// (internal/obs/README.md): the fully instrumented steady-state pass —
// metrics AND tracing on — allocates nothing, and metrics-only accounting
// stays within 5% of the bare pass time (min-of-7 interleaved samples,
// three attempts before declaring a regression).
func TestObsOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and skews timing")
	}
	if testing.Short() {
		t.Skip("timing gate")
	}

	full, err := benchwork.NewEngineWorkload("engine_evaluate", 1000)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	if allocs := testing.AllocsPerRun(300, func() {
		full.Replay(i)
		i++
	}); allocs != 0 {
		t.Fatalf("instrumented steady-state pass allocated %v times, want 0", allocs)
	}

	bare, err := benchwork.NewEngineWorkload("engine_evaluate", 1000, bareOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := benchwork.NewEngineWorkload("engine_evaluate", 1000, engine.WithTrace(0))
	if err != nil {
		t.Fatal(err)
	}

	const iters = 5000
	var lastBare, lastInst time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minBare, minInst := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 7; rep++ {
			if d := timeReplays(bare, iters); d < minBare {
				minBare = d
			}
			if d := timeReplays(metrics, iters); d < minInst {
				minInst = d
			}
		}
		lastBare, lastInst = minBare, minInst
		if minInst <= minBare+minBare/20 {
			return
		}
	}
	t.Errorf("metrics-on pass = %v for %d iters, bare = %v: overhead exceeds 5%%",
		lastInst, iters, lastBare)
}
