package cadel

// Benchmarks regenerating the paper's evaluation (Sect. 5) and the ablations
// called out in DESIGN.md.
//
//	E1a  BenchmarkDeviceRetrievalByName*    — 50 virtual UPnP devices, retrieve by
//	     friendly name (paper: <= 10 ms)
//	E1b  BenchmarkDeviceRetrievalByService* — same, by service name (paper: <= 10 ms)
//	E2a  BenchmarkExtractSameDeviceRules    — 10,000 registered rules, extract the
//	     100 targeting one device (paper: <= 10 ms)
//	E2b  BenchmarkConflictFeasibility100    — conjoin the new rule's 2 inequalities
//	     with each of the 100 extracted rules' 2 → 100 feasibility checks of 4
//	     inequalities (paper: ~0.2 ms)
//
// Ablations: indexed vs scan extraction, simplex vs interval feasibility,
// warm-cache vs cold-network retrieval, DNF cost, parse/compile cost, engine
// evaluation cost.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchwork"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/interval"
	"repro/internal/lang"
	"repro/internal/registry"
	"repro/internal/simplex"
	"repro/internal/upnp"
	"repro/internal/vocab"
)

// ---- E1: device retrieval over the UPnP network ----

// uniqueSvc is carried by exactly one of the 50 devices so service searches
// have a single answer.
const uniqueSvc = "urn:cadel-home:service:Unique:1"

func benchNetwork(b *testing.B, n int) (*upnp.ControlPoint, string) {
	b.Helper()
	network := upnp.NewNetwork()
	host, err := upnp.NewDeviceHost(network)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = host.Close() })
	target := ""
	for i := 0; i < n; i++ {
		unit := device.NewLight(fmt.Sprintf("bench light %d", i), i, "hall")
		if i == n/2 {
			unit.Dev.Services = append(unit.Dev.Services,
				upnp.NewService("urn:cadel-home:serviceId:Unique", uniqueSvc))
			target = unit.Dev.UDN
		}
		if err := unit.Publish(host); err != nil {
			b.Fatal(err)
		}
	}
	cp, err := upnp.NewControlPoint(network)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = cp.Close() })
	// Prime the cache so warm benches and Forget-based cold benches have a
	// stable starting point.
	deadline := time.Now().Add(5 * time.Second)
	for len(cp.Devices()) < n && time.Now().Before(deadline) {
		cp.Search(upnp.TargetAll, 100*time.Millisecond)
	}
	if len(cp.Devices()) < n {
		b.Fatalf("primed only %d/%d devices", len(cp.Devices()), n)
	}
	return cp, target
}

// BenchmarkDeviceRetrievalByNameCold is E1a: every iteration evicts the
// target and re-retrieves it over SSDP + HTTP (search, response, description
// fetch).
func BenchmarkDeviceRetrievalByNameCold(b *testing.B) {
	cp, target := benchNetwork(b, 50)
	name := fmt.Sprintf("bench light %d", 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Forget(target)
		if _, err := cp.FindByName(name, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRetrievalByNameWarm resolves against the control point's
// device table (the CyberLink-style getDevice path).
func BenchmarkDeviceRetrievalByNameWarm(b *testing.B) {
	cp, _ := benchNetwork(b, 50)
	name := fmt.Sprintf("bench light %d", 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.FindByName(name, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRetrievalByServiceCold is E1b.
func BenchmarkDeviceRetrievalByServiceCold(b *testing.B) {
	cp, target := benchNetwork(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Forget(target)
		if _, err := cp.FindByService(uniqueSvc, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRetrievalByServiceWarm is the cached variant of E1b.
func BenchmarkDeviceRetrievalByServiceWarm(b *testing.B) {
	cp, _ := benchNetwork(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.FindByService(uniqueSvc, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E2: conflict detection over the rule database ----

// paperRuleDB builds the paper's workload: total rules, sameDevice of which
// target "air conditioner", each condition a conjunction of two
// inequalities.
func paperRuleDB(b *testing.B, total, sameDevice int) *registry.DB {
	b.Helper()
	db := registry.New()
	for i := 0; i < total; i++ {
		deviceName := fmt.Sprintf("device-%d", i%((total/sameDevice)+1))
		if i < sameDevice {
			deviceName = "air conditioner"
		}
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  fmt.Sprintf("user%d", i%5),
			Device: core.DeviceRef{Name: deviceName},
			Action: core.Action{
				Verb: "turn-on",
				Settings: map[string]core.Value{
					"temperature": {IsNumber: true, Number: float64(20 + i%10)},
				},
			},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: "temperature", Op: simplex.GT, Value: float64(20 + i%10)},
				&core.Compare{Var: "humidity", Op: simplex.GT, Value: float64(50 + i%20)},
			}},
		}
		if err := db.Add(rule); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func newPaperRule() *core.Rule {
	return &core.Rule{
		ID:     "new",
		Owner:  "newuser",
		Device: core.DeviceRef{Name: "air conditioner"},
		Action: core.Action{
			Verb:     "turn-on",
			Settings: map[string]core.Value{"temperature": {IsNumber: true, Number: 19}},
		},
		Cond: &core.And{Terms: []core.Condition{
			&core.Compare{Var: "temperature", Op: simplex.GT, Value: 26},
			&core.Compare{Var: "humidity", Op: simplex.GT, Value: 65},
		}},
	}
}

// BenchmarkExtractSameDeviceRules is E2a: indexed extraction of the 100
// same-device rules out of 10,000.
func BenchmarkExtractSameDeviceRules(b *testing.B) {
	db := paperRuleDB(b, 10000, 100)
	ref := core.DeviceRef{Name: "air conditioner"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := db.SameDevice(ref); len(got) != 100 {
			b.Fatalf("extracted %d rules", len(got))
		}
	}
}

// BenchmarkExtractSameDeviceScan is the unindexed ablation of E2a.
func BenchmarkExtractSameDeviceScan(b *testing.B) {
	db := paperRuleDB(b, 10000, 100)
	ref := core.DeviceRef{Name: "air conditioner"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := db.SameDeviceScan(ref); len(got) != 100 {
			b.Fatalf("extracted %d rules", len(got))
		}
	}
}

// BenchmarkConflictFeasibility100 is E2b: the new rule against 100
// candidates — 100 feasibility checks of 4 inequalities via the simplex
// method, as in the paper's prototype.
func BenchmarkConflictFeasibility100(b *testing.B) {
	db := paperRuleDB(b, 10000, 100)
	candidates := db.SameDevice(core.DeviceRef{Name: "air conditioner"})
	if len(candidates) != 100 {
		b.Fatalf("candidates = %d", len(candidates))
	}
	newRule := newPaperRule()
	var checker conflict.Checker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.FindConflicts(newRule, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictFeasibility100Interval is the interval-propagation
// ablation of E2b.
func BenchmarkConflictFeasibility100Interval(b *testing.B) {
	db := paperRuleDB(b, 10000, 100)
	candidates := db.SameDevice(core.DeviceRef{Name: "air conditioner"})
	newRule := newPaperRule()
	checker := conflict.Checker{UseIntervalFastPath: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.FindConflicts(newRule, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistrationEndToEnd measures the whole paper flow per new rule:
// extraction plus conflict detection over the 10k-rule database.
func BenchmarkRegistrationEndToEnd(b *testing.B) {
	db := paperRuleDB(b, 10000, 100)
	newRule := newPaperRule()
	var checker conflict.Checker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		candidates := db.SameDevice(newRule.Device)
		if _, err := checker.FindConflicts(newRule, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro-benchmarks of the underlying solvers ----

func fourInequalities() []simplex.Constraint {
	return []simplex.Constraint{
		simplex.Bound("temperature", simplex.GT, 26),
		simplex.Bound("humidity", simplex.GT, 65),
		simplex.Bound("temperature", simplex.GT, 22),
		simplex.Bound("humidity", simplex.GT, 55),
	}
}

// BenchmarkFeasibilitySimplex4 solves one 4-inequality system (the paper's
// unit operation; it reports 0.2 ms for 100 of them).
func BenchmarkFeasibilitySimplex4(b *testing.B) {
	cs := fourInequalities()
	for i := 0; i < b.N; i++ {
		res, err := simplex.Feasible(cs)
		if err != nil || !res.Feasible {
			b.Fatal("expected feasible")
		}
	}
}

// BenchmarkFeasibilityInterval4 is the interval ablation of the same check.
func BenchmarkFeasibilityInterval4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		box := interval.NewBox()
		box.Constrain("temperature", interval.GreaterThan(26))
		box.Constrain("humidity", interval.GreaterThan(65))
		box.Constrain("temperature", interval.GreaterThan(22))
		box.Constrain("humidity", interval.GreaterThan(55))
		if !box.Feasible() {
			b.Fatal("expected feasible")
		}
	}
}

// BenchmarkDNF normalises a 3-level and/or condition (DNF cost ablation).
func BenchmarkDNF(b *testing.B) {
	cond := &core.And{Terms: []core.Condition{
		&core.Or{Terms: []core.Condition{
			&core.Compare{Var: "a", Op: simplex.GT, Value: 1},
			&core.Compare{Var: "b", Op: simplex.GT, Value: 2},
		}},
		&core.Or{Terms: []core.Condition{
			&core.Compare{Var: "c", Op: simplex.GT, Value: 3},
			&core.And{Terms: []core.Condition{
				&core.Compare{Var: "d", Op: simplex.GT, Value: 4},
				&core.Compare{Var: "e", Op: simplex.GT, Value: 5},
			}},
		}},
		&core.Compare{Var: "f", Op: simplex.LT, Value: 6},
	}}
	for i := 0; i < b.N; i++ {
		if _, err := core.ToDNF(cond); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- language front end ----

func benchLexicon(b *testing.B) *vocab.Lexicon {
	b.Helper()
	lex := vocab.Default()
	if err := lex.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom"); err != nil {
		b.Fatal(err)
	}
	return lex
}

const benchRuleSrc = "If humidity is higher than 80 percent and temperature is higher than " +
	"28 degrees, turn on the air conditioner with 25 degrees of temperature setting."

// BenchmarkParseRule measures the CADEL parser on the paper's example rule 1.
func BenchmarkParseRule(b *testing.B) {
	lex := benchLexicon(b)
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(benchRuleSrc, lex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileRule measures AST-to-rule-object compilation, including
// user-word expansion.
func BenchmarkCompileRule(b *testing.B) {
	lex := benchLexicon(b)
	cmd, err := lang.Parse("If hot and stuffy, turn on the air conditioner "+
		"with 25 degrees of temperature setting.", lex)
	if err != nil {
		b.Fatal(err)
	}
	def := cmd.(*lang.RuleDef)
	compiler := core.NewCompiler(lex)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.CompileRule(def, "r", "tom"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- execution engine ----

// benchmarkEngineWorkload times one named benchwork workload: replay the
// event stream against the seeded steady-state engine. The events are built
// outside the timed loop so the reported allocs/op are the engine's own: the
// interned hot path must show 0 on the non-firing workloads.
func benchmarkEngineWorkload(b *testing.B, name string, n int, opts ...engine.Option) {
	w, err := benchwork.NewEngineWorkload(name, n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Replay(i)
	}
}

// BenchmarkEngineEvaluate compares the symbol-interned incremental evaluator
// (the default) against the string-keyed incremental oracle and the
// full-scan oracle at 100, 1k and 10k rules, for a single-key change (the
// paper's Example Rule 1 shape: the incremental evaluator re-checks only the
// one affected rule via the dependency index; the full scan walks all n).
// The acceptance targets are 0 allocs/op and ≥ 2x over the string-keyed path
// at 10k rules on the interned path; cmd/corebench records the same sweep in
// BENCH_core.json.
func BenchmarkEngineEvaluate(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("incremental-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "engine_evaluate", n)
		})
		b.Run(fmt.Sprintf("stringkeys-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "engine_evaluate", n, engine.WithStringKeys())
		})
		b.Run(fmt.Sprintf("fullscan-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "engine_evaluate", n, engine.WithFullScan())
		})
	}
}

// BenchmarkEngineEvaluateFiring is the same single-key workload but with the
// sensor value crossing rule 0's threshold every iteration, so each pass
// flips readiness, re-arbitrates the device and appends to the fired log —
// the full hot path, not just evaluation.
func BenchmarkEngineEvaluateFiring(b *testing.B) {
	b.Run("interned", func(b *testing.B) {
		benchmarkEngineWorkload(b, "engine_evaluate_firing", 1000, engine.WithLogLimit(64))
	})
	b.Run("stringkeys", func(b *testing.B) {
		benchmarkEngineWorkload(b, "engine_evaluate_firing", 1000, engine.WithLogLimit(64), engine.WithStringKeys())
	})
}

// BenchmarkPresenceEval sweeps the presence-churn workload (the paper's
// Example Rules 2/3: a user moving between rooms re-evaluates every
// quantified presence condition without flipping any readiness) across rule
// counts and evaluator configurations. Acceptance: 0 allocs/op on the
// interned rows; the string-keyed oracle iterates the location map per
// quantifier.
func BenchmarkPresenceEval(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("interned-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "presence_eval", n)
		})
		b.Run(fmt.Sprintf("stringkeys-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "presence_eval", n, engine.WithStringKeys())
		})
	}
}

// BenchmarkArbitrate sweeps the arbitration-churn workload (presence churn
// dirties the contextual priority order's dependency, so every pass
// re-arbitrates the stereo's contenders — and the winner never changes, so
// nothing fires) across rule counts and evaluator configurations. The
// interned path rank-scans the pre-interned owner index; the string-keyed
// oracle rebuilds an owner-position map and sorts per reconciliation.
// Acceptance: 0 allocs/op on the interned rows, flat from 100 to 10k rules.
func BenchmarkArbitrate(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("interned-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "arbitrate", n)
		})
		b.Run(fmt.Sprintf("stringkeys-%d", n), func(b *testing.B) {
			benchmarkEngineWorkload(b, "arbitrate", n, engine.WithStringKeys())
		})
	}
}

// BenchmarkArbitrateHandoff is the firing variant: every pass the applicable
// priority order flips, the stereo hands off between two owners and the
// action is dispatched and logged — the paper's Fig. 1 stereo hand-off,
// including the ranked-list build and log append.
func BenchmarkArbitrateHandoff(b *testing.B) {
	b.Run("interned", func(b *testing.B) {
		benchmarkEngineWorkload(b, "arbitrate_handoff", 1000, engine.WithLogLimit(64))
	})
	b.Run("stringkeys", func(b *testing.B) {
		benchmarkEngineWorkload(b, "arbitrate_handoff", 1000, engine.WithLogLimit(64), engine.WithStringKeys())
	})
}

// BenchmarkRuleChurn measures one rule-lifecycle step (add a unique-named
// rule, remove the oldest, evaluate) over a fixed live window — the workload
// that grows the symtab and every id-indexed slice forever without epoch
// compaction. The compact rows run the default dead-id watermark (epochs
// amortize across steps); the nocompact rows are the unbounded-growth
// baseline the watermark is measured against.
func BenchmarkRuleChurn(b *testing.B) {
	for _, live := range []int{1000} {
		b.Run(fmt.Sprintf("compact-%d", live), func(b *testing.B) {
			benchmarkRuleChurn(b, live)
		})
		b.Run(fmt.Sprintf("nocompact-%d", live), func(b *testing.B) {
			benchmarkRuleChurn(b, live, engine.WithCompactFloor(0))
		})
	}
}

func benchmarkRuleChurn(b *testing.B, live int, opts ...engine.Option) {
	w, err := benchwork.NewChurnWorkload(live, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.Symbols()), "symbols")
}

// ---- fleet hub ----

// buildFleetHub seeds a hub with the standard benchwork fleet workload.
func buildFleetHub(b *testing.B, homes, shards int) (*fleet.Hub, []string) {
	b.Helper()
	hub, ids, err := benchwork.BuildHub(homes, shards)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = hub.Close() })
	return hub, ids
}

// benchmarkFleetIngest measures end-to-end ingestion throughput: b.N sensor
// events spread round-robin over the homes, every event flipping its home's
// rule readiness (so each coalesced pass re-arbitrates and fires), timed
// until the last shard has drained. The reported events/sec is the number to
// compare across shard counts.
func benchmarkFleetIngest(b *testing.B, homes, shards int) {
	hub, ids := buildFleetHub(b, homes, shards)
	var idx atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := idx.Add(1)
			home := ids[i%uint64(homes)]
			if err := hub.PostEvent(home, device.TypeThermometer, "thermometer",
				"living room", map[string]string{"temperature": benchwork.FleetEventValue(i, homes)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := hub.Quiesce(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFleetIngest sweeps fleet size × shard count. The ISSUE's
// acceptance target is ≥ 3x events/sec at 4 shards vs 1 shard on the
// 10k-home workload; cmd/fleetbench emits the same sweep as BENCH_fleet.json
// for CI trend tracking.
func BenchmarkFleetIngest(b *testing.B) {
	for _, homes := range []int{1000, 10000, 100000} {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("homes=%d/shards=%d", homes, shards), func(b *testing.B) {
				benchmarkFleetIngest(b, homes, shards)
			})
		}
	}
}

// BenchmarkFleetSubmit measures rule registration throughput across a
// sharded hub (parse + compile + consistency + conflict check + store-less
// registration), round-robin over 1000 homes.
func BenchmarkFleetSubmit(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			hub, ids := buildFleetHub(b, 1000, shards)
			var idx atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := idx.Add(1)
					if _, err := hub.Submit(ids[i%uint64(len(ids))],
						"If humidity is higher than 60 percent, turn on the fan.", "u"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkRegistryAdd measures rule insertion with index maintenance.
func BenchmarkRegistryAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := registry.New()
		rules := make([]*core.Rule, 1000)
		for j := range rules {
			rules[j] = &core.Rule{
				ID:     fmt.Sprintf("r%d", j),
				Owner:  "u",
				Device: core.DeviceRef{Name: fmt.Sprintf("d%d", j%50)},
				Action: core.Action{Verb: "turn-on"},
				Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 20},
			}
		}
		b.StartTimer()
		for _, r := range rules {
			if err := db.Add(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
