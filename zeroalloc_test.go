package cadel

// The tentpole allocation budgets, enforced as tests so a regression fails
// tier-1 (`go test ./...`), not just the benchmark trend: steady-state
// presence churn (quantified conditions re-evaluated every pass) and
// steady-state arbitration churn (the contextual order's dependency dirtied
// every pass, winner unchanged) must run the interned firing path with zero
// heap allocations. The single-key variant lives in
// internal/engine.TestInternedSteadyStateZeroAlloc.

import (
	"testing"

	"repro/internal/benchwork"
)

func assertZeroAlloc(t *testing.T, workload string) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	w, err := benchwork.NewEngineWorkload(workload, 100)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		w.Replay(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state %s pass allocated %v times, want 0", workload, allocs)
	}
}

// TestPresenceChurnZeroAlloc: Example Rules 2/3 shape — a user moving
// between rooms re-evaluates nobody/everyone/someone-at with no allocation.
func TestPresenceChurnZeroAlloc(t *testing.T) { assertZeroAlloc(t, "presence_eval") }

// TestArbitrationChurnZeroAlloc: the Fig. 1 shape without a hand-off —
// every pass re-arbitrates the stereo's contenders through the interned
// owner-rank index with no allocation.
func TestArbitrationChurnZeroAlloc(t *testing.T) { assertZeroAlloc(t, "arbitrate") }
