// Package logserver is the remote record-log service behind fleet.RemoteStore:
// a small HTTP front on fleet.FileStore that makes one node's crash-atomic
// journal a durable store for a fleet of hubs. The FileStore's snapshot/WAL
// semantics are the correctness oracle — the server adds exactly three
// things on top:
//
//   - Idempotent appends. Every append carries a {home, seq} key; the server
//     applies each pair at most once and answers retried or duplicated
//     deliveries with {"applied": false} instead of appending twice. Per-home
//     sequences are monotonic with gaps allowed (a hub that rolls a mutation
//     back burns its seq).
//
//   - Seq durability. The last applied seq per home must survive snapshots
//     and restarts — otherwise a restarted server would silently deduplicate
//     a fresh client's first writes. Appended records carry their seq in the
//     WAL; WriteSnapshot injects one seq-mark record per home into the
//     snapshot; boot replays both to rebuild the table.
//
//   - Complete replay streams. GET /log/replay ends with a replay-end record
//     carrying the stream's line count, so a client can tell a complete
//     stream from one cut short by a dying server and retry instead of
//     rehydrating half a fleet.
//
// Endpoints:
//
//	POST /log/append    body: one Record (JSON, Seq > 0)   → 200 {"applied","seq"}
//	GET  /log/replay    → JSONL: records, seq-marks, replay-end
//	POST /log/snapshot  body: JSONL records                → 204
//	GET  /healthz       → 200 {"records","homes","sync"}
//
// Appends from different homes run concurrently (and group-commit their
// fsyncs, see fleet.WithSync); appends for one home serialize on a per-home
// lock so a duplicated delivery racing its original blocks until the
// original's outcome is known, rather than acking a record that never lands.
package logserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fleet"
)

// Config configures a Server.
type Config struct {
	// Dir is the FileStore directory.
	Dir string
	// NoSync opens the store without per-append fsync. The default (false)
	// is durable appends: the server is a source of truth, not a shadow.
	NoSync bool
	// MaxBodyBytes caps request bodies; 0 means the default (8 MiB).
	MaxBodyBytes int64
}

const defaultMaxBody = 8 << 20

// Server is the record-log service. Create with New, mount Handler on an
// http.Server, Close when done.
type Server struct {
	cfg   Config
	store *fleet.FileStore

	// global serializes whole-log operations (replay, snapshot) against
	// appends: appends hold it shared, so they still run concurrently with
	// each other.
	global sync.RWMutex

	mu    sync.Mutex // guards homes
	homes map[string]*homeSeq

	records atomic.Uint64 // live records (boot replay + appends since)
}

// homeSeq serializes one home's appends and tracks its idempotency highwater.
type homeSeq struct {
	mu      sync.Mutex
	lastSeq uint64
}

// New opens the store in cfg.Dir and rebuilds the per-home seq table from a
// boot replay (record seqs plus snapshot seq-marks).
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	var opts []fleet.FileOption
	if !cfg.NoSync {
		opts = append(opts, fleet.WithSync())
	}
	store, err := fleet.OpenFileStore(cfg.Dir, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, store: store, homes: make(map[string]*homeSeq)}
	var n uint64
	err = store.Replay(func(rec fleet.Record) error {
		if rec.Seq > 0 {
			h := s.home(rec.Home)
			if rec.Seq > h.lastSeq {
				h.lastSeq = rec.Seq
			}
		}
		if rec.Kind != fleet.RecordSeqMark {
			n++
		}
		return nil
	})
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("logserver: boot replay: %w", err)
	}
	s.records.Store(n)
	return s, nil
}

// Store exposes the underlying FileStore (fault-injection hooks in the crash
// harness).
func (s *Server) Store() *fleet.FileStore { return s.store }

// Close closes the underlying store.
func (s *Server) Close() error { return s.store.Close() }

func (s *Server) home(name string) *homeSeq {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.homes[name]
	if h == nil {
		h = &homeSeq{}
		s.homes[name] = h
	}
	return h
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /log/append", s.handleAppend)
	mux.HandleFunc("GET /log/replay", s.handleReplay)
	mux.HandleFunc("POST /log/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var rec fleet.Record
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "bad record: %v", err)
		return
	}
	if rec.Home == "" {
		httpError(w, http.StatusBadRequest, "append requires a home")
		return
	}
	if rec.Seq == 0 {
		httpError(w, http.StatusBadRequest, "append requires a seq (idempotency key)")
		return
	}
	if rec.Kind == fleet.RecordSeqMark || rec.Kind == fleet.RecordReplayEnd {
		httpError(w, http.StatusBadRequest, "kind %q is reserved for the log protocol", rec.Kind)
		return
	}

	s.global.RLock()
	defer s.global.RUnlock()
	h := s.home(rec.Home)
	h.mu.Lock()
	defer h.mu.Unlock()
	applied := false
	if rec.Seq > h.lastSeq {
		if err := s.store.Append(rec); err != nil {
			// FileStore.Append rolls a failed write back (or closes the store),
			// so the record is not in the log: leave lastSeq untouched and let
			// the client retry the same seq.
			httpError(w, http.StatusInternalServerError, "append: %v", err)
			return
		}
		h.lastSeq = rec.Seq
		s.records.Add(1)
		applied = true
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fleet.AppendResponse{Applied: applied, Seq: rec.Seq})
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	s.global.Lock()
	defer s.global.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var lines uint64
	var streamErr error
	err := s.store.Replay(func(rec fleet.Record) error {
		if rec.Kind == fleet.RecordSeqMark {
			// Folded into the seq table at boot; fresh marks follow below.
			return nil
		}
		if err := enc.Encode(rec); err != nil {
			streamErr = err
			return err
		}
		lines++
		return nil
	})
	if err != nil && streamErr == nil {
		// The log itself failed to replay and nothing is on the wire yet in
		// the common case; report it. If bytes already went out, the missing
		// replay-end record tells the client the stream is incomplete.
		httpError(w, http.StatusInternalServerError, "replay: %v", err)
		return
	}
	if err == nil {
		for _, mark := range s.seqMarks() {
			if err := enc.Encode(mark); err != nil {
				return // cut stream: no replay-end, client retries
			}
			lines++
		}
		// The trailer carries the line count in Epoch so the client can verify
		// it saw the whole stream.
		if err := enc.Encode(fleet.Record{Kind: fleet.RecordReplayEnd, Epoch: lines}); err != nil {
			return
		}
	}
	bw.Flush()
}

// seqMarks snapshots the seq table as seq-mark records in stable order.
func (s *Server) seqMarks() []fleet.Record {
	s.mu.Lock()
	marks := make([]fleet.Record, 0, len(s.homes))
	for name, h := range s.homes {
		if h.lastSeq > 0 {
			marks = append(marks, fleet.Record{Home: name, Kind: fleet.RecordSeqMark, Seq: h.lastSeq})
		}
	}
	s.mu.Unlock()
	sort.Slice(marks, func(i, j int) bool { return marks[i].Home < marks[j].Home })
	return marks
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var recs []fleet.Record
	dec := json.NewDecoder(bufio.NewReader(body))
	for {
		var rec fleet.Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			httpError(w, http.StatusBadRequest, "bad snapshot record: %v", err)
			return
		}
		if rec.Kind == fleet.RecordSeqMark || rec.Kind == fleet.RecordReplayEnd {
			continue // protocol kinds are server-owned; never client state
		}
		recs = append(recs, rec)
	}

	s.global.Lock()
	defer s.global.Unlock()
	// The snapshot replaces the whole log, so it must also carry the seq
	// table: one seq-mark per home, or a restart would forget the highwaters
	// and deduplicate fresh writes.
	recs = append(recs, s.seqMarks()...)
	if err := s.store.WriteSnapshot(recs); err != nil {
		httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	var n uint64
	for _, rec := range recs {
		if rec.Kind != fleet.RecordSeqMark {
			n++
		}
	}
	s.records.Store(n)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	homes := len(s.homes)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"records": s.records.Load(),
		"homes":   homes,
		"sync":    !s.cfg.NoSync,
	})
}

// ReadReplayStream is the client-side replay-stream parser shared by
// fleet.RemoteStore's tests and the crash harness: it decodes a JSONL replay
// stream, verifies the replay-end trailer, and returns the records and
// seq-marks separately. It errors on a stream with no (or inconsistent)
// trailer.
func ReadReplayStream(r io.Reader) (recs, marks []fleet.Record, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var lines uint64
	complete := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec fleet.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("logserver: replay stream: %w", err)
		}
		switch rec.Kind {
		case fleet.RecordReplayEnd:
			if rec.Epoch != lines {
				return nil, nil, fmt.Errorf("logserver: replay stream claims %d lines, saw %d", rec.Epoch, lines)
			}
			complete = true
		case fleet.RecordSeqMark:
			lines++
			marks = append(marks, rec)
		default:
			lines++
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("logserver: replay stream: %w", err)
	}
	if !complete {
		return nil, nil, errors.New("logserver: replay stream ended without replay-end record")
	}
	return recs, marks, nil
}
