package logserver_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/logserver"
)

func newServer(t *testing.T, dir string) (*logserver.Server, *httptest.Server) {
	t.Helper()
	srv, err := logserver.New(logserver.Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func fastRemote(url string, opts ...fleet.RemoteOption) *fleet.RemoteStore {
	base := []fleet.RemoteOption{
		fleet.RemoteWithSeed(7),
		fleet.RemoteWithTimeout(2 * time.Second),
		fleet.RemoteWithBackoff(time.Millisecond, 10*time.Millisecond),
	}
	return fleet.OpenRemoteStore(url, append(base, opts...)...)
}

func stripSeq(recs []fleet.Record) []fleet.Record {
	out := make([]fleet.Record, len(recs))
	for i, rec := range recs {
		rec.Seq = 0
		out[i] = rec
	}
	return out
}

func remoteReplay(t *testing.T, s *fleet.RemoteStore) []fleet.Record {
	t.Helper()
	var out []fleet.Record
	if err := s.Replay(func(rec fleet.Record) error { out = append(out, rec); return nil }); err != nil {
		t.Fatalf("remote replay: %v", err)
	}
	return out
}

func postAppend(t *testing.T, url string, rec fleet.Record) fleet.AppendResponse {
	t.Helper()
	body, _ := json.Marshal(rec)
	resp, err := http.Post(url+"/log/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %s", resp.Status)
	}
	var ar fleet.AppendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

func TestLogServerAppendDeduplicates(t *testing.T) {
	_, ts := newServer(t, t.TempDir())
	rec := fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: "r1", Source: "src", Seq: 1}
	if ar := postAppend(t, ts.URL, rec); !ar.Applied {
		t.Fatalf("first delivery applied = false")
	}
	// The retried/duplicated delivery of the same {home, seq} must not apply.
	if ar := postAppend(t, ts.URL, rec); ar.Applied {
		t.Fatalf("duplicate delivery applied = true")
	}
	// A stale seq (lower than the highwater) is also a duplicate.
	if ar := postAppend(t, ts.URL, fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: "r0", Seq: 1}); ar.Applied {
		t.Fatalf("stale seq applied = true")
	}
	s := fastRemote(ts.URL)
	got := remoteReplay(t, s)
	if len(got) != 1 || got[0].ID != "r1" {
		t.Fatalf("replay = %+v, want exactly the one applied record", got)
	}
}

func TestLogServerRejectsBadAppends(t *testing.T) {
	_, ts := newServer(t, t.TempDir())
	cases := []fleet.Record{
		{Kind: fleet.RecordRule, ID: "r", Seq: 1},        // no home
		{Home: "a", Kind: fleet.RecordRule, ID: "r"},     // no seq
		{Home: "a", Kind: fleet.RecordSeqMark, Seq: 2},   // reserved kind
		{Home: "a", Kind: fleet.RecordReplayEnd, Seq: 2}, // reserved kind
	}
	for _, rec := range cases {
		body, _ := json.Marshal(rec)
		resp, err := http.Post(ts.URL+"/log/append", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("append %+v status = %s, want 400", rec, resp.Status)
		}
	}
}

func TestLogServerRoundTripThroughRemoteStore(t *testing.T) {
	dir := t.TempDir()
	_, ts := newServer(t, dir)
	s := fastRemote(ts.URL)

	var want []fleet.Record
	for i := 0; i < 10; i++ {
		rec := fleet.Record{
			Home: fmt.Sprintf("home-%d", i%3), Kind: fleet.RecordRule,
			ID: fmt.Sprintf("r%d", i), Owner: "tom", Source: fmt.Sprintf("src-%d", i),
		}
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if got := stripSeq(remoteReplay(t, fastRemote(ts.URL))); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
}

func TestLogServerSeqSurvivesRestartAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, err := logserver.New(logserver.Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	s := fastRemote(ts.URL)
	var want []fleet.Record
	for i := 0; i < 6; i++ {
		rec := fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: fmt.Sprintf("r%d", i), Source: "s"}
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	// Snapshot compacts the log; the seq table must ride along as seq-marks.
	if err := s.WriteSnapshot(want); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: a fresh client must resume at seq 7,
	// not restart at 1 (which the server would silently deduplicate).
	srv2, err := logserver.New(logserver.Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()
	s2 := fastRemote(ts2.URL)
	got := remoteReplay(t, s2)
	if !reflect.DeepEqual(stripSeq(got), stripSeq(want)) {
		t.Fatalf("replay after restart = %+v, want %+v", got, want)
	}
	extra := fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: "r-extra", Source: "s"}
	if err := s2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if ar := postAppend(t, ts2.URL, fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: "dup", Seq: 6}); ar.Applied {
		t.Fatal("pre-snapshot seq applied after restart: seq table was lost")
	}
	final := remoteReplay(t, fastRemote(ts2.URL))
	if n := len(final); n != 7 {
		t.Fatalf("final replay has %d records, want 7: %+v", n, final)
	}
	if last := final[len(final)-1]; last.ID != "r-extra" || last.Seq != 7 {
		t.Fatalf("post-restart append = %+v, want r-extra with seq 7", last)
	}
}

func TestLogServerReplayStreamHasValidTrailer(t *testing.T) {
	_, ts := newServer(t, t.TempDir())
	s := fastRemote(ts.URL)
	for i := 0; i < 3; i++ {
		if err := s.Append(fleet.Record{Home: "a", Kind: fleet.RecordRule, ID: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/log/replay")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs, marks, err := logserver.ReadReplayStream(resp.Body)
	if err != nil {
		t.Fatalf("replay stream invalid: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("stream carries %d records, want 3", len(recs))
	}
	if len(marks) != 1 || marks[0].Home != "a" || marks[0].Seq != 3 {
		t.Fatalf("stream seq-marks = %+v, want one mark for home a at 3", marks)
	}
}

// TestLogServerExactlyOnceUnderFlakyTransport drives appends through a
// fault-injecting transport — timeouts, resets before and after delivery,
// injected 500s, duplicated deliveries — and asserts the log applied every
// record exactly once, in per-home order.
func TestLogServerExactlyOnceUnderFlakyTransport(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			_, ts := newServer(t, t.TempDir())
			tr := faultinject.NewTransport(faultinject.Config{
				Seed:         seed,
				TimeoutP:     0.05,
				ResetBeforeP: 0.10,
				ResetAfterP:  0.15,
				HTTP500P:     0.10,
				DuplicateP:   0.15,
			}, ts.Client().Transport)
			s := fastRemote(ts.URL,
				fleet.RemoteWithTransport(tr),
				fleet.RemoteWithRetries(50),
				fleet.RemoteWithBreaker(0, 0), // patience, not fail-fast: every append must land
				fleet.RemoteWithTimeout(time.Second),
			)
			var want []fleet.Record
			for i := 0; i < 60; i++ {
				rec := fleet.Record{
					Home: fmt.Sprintf("home-%d", i%4), Kind: fleet.RecordRule,
					ID: fmt.Sprintf("r%d", i), Source: strings.Repeat("x", 1+i%5),
				}
				if err := s.Append(rec); err != nil {
					t.Fatalf("append %d under faults: %v", i, err)
				}
				want = append(want, rec)
			}
			st := tr.Stats()
			if st == (faultinject.Stats{}) {
				t.Fatal("fault transport injected nothing; test is vacuous")
			}
			t.Logf("injected faults: %+v", st)

			// Exactly once, in order, through a clean client.
			got := stripSeq(remoteReplay(t, fastRemote(ts.URL)))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("replay after faulty run:\n got %d records %+v\nwant %d records", len(got), got, len(want))
			}
		})
	}
}
