package logserver_test

// The crash-recovery harness: a logserver runs in a child process with a
// fault plan that kills it (os.Exit mid-syscall, no defers, no flushes) at a
// chosen point — half-way through a WAL write, after the write but before
// the ack, or at a chosen step inside WriteSnapshot. A supervisor restarts
// the dead server on the same address with the next plan while a
// RemoteStore-driven workload retries every append until it is acked. At the
// end, the log's replay must match a never-crashed FileStore twin fed the
// same workload: no record lost, none doubly applied, per-home order intact.

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/logserver"
)

// TestHelperProcess is the child-process entry point: it runs a logserver
// under the fault plan in LOGSERVER_PLAN until the plan kills it (exit 2) or
// the supervisor does. It is a no-op under a normal `go test` run.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("LOGSERVER_HELPER") != "1" {
		return
	}
	dir := os.Getenv("LOGSERVER_DIR")
	addr := os.Getenv("LOGSERVER_ADDR")
	plan := os.Getenv("LOGSERVER_PLAN")

	srv, err := logserver.New(logserver.Config{Dir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(3)
	}
	hooks, err := planHooks(plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(3)
	}
	srv.Store().SetFaultHooks(hooks)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(3)
	}
	fmt.Println("READY")
	_ = http.Serve(ln, srv.Handler())
	os.Exit(0)
}

// planHooks parses a fault plan:
//
//	none                  run clean
//	append-kill:N         on the N'th WAL write, emit half the record and die
//	append-kill-after:N   on the N'th WAL write, emit the whole record and die
//	snap-kill:STEP        die when WriteSnapshot reaches STEP (fleet.SnapshotStep)
func planHooks(plan string) (fleet.FaultHooks, error) {
	die := func() { os.Exit(2) }
	kind, arg, _ := strings.Cut(plan, ":")
	switch kind {
	case "", "none":
		return fleet.FaultHooks{}, nil
	case "append-kill", "append-kill-after":
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return fleet.FaultHooks{}, fmt.Errorf("plan %q: %w", plan, err)
		}
		return faultinject.CrashOnAppend(n, kind == "append-kill", die), nil
	case "snap-kill":
		return faultinject.CrashOnSnapshotStep(fleet.SnapshotStep(arg), die), nil
	default:
		return fleet.FaultHooks{}, fmt.Errorf("unknown plan %q", plan)
	}
}

// supervisor runs the helper-process logserver on a fixed address, feeding it
// one fault plan per incarnation and restarting it when a plan kills it.
type supervisor struct {
	t    *testing.T
	dir  string
	addr string

	mu      sync.Mutex
	plans   []string // remaining plans; empty means "none"
	cmd     *exec.Cmd
	stopped bool
	starts  int
}

func newSupervisor(t *testing.T, dir string, plans []string) *supervisor {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	s := &supervisor{t: t, dir: dir, addr: addr, plans: plans}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.startLocked()
	return s
}

func (s *supervisor) nextPlanLocked() string {
	if len(s.plans) == 0 {
		return "none"
	}
	plan := s.plans[0]
	s.plans = s.plans[1:]
	return plan
}

func (s *supervisor) startLocked() {
	plan := s.nextPlanLocked()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperProcess$")
	cmd.Env = append(os.Environ(),
		"LOGSERVER_HELPER=1",
		"LOGSERVER_DIR="+s.dir,
		"LOGSERVER_ADDR="+s.addr,
		"LOGSERVER_PLAN="+plan,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		s.t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		s.t.Fatal(err)
	}
	s.cmd = cmd
	s.starts++
	s.t.Logf("logserver[%d] starting with plan %q on %s", s.starts, plan, s.addr)

	ready := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "READY" {
				ready <- true
				break
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(15 * time.Second):
		s.t.Fatalf("logserver[%d] (plan %q) never became ready", s.starts, plan)
	}

	// Reap the incarnation; when the plan kills it, bring up the next one.
	go func(cmd *exec.Cmd, n int) {
		err := cmd.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.stopped {
			return
		}
		s.t.Logf("logserver[%d] exited (%v); restarting", n, err)
		s.startLocked()
	}(cmd, s.starts)
}

func (s *supervisor) baseURL() string { return "http://" + s.addr }

func (s *supervisor) stop() {
	s.mu.Lock()
	cmd := s.cmd
	s.stopped = true
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
}

// retryDegraded retries fn while the store reports itself degraded (the
// window where the server is down and restarting); any other failure is
// fatal. This is the supervised deployment mode the exactly-once claim
// covers: the same logical record (same seq) is retried until acked.
func retryDegraded(t *testing.T, what string, fn func() error) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		err := fn()
		if err == nil {
			return
		}
		if !errors.Is(err, fleet.ErrStoreDegraded) {
			t.Fatalf("%s: non-degraded failure: %v", what, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still degraded after 60s: %v", what, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCrashRecoveryHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness forks helper processes")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runCrashScenario(t, seed)
		})
	}
}

func runCrashScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	homes := []string{"alpha", "beta", "gamma"}
	const total = 48

	// One mid-append kill, one after-append (durable but unacked) kill, one
	// kill inside WriteSnapshot at a seed-chosen step, then clean restarts.
	snapSteps := []fleet.SnapshotStep{
		fleet.StepWALCreate, fleet.StepTempWrite, fleet.StepTempSync,
		fleet.StepRename, fleet.StepDirSync, fleet.StepCommit,
	}
	plans := []string{
		fmt.Sprintf("append-kill:%d", 4+rng.Intn(8)),
		fmt.Sprintf("append-kill-after:%d", 3+rng.Intn(8)),
		fmt.Sprintf("snap-kill:%s", snapSteps[rng.Intn(len(snapSteps))]),
	}
	rng.Shuffle(len(plans), func(i, j int) { plans[i], plans[j] = plans[j], plans[i] })
	t.Logf("plans: %v", plans)

	sup := newSupervisor(t, t.TempDir(), plans)
	defer sup.stop()

	// The driver's transport is flaky on top of the crashes.
	tr := faultinject.NewTransport(faultinject.Config{
		Seed:        seed,
		ResetAfterP: 0.05,
		HTTP500P:    0.05,
		DuplicateP:  0.10,
	}, nil)
	// Retries stay INSIDE one Append call: a retried call reuses the record's
	// seq, so an append whose first delivery landed without its ack
	// deduplicates instead of double-applying. (Calling Append again after a
	// degraded failure would assign a fresh seq — the in-doubt window the
	// Store contract documents.) The budget is sized to outlast a restart.
	client := fleet.OpenRemoteStore(sup.baseURL(),
		fleet.RemoteWithSeed(seed),
		fleet.RemoteWithTransport(tr),
		fleet.RemoteWithTimeout(2*time.Second),
		fleet.RemoteWithRetries(400),
		fleet.RemoteWithBackoff(5*time.Millisecond, 100*time.Millisecond),
		fleet.RemoteWithBreaker(0, 0), // the supervisor is the recovery path
	)

	// The oracle: a local FileStore fed the exact same workload, no crashes.
	oracle, err := fleet.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	var expected []fleet.Record
	snapshotAt := map[int]bool{total / 3: true, 2 * total / 3: true}
	for i := 0; i < total; i++ {
		rec := fleet.Record{
			Home: homes[rng.Intn(len(homes))], Kind: fleet.RecordRule,
			ID: fmt.Sprintf("rec-%d", i), Owner: "tom",
			Source: fmt.Sprintf("when temp > %d then turn off heater", rng.Intn(40)),
		}
		if err := client.Append(rec); err != nil {
			t.Fatalf("append %s never acked: %v", rec.ID, err)
		}
		if err := oracle.Append(rec); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, rec)

		if snapshotAt[i] {
			recs := append([]fleet.Record(nil), expected...)
			retryDegraded(t, "snapshot", func() error { return client.WriteSnapshot(recs) })
			if err := oracle.WriteSnapshot(recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Logf("transport faults injected: %+v", tr.Stats())

	// Verify through a clean client against the (possibly restarted) server.
	verifier := fleet.OpenRemoteStore(sup.baseURL(),
		fleet.RemoteWithSeed(seed+100),
		fleet.RemoteWithTimeout(2*time.Second),
		fleet.RemoteWithRetries(20),
		fleet.RemoteWithBackoff(5*time.Millisecond, 100*time.Millisecond),
		fleet.RemoteWithBreaker(0, 0),
	)
	var got []fleet.Record
	retryDegraded(t, "final replay", func() error {
		got = got[:0]
		return verifier.Replay(func(rec fleet.Record) error { got = append(got, rec); return nil })
	})

	var want []fleet.Record
	if err := oracle.Replay(func(rec fleet.Record) error { want = append(want, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSeq(got), stripSeq(want)) {
		t.Fatalf("crashed server's log diverged from the never-crashed twin:\n got %d records: %+v\nwant %d records: %+v",
			len(got), stripSeq(got), len(want), stripSeq(want))
	}

	// Exactly once: every workload record present, none twice.
	count := map[string]int{}
	for _, rec := range got {
		count[rec.Home+"/"+rec.ID]++
	}
	if len(count) != total {
		t.Fatalf("replay has %d distinct records, want %d", len(count), total)
	}
	for key, n := range count {
		if n != 1 {
			t.Fatalf("record %s applied %d times", key, n)
		}
	}
}
