package logserver_test

// End-to-end: a fleet.Hub journaling through fleet.RemoteStore to a live
// logserver — rehydration across hub restarts and snapshots, and the
// fail-closed degraded mode surfacing as 503 + Retry-After on the hub's own
// HTTP API while reads keep serving.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/logserver"
)

func newRawServer(dir string) (*logserver.Server, error) {
	return logserver.New(logserver.Config{Dir: dir, NoSync: true})
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }

func get(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHubOverRemoteStoreRehydrates(t *testing.T) {
	_, ts := newServer(t, t.TempDir())

	hub, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(fastRemote(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterUser("alpha", "tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "Let's call the condition that humidity is higher than 65 % "+
		"and temperature is higher than 28 degrees hot and stuffy", "tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "If hot and stuffy, turn on the air conditioner "+
		"with 25 degrees of temperature setting.", "tom"); err != nil {
		t.Fatal(err)
	}
	// Compact drives WriteSnapshot through the remote store: the server's
	// log is replaced and the seq table must ride along as seq-marks.
	if err := hub.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "Turn on the light at the hall.", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted hub — a fresh client with fresh seq counters — must
	// rehydrate everything and keep appending without being deduplicated.
	hub2, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(fastRemote(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := hub2.Rules("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rehydrated rules = %d, want 2", len(rules))
	}
	users, err := hub2.Users("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0] != "tom" {
		t.Fatalf("rehydrated users = %v", users)
	}
	if _, err := hub2.Submit("alpha", "If hot and stuffy, turn on the fan.", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := hub2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third incarnation sees the post-restart rule too: the second hub's
	// appends were applied, not silently deduplicated against stale seqs.
	hub3, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(fastRemote(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	defer hub3.Close()
	rules, err = hub3.Rules("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules after second restart = %d, want 3", len(rules))
	}
}

func TestHubDegradedStoreFailsClosedWith503(t *testing.T) {
	srv, err := newRawServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	hub, err := fleet.NewHub(fleet.WithShards(1), fleet.WithStore(fastRemote(ts.URL,
		fleet.RemoteWithRetries(2),
		fleet.RemoteWithTimeout(200*time.Millisecond),
		fleet.RemoteWithBreaker(1, 5*time.Second),
	)))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.RegisterUser("alpha", "tom"); err != nil {
		t.Fatal(err)
	}

	// The log server dies. Writes must fail closed; reads keep serving.
	ts.Close()
	srv.Close()
	api := httptest.NewServer(fleet.NewHTTPHandler(hub))
	defer api.Close()

	resp, err := http.Post(api.URL+"/fleet/homes/alpha/users", "application/json",
		jsonBody(`{"name":"emily"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write with dead store = %s, want 503", resp.Status)
	}
	// The breaker tripped on the first failure, so the 503 carries its
	// cool-down as Retry-After.
	resp, err = http.Post(api.URL+"/fleet/homes/alpha/users", "application/json",
		jsonBody(`{"name":"emily"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second write = %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 is missing Retry-After")
	}

	// The failed mutation rolled back: memory never outlives the journal.
	var users []string
	get(t, api.URL+"/fleet/homes/alpha/users", &users)
	if len(users) != 1 || users[0] != "tom" {
		t.Fatalf("users after rolled-back write = %v, want [tom]", users)
	}

	// /fleet/stats surfaces the degraded store.
	var stats struct {
		Store *struct {
			Degraded     bool   `json:"degraded"`
			AppendErrors uint64 `json:"append_errors"`
			Health       *struct {
				Degraded          bool `json:"degraded"`
				RetryAfterSeconds int  `json:"retry_after_seconds"`
			} `json:"health"`
		} `json:"store"`
	}
	get(t, api.URL+"/fleet/stats", &stats)
	if stats.Store == nil || !stats.Store.Degraded || stats.Store.Health == nil {
		t.Fatalf("stats store block = %+v, want degraded with health", stats.Store)
	}
	if stats.Store.AppendErrors == 0 {
		t.Fatal("stats store block reports no append errors")
	}
	if stats.Store.Health.RetryAfterSeconds <= 0 {
		t.Fatalf("health retry_after_seconds = %d, want > 0", stats.Store.Health.RetryAfterSeconds)
	}
}
