package logserver_test

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/fleet"
)

// TestLogserverSmoke is the CI round-trip smoke against a real cmd/logserver
// process: populate a hub through the remote store, restart the hub, and
// verify the rehydrated state matches a hub rebuilt over a local FileStore
// fed the server's replay — the FileStore is the correctness oracle the
// remote log must be indistinguishable from. Skipped unless
// LOGSERVER_SMOKE_ADDR points at a running server with an empty store.
func TestLogserverSmoke(t *testing.T) {
	addr := os.Getenv("LOGSERVER_SMOKE_ADDR")
	if addr == "" {
		t.Skip("LOGSERVER_SMOKE_ADDR not set; run cmd/logserver and point it here")
	}
	url := "http://" + addr

	hub, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(fastRemote(url)))
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterUser("alpha", "tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "Let's call the condition that humidity is higher than 65 % "+
		"and temperature is higher than 28 degrees hot and stuffy", "tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "If hot and stuffy, turn on the air conditioner "+
		"with 25 degrees of temperature setting.", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit("alpha", "Turn on the light at the hall.", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	// Rehydrate a fresh hub through the remote store.
	hub2, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(fastRemote(url)))
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()

	// Oracle: pour the server's replay into a local FileStore and build a hub
	// over it; both hubs must see identical durable state.
	recs := remoteReplay(t, fastRemote(url))
	oracle, err := fleet.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		rec.Seq = 0
		if err := oracle.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	hub3, err := fleet.NewHub(fleet.WithShards(2), fleet.WithStore(oracle))
	if err != nil {
		t.Fatal(err)
	}
	defer hub3.Close()

	for _, h := range []*fleet.Hub{hub2, hub3} {
		users, err := h.Users("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if len(users) != 1 || users[0] != "tom" {
			t.Fatalf("users = %v, want [tom]", users)
		}
	}
	remote, err := hub2.Rules("alpha")
	if err != nil {
		t.Fatal(err)
	}
	local, err := hub3.Rules("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 2 {
		t.Fatalf("remote-backed hub has %d rules, want 2", len(remote))
	}
	var remoteIDs, localIDs []string
	for _, r := range remote {
		remoteIDs = append(remoteIDs, r.ID)
	}
	for _, r := range local {
		localIDs = append(localIDs, r.ID)
	}
	if !reflect.DeepEqual(remoteIDs, localIDs) {
		t.Fatalf("remote-backed rules %v != oracle-backed rules %v", remoteIDs, localIDs)
	}
}
