// Package conflict implements the paper's consistency checking module
// (Sect. 4.4): deciding whether a new rule's condition can hold at all, and
// whether it can conflict with already-registered rules — i.e. whether two
// rules that demand different actions on the same device have conditions
// that can hold simultaneously. Numeric satisfiability is decided with the
// simplex method, exactly as the paper's prototype did with its C library.
package conflict

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/simplex"
)

// Checker decides rule consistency and pairwise conflicts.
type Checker struct {
	// UseIntervalFastPath enables the interval-propagation solver for terms
	// whose numeric atoms are all single-variable bounds (the common case for
	// household rules). The simplex solver remains the general fallback.
	// Disabled by default so the default path matches the paper's method.
	UseIntervalFastPath bool
}

// Consistent reports whether the rule's condition is satisfiable: at least
// one DNF term must be feasible. Registration warns the user otherwise.
func (c *Checker) Consistent(rule *core.Rule) (bool, error) {
	terms, err := core.ToDNF(rule.Cond)
	if err != nil {
		return false, err
	}
	for _, term := range terms {
		ok, err := c.TermFeasible(term)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Conflict describes a detected conflict between a new rule and an existing
// one: their conditions can hold at the same time while their actions on the
// shared device differ.
type Conflict struct {
	New      *core.Rule
	Existing *core.Rule
}

func (c Conflict) String() string {
	return fmt.Sprintf("conflict over %s: %q (%s) vs %q (%s)",
		c.New.Device, c.New.ID, c.New.Owner, c.Existing.ID, c.Existing.Owner)
}

// FindConflicts checks the new rule against each candidate (typically the
// same-device extraction from the rule database) and returns every conflict.
func (c *Checker) FindConflicts(newRule *core.Rule, candidates []*core.Rule) ([]Conflict, error) {
	newTerms, err := core.ToDNF(newRule.Cond)
	if err != nil {
		return nil, err
	}
	var out []Conflict
	for _, cand := range candidates {
		if cand.ID == newRule.ID {
			continue
		}
		if !cand.Device.Matches(newRule.Device) {
			continue
		}
		if cand.Action.Equal(newRule.Action) {
			continue // same action: no conflict even if both fire
		}
		overlap, err := c.termsOverlap(newTerms, cand)
		if err != nil {
			return nil, err
		}
		if overlap {
			out = append(out, Conflict{New: newRule, Existing: cand})
		}
	}
	return out, nil
}

// Conflicts reports whether two rules conflict (symmetric).
func (c *Checker) Conflicts(a, b *core.Rule) (bool, error) {
	found, err := c.FindConflicts(a, []*core.Rule{b})
	if err != nil {
		return false, err
	}
	return len(found) > 0, nil
}

func (c *Checker) termsOverlap(newTerms []core.Term, cand *core.Rule) (bool, error) {
	candTerms, err := core.ToDNF(cand.Cond)
	if err != nil {
		return false, err
	}
	for _, tn := range newTerms {
		for _, tc := range candTerms {
			joint := make(core.Term, 0, len(tn)+len(tc))
			joint = append(joint, tn...)
			joint = append(joint, tc...)
			ok, err := c.TermFeasible(joint)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// TermFeasible decides whether a conjunction of atomic conditions can hold
// simultaneously. Numeric comparisons go to the simplex solver (or the
// interval fast path); boolean, presence and time-window atoms are decided
// by direct contradiction analysis; arrival and on-air atoms never
// contradict each other.
func (c *Checker) TermFeasible(term core.Term) (bool, error) {
	var (
		constraints []simplex.Constraint
		bools       = make(map[string]bool)
		presences   = make(map[string]string) // person → concrete place
		nobody      = make(map[string]bool)   // place → true
		everyone    = make(map[string]bool)
		someoneAt   = make(map[string]bool)
		windows     []*core.TimeWindow
	)

	for _, atom := range term {
		switch a := atom.(type) {
		case *core.Compare:
			constraints = append(constraints, simplex.Constraint{
				Coeffs: map[string]float64{a.Var: 1},
				Rel:    a.Op,
				RHS:    a.Value,
			})
		case *core.BoolIs:
			if want, seen := bools[a.Var]; seen && want != a.Want {
				return false, nil
			}
			bools[a.Var] = a.Want
		case *core.Presence:
			if a.Person == core.Someone {
				someoneAt[a.Place] = true
				continue
			}
			if prev, seen := presences[a.Person]; seen && !placesCompatible(prev, a.Place) {
				return false, nil // one person cannot be in two places
			}
			if prev, seen := presences[a.Person]; !seen || prev == "home" {
				presences[a.Person] = a.Place
			}
		case *core.Nobody:
			nobody[a.Place] = true
		case *core.Everyone:
			everyone[a.Place] = true
		case *core.TimeWindow:
			windows = append(windows, a)
		case *core.Arrival, *core.OnAir:
			// Events and broadcasts can always co-occur.
		case core.Always, *core.Always:
			// Trivially true.
		default:
			// Unknown atoms are treated as independently satisfiable.
		}
	}

	// Presence vs nobody/everyone contradictions.
	for place := range nobody {
		if someoneAt[place] || everyone[place] {
			return false, nil
		}
		for _, p := range presences {
			if placesCompatible(p, place) && (p == place || place == "home") {
				return false, nil
			}
		}
	}
	// Everyone at two different concrete places is impossible (with >= 1
	// user assumed).
	var everyonePlace string
	for place := range everyone {
		if everyonePlace != "" && place != everyonePlace && place != "home" && everyonePlace != "home" {
			return false, nil
		}
		if everyonePlace == "" || everyonePlace == "home" {
			everyonePlace = place
		}
	}
	// Everyone at X contradicts a named person at Y != X.
	if everyonePlace != "" && everyonePlace != "home" {
		for _, p := range presences {
			if p != "home" && p != everyonePlace {
				return false, nil
			}
		}
	}

	if !windowsOverlap(windows) {
		return false, nil
	}

	if len(constraints) == 0 {
		return true, nil
	}
	if c.UseIntervalFastPath {
		if box, ok := asBox(constraints); ok {
			return box.Feasible(), nil
		}
	}
	res, err := simplex.Feasible(constraints)
	if err != nil {
		return false, err
	}
	return res.Feasible, nil
}

// placesCompatible reports whether one person being at both places is
// possible ("home" is a wildcard for any in-home place).
func placesCompatible(a, b string) bool {
	return a == b || a == "home" || b == "home"
}

// windowsOverlap intersects daily time windows (with midnight wrap) and
// weekday restrictions.
func windowsOverlap(windows []*core.TimeWindow) bool {
	if len(windows) == 0 {
		return true
	}
	day := -1
	for _, w := range windows {
		if w.Weekday < 0 {
			continue
		}
		if day >= 0 && day != w.Weekday {
			return false
		}
		day = w.Weekday
	}
	// Represent each window as minute intervals over [0, 1440).
	intervalsOf := func(w *core.TimeWindow) []interval.Interval {
		from, to := w.FromMin, w.ToMin%(24*60)
		if w.FromMin == w.ToMin {
			return []interval.Interval{{Lo: 0, Hi: 1440, HiOpen: true}}
		}
		if w.FromMin < w.ToMin && w.ToMin <= 24*60 {
			return []interval.Interval{{Lo: float64(from), Hi: float64(w.ToMin), HiOpen: true}}
		}
		return []interval.Interval{
			{Lo: float64(from), Hi: 1440, HiOpen: true},
			{Lo: 0, Hi: float64(to), HiOpen: true},
		}
	}
	current := intervalsOf(windows[0])
	for _, w := range windows[1:] {
		next := intervalsOf(w)
		var merged []interval.Interval
		for _, a := range current {
			for _, b := range next {
				got := a.Intersect(b)
				if !got.Empty() {
					merged = append(merged, got)
				}
			}
		}
		if len(merged) == 0 {
			return false
		}
		current = merged
	}
	return true
}

// asBox converts single-variable constraints to an interval box; ok is false
// when any constraint couples multiple variables.
func asBox(cs []simplex.Constraint) (interval.Box, bool) {
	box := interval.NewBox()
	for _, c := range cs {
		if len(c.Coeffs) != 1 {
			return nil, false
		}
		var name string
		var coef float64
		for n, v := range c.Coeffs {
			name, coef = n, v
		}
		if coef == 0 {
			return nil, false
		}
		rel, rhs := c.Rel, c.RHS/coef
		if coef < 0 {
			rel = flipRel(rel)
		}
		switch rel {
		case simplex.LE:
			box.Constrain(name, interval.AtMost(rhs))
		case simplex.LT:
			box.Constrain(name, interval.LessThan(rhs))
		case simplex.GE:
			box.Constrain(name, interval.AtLeast(rhs))
		case simplex.GT:
			box.Constrain(name, interval.GreaterThan(rhs))
		case simplex.EQ:
			box.Constrain(name, interval.Point(rhs))
		default:
			return nil, false
		}
	}
	return box, true
}

func flipRel(r simplex.Relation) simplex.Relation {
	switch r {
	case simplex.LE:
		return simplex.GE
	case simplex.GE:
		return simplex.LE
	case simplex.LT:
		return simplex.GT
	case simplex.GT:
		return simplex.LT
	default:
		return r
	}
}
