package conflict

import (
	"testing"

	"repro/internal/core"
)

func tvRef() core.DeviceRef { return core.DeviceRef{Name: "tv"} }

func arrivedCtx(person, event string) *core.Context {
	ctx := core.NewContext(baseTime)
	ctx.Users = []string{"tom", "alan", "emily"}
	if person != "" {
		ctx.RecordEvent(person, event)
	}
	return ctx
}

func TestTableSetReplaces(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Order{Device: tvRef(), Users: []string{"tom", "alan"}})
	tbl.Set(Order{Device: tvRef(), Users: []string{"alan", "tom"}})
	orders := tbl.OrdersFor(tvRef())
	if len(orders) != 1 {
		t.Fatalf("orders = %d, want 1 (replaced)", len(orders))
	}
	if orders[0].Users[0] != "alan" {
		t.Errorf("first user = %q, want alan", orders[0].Users[0])
	}
}

func TestApplicableContextualBeforeDefault(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Order{Device: tvRef(), Users: []string{"tom", "alan", "emily"}}) // default
	tbl.Set(Order{
		Device:        tvRef(),
		Context:       &core.Arrival{Person: "alan", Event: "home-from-work"},
		ContextSource: "alan got home from work",
		Users:         []string{"alan", "tom", "emily"},
	})

	// Context holds: contextual order applies.
	ctx := arrivedCtx("alan", "home-from-work")
	order, ok := tbl.Applicable(tvRef(), ctx)
	if !ok || order.Users[0] != "alan" {
		t.Errorf("applicable = %+v ok=%v, want alan first", order, ok)
	}

	// Context does not hold: default order applies.
	idle := arrivedCtx("", "")
	order, ok = tbl.Applicable(tvRef(), idle)
	if !ok || order.Users[0] != "tom" {
		t.Errorf("applicable = %+v ok=%v, want default tom first", order, ok)
	}
}

func TestApplicableNone(t *testing.T) {
	tbl := NewTable()
	if _, ok := tbl.Applicable(tvRef(), arrivedCtx("", "")); ok {
		t.Error("empty table should have no applicable order")
	}
}

func TestArbitratePaperScenario(t *testing.T) {
	// Fig. 1 / Sect. 3.1: Alan has higher priority on the TV in the context
	// that he got home from work; Emily has the highest priority in the
	// context that she got home from shopping.
	tbl := NewTable()
	tbl.Set(Order{
		Device:        tvRef(),
		Context:       &core.Arrival{Person: "alan", Event: "home-from-work"},
		ContextSource: "alan got home from work",
		Users:         []string{"alan", "tom", "emily"},
	})
	tbl.Set(Order{
		Device:        tvRef(),
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "alan", "tom"},
	})

	tomRule := &core.Rule{ID: "t", Owner: "tom", Seq: 1, Device: tvRef(), Action: core.Action{Verb: "turn-off"}}
	alanRule := &core.Rule{ID: "a", Owner: "alan", Seq: 2, Device: tvRef(), Action: core.Action{Verb: "turn-on"}}
	emilyRule := &core.Rule{ID: "e", Owner: "emily", Seq: 3, Device: tvRef(), Action: core.Action{Verb: "turn-on"}}
	rules := []*core.Rule{tomRule, alanRule, emilyRule}

	// Alan just got home from work: his order applies.
	got := tbl.Arbitrate(tvRef(), arrivedCtx("alan", "home-from-work"), rules)
	if got[0].Owner != "alan" {
		t.Errorf("winner = %s, want alan", got[0].Owner)
	}

	// Emily got home from shopping: her (later-registered) contextual order
	// wins even if Alan's event also fired.
	ctx := arrivedCtx("alan", "home-from-work")
	ctx.RecordEvent("emily", "home-from-shopping")
	got = tbl.Arbitrate(tvRef(), ctx, rules)
	if got[0].Owner != "emily" {
		t.Errorf("winner = %s, want emily", got[0].Owner)
	}

	// No context: no order applies → registration order.
	got = tbl.Arbitrate(tvRef(), arrivedCtx("", ""), rules)
	if got[0].Owner != "tom" {
		t.Errorf("winner = %s, want tom (lowest seq)", got[0].Owner)
	}
}

func TestArbitrateUnknownOwnersRankLast(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Order{Device: tvRef(), Users: []string{"alan"}})
	known := &core.Rule{ID: "a", Owner: "alan", Seq: 9, Device: tvRef()}
	unknown := &core.Rule{ID: "g", Owner: "guest", Seq: 1, Device: tvRef()}
	got := tbl.Arbitrate(tvRef(), arrivedCtx("", ""), []*core.Rule{unknown, known})
	if got[0].Owner != "alan" {
		t.Errorf("winner = %s, want alan (guest not in order)", got[0].Owner)
	}
}

func TestArbitrateSingleAndEmpty(t *testing.T) {
	tbl := NewTable()
	one := &core.Rule{ID: "a", Owner: "x", Seq: 1, Device: tvRef()}
	if got := tbl.Arbitrate(tvRef(), arrivedCtx("", ""), []*core.Rule{one}); len(got) != 1 {
		t.Error("single rule should pass through")
	}
	if got := tbl.Arbitrate(tvRef(), arrivedCtx("", ""), nil); len(got) != 0 {
		t.Error("no rules should yield empty")
	}
}

func TestArbitrateDoesNotMutateInput(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Order{Device: tvRef(), Users: []string{"b", "a"}})
	r1 := &core.Rule{ID: "1", Owner: "a", Seq: 1, Device: tvRef()}
	r2 := &core.Rule{ID: "2", Owner: "b", Seq: 2, Device: tvRef()}
	input := []*core.Rule{r1, r2}
	_ = tbl.Arbitrate(tvRef(), arrivedCtx("", ""), input)
	if input[0] != r1 || input[1] != r2 {
		t.Error("Arbitrate mutated its input slice")
	}
}

func TestOrderString(t *testing.T) {
	o := Order{Device: tvRef(), Users: []string{"a", "b"}}
	if o.String() == "" {
		t.Error("empty string")
	}
	o.Context = &core.Arrival{Person: "alan", Event: "home-from-work"}
	if o.String() == "" {
		t.Error("empty string with context")
	}
}

func TestOrdersForLocationMatching(t *testing.T) {
	tbl := NewTable()
	tbl.Set(Order{Device: core.DeviceRef{Name: "light", Location: "hall"}, Users: []string{"a"}})
	if got := tbl.OrdersFor(core.DeviceRef{Name: "light", Location: "hall"}); len(got) != 1 {
		t.Errorf("hall light orders = %d, want 1", len(got))
	}
	if got := tbl.OrdersFor(core.DeviceRef{Name: "light", Location: "kitchen"}); len(got) != 0 {
		t.Errorf("kitchen light orders = %d, want 0", len(got))
	}
	if got := tbl.OrdersFor(core.DeviceRef{Name: "light"}); len(got) != 1 {
		t.Errorf("unlocated light orders = %d, want 1", len(got))
	}
}
