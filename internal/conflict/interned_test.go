package conflict

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// internedFixture builds a registry (so rules carry their interned identity)
// and an interned context sharing its symbol table — the setup under which
// ArbitrateWinner takes the owner-rank fast path.
func internedFixture(t *testing.T, owners []string) (*registry.DB, *core.Context, []*core.Rule) {
	t.Helper()
	db := registry.New()
	rules := make([]*core.Rule, len(owners))
	for i, owner := range owners {
		rules[i] = &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  owner,
			Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   core.Always{},
		}
		if err := db.Add(rules[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx := core.NewInternedContext(time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC), db.Symtab())
	return db, ctx, rules
}

// TestArbitrateWinnerMatchesArbitrate pins the contract: the rank-scan
// winner is always Arbitrate's first element, across random tables, random
// contexts and random ready subsets.
func TestArbitrateWinnerMatchesArbitrate(t *testing.T) {
	owners := []string{"tom", "alan", "emily", "guest", "visitor"}
	_, ctx, rules := internedFixture(t, owners)
	ctx.SetUsers(owners[:3])
	rng := rand.New(rand.NewSource(42))

	contexts := []struct {
		cond   core.Condition
		source string
	}{
		{nil, ""},
		{&core.Arrival{Person: "emily", Event: "home-from-shopping"}, "emily got home from shopping"},
		{&core.Nobody{Place: "bedroom"}, "nobody at bedroom"},
		{&core.Presence{Person: "tom", Place: "living room"}, "tom at living room"},
		{&core.Compare{Var: "temperature", Op: simplex.GT, Value: 25}, "hot"},
	}

	tbl := NewTable()
	for step := 0; step < 500; step++ {
		switch rng.Intn(6) {
		case 0: // table churn
			users := append([]string(nil), owners...)
			rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
			cc := contexts[rng.Intn(len(contexts))]
			tbl.Set(Order{
				Device:        core.DeviceRef{Name: "tv"},
				Context:       cc.cond,
				ContextSource: cc.source,
				Users:         users[:rng.Intn(len(users)+1)],
			})
		case 1: // context churn
			switch rng.Intn(4) {
			case 0:
				ctx.SetLocation("tom", []string{"", "living room", "bedroom"}[rng.Intn(3)])
			case 1:
				ctx.RecordEvent("emily", "home-from-shopping")
			case 2:
				ctx.Now = ctx.Now.Add(time.Duration(rng.Intn(10)) * time.Minute)
			default:
				ctx.SetNumber("temperature", float64(10+rng.Intn(30)))
			}
		}
		subset := make([]*core.Rule, 0, len(rules))
		for _, r := range rules {
			if rng.Intn(3) > 0 {
				subset = append(subset, r)
			}
		}
		if len(subset) == 0 {
			continue
		}
		winner := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, subset)
		ranked := tbl.Arbitrate(core.DeviceRef{Name: "tv"}, ctx, subset)
		if winner != ranked[0] {
			t.Fatalf("step %d: ArbitrateWinner = %s, Arbitrate[0] = %s", step, winner.ID, ranked[0].ID)
		}
	}
}

// TestArbitrateWinnerStringContextFallback: without a symbol table the
// winner must still come out of the map-keyed path.
func TestArbitrateWinnerStringContextFallback(t *testing.T) {
	_, _, rules := internedFixture(t, []string{"tom", "alan"})
	tbl := NewTable()
	tbl.Set(Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"alan", "tom"}})
	ctx := core.NewContext(time.Now())
	winner := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, rules)
	if winner.Owner != "alan" {
		t.Fatalf("winner = %s, want alan", winner.Owner)
	}
}

// TestArbitrateWinnerDegenerate covers the empty and single-rule inputs.
func TestArbitrateWinnerDegenerate(t *testing.T) {
	_, ctx, rules := internedFixture(t, []string{"tom"})
	tbl := NewTable()
	if got := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, nil); got != nil {
		t.Fatalf("winner of no rules = %v, want nil", got)
	}
	if got := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, rules[:1]); got != rules[0] {
		t.Fatalf("winner of one rule = %v, want the rule", got)
	}
}

// TestOrdersForGenerationCache pins the satellite fix: repeated OrdersFor
// calls without table edits return the same cached slice; a Set refreshes
// it.
func TestOrdersForGenerationCache(t *testing.T) {
	tbl := NewTable()
	ref := core.DeviceRef{Name: "tv"}
	tbl.Set(Order{Device: ref, Users: []string{"tom", "alan"}})

	first := tbl.OrdersFor(ref)
	second := tbl.OrdersFor(ref)
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("orders = %d/%d, want 1/1", len(first), len(second))
	}
	if &first[0] != &second[0] {
		t.Fatal("idle OrdersFor calls should return the cached slice")
	}

	tbl.Set(Order{Device: ref, Users: []string{"alan", "tom"}})
	third := tbl.OrdersFor(ref)
	if third[0].Users[0] != "alan" {
		t.Fatalf("post-edit first user = %q, want alan", third[0].Users[0])
	}
	// The previously returned snapshot is immutable history.
	if first[0].Users[0] != "tom" {
		t.Fatalf("pre-edit snapshot mutated: %q", first[0].Users[0])
	}
}
