package conflict

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// TestTableInvalidateAfterCompaction pins the priority table's side of the
// epoch/remap contract: the per-device cache holds interned owner-rank
// vectors, the symtab pointer does not change across a compaction, so only
// Invalidate can force a rebuild — and after it, arbitration must rank by
// the renumbered ids, not the stale ones.
func TestTableInvalidateAfterCompaction(t *testing.T) {
	db := registry.New()
	var rules []*core.Rule
	for i, owner := range []string{"tom", "alan"} {
		// Garbage symbols interleaved BEFORE each rule, so compaction
		// actually shifts the live ids down (an identity remap would make
		// the stale-cache check vacuous).
		db.Symtab().Intern(fmt.Sprintf("padding-%d", i))
		r := &core.Rule{
			ID: fmt.Sprintf("r%d", i), Owner: owner,
			Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   core.Always{},
		}
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	ctx := core.NewInternedContext(time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC), db.Symtab())
	tbl := NewTable()
	tbl.Set(Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"alan", "tom"}})

	gen := tbl.Generation()
	if w := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, rules); w.Owner != "alan" {
		t.Fatalf("winner before compaction = %s, want alan", w.Owner)
	}

	alanBefore := rules[1].OwnerSym
	if _, ok := db.CompactSymtab(db.Generation(), func(live *core.IDSet) {
		ctx.MarkLive(live)
	}, func(remap []uint32) {
		ctx.Remap(remap, db.Symtab().Len())
	}); !ok {
		t.Fatal("CompactSymtab refused")
	}
	if rules[1].OwnerSym == alanBefore {
		t.Fatal("compaction did not shift ids; stale-cache check is vacuous")
	}

	tbl.Invalidate()
	if tbl.Generation() == gen {
		t.Fatal("Invalidate did not bump the table generation")
	}
	if w := tbl.ArbitrateWinner(core.DeviceRef{Name: "tv"}, ctx, rules); w.Owner != "alan" {
		t.Fatalf("winner after compaction = %s, want alan (stale owner-rank cache?)", w.Owner)
	}
}
