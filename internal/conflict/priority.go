package conflict

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Order is one priority order over users for a device, optionally attached
// to a context condition (Sect. 3.2: "users can define multiple different
// priorities for the same device and attach a context to each of them").
// Users are listed highest-priority first.
type Order struct {
	Device core.DeviceRef
	// Context must hold for this order to apply; nil means the order is the
	// device's default.
	Context core.Condition
	// ContextSource preserves the CADEL text of the context for display and
	// serialization.
	ContextSource string
	Users         []string
}

func (o Order) String() string {
	ctx := "default"
	if o.Context != nil {
		ctx = o.Context.String()
	}
	return fmt.Sprintf("%s [%s]: %s", o.Device, ctx, strings.Join(o.Users, " > "))
}

// Table holds the priority orders of all devices. Contextual orders are
// consulted before the default order; among applicable contextual orders the
// most recently registered wins (users refine priorities over time).
type Table struct {
	mu     sync.RWMutex
	orders []Order
	gen    uint64 // bumped on every Set
}

// NewTable returns an empty priority table.
func NewTable() *Table {
	return &Table{}
}

// Set registers (or replaces) an order. Two orders are the same slot when
// they share a device key and context source.
func (t *Table) Set(o Order) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	for i, existing := range t.orders {
		if existing.Device.Key() == o.Device.Key() && existing.ContextSource == o.ContextSource {
			t.orders[i] = o
			return
		}
	}
	t.orders = append(t.orders, o)
}

// Generation returns a counter that increments on every Set. The execution
// engine compares it against the generation of its last evaluation pass to
// notice priority edits without re-arbitrating every device every time.
func (t *Table) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// Orders returns a snapshot of every registered order in registration order.
func (t *Table) Orders() []Order {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Order, len(t.orders))
	copy(out, t.orders)
	return out
}

// OrdersFor returns every order whose device matches, contextual orders
// first (most recent first), then the default.
func (t *Table) OrdersFor(device core.DeviceRef) []Order {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var contextual, defaults []Order
	for _, o := range t.orders {
		if !o.Device.Matches(device) {
			continue
		}
		if o.Context != nil {
			contextual = append(contextual, o)
		} else {
			defaults = append(defaults, o)
		}
	}
	// Most recently registered contextual order first.
	for i, j := 0, len(contextual)-1; i < j; i, j = i+1, j-1 {
		contextual[i], contextual[j] = contextual[j], contextual[i]
	}
	return append(contextual, defaults...)
}

// Applicable returns the first order that matches the device and whose
// context holds in ctx, or false when none applies.
func (t *Table) Applicable(device core.DeviceRef, ctx *core.Context) (Order, bool) {
	for _, o := range t.OrdersFor(device) {
		if o.Context == nil || o.Context.Eval(ctx) {
			return o, true
		}
	}
	return Order{}, false
}

// Arbitrate ranks rules that want to act on the same device in the current
// context. The winner is first. Ranking: position of the rule's owner in the
// applicable priority order (absent owners rank below present ones), then
// registration sequence as the deterministic fallback.
func (t *Table) Arbitrate(device core.DeviceRef, ctx *core.Context, rules []*core.Rule) []*core.Rule {
	if len(rules) <= 1 {
		out := make([]*core.Rule, len(rules))
		copy(out, rules)
		return out
	}
	rank := func(*core.Rule) int { return 1 << 30 }
	if order, ok := t.Applicable(device, ctx); ok {
		pos := make(map[string]int, len(order.Users))
		for i, u := range order.Users {
			pos[u] = i
		}
		rank = func(r *core.Rule) int {
			if i, ok := pos[r.Owner]; ok {
				return i
			}
			return 1 << 30
		}
	}
	out := make([]*core.Rule, len(rules))
	copy(out, rules)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
