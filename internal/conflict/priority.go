package conflict

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Order is one priority order over users for a device, optionally attached
// to a context condition (Sect. 3.2: "users can define multiple different
// priorities for the same device and attach a context to each of them").
// Users are listed highest-priority first.
type Order struct {
	Device core.DeviceRef
	// Context must hold for this order to apply; nil means the order is the
	// device's default.
	Context core.Condition
	// ContextSource preserves the CADEL text of the context for display and
	// serialization.
	ContextSource string
	Users         []string
}

func (o Order) String() string {
	ctx := "default"
	if o.Context != nil {
		ctx = o.Context.String()
	}
	return fmt.Sprintf("%s [%s]: %s", o.Device, ctx, strings.Join(o.Users, " > "))
}

// Table holds the priority orders of all devices. Contextual orders are
// consulted before the default order; among applicable contextual orders the
// most recently registered wins (users refine priorities over time).
//
// Per-device arbitration state is derived lazily and cached per table
// generation: the match-filtered order list (what OrdersFor returns) and,
// once arbitration has seen a symbol-interned context, the interned owner
// index — each order's context pre-bound (core.Bind) and its user list
// interned into rank vectors — so the steady-state Arbitrate path selects a
// winner with a linear max-scan: no owner-position map, no sort, no
// allocation.
type Table struct {
	mu     sync.Mutex
	orders []Order
	gen    uint64 // bumped on every Set

	// Generation-gated device caches. A cached deviceOrders is immutable
	// once built; Set drops the whole map, so readers holding a previously
	// returned slice keep a consistent snapshot.
	cacheGen uint64
	tab      *core.Symtab
	devs     map[core.DeviceRef]*deviceOrders
}

// deviceOrders is the per-device arbitration cache for one table generation:
// the orders matching the device (contextual most-recent-first, then
// defaults) and, when the table knows a symbol table, the interned index.
type deviceOrders struct {
	orders  []Order
	entries []orderEntry // built iff the table knows a symtab; same indexing as orders
}

// orderEntry is one applicable-order candidate on the interned fast path.
type orderEntry struct {
	bound   core.Condition // order context bound against the symtab; nil for the default
	userIDs []uint32       // interned Users plus one, highest priority first
}

// NewTable returns an empty priority table.
func NewTable() *Table {
	return &Table{}
}

// Set registers (or replaces) an order. Two orders are the same slot when
// they share a device key and context source.
func (t *Table) Set(o Order) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	for i, existing := range t.orders {
		if existing.Device.Key() == o.Device.Key() && existing.ContextSource == o.ContextSource {
			t.orders[i] = o
			return
		}
	}
	t.orders = append(t.orders, o)
}

// Invalidate drops the generation-gated per-device caches and bumps the
// table generation, as if every order had been re-registered. The engine
// calls it after a symbol-compaction epoch: the cached entries hold interned
// user-rank vectors and bound order contexts whose ids predate the remap,
// and the symtab pointer itself is unchanged, so the caches cannot notice
// the renumbering on their own. The generation bump makes the engine re-sync
// its cached order dependencies and re-arbitrate, exactly as after a Set.
func (t *Table) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	t.devs = nil
	t.tab = nil
}

// Generation returns a counter that increments on every Set. The execution
// engine compares it against the generation of its last evaluation pass to
// notice priority edits without re-arbitrating every device every time.
func (t *Table) Generation() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Orders returns a snapshot of every registered order in registration order.
func (t *Table) Orders() []Order {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Order, len(t.orders))
	copy(out, t.orders)
	return out
}

// deviceLocked returns the device's cached arbitration state, (re)building
// the cache when the generation moved or a different symbol table shows up.
// tab may be nil (string-keyed callers); a non-nil tab upgrades the cache to
// include the interned index.
func (t *Table) deviceLocked(device core.DeviceRef, tab *core.Symtab) *deviceOrders {
	if t.devs == nil || t.cacheGen != t.gen {
		t.devs = make(map[core.DeviceRef]*deviceOrders)
		t.cacheGen = t.gen
	}
	if tab != nil && tab != t.tab {
		t.tab = tab
		t.devs = make(map[core.DeviceRef]*deviceOrders)
	}
	do := t.devs[device]
	if do == nil {
		do = t.buildDeviceLocked(device)
		t.devs[device] = do
	}
	return do
}

// buildDeviceLocked computes one device's order list and, when a symbol
// table is known, its interned index. Runs once per (device, generation).
func (t *Table) buildDeviceLocked(device core.DeviceRef) *deviceOrders {
	do := &deviceOrders{}
	var defaults []Order
	for _, o := range t.orders {
		if !o.Device.Matches(device) {
			continue
		}
		if o.Context != nil {
			do.orders = append(do.orders, o)
		} else {
			defaults = append(defaults, o)
		}
	}
	// Most recently registered contextual order first.
	for i, j := 0, len(do.orders)-1; i < j; i, j = i+1, j-1 {
		do.orders[i], do.orders[j] = do.orders[j], do.orders[i]
	}
	do.orders = append(do.orders, defaults...)
	if t.tab != nil {
		do.entries = make([]orderEntry, len(do.orders))
		for i, o := range do.orders {
			e := orderEntry{userIDs: make([]uint32, len(o.Users))}
			if o.Context != nil {
				e.bound = core.Bind(o.Context, t.tab)
			}
			for j, u := range o.Users {
				e.userIDs[j] = t.tab.Intern(u) + 1
			}
			do.entries[i] = e
		}
	}
	return do
}

// OrdersFor returns every order whose device matches, contextual orders
// first (most recent first), then the default. The result is a cached,
// generation-gated snapshot shared between callers: treat it as read-only.
func (t *Table) OrdersFor(device core.DeviceRef) []Order {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deviceLocked(device, nil).orders
}

// Applicable returns the first order that matches the device and whose
// context holds in ctx, or false when none applies.
func (t *Table) Applicable(device core.DeviceRef, ctx *core.Context) (Order, bool) {
	t.mu.Lock()
	orders := t.deviceLocked(device, nil).orders
	t.mu.Unlock()
	for _, o := range orders {
		if o.Context == nil || o.Context.Eval(ctx) {
			return o, true
		}
	}
	return Order{}, false
}

// ArbitrateWinner returns the rule that wins arbitration for the device in
// the current context, without building the ranked list: the applicable
// order is found through the pre-bound entries and the winner through a
// linear max-scan over each rule's interned owner rank — zero allocations
// steady-state, so a reconciliation whose winner is unchanged is free. It
// always agrees with Arbitrate's first element; the engine calls Arbitrate
// only when ownership actually changed and the suppressed list is needed.
//
// Rules must carry their interned identity (registered in the database whose
// symbol table the context shares); contexts without a symbol table fall
// back to the map-keyed path.
func (t *Table) ArbitrateWinner(device core.DeviceRef, ctx *core.Context, rules []*core.Rule) *core.Rule {
	if len(rules) == 0 {
		return nil
	}
	if len(rules) == 1 {
		return rules[0]
	}
	tab := ctx.Symtab()
	if tab == nil {
		return t.Arbitrate(device, ctx, rules)[0]
	}
	t.mu.Lock()
	do := t.deviceLocked(device, tab)
	t.mu.Unlock()
	users := t.applicableUsers(do, ctx)
	best := rules[0]
	bestRank := ownerRank(users, best.OwnerSym)
	for _, r := range rules[1:] {
		rk := ownerRank(users, r.OwnerSym)
		if rk < bestRank || (rk == bestRank && r.Seq < best.Seq) {
			best, bestRank = r, rk
		}
	}
	return best
}

// Explain reports how an arbitration winner was picked, for firing traces.
type Explain struct {
	// Ordered reports whether any priority order applied to the device in
	// the current context.
	Ordered bool
	// Context is the CADEL source of the applicable order's context (""
	// for the device's default order); meaningful only when Ordered.
	Context string
	// Rank is the winning owner's position in the applicable order (0 =
	// highest priority); -1 when the owner is unlisted or no order applies,
	// in which case registration sequence decided.
	Rank int
}

// ArbitrateWinnerExplain is ArbitrateWinner plus the explanation the firing
// trace records: which priority order applied (if any) and where the winning
// owner ranks in it. It shares ArbitrateWinner's zero-allocation rank scan
// on the interned path and always returns the same winner — including for a
// single ready rule, where it still resolves the applicable order so the
// trace can say why the sole contender holds the device.
func (t *Table) ArbitrateWinnerExplain(device core.DeviceRef, ctx *core.Context, rules []*core.Rule) (*core.Rule, Explain) {
	if len(rules) == 0 {
		return nil, Explain{Rank: -1}
	}
	tab := ctx.Symtab()
	if tab == nil {
		// String-keyed oracle path: the ranked list plus the applicable
		// order (both allocate; tracing never runs this path steady-state).
		winner := t.Arbitrate(device, ctx, rules)[0]
		ex := Explain{Rank: -1}
		if order, ok := t.Applicable(device, ctx); ok {
			ex.Ordered = true
			ex.Context = order.ContextSource
			for i, u := range order.Users {
				if u == winner.Owner {
					ex.Rank = i
					break
				}
			}
		}
		return winner, ex
	}
	t.mu.Lock()
	do := t.deviceLocked(device, tab)
	t.mu.Unlock()
	users, idx := t.applicableEntry(do, ctx)
	best := rules[0]
	bestRank := ownerRank(users, best.OwnerSym)
	for _, r := range rules[1:] {
		rk := ownerRank(users, r.OwnerSym)
		if rk < bestRank || (rk == bestRank && r.Seq < best.Seq) {
			best, bestRank = r, rk
		}
	}
	ex := Explain{Rank: -1}
	if idx >= 0 {
		ex.Ordered = true
		ex.Context = do.orders[idx].ContextSource
		if bestRank < 1<<30 {
			ex.Rank = bestRank
		}
	}
	return best, ex
}

// ownerRank returns the owner's highest-priority position in the applicable
// order's interned user vector, or a rank below every listed owner when
// absent (or when no order applies). User vectors hold ids plus one, so an
// unregistered rule (OwnerSym 0) never matches.
func ownerRank(users []uint32, owner uint32) int {
	for i, u := range users {
		if u == owner {
			return i
		}
	}
	return 1 << 30
}

// Arbitrate ranks rules that want to act on the same device in the current
// context. The winner is first. Ranking: position of the rule's owner in the
// applicable priority order (absent owners rank below present ones; the
// first mention wins if a user is listed twice), then registration sequence
// as the deterministic fallback. The comparator is a total order, so the
// result does not depend on the input order. Symbol-interned contexts rank
// through the same owner-rank index as ArbitrateWinner; string-keyed
// contexts build the owner-position map (oracle path).
func (t *Table) Arbitrate(device core.DeviceRef, ctx *core.Context, rules []*core.Rule) []*core.Rule {
	if len(rules) <= 1 {
		out := make([]*core.Rule, len(rules))
		copy(out, rules)
		return out
	}
	if tab := ctx.Symtab(); tab != nil {
		t.mu.Lock()
		do := t.deviceLocked(device, tab)
		t.mu.Unlock()
		users := t.applicableUsers(do, ctx)
		out := make([]*core.Rule, len(rules))
		copy(out, rules)
		sort.SliceStable(out, func(i, j int) bool {
			ri, rj := ownerRank(users, out[i].OwnerSym), ownerRank(users, out[j].OwnerSym)
			if ri != rj {
				return ri < rj
			}
			return out[i].Seq < out[j].Seq
		})
		return out
	}
	rank := func(*core.Rule) int { return 1 << 30 }
	if order, ok := t.Applicable(device, ctx); ok {
		pos := make(map[string]int, len(order.Users))
		for i, u := range order.Users {
			if _, dup := pos[u]; !dup {
				pos[u] = i
			}
		}
		rank = func(r *core.Rule) int {
			if i, ok := pos[r.Owner]; ok {
				return i
			}
			return 1 << 30
		}
	}
	out := make([]*core.Rule, len(rules))
	copy(out, rules)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// applicableUsers returns the first applicable cached order's interned user
// vector, or nil when no order applies (every owner then ranks equal and
// registration order decides).
func (t *Table) applicableUsers(do *deviceOrders, ctx *core.Context) []uint32 {
	users, _ := t.applicableEntry(do, ctx)
	return users
}

// applicableEntry is applicableUsers plus the index of the applicable order
// (into do.orders), or -1 when none applies.
func (t *Table) applicableEntry(do *deviceOrders, ctx *core.Context) ([]uint32, int) {
	for i := range do.entries {
		if do.entries[i].bound == nil || do.entries[i].bound.Eval(ctx) {
			return do.entries[i].userIDs, i
		}
	}
	return nil, -1
}
