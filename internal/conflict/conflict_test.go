package conflict

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

var baseTime = time.Date(2005, 3, 7, 18, 30, 0, 0, time.UTC)

func cmp(v string, op simplex.Relation, val float64) *core.Compare {
	return &core.Compare{Var: v, Op: op, Value: val}
}

func mkRule(id, owner, device, verb string, cond core.Condition, settings map[string]core.Value) *core.Rule {
	if cond == nil {
		cond = core.Always{}
	}
	return &core.Rule{
		ID: id, Owner: owner,
		Device: core.DeviceRef{Name: device},
		Action: core.Action{Verb: verb, Settings: settings},
		Cond:   cond,
	}
}

func TestConsistent(t *testing.T) {
	var c Checker
	tests := []struct {
		name string
		cond core.Condition
		want bool
	}{
		{
			name: "satisfiable bounds",
			cond: &core.And{Terms: []core.Condition{
				cmp("temp", simplex.GT, 26), cmp("humid", simplex.GT, 65),
			}},
			want: true,
		},
		{
			name: "contradictory bounds",
			cond: &core.And{Terms: []core.Condition{
				cmp("temp", simplex.GT, 28), cmp("temp", simplex.LT, 25),
			}},
			want: false,
		},
		{
			name: "contradiction hidden in one or-branch",
			cond: &core.Or{Terms: []core.Condition{
				&core.And{Terms: []core.Condition{cmp("t", simplex.GT, 5), cmp("t", simplex.LT, 3)}},
				cmp("h", simplex.GT, 50),
			}},
			want: true, // second branch is fine
		},
		{
			name: "bool contradiction",
			cond: &core.And{Terms: []core.Condition{
				&core.BoolIs{Var: "door/locked", Want: true},
				&core.BoolIs{Var: "door/locked", Want: false},
			}},
			want: false,
		},
		{
			name: "presence in two rooms",
			cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "tom", Place: "living room"},
				&core.Presence{Person: "tom", Place: "kitchen"},
			}},
			want: false,
		},
		{
			name: "presence home plus concrete room",
			cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "tom", Place: "home"},
				&core.Presence{Person: "tom", Place: "kitchen"},
			}},
			want: true,
		},
		{
			name: "presence vs nobody",
			cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "tom", Place: "living room"},
				&core.Nobody{Place: "living room"},
			}},
			want: false,
		},
		{
			name: "nobody home vs someone somewhere",
			cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "tom", Place: "kitchen"},
				&core.Nobody{Place: "home"},
			}},
			want: false,
		},
		{
			name: "disjoint time windows",
			cond: &core.And{Terms: []core.Condition{
				&core.TimeWindow{FromMin: 6 * 60, ToMin: 9 * 60, Weekday: -1},
				&core.TimeWindow{FromMin: 20 * 60, ToMin: 22 * 60, Weekday: -1},
			}},
			want: false,
		},
		{
			name: "wrapping night window overlaps early morning",
			cond: &core.And{Terms: []core.Condition{
				&core.TimeWindow{FromMin: 22 * 60, ToMin: 30 * 60, Weekday: -1},
				&core.TimeWindow{FromMin: 5 * 60, ToMin: 7 * 60, Weekday: -1},
			}},
			want: true,
		},
		{
			name: "weekday mismatch",
			cond: &core.And{Terms: []core.Condition{
				&core.TimeWindow{FromMin: 0, ToMin: 1440, Weekday: 1},
				&core.TimeWindow{FromMin: 0, ToMin: 1440, Weekday: 2},
			}},
			want: false,
		},
		{
			name: "arrivals and onair never contradict",
			cond: &core.And{Terms: []core.Condition{
				&core.Arrival{Person: "alan", Event: "home-from-work"},
				&core.Arrival{Person: "emily", Event: "home-from-shopping"},
				&core.OnAir{Keyword: "baseball game"},
				&core.OnAir{Keyword: "movie"},
			}},
			want: true,
		},
		{
			name: "always",
			cond: core.Always{},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rule := mkRule("r", "tom", "tv", "turn-on", tt.cond, nil)
			got, err := c.Consistent(rule)
			if err != nil {
				t.Fatalf("Consistent: %v", err)
			}
			if got != tt.want {
				t.Errorf("Consistent = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFindConflictsPaperScenario(t *testing.T) {
	// The paper's E2 shape: rules over the same device with 2-inequality
	// conditions; overlapping conditions with different actions conflict.
	var c Checker
	tomAircon := mkRule("tom-ac", "tom", "air conditioner", "turn-on",
		&core.And{Terms: []core.Condition{
			cmp("temperature", simplex.GT, 26), cmp("humidity", simplex.GT, 65),
		}},
		map[string]core.Value{"temperature": {IsNumber: true, Number: 25, Unit: "celsius"}})
	alanAircon := mkRule("alan-ac", "alan", "air conditioner", "turn-on",
		&core.And{Terms: []core.Condition{
			cmp("temperature", simplex.GT, 25), cmp("humidity", simplex.GT, 60),
		}},
		map[string]core.Value{"temperature": {IsNumber: true, Number: 24, Unit: "celsius"}})

	conflicts, err := c.FindConflicts(alanAircon, []*core.Rule{tomAircon})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want 1 (conditions overlap above 26C/65%%, settings differ)", conflicts)
	}
	if conflicts[0].String() == "" {
		t.Error("conflict should describe itself")
	}

	// Emily's band (>29C, >75%) still overlaps Alan's (>25C, >60%):
	// both hold at e.g. 30C/80%.
	emilyAircon := mkRule("emily-ac", "emily", "air conditioner", "turn-on",
		&core.And{Terms: []core.Condition{
			cmp("temperature", simplex.GT, 29), cmp("humidity", simplex.GT, 75),
		}},
		map[string]core.Value{"temperature": {IsNumber: true, Number: 27, Unit: "celsius"}})
	conflicts, err = c.FindConflicts(emilyAircon, []*core.Rule{alanAircon, tomAircon})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 2 {
		t.Errorf("conflicts = %d, want 2", len(conflicts))
	}
}

func TestNoConflictCases(t *testing.T) {
	var c Checker
	base := mkRule("a", "tom", "tv", "turn-on",
		cmp("temperature", simplex.GT, 28), nil)

	tests := []struct {
		name  string
		other *core.Rule
	}{
		{
			name:  "different device",
			other: mkRule("b", "alan", "stereo", "turn-off", cmp("temperature", simplex.GT, 20), nil),
		},
		{
			name:  "same action",
			other: mkRule("b", "alan", "tv", "turn-on", cmp("temperature", simplex.GT, 20), nil),
		},
		{
			name:  "disjoint conditions",
			other: mkRule("b", "alan", "tv", "turn-off", cmp("temperature", simplex.LT, 10), nil),
		},
		{
			name:  "same id skipped",
			other: mkRule("a", "alan", "tv", "turn-off", cmp("temperature", simplex.GT, 20), nil),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			conflicts, err := c.FindConflicts(base, []*core.Rule{tt.other})
			if err != nil {
				t.Fatal(err)
			}
			if len(conflicts) != 0 {
				t.Errorf("conflicts = %v, want none", conflicts)
			}
		})
	}
}

func TestConflictBoundaryStrictness(t *testing.T) {
	// temp > 28 vs temp < 28 share no point; temp >= 28 vs temp <= 28 share 28.
	var c Checker
	strictA := mkRule("a", "x", "fan", "turn-on", cmp("t", simplex.GT, 28), nil)
	strictB := mkRule("b", "y", "fan", "turn-off", cmp("t", simplex.LT, 28), nil)
	ok, err := c.Conflicts(strictA, strictB)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("strict > and < at the same bound must not conflict")
	}
	looseA := mkRule("a", "x", "fan", "turn-on", cmp("t", simplex.GE, 28), nil)
	looseB := mkRule("b", "y", "fan", "turn-off", cmp("t", simplex.LE, 28), nil)
	ok, err = c.Conflicts(looseA, looseB)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error(">= and <= at the same bound share the boundary point")
	}
}

func TestConflictsSymmetric(t *testing.T) {
	var c Checker
	r := rand.New(rand.NewSource(3))
	ops := []simplex.Relation{simplex.GT, simplex.GE, simplex.LT, simplex.LE}
	f := func() bool {
		a := mkRule("a", "x", "dev", "turn-on",
			cmp("v", ops[r.Intn(4)], float64(r.Intn(10))), nil)
		b := mkRule("b", "y", "dev", "turn-off",
			cmp("v", ops[r.Intn(4)], float64(r.Intn(10))), nil)
		ab, err1 := c.Conflicts(a, b)
		ba, err2 := c.Conflicts(b, a)
		return err1 == nil && err2 == nil && ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIntervalFastPathAgrees cross-checks the two feasibility engines on
// random single-variable terms.
func TestIntervalFastPathAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ops := []simplex.Relation{simplex.GT, simplex.GE, simplex.LT, simplex.LE, simplex.EQ}
	vars := []string{"a", "b"}
	simplexChecker := Checker{}
	intervalChecker := Checker{UseIntervalFastPath: true}
	f := func() bool {
		n := 1 + r.Intn(5)
		term := make(core.Term, 0, n)
		for i := 0; i < n; i++ {
			term = append(term, cmp(vars[r.Intn(2)], ops[r.Intn(5)], float64(r.Intn(11)-5)))
		}
		s, err1 := simplexChecker.TermFeasible(term)
		iv, err2 := intervalChecker.TermFeasible(term)
		return err1 == nil && err2 == nil && s == iv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTermFeasibleCoupledConstraints(t *testing.T) {
	// Multi-variable constraint falls back to simplex even with the fast
	// path enabled.
	c := Checker{UseIntervalFastPath: true}
	term := core.Term{
		&core.Compare{Var: "x", Op: simplex.GE, Value: 6},
		&core.Compare{Var: "y", Op: simplex.GE, Value: 6},
	}
	ok, err := c.TermFeasible(term)
	if err != nil || !ok {
		t.Fatalf("simple bounds: ok=%v err=%v", ok, err)
	}
}

func TestFindConflictsFromCADELSources(t *testing.T) {
	// End-to-end: parse + compile two users' CADEL rules and detect their
	// conflict, as the home server does on registration.
	lex := vocab.Default()
	compiler := core.NewCompiler(lex)
	parse := func(src, id, owner string) *core.Rule {
		t.Helper()
		cmd, err := lang.Parse(src, lex)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rule, err := compiler.CompileRule(cmd.(*lang.RuleDef), id, owner)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		return rule
	}
	tom := parse("If temperature is higher than 26 degrees and humidity is higher than 65 percent, "+
		"turn on the air conditioner with 25 degrees of temperature setting.", "tom-1", "tom")
	alan := parse("If temperature is higher than 25 degrees and humidity is higher than 60 percent, "+
		"turn on the air conditioner with 24 degrees of temperature setting.", "alan-1", "alan")

	var c Checker
	conflicts, err := c.FindConflicts(alan, []*core.Rule{tom})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want exactly one", conflicts)
	}
}

func TestDNFConflictAcrossOrBranches(t *testing.T) {
	var c Checker
	// a: (cold) or (hot); b: hot → conflict through the second branch.
	a := mkRule("a", "x", "fan", "turn-off", &core.Or{Terms: []core.Condition{
		cmp("t", simplex.LT, 5),
		cmp("t", simplex.GT, 30),
	}}, nil)
	b := mkRule("b", "y", "fan", "turn-on", cmp("t", simplex.GT, 35), nil)
	ok, err := c.Conflicts(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("conflict through or-branch not detected")
	}
}

func TestManyCandidates(t *testing.T) {
	// The paper's workload: 100 same-device rules, each with a 2-inequality
	// condition, checked against a new rule.
	var c Checker
	var candidates []*core.Rule
	for i := 0; i < 100; i++ {
		candidates = append(candidates, mkRule(
			fmt.Sprintf("r%d", i), "u", "air conditioner", "turn-on",
			&core.And{Terms: []core.Condition{
				cmp("temperature", simplex.GT, float64(20+i%10)),
				cmp("humidity", simplex.GT, float64(50+i%20)),
			}},
			map[string]core.Value{"temperature": {IsNumber: true, Number: float64(20 + i%8)}},
		))
	}
	newRule := mkRule("new", "v", "air conditioner", "turn-on",
		&core.And{Terms: []core.Condition{
			cmp("temperature", simplex.GT, 26),
			cmp("humidity", simplex.GT, 65),
		}},
		map[string]core.Value{"temperature": {IsNumber: true, Number: 19}})
	conflicts, err := c.FindConflicts(newRule, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 100 {
		t.Errorf("conflicts = %d, want 100 (all overlap, all settings differ)", len(conflicts))
	}
}
