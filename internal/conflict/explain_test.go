package conflict

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simplex"
)

// TestExplainMatchesArbitrateWinner pins the explain path's contract: it
// always picks the same winner as ArbitrateWinner, and its Explain is
// consistent with the winner it reports — Ordered iff some order applied,
// Rank -1 iff the winner's owner is unlisted in that order.
func TestExplainMatchesArbitrateWinner(t *testing.T) {
	owners := []string{"tom", "alan", "emily", "guest", "visitor"}
	_, ctx, rules := internedFixture(t, owners)
	ctx.SetUsers(owners[:3])
	rng := rand.New(rand.NewSource(7))

	contexts := []struct {
		cond   core.Condition
		source string
	}{
		{nil, ""},
		{&core.Arrival{Person: "emily", Event: "home-from-shopping"}, "emily got home from shopping"},
		{&core.Nobody{Place: "bedroom"}, "nobody at bedroom"},
		{&core.Compare{Var: "temperature", Op: simplex.GT, Value: 25}, "hot"},
	}

	tbl := NewTable()
	ref := core.DeviceRef{Name: "tv"}
	for step := 0; step < 500; step++ {
		switch rng.Intn(6) {
		case 0:
			users := append([]string(nil), owners...)
			rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
			cc := contexts[rng.Intn(len(contexts))]
			tbl.Set(Order{
				Device:        ref,
				Context:       cc.cond,
				ContextSource: cc.source,
				Users:         users[:rng.Intn(len(users)+1)],
			})
		case 1:
			switch rng.Intn(3) {
			case 0:
				ctx.RecordEvent("emily", "home-from-shopping")
			case 1:
				ctx.Now = ctx.Now.Add(time.Duration(rng.Intn(10)) * time.Minute)
			default:
				ctx.SetNumber("temperature", float64(10+rng.Intn(30)))
			}
		}
		subset := make([]*core.Rule, 0, len(rules))
		for _, r := range rules {
			if rng.Intn(3) > 0 {
				subset = append(subset, r)
			}
		}
		winner := tbl.ArbitrateWinner(ref, ctx, subset)
		got, ex := tbl.ArbitrateWinnerExplain(ref, ctx, subset)
		if got != winner {
			t.Fatalf("step %d: explain winner %v, ArbitrateWinner %v", step, got, winner)
		}
		if winner == nil {
			if ex.Ordered || ex.Rank != -1 {
				t.Fatalf("step %d: nil winner with explain %+v", step, ex)
			}
			continue
		}
		if !ex.Ordered && (ex.Rank != -1 || ex.Context != "") {
			t.Fatalf("step %d: unordered explain carries rank/context: %+v", step, ex)
		}
		if ex.Rank >= 0 {
			if !ex.Ordered {
				t.Fatalf("step %d: ranked but not ordered: %+v", step, ex)
			}
			// The reported rank must point at the winner's owner in the
			// applicable order.
			applicable, ok := tbl.Applicable(ref, ctx)
			if !ok {
				t.Fatalf("step %d: ordered explain but no applicable order", step)
			}
			if ex.Context != applicable.ContextSource {
				t.Fatalf("step %d: context %q, applicable %q", step, ex.Context, applicable.ContextSource)
			}
			if ex.Rank >= len(applicable.Users) || applicable.Users[ex.Rank] != winner.Owner {
				t.Fatalf("step %d: rank %d does not name winner owner %q in %v",
					step, ex.Rank, winner.Owner, applicable.Users)
			}
		}
	}
}

// TestExplainStringContextFallback: the allocating oracle path reports the
// same winner and a usable explain.
func TestExplainStringContextFallback(t *testing.T) {
	_, _, rules := internedFixture(t, []string{"tom", "alan"})
	tbl := NewTable()
	tbl.Set(Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"alan", "tom"}})
	ctx := core.NewContext(time.Now())
	winner, ex := tbl.ArbitrateWinnerExplain(core.DeviceRef{Name: "tv"}, ctx, rules)
	if winner.Owner != "alan" {
		t.Fatalf("winner = %s, want alan", winner.Owner)
	}
	if !ex.Ordered || ex.Rank != 0 || ex.Context != "" {
		t.Fatalf("explain = %+v, want default order rank 0", ex)
	}
}

// TestExplainSoleContender: unlike ArbitrateWinner, the explain path must
// resolve the order even for a single ready rule so the trace can say where
// the sole contender ranks.
func TestExplainSoleContender(t *testing.T) {
	_, ctx, rules := internedFixture(t, []string{"tom", "alan"})
	tbl := NewTable()
	tbl.Set(Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"alan", "tom"}})
	winner, ex := tbl.ArbitrateWinnerExplain(core.DeviceRef{Name: "tv"}, ctx, rules[:1])
	if winner != rules[0] {
		t.Fatalf("winner = %v", winner)
	}
	if !ex.Ordered || ex.Rank != 1 {
		t.Fatalf("explain = %+v, want tom ranked #2 (index 1) in the default order", ex)
	}

	// No order at all: unordered explain.
	empty := NewTable()
	winner, ex = empty.ArbitrateWinnerExplain(core.DeviceRef{Name: "tv"}, ctx, rules[:1])
	if winner != rules[0] || ex.Ordered || ex.Rank != -1 {
		t.Fatalf("winner %v explain %+v, want unordered sole rule", winner, ex)
	}
}
