// Package interval implements interval arithmetic over named numeric
// variables. The conflict checker uses it as a fast feasibility path for the
// common case where rule conditions are conjunctions of per-variable bounds
// (e.g. "temperature is higher than 28 degrees and humidity is over 60 %"),
// and as an independent oracle to cross-check the simplex solver.
package interval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a possibly-unbounded interval of float64 values. Lo and Hi may
// be ±Inf. LoOpen/HiOpen mark strict endpoints: {Lo:28, LoOpen:true} encodes
// "> 28" while {Lo:28} encodes ">= 28".
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Full returns the interval covering all reals.
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval {
	return Interval{Lo: v, Hi: v}
}

// AtLeast returns [v, +inf).
func AtLeast(v float64) Interval {
	return Interval{Lo: v, Hi: math.Inf(1)}
}

// GreaterThan returns (v, +inf).
func GreaterThan(v float64) Interval {
	return Interval{Lo: v, LoOpen: true, Hi: math.Inf(1)}
}

// AtMost returns (-inf, v].
func AtMost(v float64) Interval {
	return Interval{Lo: math.Inf(-1), Hi: v}
}

// LessThan returns (-inf, v).
func LessThan(v float64) Interval {
	return Interval{Lo: math.Inf(-1), Hi: v, HiOpen: true}
}

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
		return false
	}
	if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	out := iv
	if other.Lo > out.Lo {
		out.Lo, out.LoOpen = other.Lo, other.LoOpen
	} else if other.Lo == out.Lo {
		out.LoOpen = out.LoOpen || other.LoOpen
	}
	if other.Hi < out.Hi {
		out.Hi, out.HiOpen = other.Hi, other.HiOpen
	} else if other.Hi == out.Hi {
		out.HiOpen = out.HiOpen || other.HiOpen
	}
	return out
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

// Sample returns an arbitrary value inside the interval. It reports false if
// the interval is empty.
func (iv Interval) Sample() (float64, bool) {
	if iv.Empty() {
		return 0, false
	}
	loInf, hiInf := math.IsInf(iv.Lo, -1), math.IsInf(iv.Hi, 1)
	switch {
	case loInf && hiInf:
		return 0, true
	case loInf:
		if iv.HiOpen {
			return iv.Hi - 1, true
		}
		return iv.Hi, true
	case hiInf:
		if iv.LoOpen {
			return iv.Lo + 1, true
		}
		return iv.Lo, true
	default:
		if iv.Lo == iv.Hi {
			return iv.Lo, true
		}
		return (iv.Lo + iv.Hi) / 2, true
	}
}

// String renders the interval in mathematical notation, e.g. "(28, 35]".
func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen || math.IsInf(iv.Lo, -1) {
		lb = "("
	}
	if iv.HiOpen || math.IsInf(iv.Hi, 1) {
		rb = ")"
	}
	return fmt.Sprintf("%s%s, %s%s", lb, fmtBound(iv.Lo), fmtBound(iv.Hi), rb)
}

func fmtBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Box maps variable names to the interval each variable is constrained to.
// A variable that is absent is unconstrained.
type Box map[string]Interval

// NewBox returns an empty box (all variables unconstrained).
func NewBox() Box {
	return make(Box)
}

// Constrain intersects the current interval of name with iv.
func (b Box) Constrain(name string, iv Interval) {
	cur, ok := b[name]
	if !ok {
		cur = Full()
	}
	b[name] = cur.Intersect(iv)
}

// Get returns the interval for name, defaulting to the full line.
func (b Box) Get(name string) Interval {
	if iv, ok := b[name]; ok {
		return iv
	}
	return Full()
}

// Feasible reports whether every variable's interval is non-empty.
func (b Box) Feasible() bool {
	for _, iv := range b {
		if iv.Empty() {
			return false
		}
	}
	return true
}

// Intersect returns a new box constraining each variable by both inputs.
func (b Box) Intersect(other Box) Box {
	out := make(Box, len(b)+len(other))
	for k, v := range b {
		out[k] = v
	}
	for k, v := range other {
		out.Constrain(k, v)
	}
	return out
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	out := make(Box, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Sample returns a point (one value per constrained variable) inside the box.
// It reports false if the box is empty.
func (b Box) Sample() (map[string]float64, bool) {
	point := make(map[string]float64, len(b))
	for name, iv := range b {
		v, ok := iv.Sample()
		if !ok {
			return nil, false
		}
		point[name] = v
	}
	return point, true
}

// String renders the box with variables in sorted order.
func (b Box) String() string {
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s in %s", name, b[name]))
	}
	return strings.Join(parts, ", ")
}
