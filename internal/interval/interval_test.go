package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tests := []struct {
		name string
		give Interval
		want bool
	}{
		{name: "full", give: Full(), want: false},
		{name: "point", give: Point(5), want: false},
		{name: "inverted", give: Interval{Lo: 2, Hi: 1}, want: true},
		{name: "open point lo", give: Interval{Lo: 1, Hi: 1, LoOpen: true}, want: true},
		{name: "open point hi", give: Interval{Lo: 1, Hi: 1, HiOpen: true}, want: true},
		{name: "proper open", give: Interval{Lo: 1, Hi: 2, LoOpen: true, HiOpen: true}, want: false},
		{name: "at least", give: AtLeast(3), want: false},
		{name: "less than", give: LessThan(-10), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Empty(); got != tt.want {
				t.Errorf("Empty(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestContains(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		v    float64
		want bool
	}{
		{name: "inside closed", iv: Interval{Lo: 1, Hi: 3}, v: 2, want: true},
		{name: "lo closed boundary", iv: Interval{Lo: 1, Hi: 3}, v: 1, want: true},
		{name: "hi closed boundary", iv: Interval{Lo: 1, Hi: 3}, v: 3, want: true},
		{name: "lo open boundary", iv: Interval{Lo: 1, Hi: 3, LoOpen: true}, v: 1, want: false},
		{name: "hi open boundary", iv: Interval{Lo: 1, Hi: 3, HiOpen: true}, v: 3, want: false},
		{name: "below", iv: Interval{Lo: 1, Hi: 3}, v: 0.5, want: false},
		{name: "above", iv: Interval{Lo: 1, Hi: 3}, v: 3.5, want: false},
		{name: "full contains anything", iv: Full(), v: 1e18, want: true},
		{name: "greater than excludes bound", iv: GreaterThan(28), v: 28, want: false},
		{name: "greater than includes above", iv: GreaterThan(28), v: 28.001, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Contains(tt.v); got != tt.want {
				t.Errorf("(%v).Contains(%v) = %v, want %v", tt.iv, tt.v, got, tt.want)
			}
		})
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		name      string
		a, b      Interval
		wantEmpty bool
	}{
		{name: "overlap", a: Interval{Lo: 1, Hi: 5}, b: Interval{Lo: 3, Hi: 8}, wantEmpty: false},
		{name: "disjoint", a: Interval{Lo: 1, Hi: 2}, b: Interval{Lo: 3, Hi: 4}, wantEmpty: true},
		{name: "touching closed", a: Interval{Lo: 1, Hi: 3}, b: Interval{Lo: 3, Hi: 5}, wantEmpty: false},
		{name: "touching open left", a: Interval{Lo: 1, Hi: 3, HiOpen: true}, b: Interval{Lo: 3, Hi: 5}, wantEmpty: true},
		{name: "touching open right", a: Interval{Lo: 1, Hi: 3}, b: Interval{Lo: 3, Hi: 5, LoOpen: true}, wantEmpty: true},
		{name: "strict over/under same bound", a: GreaterThan(28), b: LessThan(28), wantEmpty: true},
		{name: "loose over/under same bound", a: AtLeast(28), b: AtMost(28), wantEmpty: false},
		{name: "with full", a: Full(), b: Interval{Lo: -1, Hi: 1}, wantEmpty: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersect(tt.b)
			if got.Empty() != tt.wantEmpty {
				t.Errorf("(%v).Intersect(%v) = %v, empty=%v, want empty=%v",
					tt.a, tt.b, got, got.Empty(), tt.wantEmpty)
			}
			if tt.a.Overlaps(tt.b) == tt.wantEmpty {
				t.Errorf("Overlaps disagrees with Intersect emptiness")
			}
		})
	}
}

func TestIntersectKeepsTighterBound(t *testing.T) {
	a := Interval{Lo: 1, Hi: 10}
	b := Interval{Lo: 1, Hi: 10, LoOpen: true}
	got := a.Intersect(b)
	if !got.LoOpen {
		t.Errorf("intersection of [1,10] and (1,10] should be open at 1, got %v", got)
	}
}

func TestSample(t *testing.T) {
	ivs := []Interval{
		Full(),
		Point(7),
		AtLeast(3),
		AtMost(-2),
		GreaterThan(0),
		LessThan(100),
		{Lo: 2, Hi: 4, LoOpen: true, HiOpen: true},
	}
	for _, iv := range ivs {
		v, ok := iv.Sample()
		if !ok {
			t.Errorf("Sample(%v) reported empty", iv)
			continue
		}
		if !iv.Contains(v) {
			t.Errorf("Sample(%v) = %v which is outside the interval", iv, v)
		}
	}
	if _, ok := (Interval{Lo: 3, Hi: 1}).Sample(); ok {
		t.Error("Sample of empty interval should report false")
	}
}

func TestBoxConstrainAndFeasible(t *testing.T) {
	b := NewBox()
	b.Constrain("temp", GreaterThan(28))
	b.Constrain("humid", GreaterThan(60))
	if !b.Feasible() {
		t.Fatalf("box %v should be feasible", b)
	}
	b.Constrain("temp", LessThan(25))
	if b.Feasible() {
		t.Fatalf("box %v should be infeasible after temp<25", b)
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox()
	a.Constrain("x", AtLeast(0))
	b := NewBox()
	b.Constrain("x", AtMost(10))
	b.Constrain("y", Point(3))
	got := a.Intersect(b)
	if !got.Feasible() {
		t.Fatalf("intersection should be feasible: %v", got)
	}
	if iv := got.Get("x"); iv.Lo != 0 || iv.Hi != 10 {
		t.Errorf("x interval = %v, want [0,10]", iv)
	}
	if iv := got.Get("y"); iv.Lo != 3 || iv.Hi != 3 {
		t.Errorf("y interval = %v, want [3,3]", iv)
	}
	// Inputs untouched.
	if iv := a.Get("x"); !math.IsInf(iv.Hi, 1) {
		t.Errorf("Intersect mutated receiver: %v", a)
	}
}

func TestBoxSample(t *testing.T) {
	b := NewBox()
	b.Constrain("t", Interval{Lo: 26, Hi: 30, LoOpen: true})
	b.Constrain("h", AtLeast(65))
	point, ok := b.Sample()
	if !ok {
		t.Fatal("feasible box reported empty")
	}
	for name, v := range point {
		if !b.Get(name).Contains(v) {
			t.Errorf("sample %s=%v outside %v", name, v, b.Get(name))
		}
	}
	b.Constrain("t", GreaterThan(40))
	if _, ok := b.Sample(); ok {
		t.Error("infeasible box should not sample")
	}
}

func TestBoxGetDefault(t *testing.T) {
	b := NewBox()
	iv := b.Get("missing")
	if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("default interval should be full, got %v", iv)
	}
}

func TestBoxClone(t *testing.T) {
	b := NewBox()
	b.Constrain("x", Point(1))
	c := b.Clone()
	c.Constrain("x", Point(2))
	if b.Get("x").Contains(2) && !b.Get("x").Contains(1) {
		t.Error("Clone shares state with original")
	}
	if !b.Feasible() {
		t.Error("original box mutated by clone constrain")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		give Interval
		want string
	}{
		{give: Interval{Lo: 1, Hi: 2}, want: "[1, 2]"},
		{give: GreaterThan(28), want: "(28, +inf)"},
		{give: LessThan(60), want: "(-inf, 60)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func randInterval(r *rand.Rand) Interval {
	lo := float64(r.Intn(41) - 20)
	hi := lo + float64(r.Intn(20))
	iv := Interval{Lo: lo, Hi: hi, LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0}
	if r.Intn(8) == 0 {
		iv.Lo = math.Inf(-1)
		iv.LoOpen = false
	}
	if r.Intn(8) == 0 {
		iv.Hi = math.Inf(1)
		iv.HiOpen = false
	}
	return iv
}

func TestQuickIntersectCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randInterval(r), randInterval(r)
		x, y := a.Intersect(b), b.Intersect(a)
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b, c := randInterval(r), randInterval(r), randInterval(r)
		x := a.Intersect(b).Intersect(c)
		y := a.Intersect(b.Intersect(c))
		// Empty intervals may differ in representation; compare emptiness
		// and, when non-empty, exact bounds.
		if x.Empty() || y.Empty() {
			return x.Empty() == y.Empty()
		}
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectContains(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randInterval(r), randInterval(r)
		got := a.Intersect(b)
		v, ok := got.Sample()
		if !ok {
			return true
		}
		return a.Contains(v) && b.Contains(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		a := randInterval(r)
		return a.Intersect(a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
