package auth

import (
	"testing"

	"repro/internal/core"
)

func tv() core.DeviceRef    { return core.DeviceRef{Name: "tv"} }
func hall() core.DeviceRef  { return core.DeviceRef{Name: "light", Location: "hall"} }
func other() core.DeviceRef { return core.DeviceRef{Name: "light", Location: "kitchen"} }

func TestDefaultAllow(t *testing.T) {
	s := New(true)
	if !s.Allowed("anyone", tv(), "turn-on") {
		t.Error("default-allow store should permit ungrated users")
	}
	s2 := New(false)
	if s2.Allowed("anyone", tv(), "turn-on") {
		t.Error("default-deny store should reject ungrated users")
	}
}

func TestGrantScopesUser(t *testing.T) {
	s := New(true)
	// Once a user has explicit grants, only those apply.
	s.Allow("kid", tv(), "turn-off")
	if s.Allowed("kid", tv(), "turn-on") {
		t.Error("kid may only turn the tv off")
	}
	if !s.Allowed("kid", tv(), "turn-off") {
		t.Error("granted verb should pass")
	}
	// Other users keep the default policy.
	if !s.Allowed("parent", tv(), "turn-on") {
		t.Error("ungranted user keeps defaultAllow")
	}
}

func TestGrantDeviceMatching(t *testing.T) {
	s := New(false)
	s.Allow("kid", hall(), "turn-on", "turn-off")
	if !s.Allowed("kid", hall(), "turn-on") {
		t.Error("exact match should pass")
	}
	if s.Allowed("kid", other(), "turn-on") {
		t.Error("different location should fail")
	}
	if s.Allowed("kid", tv(), "turn-on") {
		t.Error("different device should fail")
	}
	// Unlocated rule reference matches the located grant.
	if !s.Allowed("kid", core.DeviceRef{Name: "light"}, "turn-on") {
		t.Error("unlocated reference should match located grant")
	}
}

func TestWildcardGrants(t *testing.T) {
	s := New(false)
	s.Allow("admin", core.DeviceRef{}) // all devices, AnyVerb implied
	if !s.Allowed("admin", tv(), "record") {
		t.Error("wildcard grant should permit everything")
	}
	s.Allow("viewer", core.DeviceRef{}, "turn-on")
	if !s.Allowed("viewer", hall(), "turn-on") {
		t.Error("verb-limited wildcard device grant")
	}
	if s.Allowed("viewer", hall(), "turn-off") {
		t.Error("verb not granted")
	}
}

func TestRevoke(t *testing.T) {
	s := New(true)
	s.Allow("kid", tv(), "turn-off")
	if s.Allowed("kid", tv(), "turn-on") {
		t.Error("granted user is scoped")
	}
	s.Revoke("kid")
	if !s.Allowed("kid", tv(), "turn-on") {
		t.Error("revoked user returns to default policy")
	}
}

func TestGrantsAndUsers(t *testing.T) {
	s := New(false)
	s.Allow("b", tv(), "turn-on")
	s.Allow("a", hall())
	users := s.Users()
	if len(users) != 2 || users[0] != "a" || users[1] != "b" {
		t.Errorf("users = %v", users)
	}
	grants := s.Grants("b")
	if len(grants) != 1 || grants[0].String() == "" {
		t.Errorf("grants = %v", grants)
	}
	if len(s.Grants("nobody")) != 0 {
		t.Error("ungranted user should have no grants")
	}
	// Returned slice is a copy.
	grants[0].Verbs[0] = "hacked"
	if s.Grants("b")[0].Verbs[0] == "hacked" {
		t.Error("Grants exposed internal state")
	}
}
