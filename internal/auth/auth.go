// Package auth implements the security mechanism the paper names as future
// work (Sect. 6): "limiting access or allowable operations to each device
// depending on users' privileges". A Store records per-user grants — which
// devices a user may target and with which actions — and the home server
// consults it when a rule is submitted.
package auth

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// AnyVerb grants every action on the matched devices.
const AnyVerb = "*"

// Grant allows a set of verbs on the devices matching Device. An empty
// device name matches every device; an empty location matches every room.
type Grant struct {
	Device core.DeviceRef
	Verbs  []string
}

// matches reports whether the grant covers the device and verb.
func (g Grant) matches(ref core.DeviceRef, verb string) bool {
	if g.Device.Name != "" && g.Device.Name != ref.Name {
		return false
	}
	if g.Device.Location != "" && ref.Location != "" && g.Device.Location != ref.Location {
		return false
	}
	for _, v := range g.Verbs {
		if v == AnyVerb || v == verb {
			return true
		}
	}
	return false
}

func (g Grant) String() string {
	device := g.Device.Key()
	if g.Device.Name == "" {
		device = "*"
	}
	return fmt.Sprintf("%s: %s", device, strings.Join(g.Verbs, ","))
}

// Store holds the per-user grants. The zero value is unusable; construct
// with New.
type Store struct {
	mu sync.RWMutex
	// defaultAllow controls users without any grant: true mirrors the
	// paper's open prototype, false is deny-by-default.
	defaultAllow bool
	grants       map[string][]Grant
}

// New returns a store. With defaultAllow, users with no grants may do
// anything (grants then act as the switch to an explicit policy for that
// user); without it, every action needs a grant.
func New(defaultAllow bool) *Store {
	return &Store{defaultAllow: defaultAllow, grants: make(map[string][]Grant)}
}

// Allow records a grant for the user.
func (s *Store) Allow(user string, device core.DeviceRef, verbs ...string) {
	if len(verbs) == 0 {
		verbs = []string{AnyVerb}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[user] = append(s.grants[user], Grant{Device: device, Verbs: append([]string(nil), verbs...)})
}

// Revoke removes every grant of the user, returning them to the default
// policy.
func (s *Store) Revoke(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.grants, user)
}

// Allowed reports whether the user may apply the verb to the device.
func (s *Store) Allowed(user string, device core.DeviceRef, verb string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	grants, ok := s.grants[user]
	if !ok {
		return s.defaultAllow
	}
	for _, g := range grants {
		if g.matches(device, verb) {
			return true
		}
	}
	return false
}

// Grants returns the user's grants, or nil when the user is on the default
// policy.
func (s *Store) Grants(user string) []Grant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Grant, 0, len(s.grants[user]))
	for _, g := range s.grants[user] {
		g.Verbs = append([]string(nil), g.Verbs...)
		out = append(out, g)
	}
	return out
}

// Users returns every user with explicit grants, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.grants))
	for u := range s.grants {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
