package upnp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

const (
	searchWindow = 500 * time.Millisecond
	lightType    = "urn:schemas-upnp-org:device:Light:1"
	switchSvc    = "urn:schemas-upnp-org:service:SwitchPower:1"
	dimSvc       = "urn:schemas-upnp-org:service:Dimming:1"
)

// newLight builds a virtual light device with a switchable power service.
func newLight(id int) *Device {
	power := NewStateVar("power", VarBool, "0", true)
	svc := NewService("urn:upnp-org:serviceId:SwitchPower", switchSvc).
		AddVar(power).
		AddAction(&Action{
			Name:   "SetPower",
			ArgsIn: []string{"value"},
			Handler: func(args map[string]string) (map[string]string, error) {
				power.Set(args["value"])
				return map[string]string{"result": "ok"}, nil
			},
		}).
		AddAction(&Action{
			Name:    "GetPower",
			ArgsOut: []string{"value"},
			Handler: func(map[string]string) (map[string]string, error) {
				return map[string]string{"value": power.Get()}, nil
			},
		})
	return &Device{
		UDN:          fmt.Sprintf("uuid:light-%d", id),
		DeviceType:   lightType,
		FriendlyName: fmt.Sprintf("light %d", id),
		Location:     "hall",
		Services:     []*Service{svc},
	}
}

func newHostCP(t *testing.T) (*Network, *DeviceHost, *ControlPoint) {
	t.Helper()
	network := NewNetwork()
	host, err := NewDeviceHost(network)
	if err != nil {
		t.Fatalf("NewDeviceHost: %v", err)
	}
	t.Cleanup(func() { _ = host.Close() })
	cp, err := NewControlPoint(network)
	if err != nil {
		t.Fatalf("NewControlPoint: %v", err)
	}
	t.Cleanup(func() { _ = cp.Close() })
	return network, host, cp
}

func TestDiscoveryByName(t *testing.T) {
	_, host, cp := newHostCP(t)
	for i := 0; i < 5; i++ {
		if err := host.Publish(newLight(i)); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := cp.FindByName("light 3", searchWindow)
	if err != nil {
		t.Fatalf("FindByName: %v", err)
	}
	if rd.UDN != "uuid:light-3" {
		t.Errorf("UDN = %q", rd.UDN)
	}
	if rd.Location != "hall" {
		t.Errorf("room hint = %q", rd.Location)
	}
}

func TestDiscoveryByServiceAndType(t *testing.T) {
	_, host, cp := newHostCP(t)
	if err := host.Publish(newLight(1)); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByService(switchSvc, searchWindow)
	if err != nil {
		t.Fatalf("FindByService: %v", err)
	}
	if rd.DeviceType != lightType {
		t.Errorf("device type = %q", rd.DeviceType)
	}
	rd2, err := cp.FindByType(lightType, searchWindow)
	if err != nil {
		t.Fatalf("FindByType: %v", err)
	}
	if rd2.UDN != rd.UDN {
		t.Error("type and service searches disagree")
	}
	if _, err := cp.FindByService(dimSvc, 50*time.Millisecond); err == nil {
		t.Error("absent service should not be found")
	}
}

func TestAliveAnnouncementPopulatesCache(t *testing.T) {
	_, host, cp := newHostCP(t)
	// Publish AFTER the control point is up: the alive NOTIFY alone should
	// populate the cache without any M-SEARCH.
	if err := host.Publish(newLight(7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(searchWindow)
	for time.Now().Before(deadline) {
		if _, ok := cp.DeviceByUDN("uuid:light-7"); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("alive announcement did not reach the control point cache")
}

func TestByebyeRemovesDevice(t *testing.T) {
	_, host, cp := newHostCP(t)
	if err := host.Publish(newLight(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.FindByName("light 9", searchWindow); err != nil {
		t.Fatal(err)
	}
	if err := host.Unpublish("uuid:light-9"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(searchWindow)
	for time.Now().Before(deadline) {
		if _, ok := cp.DeviceByUDN("uuid:light-9"); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("byebye did not remove the device")
}

func TestInvokeAction(t *testing.T) {
	_, host, cp := newHostCP(t)
	light := newLight(2)
	if err := host.Publish(light); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("light 2", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Invoke(rd, switchSvc, "SetPower", map[string]string{"value": "1"}); err != nil {
		t.Fatalf("Invoke SetPower: %v", err)
	}
	out, err := cp.Invoke(rd, switchSvc, "GetPower", nil)
	if err != nil {
		t.Fatalf("Invoke GetPower: %v", err)
	}
	if out["value"] != "1" {
		t.Errorf("power = %q, want 1", out["value"])
	}
	svc, _ := light.Service(switchSvc)
	v, _ := svc.Var("power")
	if !v.Bool() {
		t.Error("host-side state variable not updated")
	}
}

func TestInvokeErrors(t *testing.T) {
	_, host, cp := newHostCP(t)
	if err := host.Publish(newLight(4)); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("light 4", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Invoke(rd, switchSvc, "NoSuchAction", nil); err == nil {
		t.Error("unknown action should error")
	}
	if _, err := cp.Invoke(rd, "urn:no:such:svc", "SetPower", nil); err == nil {
		t.Error("unknown service should error")
	}
}

func TestEventSubscription(t *testing.T) {
	_, host, cp := newHostCP(t)
	if err := host.Publish(newLight(5)); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("light 5", searchWindow)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	got := make(map[string]string)
	notify := make(chan struct{}, 8)
	cancel, err := cp.Subscribe(rd, switchSvc, func(vars map[string]string) {
		mu.Lock()
		for k, v := range vars {
			got[k] = v
		}
		mu.Unlock()
		notify <- struct{}{}
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	// Initial event carries current state.
	select {
	case <-notify:
	case <-time.After(2 * time.Second):
		t.Fatal("no initial event")
	}
	mu.Lock()
	if got["power"] != "0" {
		t.Errorf("initial power = %q, want 0", got["power"])
	}
	mu.Unlock()

	// A state change is pushed.
	if err := host.SetVar("uuid:light-5", switchSvc, "power", "1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notify:
	case <-time.After(2 * time.Second):
		t.Fatal("no change event")
	}
	mu.Lock()
	if got["power"] != "1" {
		t.Errorf("power = %q, want 1", got["power"])
	}
	mu.Unlock()

	// Setting the same value again must not notify.
	if err := host.SetVar("uuid:light-5", switchSvc, "power", "1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notify:
		t.Error("unchanged value should not notify")
	case <-time.After(100 * time.Millisecond):
	}

	// After unsubscribe, no more events.
	if err := cancel(); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	if err := host.SetVar("uuid:light-5", switchSvc, "power", "0"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notify:
		t.Error("event after unsubscribe")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSubscribeLocal(t *testing.T) {
	_, host, _ := newHostCP(t)
	if err := host.Publish(newLight(6)); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []map[string]string
	cancel, err := host.SubscribeLocal("uuid:light-6", switchSvc, func(vars map[string]string) {
		mu.Lock()
		events = append(events, vars)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("SubscribeLocal: %v", err)
	}
	mu.Lock()
	if len(events) != 1 || events[0]["power"] != "0" {
		t.Fatalf("initial local event = %v", events)
	}
	mu.Unlock()
	if err := host.SetVar("uuid:light-6", switchSvc, "power", "1"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(events) != 2 || events[1]["power"] != "1" {
		t.Fatalf("events = %v", events)
	}
	mu.Unlock()
	cancel()
	if err := host.SetVar("uuid:light-6", switchSvc, "power", "0"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(events) != 2 {
		t.Error("event delivered after cancel")
	}
	mu.Unlock()
}

func TestPublishValidation(t *testing.T) {
	_, host, _ := newHostCP(t)
	if err := host.Publish(&Device{}); err == nil {
		t.Error("device without UDN should fail")
	}
	light := newLight(8)
	if err := host.Publish(light); err != nil {
		t.Fatal(err)
	}
	if err := host.Publish(light); err == nil {
		t.Error("duplicate publish should fail")
	}
	if err := host.Unpublish("uuid:nope"); err == nil {
		t.Error("unpublishing unknown device should fail")
	}
	if err := host.SetVar("uuid:nope", switchSvc, "power", "1"); err == nil {
		t.Error("SetVar on unknown device should fail")
	}
	if err := host.SetVar("uuid:light-8", "urn:no", "power", "1"); err == nil {
		t.Error("SetVar on unknown service should fail")
	}
	if err := host.SetVar("uuid:light-8", switchSvc, "nope", "1"); err == nil {
		t.Error("SetVar on unknown variable should fail")
	}
}

func TestFifty(t *testing.T) {
	// The paper's experiment shape: 50 virtual devices, retrieve one by
	// name and one by service name.
	_, host, cp := newHostCP(t)
	for i := 0; i < 50; i++ {
		if err := host.Publish(newLight(i)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	rd, err := cp.FindByName("light 42", 2*time.Second)
	if err != nil {
		t.Fatalf("FindByName over 50 devices: %v", err)
	}
	elapsed := time.Since(start)
	if rd.UDN != "uuid:light-42" {
		t.Errorf("UDN = %q", rd.UDN)
	}
	// The paper reports <= 10ms on 2005 hardware; allow generous slack for
	// CI noise while still catching pathological regressions.
	if elapsed > time.Second {
		t.Errorf("retrieval took %v", elapsed)
	}
	// FindByName returns as soon as its match appears; the remaining
	// responses keep arriving asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(cp.Devices()) < 50 {
		time.Sleep(5 * time.Millisecond)
	}
	if devices := cp.Devices(); len(devices) != 50 {
		t.Errorf("cache has %d devices, want 50", len(devices))
	}
}

func TestNetworkJoinLeave(t *testing.T) {
	n := NewNetwork()
	if len(n.Members()) != 0 {
		t.Error("new network not empty")
	}
	host, err := NewDeviceHost(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Members()) != 1 {
		t.Errorf("members = %d, want 1", len(n.Members()))
	}
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if len(n.Members()) != 0 {
		t.Errorf("members after close = %d, want 0", len(n.Members()))
	}
}

func TestCloseIdempotentShutdown(t *testing.T) {
	network := NewNetwork()
	host, err := NewDeviceHost(network)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Publish(newLight(0)); err != nil {
		t.Fatal(err)
	}
	cp, err := NewControlPoint(network)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.FindByName("light 0", searchWindow); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Errorf("cp close: %v", err)
	}
	if err := host.Close(); err != nil {
		t.Errorf("host close: %v", err)
	}
}
