package upnp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const serverHeader = "cadel-home/1.0 UPnP/1.0 micro/1.0"

// subscription is one GENA event subscriber of a hosted service.
type subscription struct {
	sid      string
	callback string // callback URL; empty for local (in-process) subscribers
	local    func(vars map[string]string)
	seq      uint64
	expires  time.Time
}

// DeviceHost hosts UPnP devices: it answers SSDP searches over UDP, serves
// description documents, executes control actions and delivers state-change
// events to subscribers over HTTP.
type DeviceHost struct {
	network *Network
	udp     *net.UDPConn
	httpSrv *http.Server
	ln      net.Listener
	client  *http.Client
	baseURL string
	leave   func()

	mu      sync.RWMutex
	devices map[string]*Device         // by UDN
	subs    map[string][]*subscription // by udn + "|" + serviceType

	sidCounter atomic.Uint64
	done       chan struct{}
	wg         sync.WaitGroup
}

// NewDeviceHost starts a device host on loopback and joins the network.
func NewDeviceHost(network *Network) (*DeviceHost, error) {
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("upnp: host udp listen: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = udpConn.Close()
		return nil, fmt.Errorf("upnp: host http listen: %w", err)
	}

	h := &DeviceHost{
		network: network,
		udp:     udpConn,
		ln:      ln,
		client:  &http.Client{Timeout: 5 * time.Second},
		baseURL: "http://" + ln.Addr().String(),
		devices: make(map[string]*Device),
		subs:    make(map[string][]*subscription),
		done:    make(chan struct{}),
	}
	h.leave = network.Join(udpConn.LocalAddr().(*net.UDPAddr))

	mux := http.NewServeMux()
	mux.HandleFunc("/desc/", h.handleDescription)
	mux.HandleFunc("/scpd/", h.handleSCPD)
	mux.HandleFunc("/control/", h.handleControl)
	mux.HandleFunc("/event/", h.handleEvent)
	h.httpSrv = &http.Server{Handler: mux}

	h.wg.Add(2)
	go func() {
		defer h.wg.Done()
		_ = h.httpSrv.Serve(ln)
	}()
	go func() {
		defer h.wg.Done()
		h.udpLoop()
	}()
	return h, nil
}

// BaseURL returns the host's HTTP endpoint.
func (h *DeviceHost) BaseURL() string { return h.baseURL }

// Close announces byebye for all devices and stops the host.
func (h *DeviceHost) Close() error {
	h.mu.RLock()
	for _, d := range h.devices {
		_ = h.network.multicast(h.udp, buildByebye(d.DeviceType, d.usn()))
	}
	h.mu.RUnlock()
	close(h.done)
	h.leave()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = h.httpSrv.Shutdown(ctx)
	err := h.udp.Close()
	h.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// Publish registers a device and multicasts its ssdp:alive announcements.
func (h *DeviceHost) Publish(d *Device) error {
	if d.UDN == "" || d.FriendlyName == "" {
		return errors.New("upnp: device needs UDN and friendly name")
	}
	h.mu.Lock()
	if _, dup := h.devices[d.UDN]; dup {
		h.mu.Unlock()
		return fmt.Errorf("upnp: device %s already published", d.UDN)
	}
	h.devices[d.UDN] = d
	h.mu.Unlock()

	location := h.descURL(d.UDN)
	_ = h.network.multicast(h.udp, buildAlive(TargetRootDevice, d.usn(), location, serverHeader))
	_ = h.network.multicast(h.udp, buildAlive(d.DeviceType, d.usn(), location, serverHeader))
	return nil
}

// Unpublish withdraws a device with a byebye announcement.
func (h *DeviceHost) Unpublish(udn string) error {
	h.mu.Lock()
	d, ok := h.devices[udn]
	if ok {
		delete(h.devices, udn)
		for key := range h.subs {
			if strings.HasPrefix(key, udn+"|") {
				delete(h.subs, key)
			}
		}
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("upnp: device %s not published", udn)
	}
	return h.network.multicast(h.udp, buildByebye(d.DeviceType, d.usn()))
}

// Device returns a hosted device by UDN.
func (h *DeviceHost) Device(udn string) (*Device, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	d, ok := h.devices[udn]
	return d, ok
}

// Devices returns all hosted devices.
func (h *DeviceHost) Devices() []*Device {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Device, 0, len(h.devices))
	for _, d := range h.devices {
		out = append(out, d)
	}
	return out
}

// SetVar updates a state variable and notifies subscribers when the value
// changed and the variable is evented.
func (h *DeviceHost) SetVar(udn, serviceType, varName, value string) error {
	h.mu.RLock()
	d, ok := h.devices[udn]
	h.mu.RUnlock()
	if !ok {
		return fmt.Errorf("upnp: device %s not published", udn)
	}
	svc, ok := d.Service(serviceType)
	if !ok {
		return fmt.Errorf("upnp: device %s has no service %s", udn, serviceType)
	}
	v, ok := svc.Var(varName)
	if !ok {
		return fmt.Errorf("upnp: service %s has no variable %s", serviceType, varName)
	}
	if changed := v.Set(value); changed && v.Evented {
		h.notify(udn, serviceType, map[string]string{varName: value})
	}
	return nil
}

// SubscribeLocal attaches an in-process event subscriber (used by the home
// server when it runs in the same process as the virtual devices). The
// subscriber immediately receives the current values of all evented
// variables, mirroring GENA's initial event.
func (h *DeviceHost) SubscribeLocal(udn, serviceType string, fn func(vars map[string]string)) (cancel func(), err error) {
	h.mu.RLock()
	d, ok := h.devices[udn]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("upnp: device %s not published", udn)
	}
	svc, ok := d.Service(serviceType)
	if !ok {
		return nil, fmt.Errorf("upnp: device %s has no service %s", udn, serviceType)
	}
	sub := &subscription{
		sid:     h.newSID(),
		local:   fn,
		expires: time.Now().Add(24 * time.Hour),
	}
	key := udn + "|" + serviceType
	h.mu.Lock()
	h.subs[key] = append(h.subs[key], sub)
	h.mu.Unlock()

	fn(eventedValues(svc))
	return func() { h.dropSub(key, sub.sid) }, nil
}

func eventedValues(svc *Service) map[string]string {
	vars := make(map[string]string)
	for _, v := range svc.Vars() {
		if v.Evented {
			vars[v.Name] = v.Get()
		}
	}
	return vars
}

func (h *DeviceHost) newSID() string {
	return fmt.Sprintf("uuid:sub-%d", h.sidCounter.Add(1))
}

func (h *DeviceHost) dropSub(key, sid string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.subs[key]
	for i, s := range list {
		if s.sid == sid {
			h.subs[key] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// notify delivers a property change to every subscriber of the service.
func (h *DeviceHost) notify(udn, serviceType string, vars map[string]string) {
	key := udn + "|" + serviceType
	h.mu.Lock()
	subs := make([]*subscription, 0, len(h.subs[key]))
	now := time.Now()
	kept := h.subs[key][:0]
	for _, s := range h.subs[key] {
		if now.After(s.expires) {
			continue // lapsed subscription
		}
		kept = append(kept, s)
		subs = append(subs, s)
	}
	h.subs[key] = kept
	h.mu.Unlock()

	for _, s := range subs {
		seq := atomic.AddUint64(&s.seq, 1) - 1
		if s.local != nil {
			s.local(vars)
			continue
		}
		s := s
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.postNotify(s, seq, vars)
		}()
	}
}

func (h *DeviceHost) postNotify(s *subscription, seq uint64, vars map[string]string) {
	select {
	case <-h.done:
		return
	default:
	}
	req, err := http.NewRequest("NOTIFY", s.callback, strings.NewReader(string(buildPropertySet(vars))))
	if err != nil {
		return
	}
	req.Header.Set("CONTENT-TYPE", `text/xml; charset="utf-8"`)
	req.Header.Set("NT", "upnp:event")
	req.Header.Set("NTS", "upnp:propchange")
	req.Header.Set("SID", s.sid)
	req.Header.Set("SEQ", strconv.FormatUint(seq, 10))
	resp, err := h.client.Do(req)
	if err != nil {
		return // subscriber unreachable; GENA drops silently
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func (h *DeviceHost) descURL(udn string) string {
	return h.baseURL + "/desc/" + udn + ".xml"
}

// ---- HTTP handlers ----

func (h *DeviceHost) handleDescription(w http.ResponseWriter, r *http.Request) {
	udn := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/desc/"), ".xml")
	h.mu.RLock()
	d, ok := h.devices[udn]
	h.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	data, err := MarshalDescription(d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	_, _ = w.Write(data)
}

func (h *DeviceHost) handleSCPD(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/scpd/"), ".xml")
	udn, svcID, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	h.mu.RLock()
	d, found := h.devices[udn]
	h.mu.RUnlock()
	if !found {
		http.NotFound(w, r)
		return
	}
	for _, svc := range d.Services {
		if svc.ID == svcID {
			data, err := MarshalSCPD(svc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
			_, _ = w.Write(data)
			return
		}
	}
	http.NotFound(w, r)
}

func (h *DeviceHost) handleControl(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "control requires POST", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/control/")
	udn, svcID, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	h.mu.RLock()
	d, found := h.devices[udn]
	h.mu.RUnlock()
	if !found {
		http.NotFound(w, r)
		return
	}
	var svc *Service
	for _, s := range d.Services {
		if s.ID == svcID {
			svc = s
			break
		}
	}
	if svc == nil {
		http.NotFound(w, r)
		return
	}
	actionName, args, err := parseSOAP(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	action, ok := svc.ActionByName(actionName)
	if ok && action.Handler == nil {
		ok = false
	}
	if !ok {
		http.Error(w, fmt.Sprintf("unknown action %q", actionName), http.StatusUnauthorized)
		return
	}
	out, err := action.Handler(args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	_, _ = w.Write(buildSOAP(actionName+"Response", svc.Type, out))
}

func (h *DeviceHost) handleEvent(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/event/")
	udn, svcID, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	h.mu.RLock()
	d, found := h.devices[udn]
	h.mu.RUnlock()
	if !found {
		http.NotFound(w, r)
		return
	}
	var svc *Service
	for _, s := range d.Services {
		if s.ID == svcID {
			svc = s
			break
		}
	}
	if svc == nil {
		http.NotFound(w, r)
		return
	}
	key := udn + "|" + svc.Type

	switch r.Method {
	case "SUBSCRIBE":
		callback := strings.Trim(r.Header.Get("CALLBACK"), "<>")
		if callback == "" {
			http.Error(w, "missing CALLBACK", http.StatusPreconditionFailed)
			return
		}
		sub := &subscription{
			sid:      h.newSID(),
			callback: callback,
			expires:  time.Now().Add(30 * time.Minute),
		}
		h.mu.Lock()
		h.subs[key] = append(h.subs[key], sub)
		h.mu.Unlock()
		w.Header().Set("SID", sub.sid)
		w.Header().Set("TIMEOUT", "Second-1800")
		w.WriteHeader(http.StatusOK)
		// Initial event with current evented state, per GENA.
		vars := eventedValues(svc)
		if len(vars) > 0 {
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				h.postNotify(sub, 0, vars)
			}()
		}
	case "UNSUBSCRIBE":
		sid := r.Header.Get("SID")
		h.dropSub(key, sid)
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "event endpoint requires SUBSCRIBE/UNSUBSCRIBE", http.StatusMethodNotAllowed)
	}
}

// ---- SSDP ----

func (h *DeviceHost) udpLoop() {
	buf := make([]byte, 4096)
	for {
		n, src, err := h.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		msg, err := parseSSDP(buf[:n])
		if err != nil || !msg.isMSearch() {
			continue
		}
		st := msg.header("ST")
		h.respondToSearch(st, src)
	}
}

// respondToSearch unicasts a response for every hosted device matching the
// search target.
func (h *DeviceHost) respondToSearch(st string, src *net.UDPAddr) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, d := range h.devices {
		if !matchesTarget(d, st) {
			continue
		}
		resp := buildSearchResponse(st, d.usn(), h.descURL(d.UDN), serverHeader)
		_, _ = h.udp.WriteToUDP(resp, src)
	}
}

func matchesTarget(d *Device, st string) bool {
	switch st {
	case TargetAll, TargetRootDevice, "":
		return true
	case d.DeviceType, d.UDN:
		return true
	}
	// Service-type search.
	for _, s := range d.Services {
		if s.Type == st {
			return true
		}
	}
	return false
}
