package upnp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteService describes one service of a discovered device.
type RemoteService struct {
	ServiceType string
	ServiceID   string
	ControlURL  string
	EventSubURL string
	SCPDURL     string
}

// RemoteDevice is a discovered device: the parsed description document plus
// the base URL it was fetched from.
type RemoteDevice struct {
	UDN          string
	DeviceType   string
	FriendlyName string
	Location     string // room hint
	BaseURL      string
	Services     []RemoteService
}

// Service returns the remote service with the given type.
func (rd *RemoteDevice) Service(serviceType string) (RemoteService, bool) {
	for _, s := range rd.Services {
		if s.ServiceType == serviceType {
			return s, true
		}
	}
	return RemoteService{}, false
}

// ErrNotFound reports that discovery did not find a matching device in time.
var ErrNotFound = errors.New("upnp: device not found")

// EventHandler receives state-variable change notifications.
type EventHandler func(vars map[string]string)

type cpSubscription struct {
	sid     string
	handler EventHandler
}

// ControlPoint discovers devices over SSDP, invokes their actions and
// subscribes to their events — the home server's window onto the appliance
// network.
type ControlPoint struct {
	network *Network
	udp     *net.UDPConn
	client  *http.Client
	httpSrv *http.Server
	ln      net.Listener
	leave   func()

	mu      sync.RWMutex
	devices map[string]*RemoteDevice // by UDN
	changed chan struct{}            // closed & replaced on each table change
	subs    map[string]*cpSubscription

	sidSeq atomic.Uint64
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewControlPoint starts a control point on loopback and joins the network.
func NewControlPoint(network *Network) (*ControlPoint, error) {
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("upnp: control point udp listen: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = udpConn.Close()
		return nil, fmt.Errorf("upnp: control point http listen: %w", err)
	}
	cp := &ControlPoint{
		network: network,
		udp:     udpConn,
		client:  &http.Client{Timeout: 5 * time.Second},
		ln:      ln,
		devices: make(map[string]*RemoteDevice),
		changed: make(chan struct{}),
		subs:    make(map[string]*cpSubscription),
		done:    make(chan struct{}),
	}
	cp.leave = network.Join(udpConn.LocalAddr().(*net.UDPAddr))

	mux := http.NewServeMux()
	mux.HandleFunc("/callback/", cp.handleNotify)
	cp.httpSrv = &http.Server{Handler: mux}

	cp.wg.Add(2)
	go func() {
		defer cp.wg.Done()
		_ = cp.httpSrv.Serve(ln)
	}()
	go func() {
		defer cp.wg.Done()
		cp.udpLoop()
	}()
	return cp, nil
}

// Close stops the control point.
func (cp *ControlPoint) Close() error {
	close(cp.done)
	cp.leave()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = cp.httpSrv.Shutdown(ctx)
	err := cp.udp.Close()
	cp.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// Devices returns the currently known devices.
func (cp *ControlPoint) Devices() []*RemoteDevice {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]*RemoteDevice, 0, len(cp.devices))
	for _, d := range cp.devices {
		out = append(out, d)
	}
	return out
}

// DeviceByUDN returns a known device.
func (cp *ControlPoint) DeviceByUDN(udn string) (*RemoteDevice, bool) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	d, ok := cp.devices[udn]
	return d, ok
}

// Search multicasts an M-SEARCH for the target and waits the full window,
// returning every device known afterwards. This is the paper's device
// retrieval primitive.
func (cp *ControlPoint) Search(target string, window time.Duration) []*RemoteDevice {
	_ = cp.network.multicast(cp.udp, buildMSearch(target, 1))
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for {
		cp.mu.RLock()
		ch := cp.changed
		cp.mu.RUnlock()
		select {
		case <-deadline.C:
			return cp.Devices()
		case <-ch:
			// Table changed; keep collecting until the window closes.
		case <-cp.done:
			return cp.Devices()
		}
	}
}

// FindByName retrieves a device by friendly name (experiment E1a). The cache
// is consulted first; on a miss an M-SEARCH is issued and the call waits up
// to window for the device to appear.
func (cp *ControlPoint) FindByName(name string, window time.Duration) (*RemoteDevice, error) {
	match := func() *RemoteDevice {
		cp.mu.RLock()
		defer cp.mu.RUnlock()
		for _, d := range cp.devices {
			if d.FriendlyName == name {
				return d
			}
		}
		return nil
	}
	return cp.waitFor(match, TargetAll, window, fmt.Sprintf("name %q", name))
}

// FindByType retrieves the first device of the given device type.
func (cp *ControlPoint) FindByType(deviceType string, window time.Duration) (*RemoteDevice, error) {
	match := func() *RemoteDevice {
		cp.mu.RLock()
		defer cp.mu.RUnlock()
		for _, d := range cp.devices {
			if d.DeviceType == deviceType {
				return d
			}
		}
		return nil
	}
	return cp.waitFor(match, deviceType, window, fmt.Sprintf("type %q", deviceType))
}

// FindByService retrieves the first device offering the service type
// (experiment E1b).
func (cp *ControlPoint) FindByService(serviceType string, window time.Duration) (*RemoteDevice, error) {
	match := func() *RemoteDevice {
		cp.mu.RLock()
		defer cp.mu.RUnlock()
		for _, d := range cp.devices {
			for _, s := range d.Services {
				if s.ServiceType == serviceType {
					return d
				}
			}
		}
		return nil
	}
	return cp.waitFor(match, serviceType, window, fmt.Sprintf("service %q", serviceType))
}

func (cp *ControlPoint) waitFor(match func() *RemoteDevice, target string, window time.Duration, what string) (*RemoteDevice, error) {
	if d := match(); d != nil {
		return d, nil
	}
	_ = cp.network.multicast(cp.udp, buildMSearch(target, 1))
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for {
		cp.mu.RLock()
		ch := cp.changed
		cp.mu.RUnlock()
		if d := match(); d != nil {
			return d, nil
		}
		select {
		case <-deadline.C:
			if d := match(); d != nil {
				return d, nil
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, what)
		case <-ch:
		case <-cp.done:
			return nil, fmt.Errorf("%w: control point closed", ErrNotFound)
		}
	}
}

// Forget drops a device from the cache (e.g. for a forced re-search).
func (cp *ControlPoint) Forget(udn string) {
	cp.mu.Lock()
	delete(cp.devices, udn)
	cp.bumpLocked()
	cp.mu.Unlock()
}

// Invoke calls a control action on a remote device service.
func (cp *ControlPoint) Invoke(rd *RemoteDevice, serviceType, action string, args map[string]string) (map[string]string, error) {
	svc, ok := rd.Service(serviceType)
	if !ok {
		return nil, fmt.Errorf("upnp: device %s has no service %s", rd.FriendlyName, serviceType)
	}
	body := buildSOAP(action, serviceType, args)
	req, err := http.NewRequest(http.MethodPost, rd.BaseURL+svc.ControlURL, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPACTION", fmt.Sprintf("%q", serviceType+"#"+action))
	resp, err := cp.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("upnp: invoke %s on %s: %w", action, rd.FriendlyName, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("upnp: invoke %s on %s: HTTP %d: %s",
			action, rd.FriendlyName, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	_, out, err := parseSOAP(resp.Body)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Subscribe registers for events of a remote service. The handler runs on
// the control point's HTTP callback server goroutine.
func (cp *ControlPoint) Subscribe(rd *RemoteDevice, serviceType string, handler EventHandler) (cancel func() error, err error) {
	svc, ok := rd.Service(serviceType)
	if !ok {
		return nil, fmt.Errorf("upnp: device %s has no service %s", rd.FriendlyName, serviceType)
	}
	path := fmt.Sprintf("/callback/%d", cp.sidSeq.Add(1))
	callbackURL := "http://" + cp.ln.Addr().String() + path

	// Register the handler before subscribing: the host's initial event may
	// hit the callback endpoint before the SUBSCRIBE response is processed.
	sub := &cpSubscription{handler: handler}
	cp.mu.Lock()
	cp.subs[path] = sub
	cp.mu.Unlock()

	req, err := http.NewRequest("SUBSCRIBE", rd.BaseURL+svc.EventSubURL, nil)
	if err != nil {
		cp.dropSub(path)
		return nil, err
	}
	req.Header.Set("CALLBACK", "<"+callbackURL+">")
	req.Header.Set("NT", "upnp:event")
	req.Header.Set("TIMEOUT", "Second-1800")
	resp, err := cp.client.Do(req)
	if err != nil {
		cp.dropSub(path)
		return nil, fmt.Errorf("upnp: subscribe to %s: %w", rd.FriendlyName, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cp.dropSub(path)
		return nil, fmt.Errorf("upnp: subscribe to %s: HTTP %d", rd.FriendlyName, resp.StatusCode)
	}
	sid := resp.Header.Get("SID")
	cp.mu.Lock()
	sub.sid = sid
	cp.mu.Unlock()

	return func() error {
		cp.dropSub(path)
		unreq, err := http.NewRequest("UNSUBSCRIBE", rd.BaseURL+svc.EventSubURL, nil)
		if err != nil {
			return err
		}
		unreq.Header.Set("SID", sid)
		unresp, err := cp.client.Do(unreq)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, unresp.Body)
		return unresp.Body.Close()
	}, nil
}

func (cp *ControlPoint) dropSub(path string) {
	cp.mu.Lock()
	delete(cp.subs, path)
	cp.mu.Unlock()
}

// handleNotify dispatches GENA NOTIFY callbacks to the registered handler.
func (cp *ControlPoint) handleNotify(w http.ResponseWriter, r *http.Request) {
	if r.Method != "NOTIFY" {
		http.Error(w, "expected NOTIFY", http.StatusMethodNotAllowed)
		return
	}
	cp.mu.RLock()
	sub := cp.subs[r.URL.Path]
	cp.mu.RUnlock()
	if sub == nil {
		http.NotFound(w, r)
		return
	}
	vars, err := parsePropertySet(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
	sub.handler(vars)
}

// ---- SSDP handling ----

func (cp *ControlPoint) udpLoop() {
	buf := make([]byte, 4096)
	for {
		n, _, err := cp.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		msg, err := parseSSDP(buf[:n])
		if err != nil {
			continue
		}
		switch {
		case msg.isResponse():
			cp.handleAliveOrResponse(msg.header("USN"), msg.header("LOCATION"))
		case msg.isNotify():
			switch msg.header("NTS") {
			case ntsAlive:
				cp.handleAliveOrResponse(msg.header("USN"), msg.header("LOCATION"))
			case ntsByebye:
				cp.handleByebye(msg.header("USN"))
			}
		}
	}
}

func (cp *ControlPoint) handleAliveOrResponse(usn, location string) {
	udn, _, _ := strings.Cut(usn, "::")
	if udn == "" || location == "" {
		return
	}
	cp.mu.RLock()
	_, known := cp.devices[udn]
	cp.mu.RUnlock()
	if known {
		return
	}
	rd, err := cp.fetchDescription(location)
	if err != nil {
		return
	}
	cp.mu.Lock()
	cp.devices[rd.UDN] = rd
	cp.bumpLocked()
	cp.mu.Unlock()
}

func (cp *ControlPoint) handleByebye(usn string) {
	udn, _, _ := strings.Cut(usn, "::")
	cp.mu.Lock()
	if _, ok := cp.devices[udn]; ok {
		delete(cp.devices, udn)
		cp.bumpLocked()
	}
	cp.mu.Unlock()
}

// bumpLocked signals table-change waiters. Callers hold cp.mu.
func (cp *ControlPoint) bumpLocked() {
	close(cp.changed)
	cp.changed = make(chan struct{})
}

func (cp *ControlPoint) fetchDescription(location string) (*RemoteDevice, error) {
	resp, err := cp.client.Get(location)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("upnp: fetch description: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	rd, err := UnmarshalDescription(data)
	if err != nil {
		return nil, err
	}
	base := location
	if i := strings.Index(location, "/desc/"); i > 0 {
		base = location[:i]
	}
	rd.BaseURL = base
	return rd, nil
}
