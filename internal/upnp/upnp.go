// Package upnp is a from-scratch micro-UPnP stack: SSDP discovery over UDP,
// device description documents over HTTP, action control and state-variable
// eventing. It stands in for the CyberLink UPnP library the paper's
// prototype used as its communication interface module.
//
// One deliberate substitution (documented in DESIGN.md): instead of IP
// multicast — typically unavailable in sandboxes and containers — a Network
// value models the LAN segment. Every device host and control point
// registers its UDP endpoint with the Network, and "multicast" sends the
// datagram to every registered member over real loopback UDP. All message
// parsing, description fetching, control and eventing use genuine UDP/HTTP
// I/O, so discovery latency (experiment E1) is measured over a real network
// stack.
package upnp

import (
	"fmt"
	"net"
	"sync"
)

// Network models one LAN segment: the set of UDP endpoints that receive
// SSDP "multicast" traffic.
type Network struct {
	mu      sync.RWMutex
	members map[string]*net.UDPAddr
}

// NewNetwork returns an empty network segment.
func NewNetwork() *Network {
	return &Network{members: make(map[string]*net.UDPAddr)}
}

// Join registers a member endpoint and returns an unregister function.
func (n *Network) Join(addr *net.UDPAddr) (leave func()) {
	key := addr.String()
	n.mu.Lock()
	n.members[key] = addr
	n.mu.Unlock()
	return func() {
		n.mu.Lock()
		delete(n.members, key)
		n.mu.Unlock()
	}
}

// Members returns a snapshot of all registered endpoints.
func (n *Network) Members() []*net.UDPAddr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*net.UDPAddr, 0, len(n.members))
	for _, a := range n.members {
		out = append(out, a)
	}
	return out
}

// multicast sends the payload to every member except the sender itself.
func (n *Network) multicast(conn *net.UDPConn, payload []byte) error {
	self := conn.LocalAddr().String()
	var firstErr error
	for _, addr := range n.Members() {
		if addr.String() == self {
			continue
		}
		if _, err := conn.WriteToUDP(payload, addr); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("upnp: multicast to %s: %w", addr, err)
		}
	}
	return firstErr
}
