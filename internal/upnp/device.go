package upnp

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// VarType is the data type of a state variable.
type VarType string

// Supported state-variable types.
const (
	VarBool   VarType = "boolean"
	VarNumber VarType = "number"
	VarString VarType = "string"
)

// StateVar is a service state variable. Evented variables push change
// notifications to subscribers.
type StateVar struct {
	Name    string
	Type    VarType
	Evented bool

	mu    sync.RWMutex
	value string
}

// NewStateVar returns a state variable with an initial value.
func NewStateVar(name string, typ VarType, initial string, evented bool) *StateVar {
	return &StateVar{Name: name, Type: typ, Evented: evented, value: initial}
}

// Get returns the current value.
func (v *StateVar) Get() string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.value
}

// Set stores a new value and reports whether it changed. Writing directly
// bypasses eventing; hosted devices should change state through
// DeviceHost.SetVar so subscribers are notified.
func (v *StateVar) Set(value string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.value == value {
		return false
	}
	v.value = value
	return true
}

// Bool interprets the value as boolean ("1"/"true" are true).
func (v *StateVar) Bool() bool {
	val := v.Get()
	return val == "1" || val == "true"
}

// Number interprets the value as float64, 0 when unparseable.
func (v *StateVar) Number() float64 {
	f, err := strconv.ParseFloat(v.Get(), 64)
	if err != nil {
		return 0
	}
	return f
}

// ActionHandler executes a control action. It receives the input arguments
// and returns output arguments.
type ActionHandler func(args map[string]string) (map[string]string, error)

// Action is an invocable service action.
type Action struct {
	Name    string
	ArgsIn  []string
	ArgsOut []string
	Handler ActionHandler
}

// Service groups state variables and actions under a UPnP service type URN.
type Service struct {
	ID   string // e.g. "urn:upnp-org:serviceId:SwitchPower"
	Type string // e.g. "urn:schemas-upnp-org:service:SwitchPower:1"

	mu      sync.RWMutex
	vars    map[string]*StateVar
	actions map[string]*Action
}

// NewService returns an empty service.
func NewService(id, typ string) *Service {
	return &Service{
		ID:      id,
		Type:    typ,
		vars:    make(map[string]*StateVar),
		actions: make(map[string]*Action),
	}
}

// AddVar registers a state variable.
func (s *Service) AddVar(v *StateVar) *Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[v.Name] = v
	return s
}

// AddAction registers an action.
func (s *Service) AddAction(a *Action) *Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.actions[a.Name] = a
	return s
}

// Var returns a state variable by name.
func (s *Service) Var(name string) (*StateVar, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vars[name]
	return v, ok
}

// Vars returns all state variables sorted by name.
func (s *Service) Vars() []*StateVar {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*StateVar, 0, len(s.vars))
	for _, v := range s.vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ActionByName returns an action.
func (s *Service) ActionByName(name string) (*Action, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.actions[name]
	return a, ok
}

// Actions returns all actions sorted by name.
func (s *Service) Actions() []*Action {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Action, 0, len(s.actions))
	for _, a := range s.actions {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Device is a hostable UPnP device.
type Device struct {
	UDN          string // "uuid:..."
	DeviceType   string // "urn:schemas-upnp-org:device:AirConditioner:1"
	FriendlyName string // "air conditioner"
	Location     string // room hint extension ("living room")
	Manufacturer string
	Services     []*Service
}

// Service returns the device service with the given type.
func (d *Device) Service(serviceType string) (*Service, bool) {
	for _, s := range d.Services {
		if s.Type == serviceType {
			return s, true
		}
	}
	return nil, false
}

// usn builds the unique service name advertised for the device.
func (d *Device) usn() string {
	return d.UDN + "::" + d.DeviceType
}

// ---- description documents ----

// descRoot is the XML device description served over HTTP.
type descRoot struct {
	XMLName     xml.Name    `xml:"root"`
	XMLNS       string      `xml:"xmlns,attr"`
	SpecVersion specVersion `xml:"specVersion"`
	Device      descDevice  `xml:"device"`
}

type specVersion struct {
	Major int `xml:"major"`
	Minor int `xml:"minor"`
}

type descDevice struct {
	DeviceType   string        `xml:"deviceType"`
	FriendlyName string        `xml:"friendlyName"`
	Manufacturer string        `xml:"manufacturer"`
	UDN          string        `xml:"UDN"`
	RoomHint     string        `xml:"roomHint,omitempty"`
	Services     []descService `xml:"serviceList>service"`
}

type descService struct {
	ServiceType string `xml:"serviceType"`
	ServiceID   string `xml:"serviceId"`
	SCPDURL     string `xml:"SCPDURL"`
	ControlURL  string `xml:"controlURL"`
	EventSubURL string `xml:"eventSubURL"`
}

// MarshalDescription renders the device description document.
func MarshalDescription(d *Device) ([]byte, error) {
	doc := descRoot{
		XMLNS:       "urn:schemas-upnp-org:device-1-0",
		SpecVersion: specVersion{Major: 1, Minor: 0},
		Device: descDevice{
			DeviceType:   d.DeviceType,
			FriendlyName: d.FriendlyName,
			Manufacturer: d.Manufacturer,
			UDN:          d.UDN,
			RoomHint:     d.Location,
		},
	}
	for _, s := range d.Services {
		doc.Device.Services = append(doc.Device.Services, descService{
			ServiceType: s.Type,
			ServiceID:   s.ID,
			SCPDURL:     fmt.Sprintf("/scpd/%s/%s.xml", d.UDN, s.ID),
			ControlURL:  fmt.Sprintf("/control/%s/%s", d.UDN, s.ID),
			EventSubURL: fmt.Sprintf("/event/%s/%s", d.UDN, s.ID),
		})
	}
	data, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("upnp: marshal description: %w", err)
	}
	return append([]byte(xml.Header), data...), nil
}

// UnmarshalDescription parses a device description document.
func UnmarshalDescription(data []byte) (*RemoteDevice, error) {
	var doc descRoot
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("upnp: parse description: %w", err)
	}
	rd := &RemoteDevice{
		UDN:          doc.Device.UDN,
		DeviceType:   doc.Device.DeviceType,
		FriendlyName: doc.Device.FriendlyName,
		Location:     doc.Device.RoomHint,
	}
	for _, s := range doc.Device.Services {
		rd.Services = append(rd.Services, RemoteService{
			ServiceType: s.ServiceType,
			ServiceID:   s.ServiceID,
			ControlURL:  s.ControlURL,
			EventSubURL: s.EventSubURL,
			SCPDURL:     s.SCPDURL,
		})
	}
	return rd, nil
}

// ---- SCPD (service description) ----

type scpdRoot struct {
	XMLName xml.Name     `xml:"scpd"`
	XMLNS   string       `xml:"xmlns,attr"`
	Actions []scpdAction `xml:"actionList>action"`
	Vars    []scpdVar    `xml:"serviceStateTable>stateVariable"`
}

type scpdAction struct {
	Name string   `xml:"name"`
	Args []string `xml:"argumentList>argument>name"`
}

type scpdVar struct {
	Name     string `xml:"name"`
	DataType string `xml:"dataType"`
	Evented  string `xml:"sendEvents,attr"`
}

// MarshalSCPD renders the service control protocol description.
func MarshalSCPD(s *Service) ([]byte, error) {
	doc := scpdRoot{XMLNS: "urn:schemas-upnp-org:service-1-0"}
	for _, a := range s.Actions() {
		doc.Actions = append(doc.Actions, scpdAction{Name: a.Name, Args: a.ArgsIn})
	}
	for _, v := range s.Vars() {
		ev := "no"
		if v.Evented {
			ev = "yes"
		}
		doc.Vars = append(doc.Vars, scpdVar{Name: v.Name, DataType: string(v.Type), Evented: ev})
	}
	data, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("upnp: marshal scpd: %w", err)
	}
	return append([]byte(xml.Header), data...), nil
}
