package upnp

import (
	"fmt"
	"strings"
)

// SSDP message kinds.
const (
	methodMSearch  = "M-SEARCH"
	methodNotify   = "NOTIFY"
	statusResponse = "HTTP/1.1 200 OK"

	// NTS values.
	ntsAlive  = "ssdp:alive"
	ntsByebye = "ssdp:byebye"

	// Well-known search targets.
	TargetAll        = "ssdp:all"
	TargetRootDevice = "upnp:rootdevice"
)

// ssdpMessage is a parsed SSDP datagram: a start line plus headers.
type ssdpMessage struct {
	StartLine string
	Headers   map[string]string
}

func (m *ssdpMessage) header(name string) string {
	return m.Headers[strings.ToUpper(name)]
}

func (m *ssdpMessage) isMSearch() bool {
	return strings.HasPrefix(m.StartLine, methodMSearch)
}

func (m *ssdpMessage) isNotify() bool {
	return strings.HasPrefix(m.StartLine, methodNotify)
}

func (m *ssdpMessage) isResponse() bool {
	return strings.HasPrefix(m.StartLine, "HTTP/1.1 200")
}

// parseSSDP parses an SSDP datagram. Header names are uppercased.
func parseSSDP(data []byte) (*ssdpMessage, error) {
	text := string(data)
	lines := strings.Split(text, "\r\n")
	if len(lines) < 1 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("upnp: empty SSDP datagram")
	}
	msg := &ssdpMessage{
		StartLine: strings.TrimSpace(lines[0]),
		Headers:   make(map[string]string, len(lines)-1),
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue // tolerate malformed header lines
		}
		name := strings.ToUpper(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		msg.Headers[name] = value
	}
	return msg, nil
}

// buildSSDP serializes a start line and ordered header pairs.
func buildSSDP(startLine string, headers [][2]string) []byte {
	var sb strings.Builder
	sb.WriteString(startLine)
	sb.WriteString("\r\n")
	for _, h := range headers {
		sb.WriteString(h[0])
		sb.WriteString(": ")
		sb.WriteString(h[1])
		sb.WriteString("\r\n")
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// buildMSearch composes an M-SEARCH discovery request for the target.
func buildMSearch(target string, mxSeconds int) []byte {
	return buildSSDP("M-SEARCH * HTTP/1.1", [][2]string{
		{"HOST", "239.255.255.250:1900"},
		{"MAN", `"ssdp:discover"`},
		{"MX", fmt.Sprintf("%d", mxSeconds)},
		{"ST", target},
	})
}

// buildSearchResponse composes a unicast response to an M-SEARCH.
func buildSearchResponse(st, usn, location, server string) []byte {
	return buildSSDP(statusResponse, [][2]string{
		{"CACHE-CONTROL", "max-age=1800"},
		{"ST", st},
		{"USN", usn},
		{"LOCATION", location},
		{"SERVER", server},
		{"EXT", ""},
	})
}

// buildAlive composes a NOTIFY ssdp:alive announcement.
func buildAlive(nt, usn, location, server string) []byte {
	return buildSSDP("NOTIFY * HTTP/1.1", [][2]string{
		{"HOST", "239.255.255.250:1900"},
		{"CACHE-CONTROL", "max-age=1800"},
		{"NT", nt},
		{"NTS", ntsAlive},
		{"USN", usn},
		{"LOCATION", location},
		{"SERVER", server},
	})
}

// buildByebye composes a NOTIFY ssdp:byebye announcement.
func buildByebye(nt, usn string) []byte {
	return buildSSDP("NOTIFY * HTTP/1.1", [][2]string{
		{"HOST", "239.255.255.250:1900"},
		{"NT", nt},
		{"NTS", ntsByebye},
		{"USN", usn},
	})
}
