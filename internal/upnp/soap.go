package upnp

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// buildSOAP composes a control request (or response) envelope for an action
// invocation in the given service namespace.
func buildSOAP(action, serviceType string, args map[string]string) []byte {
	var sb strings.Builder
	sb.WriteString(xml.Header)
	sb.WriteString(`<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/" ` +
		`s:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"><s:Body>`)
	fmt.Fprintf(&sb, `<u:%s xmlns:u="%s">`, action, serviceType)
	names := make([]string, 0, len(args))
	for name := range args {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var buf bytes.Buffer
		_ = xml.EscapeText(&buf, []byte(args[name]))
		fmt.Fprintf(&sb, "<%s>%s</%s>", name, buf.String(), name)
	}
	fmt.Fprintf(&sb, "</u:%s></s:Body></s:Envelope>", action)
	return []byte(sb.String())
}

// parseSOAP extracts the action name (local name of the first element inside
// Body, with any "Response" suffix retained) and its argument elements.
func parseSOAP(r io.Reader) (action string, args map[string]string, err error) {
	dec := xml.NewDecoder(r)
	args = make(map[string]string)
	inBody := false
	depth := 0
	var currentArg string
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, fmt.Errorf("upnp: parse soap: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch {
			case t.Name.Local == "Body":
				inBody = true
			case inBody && depth == 0:
				action = t.Name.Local
				depth = 1
			case inBody && depth == 1:
				currentArg = t.Name.Local
				args[currentArg] = ""
				depth = 2
			case inBody && depth >= 2:
				depth++
			}
		case xml.CharData:
			if depth == 2 && currentArg != "" {
				args[currentArg] += string(t)
			}
		case xml.EndElement:
			switch {
			case t.Name.Local == "Body":
				inBody = false
			case inBody && depth > 0:
				depth--
				if depth == 1 {
					currentArg = ""
				}
			}
		}
	}
	if action == "" {
		return "", nil, fmt.Errorf("upnp: soap envelope has no action element")
	}
	return action, args, nil
}

// buildPropertySet composes a GENA event NOTIFY body for changed variables.
func buildPropertySet(vars map[string]string) []byte {
	var sb strings.Builder
	sb.WriteString(xml.Header)
	sb.WriteString(`<e:propertyset xmlns:e="urn:schemas-upnp-org:event-1-0">`)
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var buf bytes.Buffer
		_ = xml.EscapeText(&buf, []byte(vars[name]))
		fmt.Fprintf(&sb, "<e:property><%s>%s</%s></e:property>", name, buf.String(), name)
	}
	sb.WriteString(`</e:propertyset>`)
	return []byte(sb.String())
}

// parsePropertySet extracts variable names and values from a GENA NOTIFY
// body.
func parsePropertySet(r io.Reader) (map[string]string, error) {
	dec := xml.NewDecoder(r)
	out := make(map[string]string)
	depth := 0 // 1 = propertyset, 2 = property, 3 = variable
	var current string
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("upnp: parse propertyset: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 3 {
				current = t.Name.Local
				out[current] = ""
			}
		case xml.CharData:
			if depth == 3 && current != "" {
				out[current] += string(t)
			}
		case xml.EndElement:
			if depth == 3 {
				current = ""
			}
			depth--
		}
	}
	return out, nil
}
