package upnp

import (
	"bytes"
	"strings"
	"testing"
)

func TestSSDPRoundTrip(t *testing.T) {
	raw := buildMSearch("ssdp:all", 1)
	msg, err := parseSSDP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.isMSearch() {
		t.Error("not recognized as M-SEARCH")
	}
	if msg.header("ST") != "ssdp:all" {
		t.Errorf("ST = %q", msg.header("ST"))
	}
	if msg.header("MAN") != `"ssdp:discover"` {
		t.Errorf("MAN = %q", msg.header("MAN"))
	}
}

func TestSearchResponseRoundTrip(t *testing.T) {
	raw := buildSearchResponse("ssdp:all", "uuid:x::urn:type", "http://127.0.0.1:1/desc/uuid:x.xml", "srv/1.0")
	msg, err := parseSSDP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.isResponse() {
		t.Error("not recognized as response")
	}
	if msg.header("USN") != "uuid:x::urn:type" {
		t.Errorf("USN = %q", msg.header("USN"))
	}
	if !strings.HasPrefix(msg.header("LOCATION"), "http://") {
		t.Errorf("LOCATION = %q", msg.header("LOCATION"))
	}
}

func TestNotifyRoundTrip(t *testing.T) {
	alive, err := parseSSDP(buildAlive("urn:dev", "uuid:y::urn:dev", "http://h/desc.xml", "s"))
	if err != nil {
		t.Fatal(err)
	}
	if !alive.isNotify() || alive.header("NTS") != "ssdp:alive" {
		t.Errorf("alive = %+v", alive)
	}
	bye, err := parseSSDP(buildByebye("urn:dev", "uuid:y::urn:dev"))
	if err != nil {
		t.Fatal(err)
	}
	if !bye.isNotify() || bye.header("NTS") != "ssdp:byebye" {
		t.Errorf("byebye = %+v", bye)
	}
}

func TestParseSSDPHeaderCaseInsensitive(t *testing.T) {
	msg, err := parseSSDP([]byte("NOTIFY * HTTP/1.1\r\nnts: ssdp:alive\r\nLoCaTiOn: http://x\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if msg.header("NTS") != "ssdp:alive" || msg.header("location") != "http://x" {
		t.Errorf("headers = %+v", msg.Headers)
	}
}

func TestParseSSDPMalformed(t *testing.T) {
	if _, err := parseSSDP([]byte("")); err == nil {
		t.Error("empty datagram should fail")
	}
	// Garbage header lines are tolerated.
	msg, err := parseSSDP([]byte("M-SEARCH * HTTP/1.1\r\nno-colon-here\r\nST: x\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if msg.header("ST") != "x" {
		t.Error("valid headers should survive malformed neighbours")
	}
}

func TestSOAPRoundTrip(t *testing.T) {
	body := buildSOAP("SetTarget", "urn:schemas-upnp-org:service:SwitchPower:1",
		map[string]string{"newTargetValue": "1", "mode": "cool & dry"})
	action, args, err := parseSOAP(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if action != "SetTarget" {
		t.Errorf("action = %q", action)
	}
	if args["newTargetValue"] != "1" {
		t.Errorf("args = %v", args)
	}
	if args["mode"] != "cool & dry" {
		t.Errorf("xml escaping broken: %v", args)
	}
}

func TestSOAPNoArgs(t *testing.T) {
	body := buildSOAP("GetStatus", "urn:svc", nil)
	action, args, err := parseSOAP(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if action != "GetStatus" || len(args) != 0 {
		t.Errorf("action=%q args=%v", action, args)
	}
}

func TestSOAPInvalid(t *testing.T) {
	if _, _, err := parseSOAP(strings.NewReader("<s:Envelope></s:Envelope>")); err == nil {
		t.Error("envelope without body action should fail")
	}
	if _, _, err := parseSOAP(strings.NewReader("not xml at all <<<")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestPropertySetRoundTrip(t *testing.T) {
	body := buildPropertySet(map[string]string{"temperature": "28.5", "power": "1"})
	vars, err := parsePropertySet(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if vars["temperature"] != "28.5" || vars["power"] != "1" {
		t.Errorf("vars = %v", vars)
	}
}

func TestDescriptionRoundTrip(t *testing.T) {
	dev := &Device{
		UDN:          "uuid:ac-1",
		DeviceType:   "urn:schemas-upnp-org:device:AirConditioner:1",
		FriendlyName: "air conditioner",
		Location:     "living room",
		Manufacturer: "repro",
		Services: []*Service{
			NewService("urn:upnp-org:serviceId:Thermo", "urn:schemas-upnp-org:service:Thermostat:1").
				AddVar(NewStateVar("temperature", VarNumber, "25", true)).
				AddAction(&Action{Name: "SetTemperature", ArgsIn: []string{"value"}}),
		},
	}
	data, err := MarshalDescription(dev)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := UnmarshalDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.UDN != dev.UDN || rd.FriendlyName != dev.FriendlyName || rd.Location != "living room" {
		t.Errorf("round trip = %+v", rd)
	}
	if len(rd.Services) != 1 {
		t.Fatalf("services = %v", rd.Services)
	}
	svc := rd.Services[0]
	if svc.ServiceType != "urn:schemas-upnp-org:service:Thermostat:1" {
		t.Errorf("service type = %q", svc.ServiceType)
	}
	if !strings.Contains(svc.ControlURL, "uuid:ac-1") {
		t.Errorf("control url = %q", svc.ControlURL)
	}
}

func TestSCPDMarshal(t *testing.T) {
	svc := NewService("id", "urn:svc").
		AddVar(NewStateVar("power", VarBool, "0", true)).
		AddAction(&Action{Name: "SetPower", ArgsIn: []string{"value"}})
	data, err := MarshalSCPD(svc)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"SetPower", "power", "boolean", `sendEvents="yes"`} {
		if !strings.Contains(text, want) {
			t.Errorf("scpd missing %q:\n%s", want, text)
		}
	}
}

func TestStateVar(t *testing.T) {
	v := NewStateVar("temperature", VarNumber, "25", true)
	if v.Number() != 25 {
		t.Errorf("Number = %v", v.Number())
	}
	if changed := v.Set("25"); changed {
		t.Error("same value should not report change")
	}
	if changed := v.Set("26"); !changed {
		t.Error("new value should report change")
	}
	b := NewStateVar("power", VarBool, "0", true)
	if b.Bool() {
		t.Error("0 should be false")
	}
	b.Set("1")
	if !b.Bool() {
		t.Error("1 should be true")
	}
	b.Set("true")
	if !b.Bool() {
		t.Error("true should be true")
	}
	bad := NewStateVar("x", VarNumber, "zzz", false)
	if bad.Number() != 0 {
		t.Error("unparseable number should be 0")
	}
}

func TestDeviceServiceLookup(t *testing.T) {
	svc := NewService("id", "urn:svc:1")
	dev := &Device{UDN: "uuid:d", Services: []*Service{svc}}
	if _, ok := dev.Service("urn:svc:1"); !ok {
		t.Error("service lookup failed")
	}
	if _, ok := dev.Service("urn:other"); ok {
		t.Error("bogus service lookup succeeded")
	}
}

func TestMatchesTarget(t *testing.T) {
	dev := &Device{
		UDN:        "uuid:d1",
		DeviceType: "urn:dev:Light:1",
		Services:   []*Service{NewService("sid", "urn:svc:Dimming:1")},
	}
	for _, st := range []string{TargetAll, TargetRootDevice, "uuid:d1", "urn:dev:Light:1", "urn:svc:Dimming:1", ""} {
		if !matchesTarget(dev, st) {
			t.Errorf("should match %q", st)
		}
	}
	for _, st := range []string{"uuid:other", "urn:dev:TV:1", "urn:svc:Other:1"} {
		if matchesTarget(dev, st) {
			t.Errorf("should not match %q", st)
		}
	}
}
