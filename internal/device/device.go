// Package device provides the virtual information appliances and sensors of
// the simulated home: TVs, stereos, video recorders, air conditioners,
// lights, alarms, door locks, thermometers, hygrometers, light sensors, RFID
// presence sensors and an EPG tuner. Each is a upnp.Device built from a
// small set of reusable UPnP services, so the home server controls and
// observes them exactly as the paper's prototype controlled its 50 virtual
// UPnP devices.
package device

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/upnp"
)

// Service type URNs shared by the appliance templates.
const (
	SvcSwitchPower = "urn:schemas-upnp-org:service:SwitchPower:1"
	SvcDimming     = "urn:schemas-upnp-org:service:Dimming:1"
	SvcPlayback    = "urn:cadel-home:service:Playback:1"
	SvcChannel     = "urn:cadel-home:service:Channel:1"
	SvcThermostat  = "urn:cadel-home:service:Thermostat:1"
	SvcRecording   = "urn:cadel-home:service:Recording:1"
	SvcLock        = "urn:cadel-home:service:Lock:1"
	SvcTempSensor  = "urn:cadel-home:service:TemperatureSensor:1"
	SvcHumidSensor = "urn:cadel-home:service:HumiditySensor:1"
	SvcLightSensor = "urn:cadel-home:service:LightSensor:1"
	SvcPresence    = "urn:cadel-home:service:PresenceSensor:1"
	SvcEPG         = "urn:cadel-home:service:EPG:1"
)

// Device type URNs.
const (
	TypeTV             = "urn:cadel-home:device:TV:1"
	TypeStereo         = "urn:cadel-home:device:Stereo:1"
	TypeVideoRecorder  = "urn:cadel-home:device:VideoRecorder:1"
	TypeAirConditioner = "urn:cadel-home:device:AirConditioner:1"
	TypeLight          = "urn:cadel-home:device:Light:1"
	TypeAlarm          = "urn:cadel-home:device:Alarm:1"
	TypeDoorLock       = "urn:cadel-home:device:DoorLock:1"
	TypeThermometer    = "urn:cadel-home:device:Thermometer:1"
	TypeHygrometer     = "urn:cadel-home:device:Hygrometer:1"
	TypeLightSensor    = "urn:cadel-home:device:LightSensor:1"
	TypePresenceSensor = "urn:cadel-home:device:PresenceSensor:1"
	TypeEPGTuner       = "urn:cadel-home:device:EPGTuner:1"
)

// envSensorTypes marks device types whose readings describe the environment
// of their room (context key "location/var") rather than the device itself.
var envSensorTypes = map[string]bool{
	TypeThermometer:    true,
	TypeHygrometer:     true,
	TypeLightSensor:    true,
	TypePresenceSensor: true,
	TypeEPGTuner:       true,
}

// IsEnvSensor reports whether the device type is an environment sensor.
func IsEnvSensor(deviceType string) bool { return envSensorTypes[deviceType] }

// Unit wraps a upnp.Device so that action handlers route their state
// changes through the hosting DeviceHost (triggering UPnP events) once the
// unit is published.
type Unit struct {
	Dev *upnp.Device

	host     *upnp.DeviceHost
	eventSeq atomic.Uint64
}

// Publish binds the unit to a host and announces it.
func (u *Unit) Publish(h *upnp.DeviceHost) error {
	u.host = h
	return h.Publish(u.Dev)
}

// Set updates a state variable, routing through the host when bound so that
// subscribers are notified.
func (u *Unit) Set(serviceType, varName, value string) error {
	if u.host != nil {
		return u.host.SetVar(u.Dev.UDN, serviceType, varName, value)
	}
	svc, ok := u.Dev.Service(serviceType)
	if !ok {
		return fmt.Errorf("device: %s has no service %s", u.Dev.FriendlyName, serviceType)
	}
	v, ok := svc.Var(varName)
	if !ok {
		return fmt.Errorf("device: service %s has no variable %s", serviceType, varName)
	}
	v.Set(value) // pre-publish write: no subscribers yet, eventing not needed
	return nil
}

// Get reads a state variable.
func (u *Unit) Get(serviceType, varName string) (string, error) {
	svc, ok := u.Dev.Service(serviceType)
	if !ok {
		return "", fmt.Errorf("device: %s has no service %s", u.Dev.FriendlyName, serviceType)
	}
	v, ok := svc.Var(varName)
	if !ok {
		return "", fmt.Errorf("device: service %s has no variable %s", serviceType, varName)
	}
	return v.Get(), nil
}

// UDN builds a deterministic UDN from a name and id.
func UDN(name string, id int) string {
	return fmt.Sprintf("uuid:%s-%d", sanitize(name), id)
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		case r == ' ':
			out = append(out, '-')
		default:
			// drop
		}
	}
	return string(out)
}

// formatNumber renders a float for state variables.
func formatNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
