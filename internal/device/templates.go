package device

import (
	"fmt"

	"repro/internal/upnp"
)

// selfSetter routes an action handler's state change through the Unit so
// events fire once published.
type selfSetter func(serviceType, varName, value string) error

// switchService builds a SwitchPower service whose SetPower/GetPower actions
// drive the "power" variable.
func switchService(set *selfSetter) *upnp.Service {
	power := upnp.NewStateVar("power", upnp.VarBool, "0", true)
	return upnp.NewService("urn:upnp-org:serviceId:SwitchPower", SvcSwitchPower).
		AddVar(power).
		AddAction(&upnp.Action{
			Name:   "SetPower",
			ArgsIn: []string{"value"},
			Handler: func(args map[string]string) (map[string]string, error) {
				if err := (*set)(SvcSwitchPower, "power", boolStr(args["value"])); err != nil {
					return nil, err
				}
				return map[string]string{"result": "ok"}, nil
			},
		}).
		AddAction(&upnp.Action{
			Name:    "GetPower",
			ArgsOut: []string{"value"},
			Handler: func(map[string]string) (map[string]string, error) {
				return map[string]string{"value": power.Get()}, nil
			},
		})
}

// numericSetterService builds a service exposing one numeric evented
// variable with a Set<Name> action.
func numericSetterService(set *selfSetter, svcID, svcType, varName, actionName, initial string) *upnp.Service {
	v := upnp.NewStateVar(varName, upnp.VarNumber, initial, true)
	return upnp.NewService(svcID, svcType).
		AddVar(v).
		AddAction(&upnp.Action{
			Name:   actionName,
			ArgsIn: []string{"value"},
			Handler: func(args map[string]string) (map[string]string, error) {
				if err := (*set)(svcType, varName, args["value"]); err != nil {
					return nil, err
				}
				return map[string]string{"result": "ok"}, nil
			},
		})
}

func boolStr(s string) string {
	if s == "1" || s == "true" || s == "on" {
		return "1"
	}
	return "0"
}

// newUnit assembles a Unit whose action handlers write through the Unit.
func newUnit(udn, deviceType, friendlyName, location string, build func(set *selfSetter) []*upnp.Service) *Unit {
	u := &Unit{}
	var set selfSetter = func(serviceType, varName, value string) error {
		return u.Set(serviceType, varName, value)
	}
	u.Dev = &upnp.Device{
		UDN:          udn,
		DeviceType:   deviceType,
		FriendlyName: friendlyName,
		Location:     location,
		Manufacturer: "cadel-home",
		Services:     build(&set),
	}
	return u
}

// NewTV builds a television: power, channel, volume, playback mode.
func NewTV(id int, location string) *Unit {
	return newUnit(UDN("tv", id), TypeTV, "tv", location, func(set *selfSetter) []*upnp.Service {
		mode := upnp.NewStateVar("mode", upnp.VarString, "", true)
		playback := upnp.NewService("urn:cadel-home:serviceId:Playback", SvcPlayback).
			AddVar(mode).
			AddVar(upnp.NewStateVar("volume", upnp.VarNumber, "50", true)).
			AddAction(&upnp.Action{
				Name:   "SetMode",
				ArgsIn: []string{"value"},
				Handler: func(args map[string]string) (map[string]string, error) {
					if err := (*set)(SvcPlayback, "mode", args["value"]); err != nil {
						return nil, err
					}
					return nil, nil
				},
			}).
			AddAction(&upnp.Action{
				Name:   "SetVolume",
				ArgsIn: []string{"value"},
				Handler: func(args map[string]string) (map[string]string, error) {
					if err := (*set)(SvcPlayback, "volume", args["value"]); err != nil {
						return nil, err
					}
					return nil, nil
				},
			})
		return []*upnp.Service{
			switchService(set),
			numericSetterService(set, "urn:cadel-home:serviceId:Channel", SvcChannel, "channel", "SetChannel", "1"),
			playback,
		}
	})
}

// NewStereo builds a stereo system: power, volume, playback mode ("jazz",
// "movie"), playing flag.
func NewStereo(id int, location string) *Unit {
	return newUnit(UDN("stereo", id), TypeStereo, "stereo", location, func(set *selfSetter) []*upnp.Service {
		playing := upnp.NewStateVar("playing", upnp.VarBool, "0", true)
		mode := upnp.NewStateVar("mode", upnp.VarString, "", true)
		volume := upnp.NewStateVar("volume", upnp.VarNumber, "40", true)
		playback := upnp.NewService("urn:cadel-home:serviceId:Playback", SvcPlayback).
			AddVar(playing).AddVar(mode).AddVar(volume).
			AddAction(&upnp.Action{
				Name:   "Play",
				ArgsIn: []string{"mode"},
				Handler: func(args map[string]string) (map[string]string, error) {
					if m := args["mode"]; m != "" {
						if err := (*set)(SvcPlayback, "mode", m); err != nil {
							return nil, err
						}
					}
					return nil, (*set)(SvcPlayback, "playing", "1")
				},
			}).
			AddAction(&upnp.Action{
				Name: "Stop",
				Handler: func(map[string]string) (map[string]string, error) {
					return nil, (*set)(SvcPlayback, "playing", "0")
				},
			}).
			AddAction(&upnp.Action{
				Name:   "SetMode",
				ArgsIn: []string{"value"},
				Handler: func(args map[string]string) (map[string]string, error) {
					return nil, (*set)(SvcPlayback, "mode", args["value"])
				},
			}).
			AddAction(&upnp.Action{
				Name:   "SetVolume",
				ArgsIn: []string{"value"},
				Handler: func(args map[string]string) (map[string]string, error) {
					return nil, (*set)(SvcPlayback, "volume", args["value"])
				},
			})
		return []*upnp.Service{switchService(set), playback}
	})
}

// NewVideoRecorder builds a video recorder: power, recording flag, mode.
func NewVideoRecorder(id int, location string) *Unit {
	return newUnit(UDN("video recorder", id), TypeVideoRecorder, "video recorder", location,
		func(set *selfSetter) []*upnp.Service {
			recording := upnp.NewStateVar("recording", upnp.VarBool, "0", true)
			mode := upnp.NewStateVar("mode", upnp.VarString, "", true)
			rec := upnp.NewService("urn:cadel-home:serviceId:Recording", SvcRecording).
				AddVar(recording).AddVar(mode).
				AddAction(&upnp.Action{
					Name:   "StartRecording",
					ArgsIn: []string{"mode"},
					Handler: func(args map[string]string) (map[string]string, error) {
						if m := args["mode"]; m != "" {
							if err := (*set)(SvcRecording, "mode", m); err != nil {
								return nil, err
							}
						}
						return nil, (*set)(SvcRecording, "recording", "1")
					},
				}).
				AddAction(&upnp.Action{
					Name: "StopRecording",
					Handler: func(map[string]string) (map[string]string, error) {
						return nil, (*set)(SvcRecording, "recording", "0")
					},
				}).
				AddAction(&upnp.Action{
					Name:   "SetMode",
					ArgsIn: []string{"value"},
					Handler: func(args map[string]string) (map[string]string, error) {
						return nil, (*set)(SvcRecording, "mode", args["value"])
					},
				})
			return []*upnp.Service{switchService(set), rec}
		})
}

// NewAirConditioner builds an air conditioner: power, target temperature,
// target humidity, mode ("cool", "heat", "dehumidification").
func NewAirConditioner(id int, location string) *Unit {
	return newUnit(UDN("air conditioner", id), TypeAirConditioner, "air conditioner", location,
		func(set *selfSetter) []*upnp.Service {
			thermostat := upnp.NewService("urn:cadel-home:serviceId:Thermostat", SvcThermostat).
				AddVar(upnp.NewStateVar("target-temperature", upnp.VarNumber, "25", true)).
				AddVar(upnp.NewStateVar("target-humidity", upnp.VarNumber, "60", true)).
				AddVar(upnp.NewStateVar("mode", upnp.VarString, "cool", true)).
				AddAction(&upnp.Action{
					Name:   "SetTemperature",
					ArgsIn: []string{"value"},
					Handler: func(args map[string]string) (map[string]string, error) {
						return nil, (*set)(SvcThermostat, "target-temperature", args["value"])
					},
				}).
				AddAction(&upnp.Action{
					Name:   "SetHumidity",
					ArgsIn: []string{"value"},
					Handler: func(args map[string]string) (map[string]string, error) {
						return nil, (*set)(SvcThermostat, "target-humidity", args["value"])
					},
				}).
				AddAction(&upnp.Action{
					Name:   "SetMode",
					ArgsIn: []string{"value"},
					Handler: func(args map[string]string) (map[string]string, error) {
						return nil, (*set)(SvcThermostat, "mode", args["value"])
					},
				})
			return []*upnp.Service{switchService(set), thermostat}
		})
}

// NewLight builds a dimmable light with the given friendly name ("floor
// lamp", "fluorescent light", "light", ...).
func NewLight(name string, id int, location string) *Unit {
	return newUnit(UDN(name, id), TypeLight, name, location, func(set *selfSetter) []*upnp.Service {
		return []*upnp.Service{
			switchService(set),
			numericSetterService(set, "urn:upnp-org:serviceId:Dimming", SvcDimming, "brightness", "SetBrightness", "100"),
		}
	})
}

// NewAlarm builds an alarm siren: power only.
func NewAlarm(id int, location string) *Unit {
	return newUnit(UDN("alarm", id), TypeAlarm, "alarm", location, func(set *selfSetter) []*upnp.Service {
		return []*upnp.Service{switchService(set)}
	})
}

// NewDoorLock builds a lockable door ("entrance door"): locked and open
// states with Lock/Unlock actions.
func NewDoorLock(name string, id int, location string) *Unit {
	return newUnit(UDN(name, id), TypeDoorLock, name, location, func(set *selfSetter) []*upnp.Service {
		lock := upnp.NewService("urn:cadel-home:serviceId:Lock", SvcLock).
			AddVar(upnp.NewStateVar("locked", upnp.VarBool, "1", true)).
			AddVar(upnp.NewStateVar("open", upnp.VarBool, "0", true)).
			AddAction(&upnp.Action{
				Name: "Lock",
				Handler: func(map[string]string) (map[string]string, error) {
					return nil, (*set)(SvcLock, "locked", "1")
				},
			}).
			AddAction(&upnp.Action{
				Name: "Unlock",
				Handler: func(map[string]string) (map[string]string, error) {
					return nil, (*set)(SvcLock, "locked", "0")
				},
			})
		return []*upnp.Service{lock}
	})
}

// NewThermometer builds a temperature sensor for a room.
func NewThermometer(id int, location string, initial float64) *Unit {
	return newUnit(UDN("thermometer", id), TypeThermometer, "thermometer", location,
		func(*selfSetter) []*upnp.Service {
			return []*upnp.Service{
				upnp.NewService("urn:cadel-home:serviceId:TemperatureSensor", SvcTempSensor).
					AddVar(upnp.NewStateVar("temperature", upnp.VarNumber, formatNumber(initial), true)),
			}
		})
}

// SetTemperature drives the simulated reading.
func (u *Unit) SetTemperature(v float64) error {
	return u.Set(SvcTempSensor, "temperature", formatNumber(v))
}

// NewHygrometer builds a humidity sensor for a room.
func NewHygrometer(id int, location string, initial float64) *Unit {
	return newUnit(UDN("hygrometer", id), TypeHygrometer, "hygrometer", location,
		func(*selfSetter) []*upnp.Service {
			return []*upnp.Service{
				upnp.NewService("urn:cadel-home:serviceId:HumiditySensor", SvcHumidSensor).
					AddVar(upnp.NewStateVar("humidity", upnp.VarNumber, formatNumber(initial), true)),
			}
		})
}

// SetHumidity drives the simulated reading.
func (u *Unit) SetHumidity(v float64) error {
	return u.Set(SvcHumidSensor, "humidity", formatNumber(v))
}

// NewLightSensor builds an illuminance sensor exposing a derived "dark"
// boolean.
func NewLightSensor(id int, location string, dark bool) *Unit {
	initial := "0"
	if dark {
		initial = "1"
	}
	return newUnit(UDN("light sensor", id), TypeLightSensor, "light sensor", location,
		func(*selfSetter) []*upnp.Service {
			return []*upnp.Service{
				upnp.NewService("urn:cadel-home:serviceId:LightSensor", SvcLightSensor).
					AddVar(upnp.NewStateVar("dark", upnp.VarBool, initial, true)).
					AddVar(upnp.NewStateVar("illuminance", upnp.VarNumber, "300", true)),
			}
		})
}

// SetDark drives the simulated darkness flag.
func (u *Unit) SetDark(dark bool) error {
	v := "0"
	if dark {
		v = "1"
	}
	return u.Set(SvcLightSensor, "dark", v)
}

// NewPresenceSensor builds the home's RFID tag reader. It exposes one
// evented variable per registered user holding the room the user is in (""
// = away) plus an "event" variable carrying arrival events.
func NewPresenceSensor(id int, users []string) *Unit {
	return newUnit(UDN("presence sensor", id), TypePresenceSensor, "presence sensor", "home",
		func(*selfSetter) []*upnp.Service {
			svc := upnp.NewService("urn:cadel-home:serviceId:Presence", SvcPresence).
				AddVar(upnp.NewStateVar("event", upnp.VarString, "", true))
			for _, user := range users {
				svc.AddVar(upnp.NewStateVar("presence-"+user, upnp.VarString, "", true))
			}
			return []*upnp.Service{svc}
		})
}

// SetUserLocation moves a user to a room ("" = away).
func (u *Unit) SetUserLocation(user, room string) error {
	return u.Set(SvcPresence, "presence-"+user, room)
}

// FireArrival publishes an arrival event ("alan", "home-from-work"). A
// sequence number disambiguates consecutive identical events so each one
// triggers a notification.
func (u *Unit) FireArrival(user, event string) error {
	return u.Set(SvcPresence, "event", fmt.Sprintf("%s|%s|%d", user, event, u.eventSeq.Add(1)))
}

// NewEPGTuner builds the electronic-program-guide sensor announcing the
// programmes currently on air.
func NewEPGTuner(id int) *Unit {
	return newUnit(UDN("epg tuner", id), TypeEPGTuner, "epg tuner", "home",
		func(*selfSetter) []*upnp.Service {
			return []*upnp.Service{
				upnp.NewService("urn:cadel-home:serviceId:EPG", SvcEPG).
					AddVar(upnp.NewStateVar("programs", upnp.VarString, "", true)),
			}
		})
}

// SetPrograms publishes the current broadcast line-up.
func (u *Unit) SetPrograms(encoded string) error {
	return u.Set(SvcEPG, "programs", encoded)
}
