package device

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/upnp"
)

// VarKind classifies a state-variable name for context mapping.
type VarKind int

// Variable kinds.
const (
	VarKindBool VarKind = iota + 1
	VarKindNumber
	VarKindString
	VarKindSpecial // presence-*, event, programs
)

// varKinds is the fixed vocabulary of appliance/sensor variable names.
var varKinds = map[string]VarKind{
	"power":              VarKindBool,
	"playing":            VarKindBool,
	"recording":          VarKindBool,
	"locked":             VarKindBool,
	"open":               VarKindBool,
	"dark":               VarKindBool,
	"temperature":        VarKindNumber,
	"humidity":           VarKindNumber,
	"illuminance":        VarKindNumber,
	"brightness":         VarKindNumber,
	"volume":             VarKindNumber,
	"channel":            VarKindNumber,
	"target-temperature": VarKindNumber,
	"target-humidity":    VarKindNumber,
	"mode":               VarKindString,
	"event":              VarKindSpecial,
	"programs":           VarKindSpecial,
}

// KindOfVar returns the kind of a variable name. presence-* variables are
// special.
func KindOfVar(name string) VarKind {
	if strings.HasPrefix(name, "presence-") {
		return VarKindSpecial
	}
	if k, ok := varKinds[name]; ok {
		return k
	}
	return VarKindString
}

// ContextKeys returns the core.Context keys under which a device variable is
// published. Environment sensor readings are keyed by room; appliance states
// by device name, plus a room-qualified alias.
func ContextKeys(deviceType, friendlyName, location, varName string) []string {
	if IsEnvSensor(deviceType) {
		if location == "" {
			return []string{varName}
		}
		return []string{location + "/" + varName}
	}
	keys := []string{friendlyName + "/" + varName}
	if location != "" {
		keys = append(keys, location+"/"+friendlyName+"/"+varName)
	}
	return keys
}

// ---- action dispatch ----

// Invoker abstracts upnp.ControlPoint.Invoke for testing.
type Invoker interface {
	Invoke(rd *upnp.RemoteDevice, serviceType, action string, args map[string]string) (map[string]string, error)
}

// settingDispatch maps a canonical setting parameter to the UPnP action that
// applies it.
var settingDispatch = map[string]struct {
	service string
	action  string
}{
	"temperature": {SvcThermostat, "SetTemperature"},
	"humidity":    {SvcThermostat, "SetHumidity"},
	"channel":     {SvcChannel, "SetChannel"},
	"volume":      {SvcPlayback, "SetVolume"},
	"brightness":  {SvcDimming, "SetBrightness"},
}

// ApplyAction executes a compiled rule action on a remote device: it maps
// the canonical CADEL verb to the device's UPnP actions and applies every
// setting.
func ApplyAction(inv Invoker, rd *upnp.RemoteDevice, action core.Action) error {
	modeHandled := false
	switch action.Verb {
	case "turn-on", "open", "brighten":
		if err := setPower(inv, rd, true); err != nil {
			return err
		}
	case "turn-off", "close", "mute":
		if err := setPower(inv, rd, false); err != nil {
			return err
		}
	case "play":
		if err := setPower(inv, rd, true); err != nil {
			return err
		}
		args := map[string]string{}
		if mode, ok := action.Settings["mode"]; ok {
			args["mode"] = mode.Word
			modeHandled = true
		}
		if _, err := inv.Invoke(rd, SvcPlayback, "Play", args); err != nil {
			return err
		}
	case "stop", "pause":
		if _, err := inv.Invoke(rd, SvcPlayback, "Stop", nil); err != nil {
			return err
		}
	case "record":
		if err := setPower(inv, rd, true); err != nil {
			return err
		}
		args := map[string]string{}
		if mode, ok := action.Settings["mode"]; ok {
			args["mode"] = mode.Word
			modeHandled = true
		}
		if _, err := inv.Invoke(rd, SvcRecording, "StartRecording", args); err != nil {
			return err
		}
	case "lock":
		if _, err := inv.Invoke(rd, SvcLock, "Lock", nil); err != nil {
			return err
		}
	case "unlock":
		if _, err := inv.Invoke(rd, SvcLock, "Unlock", nil); err != nil {
			return err
		}
	case "dim":
		if _, err := inv.Invoke(rd, SvcDimming, "SetBrightness", map[string]string{"value": "30"}); err != nil {
			return err
		}
	case "set", "show", "notify":
		// Settings-only verbs; handled below.
	default:
		return fmt.Errorf("device: no dispatch for verb %q on %s", action.Verb, rd.FriendlyName)
	}

	for param, value := range action.Settings {
		target, ok := settingDispatch[param]
		if !ok {
			if param == "mode" && !modeHandled {
				// Apply the mode to whichever service accepts SetMode
				// (Play/StartRecording already consumed it otherwise).
				if err := applyMode(inv, rd, value.Word); err != nil {
					return err
				}
			}
			continue
		}
		if _, hasSvc := rd.Service(target.service); !hasSvc {
			return fmt.Errorf("device: %s cannot apply %s (no %s)", rd.FriendlyName, param, target.service)
		}
		arg := value.Word
		if value.IsNumber {
			arg = formatNumber(value.Number)
		}
		if _, err := inv.Invoke(rd, target.service, target.action, map[string]string{"value": arg}); err != nil {
			return err
		}
	}
	return nil
}

func setPower(inv Invoker, rd *upnp.RemoteDevice, on bool) error {
	if _, ok := rd.Service(SvcSwitchPower); !ok {
		return nil // device has no power switch (e.g. door lock)
	}
	v := "0"
	if on {
		v = "1"
	}
	_, err := inv.Invoke(rd, SvcSwitchPower, "SetPower", map[string]string{"value": v})
	return err
}

func applyMode(inv Invoker, rd *upnp.RemoteDevice, mode string) error {
	for _, svc := range []string{SvcThermostat, SvcPlayback, SvcRecording} {
		if _, ok := rd.Service(svc); ok {
			_, err := inv.Invoke(rd, svc, "SetMode", map[string]string{"value": mode})
			return err
		}
	}
	return nil
}

// ---- EPG encoding ----

// EncodePrograms renders programmes for the EPG "programs" state variable:
// "title|category|kw1,kw2;title2|category2|".
func EncodePrograms(programs []core.Program) string {
	parts := make([]string, 0, len(programs))
	for _, p := range programs {
		parts = append(parts, fmt.Sprintf("%s|%s|%s",
			sanitizeField(p.Title), sanitizeField(p.Category),
			strings.Join(sanitizeAll(p.Keywords), ",")))
	}
	return strings.Join(parts, ";")
}

// DecodePrograms parses the EPG wire format.
func DecodePrograms(encoded string) []core.Program {
	if encoded == "" {
		return nil
	}
	var out []core.Program
	for _, part := range strings.Split(encoded, ";") {
		fields := strings.SplitN(part, "|", 3)
		if len(fields) < 2 {
			continue
		}
		p := core.Program{Title: fields[0], Category: fields[1]}
		if len(fields) == 3 && fields[2] != "" {
			p.Keywords = strings.Split(fields[2], ",")
		}
		out = append(out, p)
	}
	return out
}

func sanitizeField(s string) string {
	return strings.NewReplacer("|", " ", ";", " ", ",", " ").Replace(s)
}

func sanitizeAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = sanitizeField(s)
	}
	return out
}
