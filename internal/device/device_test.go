package device

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/upnp"
)

const searchWindow = 500 * time.Millisecond

func testBench(t *testing.T) (*upnp.DeviceHost, *upnp.ControlPoint) {
	t.Helper()
	network := upnp.NewNetwork()
	host, err := upnp.NewDeviceHost(network)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = host.Close() })
	cp, err := upnp.NewControlPoint(network)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cp.Close() })
	return host, cp
}

func TestUDN(t *testing.T) {
	if got := UDN("air conditioner", 3); got != "uuid:air-conditioner-3" {
		t.Errorf("UDN = %q", got)
	}
	if got := UDN("TV!", 1); got != "uuid:tv-1" {
		t.Errorf("UDN = %q", got)
	}
}

func TestTemplatesHaveExpectedShape(t *testing.T) {
	tests := []struct {
		unit     *Unit
		devType  string
		name     string
		services []string
	}{
		{NewTV(1, "living room"), TypeTV, "tv", []string{SvcSwitchPower, SvcChannel, SvcPlayback}},
		{NewStereo(1, "living room"), TypeStereo, "stereo", []string{SvcSwitchPower, SvcPlayback}},
		{NewVideoRecorder(1, "living room"), TypeVideoRecorder, "video recorder", []string{SvcSwitchPower, SvcRecording}},
		{NewAirConditioner(1, "living room"), TypeAirConditioner, "air conditioner", []string{SvcSwitchPower, SvcThermostat}},
		{NewLight("floor lamp", 1, "living room"), TypeLight, "floor lamp", []string{SvcSwitchPower, SvcDimming}},
		{NewAlarm(1, "hall"), TypeAlarm, "alarm", []string{SvcSwitchPower}},
		{NewDoorLock("entrance door", 1, "entrance"), TypeDoorLock, "entrance door", []string{SvcLock}},
		{NewThermometer(1, "living room", 22), TypeThermometer, "thermometer", []string{SvcTempSensor}},
		{NewHygrometer(1, "living room", 55), TypeHygrometer, "hygrometer", []string{SvcHumidSensor}},
		{NewLightSensor(1, "hall", true), TypeLightSensor, "light sensor", []string{SvcLightSensor}},
		{NewPresenceSensor(1, []string{"tom"}), TypePresenceSensor, "presence sensor", []string{SvcPresence}},
		{NewEPGTuner(1), TypeEPGTuner, "epg tuner", []string{SvcEPG}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.unit.Dev
			if d.DeviceType != tt.devType {
				t.Errorf("type = %q, want %q", d.DeviceType, tt.devType)
			}
			if d.FriendlyName != tt.name {
				t.Errorf("name = %q, want %q", d.FriendlyName, tt.name)
			}
			for _, svc := range tt.services {
				if _, ok := d.Service(svc); !ok {
					t.Errorf("missing service %s", svc)
				}
			}
		})
	}
}

func TestUnitSetGetPrePublish(t *testing.T) {
	th := NewThermometer(1, "living room", 22)
	if err := th.SetTemperature(28.5); err != nil {
		t.Fatal(err)
	}
	got, err := th.Get(SvcTempSensor, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if got != "28.5" {
		t.Errorf("temperature = %q", got)
	}
	if err := th.Set("urn:no:svc", "x", "1"); err == nil {
		t.Error("unknown service should fail")
	}
	if _, err := th.Get(SvcTempSensor, "nope"); err == nil {
		t.Error("unknown variable should fail")
	}
}

func TestPublishedSensorEvents(t *testing.T) {
	host, _ := testBench(t)
	th := NewThermometer(2, "living room", 22)
	if err := th.Publish(host); err != nil {
		t.Fatal(err)
	}
	var got []string
	cancel, err := host.SubscribeLocal(th.Dev.UDN, SvcTempSensor, func(vars map[string]string) {
		if v, ok := vars["temperature"]; ok {
			got = append(got, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := th.SetTemperature(29); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "29" {
		t.Errorf("events = %v, want initial 22 then 29", got)
	}
}

func TestActionHandlersRouteThroughHost(t *testing.T) {
	host, cp := testBench(t)
	tv := NewTV(1, "living room")
	if err := tv.Publish(host); err != nil {
		t.Fatal(err)
	}
	var events []map[string]string
	cancel, err := host.SubscribeLocal(tv.Dev.UDN, SvcSwitchPower, func(vars map[string]string) {
		events = append(events, vars)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	rd, err := cp.FindByName("tv", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Invoke(rd, SvcSwitchPower, "SetPower", map[string]string{"value": "1"}); err != nil {
		t.Fatal(err)
	}
	// Initial event + change event.
	if len(events) != 2 || events[1]["power"] != "1" {
		t.Errorf("events = %v", events)
	}
}

func TestApplyActionTurnOnWithSettings(t *testing.T) {
	host, cp := testBench(t)
	ac := NewAirConditioner(1, "living room")
	if err := ac.Publish(host); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("air conditioner", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	action := core.Action{
		Verb: "turn-on",
		Settings: map[string]core.Value{
			"temperature": {IsNumber: true, Number: 25, Unit: "celsius"},
			"humidity":    {IsNumber: true, Number: 60, Unit: "percent"},
			"mode":        {Word: "dehumidification"},
		},
	}
	if err := ApplyAction(cp, rd, action); err != nil {
		t.Fatalf("ApplyAction: %v", err)
	}
	checks := []struct{ svc, varName, want string }{
		{SvcSwitchPower, "power", "1"},
		{SvcThermostat, "target-temperature", "25"},
		{SvcThermostat, "target-humidity", "60"},
		{SvcThermostat, "mode", "dehumidification"},
	}
	for _, c := range checks {
		got, err := ac.Get(c.svc, c.varName)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s = %q, want %q", c.varName, got, c.want)
		}
	}
}

func TestApplyActionPlayAndRecord(t *testing.T) {
	host, cp := testBench(t)
	stereo := NewStereo(1, "living room")
	recorder := NewVideoRecorder(1, "living room")
	for _, u := range []*Unit{stereo, recorder} {
		if err := u.Publish(host); err != nil {
			t.Fatal(err)
		}
	}
	rdStereo, err := cp.FindByName("stereo", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAction(cp, rdStereo, core.Action{
		Verb:     "play",
		Settings: map[string]core.Value{"mode": {Word: "jazz"}, "volume": {IsNumber: true, Number: 40}},
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := stereo.Get(SvcPlayback, "playing"); got != "1" {
		t.Error("stereo not playing")
	}
	if got, _ := stereo.Get(SvcPlayback, "mode"); got != "jazz" {
		t.Errorf("mode = %q", got)
	}
	if got, _ := stereo.Get(SvcPlayback, "volume"); got != "40" {
		t.Errorf("volume = %q", got)
	}
	if err := ApplyAction(cp, rdStereo, core.Action{Verb: "stop"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := stereo.Get(SvcPlayback, "playing"); got != "0" {
		t.Error("stereo still playing after stop")
	}

	rdRec, err := cp.FindByName("video recorder", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAction(cp, rdRec, core.Action{
		Verb:     "record",
		Settings: map[string]core.Value{"mode": {Word: "baseball game"}},
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := recorder.Get(SvcRecording, "recording"); got != "1" {
		t.Error("recorder not recording")
	}
}

func TestApplyActionLockUnlock(t *testing.T) {
	host, cp := testBench(t)
	door := NewDoorLock("entrance door", 1, "entrance")
	if err := door.Publish(host); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("entrance door", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAction(cp, rd, core.Action{Verb: "unlock"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := door.Get(SvcLock, "locked"); got != "0" {
		t.Error("door still locked")
	}
	if err := ApplyAction(cp, rd, core.Action{Verb: "lock"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := door.Get(SvcLock, "locked"); got != "1" {
		t.Error("door not locked")
	}
}

func TestApplyActionErrors(t *testing.T) {
	host, cp := testBench(t)
	lamp := NewLight("floor lamp", 1, "living room")
	if err := lamp.Publish(host); err != nil {
		t.Fatal(err)
	}
	rd, err := cp.FindByName("floor lamp", searchWindow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAction(cp, rd, core.Action{Verb: "warp"}); err == nil {
		t.Error("unknown verb should fail")
	}
	// A setting the device cannot apply fails loudly.
	err = ApplyAction(cp, rd, core.Action{
		Verb:     "turn-on",
		Settings: map[string]core.Value{"channel": {IsNumber: true, Number: 5}},
	})
	if err == nil || !strings.Contains(err.Error(), "cannot apply") {
		t.Errorf("error = %v, want cannot-apply", err)
	}
}

func TestPresenceSensor(t *testing.T) {
	host, _ := testBench(t)
	ps := NewPresenceSensor(1, []string{"tom", "alan"})
	if err := ps.Publish(host); err != nil {
		t.Fatal(err)
	}
	var events []map[string]string
	cancel, err := host.SubscribeLocal(ps.Dev.UDN, SvcPresence, func(vars map[string]string) {
		events = append(events, vars)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := ps.SetUserLocation("tom", "living room"); err != nil {
		t.Fatal(err)
	}
	if err := ps.FireArrival("alan", "home-from-work"); err != nil {
		t.Fatal(err)
	}
	if err := ps.FireArrival("alan", "home-from-work"); err != nil {
		t.Fatal(err)
	}
	// initial + location + 2 distinct arrival events (seq disambiguates)
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	if events[1]["presence-tom"] != "living room" {
		t.Errorf("presence event = %v", events[1])
	}
	if !strings.HasPrefix(events[2]["event"], "alan|home-from-work|") {
		t.Errorf("arrival event = %v", events[2])
	}
	if events[2]["event"] == events[3]["event"] {
		t.Error("consecutive identical arrivals must differ by sequence")
	}
}

func TestContextKeys(t *testing.T) {
	tests := []struct {
		devType, name, loc, varName string
		want                        []string
	}{
		{TypeThermometer, "thermometer", "living room", "temperature", []string{"living room/temperature"}},
		{TypeLightSensor, "light sensor", "hall", "dark", []string{"hall/dark"}},
		{TypeTV, "tv", "living room", "power", []string{"tv/power", "living room/tv/power"}},
		{TypeDoorLock, "entrance door", "entrance", "locked", []string{"entrance door/locked", "entrance/entrance door/locked"}},
		{TypeThermometer, "thermometer", "", "temperature", []string{"temperature"}},
		{TypeTV, "tv", "", "power", []string{"tv/power"}},
	}
	for _, tt := range tests {
		got := ContextKeys(tt.devType, tt.name, tt.loc, tt.varName)
		if strings.Join(got, ",") != strings.Join(tt.want, ",") {
			t.Errorf("ContextKeys(%s,%s,%s,%s) = %v, want %v",
				tt.devType, tt.name, tt.loc, tt.varName, got, tt.want)
		}
	}
}

func TestKindOfVar(t *testing.T) {
	tests := []struct {
		name string
		want VarKind
	}{
		{"power", VarKindBool},
		{"temperature", VarKindNumber},
		{"mode", VarKindString},
		{"presence-tom", VarKindSpecial},
		{"event", VarKindSpecial},
		{"programs", VarKindSpecial},
		{"unheard-of", VarKindString},
	}
	for _, tt := range tests {
		if got := KindOfVar(tt.name); got != tt.want {
			t.Errorf("KindOfVar(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestProgramEncoding(t *testing.T) {
	programs := []core.Program{
		{Title: "Tigers vs Giants", Category: "baseball game", Keywords: []string{"tigers", "giants"}},
		{Title: "Roman Holiday", Category: "movie"},
	}
	encoded := EncodePrograms(programs)
	decoded := DecodePrograms(encoded)
	if len(decoded) != 2 {
		t.Fatalf("decoded = %v", decoded)
	}
	if decoded[0].Title != "Tigers vs Giants" || decoded[0].Category != "baseball game" {
		t.Errorf("first = %+v", decoded[0])
	}
	if len(decoded[0].Keywords) != 2 || decoded[0].Keywords[1] != "giants" {
		t.Errorf("keywords = %v", decoded[0].Keywords)
	}
	if len(decoded[1].Keywords) != 0 {
		t.Errorf("second keywords = %v", decoded[1].Keywords)
	}
	if DecodePrograms("") != nil {
		t.Error("empty encoding should decode to nil")
	}
	// Delimiters inside fields are sanitized, not corrupting.
	enc := EncodePrograms([]core.Program{{Title: "a|b;c", Category: "x,y"}})
	dec := DecodePrograms(enc)
	if len(dec) != 1 {
		t.Fatalf("sanitization broke framing: %v", dec)
	}
}

func TestIsEnvSensor(t *testing.T) {
	if !IsEnvSensor(TypeThermometer) || !IsEnvSensor(TypeEPGTuner) {
		t.Error("sensor types misclassified")
	}
	if IsEnvSensor(TypeTV) || IsEnvSensor(TypeAlarm) {
		t.Error("appliance types misclassified")
	}
}
