package ingest

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func TestParseFloatMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "-0", "1", "-1", "21.5", "40", "100.25", "-273.15",
		"1e3", "1E3", "1e+3", "1e-3", "-2.5e-2", "9.999999999999999",
		"123456789012345", "1234567890123456", // 15 vs 16 digits
		"0.000000000000000000001", "1e22", "1e23", "1e-22", "1e-23",
		"1e308", "1e309", "1e-308", "1e-324", "1e-325", "5e-324",
		"0.1", "0.2", "0.3", "3.141592653589793", "2.718281828459045",
		"18446744073709551615", "18446744073709551616",
	}
	for _, s := range cases {
		want, wantErr := strconv.ParseFloat(s, 64)
		got, ok := ParseFloat([]byte(s))
		if ok != (wantErr == nil) {
			t.Fatalf("ParseFloat(%q) ok=%v, strconv err=%v", s, ok, wantErr)
		}
		if ok && math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseFloat(%q) = %v (%x), strconv %v (%x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestParseFloatRejects(t *testing.T) {
	for _, s := range []string{"", "-", ".", "abc", "1x", "--1", "1.2.3", "NaN?"} {
		if _, ok := ParseFloat([]byte(s)); ok {
			t.Errorf("ParseFloat(%q) accepted", s)
		}
	}
	// Things strconv accepts that JSON does not still parse here — the
	// decoder's number grammar is the JSON gate, ParseFloat is only asked
	// for values it passed.
	for _, s := range []string{"Inf", "+1", "1_000", "0x1p4"} {
		want, err := strconv.ParseFloat(s, 64)
		got, ok := ParseFloat([]byte(s))
		if ok != (err == nil) || (ok && got != want) {
			t.Errorf("ParseFloat(%q) = %v,%v; strconv %v,%v", s, got, ok, want, err)
		}
	}
}

func TestParseFloatRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		var s string
		switch rng.Intn(3) {
		case 0:
			s = strconv.FormatFloat(rng.NormFloat64()*math.Pow10(rng.Intn(40)-20), 'f', rng.Intn(18)-1, 64)
		case 1:
			s = strconv.FormatFloat(math.Float64frombits(rng.Uint64()), 'g', -1, 64)
		case 2:
			s = strconv.FormatInt(rng.Int63()-rng.Int63(), 10)
		}
		want, wantErr := strconv.ParseFloat(s, 64)
		if wantErr != nil || math.IsNaN(want) {
			continue
		}
		got, ok := ParseFloat([]byte(s))
		if !ok || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ParseFloat(%q) = %v,%v; strconv %v", s, got, ok, want)
		}
	}
}

func TestParseFloatFastZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	b := []byte("21.5")
	allocs := testing.AllocsPerRun(300, func() {
		if _, ok := ParseFloat(b); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("fast-path ParseFloat allocated %.1f allocs/op, want 0", allocs)
	}
}
