//go:build race

package ingest

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = true
