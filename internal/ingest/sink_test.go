package ingest

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// recordingPoster captures posted events (copying out of the pooled slices)
// and can be primed to fail.
type recordingPoster struct {
	fail   error
	home   string
	sync   bool
	device string
	vars   map[string]string
	posts  int
}

func (p *recordingPoster) post(home string, ev *Event, sync bool) error {
	if p.fail != nil {
		return p.fail
	}
	p.posts++
	p.home, p.sync = home, sync
	p.device = string(ev.DeviceType)
	p.vars = map[string]string{}
	for _, v := range ev.Vars {
		p.vars[string(v.Key)] = string(v.Value)
	}
	ev.Release()
	return nil
}

func (p *recordingPoster) PostEventFast(home string, ev *Event) error {
	return p.post(home, ev, false)
}

func (p *recordingPoster) PostEventFastSync(home string, ev *Event) error {
	return p.post(home, ev, true)
}

func sinkRequest(t *testing.T, s *Sink, body string) *httptest.ResponseRecorder {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("POST /fleet/homes/{home}/events", s)
	req := httptest.NewRequest(http.MethodPost, "/fleet/homes/casa/events", strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestSinkAsyncAccepted(t *testing.T) {
	p := &recordingPoster{}
	s := NewSink(p)
	w := sinkRequest(t, s, `{"deviceType":"tv","vars":{"power":"1"}}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", w.Code, w.Body)
	}
	if p.home != "casa" || p.sync || p.device != "tv" || p.vars["power"] != "1" {
		t.Fatalf("poster saw %+v", p)
	}
}

func TestSinkSyncOK(t *testing.T) {
	p := &recordingPoster{}
	s := NewSink(p)
	w := sinkRequest(t, s, `{"deviceType":"tv","sync":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	if !p.sync {
		t.Fatal("sync post routed to async path")
	}
}

func TestSinkMalformedBody(t *testing.T) {
	p := &recordingPoster{}
	s := NewSink(p)
	w := sinkRequest(t, s, `{"deviceType":}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q not the {\"error\":...} shape: %v", w.Body, err)
	}
	if p.posts != 0 {
		t.Fatal("malformed body reached the poster")
	}
}

func TestSinkBodyTooLarge(t *testing.T) {
	p := &recordingPoster{}
	s := NewSink(p, WithMaxBody(32))
	w := sinkRequest(t, s, `{"name":"`+strings.Repeat("x", 64)+`"}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", w.Code)
	}
	if p.posts != 0 {
		t.Fatal("oversized body reached the poster")
	}
}

func TestSinkAdmissionRejects(t *testing.T) {
	clk := newFakeClock()
	adm := NewAdmission(Limits{Rate: 1, Burst: 1}, nil, WithAdmissionClock(clk.Now))
	p := &recordingPoster{}
	s := NewSink(p, WithAdmission(adm))
	if w := sinkRequest(t, s, `{}`); w.Code != http.StatusAccepted {
		t.Fatalf("first post: %d", w.Code)
	}
	w := sinkRequest(t, s, `{}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	if p.posts != 1 {
		t.Fatalf("poster saw %d posts, want 1", p.posts)
	}
}

func TestSinkStatusMapper(t *testing.T) {
	sentinel := errors.New("no such home")
	p := &recordingPoster{fail: sentinel}
	s := NewSink(p, WithStatusMapper(func(err error) int {
		if errors.Is(err, sentinel) {
			return http.StatusNotFound
		}
		return http.StatusInternalServerError
	}))
	if w := sinkRequest(t, s, `{}`); w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want mapped 404", w.Code)
	}
}

func TestWriteJSONErrorEscaping(t *testing.T) {
	w := httptest.NewRecorder()
	writeJSONError(w, 400, "quote \" slash \\ ctrl \x02 end")
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("unparseable error body %q: %v", w.Body, err)
	}
	if e.Error != "quote \" slash \\ ctrl \x02 end" {
		t.Fatalf("round-tripped message = %q", e.Error)
	}
}
