package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func TestAdmissionBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(Limits{Rate: 2, Burst: 3}, nil, WithAdmissionClock(clk.Now))

	for i := 0; i < 3; i++ {
		if _, err := a.Admit("h"); err != nil {
			t.Fatalf("burst event %d rejected: %v", i, err)
		}
	}
	retry, err := a.Admit("h")
	if !errors.Is(err, ErrOverRate) {
		t.Fatalf("over-burst event: err=%v", err)
	}
	if retry < time.Second {
		t.Fatalf("retry hint %v below the 1s clamp", retry)
	}

	// Half a second at 2/s refills one token.
	clk.Advance(500 * time.Millisecond)
	if _, err := a.Admit("h"); err != nil {
		t.Fatalf("refilled event rejected: %v", err)
	}
	if _, err := a.Admit("h"); !errors.Is(err, ErrOverRate) {
		t.Fatalf("second event on one token: err=%v", err)
	}

	// A long idle period refills to burst, not beyond.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if _, err := a.Admit("h"); err != nil {
			t.Fatalf("post-idle event %d rejected: %v", i, err)
		}
	}
	if _, err := a.Admit("h"); !errors.Is(err, ErrOverRate) {
		t.Fatal("burst cap not enforced after idle")
	}
}

func TestAdmissionPerHomeIsolation(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(Limits{Rate: 1, Burst: 1}, nil, WithAdmissionClock(clk.Now))
	if _, err := a.Admit("flood"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit("flood"); !errors.Is(err, ErrOverRate) {
		t.Fatal("flood home not limited")
	}
	// A different home has its own bucket.
	if _, err := a.Admit("calm"); err != nil {
		t.Fatalf("calm home rejected alongside flood: %v", err)
	}
	st := a.Stats()
	if st.ShedRate != 1 || st.ShedBacklog != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionBacklogShedding(t *testing.T) {
	depth := 0
	a := NewAdmission(Limits{MaxBacklog: 10}, func(string) int { return depth })

	depth = 10
	if _, err := a.Admit("h"); err != nil {
		t.Fatalf("at-threshold backlog rejected: %v", err)
	}
	depth = 11
	retry, err := a.Admit("h")
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("over-threshold backlog: err=%v", err)
	}
	if retry < time.Second {
		t.Fatalf("retry hint %v below the 1s clamp", retry)
	}
	// A drowning shard backs clients off proportionally.
	depth = 50
	deepRetry, err := a.Admit("h")
	if !errors.Is(err, ErrBacklog) {
		t.Fatal(err)
	}
	if deepRetry <= retry {
		t.Fatalf("retry hint should scale with backlog: %v then %v", retry, deepRetry)
	}
	if st := a.Stats(); st.ShedBacklog != 2 {
		t.Fatalf("shed_backlog = %d, want 2", st.ShedBacklog)
	}
}

func TestAdmissionZeroValueAdmitsEverything(t *testing.T) {
	a := NewAdmission(Limits{}, func(string) int { return 1 << 20 })
	for i := 0; i < 100; i++ {
		if _, err := a.Admit("h"); err != nil {
			t.Fatalf("zero-limit admission rejected: %v", err)
		}
	}
}

func TestRetrySeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := RetrySeconds(c.d); got != c.want {
			t.Errorf("RetrySeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(Limits{Rate: 1000, Burst: 10}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			home := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				a.Admit(home)
			}
		}(g)
	}
	wg.Wait()
}
