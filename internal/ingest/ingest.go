// Package ingest is the fleet hub's wire-speed event front end: a streaming
// decoder for the /fleet/homes/{home}/events body that surfaces the event's
// fields as byte slices over a reusable buffer (no intermediate Go strings,
// no map[string]string), an admission-control layer (per-home token buckets
// plus a backlog-aware load shedder) that turns overload into 429s with
// Retry-After instead of unbounded queue growth, and the Sink HTTP handler
// tying both in front of the hub's PostEvent path.
//
// The division of labour with the engine: this package gets the bytes off
// the wire and decides whether the fleet wants them; the engine's byte-path
// ingest (engine.IngestEvent) interns those bytes straight into the home's
// symbol ids. The generic net/http + encoding/json handler remains the
// correctness oracle — same body bytes must produce the same engine-observed
// event on either path.
//
// Admission control exists because the shard mailbox is deliberately
// unbounded: a dispatch callback may feed events back into the hub (an
// actuated appliance notifies its own property change), so bounding the
// queue would deadlock a shard against its own downstream. Flow control
// therefore lives here, at the transport, where shedding an external
// client's event is safe — dispatch-feedback events enter through
// Hub.PostEvent directly and are never shed.
package ingest

import (
	"errors"
	"io"
	"sync"
)

// Var is one decoded event variable. Key and Value point into the event's
// retained body (or its unescape scratch) and stay valid until Release.
// A nil Value is a JSON null: the key is present with an empty value,
// matching encoding/json's map semantics.
type Var struct {
	Key, Value []byte
}

// Event is one decoded event-request body. All byte-slice fields alias the
// event's Body (or its internal scratch); the event owns them as a unit, so
// a consumer must finish with the slices before calling Release.
type Event struct {
	DeviceType []byte
	Name       []byte
	Location   []byte
	Vars       []Var
	// Sync asks the transport to wait until the home has evaluated the
	// event before acknowledging (200 instead of 202).
	Sync bool

	// Body holds the raw request bytes. ReadBody fills it; Decode slices
	// into it. Exposed so benchmarks and the sink can reuse the same arena.
	Body []byte

	scratch []byte // unescape / UTF-8-coercion arena, reused across decodes
}

var eventPool = sync.Pool{New: func() any { return new(Event) }}

// AcquireEvent returns a pooled event. Pair with Release.
func AcquireEvent() *Event {
	return eventPool.Get().(*Event)
}

// Release resets the event and returns it to the pool. The caller must not
// touch the event or any slice decoded from it afterwards. The hub releases
// events it accepted ownership of; on a failed post the sender releases.
func (e *Event) Release() {
	e.DeviceType, e.Name, e.Location = nil, nil, nil
	for i := range e.Vars {
		e.Vars[i] = Var{}
	}
	e.Vars = e.Vars[:0]
	e.Sync = false
	e.Body = e.Body[:0]
	e.scratch = e.scratch[:0]
	eventPool.Put(e)
}

// ErrBodyTooLarge marks a request body over the sink's per-route cap; the
// transport maps it to 413.
var ErrBodyTooLarge = errors.New("ingest: request body too large")

// ReadBody fills e.Body from r, reusing its capacity across requests.
// Bodies longer than max bytes fail with ErrBodyTooLarge.
func (e *Event) ReadBody(r io.Reader, max int64) error {
	if cap(e.Body) == 0 {
		e.Body = make([]byte, 0, 512)
	}
	e.Body = e.Body[:0]
	for {
		if len(e.Body) == cap(e.Body) {
			e.Body = append(e.Body, 0)[:len(e.Body)]
		}
		n, err := r.Read(e.Body[len(e.Body):cap(e.Body)])
		e.Body = e.Body[:len(e.Body)+n]
		if int64(len(e.Body)) > max {
			return ErrBodyTooLarge
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// setVar records one vars member with JSON-object map semantics: a repeated
// key overwrites its previous value. Linear scan — event shapes carry a
// handful of variables, and the steady state never repeats a key.
func (e *Event) setVar(k, v []byte) {
	for i := range e.Vars {
		if string(e.Vars[i].Key) == string(k) {
			e.Vars[i].Value = v
			return
		}
	}
	e.Vars = append(e.Vars, Var{Key: k, Value: v})
}
