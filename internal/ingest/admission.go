package ingest

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Errors reported by Admit; the transport maps both to 429 + Retry-After.
var (
	// ErrOverRate marks a home posting faster than its token bucket refills.
	ErrOverRate = errors.New("ingest: home over sustained event rate, retry later")
	// ErrBacklog marks a shard whose mailbox is deeper than the shed
	// threshold; accepting more external events would starve the homes
	// already queued (including their dispatch-feedback events).
	ErrBacklog = errors.New("ingest: shard backlog full, retry later")
)

// Limits configures admission control in front of the hub's PostEvent path.
// The zero value admits everything.
type Limits struct {
	// Rate is the sustained per-home event budget in events/second;
	// <= 0 disables the token bucket.
	Rate float64
	// Burst is the token-bucket capacity — how many events a home may post
	// back-to-back before the sustained rate applies. Defaults to
	// max(Rate, 1) when 0.
	Burst float64
	// MaxBacklog sheds events while the queue of the home's shard is deeper
	// than this many tasks; <= 0 disables backlog shedding. The shard
	// mailbox itself is deliberately unbounded (dispatch feedback must
	// never deadlock a shard), so this is the only thing standing between
	// an external flood and unbounded memory.
	MaxBacklog int
}

// AdmissionStats counts shed events by cause.
type AdmissionStats struct {
	ShedRate    uint64 `json:"shed_rate"`
	ShedBacklog uint64 `json:"shed_backlog"`
}

// admShardCount spreads the per-home bucket map over independently locked
// shards so concurrent transport goroutines do not serialize on one mutex.
const admShardCount = 64

// Admission is the transport-side gate in front of Hub.PostEvent: a token
// bucket per home plus a backlog-aware load shedder wired to the owning
// shard's queue depth. Buckets are created on first sight and live as long
// as the Admission does — their footprint is bounded by the number of
// distinct homes the transport has seen, the same cardinality the hub
// itself holds.
type Admission struct {
	limits  Limits
	now     func() time.Time
	backlog func(home string) int

	shedRate    atomic.Uint64
	shedBacklog atomic.Uint64

	shards [admShardCount]admShard
}

type admShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// AdmissionOption configures NewAdmission.
type AdmissionOption interface{ applyAdmission(*Admission) }

type admissionOptionFunc func(*Admission)

func (f admissionOptionFunc) applyAdmission(a *Admission) { f(a) }

// WithAdmissionClock overrides the bucket clock (deterministic tests).
func WithAdmissionClock(now func() time.Time) AdmissionOption {
	return admissionOptionFunc(func(a *Admission) { a.now = now })
}

// NewAdmission builds an admission gate. backlog reports the queue depth of
// the shard owning a home (fleet wires Hub.Backlog); nil disables backlog
// shedding regardless of Limits.MaxBacklog.
func NewAdmission(limits Limits, backlog func(home string) int, opts ...AdmissionOption) *Admission {
	if limits.Burst <= 0 {
		limits.Burst = limits.Rate
		if limits.Burst < 1 {
			limits.Burst = 1
		}
	}
	a := &Admission{limits: limits, now: time.Now, backlog: backlog}
	for _, o := range opts {
		o.applyAdmission(a)
	}
	return a
}

// Admit charges one event against home's budget. A nil error admits the
// event; ErrBacklog or ErrOverRate rejects it with a hint of how long the
// client should wait before retrying (at least one second, so the
// Retry-After header is never zero).
func (a *Admission) Admit(home string) (retryAfter time.Duration, err error) {
	if a.limits.MaxBacklog > 0 && a.backlog != nil {
		if q := a.backlog(home); q > a.limits.MaxBacklog {
			a.shedBacklog.Add(1)
			// Scale the hint with how far past the threshold the queue is:
			// a marginally full shard retries in a second, a drowning one
			// backs off proportionally.
			over := float64(q-a.limits.MaxBacklog) / float64(a.limits.MaxBacklog)
			return clampRetry(time.Duration(over * float64(time.Second))), ErrBacklog
		}
	}
	if a.limits.Rate <= 0 {
		return 0, nil
	}
	sh := &a.shards[fnv32(home)%admShardCount]
	now := a.now()
	sh.mu.Lock()
	if sh.buckets == nil {
		sh.buckets = make(map[string]*bucket)
	}
	b := sh.buckets[home]
	if b == nil {
		b = &bucket{tokens: a.limits.Burst, last: now}
		sh.buckets[home] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * a.limits.Rate
		if b.tokens > a.limits.Burst {
			b.tokens = a.limits.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		sh.mu.Unlock()
		return 0, nil
	}
	need := (1 - b.tokens) / a.limits.Rate
	sh.mu.Unlock()
	a.shedRate.Add(1)
	return clampRetry(time.Duration(need * float64(time.Second))), ErrOverRate
}

// Stats returns the shed counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		ShedRate:    a.shedRate.Load(),
		ShedBacklog: a.shedBacklog.Load(),
	}
}

func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return d
}

// RetrySeconds renders a retry hint as whole seconds for the Retry-After
// header, rounding up and never below 1.
func RetrySeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func fnv32(s string) uint32 {
	hash := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		hash ^= uint32(s[i])
		hash *= 16777619
	}
	return hash
}
