package ingest

import "strconv"

// ParseFloat parses a decimal number from b without materializing a string
// on the fast path. The fast path covers the steady-state sensor shapes —
// up to 15 significant digits with a decimal exponent within ±22 — and is
// bit-exact with strconv.ParseFloat there (the mantissa is below 2^53 and
// the power of ten is exact, so the single multiply rounds correctly).
// Everything else (hex floats, Inf/NaN, underscores, long mantissas) falls
// back to strconv, allocating one string. ok is false when b is not a
// number strconv accepts.
func ParseFloat(b []byte) (float64, bool) {
	if f, ok := parseFloatFast(b); ok {
		return f, true
	}
	f, err := strconv.ParseFloat(string(b), 64)
	return f, err == nil
}

var pow10 = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

func parseFloatFast(b []byte) (float64, bool) {
	i, neg := 0, false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	var mant uint64
	nd := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		mant = mant*10 + uint64(c-'0')
		nd++
	}
	if i == start {
		return 0, false // no leading digits: ".5", "inf", "0x..." → slow path
	}
	frac := 0
	if i < len(b) && b[i] == '.' {
		i++
		fs := i
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			mant = mant*10 + uint64(c-'0')
			frac++
		}
		if i == fs {
			return 0, false
		}
		nd += frac
	}
	exp := 0
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		esign := 1
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			if b[i] == '-' {
				esign = -1
			}
			i++
		}
		es := i
		for ; i < len(b) && isDigit(b[i]); i++ {
			exp = exp*10 + int(b[i]-'0')
			if exp > 1000 {
				return 0, false
			}
		}
		if i == es {
			return 0, false
		}
		exp *= esign
	}
	if i != len(b) || nd > 15 {
		return 0, false // trailing bytes or a mantissa the fast path can't hold exactly
	}
	exp -= frac
	if exp < -22 || exp > 22 {
		return 0, false
	}
	f := float64(mant)
	switch {
	case exp > 0:
		f *= pow10[exp]
	case exp < 0:
		f /= pow10[-exp]
	}
	if neg {
		f = -f
	}
	return f, true
}
