package ingest

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Poster is the hub-side surface the sink posts into. fleet.Hub implements
// it. Ownership: a nil error means the poster took the event and will
// Release it after the home applies it; on error the sink still owns it.
type Poster interface {
	// PostEventFast enqueues ev for home and returns without waiting.
	PostEventFast(home string, ev *Event) error
	// PostEventFastSync enqueues ev and blocks until the home has evaluated
	// it and flushed.
	PostEventFastSync(home string, ev *Event) error
}

// DefaultMaxBody caps event bodies when WithMaxBody is not given. Event
// payloads are small (a device, a location, a handful of vars); 64 KiB
// leaves two orders of magnitude of headroom.
const DefaultMaxBody = 64 << 10

// Sink is the fast handler for POST /fleet/homes/{home}/events: pooled
// buffers, the streaming decoder, and admission control — no net/http
// request-scoped allocations beyond what the server itself makes, and no
// encoding/json. Register it on the hot route; keep the stock handler
// elsewhere as the correctness oracle.
type Sink struct {
	poster    Poster
	admission *Admission   // nil = admit everything
	metrics   *obs.Metrics // nil = unobserved; stripes chosen by home hash
	maxBody   int64
	status    func(error) int // maps poster errors to HTTP statuses
	retry     func(error) int // maps poster errors to Retry-After seconds (0 = none)
}

// SinkOption configures NewSink.
type SinkOption interface{ applySink(*Sink) }

type sinkOptionFunc func(*Sink)

func (f sinkOptionFunc) applySink(s *Sink) { f(s) }

// WithMaxBody overrides the event-body byte cap.
func WithMaxBody(n int64) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.maxBody = n })
}

// WithAdmission gates posts behind a; nil disables admission control.
func WithAdmission(a *Admission) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.admission = a })
}

// WithSinkMetrics records decode counts and latency into m, striped by the
// same home hash the hub shards on (a home's transport metrics land on its
// owning shard's block). Nil leaves the sink unobserved.
func WithSinkMetrics(m *obs.Metrics) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.metrics = m })
}

// WithStatusMapper overrides how poster errors map to HTTP status codes
// (fleet wires its sentinel-error table so the sink and the oracle handler
// answer identically).
func WithStatusMapper(f func(error) int) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.status = f })
}

// WithRetryHinter adds a Retry-After header (f's result, whole seconds; 0
// suppresses the header) to poster-error responses — how a sealed-for-
// migration or store-degraded home tells clients when to come back.
func WithRetryHinter(f func(error) int) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.retry = f })
}

// NewSink builds the fast event handler in front of p.
func NewSink(p Poster, opts ...SinkOption) *Sink {
	s := &Sink{poster: p, maxBody: DefaultMaxBody, status: defaultStatus}
	for _, o := range opts {
		o.applySink(s)
	}
	return s
}

func defaultStatus(error) int { return http.StatusInternalServerError }

// Admission exposes the sink's admission controller (nil when admission is
// disabled) so the metrics endpoint can scrape shed counters without a
// parallel plumbing path.
func (s *Sink) Admission() *Admission { return s.admission }

// MaxBody returns the sink's per-event body cap, so a transport reading the
// body itself (the raw-socket front end) enforces the same limit the
// net/http path does.
func (s *Sink) MaxBody() int64 { return s.maxBody }

// Disposition is the transport-neutral outcome of one event post: the HTTP
// status to answer, the Retry-After hint in whole seconds (0 = no header),
// and the error whose message becomes the response body (nil on success).
// Both the net/http handler below and the raw-socket front end
// (internal/rawhttp) render dispositions, so the two transports answer the
// same bytes with the same statuses, hints and error shapes.
type Disposition struct {
	Status     int
	RetryAfter int
	Err        error
}

// Admit charges one event against home's admission budget. ok reports
// whether the event may proceed; on false the disposition carries the 429
// and its Retry-After hint. A sink without admission control admits
// everything.
func (s *Sink) Admit(home string) (d Disposition, ok bool) {
	if s.admission == nil {
		return Disposition{}, true
	}
	retry, err := s.admission.Admit(home)
	if err != nil {
		return Disposition{
			Status:     http.StatusTooManyRequests,
			RetryAfter: RetrySeconds(retry),
			Err:        err,
		}, false
	}
	return Disposition{}, true
}

// Deliver decodes ev's body (the caller has filled ev.Body from its own
// transport buffer or ReadBody) and posts it into the sink's poster. It
// takes ownership of ev unconditionally: on success the poster releases it
// after the home applies it, on failure Deliver releases it before
// returning. The steady-state success path does not allocate.
func (s *Sink) Deliver(home string, ev *Event) Disposition {
	var im *obs.IngestMetrics
	var t0 time.Time
	if s.metrics != nil {
		im = s.metrics.IngestShard(home)
		t0 = time.Now()
	}
	if err := ev.Decode(ev.Body); err != nil {
		ev.Release()
		if im != nil {
			im.DecodeErrors.Inc()
		}
		return Disposition{Status: http.StatusBadRequest, Err: err}
	}
	if im != nil {
		im.DecodeNs.Observe(uint64(time.Since(t0)))
		im.EventsDecoded.Inc()
	}
	var err error
	sync := ev.Sync
	if sync {
		err = s.poster.PostEventFastSync(home, ev)
	} else {
		err = s.poster.PostEventFast(home, ev)
	}
	if err != nil {
		ev.Release()
		d := Disposition{Status: s.status(err), Err: err}
		if s.retry != nil {
			d.RetryAfter = s.retry(err)
		}
		return d
	}
	if sync {
		return Disposition{Status: http.StatusOK}
	}
	return Disposition{Status: http.StatusAccepted}
}

// ServeHTTP handles one event post. Status contract (kept in lockstep with
// the oracle handler): 200 for sync posts (evaluation completed before the
// response), 202 for async (queued), 400 malformed body, 413 oversized,
// 429 shed by admission control with Retry-After in whole seconds.
func (s *Sink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	home := r.PathValue("home")
	if home == "" {
		writeJSONError(w, http.StatusNotFound, "missing home")
		return
	}
	if d, ok := s.Admit(home); !ok {
		s.respond(w, d)
		return
	}
	if r.ContentLength > s.maxBody {
		writeJSONError(w, http.StatusRequestEntityTooLarge, ErrBodyTooLarge.Error())
		return
	}
	ev := AcquireEvent()
	if err := ev.ReadBody(r.Body, s.maxBody); err != nil {
		ev.Release()
		if errors.Is(err, ErrBodyTooLarge) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}
	s.respond(w, s.Deliver(home, ev))
}

// respond renders a disposition onto a net/http response.
func (s *Sink) respond(w http.ResponseWriter, d Disposition) {
	if d.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfter))
	}
	if d.Err != nil {
		writeJSONError(w, d.Status, d.Err.Error())
		return
	}
	w.WriteHeader(d.Status)
}

// writeJSONError emits the same {"error": "..."} shape as the stock fleet
// handler, without encoding/json.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(AppendJSONError(make([]byte, 0, len(msg)+16), msg))
}

// AppendJSONError appends the {"error":"..."}\n body shape shared by every
// event transport to buf and returns it. Messages are sentinel errors and
// decoder offsets, so only quotes, backslashes and control bytes need
// escaping.
func AppendJSONError(buf []byte, msg string) []byte {
	buf = append(buf, `{"error":"`...)
	for i := 0; i < len(msg); i++ {
		switch c := msg[i]; {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, `\u00`...)
			const hex = "0123456789abcdef"
			buf = append(buf, hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	buf = append(buf, '"', '}', '\n')
	return buf
}
