package ingest

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Poster is the hub-side surface the sink posts into. fleet.Hub implements
// it. Ownership: a nil error means the poster took the event and will
// Release it after the home applies it; on error the sink still owns it.
type Poster interface {
	// PostEventFast enqueues ev for home and returns without waiting.
	PostEventFast(home string, ev *Event) error
	// PostEventFastSync enqueues ev and blocks until the home has evaluated
	// it and flushed.
	PostEventFastSync(home string, ev *Event) error
}

// DefaultMaxBody caps event bodies when WithMaxBody is not given. Event
// payloads are small (a device, a location, a handful of vars); 64 KiB
// leaves two orders of magnitude of headroom.
const DefaultMaxBody = 64 << 10

// Sink is the fast handler for POST /fleet/homes/{home}/events: pooled
// buffers, the streaming decoder, and admission control — no net/http
// request-scoped allocations beyond what the server itself makes, and no
// encoding/json. Register it on the hot route; keep the stock handler
// elsewhere as the correctness oracle.
type Sink struct {
	poster    Poster
	admission *Admission   // nil = admit everything
	metrics   *obs.Metrics // nil = unobserved; stripes chosen by home hash
	maxBody   int64
	status    func(error) int // maps poster errors to HTTP statuses
	retry     func(error) int // maps poster errors to Retry-After seconds (0 = none)
}

// SinkOption configures NewSink.
type SinkOption interface{ applySink(*Sink) }

type sinkOptionFunc func(*Sink)

func (f sinkOptionFunc) applySink(s *Sink) { f(s) }

// WithMaxBody overrides the event-body byte cap.
func WithMaxBody(n int64) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.maxBody = n })
}

// WithAdmission gates posts behind a; nil disables admission control.
func WithAdmission(a *Admission) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.admission = a })
}

// WithSinkMetrics records decode counts and latency into m, striped by the
// same home hash the hub shards on (a home's transport metrics land on its
// owning shard's block). Nil leaves the sink unobserved.
func WithSinkMetrics(m *obs.Metrics) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.metrics = m })
}

// WithStatusMapper overrides how poster errors map to HTTP status codes
// (fleet wires its sentinel-error table so the sink and the oracle handler
// answer identically).
func WithStatusMapper(f func(error) int) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.status = f })
}

// WithRetryHinter adds a Retry-After header (f's result, whole seconds; 0
// suppresses the header) to poster-error responses — how a sealed-for-
// migration or store-degraded home tells clients when to come back.
func WithRetryHinter(f func(error) int) SinkOption {
	return sinkOptionFunc(func(s *Sink) { s.retry = f })
}

// NewSink builds the fast event handler in front of p.
func NewSink(p Poster, opts ...SinkOption) *Sink {
	s := &Sink{poster: p, maxBody: DefaultMaxBody, status: defaultStatus}
	for _, o := range opts {
		o.applySink(s)
	}
	return s
}

func defaultStatus(error) int { return http.StatusInternalServerError }

// Admission exposes the sink's admission controller (nil when admission is
// disabled) so the metrics endpoint can scrape shed counters without a
// parallel plumbing path.
func (s *Sink) Admission() *Admission { return s.admission }

// ServeHTTP handles one event post. Status contract (kept in lockstep with
// the oracle handler): 200 for sync posts (evaluation completed before the
// response), 202 for async (queued), 400 malformed body, 413 oversized,
// 429 shed by admission control with Retry-After in whole seconds.
func (s *Sink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	home := r.PathValue("home")
	if home == "" {
		writeJSONError(w, http.StatusNotFound, "missing home")
		return
	}
	if s.admission != nil {
		if retry, err := s.admission.Admit(home); err != nil {
			w.Header().Set("Retry-After", strconv.Itoa(RetrySeconds(retry)))
			writeJSONError(w, http.StatusTooManyRequests, err.Error())
			return
		}
	}
	if r.ContentLength > s.maxBody {
		writeJSONError(w, http.StatusRequestEntityTooLarge, ErrBodyTooLarge.Error())
		return
	}
	ev := AcquireEvent()
	if err := ev.ReadBody(r.Body, s.maxBody); err != nil {
		ev.Release()
		if errors.Is(err, ErrBodyTooLarge) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}
	var im *obs.IngestMetrics
	var t0 time.Time
	if s.metrics != nil {
		im = s.metrics.IngestShard(home)
		t0 = time.Now()
	}
	if err := ev.Decode(ev.Body); err != nil {
		ev.Release()
		if im != nil {
			im.DecodeErrors.Inc()
		}
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if im != nil {
		im.DecodeNs.Observe(uint64(time.Since(t0)))
		im.EventsDecoded.Inc()
	}
	var err error
	sync := ev.Sync
	if sync {
		err = s.poster.PostEventFastSync(home, ev)
	} else {
		err = s.poster.PostEventFast(home, ev)
	}
	if err != nil {
		ev.Release()
		if s.retry != nil {
			if secs := s.retry(err); secs > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
		}
		writeJSONError(w, s.status(err), err.Error())
		return
	}
	if sync {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
}

// writeJSONError emits the same {"error": "..."} shape as the stock fleet
// handler, without encoding/json: messages here are sentinel errors and
// decoder offsets, so only quote and backslash need escaping.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf := make([]byte, 0, len(msg)+16)
	buf = append(buf, `{"error":"`...)
	for i := 0; i < len(msg); i++ {
		switch c := msg[i]; {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, `\u00`...)
			const hex = "0123456789abcdef"
			buf = append(buf, hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	buf = append(buf, `"}`...)
	buf = append(buf, '\n')
	w.Write(buf)
}
