package ingest

import (
	"fmt"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// Decode parses data as one JSON event body into e, resetting any previously
// decoded fields. The decoder is a single forward scan with no intermediate
// allocation: clean string segments alias data, and only escapes or invalid
// UTF-8 are rewritten into the event's scratch arena (invalid sequences
// become U+FFFD, as encoding/json coerces them). Steady-state event shapes —
// ASCII, escape-free — decode with zero heap allocations.
//
// Semantics deliberately mirror json.Decoder.Decode into the oracle
// handler's request struct: field names match ASCII-case-insensitively,
// null leaves a field untouched (but records a vars key with an empty
// value), duplicate keys overwrite, unknown fields are validated and
// skipped, a top-level null is an empty event, and bytes after the first
// top-level value are ignored. The fuzz and randomized equivalence tests
// hold the two decoders to the same outcome on the same body bytes.
func (e *Event) Decode(data []byte) error {
	e.DeviceType, e.Name, e.Location = nil, nil, nil
	e.Vars = e.Vars[:0]
	e.Sync = false
	e.scratch = e.scratch[:0]
	p := parser{data: data, ev: e}
	return p.top()
}

// SyntaxError reports where and why decoding failed; the transport maps it
// to 400.
type SyntaxError struct {
	Off int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ingest: invalid event body at offset %d: %s", e.Off, e.Msg)
}

// maxNestingDepth bounds skipped unknown-field values, mirroring
// encoding/json's nesting limit.
const maxNestingDepth = 10000

type parser struct {
	data []byte
	pos  int
	ev   *Event
}

func (p *parser) errf(msg string) error {
	return &SyntaxError{Off: p.pos, Msg: msg}
}

func (p *parser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.data) || p.data[p.pos] != c {
		return p.errf("expected " + string(rune(c)))
	}
	p.pos++
	return nil
}

func (p *parser) lit(s string) error {
	if len(p.data)-p.pos < len(s) || string(p.data[p.pos:p.pos+len(s)]) != s {
		return p.errf("invalid literal")
	}
	p.pos += len(s)
	return nil
}

func (p *parser) top() error {
	p.skipWS()
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of body")
	}
	if p.data[p.pos] == 'n' {
		// A top-level null decodes to the zero event, like encoding/json.
		return p.lit("null")
	}
	if p.data[p.pos] != '{' {
		return p.errf("event body must be a JSON object")
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		key, err := p.str()
		if err != nil {
			return err
		}
		p.skipWS()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.skipWS()
		switch {
		case foldEq(key, "devicetype"):
			err = p.strField(&p.ev.DeviceType)
		case foldEq(key, "name"):
			err = p.strField(&p.ev.Name)
		case foldEq(key, "location"):
			err = p.strField(&p.ev.Location)
		case foldEq(key, "vars"):
			err = p.vars()
		case foldEq(key, "sync"):
			err = p.boolField(&p.ev.Sync)
		default:
			err = p.skipValue(0)
		}
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.data) {
			return p.errf("unexpected end of body")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.errf("expected ',' or '}' after object member")
		}
	}
}

// strField assigns a string member; null leaves the field as it was.
func (p *parser) strField(dst *[]byte) error {
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		return p.lit("null")
	}
	s, err := p.str()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

// boolField assigns a boolean member; null leaves the field as it was.
func (p *parser) boolField(dst *bool) error {
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of body")
	}
	switch p.data[p.pos] {
	case 't':
		if err := p.lit("true"); err != nil {
			return err
		}
		*dst = true
		return nil
	case 'f':
		if err := p.lit("false"); err != nil {
			return err
		}
		*dst = false
		return nil
	case 'n':
		return p.lit("null")
	default:
		return p.errf("expected boolean")
	}
}

// vars parses the {"key":"value",...} variable object. Values must be
// strings (or null, recorded as an empty value); anything else is the same
// type error the oracle's map[string]string raises.
func (p *parser) vars() error {
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of body")
	}
	if p.data[p.pos] == 'n' {
		// null sets a map field to nil (unlike string/bool fields, which it
		// leaves untouched) — discard any vars decoded so far.
		if err := p.lit("null"); err != nil {
			return err
		}
		p.ev.Vars = p.ev.Vars[:0]
		return nil
	}
	if p.data[p.pos] != '{' {
		return p.errf("vars must be an object of string values")
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		k, err := p.str()
		if err != nil {
			return err
		}
		p.skipWS()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.skipWS()
		var v []byte
		if p.pos < len(p.data) && p.data[p.pos] == 'n' {
			if err := p.lit("null"); err != nil {
				return err
			}
		} else if v, err = p.str(); err != nil {
			return err
		}
		p.ev.setVar(k, v)
		p.skipWS()
		if p.pos >= len(p.data) {
			return p.errf("unexpected end of body")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.errf("expected ',' or '}' in vars")
		}
	}
}

// str parses a JSON string and returns its decoded bytes. The fast path is
// one scan that aliases the body; escapes divert to strSlow and non-ASCII
// segments are UTF-8-validated (invalid sequences coerced to U+FFFD).
func (p *parser) str() ([]byte, error) {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return nil, p.errf("expected string")
	}
	p.pos++
	start := p.pos
	ascii := true
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			s := p.data[start:p.pos]
			p.pos++
			if !ascii && !utf8.Valid(s) {
				return p.fixUTF8(s), nil
			}
			return s, nil
		case c == '\\':
			return p.strSlow(start)
		case c < 0x20:
			return nil, p.errf("control character in string")
		default:
			if c >= utf8.RuneSelf {
				ascii = false
			}
			p.pos++
		}
	}
	return nil, p.errf("unterminated string")
}

// strSlow finishes a string containing escapes, unescaping into the scratch
// arena. start is the offset of the string's first content byte.
func (p *parser) strSlow(start int) ([]byte, error) {
	base := len(p.ev.scratch)
	sc := append(p.ev.scratch, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			p.ev.scratch = sc
			s := sc[base:]
			if !utf8.Valid(s) {
				return p.fixUTF8(s), nil
			}
			return s, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, p.errf("unterminated string")
			}
			esc := p.data[p.pos]
			p.pos++
			switch esc {
			case '"', '\\', '/':
				sc = append(sc, esc)
			case 'b':
				sc = append(sc, '\b')
			case 'f':
				sc = append(sc, '\f')
			case 'n':
				sc = append(sc, '\n')
			case 'r':
				sc = append(sc, '\r')
			case 't':
				sc = append(sc, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// Try to combine with a following \uXXXX low surrogate;
					// a lone surrogate becomes U+FFFD and the next escape is
					// reprocessed on its own, matching encoding/json.
					dec := rune(unicode.ReplacementChar)
					if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						lo, err := p.hex4()
						if err != nil {
							return nil, err
						}
						if d := utf16.DecodeRune(r, lo); d != unicode.ReplacementChar {
							dec = d
						} else {
							p.pos = save
						}
					}
					sc = utf8.AppendRune(sc, dec)
				} else {
					sc = utf8.AppendRune(sc, r)
				}
			default:
				return nil, p.errf("invalid escape character")
			}
		case c < 0x20:
			return nil, p.errf("control character in string")
		default:
			sc = append(sc, c)
			p.pos++
		}
	}
	return nil, p.errf("unterminated string")
}

// fixUTF8 rewrites s into the scratch arena with invalid UTF-8 sequences
// replaced by U+FFFD, the coercion encoding/json applies to string values.
func (p *parser) fixUTF8(s []byte) []byte {
	base := len(p.ev.scratch)
	for len(s) > 0 {
		r, size := utf8.DecodeRune(s)
		p.ev.scratch = utf8.AppendRune(p.ev.scratch, r)
		s = s[size:]
	}
	return p.ev.scratch[base:]
}

func (p *parser) hex4() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.errf("invalid \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case '0' <= c && c <= '9':
			r = r<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.errf("invalid \\u escape")
		}
	}
	p.pos += 4
	return r, nil
}

// skipValue validates and discards one JSON value of any type (unknown
// top-level fields), enforcing the same syntax the oracle's scanner does.
func (p *parser) skipValue(depth int) error {
	if depth > maxNestingDepth {
		return p.errf("exceeded max nesting depth")
	}
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of body")
	}
	switch c := p.data[p.pos]; {
	case c == '"':
		return p.skipString()
	case c == '{':
		p.pos++
		p.skipWS()
		if p.pos < len(p.data) && p.data[p.pos] == '}' {
			p.pos++
			return nil
		}
		for {
			p.skipWS()
			if err := p.skipString(); err != nil {
				return err
			}
			p.skipWS()
			if err := p.expect(':'); err != nil {
				return err
			}
			p.skipWS()
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.data) {
				return p.errf("unexpected end of body")
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case '}':
				p.pos++
				return nil
			default:
				return p.errf("expected ',' or '}'")
			}
		}
	case c == '[':
		p.pos++
		p.skipWS()
		if p.pos < len(p.data) && p.data[p.pos] == ']' {
			p.pos++
			return nil
		}
		for {
			p.skipWS()
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.data) {
				return p.errf("unexpected end of body")
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return p.errf("expected ',' or ']'")
			}
		}
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	case c == '-' || ('0' <= c && c <= '9'):
		return p.skipNumber()
	default:
		return p.errf("unexpected character")
	}
}

// skipString validates a string without unescaping it.
func (p *parser) skipString() error {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return p.errf("expected string")
	}
	p.pos++
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			p.pos++
			return nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return p.errf("unterminated string")
			}
			switch p.data[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				if _, err := p.hex4(); err != nil {
					return err
				}
			default:
				return p.errf("invalid escape character")
			}
		case c < 0x20:
			return p.errf("control character in string")
		default:
			p.pos++
		}
	}
	return p.errf("unterminated string")
}

// skipNumber validates a number against the JSON grammar (no leading zeros,
// digits required around '.' and after an exponent sign).
func (p *parser) skipNumber() error {
	if p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos < len(p.data) && p.data[p.pos] == '0':
		p.pos++
	case p.pos < len(p.data) && '1' <= p.data[p.pos] && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && isDigit(p.data[p.pos]) {
			p.pos++
		}
	default:
		return p.errf("invalid number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.data) || !isDigit(p.data[p.pos]) {
			return p.errf("invalid number")
		}
		for p.pos < len(p.data) && isDigit(p.data[p.pos]) {
			p.pos++
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || !isDigit(p.data[p.pos]) {
			return p.errf("invalid number")
		}
		for p.pos < len(p.data) && isDigit(p.data[p.pos]) {
			p.pos++
		}
	}
	return nil
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// foldEq reports whether key equals lower under ASCII case folding — the
// same (post-Go-1.20) field matching encoding/json applies. lower must
// already be lowercase.
func foldEq(key []byte, lower string) bool {
	if len(key) != len(lower) {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}
