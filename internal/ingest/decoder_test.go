package ingest

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// oracleEvent mirrors the stock fleet handler's request struct; the decoder
// must observe exactly what encoding/json would decode into it.
type oracleEvent struct {
	DeviceType string            `json:"deviceType"`
	Name       string            `json:"name"`
	Location   string            `json:"location"`
	Vars       map[string]string `json:"vars"`
	Sync       bool              `json:"sync"`
}

// decodeOracle runs the oracle path: json.Decoder.Decode, as the stock
// handler does (NOT Unmarshal — the Decoder ignores trailing bytes after the
// first value, and the fast decoder mirrors that).
func decodeOracle(body []byte) (oracleEvent, error) {
	var req oracleEvent
	err := json.NewDecoder(bytes.NewReader(body)).Decode(&req)
	return req, err
}

func normVars(ev *Event) map[string]string {
	m := map[string]string{}
	for _, v := range ev.Vars {
		m[string(v.Key)] = string(v.Value)
	}
	return m
}

func normOracleVars(vars map[string]string) map[string]string {
	if vars == nil {
		return map[string]string{}
	}
	return vars
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// checkEquivalence decodes body on both paths and fails unless they agree on
// error-ness and, on success, on every observed field.
func checkEquivalence(t *testing.T, ev *Event, body []byte) {
	t.Helper()
	want, wantErr := decodeOracle(body)
	gotErr := ev.Decode(body)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("body %q: oracle err=%v, fast err=%v", body, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if got := string(ev.DeviceType); got != want.DeviceType {
		t.Errorf("body %q: deviceType = %q, oracle %q", body, got, want.DeviceType)
	}
	if got := string(ev.Name); got != want.Name {
		t.Errorf("body %q: name = %q, oracle %q", body, got, want.Name)
	}
	if got := string(ev.Location); got != want.Location {
		t.Errorf("body %q: location = %q, oracle %q", body, got, want.Location)
	}
	if ev.Sync != want.Sync {
		t.Errorf("body %q: sync = %v, oracle %v", body, ev.Sync, want.Sync)
	}
	if g, w := normVars(ev), normOracleVars(want.Vars); !mapsEqual(g, w) {
		t.Errorf("body %q: vars = %v, oracle %v", body, g, w)
	}
}

var decodeCases = []string{
	// Steady-state shapes.
	`{"deviceType":"thermometer","name":"living room sensor","location":"living room","vars":{"temperature":"21.5"}}`,
	`{"deviceType":"motion","name":"hall","location":"hall","vars":{"presence-alice":"hall"},"sync":true}`,
	`{"deviceType":"tv","name":"tv","location":"living room","vars":{"power":"1","event":"alice|watch tv"}}`,
	// Whitespace, ordering, empty members.
	"{}",
	" \t\r\n{ \"name\" : \"x\" } ",
	`{"vars":{}}`,
	`{"sync":false,"location":"kitchen"}`,
	// Case-insensitive field match (ASCII fold only).
	`{"DEVICETYPE":"a","NaMe":"b","LOCATION":"c","VARS":{"k":"v"},"SYNC":true}`,
	`{"devıcetype":"dotless-i must not match"}`,
	// Null semantics.
	`null`,
	`{"name":null}`,
	`{"name":"kept","name":null}`,
	`{"vars":null}`,
	`{"vars":{"a":"x"},"vars":null}`,
	`{"vars":null,"vars":{"a":"x"}}`,
	`{"vars":{"a":null}}`,
	`{"vars":{"a":"x","a":null}}`,
	`{"sync":null}`,
	`{"sync":true,"sync":null}`,
	// Duplicate keys overwrite / merge.
	`{"name":"a","name":"b"}`,
	`{"vars":{"k":"1","k":"2"}}`,
	`{"vars":{"a":"1"},"vars":{"b":"2"}}`,
	// Unknown fields are validated and skipped.
	`{"extra":[1,2,{"x":[true,null]}],"name":"after"}`,
	`{"extra":-12.5e+3}`,
	`{"extra":0.0}`,
	`{"unknown":"v","vars":{"k":"v"}}`,
	// Escapes and unicode.
	`{"name":"tab\tquote\"backslash\\slash\/"}`,
	`{"name":"Aé中"}`,
	`{"name":"😀"}`,
	`{"name":"\ud800"}`,
	`{"name":"\ud800\ud800"}`,
	`{"name":"\ud800A"}`,
	`{"name":"\udc00😀"}`,
	`{"name":"café ☕"}`,
	`{"vars":{"k":"v"}}`,
	// Invalid UTF-8 coerced to U+FFFD.
	"{\"name\":\"a\xffb\"}",
	"{\"name\":\"\xc3\x28\"}",
	"{\"vars\":{\"k\xf0\x28\":\"v\xed\xa0\x80\"}}",
	// Trailing bytes after the first value are ignored (Decoder semantics).
	`{"name":"x"} trailing garbage`,
	`null!!!`,
	`{} {"name":"second value ignored"}`,
	// Errors: malformed syntax.
	``,
	`   `,
	`{`,
	`{"name"`,
	`{"name":}`,
	`{"name":"x",}`,
	`{"name":"x"`,
	`{,}`,
	`{"a":1e}`,
	`{"a":01}`,
	`{"a":-}`,
	`{"a":.5}`,
	`{"a":1.}`,
	`{"a":+1}`,
	`{"name":"unterminated`,
	`{"name":"bad \x escape"}`,
	`{"name":"bad \u00zz"}`,
	"{\"name\":\"ctrl \x01\"}",
	`nul`,
	`tru`,
	// Errors: type mismatches.
	`5`,
	`"string"`,
	`[1]`,
	`true`,
	`{"name":5}`,
	`{"name":true}`,
	`{"name":["x"]}`,
	`{"sync":"true"}`,
	`{"sync":1}`,
	`{"vars":"notobj"}`,
	`{"vars":["a"]}`,
	`{"vars":{"k":5}}`,
	`{"vars":{"k":{"nested":"v"}}}`,
	`{"vars":{"k":true}}`,
}

func TestDecodeEquivalenceTable(t *testing.T) {
	ev := AcquireEvent()
	defer ev.Release()
	for _, body := range decodeCases {
		checkEquivalence(t, ev, []byte(body))
	}
}

func TestDecodeDeepNesting(t *testing.T) {
	ev := AcquireEvent()
	defer ev.Release()
	// Within the limit: skipped cleanly.
	ok := `{"x":` + strings.Repeat("[", 100) + strings.Repeat("]", 100) + `}`
	if err := ev.Decode([]byte(ok)); err != nil {
		t.Fatalf("depth-100 unknown field: %v", err)
	}
	// Far beyond it: rejected rather than exhausting the stack.
	deep := `{"x":` + strings.Repeat("[", maxNestingDepth+10) + strings.Repeat("]", maxNestingDepth+10) + `}`
	if err := ev.Decode([]byte(deep)); err == nil {
		t.Fatal("expected nesting-depth error")
	}
}

func TestDecodeReuse(t *testing.T) {
	// A pooled event must not leak fields or scratch between decodes.
	ev := AcquireEvent()
	defer ev.Release()
	if err := ev.Decode([]byte(`{"deviceType":"a","name":"esc\n","location":"c","vars":{"k":"v"},"sync":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := ev.Decode([]byte(`{"name":"only"}`)); err != nil {
		t.Fatal(err)
	}
	if ev.DeviceType != nil || ev.Location != nil || len(ev.Vars) != 0 || ev.Sync {
		t.Fatalf("stale fields survived reuse: %+v", ev)
	}
	if string(ev.Name) != "only" {
		t.Fatalf("name = %q", ev.Name)
	}
}

// TestDecodeRandomized fuzzes the decoder against the oracle with bodies
// assembled from grammar fragments that exercise every branch.
func TestDecodeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := []string{"deviceType", "name", "location", "vars", "sync", "NAME", "Vars", "unknown", "devicetype", ""}
	strs := []string{`"a"`, `""`, `"café"`, `"\ud800"`, `"😀"`, "\"\xff\"", `"with space"`, `"q\""`, `null`}
	vals := []string{`"v"`, `null`, `true`, `false`, `5`, `-1.5e3`, `[1,"x"]`, `{"n":[]}`, `01`, `1.`, `{`, `"unterminated`}
	ev := AcquireEvent()
	defer ev.Release()
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.Reset()
		sb.WriteByte('{')
		n := rng.Intn(5)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			k := keys[rng.Intn(len(keys))]
			sb.WriteString(`"` + k + `":`)
			switch k {
			case "vars", "Vars":
				if rng.Intn(4) == 0 {
					sb.WriteString(vals[rng.Intn(len(vals))])
				} else {
					sb.WriteByte('{')
					m := rng.Intn(3)
					for x := 0; x < m; x++ {
						if x > 0 {
							sb.WriteByte(',')
						}
						sb.WriteString(`"k` + string(rune('a'+rng.Intn(3))) + `":`)
						sb.WriteString(strs[rng.Intn(len(strs))])
					}
					sb.WriteByte('}')
				}
			case "sync":
				sb.WriteString([]string{`true`, `false`, `null`, `"x"`, `1`}[rng.Intn(5)])
			default:
				if rng.Intn(4) == 0 {
					sb.WriteString(vals[rng.Intn(len(vals))])
				} else {
					sb.WriteString(strs[rng.Intn(len(strs))])
				}
			}
		}
		sb.WriteByte('}')
		body := []byte(sb.String())
		// Occasionally truncate or append garbage.
		switch rng.Intn(10) {
		case 0:
			if len(body) > 1 {
				body = body[:rng.Intn(len(body))]
			}
		case 1:
			body = append(body, " x"...)
		}
		checkEquivalence(t, ev, body)
	}
}

// FuzzDecodeEquivalence holds the fast decoder to json.Decoder semantics on
// arbitrary bytes.
func FuzzDecodeEquivalence(f *testing.F) {
	for _, c := range decodeCases {
		f.Add([]byte(c))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		ev := AcquireEvent()
		defer ev.Release()
		checkEquivalence(t, ev, body)
	})
}

var benchBody = []byte(`{"deviceType":"thermometer","name":"living room sensor","location":"living room","vars":{"temperature":"21.5","humidity":"40"},"sync":false}`)

func TestDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	ev := AcquireEvent()
	defer ev.Release()
	allocs := testing.AllocsPerRun(300, func() {
		if err := ev.Decode(benchBody); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDecodeEvent is the CI allocation gate: the steady-state event
// shape must decode with 0 allocs/op — with ingest metrics recording, as the
// instrumented sink path does.
func BenchmarkDecodeEvent(b *testing.B) {
	ev := AcquireEvent()
	defer ev.Release()
	m := obs.New(4)
	im := m.IngestShard("home-000042")
	b.ReportAllocs()
	b.SetBytes(int64(len(benchBody)))
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := ev.Decode(benchBody); err != nil {
			b.Fatal(err)
		}
		im.DecodeNs.Observe(uint64(time.Since(t0)))
		im.EventsDecoded.Inc()
	}
}

func BenchmarkDecodeEventOracle(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchBody)))
	for i := 0; i < b.N; i++ {
		var req oracleEvent
		if err := json.NewDecoder(bytes.NewReader(benchBody)).Decode(&req); err != nil {
			b.Fatal(err)
		}
	}
}
