package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vocab"
)

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("cadel: parse error at offset %d: %s", e.Pos, e.Msg)
}

// ErrParse can be matched with errors.Is against any parse failure.
var ErrParse = errors.New("cadel: parse error")

// Is lets callers match parse errors with errors.Is(err, ErrParse).
func (e *ParseError) Is(target error) bool { return target == ErrParse }

// Parse parses one CADEL command (RuleDef, CondDef or ConfDef) against the
// given lexicon.
func Parse(input string, lex *vocab.Lexicon) (Command, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{lex: lex, toks: toks}
	cmd, err := p.parseCommand()
	if err != nil {
		return nil, err
	}
	p.skipStops()
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Text)
	}
	return cmd, nil
}

// ParseCondExpr parses a standalone condition expression. Used when
// expanding user-defined condition words whose definitions are stored as
// source text.
func ParseCondExpr(input string, lex *vocab.Lexicon) (CondExpr, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{lex: lex, toks: toks}
	expr, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	p.skipStops()
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Text)
	}
	return expr, nil
}

// ParseConfItems parses a standalone RowOfConfs ("25 degrees of temperature
// setting and ..."). Used when expanding user-defined configuration words.
func ParseConfItems(input string, lex *vocab.Lexicon) ([]ConfItem, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{lex: lex, toks: toks}
	items, err := p.parseConfItems(false)
	if err != nil {
		return nil, err
	}
	p.skipStops()
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Text)
	}
	return items, nil
}

type parser struct {
	lex  *vocab.Lexicon
	toks []Token
	pos  int
}

func (p *parser) cur() Token          { return p.toks[p.pos] }
func (p *parser) at(t TokenType) bool { return p.cur().Type == t }
func (p *parser) next()               { p.pos++ }
func (p *parser) save() int           { return p.pos }
func (p *parser) restore(mark int)    { p.pos = mark }

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) word() string {
	if p.at(TokWord) {
		return p.cur().Text
	}
	return ""
}

// eatWord consumes the current token if it is the given word.
func (p *parser) eatWord(w string) bool {
	if p.word() == w {
		p.next()
		return true
	}
	return false
}

func (p *parser) skipCommas() {
	for p.at(TokComma) {
		p.next()
	}
}

func (p *parser) skipStops() {
	for p.at(TokStop) || p.at(TokComma) {
		p.next()
	}
}

// wordsAhead returns up to max consecutive word-token texts starting at pos.
func (p *parser) wordsAhead(max int) []string {
	out := make([]string, 0, max)
	for i := p.pos; i < len(p.toks) && len(out) < max; i++ {
		if p.toks[i].Type != TokWord {
			break
		}
		out = append(out, p.toks[i].Text)
	}
	return out
}

// matchLex matches the longest lexicon phrase of the given kinds at the
// current position and consumes it.
func (p *parser) matchLex(kinds ...vocab.Kind) (vocab.Entry, bool) {
	e, n, ok := p.lex.MatchLongest(p.wordsAhead(6), kinds...)
	if !ok {
		return vocab.Entry{}, false
	}
	p.pos += n
	return e, true
}

// peekPhrase reports whether the upcoming word tokens begin with phrase.
func (p *parser) peekPhrase(phrase string) bool {
	want := strings.Fields(phrase)
	have := p.wordsAhead(len(want))
	if len(have) < len(want) {
		return false
	}
	for i := range want {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}

func (p *parser) eatPhrase(phrase string) bool {
	if !p.peekPhrase(phrase) {
		return false
	}
	p.pos += len(strings.Fields(phrase))
	return true
}

func (p *parser) parseCommand() (Command, error) {
	switch {
	case p.eatPhrase("let's call the condition that"):
		expr, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		name, err := p.collectName()
		if err != nil {
			return nil, err
		}
		return &CondDef{Expr: expr, Name: name}, nil
	case p.eatPhrase("let's call the configuration that"):
		items, err := p.parseConfItems(false)
		if err != nil {
			return nil, err
		}
		name, err := p.collectName()
		if err != nil {
			return nil, err
		}
		return &ConfDef{Confs: items, Name: name}, nil
	default:
		return p.parseRuleDef()
	}
}

// collectName gathers the trailing words of a CondDef/ConfDef as the new
// word's name.
func (p *parser) collectName() (string, error) {
	var words []string
	for p.at(TokWord) {
		words = append(words, p.cur().Text)
		p.next()
	}
	if len(words) == 0 {
		return "", p.errorf("expected a name for the new word")
	}
	return strings.Join(words, " "), nil
}

func (p *parser) parseRuleDef() (*RuleDef, error) {
	rule := &RuleDef{}

	pre, err := p.tryParseCondClause()
	if err != nil {
		return nil, err
	}
	rule.Pre = pre
	p.skipCommas()
	p.eatWord("then")
	p.skipCommas()

	verb, ok := p.matchLex(vocab.KindVerb)
	if !ok {
		return nil, p.errorf("expected a verb (e.g. \"turn on\"), got %q", p.cur().Text)
	}
	rule.Verb = verb.Canon
	rule.VerbText = verb.Phrase

	obj, err := p.parseObject()
	if err != nil {
		return nil, err
	}
	rule.Object = obj

	if p.eatWord("with") {
		items, err := p.parseConfItems(true)
		if err != nil {
			return nil, err
		}
		rule.Config = items
	}

	p.skipCommas()
	post, err := p.tryParseCondClause()
	if err != nil {
		return nil, err
	}
	rule.Post = post
	return rule, nil
}

// tryParseCondClause parses "[TimeSpec] if/when CondExpr" or a bare TimeSpec.
// It returns nil (no error) when the input does not start a clause.
func (p *parser) tryParseCondClause() (*CondClause, error) {
	mark := p.save()
	ts := p.tryParseTimeSpec()
	p.skipCommas()
	kw := p.word()
	if kw == "if" || kw == "when" {
		p.next()
		expr, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		p.eatWord("then")
		return &CondClause{Keyword: kw, Time: ts, Expr: expr}, nil
	}
	if ts != nil {
		return &CondClause{Time: ts}, nil
	}
	p.restore(mark)
	return nil, nil
}

func (p *parser) parseObject() (Object, error) {
	var obj Object
	switch p.word() {
	case "a", "an", "the":
		obj.Article = p.word()
		p.next()
	}
	boundary := map[string]bool{
		"with": true, "if": true, "when": true, "at": true, "in": true,
		"until": true, "after": true, "for": true, "and": true, "or": true,
		"then": true, "before": true, "during": true,
	}
	var words []string
	for p.at(TokWord) && !boundary[p.word()] && len(words) < 6 {
		words = append(words, p.word())
		p.next()
	}
	if len(words) == 0 {
		return obj, p.errorf("expected a device name, got %q", p.cur().Text)
	}
	obj.Device = strings.Join(words, " ")

	// Optional location modifier: "at the hall", "in the living room".
	if p.word() == "at" || p.word() == "in" {
		mark := p.save()
		p.next()
		p.eatArticle()
		if loc, ok := p.parsePlace(); ok {
			obj.Location = loc
		} else {
			p.restore(mark)
		}
	}
	return obj, nil
}

func (p *parser) eatArticle() {
	switch p.word() {
	case "a", "an", "the":
		p.next()
	}
}

// parsePlace matches a known place from the lexicon, or consumes up to three
// words as an ad-hoc place name.
func (p *parser) parsePlace() (string, bool) {
	if e, ok := p.matchLex(vocab.KindPlace); ok {
		return e.Canon, true
	}
	stop := map[string]bool{
		"and": true, "or": true, "if": true, "when": true, "for": true,
		"after": true, "until": true, "with": true, "then": true, "is": true,
		"are": true, "to": true, "before": true,
	}
	var words []string
	for p.at(TokWord) && !stop[p.word()] && len(words) < 3 {
		words = append(words, p.word())
		p.next()
	}
	if len(words) == 0 {
		return "", false
	}
	return strings.Join(words, " "), true
}

// ---- condition expressions ----

func (p *parser) parseCondExpr() (CondExpr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.word() == "or" {
		mark := p.save()
		p.next()
		right, err := p.parseAndExpr()
		if err != nil {
			p.restore(mark)
			break
		}
		left = &BinaryExpr{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (CondExpr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.word() == "and" {
		mark := p.save()
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			// Backtrack: the "and" belongs to an enclosing construct
			// (e.g. the name of a CondDef like "hot and stuffy").
			p.restore(mark)
			break
		}
		left = &BinaryExpr{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (CondExpr, error) {
	if p.at(TokLParen) {
		p.next()
		expr, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		if !p.at(TokRParen) {
			return nil, p.errorf("expected ')', got %q", p.cur().Text)
		}
		p.next()
		return expr, nil
	}
	// User-defined condition word.
	if e, ok := p.matchLex(vocab.KindCondWord); ok {
		uc := &UserCond{Name: e.Phrase}
		uc.Period, uc.Time = p.parseCondSuffixes()
		return uc, nil
	}
	return p.parseCondAtom()
}

// parseCondSuffixes parses the optional [PeriodSpec] [TimeSpec] qualifiers in
// either order.
func (p *parser) parseCondSuffixes() (*PeriodSpec, *TimeSpec) {
	period := p.tryParsePeriodSpec()
	ts := p.tryParseTimeSpec()
	if period == nil {
		period = p.tryParsePeriodSpec()
	}
	return period, ts
}

func (p *parser) parseCondAtom() (CondExpr, error) {
	atom := &CondAtom{}

	switch p.word() {
	case "a", "an", "the":
		atom.Subject.Article = p.word()
		p.next()
	}

	switch p.word() {
	case "i":
		atom.Subject.Kind = SubMe
		p.next()
	case "someone", "somebody", "anyone", "anybody":
		atom.Subject.Kind = SubSomeone
		p.next()
	case "nobody":
		atom.Subject.Kind = SubNobody
		p.next()
	case "everyone", "everybody":
		atom.Subject.Kind = SubEveryone
		p.next()
	default:
		if p.eatWord("my") {
			atom.Subject.My = true
		}
		if err := p.parseSubjectWords(atom); err != nil {
			return nil, err
		}
	}

	state, err := p.parseState()
	if err != nil {
		return nil, err
	}
	atom.State = state
	p.classifySubject(atom)
	atom.Period, atom.Time = p.parseCondSuffixes()
	return atom, nil
}

// parseSubjectWords accumulates the subject name, stopping as soon as a
// state parse succeeds at the current position. It also handles an optional
// location modifier between the subject and its state ("temperature at the
// living room is higher than ...").
func (p *parser) parseSubjectWords(atom *CondAtom) error {
	var words []string
	for {
		// A location modifier ("temperature at the living room is ...") must
		// be tried before the state lookahead: a bare "at" would otherwise
		// match the presence state.
		if len(words) > 0 && (p.word() == "at" || p.word() == "in") {
			mark := p.save()
			p.next()
			p.eatArticle()
			if loc, ok := p.parsePlace(); ok && p.stateAhead() {
				atom.Subject.Location = loc
				break
			}
			p.restore(mark)
		}
		if len(words) > 0 && p.stateAhead() {
			break
		}
		if !p.at(TokWord) || len(words) >= 8 {
			return p.errorf("expected a condition state after %q, got %q",
				strings.Join(words, " "), p.cur().Text)
		}
		words = append(words, p.word())
		p.next()
	}
	atom.Subject.Name = strings.Join(words, " ")
	return nil
}

// stateAhead reports whether a state parse would succeed at the current
// position, without consuming input.
func (p *parser) stateAhead() bool {
	mark := p.save()
	_, err := p.parseState()
	p.restore(mark)
	return err == nil
}

func (p *parser) parseState() (State, error) {
	var st State
	switch p.word() {
	case "is", "are", "am":
		st.Be = p.word()
		p.next()
	}

	entry, ok := p.matchLex(vocab.KindState)
	if !ok {
		// "temperature is 25 degrees" — equality with a bare value.
		if st.Be != "" && p.at(TokNumber) {
			val, err := p.parseValue()
			if err != nil {
				return st, err
			}
			st.Kind = vocab.StateCompare
			st.Op = "eq"
			st.Text = "exactly"
			st.Value = &val
			return st, nil
		}
		return st, p.errorf("expected a state phrase, got %q", p.cur().Text)
	}

	st.Kind = vocab.StateKind(entry.MetaValue(vocab.MetaStateKind))
	st.Text = entry.Phrase
	switch st.Kind {
	case vocab.StateBool:
		st.Var = entry.MetaValue(vocab.MetaVar)
		st.Bool = entry.MetaValue(vocab.MetaBool) == "true"
	case vocab.StateCompare:
		st.Op = entry.MetaValue(vocab.MetaOp)
		val, err := p.parseValue()
		if err != nil {
			return st, err
		}
		st.Value = &val
	case vocab.StatePresence:
		p.eatArticle()
		place, ok := p.parsePlace()
		if !ok {
			return st, p.errorf("expected a place after %q", st.Text)
		}
		st.Place = place
	case vocab.StateArrival:
		st.Event = entry.MetaValue(vocab.MetaEvent)
	case vocab.StateOnAir:
		// Nothing further.
	default:
		return st, p.errorf("unknown state kind %q for %q", st.Kind, entry.Phrase)
	}
	return st, nil
}

// classifySubject resolves the subject kind once the state is known.
func (p *parser) classifySubject(atom *CondAtom) {
	s := &atom.Subject
	if s.Kind != 0 {
		return
	}
	if _, ok := p.lex.Lookup(vocab.KindPerson, s.Name); ok {
		s.Kind = SubPerson
		return
	}
	switch atom.State.Kind {
	case vocab.StateArrival, vocab.StatePresence:
		s.Kind = SubPerson
		return
	case vocab.StateOnAir:
		s.Kind = SubEvent
		return
	}
	if s.My {
		s.Kind = SubEvent
		return
	}
	if _, ok := p.lex.Lookup(vocab.KindEvent, s.Name); ok {
		s.Kind = SubEvent
		return
	}
	if _, ok := p.lex.Lookup(vocab.KindPlace, s.Name); ok {
		s.Kind = SubPlace
		return
	}
	s.Kind = SubDevice
}

// parseValue parses a number with an optional unit, or a single word value.
func (p *parser) parseValue() (Value, error) {
	if p.at(TokNumber) {
		v := Value{IsNumber: true, Number: p.cur().Num}
		p.next()
		if e, ok := p.matchLex(vocab.KindUnit); ok {
			v.Unit = e.MetaValue(vocab.MetaUnitCanon)
			v.UnitText = e.Phrase
		}
		return v, nil
	}
	if p.at(TokWord) {
		v := Value{Word: p.word()}
		p.next()
		return v, nil
	}
	return Value{}, p.errorf("expected a value, got %q", p.cur().Text)
}

// ---- time and period specs ----

var timePreps = map[string]bool{
	"after": true, "at": true, "until": true, "before": true,
	"in": true, "during": true,
}

// tryParseTimeSpec parses "<prep> <time-of-day>" and returns nil when the
// current position does not start one.
func (p *parser) tryParseTimeSpec() *TimeSpec {
	if !timePreps[p.word()] {
		return nil
	}
	mark := p.save()
	prep := p.word()
	p.next()
	p.eatArticle()
	tod, ok := p.parseTimeOfDay()
	if !ok {
		p.restore(mark)
		return nil
	}
	return &TimeSpec{Prep: prep, Time: tod}
}

// parseTimeOfDay parses "[every <weekday>] (hh:mm | N [am|pm|o'clock] |
// <period-name>)".
func (p *parser) parseTimeOfDay() (TimeOfDay, bool) {
	var tod TimeOfDay
	if p.eatWord("every") {
		e, ok := p.matchLex(vocab.KindWeekday)
		if !ok {
			return tod, false
		}
		tod.Every = e.Canon
	}
	switch {
	case p.at(TokTime):
		tod.Kind = TimeClock
		tod.Minutes = int(p.cur().Num)
		p.next()
		return tod, true
	case p.at(TokNumber):
		mark := p.save()
		h := int(p.cur().Num)
		if h < 0 || h > 23 || float64(h) != p.cur().Num {
			return tod, false
		}
		p.next()
		switch p.word() {
		case "pm":
			if h < 12 {
				h += 12
			}
			p.next()
		case "am":
			if h == 12 {
				h = 0
			}
			p.next()
		case "o'clock":
			p.next()
		default:
			// A bare number is only a time when a weekday was given
			// ("every monday 18" is odd English; require a marker).
			if tod.Every == "" {
				p.restore(mark)
				return tod, false
			}
		}
		tod.Kind = TimeClock
		tod.Minutes = h * 60
		return tod, true
	default:
		if e, ok := p.matchLex(vocab.KindPeriodName); ok {
			tod.Kind = TimePeriod
			tod.Name = e.Canon
			return tod, true
		}
		if tod.Every != "" {
			tod.Kind = TimeAllDay
			return tod, true
		}
		return tod, false
	}
}

// tryParsePeriodSpec parses "for N <unit> [after <time>]" or "from <time> to
// <time>". It returns nil when the current position does not start one.
func (p *parser) tryParsePeriodSpec() *PeriodSpec {
	mark := p.save()
	switch p.word() {
	case "for":
		p.next()
		if !p.at(TokNumber) {
			p.restore(mark)
			return nil
		}
		amount := p.cur().Num
		p.next()
		e, ok := p.matchLex(vocab.KindUnit)
		if !ok || e.MetaValue(vocab.MetaUnitCanon) != "second" {
			p.restore(mark)
			return nil
		}
		scale, err := strconv.ParseFloat(e.MetaValue(vocab.MetaScale), 64)
		if err != nil {
			scale = 1
		}
		ps := &PeriodSpec{
			Kind:     PeriodFor,
			Seconds:  amount * scale,
			Amount:   amount,
			UnitText: e.Phrase,
		}
		if p.word() == "after" {
			inner := p.save()
			p.next()
			p.eatArticle()
			if tod, ok := p.parseTimeOfDay(); ok {
				ps.Kind = PeriodAfter
				ps.After = &tod
			} else {
				p.restore(inner)
			}
		}
		return ps
	case "from":
		p.next()
		p.eatArticle()
		from, ok := p.parseTimeOfDay()
		if !ok {
			p.restore(mark)
			return nil
		}
		if !p.eatWord("to") {
			p.restore(mark)
			return nil
		}
		p.eatArticle()
		to, ok := p.parseTimeOfDay()
		if !ok {
			p.restore(mark)
			return nil
		}
		return &PeriodSpec{Kind: PeriodFromTo, From: &from, To: &to}
	default:
		return nil
	}
}

// ---- configurations ----

func (p *parser) parseConfItems(allowBare bool) ([]ConfItem, error) {
	first, err := p.parseConfItem(allowBare)
	if err != nil {
		return nil, err
	}
	items := []ConfItem{first}
	for p.word() == "and" {
		mark := p.save()
		p.next()
		item, err := p.parseConfItem(allowBare)
		if err != nil {
			p.restore(mark)
			break
		}
		items = append(items, item)
	}
	return items, nil
}

// parseConfItem parses "<value> of <parameter> setting", a user-defined
// configuration word, or (when allowBare) a single bare word value.
func (p *parser) parseConfItem(allowBare bool) (ConfItem, error) {
	mark := p.save()

	// "<value> of <parameter> setting"
	if val, ok := p.parseConfValue(); ok {
		if p.eatWord("of") {
			if e, ok := p.matchLex(vocab.KindParameter); ok && p.eatWord("setting") {
				return ConfItem{Parameter: e.Canon, Value: val}, nil
			}
		}
		p.restore(mark)
	}

	// User-defined configuration word.
	if e, ok := p.matchLex(vocab.KindConfWord); ok {
		return ConfItem{Value: Value{Word: e.Phrase}}, nil
	}

	if allowBare && p.at(TokWord) {
		v := Value{Word: p.word()}
		p.next()
		return ConfItem{Value: v}, nil
	}
	return ConfItem{}, p.errorf("expected a configuration item, got %q", p.cur().Text)
}

// parseConfValue parses a number+unit or a short word sequence up to "of".
func (p *parser) parseConfValue() (Value, bool) {
	if p.at(TokNumber) {
		v := Value{IsNumber: true, Number: p.cur().Num}
		p.next()
		if e, ok := p.matchLex(vocab.KindUnit); ok {
			v.Unit = e.MetaValue(vocab.MetaUnitCanon)
			v.UnitText = e.Phrase
		}
		return v, true
	}
	var words []string
	for p.at(TokWord) && p.word() != "of" && p.word() != "and" && len(words) < 3 {
		words = append(words, p.word())
		p.next()
	}
	if len(words) == 0 {
		return Value{}, false
	}
	return Value{Word: strings.Join(words, " ")}, true
}
