package lang

import (
	"testing"

	"repro/internal/vocab"
)

// fuzzLexicon mirrors the lexicon the rule-submission HTTP path parses
// against: the default vocabulary plus registered people and user-defined
// words, so fuzzed inputs can reach the word-expansion code paths too.
func fuzzLexicon() *vocab.Lexicon {
	lex := vocab.Default()
	for _, p := range []string{"tom", "alan", "emily", "i"} {
		_ = lex.Add(vocab.Entry{Phrase: p, Kind: vocab.KindPerson})
	}
	_ = lex.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom")
	_ = lex.DefineConfWord("half-lighting", "50 percent of brightness setting", "tom")
	return lex
}

// FuzzParse guards the rule-submission path (cadel.Server.Submit, the
// single-home HTTP API and the fleet HTTP API all funnel user text straight
// into lang.Parse) against crashing inputs: any input may fail to parse, but
// none may panic or hang. The seed corpus is every command the examples/
// programs submit, plus structural edge cases.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// examples/quickstart, examples/livingroom, examples/wordsmith,
		// examples/security and the paper's Fig. 4 commands.
		"If temperature is higher than 28 degrees and humidity is higher than 60 percent, " +
			"turn on the air conditioner with 25 degrees of temperature setting.",
		"If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.",
		"Let's call the condition that humidity is higher than 60 % and temperature is higher than 28 degrees hot and stuffy",
		"Let's call the condition that temperature is higher than 25 degrees and humidity is higher than 60 percent muggy",
		"Let's call the configuration that 50 percent of brightness setting half-lighting",
		"When i am in the living room, turn on the floor lamp with half-lighting.",
		"When i am in the living room and my favorite movie is on air, play the stereo with movie of mode setting.",
		"In the evening, if i am in the living room, play the stereo with jazz of mode setting and 40 percent of volume setting.",
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.",
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
		"If emily is in the living room and a baseball game is on air, record the video recorder.",
		"If i am in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.",
		"Turn on the light at the hall.",
		// Structural edge cases.
		"",
		".",
		"If",
		"If , then .",
		"If temperature is higher than 99999999999999999999 degrees, turn on the tv.",
		"If temperature is higher than -28.5e10 degrees, turn on the tv.",
		"Let's call the condition that hot and stuffy hot and stuffy",
		"If hot and stuffy and hot and stuffy and hot and stuffy, turn on the tv.",
		"if IF if IF if, turn ON the THE the.",
		"When when when when when when when when when when when when when, do do do.",
		"If temperature is higher than 28 degrees, turn on the \x00\xff.",
		"\xf0\x9f\x92\xa1 If temperature is higher than 28 degrees, turn on the light.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lex := fuzzLexicon()
	f.Fuzz(func(t *testing.T, src string) {
		// Parse must not panic; errors are expected for arbitrary input.
		cmd, err := Parse(src, lex)
		if err == nil && cmd == nil {
			t.Errorf("Parse(%q) returned nil command without error", src)
		}
		// The condition-expression entry point (priority contexts) shares
		// the grammar; guard it with the same inputs.
		_, _ = ParseCondExpr(src, lex)
	})
}
