package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vocab"
)

// TestParseNeverPanics feeds pseudo-random token soup to the parser: it may
// reject the input, but it must never panic or loop.
func TestParseNeverPanics(t *testing.T) {
	lex := vocab.Default()
	if err := lex.DefineCondWord("hot and stuffy", "temperature is higher than 28 degrees", "t"); err != nil {
		t.Fatal(err)
	}
	words := []string{
		"if", "when", "turn", "on", "off", "the", "a", "and", "or", "(", ")",
		"is", "are", "higher", "than", "degrees", "percent", "at", "in",
		"after", "until", "for", "hot", "stuffy", "temperature", "humidity",
		"tv", "light", "28", "60", "18:00", ",", ".", "with", "of", "setting",
		"let's", "call", "condition", "that", "every", "monday", "evening",
		"night", "someone", "nobody", "i", "am", "my", "favorite", "movie",
		"air", "returns", "home", "dark", "unlocked", "hour", "1", "%",
	}
	r := rand.New(rand.NewSource(2024))
	f := func() bool {
		n := 1 + r.Intn(24)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		input := strings.Join(parts, " ")
		// Any outcome but a panic is fine.
		_, _ = Parse(input, lex)
		_, _ = ParseCondExpr(input, lex)
		_, _ = ParseConfItems(input, lex)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLexNeverPanics feeds arbitrary bytes to the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(input string) bool {
		_, _ = Lex(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripGeneratedRules builds random but well-formed rules from
// grammar fragments and checks the printer-stability property on each.
func TestQuickRoundTripGeneratedRules(t *testing.T) {
	lex := testLexicon(t)
	r := rand.New(rand.NewSource(7))

	atoms := []string{
		"temperature is higher than %d degrees",
		"humidity is over %d percent",
		"the tv is turned on",
		"the hall is dark",
		"tom is at the living room",
		"someone returns home",
		"a baseball game is on air",
		"entrance door is unlocked for 1 hour",
		"hot and stuffy",
	}
	times := []string{"", "after evening, ", "at night, ", "before 22:00, "}
	actions := []string{
		"turn on the tv",
		"turn off the stereo",
		"turn on the light at the hall",
		"turn on the air conditioner with %d degrees of temperature setting",
		"play the stereo with jazz of mode setting",
	}

	build := func() string {
		var sb strings.Builder
		sb.WriteString(times[r.Intn(len(times))])
		sb.WriteString("if ")
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			if i > 0 {
				if r.Intn(2) == 0 {
					sb.WriteString(" and ")
				} else {
					sb.WriteString(" or ")
				}
			}
			atom := atoms[r.Intn(len(atoms))]
			if strings.Contains(atom, "%d") {
				atom = strings.Replace(atom, "%d", itoa(10+r.Intn(80)), 1)
			}
			sb.WriteString(atom)
		}
		sb.WriteString(", ")
		action := actions[r.Intn(len(actions))]
		if strings.Contains(action, "%d") {
			action = strings.Replace(action, "%d", itoa(15+r.Intn(15)), 1)
		}
		sb.WriteString(action)
		sb.WriteString(".")
		return sb.String()
	}

	for i := 0; i < 300; i++ {
		src := build()
		cmd1, err := Parse(src, lex)
		if err != nil {
			t.Fatalf("generated rule failed to parse: %q: %v", src, err)
		}
		printed1 := cmd1.String()
		cmd2, err := Parse(printed1, lex)
		if err != nil {
			t.Fatalf("printed form failed to reparse: %q (from %q): %v", printed1, src, err)
		}
		if printed2 := cmd2.String(); printed1 != printed2 {
			t.Fatalf("round trip unstable:\n  src: %q\n  1st: %q\n  2nd: %q", src, printed1, printed2)
		}
	}
}

func itoa(v int) string {
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v%10]}, out...)
		v /= 10
	}
	return string(out)
}
