package lang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vocab"
)

// testLexicon returns the default lexicon extended with the people, words and
// devices used in the paper's running example (Sect. 3.1).
func testLexicon(t *testing.T) *vocab.Lexicon {
	t.Helper()
	l := vocab.Default()
	for _, p := range []string{"tom", "alan", "emily"} {
		if err := l.Add(vocab.Entry{Phrase: p, Kind: vocab.KindPerson}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := l.DefineConfWord("half-lighting", "50 percent of brightness setting", "tom"); err != nil {
		t.Fatal(err)
	}
	return l
}

func mustParseRule(t *testing.T, lex *vocab.Lexicon, src string) *RuleDef {
	t.Helper()
	cmd, err := Parse(src, lex)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	rule, ok := cmd.(*RuleDef)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *RuleDef", src, cmd)
	}
	return rule
}

// TestParsePaperRule1 parses example rule (1) from Sect. 4.2.
func TestParsePaperRule1(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If humidity is higher than 80 percent and temperature is higher than 28 degrees, "+
			"turn on the air conditioner with 25 degrees of temperature setting.")

	if rule.Verb != "turn-on" {
		t.Errorf("verb = %q, want turn-on", rule.Verb)
	}
	if rule.Object.Device != "air conditioner" {
		t.Errorf("device = %q, want air conditioner", rule.Object.Device)
	}
	if len(rule.Config) != 1 {
		t.Fatalf("config = %v, want 1 item", rule.Config)
	}
	cfg := rule.Config[0]
	if cfg.Parameter != "temperature" || !cfg.Value.IsNumber || cfg.Value.Number != 25 || cfg.Value.Unit != "celsius" {
		t.Errorf("config item = %+v", cfg)
	}
	if rule.Pre == nil || rule.Pre.Keyword != "if" {
		t.Fatalf("pre = %+v, want if-clause", rule.Pre)
	}
	and, ok := rule.Pre.Expr.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("pre expr = %T, want and", rule.Pre.Expr)
	}
	left, ok := and.L.(*CondAtom)
	if !ok {
		t.Fatalf("left = %T, want atom", and.L)
	}
	if left.Subject.Name != "humidity" || left.State.Op != "gt" || left.State.Value.Number != 80 {
		t.Errorf("left atom = %+v / %+v", left.Subject, left.State)
	}
	right, ok := and.R.(*CondAtom)
	if !ok {
		t.Fatalf("right = %T, want atom", and.R)
	}
	if right.Subject.Name != "temperature" || right.State.Value.Number != 28 || right.State.Value.Unit != "celsius" {
		t.Errorf("right atom = %+v / %+v", right.Subject, right.State)
	}
}

// TestParsePaperRule2 parses example rule (2): "After evening, if someone
// returns home and the hall is dark, turn on the light at the hall."
func TestParsePaperRule2(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.")

	if rule.Pre == nil || rule.Pre.Time == nil {
		t.Fatal("missing pre time spec")
	}
	if rule.Pre.Time.Prep != "after" || rule.Pre.Time.Time.Name != "evening" {
		t.Errorf("time spec = %+v", rule.Pre.Time)
	}
	and, ok := rule.Pre.Expr.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("expr = %T/%v", rule.Pre.Expr, rule.Pre.Expr)
	}
	left := and.L.(*CondAtom)
	if left.Subject.Kind != SubSomeone {
		t.Errorf("left subject kind = %v, want someone", left.Subject.Kind)
	}
	if left.State.Kind != vocab.StateArrival || left.State.Event != "return-home" {
		t.Errorf("left state = %+v", left.State)
	}
	right := and.R.(*CondAtom)
	if right.Subject.Kind != SubPlace || right.Subject.Name != "hall" {
		t.Errorf("right subject = %+v", right.Subject)
	}
	if right.State.Kind != vocab.StateBool || right.State.Var != "dark" || !right.State.Bool {
		t.Errorf("right state = %+v", right.State)
	}
	if rule.Object.Device != "light" || rule.Object.Location != "hall" {
		t.Errorf("object = %+v", rule.Object)
	}
}

// TestParsePaperRule3 parses example rule (3): "At night, if entrance door is
// unlocked for 1 hour, turn on the alarm."
func TestParsePaperRule3(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.")

	if rule.Pre.Time == nil || rule.Pre.Time.Prep != "at" || rule.Pre.Time.Time.Name != "night" {
		t.Fatalf("time spec = %+v", rule.Pre.Time)
	}
	atom, ok := rule.Pre.Expr.(*CondAtom)
	if !ok {
		t.Fatalf("expr = %T", rule.Pre.Expr)
	}
	if atom.Subject.Name != "entrance door" {
		t.Errorf("subject = %q, want entrance door", atom.Subject.Name)
	}
	if atom.State.Var != "locked" || atom.State.Bool {
		t.Errorf("state = %+v, want locked=false", atom.State)
	}
	if atom.Period == nil || atom.Period.Kind != PeriodFor || atom.Period.Seconds != 3600 {
		t.Errorf("period = %+v, want for 3600s", atom.Period)
	}
	if rule.Object.Device != "alarm" {
		t.Errorf("object = %+v", rule.Object)
	}
}

// TestParseCondDef parses the paper's CondDef example defining
// "hot and stuffy".
func TestParseCondDef(t *testing.T) {
	lex := vocab.Default() // no pre-registered user word
	cmd, err := Parse("Let's call the condition that humidity is higher than 60 % "+
		"and temperature is higher than 28 degrees hot and stuffy", lex)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	def, ok := cmd.(*CondDef)
	if !ok {
		t.Fatalf("cmd = %T, want *CondDef", cmd)
	}
	if def.Name != "hot and stuffy" {
		t.Errorf("name = %q, want 'hot and stuffy'", def.Name)
	}
	and, ok := def.Expr.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("expr = %v", def.Expr)
	}
	l := and.L.(*CondAtom)
	if l.Subject.Name != "humidity" || l.State.Value.Number != 60 || l.State.Value.Unit != "percent" {
		t.Errorf("left = %+v/%+v", l.Subject, l.State)
	}
}

func TestParseConfDef(t *testing.T) {
	lex := vocab.Default()
	cmd, err := Parse("Let's call the configuration that 50 percent of brightness setting "+
		"and 20 percent of volume setting cozy mood", lex)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	def, ok := cmd.(*ConfDef)
	if !ok {
		t.Fatalf("cmd = %T, want *ConfDef", cmd)
	}
	if def.Name != "cozy mood" {
		t.Errorf("name = %q, want 'cozy mood'", def.Name)
	}
	if len(def.Confs) != 2 {
		t.Fatalf("confs = %v", def.Confs)
	}
	if def.Confs[0].Parameter != "brightness" || def.Confs[1].Parameter != "volume" {
		t.Errorf("parameters = %q,%q", def.Confs[0].Parameter, def.Confs[1].Parameter)
	}
}

func TestParseUserCondWord(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting "+
			"and 60 percent of humidity setting.")
	uc, ok := rule.Pre.Expr.(*UserCond)
	if !ok {
		t.Fatalf("expr = %T, want *UserCond", rule.Pre.Expr)
	}
	if uc.Name != "hot and stuffy" {
		t.Errorf("name = %q", uc.Name)
	}
	if len(rule.Config) != 2 {
		t.Errorf("config = %v, want 2 items", rule.Config)
	}
}

func TestParseUserConfWord(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "When i am in the living room, turn on the floor lamp with half-lighting.")
	if len(rule.Config) != 1 || rule.Config[0].Value.Word != "half-lighting" {
		t.Fatalf("config = %+v", rule.Config)
	}
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Subject.Kind != SubMe {
		t.Errorf("subject kind = %v, want me", atom.Subject.Kind)
	}
	if atom.State.Kind != vocab.StatePresence || atom.State.Place != "living room" {
		t.Errorf("state = %+v", atom.State)
	}
}

func TestParsePresenceWithPerson(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "If alan is in the living room, turn on the tv.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Subject.Kind != SubPerson || atom.Subject.Name != "alan" {
		t.Errorf("subject = %+v", atom.Subject)
	}
	if atom.State.Place != "living room" {
		t.Errorf("place = %q", atom.State.Place)
	}
}

func TestParseArrivalEvents(t *testing.T) {
	lex := testLexicon(t)
	tests := []struct {
		src   string
		event string
	}{
		{"If alan got home from work, turn on the tv.", "home-from-work"},
		{"If emily got home from shopping, turn on the tv.", "home-from-shopping"},
		{"If tom comes back, turn on the stereo.", "come-back"},
	}
	for _, tt := range tests {
		rule := mustParseRule(t, lex, tt.src)
		atom, ok := rule.Pre.Expr.(*CondAtom)
		if !ok {
			t.Fatalf("%q: expr = %T", tt.src, rule.Pre.Expr)
		}
		if atom.State.Kind != vocab.StateArrival || atom.State.Event != tt.event {
			t.Errorf("%q: state = %+v, want event %s", tt.src, atom.State, tt.event)
		}
	}
}

func TestParseOnAir(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "If a baseball game is on air, turn on the tv.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Subject.Kind != SubEvent || atom.Subject.Name != "baseball game" {
		t.Errorf("subject = %+v", atom.Subject)
	}
	if atom.State.Kind != vocab.StateOnAir {
		t.Errorf("state = %+v", atom.State)
	}

	rule = mustParseRule(t, lex, "If my favorite movie is on air, turn on the tv.")
	atom = rule.Pre.Expr.(*CondAtom)
	if !atom.Subject.My || atom.Subject.Kind != SubEvent || atom.Subject.Name != "favorite movie" {
		t.Errorf("subject = %+v", atom.Subject)
	}
}

func TestParseNobody(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "If nobody is at home, turn off the light.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Subject.Kind != SubNobody {
		t.Errorf("subject = %+v", atom.Subject)
	}
	if atom.State.Place != "home" {
		t.Errorf("place = %q, want home", atom.State.Place)
	}
}

func TestParseOrAndPrecedence(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If tom is at the living room or alan is at the kitchen and the hall is dark, turn on the light.")
	or, ok := rule.Pre.Expr.(*BinaryExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %v, want or at top (and binds tighter)", rule.Pre.Expr)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("right = %v, want and", or.R)
	}
}

func TestParseParens(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If ( tom is at the living room or alan is at the kitchen ) and the hall is dark, turn on the light.")
	and, ok := rule.Pre.Expr.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("top = %v, want and at top with parens", rule.Pre.Expr)
	}
	if or, ok := and.L.(*BinaryExpr); !ok || or.Op != "or" {
		t.Fatalf("left = %v, want or", and.L)
	}
}

func TestParsePostCondition(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "Turn off the stereo when nobody is at the living room.")
	if rule.Pre != nil {
		t.Errorf("pre = %+v, want nil", rule.Pre)
	}
	if rule.Post == nil || rule.Post.Keyword != "when" {
		t.Fatalf("post = %+v", rule.Post)
	}
}

func TestParseBareTimePre(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "At 22:00, turn off the fluorescent light.")
	if rule.Pre == nil || rule.Pre.Expr != nil || rule.Pre.Time == nil {
		t.Fatalf("pre = %+v", rule.Pre)
	}
	if rule.Pre.Time.Time.Kind != TimeClock || rule.Pre.Time.Time.Minutes != 22*60 {
		t.Errorf("time = %+v", rule.Pre.Time.Time)
	}
	if rule.Object.Device != "fluorescent light" {
		t.Errorf("device = %q", rule.Object.Device)
	}
}

func TestParseTimeFormats(t *testing.T) {
	lex := testLexicon(t)
	tests := []struct {
		src     string
		minutes int
	}{
		{"At 6 pm, turn on the light.", 18 * 60},
		{"At 6 am, turn on the light.", 6 * 60},
		{"At 12 am, turn on the light.", 0},
		{"At 12 pm, turn on the light.", 12 * 60},
		{"At 9 o'clock, turn on the light.", 9 * 60},
		{"At 18:45, turn on the light.", 18*60 + 45},
	}
	for _, tt := range tests {
		rule := mustParseRule(t, lex, tt.src)
		if rule.Pre == nil || rule.Pre.Time == nil {
			t.Fatalf("%q: no time", tt.src)
		}
		if got := rule.Pre.Time.Time.Minutes; got != tt.minutes {
			t.Errorf("%q: minutes = %d, want %d", tt.src, got, tt.minutes)
		}
	}
}

func TestParseEveryWeekday(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "At every monday 8 o'clock, turn on the coffee maker.")
	tod := rule.Pre.Time.Time
	if tod.Every != "monday" || tod.Minutes != 8*60 {
		t.Errorf("time = %+v", tod)
	}
}

func TestParsePeriodFromTo(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If the tv is turned on from 22:00 to 23:00, turn off the tv.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Period == nil || atom.Period.Kind != PeriodFromTo {
		t.Fatalf("period = %+v", atom.Period)
	}
	if atom.Period.From.Minutes != 22*60 || atom.Period.To.Minutes != 23*60 {
		t.Errorf("period = %+v", atom.Period)
	}
}

func TestParsePeriodAfter(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If the entrance door is open for 10 minutes after 22:00, turn on the alarm.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Period == nil || atom.Period.Kind != PeriodAfter || atom.Period.Seconds != 600 {
		t.Fatalf("period = %+v", atom.Period)
	}
	if atom.Period.After == nil || atom.Period.After.Minutes != 22*60 {
		t.Errorf("after = %+v", atom.Period.After)
	}
}

func TestParseSubjectLocation(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If temperature at the living room is higher than 28 degrees, turn on the air conditioner at the living room.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.Subject.Name != "temperature" || atom.Subject.Location != "living room" {
		t.Errorf("subject = %+v", atom.Subject)
	}
	if rule.Object.Location != "living room" {
		t.Errorf("object = %+v", rule.Object)
	}
}

func TestParseEqualityState(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "If temperature is 25 degrees, turn off the air conditioner.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.State.Op != "eq" || atom.State.Value.Number != 25 {
		t.Errorf("state = %+v", atom.State)
	}
}

func TestParseAtLeastAtMost(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex, "If humidity is at least 70 percent, turn on the dehumidifier.")
	atom := rule.Pre.Expr.(*CondAtom)
	if atom.State.Op != "ge" {
		t.Errorf("op = %q, want ge", atom.State.Op)
	}
	rule = mustParseRule(t, lex, "If temperature is at most 10 degrees, turn on the heater.")
	atom = rule.Pre.Expr.(*CondAtom)
	if atom.State.Op != "le" {
		t.Errorf("op = %q, want le", atom.State.Op)
	}
}

func TestParseErrors(t *testing.T) {
	lex := testLexicon(t)
	tests := []struct {
		name string
		src  string
	}{
		{name: "no verb", src: "the light."},
		{name: "missing device", src: "turn on with 25 degrees of temperature setting."},
		{name: "dangling condition", src: "If humidity is, turn on the fan."},
		{name: "unclosed paren", src: "If ( humidity is over 60 percent, turn on the fan."},
		{name: "empty input", src: ""},
		{name: "conddef without name", src: "Let's call the condition that humidity is over 60 percent"},
		{name: "no state", src: "If the weird gizmo whirrs strangely loudly today somehow anyway, turn on the fan."},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src, lex); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.src)
			} else if !errors.Is(err, ErrParse) && !strings.Contains(err.Error(), "lang:") {
				t.Errorf("error %v is not a parse error", err)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	lex := testLexicon(t)
	_, err := Parse("zzz qqq", lex)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *ParseError", err)
	}
	if pe.Pos < 0 || !strings.Contains(pe.Error(), "offset") {
		t.Errorf("bad error: %v", pe)
	}
}

func TestParseCondExprStandalone(t *testing.T) {
	lex := testLexicon(t)
	expr, err := ParseCondExpr("humidity is higher than 60 percent and temperature is higher than 28 degrees", lex)
	if err != nil {
		t.Fatalf("ParseCondExpr: %v", err)
	}
	if _, ok := expr.(*BinaryExpr); !ok {
		t.Errorf("expr = %T", expr)
	}
	if _, err := ParseCondExpr("turn on the tv", lex); err == nil {
		t.Error("non-condition should fail")
	}
}

func TestParseConfItemsStandalone(t *testing.T) {
	lex := testLexicon(t)
	items, err := ParseConfItems("25 degrees of temperature setting and 60 percent of humidity setting", lex)
	if err != nil {
		t.Fatalf("ParseConfItems: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	if items[1].Parameter != "humidity" || items[1].Value.Number != 60 {
		t.Errorf("item = %+v", items[1])
	}
}

func TestParseWordConfigValue(t *testing.T) {
	lex := testLexicon(t)
	rule := mustParseRule(t, lex,
		"If hot and stuffy, turn on the air conditioner with dehumidification of mode setting.")
	if len(rule.Config) != 1 {
		t.Fatalf("config = %v", rule.Config)
	}
	if rule.Config[0].Parameter != "mode" || rule.Config[0].Value.Word != "dehumidification" {
		t.Errorf("config = %+v", rule.Config[0])
	}
}

func TestParseScenarioRules(t *testing.T) {
	// The full Fig. 1 rule sets for Tom, Alan and Emily must all parse.
	lex := testLexicon(t)
	srcs := []string{
		"In the evening, if i am in the living room, play the stereo with jazz of mode setting and 40 percent of volume setting.",
		"When i am in the living room, turn on the floor lamp with half-lighting.",
		"If i am in the living room and hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting and 60 percent of humidity setting.",
		"If alan is in the living room and a baseball game is on air, turn on the tv.",
		"If alan is in the living room and a baseball game is on air, record the baseball game with the video recorder of mode setting.",
		"If emily is in the living room and my favorite movie is on air, turn on the tv.",
		"When emily is in the living room and my favorite movie is on air, play the stereo with movie of mode setting.",
		"When emily is in the living room and my favorite movie is on air, turn on the fluorescent light.",
		"If hot and stuffy, turn on the air conditioner with 27 degrees of temperature setting and 65 percent of humidity setting.",
	}
	for i, src := range srcs {
		if _, err := Parse(src, lex); err != nil {
			t.Errorf("rule %d: Parse(%q): %v", i, src, err)
		}
	}
}
