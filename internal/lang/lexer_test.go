package lang

import (
	"strings"
	"testing"
)

func lexTexts(t *testing.T, input string) []string {
	t.Helper()
	toks, err := Lex(input)
	if err != nil {
		t.Fatalf("Lex(%q): %v", input, err)
	}
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if tok.Type == TokEOF {
			continue
		}
		out = append(out, tok.Text)
	}
	return out
}

func TestLexWordsAndCase(t *testing.T) {
	got := lexTexts(t, "Turn ON the Air Conditioner")
	want := []string{"turn", "on", "the", "air", "conditioner"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("28 degrees and 60.5 percent")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokNumber || toks[0].Num != 28 {
		t.Errorf("first token = %+v, want number 28", toks[0])
	}
	if toks[3].Type != TokNumber || toks[3].Num != 60.5 {
		t.Errorf("fourth token = %+v, want number 60.5", toks[3])
	}
}

func TestLexPercentSign(t *testing.T) {
	got := lexTexts(t, "over 60 %")
	want := "over 60 percent"
	if strings.Join(got, " ") != want {
		t.Errorf("tokens = %v, want %q", got, want)
	}
}

func TestLexClockTime(t *testing.T) {
	toks, err := Lex("at 18:30")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Type != TokTime {
		t.Fatalf("token = %+v, want TokTime", toks[1])
	}
	if toks[1].Num != 18*60+30 {
		t.Errorf("minutes = %v, want 1110", toks[1].Num)
	}
	if toks[1].Text != "18:30" {
		t.Errorf("text = %q, want 18:30", toks[1].Text)
	}
}

func TestLexInvalidClockTime(t *testing.T) {
	if _, err := Lex("at 25:00"); err == nil {
		t.Error("25:00 should fail")
	}
	if _, err := Lex("at 10:75"); err == nil {
		t.Error("10:75 should fail")
	}
}

func TestLexContractions(t *testing.T) {
	got := lexTexts(t, "I'm in the living room")
	want := "i am in the living room"
	if strings.Join(got, " ") != want {
		t.Errorf("tokens = %v, want %q", got, want)
	}
	got = lexTexts(t, "Let's call the condition that it's dark night-time")
	joined := strings.Join(got, " ")
	if !strings.HasPrefix(joined, "let's call the condition that it is dark") {
		t.Errorf("tokens = %v", got)
	}
}

func TestLexHyphenatedWord(t *testing.T) {
	got := lexTexts(t, "half-lighting")
	if len(got) != 1 || got[0] != "half-lighting" {
		t.Errorf("tokens = %v, want [half-lighting]", got)
	}
}

func TestLexPunctuation(t *testing.T) {
	toks, err := Lex("if (a), then b.")
	if err != nil {
		t.Fatal(err)
	}
	var types []TokenType
	for _, tok := range toks {
		types = append(types, tok.Type)
	}
	want := []TokenType{TokWord, TokLParen, TokWord, TokRParen, TokComma, TokWord, TokWord, TokStop, TokEOF}
	if len(types) != len(want) {
		t.Fatalf("token types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, types[i], want[i])
		}
	}
}

func TestLexDecimalVsStop(t *testing.T) {
	toks, err := Lex("25.5 degrees.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokNumber || toks[0].Num != 25.5 {
		t.Errorf("first token = %+v, want 25.5", toks[0])
	}
	if toks[2].Type != TokStop {
		t.Errorf("third token = %+v, want stop", toks[2])
	}
}

func TestLexEOFAlwaysLast(t *testing.T) {
	for _, input := range []string{"", "a", "a b c.", "  "} {
		toks, err := Lex(input)
		if err != nil {
			t.Fatal(err)
		}
		if toks[len(toks)-1].Type != TokEOF {
			t.Errorf("Lex(%q) does not end with EOF", input)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions = %d,%d want 0,3", toks[0].Pos, toks[1].Pos)
	}
}

func TestTokenTypeString(t *testing.T) {
	if TokWord.String() != "word" || TokEOF.String() != "eof" {
		t.Error("TokenType.String misnamed")
	}
}
