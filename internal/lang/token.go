// Package lang implements the CADEL (Context-Aware rule DEfinition Language)
// front end: lexer, AST, recursive-descent parser and printer for the grammar
// of Table 1 in the paper. CADEL reads like constrained English, e.g.
//
//	If humidity is higher than 80 percent and temperature is higher than
//	28 degrees, turn on the air conditioner with 25 degrees of temperature
//	setting.
//
//	Let's call the condition that humidity is higher than 60 percent and
//	temperature is higher than 28 degrees hot and stuffy.
//
// Phrase recognition (verbs, states, units, places, user-defined words) is
// driven by a vocab.Lexicon so new words defined at runtime immediately
// become parseable.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokenType classifies lexical tokens.
type TokenType int

// Token types produced by Lex.
const (
	TokWord TokenType = iota + 1
	TokNumber
	TokTime // hh:mm clock time; Num holds minutes since midnight
	TokComma
	TokStop // sentence-final period
	TokLParen
	TokRParen
	TokEOF
)

// String names the token type.
func (t TokenType) String() string {
	switch t {
	case TokWord:
		return "word"
	case TokNumber:
		return "number"
	case TokTime:
		return "time"
	case TokComma:
		return "comma"
	case TokStop:
		return "period"
	case TokLParen:
		return "lparen"
	case TokRParen:
		return "rparen"
	case TokEOF:
		return "eof"
	default:
		return fmt.Sprintf("TokenType(%d)", int(t))
	}
}

// Token is a lexical token. Pos is the byte offset in the original input.
type Token struct {
	Type TokenType
	Text string
	Num  float64
	Pos  int
}

// contractions expanded by the lexer. "let's" and "o'clock" are kept intact:
// the former is part of the CondDef/ConfDef leader phrase, the latter is a
// time unit.
var contractions = map[string][]string{
	"i'm":    {"i", "am"},
	"it's":   {"it", "is"},
	"he's":   {"he", "is"},
	"she's":  {"she", "is"},
	"that's": {"that", "is"},
	"who's":  {"who", "is"},
	"there's": {
		"there", "is",
	},
	"isn't":  {"is", "not"},
	"aren't": {"are", "not"},
}

// Lex tokenizes CADEL input. Words are lowercased; "%" becomes the word
// "percent"; "hh:mm" becomes a TokTime. The token stream always ends with a
// TokEOF.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, Token{Type: TokComma, Text: ",", Pos: i})
			i++
		case c == '.':
			// Decimal point is handled inside number scanning; a lone '.'
			// is a sentence stop.
			toks = append(toks, Token{Type: TokStop, Text: ".", Pos: i})
			i++
		case c == '(':
			toks = append(toks, Token{Type: TokLParen, Text: "(", Pos: i})
			i++
		case c == ')':
			toks = append(toks, Token{Type: TokRParen, Text: ")", Pos: i})
			i++
		case c == '%':
			toks = append(toks, Token{Type: TokWord, Text: "percent", Pos: i})
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			// Clock time hh:mm.
			if i < n && input[i] == ':' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				hh, _ := strconv.Atoi(input[start:i])
				j := i + 1
				for j < n && input[j] >= '0' && input[j] <= '9' {
					j++
				}
				mm, err := strconv.Atoi(input[i+1 : j])
				if err != nil || hh > 23 || mm > 59 {
					return nil, fmt.Errorf("lang: invalid clock time %q at offset %d", input[start:j], start)
				}
				toks = append(toks, Token{
					Type: TokTime,
					Text: fmt.Sprintf("%d:%02d", hh, mm),
					Num:  float64(hh*60 + mm),
					Pos:  start,
				})
				i = j
				continue
			}
			// Decimal fraction.
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			text := input[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("lang: invalid number %q at offset %d", text, start)
			}
			toks = append(toks, Token{Type: TokNumber, Text: text, Num: v, Pos: start})
		case isWordByte(c):
			start := i
			for i < n && (isWordByte(input[i]) || input[i] == '\'' || input[i] == '-') {
				i++
			}
			word := strings.ToLower(input[start:i])
			if parts, ok := contractions[word]; ok {
				for _, p := range parts {
					toks = append(toks, Token{Type: TokWord, Text: p, Pos: start})
				}
				continue
			}
			toks = append(toks, Token{Type: TokWord, Text: word, Pos: start})
		default:
			r := rune(c)
			if r > unicode.MaxASCII {
				// Accept arbitrary unicode letters as word characters.
				start := i
				for i < n && input[i] > 127 {
					i++
				}
				toks = append(toks, Token{Type: TokWord, Text: strings.ToLower(input[start:i]), Pos: start})
				continue
			}
			return nil, fmt.Errorf("lang: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{Type: TokEOF, Text: "", Pos: n})
	return toks, nil
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
