package lang

import (
	"testing"
)

// TestPrintRoundTrip checks the printer-stability property: parsing a
// command, printing it, re-parsing the printed form and printing again must
// yield the same text.
func TestPrintRoundTrip(t *testing.T) {
	lex := testLexicon(t)
	srcs := []string{
		"If humidity is higher than 80 percent and temperature is higher than 28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.",
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
		"Let's call the condition that humidity is higher than 60 % and temperature is higher than 28 degrees sweltering",
		"Let's call the configuration that 50 percent of brightness setting and 20 percent of volume setting cozy mood",
		"If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting and 60 percent of humidity setting.",
		"When i am in the living room, turn on the floor lamp with half-lighting.",
		"If alan is in the living room and a baseball game is on air, turn on the tv.",
		"If my favorite movie is on air, turn on the tv.",
		"Turn off the stereo when nobody is at the living room.",
		"At 22:00, turn off the fluorescent light.",
		"If the tv is turned on from 22:00 to 23:00, turn off the tv.",
		"If the entrance door is open for 10 minutes after 22:00, turn on the alarm.",
		"If temperature at the living room is higher than 28 degrees, turn on the air conditioner at the living room.",
		"If ( tom is at the living room or alan is at the kitchen ) and the hall is dark, turn on the light.",
		"At every monday 8 o'clock, turn on the coffee maker.",
		"If temperature is at most 10 degrees, turn on the heater.",
	}
	for _, src := range srcs {
		cmd1, err := Parse(src, lex)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed1 := cmd1.String()
		cmd2, err := Parse(printed1, lex)
		if err != nil {
			t.Errorf("reparse of %q failed: %v\n(from %q)", printed1, err, src)
			continue
		}
		printed2 := cmd2.String()
		if printed1 != printed2 {
			t.Errorf("round trip unstable:\n  src:    %q\n  first:  %q\n  second: %q", src, printed1, printed2)
		}
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	lex := testLexicon(t)
	cmd, err := Parse("If ( humidity is over 60 percent or temperature is over 30 degrees ) and the hall is dark, turn on the fan.", lex)
	if err != nil {
		t.Fatal(err)
	}
	printed := cmd.String()
	reparsed, err := Parse(printed, lex)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	and, ok := reparsed.(*RuleDef).Pre.Expr.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("printed form %q lost grouping: %v", printed, reparsed.(*RuleDef).Pre.Expr)
	}
	if or, ok := and.L.(*BinaryExpr); !ok || or.Op != "or" {
		t.Fatalf("printed form %q lost inner or", printed)
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	lex := testLexicon(t)
	expr, err := ParseCondExpr("humidity is over 60 percent and temperature is over 28 degrees or the hall is dark", lex)
	if err != nil {
		t.Fatal(err)
	}
	var atoms, binaries int
	Walk(expr, func(e CondExpr) {
		switch e.(type) {
		case *CondAtom:
			atoms++
		case *BinaryExpr:
			binaries++
		}
	})
	if atoms != 3 || binaries != 2 {
		t.Errorf("walk counted %d atoms, %d binaries; want 3, 2", atoms, binaries)
	}
	Walk(nil, func(CondExpr) { t.Error("walk of nil should not visit") })
}
