package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vocab"
)

// Command is a parsed CADEL command: a rule definition, a user condition-word
// definition (CondDef) or a configuration-word definition (ConfDef).
type Command interface {
	fmt.Stringer
	isCommand()
}

// RuleDef is the main production: [PreCondition] Verb Object [Configuration]
// [PostCondition].
type RuleDef struct {
	Pre      *CondClause
	Verb     string // canonical verb id, e.g. "turn-on"
	VerbText string // surface form, e.g. "turn on"
	Object   Object
	Config   []ConfItem
	Post     *CondClause
}

func (*RuleDef) isCommand() {}

// CondDef defines a new condition word: "Let's call the condition that
// <CondExpr> <name>".
type CondDef struct {
	Expr CondExpr
	Name string
}

func (*CondDef) isCommand() {}

// ConfDef defines a new configuration word: "Let's call the configuration
// that <RowOfConfs> <name>".
type ConfDef struct {
	Confs []ConfItem
	Name  string
}

func (*ConfDef) isCommand() {}

// Object is the action target: a device name with an optional location
// modifier ("the light at the hall").
type Object struct {
	Article  string // "", "a", "an", "the"
	Device   string
	Location string
}

// ConfItem is one element of a Configuration: either "<value> of <parameter>
// setting" or a user-defined configuration word.
type ConfItem struct {
	Parameter string // canonical parameter variable; empty for bare words
	Value     Value
}

// Value is a setting or comparison value: a number with a unit, or a word
// (e.g. a mode name or a user-defined configuration word).
type Value struct {
	IsNumber bool
	Number   float64
	Unit     string // canonical unit ("celsius", "percent", "second")
	UnitText string // surface form ("degrees")
	Word     string
}

// CondClause is a pre- or post-condition: an optional leading TimeSpec and an
// optional condition expression introduced by "if" or "when".
type CondClause struct {
	Keyword string // "if", "when" or "" for a bare TimeSpec
	Time    *TimeSpec
	Expr    CondExpr // nil for a bare TimeSpec
}

// CondExpr is a boolean combination of condition atoms.
type CondExpr interface {
	fmt.Stringer
	isCondExpr()
}

// BinaryExpr combines two condition expressions with "and" or "or".
type BinaryExpr struct {
	Op   string // "and" | "or"
	L, R CondExpr
}

func (*BinaryExpr) isCondExpr() {}

// CondAtom is a single sensed condition: subject + state, with optional
// period ("for 1 hour") and time ("after 22:00") qualifiers.
type CondAtom struct {
	Subject Subject
	State   State
	Period  *PeriodSpec
	Time    *TimeSpec
}

func (*CondAtom) isCondExpr() {}

// UserCond references a user-defined condition word ("hot and stuffy").
type UserCond struct {
	Name   string
	Period *PeriodSpec
	Time   *TimeSpec
}

func (*UserCond) isCondExpr() {}

// SubjectKind classifies a condition subject.
type SubjectKind int

// Subject kinds.
const (
	SubDevice SubjectKind = iota + 1 // a device or sensor (default)
	SubPerson                        // a named user
	SubMe                            // "I" — the rule's owner
	SubSomeone
	SubNobody
	SubEveryone
	SubEvent // a broadcast keyword ("baseball game", "my favorite movie")
	SubPlace // a room ("the hall is dark")
)

// Subject is the left-hand side of a condition atom.
type Subject struct {
	Kind     SubjectKind
	Article  string
	My       bool // "my favorite movie"
	Name     string
	Location string // "temperature at the living room"
}

// State is the sensed predicate of a condition atom.
type State struct {
	Kind  vocab.StateKind
	Be    string // "", "is", "are", "am"
	Text  string // surface form of the state phrase
	Var   string // bool state variable ("power", "dark", "locked")
	Bool  bool   // desired bool value
	Op    string // gt/ge/lt/le/eq for comparisons
	Value *Value // comparison value
	Place string // presence target
	Event string // arrival event canonical name
}

// TimeKind classifies a TimeOfTheDay.
type TimeKind int

// Time kinds.
const (
	TimeClock  TimeKind = iota + 1 // "18:00", "6 pm"
	TimePeriod                     // "evening", "night"
	TimeAllDay                     // whole day, used with "every <weekday>"
)

// TimeOfDay is a clock time or a named day period, optionally restricted to
// a weekday ("every monday").
type TimeOfDay struct {
	Kind    TimeKind
	Minutes int    // for TimeClock: minutes since midnight
	Name    string // for TimePeriod
	Every   string // weekday name, "" if unrestricted
}

// TimeSpec is a time qualifier: "after evening", "at 18:00", "until night".
type TimeSpec struct {
	Prep string // after | at | until | before | in | during
	Time TimeOfDay
}

// PeriodKind classifies a PeriodSpec.
type PeriodKind int

// Period kinds.
const (
	PeriodFor    PeriodKind = iota + 1 // "for 1 hour"
	PeriodFromTo                       // "from 18:00 to 22:00"
	PeriodAfter                        // "for 10 minutes after 18:00"
)

// PeriodSpec is a duration qualifier on a condition.
type PeriodSpec struct {
	Kind     PeriodKind
	Seconds  float64 // for PeriodFor / PeriodAfter
	Amount   float64 // surface amount ("1" in "for 1 hour")
	UnitText string  // surface unit ("hour")
	From, To *TimeOfDay
	After    *TimeOfDay
}

// ---- printing ----
//
// String renders each node back to normalized CADEL text. The language-level
// round-trip property is Print(Parse(Print(x))) == Print(x).

func (r *RuleDef) String() string {
	var sb strings.Builder
	if r.Pre != nil {
		sb.WriteString(r.Pre.String())
		sb.WriteString(", ")
	}
	verb := r.VerbText
	if verb == "" {
		verb = r.Verb
	}
	sb.WriteString(verb)
	sb.WriteString(" ")
	sb.WriteString(r.Object.String())
	if len(r.Config) > 0 {
		sb.WriteString(" with ")
		parts := make([]string, len(r.Config))
		for i, c := range r.Config {
			parts[i] = c.String()
		}
		sb.WriteString(strings.Join(parts, " and "))
	}
	if r.Post != nil {
		sb.WriteString(" ")
		sb.WriteString(r.Post.String())
	}
	return sb.String()
}

func (d *CondDef) String() string {
	return "let's call the condition that " + d.Expr.String() + " " + d.Name
}

func (d *ConfDef) String() string {
	parts := make([]string, len(d.Confs))
	for i, c := range d.Confs {
		parts[i] = c.String()
	}
	return "let's call the configuration that " + strings.Join(parts, " and ") + " " + d.Name
}

func (o Object) String() string {
	var sb strings.Builder
	if o.Article != "" {
		sb.WriteString(o.Article)
		sb.WriteString(" ")
	}
	sb.WriteString(o.Device)
	if o.Location != "" {
		sb.WriteString(" at the ")
		sb.WriteString(o.Location)
	}
	return sb.String()
}

func (c ConfItem) String() string {
	if c.Parameter == "" {
		return c.Value.String()
	}
	return c.Value.String() + " of " + c.Parameter + " setting"
}

func (v Value) String() string {
	if !v.IsNumber {
		return v.Word
	}
	num := strconv.FormatFloat(v.Number, 'g', -1, 64)
	unit := v.UnitText
	if unit == "" {
		unit = v.Unit
	}
	if unit == "" {
		return num
	}
	return num + " " + unit
}

func (c *CondClause) String() string {
	var sb strings.Builder
	if c.Time != nil {
		sb.WriteString(c.Time.String())
		if c.Expr != nil {
			sb.WriteString(", ")
		}
	}
	if c.Expr != nil {
		kw := c.Keyword
		if kw == "" {
			kw = "if"
		}
		sb.WriteString(kw)
		sb.WriteString(" ")
		sb.WriteString(c.Expr.String())
	}
	return sb.String()
}

func (b *BinaryExpr) String() string {
	l := b.L.String()
	r := b.R.String()
	// "and" binds tighter than "or": parenthesize inner "or" under "and".
	if b.Op == "and" {
		if inner, ok := b.L.(*BinaryExpr); ok && inner.Op == "or" {
			l = "( " + l + " )"
		}
		if inner, ok := b.R.(*BinaryExpr); ok && inner.Op == "or" {
			r = "( " + r + " )"
		}
	}
	return l + " " + b.Op + " " + r
}

func (a *CondAtom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Subject.String())
	sb.WriteString(" ")
	sb.WriteString(a.State.String())
	if a.Period != nil {
		sb.WriteString(" ")
		sb.WriteString(a.Period.String())
	}
	if a.Time != nil {
		sb.WriteString(" ")
		sb.WriteString(a.Time.String())
	}
	return sb.String()
}

func (u *UserCond) String() string {
	var sb strings.Builder
	sb.WriteString(u.Name)
	if u.Period != nil {
		sb.WriteString(" ")
		sb.WriteString(u.Period.String())
	}
	if u.Time != nil {
		sb.WriteString(" ")
		sb.WriteString(u.Time.String())
	}
	return sb.String()
}

func (s Subject) String() string {
	var sb strings.Builder
	switch s.Kind {
	case SubMe:
		return "i"
	case SubSomeone:
		return "someone"
	case SubNobody:
		return "nobody"
	case SubEveryone:
		return "everyone"
	}
	if s.Article != "" {
		sb.WriteString(s.Article)
		sb.WriteString(" ")
	}
	if s.My {
		sb.WriteString("my ")
	}
	sb.WriteString(s.Name)
	if s.Location != "" {
		sb.WriteString(" at the ")
		sb.WriteString(s.Location)
	}
	return sb.String()
}

func (s State) String() string {
	var sb strings.Builder
	if s.Be != "" {
		sb.WriteString(s.Be)
		sb.WriteString(" ")
	}
	sb.WriteString(s.Text)
	switch s.Kind {
	case vocab.StateCompare:
		if s.Value != nil {
			sb.WriteString(" ")
			sb.WriteString(s.Value.String())
		}
	case vocab.StatePresence:
		sb.WriteString(" the ")
		sb.WriteString(s.Place)
	}
	return sb.String()
}

func (t TimeOfDay) String() string {
	var parts []string
	if t.Every != "" {
		parts = append(parts, "every "+t.Every)
	}
	switch t.Kind {
	case TimeClock:
		parts = append(parts, fmt.Sprintf("%d:%02d", t.Minutes/60, t.Minutes%60))
	case TimePeriod:
		parts = append(parts, t.Name)
	}
	return strings.Join(parts, " ")
}

func (t *TimeSpec) String() string {
	return t.Prep + " " + t.Time.String()
}

func (p *PeriodSpec) String() string {
	switch p.Kind {
	case PeriodFor:
		return "for " + strconv.FormatFloat(p.Amount, 'g', -1, 64) + " " + p.UnitText
	case PeriodFromTo:
		return "from " + p.From.String() + " to " + p.To.String()
	case PeriodAfter:
		return "for " + strconv.FormatFloat(p.Amount, 'g', -1, 64) + " " + p.UnitText +
			" after " + p.After.String()
	default:
		return ""
	}
}

// Walk visits every CondExpr node in the expression tree in depth-first
// order.
func Walk(e CondExpr, visit func(CondExpr)) {
	if e == nil {
		return
	}
	visit(e)
	if b, ok := e.(*BinaryExpr); ok {
		Walk(b.L, visit)
		Walk(b.R, visit)
	}
}
