package lookup

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/upnp"
	"repro/internal/vocab"
)

func rd(name, devType, location string, serviceTypes ...string) *upnp.RemoteDevice {
	d := &upnp.RemoteDevice{
		UDN:          "uuid:" + name,
		FriendlyName: name,
		DeviceType:   devType,
		Location:     location,
	}
	for _, st := range serviceTypes {
		d.Services = append(d.Services, upnp.RemoteService{ServiceType: st})
	}
	return d
}

func fixtureDevices() []*upnp.RemoteDevice {
	return []*upnp.RemoteDevice{
		rd("thermometer", device.TypeThermometer, "living room", device.SvcTempSensor),
		rd("hygrometer", device.TypeHygrometer, "living room", device.SvcHumidSensor),
		rd("air conditioner", device.TypeAirConditioner, "living room", device.SvcSwitchPower, device.SvcThermostat),
		rd("tv", device.TypeTV, "living room", device.SvcSwitchPower, device.SvcChannel, device.SvcPlayback),
		rd("light", device.TypeLight, "hall", device.SvcSwitchPower, device.SvcDimming),
		rd("light sensor", device.TypeLightSensor, "hall", device.SvcLightSensor),
		rd("entrance door", device.TypeDoorLock, "entrance", device.SvcLock),
	}
}

func newService(t *testing.T) *Service {
	t.Helper()
	lex := vocab.Default()
	if err := lex.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := lex.DefineCondWord("gloomy", "the hall is dark", "tom"); err != nil {
		t.Fatal(err)
	}
	return New(lex)
}

func names(devs []*upnp.RemoteDevice) string {
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.FriendlyName
	}
	return strings.Join(out, ",")
}

// TestFindBySensorType reproduces the paper's example: "the air-conditioner,
// the temperature meter and so on can be retrieved by specifying temperature
// as the sensor type."
func TestFindBySensorType(t *testing.T) {
	s := newService(t)
	got := s.Find(fixtureDevices(), Query{SensorType: "temperature"})
	if names(got) != "air conditioner,thermometer" {
		t.Errorf("temperature devices = %s", names(got))
	}
	got = s.Find(fixtureDevices(), Query{SensorType: "humidity"})
	if names(got) != "air conditioner,hygrometer" {
		t.Errorf("humidity devices = %s", names(got))
	}
}

// TestFindByUserWord reproduces Fig. 5: "sensors which can measure
// temperature and humidity can be retrieved by the word 'hot and stuffy'."
func TestFindByUserWord(t *testing.T) {
	s := newService(t)
	got := s.Find(fixtureDevices(), Query{Word: "hot and stuffy"})
	if names(got) != "air conditioner,hygrometer,thermometer" {
		t.Errorf("hot-and-stuffy devices = %s", names(got))
	}
	// A word over a boolean place state finds the light sensor.
	got = s.Find(fixtureDevices(), Query{Word: "gloomy"})
	if names(got) != "light sensor" {
		t.Errorf("gloomy devices = %s", names(got))
	}
	// Unknown words match nothing.
	if got := s.Find(fixtureDevices(), Query{Word: "sparkling"}); len(got) != 0 {
		t.Errorf("unknown word matched %s", names(got))
	}
}

func TestFindByNameLocationKeyword(t *testing.T) {
	s := newService(t)
	if got := s.Find(fixtureDevices(), Query{Name: "tv"}); names(got) != "tv" {
		t.Errorf("by name = %s", names(got))
	}
	if got := s.Find(fixtureDevices(), Query{Location: "hall"}); names(got) != "light,light sensor" {
		t.Errorf("by location = %s", names(got))
	}
	if got := s.Find(fixtureDevices(), Query{Keyword: "door"}); names(got) != "entrance door" {
		t.Errorf("by keyword = %s", names(got))
	}
	// Keyword also hits locations.
	if got := s.Find(fixtureDevices(), Query{Keyword: "living"}); len(got) != 4 {
		t.Errorf("by location keyword = %s", names(got))
	}
}

func TestFindByVerb(t *testing.T) {
	s := newService(t)
	got := s.Find(fixtureDevices(), Query{Verb: "turn-on"})
	if names(got) != "air conditioner,light,tv" {
		t.Errorf("turn-on devices = %s", names(got))
	}
	if got := s.Find(fixtureDevices(), Query{Verb: "unlock"}); names(got) != "entrance door" {
		t.Errorf("unlock devices = %s", names(got))
	}
}

func TestFindCombinedFilters(t *testing.T) {
	s := newService(t)
	got := s.Find(fixtureDevices(), Query{SensorType: "temperature", Verb: "turn-on"})
	if names(got) != "air conditioner" {
		t.Errorf("combined = %s", names(got))
	}
	// Contradictory filters match nothing.
	if got := s.Find(fixtureDevices(), Query{Name: "tv", Location: "hall"}); len(got) != 0 {
		t.Errorf("contradictory filters matched %s", names(got))
	}
}

func TestFindEmptyQueryReturnsAllSorted(t *testing.T) {
	s := newService(t)
	got := s.Find(fixtureDevices(), Query{})
	if len(got) != len(fixtureDevices()) {
		t.Fatalf("got %d devices", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].FriendlyName > got[i].FriendlyName {
			t.Fatalf("not sorted: %s", names(got))
		}
	}
}

func TestAllowedVerbs(t *testing.T) {
	s := newService(t)
	tv := fixtureDevices()[3]
	verbs := strings.Join(s.AllowedVerbs(tv), ",")
	for _, want := range []string{"turn-on", "turn-off", "play", "stop"} {
		if !strings.Contains(verbs, want) {
			t.Errorf("tv verbs %s missing %s", verbs, want)
		}
	}
	door := fixtureDevices()[6]
	if got := strings.Join(s.AllowedVerbs(door), ","); got != "lock,unlock" {
		t.Errorf("door verbs = %s", got)
	}
}

func TestControlsAndMeasures(t *testing.T) {
	s := newService(t)
	ac := fixtureDevices()[2]
	if got := strings.Join(s.Controls(ac), ","); got != "humidity,mode,temperature" {
		t.Errorf("ac controls = %s", got)
	}
	th := fixtureDevices()[0]
	if got := strings.Join(s.Measures(th), ","); got != "temperature" {
		t.Errorf("thermometer measures = %s", got)
	}
	if got := s.Measures(fixtureDevices()[3]); len(got) != 0 {
		t.Errorf("tv measures = %v", got)
	}
}

// TestWordsFor reproduces the reverse lookup: "information about sensor
// types and the user defined words can be retrieved by specifying sensors."
func TestWordsFor(t *testing.T) {
	s := newService(t)
	th := fixtureDevices()[0]
	if got := strings.Join(s.WordsFor(th), ","); got != "hot and stuffy" {
		t.Errorf("thermometer words = %s", got)
	}
	ls := fixtureDevices()[5]
	if got := strings.Join(s.WordsFor(ls), ","); got != "gloomy" {
		t.Errorf("light sensor words = %s", got)
	}
	door := fixtureDevices()[6]
	if got := s.WordsFor(door); len(got) != 0 {
		t.Errorf("door words = %v", got)
	}
}
