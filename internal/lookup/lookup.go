// Package lookup implements the rule description support module's retrieval
// service (Sect. 4.3, Figs. 5-6): finding sensors and devices by keyword,
// sensor type, name, location, allowable action or user-defined word, and
// reverse lookups from a device to the actions it allows and the words that
// involve it. GUI and voice front ends are thin shells over this API.
package lookup

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/lang"
	"repro/internal/upnp"
	"repro/internal/vocab"
)

// capability describes what a service URN lets a device do.
type capability struct {
	measures []string // sensor variables the service reports
	controls []string // parameters the service can set
	verbs    []string // canonical verbs the service accepts
}

var capabilities = map[string]capability{
	device.SvcTempSensor:  {measures: []string{"temperature"}},
	device.SvcHumidSensor: {measures: []string{"humidity"}},
	device.SvcLightSensor: {measures: []string{"dark", "illuminance"}},
	device.SvcPresence:    {measures: []string{"presence"}},
	device.SvcEPG:         {measures: []string{"programs"}},
	device.SvcSwitchPower: {verbs: []string{"turn-on", "turn-off"}},
	device.SvcDimming:     {controls: []string{"brightness"}, verbs: []string{"dim", "brighten"}},
	device.SvcThermostat:  {controls: []string{"temperature", "humidity", "mode"}},
	device.SvcChannel:     {controls: []string{"channel"}},
	device.SvcPlayback:    {controls: []string{"volume", "mode"}, verbs: []string{"play", "stop", "mute"}},
	device.SvcRecording:   {controls: []string{"mode"}, verbs: []string{"record", "stop"}},
	device.SvcLock:        {verbs: []string{"lock", "unlock"}},
}

// Query selects devices. Empty fields match everything; non-empty fields
// must all match (the GUI's combined retrieval of Fig. 5/6).
type Query struct {
	// Keyword substring-matches the friendly name, device type or location.
	Keyword string
	// SensorType matches devices that measure or control the variable
	// ("temperature" finds thermometers and air conditioners, as in the
	// paper's example).
	SensorType string
	// Name exact-matches the friendly name.
	Name string
	// Location exact-matches the room.
	Location string
	// Verb matches devices accepting the canonical action ("turn-on").
	Verb string
	// Word matches devices whose variables appear in the user-defined
	// condition word's definition ("hot and stuffy" finds the thermometer
	// and hygrometer).
	Word string
}

// Service answers retrieval queries over discovered devices.
type Service struct {
	lex      *vocab.Lexicon
	compiler *core.Compiler
}

// New returns a lookup service over the lexicon.
func New(lex *vocab.Lexicon) *Service {
	return &Service{lex: lex, compiler: core.NewCompiler(lex)}
}

// Find returns the devices matching the query, sorted by friendly name then
// location for deterministic display.
func (s *Service) Find(devices []*upnp.RemoteDevice, q Query) []*upnp.RemoteDevice {
	wordVars, wordOK := s.wordVariables(q.Word)
	var out []*upnp.RemoteDevice
	for _, d := range devices {
		if q.Name != "" && d.FriendlyName != q.Name {
			continue
		}
		if q.Location != "" && d.Location != q.Location {
			continue
		}
		if q.Keyword != "" && !keywordMatch(d, q.Keyword) {
			continue
		}
		if q.SensorType != "" && !touchesVariable(d, q.SensorType) {
			continue
		}
		if q.Verb != "" && !allowsVerb(d, q.Verb) {
			continue
		}
		if q.Word != "" {
			if !wordOK || !touchesAny(d, wordVars) {
				continue
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FriendlyName != out[j].FriendlyName {
			return out[i].FriendlyName < out[j].FriendlyName
		}
		return out[i].Location < out[j].Location
	})
	return out
}

// AllowedVerbs returns the canonical verbs a device accepts (Fig. 6's
// action list).
func (s *Service) AllowedVerbs(d *upnp.RemoteDevice) []string {
	verbSet := make(map[string]bool)
	for _, svc := range d.Services {
		for _, v := range capabilities[svc.ServiceType].verbs {
			verbSet[v] = true
		}
	}
	out := make([]string, 0, len(verbSet))
	for v := range verbSet {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Controls returns the parameters a device can be configured with.
func (s *Service) Controls(d *upnp.RemoteDevice) []string {
	set := make(map[string]bool)
	for _, svc := range d.Services {
		for _, p := range capabilities[svc.ServiceType].controls {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Measures returns the sensor variables a device reports.
func (s *Service) Measures(d *upnp.RemoteDevice) []string {
	set := make(map[string]bool)
	for _, svc := range d.Services {
		for _, v := range capabilities[svc.ServiceType].measures {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// WordsFor returns the user-defined condition words whose definitions read
// variables this device measures or controls — the reverse lookup of
// Sect. 4.3(i).
func (s *Service) WordsFor(d *upnp.RemoteDevice) []string {
	var out []string
	for _, entry := range s.lex.Entries(vocab.KindCondWord) {
		vars, ok := s.wordVariables(entry.Phrase)
		if !ok {
			continue
		}
		if touchesAny(d, vars) {
			out = append(out, entry.Phrase)
		}
	}
	sort.Strings(out)
	return out
}

// wordVariables compiles a user-defined condition word and returns the base
// variable names its definition reads.
func (s *Service) wordVariables(word string) (map[string]bool, bool) {
	if word == "" {
		return nil, false
	}
	// Parsing the bare word expands it through the lexicon's CondWord table.
	expr, err := lang.ParseCondExpr(word, s.lex)
	if err != nil {
		return nil, false
	}
	cond, err := s.compiler.CompileCondExpr(expr, "lookup")
	if err != nil {
		return nil, false
	}
	vars := make(map[string]bool)
	for _, v := range cond.Vars(nil) {
		// Strip any location prefix: "living room/temperature" → "temperature".
		if i := strings.LastIndexByte(v, '/'); i >= 0 {
			v = v[i+1:]
		}
		vars[v] = true
	}
	return vars, true
}

func keywordMatch(d *upnp.RemoteDevice, keyword string) bool {
	kw := strings.ToLower(keyword)
	return strings.Contains(strings.ToLower(d.FriendlyName), kw) ||
		strings.Contains(strings.ToLower(d.DeviceType), kw) ||
		strings.Contains(strings.ToLower(d.Location), kw)
}

// touchesVariable reports whether the device measures or controls the
// variable.
func touchesVariable(d *upnp.RemoteDevice, name string) bool {
	for _, svc := range d.Services {
		cap := capabilities[svc.ServiceType]
		for _, v := range cap.measures {
			if v == name {
				return true
			}
		}
		for _, v := range cap.controls {
			if v == name {
				return true
			}
		}
	}
	return false
}

func touchesAny(d *upnp.RemoteDevice, vars map[string]bool) bool {
	for v := range vars {
		if touchesVariable(d, v) {
			return true
		}
	}
	return false
}

func allowsVerb(d *upnp.RemoteDevice, verb string) bool {
	for _, svc := range d.Services {
		for _, v := range capabilities[svc.ServiceType].verbs {
			if v == verb {
				return true
			}
		}
	}
	return false
}
