package core

import (
	"strings"
	"sync"
)

// Symtab is a per-home symbol table: an append-only interner mapping strings
// to dense uint32 ids. The hot evaluation path never touches strings — rule
// conditions are bound to symbol ids at registration (Bind), the context
// stores values in id-indexed slices, and the engine's dirty-key set is a
// bitset over ids — so the symtab is the single point where names and ids
// meet. Ids are assigned in intern order starting at 0 and are never reused.
//
// A Symtab is owned by one home (its rule database creates it; the home's
// engine and context share it). Interning happens on cold paths — rule
// registration, first sight of a device variable — under an internal lock,
// so concurrent readers (HTTP observability, a second oracle engine over the
// same database) stay safe without taxing per-evaluation work.
//
// Ids are stable between compaction epochs only. Compact renumbers the live
// symbols densely and drops the dead ones, so a home that churns rules with
// unique names does not grow its id space forever; every layer holding ids
// must rewrite them through the returned remap table (see the epoch/remap
// contract in the package README). registry.DB.CompactSymtab coordinates an
// epoch across all holders.
type Symtab struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
	epoch uint64
}

// DeadID is the remap-table entry for a symbol dropped by Compact. Holders
// of an id that remaps to DeadID must discard the state attached to it (by
// construction such state was unreachable, or the id would have been marked
// live).
const DeadID = ^uint32(0)

// NewSymtab returns an empty symbol table.
func NewSymtab() *Symtab {
	return &Symtab{ids: make(map[string]uint32)}
}

// Intern returns the id for name, assigning the next dense id on first
// sight. The same name always maps to the same id.
func (t *Symtab) Intern(name string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the id for an already-interned name.
func (t *Symtab) Lookup(name string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the string for an id. It panics on ids the table never
// assigned, exactly like an out-of-range slice index.
func (t *Symtab) Name(id uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.names[id]
}

// Len returns how many symbols have been interned.
func (t *Symtab) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Epoch returns how many compaction epochs the table has run. Ids are only
// comparable within one epoch.
func (t *Symtab) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Compact renumbers the live symbols densely, dropping every id not in
// live, and returns the remap table (old id → new id, DeadID for dropped
// symbols) and the new epoch. Renumbering preserves relative order, so the
// remap is monotonically increasing over live ids and a name's id never
// grows. A dropped name is forgotten entirely: re-interning it later
// assigns a fresh id at the end of the table.
//
// Compact only renumbers the table itself. The caller owns the coordination
// problem — every structure holding ids from this table must be rewritten
// through the remap before the next use; registry.DB.CompactSymtab runs the
// whole epoch under one lock so no holder can observe mixed ids.
func (t *Symtab) Compact(live *IDSet) (remap []uint32, epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	remap = make([]uint32, len(t.names))
	next := uint32(0)
	for id, name := range t.names {
		if !live.Has(uint32(id)) {
			remap[id] = DeadID
			delete(t.ids, name)
			continue
		}
		remap[id] = next
		t.names[next] = name
		t.ids[name] = next
		next++
	}
	// Release the dropped tail so a heavily churned table actually shrinks.
	t.names = append([]string(nil), t.names[:next]...)
	t.epoch++
	return remap, t.epoch
}

// minSuffixMatch scans a population of interned ids and returns the id whose
// name is the lexicographically smallest one ending in suffix, or -1 when
// none matches. This is the slow half of unqualified-name resolution (the
// fast half is the per-generation cache in Context); taking the table lock
// once for the whole scan keeps the recompute cheap.
func (t *Symtab) minSuffixMatch(pop []uint32, suffix string) int32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	best := ""
	slot := int32(-1)
	for _, id := range pop {
		name := t.names[id]
		if strings.HasSuffix(name, suffix) && (slot < 0 || name < best) {
			best = name
			slot = int32(id)
		}
	}
	return slot
}

// IDSet is a set of symbol ids: a bitset for O(1) membership plus an
// insertion-ordered id list for iteration and O(set-size) clearing. The
// engine uses one as its dirty-key set; Reset retains capacity, so a
// steady-state evaluation pass allocates nothing.
type IDSet struct {
	words []uint64
	ids   []uint32
}

// Add inserts id and reports whether it was newly added.
func (s *IDSet) Add(id uint32) bool {
	w := int(id >> 6)
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	bit := uint64(1) << (id & 63)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.ids = append(s.ids, id)
	return true
}

// AddAll inserts every id.
func (s *IDSet) AddAll(ids []uint32) {
	for _, id := range ids {
		s.Add(id)
	}
}

// Has reports membership.
func (s *IDSet) Has(id uint32) bool {
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(uint64(1)<<(id&63)) != 0
}

// IntersectsAny reports whether any of ids is in the set. With ids being a
// rule's (small, sorted) dependency list this is the branch-cheap
// replacement for the string-keyed DepSet.Intersects.
func (s *IDSet) IntersectsAny(ids []uint32) bool {
	for _, id := range ids {
		if s.Has(id) {
			return true
		}
	}
	return false
}

// IDs returns the member ids in insertion order. The slice is owned by the
// set and valid until the next Add or Reset.
func (s *IDSet) IDs() []uint32 { return s.ids }

// Len returns the number of members.
func (s *IDSet) Len() int { return len(s.ids) }

// Reset empties the set, retaining capacity.
func (s *IDSet) Reset() {
	for _, id := range s.ids {
		s.words[id>>6] = 0
	}
	s.ids = s.ids[:0]
}
