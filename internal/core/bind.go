package core

import (
	"repro/internal/simplex"
)

// Bind rewrites a condition tree into its pre-bound form against a symbol
// table: every variable-reading leaf is replaced by a bound node whose slot
// is the interned symbol id (Compare, BoolIs) or a pre-built event key
// (Arrival), so Eval on the bound tree performs no map lookup and no string
// building. And/Or/Duration nodes are rebuilt around their bound children;
// leaves with nothing to bind (time windows, presence, EPG, foreign kinds)
// are shared with the original tree.
//
// A bound tree is only meaningful against contexts backed by the same
// symbol table (NewInternedContext). Binding does not change semantics:
// bound nodes delegate String, Vars and dependency extraction to the node
// they wrap, so logs, indexes and the conflict checker see the original
// condition.
func Bind(c Condition, tab *Symtab) Condition {
	switch n := c.(type) {
	case nil:
		return nil
	case *And:
		return &And{Terms: bindTerms(n.Terms, tab)}
	case *Or:
		return &Or{Terms: bindTerms(n.Terms, tab)}
	case *Compare:
		return &BoundCompare{Compare: n, ID: tab.Intern(n.Var)}
	case *BoolIs:
		return &BoundBoolIs{BoolIs: n, ID: tab.Intern(n.Var)}
	case *Presence:
		b := &BoundPresence{Presence: n, home: n.Place == "home"}
		if n.Person == Someone {
			b.anyone = true
		} else {
			b.person = tab.Intern(n.Person)
		}
		if !b.home {
			b.place = tab.Intern(n.Place)
		}
		return b
	case *Nobody:
		b := &BoundNobody{Nobody: n, home: n.Place == "home"}
		if !b.home {
			b.place = tab.Intern(n.Place)
		}
		return b
	case *Everyone:
		b := &BoundEveryone{Everyone: n, home: n.Place == "home"}
		if !b.home {
			b.place = tab.Intern(n.Place)
		}
		return b
	case *Arrival:
		b := &BoundArrival{Arrival: n, nameID: tab.Intern(EventDepKey(n.Event))}
		if n.Person == Someone {
			b.key = "|" + n.Event
		} else {
			b.key = n.Person + "|" + n.Event
			b.keyID = tab.Intern(b.key)
		}
		return b
	case *Duration:
		return &Duration{Inner: Bind(n.Inner, tab), Seconds: n.Seconds, Key: n.Key}
	default:
		return c
	}
}

func bindTerms(terms []Condition, tab *Symtab) []Condition {
	out := make([]Condition, len(terms))
	for i, t := range terms {
		out[i] = Bind(t, tab)
	}
	return out
}

// CollectHolds returns every Duration node in the tree, in depth-first
// order. The engine calls it once at registration so hold maintenance can
// iterate a (usually empty) slice instead of re-walking the condition tree
// every pass.
func CollectHolds(c Condition) []*Duration {
	var out []*Duration
	WalkCond(c, func(n Condition) {
		if d, ok := n.(*Duration); ok {
			out = append(out, d)
		}
	})
	return out
}

// compareNum applies a numeric relation; shared by Compare and
// BoundCompare.
func compareNum(op simplex.Relation, v, want float64) bool {
	switch op {
	case simplex.LE:
		return v <= want
	case simplex.GE:
		return v >= want
	case simplex.LT:
		return v < want
	case simplex.GT:
		return v > want
	case simplex.EQ:
		return v == want
	default:
		return false
	}
}

// BoundCompare is a Compare whose variable is resolved to a symbol id.
type BoundCompare struct {
	*Compare
	// ID is the interned symbol of Var.
	ID uint32
}

// Eval implements Condition over the interned store.
func (b *BoundCompare) Eval(ctx *Context) bool {
	v, ok := ctx.NumberID(b.ID)
	return ok && compareNum(b.Op, v, b.Value)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundCompare) AddCondDeps(d *DepSet) { d.AddKey(NumberDepKey(b.Var)) }

// BoundBoolIs is a BoolIs whose variable is resolved to a symbol id.
type BoundBoolIs struct {
	*BoolIs
	// ID is the interned symbol of Var.
	ID uint32
}

// Eval implements Condition over the interned store.
func (b *BoundBoolIs) Eval(ctx *Context) bool {
	v, ok := ctx.BoolID(b.ID)
	return ok && v == b.Want
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundBoolIs) AddCondDeps(d *DepSet) { d.AddKey(BoolDepKey(b.Var)) }

// BoundPresence is a Presence whose person and place are resolved to symbol
// ids, so Eval reads the context's dense location slots and reverse-index
// counters instead of the Locations map.
type BoundPresence struct {
	*Presence
	person uint32 // interned Person (unused when anyone)
	place  uint32 // interned Place (unused when home)
	anyone bool   // Person == Someone
	home   bool   // Place == "home"
}

// Eval implements Condition over the interned presence store, falling back
// to the wrapped leaf against purely string-keyed contexts.
func (b *BoundPresence) Eval(ctx *Context) bool {
	if ctx.tab == nil {
		return b.Presence.Eval(ctx)
	}
	switch {
	case b.anyone && b.home:
		return ctx.AnyoneHome()
	case b.anyone:
		return ctx.AnyoneAtID(b.place)
	case b.home:
		return ctx.AtHomeID(b.person)
	default:
		return ctx.AtID(b.person, b.place)
	}
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundPresence) AddCondDeps(d *DepSet) {
	if b.Person == Someone {
		d.AddKey(LocationWildcardKey)
	} else {
		d.AddKey(LocationDepKey(b.Person))
	}
}

// BoundNobody is a Nobody whose place is resolved to a symbol id.
type BoundNobody struct {
	*Nobody
	place uint32
	home  bool
}

// Eval implements Condition over the interned presence store.
func (b *BoundNobody) Eval(ctx *Context) bool {
	if ctx.tab == nil {
		return b.Nobody.Eval(ctx)
	}
	if b.home {
		return !ctx.AnyoneHome()
	}
	return !ctx.AnyoneAtID(b.place)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundNobody) AddCondDeps(d *DepSet) { d.AddKey(LocationWildcardKey) }

// BoundEveryone is an Everyone whose place is resolved to a symbol id.
type BoundEveryone struct {
	*Everyone
	place uint32
	home  bool
}

// Eval implements Condition over the interned presence store.
func (b *BoundEveryone) Eval(ctx *Context) bool {
	if ctx.tab == nil {
		return b.Everyone.Eval(ctx)
	}
	if b.home {
		return ctx.EveryoneHome()
	}
	return ctx.EveryoneAtID(b.place)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundEveryone) AddCondDeps(d *DepSet) { d.AddKey(LocationWildcardKey) }

// BoundArrival is an Arrival with its "person|event" lookup key (or
// "|event" suffix, for Someone) built once at bind time, plus the interned
// key and event-name ids read by the context's id-indexed event store.
type BoundArrival struct {
	*Arrival
	key    string
	keyID  uint32 // interned "person|event" (unused for Someone)
	nameID uint32 // interned EventDepKey(Event)
}

// Eval implements Condition without rebuilding the event key: interned
// contexts read the id-indexed store, string-keyed contexts scan the map.
func (b *BoundArrival) Eval(ctx *Context) bool {
	if ctx.tab != nil {
		if b.Person == Someone {
			return ctx.HasEventNameID(b.nameID)
		}
		return ctx.HasEventKeyID(b.keyID)
	}
	if b.Person == Someone {
		return ctx.HasEventSuffix(b.key)
	}
	return ctx.HasEventKey(b.key)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundArrival) AddCondDeps(d *DepSet) {
	d.AddKey(EventDepKey(b.Event))
	d.Time = true
}
