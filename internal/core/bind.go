package core

import (
	"repro/internal/simplex"
)

// Bind rewrites a condition tree into its pre-bound form against a symbol
// table: every variable-reading leaf is replaced by a bound node whose slot
// is the interned symbol id (Compare, BoolIs) or a pre-built event key
// (Arrival), so Eval on the bound tree performs no map lookup and no string
// building. And/Or/Duration nodes are rebuilt around their bound children;
// leaves with nothing to bind (time windows, presence, EPG, foreign kinds)
// are shared with the original tree.
//
// A bound tree is only meaningful against contexts backed by the same
// symbol table (NewInternedContext). Binding does not change semantics:
// bound nodes delegate String, Vars and dependency extraction to the node
// they wrap, so logs, indexes and the conflict checker see the original
// condition.
func Bind(c Condition, tab *Symtab) Condition {
	switch n := c.(type) {
	case nil:
		return nil
	case *And:
		return &And{Terms: bindTerms(n.Terms, tab)}
	case *Or:
		return &Or{Terms: bindTerms(n.Terms, tab)}
	case *Compare:
		return &BoundCompare{Compare: n, ID: tab.Intern(n.Var)}
	case *BoolIs:
		return &BoundBoolIs{BoolIs: n, ID: tab.Intern(n.Var)}
	case *Arrival:
		b := &BoundArrival{Arrival: n}
		if n.Person == Someone {
			b.key = "|" + n.Event
		} else {
			b.key = n.Person + "|" + n.Event
		}
		return b
	case *Duration:
		return &Duration{Inner: Bind(n.Inner, tab), Seconds: n.Seconds, Key: n.Key}
	default:
		return c
	}
}

func bindTerms(terms []Condition, tab *Symtab) []Condition {
	out := make([]Condition, len(terms))
	for i, t := range terms {
		out[i] = Bind(t, tab)
	}
	return out
}

// CollectHolds returns every Duration node in the tree, in depth-first
// order. The engine calls it once at registration so hold maintenance can
// iterate a (usually empty) slice instead of re-walking the condition tree
// every pass.
func CollectHolds(c Condition) []*Duration {
	var out []*Duration
	WalkCond(c, func(n Condition) {
		if d, ok := n.(*Duration); ok {
			out = append(out, d)
		}
	})
	return out
}

// compareNum applies a numeric relation; shared by Compare and
// BoundCompare.
func compareNum(op simplex.Relation, v, want float64) bool {
	switch op {
	case simplex.LE:
		return v <= want
	case simplex.GE:
		return v >= want
	case simplex.LT:
		return v < want
	case simplex.GT:
		return v > want
	case simplex.EQ:
		return v == want
	default:
		return false
	}
}

// BoundCompare is a Compare whose variable is resolved to a symbol id.
type BoundCompare struct {
	*Compare
	// ID is the interned symbol of Var.
	ID uint32
}

// Eval implements Condition over the interned store.
func (b *BoundCompare) Eval(ctx *Context) bool {
	v, ok := ctx.NumberID(b.ID)
	return ok && compareNum(b.Op, v, b.Value)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundCompare) AddCondDeps(d *DepSet) { d.AddKey(NumberDepKey(b.Var)) }

// BoundBoolIs is a BoolIs whose variable is resolved to a symbol id.
type BoundBoolIs struct {
	*BoolIs
	// ID is the interned symbol of Var.
	ID uint32
}

// Eval implements Condition over the interned store.
func (b *BoundBoolIs) Eval(ctx *Context) bool {
	v, ok := ctx.BoolID(b.ID)
	return ok && v == b.Want
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundBoolIs) AddCondDeps(d *DepSet) { d.AddKey(BoolDepKey(b.Var)) }

// BoundArrival is an Arrival with its "person|event" lookup key (or
// "|event" suffix, for Someone) built once at bind time.
type BoundArrival struct {
	*Arrival
	key string
}

// Eval implements Condition without rebuilding the event key.
func (b *BoundArrival) Eval(ctx *Context) bool {
	if b.Person == Someone {
		return ctx.HasEventSuffix(b.key)
	}
	return ctx.HasEventKey(b.key)
}

// AddCondDeps implements DepsProvider by delegating to the wrapped leaf.
func (b *BoundArrival) AddCondDeps(d *DepSet) {
	d.AddKey(EventDepKey(b.Event))
	d.Time = true
}
