// Package core implements the paper's central artifact: executable rule
// objects compiled from CADEL commands.
//
// A rule object pairs a device action with a condition tree. Condition trees
// are evaluated against a Context — an instantaneous snapshot of every sensor
// reading, device state, user location, arrival event and broadcast programme
// the home server knows about. For conflict analysis the same trees are
// normalised to disjunctive normal form (ToDNF) whose numeric atoms become
// linear inequalities for the simplex feasibility check, exactly as in
// Sect. 4.4 of the paper.
package core
