package core

import (
	"fmt"
	"testing"
)

// FuzzCompactRemap drives Symtab.Compact with byte-derived intern/kill/
// compact streams and asserts the remap invariants every id holder depends
// on:
//
//   - the remap table always covers the pre-compaction id space;
//   - live ids renumber densely and monotonically (order preserved), dead
//     ids map to DeadID exactly;
//   - names round-trip across any number of epochs (Name/Lookup agree with
//     a shadow map), dead names stop resolving, and re-interning a dead
//     name appends a fresh id;
//   - Len always equals the live count and the epoch counter increments
//     once per compaction.
func FuzzCompactRemap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 4, 5, 251, 6})
	f.Add([]byte{250, 250, 250})
	f.Add([]byte{0, 250, 0, 250, 0, 250})
	f.Add([]byte{9, 8, 7, 6, 5, 251, 1, 2, 3, 250, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewSymtab()
		alive := make(map[string]bool) // name → currently marked live
		var order []string             // live names in id order (the shadow table)
		epochs := uint64(0)

		compact := func() {
			live := &IDSet{}
			var kept []string
			for _, n := range order {
				if alive[n] {
					id, ok := tab.Lookup(n)
					if !ok {
						t.Fatalf("live name %q unknown before compaction", n)
					}
					live.Add(id)
					kept = append(kept, n)
				}
			}
			before := tab.Len()
			remap, epoch := tab.Compact(live)
			epochs++
			if epoch != epochs {
				t.Fatalf("epoch = %d, want %d", epoch, epochs)
			}
			if len(remap) != before {
				t.Fatalf("remap covers %d ids, want %d", len(remap), before)
			}
			next := uint32(0)
			for id := range remap {
				dead := !alive[order[id]]
				switch {
				case dead && remap[id] != DeadID:
					t.Fatalf("dead id %d remapped to %d, want DeadID", id, remap[id])
				case !dead && remap[id] != next:
					t.Fatalf("live id %d remapped to %d, want %d (not dense/monotonic)", id, remap[id], next)
				case !dead:
					next++
				}
			}
			for _, n := range order {
				if !alive[n] {
					if id, ok := tab.Lookup(n); ok {
						t.Fatalf("dead name %q still resolves to %d", n, id)
					}
					delete(alive, n)
				}
			}
			order = kept
			if tab.Len() != len(order) {
				t.Fatalf("Len = %d after compaction, want %d live", tab.Len(), len(order))
			}
		}

		for _, b := range data {
			switch {
			case b == 250:
				compact()
			case b == 251: // kill every other live name
				for i, n := range order {
					if i%2 == 1 {
						alive[n] = false
					}
				}
			default:
				n := fmt.Sprintf("sym-%d", b%64)
				id := tab.Intern(n)
				if !alive[n] {
					if int(id) != len(order) {
						// Known live names return their id; everything else
						// (fresh or previously killed+compacted) appends.
						if known, ok := tab.Lookup(n); !ok || known != id {
							t.Fatalf("Intern(%q) = %d, inconsistent with Lookup", n, id)
						}
						if idx := int(id); idx >= len(order) || order[idx] != n {
							t.Fatalf("Intern(%q) = %d, not dense (live %d)", n, id, len(order))
						}
					} else {
						order = append(order, n)
					}
					alive[n] = true
				}
			}
		}

		// Final sweep: the shadow table and the symtab agree id for id.
		if tab.Len() != len(order) {
			t.Fatalf("final Len = %d, shadow %d", tab.Len(), len(order))
		}
		for i, n := range order {
			if got := tab.Name(uint32(i)); got != n {
				t.Fatalf("final Name(%d) = %q, shadow %q", i, got, n)
			}
			if id, ok := tab.Lookup(n); !ok || id != uint32(i) {
				t.Fatalf("final Lookup(%q) = %d,%v, shadow id %d", n, id, ok, i)
			}
		}
	})
}
