package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simplex"
)

func TestSymtabInternRoundTrip(t *testing.T) {
	tab := NewSymtab()
	names := []string{"temperature", "living room/temperature", "tv/power", "", "a/b/c"}
	ids := make([]uint32, len(names))
	for i, n := range names {
		ids[i] = tab.Intern(n)
	}
	for i, n := range names {
		if got := tab.Intern(n); got != ids[i] {
			t.Errorf("Intern(%q) unstable: %d then %d", n, ids[i], got)
		}
		if got := tab.Name(ids[i]); got != n {
			t.Errorf("Name(%d) = %q, want %q", ids[i], got, n)
		}
		if got, ok := tab.Lookup(n); !ok || got != ids[i] {
			t.Errorf("Lookup(%q) = %d,%v, want %d,true", n, got, ok, ids[i])
		}
	}
	// Dense and collision-free: ids are exactly 0..len-1.
	seen := make(map[uint32]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
		if int(id) >= len(names) {
			t.Fatalf("id %d not dense for %d names", id, len(names))
		}
	}
	if tab.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(names))
	}
	if _, ok := tab.Lookup("never-interned"); ok {
		t.Error("Lookup of never-interned name succeeded")
	}
}

func TestIDSet(t *testing.T) {
	var s IDSet
	if s.Has(0) || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if !s.Add(3) || !s.Add(200) || !s.Add(64) {
		t.Fatal("fresh Add returned false")
	}
	if s.Add(3) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Has(3) || !s.Has(200) || !s.Has(64) || s.Has(4) || s.Has(1000) {
		t.Fatal("membership wrong")
	}
	if got := s.IDs(); len(got) != 3 || got[0] != 3 || got[1] != 200 || got[2] != 64 {
		t.Fatalf("IDs = %v, want insertion order [3 200 64]", got)
	}
	if !s.IntersectsAny([]uint32{7, 64}) || s.IntersectsAny([]uint32{7, 9}) || s.IntersectsAny(nil) {
		t.Fatal("IntersectsAny wrong")
	}
	s.Reset()
	if s.Len() != 0 || s.Has(3) || s.Has(200) || s.Has(64) {
		t.Fatal("Reset left members behind")
	}
	if !s.Add(200) {
		t.Fatal("Add after Reset returned false")
	}
}

// contextPairT drives an interned context and a string-keyed reference
// through the same writes and asserts every read agrees.
type contextPairT struct {
	t   *testing.T
	in  *Context
	ref *Context
}

func newContextPair(t *testing.T) *contextPairT {
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	return &contextPairT{t: t, in: NewInternedContext(now, NewSymtab()), ref: NewContext(now)}
}

func (p *contextPairT) setNumber(key string, v float64) {
	p.in.SetNumber(key, v)
	p.ref.SetNumber(key, v)
}

func (p *contextPairT) setBool(key string, v bool) {
	p.in.SetBool(key, v)
	p.ref.SetBool(key, v)
}

func (p *contextPairT) checkNumber(name string) {
	p.t.Helper()
	gv, gok := p.in.Number(name)
	wv, wok := p.ref.Number(name)
	if gv != wv || gok != wok {
		p.t.Errorf("Number(%q): interned = %v,%v, string-keyed = %v,%v", name, gv, gok, wv, wok)
	}
}

func (p *contextPairT) checkBool(name string) {
	p.t.Helper()
	gv, gok := p.in.Bool(name)
	wv, wok := p.ref.Bool(name)
	if gv != wv || gok != wok {
		p.t.Errorf("Bool(%q): interned = %v,%v, string-keyed = %v,%v", name, gv, gok, wv, wok)
	}
}

// TestInternedResolutionCacheInvalidation is the heart of the symtab design:
// an unqualified name's resolution is cached per key-population generation,
// so interning (writing) a new qualified key mid-stream must invalidate it —
// including when the new key sorts before the previously resolved one, and
// when an exact unqualified key later appears and takes precedence.
func TestInternedResolutionCacheInvalidation(t *testing.T) {
	p := newContextPair(t)

	// No keys yet: unresolved (and the miss itself gets cached).
	p.checkNumber("temperature")

	// One qualified key: suffix match.
	p.setNumber("kitchen/temperature", 21)
	p.checkNumber("temperature")

	// Re-read (cache hit) then write a key that sorts BEFORE the cached
	// resolution: the cache must recompute, not keep kitchen.
	p.checkNumber("temperature")
	p.setNumber("bedroom/temperature", 17)
	p.checkNumber("temperature")
	if v, ok := p.in.Number("temperature"); !ok || v != 17 {
		t.Fatalf("Number(temperature) = %v,%v, want bedroom's 17 (sorted-first)", v, ok)
	}

	// A key sorting after the current winner: resolution must NOT change.
	p.setNumber("lounge/temperature", 30)
	p.checkNumber("temperature")

	// Value updates without population growth keep the cache valid but must
	// read the fresh value.
	p.setNumber("bedroom/temperature", 18)
	p.checkNumber("temperature")
	if v, _ := p.in.Number("temperature"); v != 18 {
		t.Fatalf("stale value %v after in-place update", v)
	}

	// An exact unqualified key wins over any suffix match.
	p.setNumber("temperature", 99)
	p.checkNumber("temperature")
	if v, _ := p.in.Number("temperature"); v != 99 {
		t.Fatalf("exact key did not win: %v", v)
	}

	// Qualified queries never suffix-match.
	p.checkNumber("hall/temperature")
	p.setNumber("annex/hall/temperature", 5)
	p.checkNumber("hall/temperature")

	// Booleans follow the same rules through their own namespace.
	p.checkBool("power")
	p.setBool("tv/power", true)
	p.checkBool("power")
	p.setBool("stereo/power", false)
	p.checkBool("power") // stereo sorts after tv? "stereo" < "tv": winner flips
	p.setBool("power", true)
	p.checkBool("power")

	// The two namespaces are independent: a numeric "power" must not shadow
	// the boolean one.
	p.setNumber("amp/power", 7)
	p.checkBool("power")
	p.checkNumber("power")
}

// TestInternedContextMatchesStringKeyed sweeps a larger deterministic write/
// read mix through both backends.
func TestInternedContextMatchesStringKeyed(t *testing.T) {
	p := newContextPair(t)
	rooms := []string{"living room", "kitchen", "hall", "bedroom", "annex"}
	vars := []string{"temperature", "humidity", "illuminance"}
	for i := 0; i < 200; i++ {
		room := rooms[i%len(rooms)]
		v := vars[(i/3)%len(vars)]
		if i%7 == 0 {
			p.setNumber(v, float64(i)) // unqualified exact write
		} else {
			p.setNumber(room+"/"+v, float64(i))
		}
		if i%5 == 0 {
			p.setBool(room+"/dark", i%2 == 0)
		}
		for _, q := range vars {
			p.checkNumber(q)
			p.checkNumber(room + "/" + q)
		}
		p.checkBool("dark")
		p.checkBool(room + "/dark")
	}
	// The string map view of the interned context stays truthful.
	for k, v := range p.ref.Numbers {
		if got, ok := p.in.Numbers[k]; !ok || got != v {
			t.Fatalf("interned Numbers[%q] = %v,%v, want %v", k, got, ok, v)
		}
	}
	if len(p.in.Numbers) != len(p.ref.Numbers) || len(p.in.Bools) != len(p.ref.Bools) {
		t.Fatal("map views diverged in size")
	}
}

// TestBindEquivalence evaluates bound and unbound trees over the same
// interned context and requires identical results, strings and vars.
func TestBindEquivalence(t *testing.T) {
	tab := NewSymtab()
	ctx := NewInternedContext(time.Date(2005, 3, 7, 23, 0, 0, 0, time.UTC), tab)
	ctx.SetNumber("living room/temperature", 30)
	ctx.SetBool("tv/power", true)
	ctx.SetLocation("tom", "living room")
	ctx.SetUsers([]string{"tom"})
	ctx.RecordEvent("tom", "home-from-work")

	conds := []Condition{
		&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
		&Compare{Var: "living room/temperature", Op: simplex.GT, Value: 28},
		&Compare{Var: "basement/temperature", Op: simplex.GT, Value: 28},
		&BoolIs{Var: "power", Want: true},
		&BoolIs{Var: "tv/power", Want: false},
		&Arrival{Person: "tom", Event: "home-from-work"},
		&Arrival{Person: Someone, Event: "home-from-work"},
		&Arrival{Person: "emily", Event: "home-from-work"},
		&And{Terms: []Condition{
			&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
			&Or{Terms: []Condition{
				&BoolIs{Var: "tv/power", Want: true},
				&Nobody{Place: "home"},
			}},
		}},
		&Duration{Key: "k", Seconds: 60, Inner: &BoolIs{Var: "tv/power", Want: true}},
		&TimeWindow{FromMin: 22 * 60, ToMin: 6 * 60, Weekday: -1},
		Always{},
	}
	for i, c := range conds {
		b := Bind(c, tab)
		if got, want := b.Eval(ctx), c.Eval(ctx); got != want {
			t.Errorf("cond %d (%s): bound = %v, unbound = %v", i, c, got, want)
		}
		if got, want := b.String(), c.String(); got != want {
			t.Errorf("cond %d: String diverged: %q vs %q", i, got, want)
		}
		if got, want := fmt.Sprint(b.Vars(nil)), fmt.Sprint(c.Vars(nil)); got != want {
			t.Errorf("cond %d: Vars diverged: %s vs %s", i, got, want)
		}
		bd, cd := CondDeps(b), CondDeps(c)
		if fmt.Sprint(bd.SortedKeys()) != fmt.Sprint(cd.SortedKeys()) || bd.Time != cd.Time || bd.Unknown != cd.Unknown {
			t.Errorf("cond %d: deps diverged: %v/%v/%v vs %v/%v/%v",
				i, bd.SortedKeys(), bd.Time, bd.Unknown, cd.SortedKeys(), cd.Time, cd.Unknown)
		}
	}
}

func TestCollectHolds(t *testing.T) {
	inner := &Duration{Key: "inner", Seconds: 5, Inner: Always{}}
	outer := &And{Terms: []Condition{
		&Duration{Key: "outer", Seconds: 10, Inner: inner},
		&Or{Terms: []Condition{&Duration{Key: "or-branch", Seconds: 1, Inner: Always{}}}},
	}}
	holds := CollectHolds(outer)
	if len(holds) != 3 {
		t.Fatalf("CollectHolds found %d nodes, want 3", len(holds))
	}
	keys := map[string]bool{}
	for _, d := range holds {
		keys[d.Key] = true
	}
	for _, k := range []string{"inner", "outer", "or-branch"} {
		if !keys[k] {
			t.Errorf("missing hold %q", k)
		}
	}
	if CollectHolds(Always{}) != nil {
		t.Error("CollectHolds(Always) should be nil")
	}
}

// TestDepSetIDsIn checks the compiled dependency form: sorted, deduplicated,
// stable across calls against the same table.
func TestDepSetIDsIn(t *testing.T) {
	tab := NewSymtab()
	cond := &And{Terms: []Condition{
		&Compare{Var: "temperature", Op: simplex.GT, Value: 1},
		&BoolIs{Var: "tv/power", Want: true},
		&Compare{Var: "temperature", Op: simplex.GT, Value: 2}, // duplicate key
	}}
	ids := CondDeps(cond).IDsIn(tab)
	if len(ids) != 2 {
		t.Fatalf("IDsIn = %v, want 2 distinct ids", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDsIn not sorted: %v", ids)
		}
	}
	again := CondDeps(cond).IDsIn(tab)
	if fmt.Sprint(again) != fmt.Sprint(ids) {
		t.Fatalf("IDsIn unstable: %v vs %v", again, ids)
	}
	if CondDeps(Always{}).IDsIn(tab) != nil {
		t.Error("empty dep set should produce nil ids")
	}
}
