package core

import (
	"reflect"
	"testing"

	"repro/internal/simplex"
)

// TestCondDepsPerKind pins down, for every Condition kind the compiler can
// emit, exactly which context keys the extractor reports and whether the
// condition is time-dependent. (The language has no standalone negation;
// and/or/leaf kinds below are the complete tree vocabulary.)
func TestCondDepsPerKind(t *testing.T) {
	cases := []struct {
		name     string
		cond     Condition
		wantKeys []string
		wantTime bool
	}{
		{"nil", nil, nil, false},
		{"always", Always{}, nil, false},
		{"always-ptr", &Always{}, nil, false},
		{"compare-unqualified",
			&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
			[]string{"num/temperature"}, false},
		{"compare-qualified",
			&Compare{Var: "living room/temperature", Op: simplex.GT, Value: 28},
			[]string{"num/living room/temperature"}, false},
		{"bool",
			&BoolIs{Var: "tv/power", Want: true},
			[]string{"bool/tv/power"}, false},
		{"presence-person",
			&Presence{Person: "tom", Place: "living room"},
			[]string{"loc/tom"}, false},
		{"presence-someone",
			&Presence{Person: Someone, Place: "living room"},
			[]string{"loc/*"}, false},
		{"nobody",
			&Nobody{Place: "home"},
			[]string{"loc/*"}, false},
		{"everyone",
			&Everyone{Place: "living room"},
			[]string{"loc/*"}, false},
		{"arrival",
			&Arrival{Person: "alan", Event: "home-from-work"},
			[]string{"event/home-from-work"}, true},
		{"arrival-someone",
			&Arrival{Person: Someone, Event: "home-from-shopping"},
			[]string{"event/home-from-shopping"}, true},
		{"on-air",
			&OnAir{Keyword: "baseball game"},
			[]string{"epg/programs"}, false},
		{"on-air-favorite",
			&OnAir{Category: "movie", FavoriteOf: "emily"},
			[]string{"epg/programs"}, false},
		{"time-window",
			&TimeWindow{FromMin: 22 * 60, ToMin: 6 * 60, Weekday: -1},
			nil, true},
		{"duration",
			&Duration{Inner: &BoolIs{Var: "entrance door/locked", Want: false}, Seconds: 3600, Key: "k"},
			[]string{"bool/entrance door/locked"}, true},
		{"and",
			&And{Terms: []Condition{
				&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
				&Compare{Var: "humidity", Op: simplex.GT, Value: 60},
			}},
			[]string{"num/humidity", "num/temperature"}, false},
		{"or",
			&Or{Terms: []Condition{
				&Presence{Person: "tom", Place: "hall"},
				&BoolIs{Var: "hall/dark", Want: true},
			}},
			[]string{"bool/hall/dark", "loc/tom"}, false},
		{"nested",
			&And{Terms: []Condition{
				&Or{Terms: []Condition{
					&Arrival{Person: "alan", Event: "home-from-work"},
					&Presence{Person: Someone, Place: "living room"},
				}},
				&Duration{Inner: &Compare{Var: "illuminance", Op: simplex.LT, Value: 10}, Seconds: 60, Key: "k"},
			}},
			[]string{"event/home-from-work", "loc/*", "num/illuminance"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CondDeps(tc.cond)
			keys := got.SortedKeys()
			if len(keys) == 0 {
				keys = nil
			}
			if !reflect.DeepEqual(keys, tc.wantKeys) {
				t.Errorf("keys = %v, want %v", keys, tc.wantKeys)
			}
			if got.Time != tc.wantTime {
				t.Errorf("time = %v, want %v", got.Time, tc.wantTime)
			}
			// Completeness: no kind the compiler can emit falls into the
			// conservative unknown bucket that defeats indexing.
			if got.Unknown {
				t.Errorf("condition kind %T is unknown to the extractor", tc.cond)
			}
		})
	}
}

// unknownCond is a Condition implemented outside the extractor's vocabulary.
type unknownCond struct{ Always }

// TestCondDepsUnknownKindIsTimeDependent checks the conservative fallback:
// a condition the extractor cannot analyse must be re-evaluated every pass,
// and is flagged Unknown so tests (and tooling) can detect the coverage gap.
func TestCondDepsUnknownKindIsTimeDependent(t *testing.T) {
	got := CondDeps(unknownCond{})
	if !got.Time {
		t.Error("unknown condition kind must be conservatively time-dependent")
	}
	if !got.Unknown {
		t.Error("unknown condition kind must be flagged Unknown")
	}
}

// providerCond is an external condition kind that reports its dependencies
// through the DepsProvider interface instead of the conservative bucket.
type providerCond struct{ Always }

func (providerCond) AddCondDeps(d *DepSet) {
	d.AddKey(NumberDepKey("co2"))
}

// TestCondDepsProvider checks that external condition kinds can opt into
// exact extraction: their reported keys are indexed and they are neither
// time-dependent nor unknown.
func TestCondDepsProvider(t *testing.T) {
	got := CondDeps(providerCond{})
	if got.Unknown || got.Time {
		t.Errorf("provider kind misclassified: unknown=%v time=%v", got.Unknown, got.Time)
	}
	if !got.Has("num/co2") {
		t.Errorf("provider keys = %v, want num/co2", got.SortedKeys())
	}
	// Inside a tree, provider deps merge with the analysed kinds'.
	tree := &And{Terms: []Condition{
		providerCond{},
		&TimeWindow{FromMin: 0, ToMin: 60, Weekday: -1},
	}}
	merged := CondDeps(tree)
	if !merged.Has("num/co2") || !merged.Time || merged.Unknown {
		t.Errorf("merged = keys %v time %v unknown %v", merged.SortedKeys(), merged.Time, merged.Unknown)
	}
}

func TestDirtyKeyHelpers(t *testing.T) {
	if got := NumberDirtyKeys("living room/temperature"); !reflect.DeepEqual(got,
		[]string{"num/living room/temperature", "num/temperature"}) {
		t.Errorf("NumberDirtyKeys qualified = %v", got)
	}
	if got := NumberDirtyKeys("temperature"); !reflect.DeepEqual(got, []string{"num/temperature"}) {
		t.Errorf("NumberDirtyKeys unqualified = %v", got)
	}
	if got := BoolDirtyKeys("tv/power"); !reflect.DeepEqual(got, []string{"bool/tv/power", "bool/power"}) {
		t.Errorf("BoolDirtyKeys = %v", got)
	}
	if got := LocationDirtyKeys("tom"); !reflect.DeepEqual(got, []string{"loc/tom", "loc/*"}) {
		t.Errorf("LocationDirtyKeys = %v", got)
	}
}

func TestDepSetIntersects(t *testing.T) {
	d := CondDeps(&Compare{Var: "temperature", Op: simplex.GT, Value: 1})
	if !d.Intersects(map[string]struct{}{"num/temperature": {}, "x": {}}) {
		t.Error("want intersection on num/temperature")
	}
	if d.Intersects(map[string]struct{}{"num/humidity": {}}) {
		t.Error("unexpected intersection")
	}
	if d.Intersects(nil) {
		t.Error("empty dirty set must not intersect")
	}
	if !d.Has("num/temperature") || d.Has("num/humidity") {
		t.Error("Has misreports membership")
	}
}
