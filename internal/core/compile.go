package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

// ErrCompile can be matched with errors.Is against any compilation failure.
var ErrCompile = errors.New("core: compile error")

const maxWordDepth = 8

// Compiler translates parsed CADEL commands into executable rule objects,
// expanding user-defined condition and configuration words from the lexicon.
type Compiler struct {
	Lexicon *vocab.Lexicon
}

// NewCompiler returns a compiler over the given lexicon.
func NewCompiler(lex *vocab.Lexicon) *Compiler {
	return &Compiler{Lexicon: lex}
}

// CompileRule compiles a parsed RuleDef into a rule object owned by owner.
func (c *Compiler) CompileRule(def *lang.RuleDef, id, owner string) (*Rule, error) {
	rule := &Rule{
		ID:    id,
		Owner: owner,
		Device: DeviceRef{
			Name:     def.Object.Device,
			Location: def.Object.Location,
		},
		Action: Action{Verb: def.Verb},
		Source: def.String(),
	}

	settings, err := c.compileConfig(def.Config, 0)
	if err != nil {
		return nil, err
	}
	rule.Action.Settings = settings

	var conds []Condition
	for _, clause := range []*lang.CondClause{def.Pre, def.Post} {
		if clause == nil {
			continue
		}
		cond, err := c.compileClause(clause, owner)
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
	}
	switch len(conds) {
	case 0:
		rule.Cond = Always{}
	case 1:
		rule.Cond = conds[0]
	default:
		rule.Cond = &And{Terms: conds}
	}
	// A located rule ("... the air conditioner at the living room") scopes
	// its unqualified numeric sensor variables to the same room: the user's
	// "temperature" means the temperature where the device is. Duration
	// keys are derived from condition content, so they are recomputed after
	// scoping.
	if rule.Device.Location != "" {
		WalkCond(rule.Cond, func(c Condition) {
			if cmp, ok := c.(*Compare); ok && !strings.Contains(cmp.Var, "/") {
				cmp.Var = rule.Device.Location + "/" + cmp.Var
			}
		})
		WalkCond(rule.Cond, func(c Condition) {
			if d, ok := c.(*Duration); ok {
				d.Key = durationKey(d.Inner, d.Seconds)
			}
		})
	}
	return rule, nil
}

// CompileCondExpr compiles a standalone condition expression (used for
// user-word definitions and ad-hoc queries).
func (c *Compiler) CompileCondExpr(expr lang.CondExpr, owner string) (Condition, error) {
	return c.compileExpr(expr, owner, make(map[string]bool))
}

func (c *Compiler) compileClause(clause *lang.CondClause, owner string) (Condition, error) {
	var conds []Condition
	if clause.Time != nil {
		win, err := c.timeWindow(clause.Time)
		if err != nil {
			return nil, err
		}
		conds = append(conds, win)
	}
	if clause.Expr != nil {
		cond, err := c.compileExpr(clause.Expr, owner, make(map[string]bool))
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
	}
	switch len(conds) {
	case 0:
		return Always{}, nil
	case 1:
		return conds[0], nil
	default:
		return &And{Terms: conds}, nil
	}
}

func (c *Compiler) compileExpr(expr lang.CondExpr, owner string, expanding map[string]bool) (Condition, error) {
	switch e := expr.(type) {
	case *lang.BinaryExpr:
		left, err := c.compileExpr(e.L, owner, expanding)
		if err != nil {
			return nil, err
		}
		right, err := c.compileExpr(e.R, owner, expanding)
		if err != nil {
			return nil, err
		}
		if e.Op == "and" {
			return &And{Terms: flattenAnd(left, right)}, nil
		}
		return &Or{Terms: flattenOr(left, right)}, nil
	case *lang.CondAtom:
		return c.compileAtom(e, owner)
	case *lang.UserCond:
		return c.expandUserCond(e, owner, expanding)
	default:
		return nil, fmt.Errorf("%w: unknown expression %T", ErrCompile, expr)
	}
}

// flattenAnd merges adjacent And nodes into one.
func flattenAnd(left, right Condition) []Condition {
	var terms []Condition
	if a, ok := left.(*And); ok {
		terms = append(terms, a.Terms...)
	} else {
		terms = append(terms, left)
	}
	if a, ok := right.(*And); ok {
		terms = append(terms, a.Terms...)
	} else {
		terms = append(terms, right)
	}
	return terms
}

func flattenOr(left, right Condition) []Condition {
	var terms []Condition
	if o, ok := left.(*Or); ok {
		terms = append(terms, o.Terms...)
	} else {
		terms = append(terms, left)
	}
	if o, ok := right.(*Or); ok {
		terms = append(terms, o.Terms...)
	} else {
		terms = append(terms, right)
	}
	return terms
}

func (c *Compiler) expandUserCond(uc *lang.UserCond, owner string, expanding map[string]bool) (Condition, error) {
	name := vocab.Normalize(uc.Name)
	if expanding[name] {
		return nil, fmt.Errorf("%w: condition word %q is defined in terms of itself", ErrCompile, name)
	}
	if len(expanding) >= maxWordDepth {
		return nil, fmt.Errorf("%w: condition word nesting deeper than %d", ErrCompile, maxWordDepth)
	}
	entry, ok := c.Lexicon.Lookup(vocab.KindCondWord, name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown condition word %q", ErrCompile, name)
	}
	src := entry.MetaValue(vocab.MetaSource)
	expr, err := lang.ParseCondExpr(src, c.Lexicon)
	if err != nil {
		return nil, fmt.Errorf("%w: definition of %q: %v", ErrCompile, name, err)
	}
	expanding[name] = true
	cond, err := c.compileExpr(expr, owner, expanding)
	delete(expanding, name)
	if err != nil {
		return nil, err
	}
	return c.applyQualifiers(cond, uc.Period, uc.Time)
}

func (c *Compiler) compileAtom(atom *lang.CondAtom, owner string) (Condition, error) {
	base, err := c.compileSubjectState(atom, owner)
	if err != nil {
		return nil, err
	}
	return c.applyQualifiers(base, atom.Period, atom.Time)
}

// applyQualifiers wraps a condition with its optional period and time
// qualifiers.
func (c *Compiler) applyQualifiers(base Condition, period *lang.PeriodSpec, ts *lang.TimeSpec) (Condition, error) {
	cond := base
	if period != nil {
		switch period.Kind {
		case lang.PeriodFor:
			cond = &Duration{Inner: cond, Seconds: period.Seconds, Key: durationKey(cond, period.Seconds)}
		case lang.PeriodFromTo:
			from, err := c.timeOfDayMinutes(period.From)
			if err != nil {
				return nil, err
			}
			to, err := c.timeOfDayMinutes(period.To)
			if err != nil {
				return nil, err
			}
			cond = &And{Terms: []Condition{cond, &TimeWindow{FromMin: from, ToMin: to, Weekday: weekdayOf(period.From, period.To)}}}
		case lang.PeriodAfter:
			start, err := c.timeOfDayMinutes(period.After)
			if err != nil {
				return nil, err
			}
			windowed := &And{Terms: []Condition{cond, &TimeWindow{FromMin: start, ToMin: 24 * 60, Weekday: weekdayOfOne(period.After)}}}
			cond = &Duration{Inner: windowed, Seconds: period.Seconds, Key: durationKey(windowed, period.Seconds)}
		}
	}
	if ts != nil {
		win, err := c.timeWindow(ts)
		if err != nil {
			return nil, err
		}
		if and, ok := cond.(*And); ok {
			cond = &And{Terms: append(append([]Condition{}, and.Terms...), win)}
		} else {
			cond = &And{Terms: []Condition{cond, win}}
		}
	}
	return cond, nil
}

func (c *Compiler) compileSubjectState(atom *lang.CondAtom, owner string) (Condition, error) {
	st := atom.State
	subj := atom.Subject
	switch st.Kind {
	case vocab.StatePresence:
		person, err := subjectPerson(subj, owner)
		if err != nil {
			return nil, err
		}
		switch subj.Kind {
		case lang.SubNobody:
			return &Nobody{Place: st.Place}, nil
		case lang.SubEveryone:
			return &Everyone{Place: st.Place}, nil
		default:
			return &Presence{Person: person, Place: st.Place}, nil
		}
	case vocab.StateArrival:
		if subj.Kind == lang.SubNobody || subj.Kind == lang.SubEveryone {
			return nil, fmt.Errorf("%w: %q cannot be the subject of an arrival event", ErrCompile, subj.String())
		}
		person, err := subjectPerson(subj, owner)
		if err != nil {
			return nil, err
		}
		return &Arrival{Person: person, Event: st.Event}, nil
	case vocab.StateBool:
		varName := qualifyVar(subj, st.Var)
		return &BoolIs{Var: varName, Want: st.Bool}, nil
	case vocab.StateCompare:
		if st.Value == nil {
			return nil, fmt.Errorf("%w: comparison without a value", ErrCompile)
		}
		op, err := relationOf(st.Op)
		if err != nil {
			return nil, err
		}
		value, err := canonicalNumber(*st.Value)
		if err != nil {
			return nil, err
		}
		varName := c.sensorVar(subj)
		return &Compare{Var: varName, Op: op, Value: value}, nil
	case vocab.StateOnAir:
		name := subj.Name
		if subj.My || strings.HasPrefix(name, "favorite ") {
			category := strings.TrimPrefix(name, "favorite ")
			return &OnAir{Category: category, FavoriteOf: owner}, nil
		}
		return &OnAir{Keyword: name}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported state kind %q", ErrCompile, st.Kind)
	}
}

func subjectPerson(subj lang.Subject, owner string) (string, error) {
	switch subj.Kind {
	case lang.SubMe:
		if owner == "" {
			return "", fmt.Errorf("%w: rule with \"i\" needs an owner", ErrCompile)
		}
		return owner, nil
	case lang.SubSomeone:
		return Someone, nil
	case lang.SubPerson, lang.SubDevice, lang.SubEvent, lang.SubPlace:
		return subj.Name, nil
	default:
		return Someone, nil
	}
}

// qualifyVar builds the boolean state variable name "subject/state-var",
// optionally location-prefixed.
func qualifyVar(subj lang.Subject, stateVar string) string {
	parts := make([]string, 0, 3)
	if subj.Location != "" {
		parts = append(parts, subj.Location)
	}
	if subj.Name != "" {
		parts = append(parts, subj.Name)
	}
	parts = append(parts, stateVar)
	return strings.Join(parts, "/")
}

// sensorVar canonicalises a numeric sensor variable via the parameter table
// ("humidity" stays "humidity") and prefixes the location when present.
func (c *Compiler) sensorVar(subj lang.Subject) string {
	name := subj.Name
	if e, ok := c.Lexicon.Lookup(vocab.KindParameter, name); ok {
		name = e.Canon
	}
	if subj.Location != "" {
		return subj.Location + "/" + name
	}
	return name
}

func relationOf(op string) (simplex.Relation, error) {
	switch op {
	case "gt":
		return simplex.GT, nil
	case "ge":
		return simplex.GE, nil
	case "lt":
		return simplex.LT, nil
	case "le":
		return simplex.LE, nil
	case "eq":
		return simplex.EQ, nil
	default:
		return 0, fmt.Errorf("%w: unknown comparison %q", ErrCompile, op)
	}
}

// canonicalNumber converts a parsed value to canonical units (Fahrenheit to
// Celsius; everything else is already canonical).
func canonicalNumber(v lang.Value) (float64, error) {
	if !v.IsNumber {
		return 0, fmt.Errorf("%w: expected a numeric value, got %q", ErrCompile, v.Word)
	}
	if v.Unit == "fahrenheit" {
		return (v.Number - 32) * 5 / 9, nil
	}
	return v.Number, nil
}

// timeWindow converts a TimeSpec to a TimeWindow condition.
func (c *Compiler) timeWindow(ts *lang.TimeSpec) (*TimeWindow, error) {
	from, to, err := c.timeBounds(ts.Time)
	if err != nil {
		return nil, err
	}
	day := -1
	if ts.Time.Every != "" {
		if e, ok := c.Lexicon.Lookup(vocab.KindWeekday, ts.Time.Every); ok {
			day, _ = strconv.Atoi(e.MetaValue(vocab.MetaDay))
		}
	}
	switch ts.Prep {
	case "at", "in", "during":
		if ts.Time.Kind == lang.TimeClock {
			// "at 18:00" as a window: the enclosing minute.
			return &TimeWindow{FromMin: from, ToMin: from + 1, Weekday: day}, nil
		}
		return &TimeWindow{FromMin: from, ToMin: to, Weekday: day}, nil
	case "after":
		return &TimeWindow{FromMin: from, ToMin: 24 * 60, Weekday: day}, nil
	case "before":
		return &TimeWindow{FromMin: 0, ToMin: from, Weekday: day}, nil
	case "until":
		end := to
		if ts.Time.Kind == lang.TimeClock {
			end = from
		}
		return &TimeWindow{FromMin: 0, ToMin: end, Weekday: day}, nil
	default:
		return nil, fmt.Errorf("%w: unknown time preposition %q", ErrCompile, ts.Prep)
	}
}

// timeBounds resolves a TimeOfDay to [from, to) minutes since midnight.
func (c *Compiler) timeBounds(tod lang.TimeOfDay) (int, int, error) {
	switch tod.Kind {
	case lang.TimeClock:
		return tod.Minutes, tod.Minutes, nil
	case lang.TimePeriod:
		e, ok := c.Lexicon.Lookup(vocab.KindPeriodName, tod.Name)
		if !ok {
			return 0, 0, fmt.Errorf("%w: unknown day period %q", ErrCompile, tod.Name)
		}
		from, err1 := strconv.Atoi(e.MetaValue(vocab.MetaFromMin))
		to, err2 := strconv.Atoi(e.MetaValue(vocab.MetaToMin))
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("%w: malformed period %q", ErrCompile, tod.Name)
		}
		return from, to, nil
	case lang.TimeAllDay:
		return 0, 24 * 60, nil
	default:
		return 0, 0, fmt.Errorf("%w: unknown time kind", ErrCompile)
	}
}

func (c *Compiler) timeOfDayMinutes(tod *lang.TimeOfDay) (int, error) {
	from, _, err := c.timeBounds(*tod)
	return from, err
}

func weekdayOf(a, b *lang.TimeOfDay) int {
	if d := weekdayOfOne(a); d >= 0 {
		return d
	}
	return weekdayOfOne(b)
}

func weekdayOfOne(tod *lang.TimeOfDay) int {
	if tod == nil || tod.Every == "" {
		return -1
	}
	days := map[string]int{
		"sunday": 0, "monday": 1, "tuesday": 2, "wednesday": 3,
		"thursday": 4, "friday": 5, "saturday": 6,
	}
	if d, ok := days[tod.Every]; ok {
		return d
	}
	return -1
}

// compileConfig converts configuration items to settings, expanding
// user-defined configuration words.
func (c *Compiler) compileConfig(items []lang.ConfItem, depth int) (map[string]Value, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if depth > maxWordDepth {
		return nil, fmt.Errorf("%w: configuration word nesting deeper than %d", ErrCompile, maxWordDepth)
	}
	out := make(map[string]Value, len(items))
	for _, item := range items {
		if item.Parameter != "" {
			val, err := compileValue(item.Value)
			if err != nil {
				return nil, err
			}
			if _, dup := out[item.Parameter]; dup {
				return nil, fmt.Errorf("%w: parameter %q configured twice", ErrCompile, item.Parameter)
			}
			out[item.Parameter] = val
			continue
		}
		// Word item: a user-defined configuration word or a bare mode word.
		word := vocab.Normalize(item.Value.Word)
		if entry, ok := c.Lexicon.Lookup(vocab.KindConfWord, word); ok {
			inner, err := lang.ParseConfItems(entry.MetaValue(vocab.MetaSource), c.Lexicon)
			if err != nil {
				return nil, fmt.Errorf("%w: definition of %q: %v", ErrCompile, word, err)
			}
			expanded, err := c.compileConfig(inner, depth+1)
			if err != nil {
				return nil, err
			}
			for k, v := range expanded {
				if _, dup := out[k]; dup {
					return nil, fmt.Errorf("%w: parameter %q configured twice (via %q)", ErrCompile, k, word)
				}
				out[k] = v
			}
			continue
		}
		if _, dup := out["mode"]; dup {
			return nil, fmt.Errorf("%w: ambiguous bare configuration word %q", ErrCompile, word)
		}
		out["mode"] = Value{Word: word}
	}
	return out, nil
}

func compileValue(v lang.Value) (Value, error) {
	if v.IsNumber {
		num, err := canonicalNumber(v)
		if err != nil {
			return Value{}, err
		}
		unit := v.Unit
		if unit == "fahrenheit" {
			unit = "celsius"
		}
		return Value{IsNumber: true, Number: num, Unit: unit}, nil
	}
	return Value{Word: vocab.Normalize(v.Word)}, nil
}

// durationKey derives a stable identifier for a duration condition from its
// inner condition text and hold time. Identical inner conditions share hold
// tracking, which is semantically sound.
func durationKey(inner Condition, seconds float64) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(inner.String()))
	_, _ = h.Write([]byte(strconv.FormatFloat(seconds, 'g', -1, 64)))
	return "dur-" + strconv.FormatUint(h.Sum64(), 36)
}
