package core

import (
	"fmt"
	"sort"
	"strings"
)

// DeviceRef identifies the target device of a rule by friendly name and
// optional location, as written in CADEL ("the light at the hall").
type DeviceRef struct {
	Name     string `json:"name"`
	Location string `json:"location,omitempty"`
}

// Key returns a canonical "location/name" identifier.
func (d DeviceRef) Key() string {
	if d.Location == "" {
		return d.Name
	}
	return d.Location + "/" + d.Name
}

// Matches reports whether two references denote the same device: names must
// match and locations must match unless one side leaves it unspecified.
func (d DeviceRef) Matches(other DeviceRef) bool {
	if d.Name != other.Name {
		return false
	}
	if d.Location == "" || other.Location == "" {
		return true
	}
	return d.Location == other.Location
}

func (d DeviceRef) String() string { return d.Key() }

// Value is a compiled setting or comparison value.
type Value struct {
	IsNumber bool    `json:"isNumber,omitempty"`
	Number   float64 `json:"number,omitempty"`
	Unit     string  `json:"unit,omitempty"`
	Word     string  `json:"word,omitempty"`
}

func (v Value) String() string {
	if v.IsNumber {
		if v.Unit != "" {
			return fmt.Sprintf("%g %s", v.Number, v.Unit)
		}
		return fmt.Sprintf("%g", v.Number)
	}
	return v.Word
}

// Equal reports exact value equality.
func (v Value) Equal(other Value) bool { return v == other }

// Action is the device command a rule executes: a canonical verb plus the
// settings from the rule's "with ..." configuration.
type Action struct {
	Verb     string           `json:"verb"`
	Settings map[string]Value `json:"settings,omitempty"`
}

// Equal reports whether two actions are identical (same verb, same
// settings). Rules demanding non-equal actions on one device conflict.
func (a Action) Equal(other Action) bool {
	if a.Verb != other.Verb || len(a.Settings) != len(other.Settings) {
		return false
	}
	for k, v := range a.Settings {
		if ov, ok := other.Settings[k]; !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

func (a Action) String() string {
	if len(a.Settings) == 0 {
		return a.Verb
	}
	keys := make([]string, 0, len(a.Settings))
	for k := range a.Settings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, a.Settings[k]))
	}
	return a.Verb + " with " + strings.Join(parts, ", ")
}

// Rule is a compiled CADEL rule object: when Cond holds, apply Action to
// Device. Source preserves the original CADEL text, which doubles as the
// database serialization format.
type Rule struct {
	ID     string
	Owner  string
	Device DeviceRef
	Action Action
	Cond   Condition // never nil; Always{} when the rule is unconditional
	Source string
	// Seq is the registration sequence number assigned by the rule
	// database; it provides a deterministic fallback ordering.
	Seq uint64
	// Bound is the pre-bound form of Cond (see Bind), set by the rule
	// database at registration against its symbol table. The engine's
	// interned evaluation path uses it; nil means the rule was never
	// registered. A rule belongs to at most one database: re-registering the
	// same object elsewhere rebinds it against that database's table.
	Bound Condition
	// Holds lists the Duration nodes of Bound (shared Key strings with
	// Cond), collected once so per-pass hold maintenance iterates a slice
	// instead of re-walking the tree.
	Holds []*Duration
	// DepIDs is Cond's dependency-key set interned and sorted, the
	// branch-cheap form the engine intersects against its dirty-id set.
	DepIDs []uint32
	// IDSym, OwnerSym and DeviceSym are the rule's interned identity — ID,
	// Owner and Device.Key() interned into the owning database's symbol
	// table, plus one (0 = never registered). The engine's id-indexed
	// reconciliation state and the priority table's owner-rank index address
	// rules and devices by them instead of by string.
	IDSym, OwnerSym, DeviceSym uint32
}

// ReadyBound reports whether the rule's condition holds, preferring the
// pre-bound tree when the rule has been registered.
func (r *Rule) ReadyBound(ctx *Context) bool {
	if r.Bound != nil {
		return r.Bound.Eval(ctx)
	}
	return r.Ready(ctx)
}

// Ready reports whether the rule's condition holds in the context.
func (r *Rule) Ready(ctx *Context) bool {
	if r.Cond == nil {
		return true
	}
	return r.Cond.Eval(ctx)
}

// Vars returns the sorted, de-duplicated variables the rule's condition
// reads.
func (r *Rule) Vars() []string {
	if r.Cond == nil {
		return nil
	}
	vars := r.Cond.Vars(nil)
	sort.Strings(vars)
	out := vars[:0]
	for i, v := range vars {
		if i == 0 || vars[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func (r *Rule) String() string {
	cond := "always"
	if r.Cond != nil {
		cond = r.Cond.String()
	}
	return fmt.Sprintf("[%s owner=%s] if %s then %s %s", r.ID, r.Owner, cond, r.Action, r.Device)
}
