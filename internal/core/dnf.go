package core

import (
	"errors"
	"fmt"
)

// Term is a conjunction of atomic conditions (no And/Or/Duration nodes).
type Term []Condition

// MaxDNFTerms bounds the size of a disjunctive normal form to keep conflict
// checking predictable. CADEL conditions written by home users are tiny; the
// bound only guards against pathological machine-generated rules.
const MaxDNFTerms = 4096

// ErrDNFTooLarge reports a condition whose DNF exceeds MaxDNFTerms.
var ErrDNFTooLarge = errors.New("core: condition normal form too large")

// ToDNF normalises a condition tree into disjunctive normal form: a slice of
// terms, each a conjunction of atoms, whose disjunction is equivalent to the
// input for the purposes of satisfiability analysis.
//
// Duration nodes are replaced by their inner condition: "C held for 1 hour"
// implies C holds now, which is the sound over-approximation for conflict
// detection (two rules that could fire together still could if one requires
// an extra hold time).
func ToDNF(c Condition) ([]Term, error) {
	if c == nil {
		return []Term{{}}, nil
	}
	switch n := c.(type) {
	case Always:
		return []Term{{}}, nil
	case *Always:
		return []Term{{}}, nil
	case *And:
		result := []Term{{}}
		for _, sub := range n.Terms {
			subDNF, err := ToDNF(sub)
			if err != nil {
				return nil, err
			}
			if len(result)*len(subDNF) > MaxDNFTerms {
				return nil, fmt.Errorf("%w: %d terms", ErrDNFTooLarge, len(result)*len(subDNF))
			}
			crossed := make([]Term, 0, len(result)*len(subDNF))
			for _, left := range result {
				for _, right := range subDNF {
					merged := make(Term, 0, len(left)+len(right))
					merged = append(merged, left...)
					merged = append(merged, right...)
					crossed = append(crossed, merged)
				}
			}
			result = crossed
		}
		return result, nil
	case *Or:
		var result []Term
		for _, sub := range n.Terms {
			subDNF, err := ToDNF(sub)
			if err != nil {
				return nil, err
			}
			result = append(result, subDNF...)
			if len(result) > MaxDNFTerms {
				return nil, fmt.Errorf("%w: %d terms", ErrDNFTooLarge, len(result))
			}
		}
		return result, nil
	case *Duration:
		return ToDNF(n.Inner)
	default:
		return []Term{{c}}, nil
	}
}

// Eval evaluates the term as a conjunction.
func (t Term) Eval(ctx *Context) bool {
	for _, c := range t {
		if !c.Eval(ctx) {
			return false
		}
	}
	return true
}

// String renders the term.
func (t Term) String() string {
	if len(t) == 0 {
		return "true"
	}
	return joinCond(t, " and ")
}
