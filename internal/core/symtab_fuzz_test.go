package core

import (
	"strings"
	"testing"
	"time"
)

// FuzzSymtabResolve drives an interned context and a string-keyed reference
// context through the same byte-derived operation stream and asserts the
// invariants the engine's hot path rests on:
//
//   - interning is collision-free and stable (same name ↔ same dense id),
//   - qualified/unqualified resolution through the per-generation cache is
//     byte-identical to the reference suffix-scan-and-sort, no matter how
//     writes (population growth), reads (cache fills) and re-reads (cache
//     hits) interleave,
//   - the string map view of the interned store stays truthful.
//
// Ops are decoded from the fuzz input: each byte triple picks an action
// (write number / write bool / read number / read bool), a name from a
// derived alphabet (mixing unqualified, qualified and nested-qualified
// forms) and a value.
func FuzzSymtabResolve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte("temperature/living room"))
	f.Add([]byte{0, 0, 0, 2, 0, 0, 1, 1, 1, 3, 1, 1, 0, 5, 9})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 128, 64, 32, 16, 8, 4, 2, 1, 0})

	bases := []string{"temperature", "humidity", "power", "dark", "a"}
	quals := []string{"", "living room", "kitchen", "hall", "b", "b/c"}

	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewSymtab()
		now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
		in := NewInternedContext(now, tab)
		ref := NewContext(now)

		name := func(b byte) string {
			base := bases[int(b>>4)%len(bases)]
			q := quals[int(b&0x0f)%len(quals)]
			if q == "" {
				return base
			}
			return q + "/" + base
		}

		for i := 0; i+2 < len(data); i += 3 {
			op, nb, vb := data[i], data[i+1], data[i+2]
			n := name(nb)
			switch op % 4 {
			case 0:
				in.SetNumber(n, float64(vb))
				ref.SetNumber(n, float64(vb))
			case 1:
				in.SetBool(n, vb%2 == 0)
				ref.SetBool(n, vb%2 == 0)
			case 2:
				gv, gok := in.Number(n)
				wv, wok := ref.Number(n)
				if gv != wv || gok != wok {
					t.Fatalf("op %d: Number(%q) interned = %v,%v, reference = %v,%v",
						i, n, gv, gok, wv, wok)
				}
			case 3:
				gv, gok := in.Bool(n)
				wv, wok := ref.Bool(n)
				if gv != wv || gok != wok {
					t.Fatalf("op %d: Bool(%q) interned = %v,%v, reference = %v,%v",
						i, n, gv, gok, wv, wok)
				}
			}
		}

		// Interning invariants: dense ids, perfect round-trips, no
		// collisions.
		seen := make(map[uint32]string, tab.Len())
		for _, base := range bases {
			for _, q := range quals {
				n := base
				if q != "" {
					n = q + "/" + base
				}
				id := tab.Intern(n)
				if int(id) >= tab.Len() {
					t.Fatalf("id %d out of dense range %d", id, tab.Len())
				}
				if got := tab.Name(id); got != n {
					t.Fatalf("Name(Intern(%q)) = %q", n, got)
				}
				if prev, dup := seen[id]; dup && prev != n {
					t.Fatalf("id %d assigned to both %q and %q", id, prev, n)
				}
				seen[id] = n
				if again := tab.Intern(n); again != id {
					t.Fatalf("Intern(%q) unstable: %d then %d", n, id, again)
				}
			}
		}

		// After arbitrary interleaving, every name (and every suffix form)
		// must still resolve identically, and the map views must agree.
		for _, base := range bases {
			for _, q := range append([]string{""}, quals...) {
				n := base
				if q != "" {
					n = q + "/" + base
				}
				gv, gok := in.Number(n)
				wv, wok := ref.Number(n)
				if gv != wv || gok != wok {
					t.Fatalf("final Number(%q): interned = %v,%v, reference = %v,%v", n, gv, gok, wv, wok)
				}
				gb, gbok := in.Bool(n)
				wb, wbok := ref.Bool(n)
				if gb != wb || gbok != wbok {
					t.Fatalf("final Bool(%q): interned = %v,%v, reference = %v,%v", n, gb, gbok, wb, wbok)
				}
			}
		}
		if len(in.Numbers) != len(ref.Numbers) || len(in.Bools) != len(ref.Bools) {
			t.Fatalf("map views diverged: %d/%d numbers, %d/%d bools",
				len(in.Numbers), len(ref.Numbers), len(in.Bools), len(ref.Bools))
		}
		for k, v := range ref.Numbers {
			if got, ok := in.Numbers[k]; !ok || got != v {
				t.Fatalf("interned Numbers[%q] = %v,%v, want %v", k, got, ok, v)
			}
			if strings.Contains(k, "//") {
				t.Fatalf("malformed key %q escaped the alphabet", k)
			}
		}
	})
}
