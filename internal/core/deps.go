package core

import (
	"sort"
	"strings"
)

// Dependency keys name the slices of Context a condition reads. The engine
// marks the same keys dirty when it writes the context, and the registry
// indexes rules by them, so a sensor event only re-evaluates the rules whose
// dependency set it intersects.
//
// Namespaces keep the key spaces from colliding:
//
//	num/<var>      numeric sensor reading (Context.Numbers)
//	bool/<var>     boolean device/sensor state (Context.Bools)
//	loc/<person>   one user's location (Context.Locations)
//	loc/*          any user's location (nobody/everyone/someone)
//	event/<name>   an arrival event by canonical name (Context.Events)
//	epg/programs   the on-air programme list (Context.Programs)
const (
	// LocationWildcardKey is read by conditions quantifying over every
	// user's location (nobody, everyone, "someone at ...").
	LocationWildcardKey = "loc/*"
	// ProgramsDepKey is read by on-air conditions.
	ProgramsDepKey = "epg/programs"
)

// NumberDepKey returns the dependency key for a numeric variable as written
// in a condition ("temperature" or "living room/temperature").
func NumberDepKey(name string) string { return "num/" + name }

// BoolDepKey returns the dependency key for a boolean variable.
func BoolDepKey(name string) string { return "bool/" + name }

// LocationDepKey returns the dependency key for one user's location.
func LocationDepKey(person string) string { return "loc/" + person }

// EventDepKey returns the dependency key for an arrival event name.
func EventDepKey(event string) string { return "event/" + event }

// NumberDirtyKeys returns the dependency keys invalidated by writing the
// numeric context entry key. A qualified entry ("living room/temperature")
// also invalidates the unqualified name, because Context.Number resolves
// unqualified variables by suffix match over every qualified entry.
func NumberDirtyKeys(key string) []string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return []string{NumberDepKey(key), NumberDepKey(key[i+1:])}
	}
	return []string{NumberDepKey(key)}
}

// BoolDirtyKeys is NumberDirtyKeys for boolean context entries.
func BoolDirtyKeys(key string) []string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return []string{BoolDepKey(key), BoolDepKey(key[i+1:])}
	}
	return []string{BoolDepKey(key)}
}

// LocationDirtyKeys returns the dependency keys invalidated by moving one
// user: the user's own key plus the wildcard read by quantified conditions.
func LocationDirtyKeys(person string) []string {
	return []string{LocationDepKey(person), LocationWildcardKey}
}

// DepSet is the result of dependency extraction over a condition tree: the
// context keys the condition reads, plus whether its truth can change with
// the passage of time alone (time windows, duration holds, and arrival
// events, whose freshness expires).
type DepSet struct {
	Keys map[string]struct{}
	// Time marks conditions whose value can flip between two evaluations of
	// the same context state as the clock advances.
	Time bool
	// Unknown marks trees containing a condition kind the extractor could
	// not analyse. Such trees are conservatively time-dependent (correct but
	// unindexable); deps_test.go proves no kind the compiler emits sets it.
	Unknown bool
}

// AddKey records one context key the condition reads.
func (d *DepSet) AddKey(key string) {
	d.Keys[key] = struct{}{}
}

// DepsProvider lets condition kinds defined outside this package report
// their dependencies instead of falling into the conservative
// time-dependent bucket: AddCondDeps must record every context key the
// condition reads (DepSet.AddKey) and set Time if its truth can change with
// the clock alone.
type DepsProvider interface {
	AddCondDeps(d *DepSet)
}

// Has reports whether the set contains the key.
func (d DepSet) Has(key string) bool {
	_, ok := d.Keys[key]
	return ok
}

// Intersects reports whether any of the set's keys appears in dirty.
func (d DepSet) Intersects(dirty map[string]struct{}) bool {
	if len(d.Keys) <= len(dirty) {
		for k := range d.Keys {
			if _, ok := dirty[k]; ok {
				return true
			}
		}
		return false
	}
	for k := range dirty {
		if _, ok := d.Keys[k]; ok {
			return true
		}
	}
	return false
}

// IDsIn interns every dependency key into tab and returns the ids sorted
// ascending — the compiled form the engine and registry index by. The
// namespacing of the string keys carries over: "num/temperature" and
// "bool/temperature" intern to distinct ids.
func (d DepSet) IDsIn(tab *Symtab) []uint32 {
	if len(d.Keys) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(d.Keys))
	for k := range d.Keys {
		out = append(out, tab.Intern(k))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedKeys returns the keys in sorted order (for tests and display).
func (d DepSet) SortedKeys() []string {
	out := make([]string, 0, len(d.Keys))
	for k := range d.Keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CondDeps extracts the dependency set of a condition tree. A nil condition
// (and Always) reads nothing and never changes. Every condition kind the
// compiler emits is analysed exactly; implementations outside this package
// either report themselves through DepsProvider or are conservatively
// marked time-dependent (and Unknown), so an indexing engine still
// re-evaluates them every pass.
func CondDeps(c Condition) DepSet {
	d := DepSet{Keys: make(map[string]struct{})}
	addCondDeps(c, &d)
	return d
}

func addCondDeps(c Condition, d *DepSet) {
	switch n := c.(type) {
	case nil:
	case *And:
		for _, t := range n.Terms {
			addCondDeps(t, d)
		}
	case *Or:
		for _, t := range n.Terms {
			addCondDeps(t, d)
		}
	case *Compare:
		d.Keys[NumberDepKey(n.Var)] = struct{}{}
	case *BoolIs:
		d.Keys[BoolDepKey(n.Var)] = struct{}{}
	case *Presence:
		if n.Person == Someone {
			d.Keys[LocationWildcardKey] = struct{}{}
		} else {
			d.Keys[LocationDepKey(n.Person)] = struct{}{}
		}
	case *Nobody:
		d.Keys[LocationWildcardKey] = struct{}{}
	case *Everyone:
		d.Keys[LocationWildcardKey] = struct{}{}
	case *Arrival:
		// Arrival freshness expires after the event TTL, so the condition is
		// additionally time-dependent.
		d.Keys[EventDepKey(n.Event)] = struct{}{}
		d.Time = true
	case *OnAir:
		// Favourite keywords (Context.Favorites) are engine configuration,
		// not sensor state; the engine re-evaluates everything when they
		// change, so they are not part of the key space.
		d.Keys[ProgramsDepKey] = struct{}{}
	case *TimeWindow:
		d.Time = true
	case *Duration:
		addCondDeps(n.Inner, d)
		d.Time = true
	case Always, *Always:
	default:
		if p, ok := c.(DepsProvider); ok {
			p.AddCondDeps(d)
			return
		}
		d.Time = true
		d.Unknown = true
	}
}
