package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// ctxPair drives a plain string-keyed context and an interned context
// through identical mutations; every presence and event query must agree
// between the map representation, the id-indexed store and the bound
// condition forms.
type ctxPair struct {
	t     *testing.T
	tab   *Symtab
	plain *Context
	in    *Context
}

func newCtxPair(t *testing.T) *ctxPair {
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	tab := NewSymtab()
	p := &ctxPair{t: t, tab: tab, plain: NewContext(now), in: NewInternedContext(now, tab)}
	p.plain.EventTTL = 10 * time.Minute
	p.in.EventTTL = 10 * time.Minute
	return p
}

func (p *ctxPair) setLocation(person, place string) {
	p.plain.SetLocation(person, place)
	p.in.SetLocation(person, place)
}

func (p *ctxPair) setUsers(users []string) {
	p.plain.SetUsers(users)
	p.in.SetUsers(users)
}

func (p *ctxPair) recordEvent(person, event string) {
	p.plain.RecordEvent(person, event)
	p.in.RecordEvent(person, event)
}

func (p *ctxPair) advance(d time.Duration) {
	p.plain.Now = p.plain.Now.Add(d)
	p.in.Now = p.in.Now.Add(d)
}

// checkCond asserts the unbound condition on the plain context, the unbound
// condition on the interned context (map reads stay truthful) and the bound
// form on the interned context all agree.
func (p *ctxPair) checkCond(c Condition) {
	p.t.Helper()
	want := c.Eval(p.plain)
	if got := c.Eval(p.in); got != want {
		p.t.Fatalf("%s: unbound on interned ctx = %v, plain = %v", c, got, want)
	}
	if got := Bind(c, p.tab).Eval(p.in); got != want {
		p.t.Fatalf("%s: bound on interned ctx = %v, plain = %v", c, got, want)
	}
}

func (p *ctxPair) checkAll(people, places, events []string) {
	p.t.Helper()
	for _, place := range places {
		p.checkCond(&Nobody{Place: place})
		p.checkCond(&Everyone{Place: place})
		p.checkCond(&Presence{Person: Someone, Place: place})
		for _, person := range people {
			p.checkCond(&Presence{Person: person, Place: place})
		}
	}
	for _, event := range events {
		p.checkCond(&Arrival{Person: Someone, Event: event})
		for _, person := range people {
			p.checkCond(&Arrival{Person: person, Event: event})
		}
	}
}

// TestInternedPresenceScripted pins the presence store's semantics through
// the paper's moves: arrivals, room changes, leaving home, the "home"
// wildcard place and the everyone/nobody edge cases.
func TestInternedPresenceScripted(t *testing.T) {
	p := newCtxPair(t)
	people := []string{"tom", "alan", "emily"}
	places := []string{"home", "living room", "kitchen", "bedroom"}
	events := []string{"home-from-work", "home-from-shopping"}

	// No users registered: everyone-at is false even with an empty home.
	p.checkAll(people, places, events)

	p.setUsers(people)
	p.checkAll(people, places, events) // empty home: nobody true, everyone false

	p.setLocation("tom", "living room")
	p.checkAll(people, places, events)

	p.setLocation("alan", "living room")
	p.setLocation("emily", "kitchen")
	p.checkAll(people, places, events)

	// A non-user's presence still counts for nobody/someone.
	p.setLocation("guest", "bedroom")
	p.checkAll(people, places, events)

	// Everyone gathers in the living room (guest elsewhere: everyone-at only
	// quantifies registered users).
	p.setLocation("emily", "living room")
	p.checkAll(people, places, events)

	// Moving a person between rooms and out of the home.
	p.setLocation("tom", "kitchen")
	p.checkAll(people, places, events)
	p.setLocation("tom", "")
	p.checkAll(people, places, events)
	p.setLocation("guest", "")
	p.setLocation("alan", "")
	p.setLocation("emily", "")
	p.checkAll(people, places, events) // home empty again

	// Arrival events: fresh, refreshed, expired.
	p.recordEvent("alan", "home-from-work")
	p.checkAll(people, places, events)
	p.advance(5 * time.Minute)
	p.checkAll(people, places, events) // still fresh
	p.recordEvent("emily", "home-from-shopping")
	p.advance(6 * time.Minute)
	p.checkAll(people, places, events) // alan's expired, emily's fresh
	p.advance(6 * time.Minute)
	p.checkAll(people, places, events) // both expired
	p.recordEvent("alan", "home-from-work")
	p.checkAll(people, places, events) // re-fired after expiry

	// Shrinking the user list keeps everyone-at truthful.
	p.setLocation("tom", "living room")
	p.setUsers([]string{"tom"})
	p.checkAll(people, places, events)
}

// TestInternedPresenceRandom fuzzes the paired contexts through random
// mutation streams and asserts full agreement after every step.
func TestInternedPresenceRandom(t *testing.T) {
	people := []string{"tom", "alan", "emily", "guest", "visitor"}
	places := []string{"home", "living room", "kitchen", "bedroom", "hall"}
	events := []string{"home-from-work", "home-from-shopping"}
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := newCtxPair(t)
			p.setUsers(people[:3])
			for step := 0; step < 400; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					place := ""
					if rng.Intn(4) > 0 {
						// "home" is also a legal concrete place name; the
						// wildcard semantics live in the condition, not here.
						place = places[rng.Intn(len(places))]
					}
					p.setLocation(people[rng.Intn(len(people))], place)
				case 4, 5:
					p.recordEvent(people[rng.Intn(len(people))], events[rng.Intn(len(events))])
				case 6:
					p.advance(time.Duration(1+rng.Intn(8)) * time.Minute)
				case 7:
					users := append([]string(nil), people[:1+rng.Intn(len(people))]...)
					p.setUsers(users)
				default:
					p.advance(time.Duration(rng.Intn(90)) * time.Second)
				}
				p.checkAll(people, places, events)
			}
		})
	}
}

// TestInternedPresenceCounters cross-checks the reverse-index counters the
// quantified conditions read against a recount of the Locations map after a
// mutation stream.
func TestInternedPresenceCounters(t *testing.T) {
	p := newCtxPair(t)
	rng := rand.New(rand.NewSource(7))
	people := []string{"a", "b", "c", "d"}
	places := []string{"x", "y", "z"}
	for step := 0; step < 200; step++ {
		place := ""
		if rng.Intn(3) > 0 {
			place = places[rng.Intn(len(places))]
		}
		p.setLocation(people[rng.Intn(len(people))], place)

		present := 0
		for _, loc := range p.in.Locations {
			if loc != "" {
				present++
			}
		}
		if got := p.in.AnyoneHome(); got != (present > 0) {
			t.Fatalf("step %d: AnyoneHome = %v with %d present", step, got, present)
		}
		for _, pl := range places {
			count := 0
			for _, loc := range p.in.Locations {
				if loc == pl {
					count++
				}
			}
			id, ok := p.tab.Lookup(pl)
			if !ok {
				continue
			}
			if got := p.in.AnyoneAtID(id); got != (count > 0) {
				t.Fatalf("step %d: AnyoneAtID(%s) = %v with %d there", step, pl, got, count)
			}
		}
	}
}
