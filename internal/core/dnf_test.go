package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simplex"
)

func cmp(v string, op simplex.Relation, val float64) *Compare {
	return &Compare{Var: v, Op: op, Value: val}
}

func TestToDNFAtom(t *testing.T) {
	terms, err := ToDNF(cmp("t", simplex.GT, 28))
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || len(terms[0]) != 1 {
		t.Fatalf("terms = %v", terms)
	}
}

func TestToDNFNilAndAlways(t *testing.T) {
	for _, c := range []Condition{nil, Always{}} {
		terms, err := ToDNF(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(terms) != 1 || len(terms[0]) != 0 {
			t.Fatalf("ToDNF(%v) = %v, want one empty term", c, terms)
		}
	}
}

func TestToDNFAndOfOrs(t *testing.T) {
	// (a or b) and (c or d) → 4 terms.
	cond := &And{Terms: []Condition{
		&Or{Terms: []Condition{cmp("a", simplex.GT, 1), cmp("b", simplex.GT, 2)}},
		&Or{Terms: []Condition{cmp("c", simplex.GT, 3), cmp("d", simplex.GT, 4)}},
	}}
	terms, err := ToDNF(cond)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 4 {
		t.Fatalf("terms = %d, want 4", len(terms))
	}
	for _, term := range terms {
		if len(term) != 2 {
			t.Errorf("term %v has %d atoms, want 2", term, len(term))
		}
	}
}

func TestToDNFOrOfAnds(t *testing.T) {
	cond := &Or{Terms: []Condition{
		&And{Terms: []Condition{cmp("a", simplex.GT, 1), cmp("b", simplex.GT, 2)}},
		cmp("c", simplex.GT, 3),
	}}
	terms, err := ToDNF(cond)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || len(terms[0]) != 2 || len(terms[1]) != 1 {
		t.Fatalf("terms = %v", terms)
	}
}

func TestToDNFDurationUsesInner(t *testing.T) {
	cond := &Duration{
		Inner:   &And{Terms: []Condition{cmp("a", simplex.GT, 1), cmp("b", simplex.LT, 5)}},
		Seconds: 3600,
		Key:     "k",
	}
	terms, err := ToDNF(cond)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || len(terms[0]) != 2 {
		t.Fatalf("terms = %v", terms)
	}
}

func TestToDNFExplosionGuard(t *testing.T) {
	// 13 conjoined binary ors → 2^13 = 8192 > MaxDNFTerms.
	var terms []Condition
	for i := 0; i < 13; i++ {
		terms = append(terms, &Or{Terms: []Condition{
			cmp("a", simplex.GT, float64(i)),
			cmp("b", simplex.LT, float64(i)),
		}})
	}
	_, err := ToDNF(&And{Terms: terms})
	if !errors.Is(err, ErrDNFTooLarge) {
		t.Errorf("error = %v, want ErrDNFTooLarge", err)
	}
}

// TestQuickDNFPreservesSemantics checks on random trees and random contexts
// that the DNF evaluates exactly like the original condition (no Duration
// nodes here, since ToDNF intentionally over-approximates those).
func TestQuickDNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	vars := []string{"a", "b", "c"}
	var build func(depth int) Condition
	build = func(depth int) Condition {
		if depth == 0 || r.Intn(3) == 0 {
			v := vars[r.Intn(len(vars))]
			ops := []simplex.Relation{simplex.GT, simplex.GE, simplex.LT, simplex.LE}
			return cmp(v, ops[r.Intn(len(ops))], float64(r.Intn(10)))
		}
		n := 2 + r.Intn(2)
		subs := make([]Condition, n)
		for i := range subs {
			subs[i] = build(depth - 1)
		}
		if r.Intn(2) == 0 {
			return &And{Terms: subs}
		}
		return &Or{Terms: subs}
	}

	f := func() bool {
		cond := build(3)
		terms, err := ToDNF(cond)
		if err != nil {
			return true // explosion guard is allowed to trip
		}
		for trial := 0; trial < 5; trial++ {
			ctx := NewContext(baseTime)
			for _, v := range vars {
				ctx.Numbers[v] = float64(r.Intn(10))
			}
			direct := cond.Eval(ctx)
			viaDNF := false
			for _, term := range terms {
				if term.Eval(ctx) {
					viaDNF = true
					break
				}
			}
			if direct != viaDNF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTermString(t *testing.T) {
	if (Term{}).String() != "true" {
		t.Error("empty term should print true")
	}
	term := Term{cmp("a", simplex.GT, 1), cmp("b", simplex.LT, 2)}
	if term.String() == "" {
		t.Error("term string empty")
	}
}
