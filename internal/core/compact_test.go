package core

import (
	"fmt"
	"testing"
	"time"
)

// TestSymtabCompact pins the renumbering contract: live ids move down in
// order, dead names are forgotten (and re-intern as fresh ids), and the
// epoch counter advances.
func TestSymtabCompact(t *testing.T) {
	tab := NewSymtab()
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tab.Intern(n)
	}
	live := &IDSet{}
	for _, n := range []string{"b", "d", "e"} {
		id, ok := tab.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing before compaction", n)
		}
		live.Add(id)
	}

	remap, epoch := tab.Compact(live)
	if epoch != 1 || tab.Epoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", epoch, tab.Epoch())
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d after compaction, want 3", tab.Len())
	}
	if len(remap) != len(names) {
		t.Fatalf("remap covers %d ids, want %d", len(remap), len(names))
	}
	// Live ids renumber densely in order; dead ids map to the sentinel.
	want := []uint32{DeadID, 0, DeadID, 1, 2, DeadID}
	for i, w := range want {
		if remap[i] != w {
			t.Fatalf("remap[%d] = %d, want %d (full table %v)", i, remap[i], w, remap)
		}
	}
	for i, n := range []string{"b", "d", "e"} {
		if got := tab.Name(uint32(i)); got != n {
			t.Fatalf("Name(%d) = %q, want %q", i, got, n)
		}
		if id, ok := tab.Lookup(n); !ok || id != uint32(i) {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", n, id, ok, i)
		}
	}
	for _, n := range []string{"a", "c", "f"} {
		if id, ok := tab.Lookup(n); ok {
			t.Fatalf("dead name %q still resolves to %d", n, id)
		}
	}
	// A dead name re-interns as a fresh id at the end of the table.
	if id := tab.Intern("a"); id != 3 {
		t.Fatalf("re-interned dead name got id %d, want 3", id)
	}

	// A second epoch over an all-live table is the identity.
	all := &IDSet{}
	for i := 0; i < tab.Len(); i++ {
		all.Add(uint32(i))
	}
	remap2, epoch2 := tab.Compact(all)
	if epoch2 != 2 {
		t.Fatalf("second epoch = %d, want 2", epoch2)
	}
	for i, id := range remap2 {
		if id != uint32(i) {
			t.Fatalf("all-live remap[%d] = %d, want identity", i, id)
		}
	}
}

// TestContextRemap drives an interned context and a string-keyed reference
// through the same writes, compacts the symbol table with a pile of
// rule-style garbage symbols interleaved among the context's ids, remaps the
// context, and asserts every reader still agrees with the reference — by
// name and by (re-resolved) id — and that the reverse-index counters
// survived intact.
func TestContextRemap(t *testing.T) {
	tab := NewSymtab()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	in := NewInternedContext(now, tab)
	ref := NewContext(now)

	users := []string{"tom", "alan", "emily"}
	each := func(fn func(c *Context)) { fn(in); fn(ref) }
	garbage := func(i int) { tab.Intern(fmt.Sprintf("dead-%d", i)) }

	garbage(0)
	each(func(c *Context) { c.SetUsers(users) })
	garbage(1)
	each(func(c *Context) { c.SetNumber("living room/temperature", 28) })
	each(func(c *Context) { c.SetNumber("temperature", 21) })
	garbage(2)
	each(func(c *Context) { c.SetBool("tv/power", true) })
	each(func(c *Context) { c.SetLocation("tom", "living room") })
	each(func(c *Context) { c.SetLocation("alan", "kitchen") })
	each(func(c *Context) { c.SetLocation("emily", "") }) // away
	garbage(3)
	each(func(c *Context) { c.RecordEvent("alan", "home-from-work") })
	garbage(4)

	// Mark and compact: only the context's own ids survive.
	live := &IDSet{}
	in.MarkLive(live)
	remap, _ := tab.Compact(live)
	in.Remap(remap, tab.Len())

	for i := 0; i < 5; i++ {
		if _, ok := tab.Lookup(fmt.Sprintf("dead-%d", i)); ok {
			t.Fatalf("garbage symbol dead-%d survived compaction", i)
		}
	}

	// Value reads by name (re-interning goes through the compacted ids).
	for _, name := range []string{"temperature", "living room/temperature", "kitchen/temperature"} {
		gv, gok := in.Number(name)
		wv, wok := ref.Number(name)
		if gv != wv || gok != wok {
			t.Fatalf("Number(%q) = %v,%v after remap, reference %v,%v", name, gv, gok, wv, wok)
		}
	}
	if gv, gok := in.Bool("tv/power"); !gok || !gv {
		t.Fatalf("Bool(tv/power) = %v,%v after remap", gv, gok)
	}

	// Presence readers, id-indexed via re-interned ids.
	tom, alan, emily := tab.Intern("tom"), tab.Intern("alan"), tab.Intern("emily")
	lr, kitchen := tab.Intern("living room"), tab.Intern("kitchen")
	if !in.AtID(tom, lr) || !in.AtID(alan, kitchen) || in.AtHomeID(emily) {
		t.Fatalf("presence slots wrong after remap: tom@lr=%v alan@kitchen=%v emily-home=%v",
			in.AtID(tom, lr), in.AtID(alan, kitchen), in.AtHomeID(emily))
	}
	if !in.AnyoneAtID(lr) || !in.AnyoneAtID(kitchen) || !in.AnyoneHome() {
		t.Fatal("reverse-index counters wrong after remap")
	}
	if in.EveryoneHome() {
		t.Fatal("EveryoneHome true with emily away")
	}
	each(func(c *Context) { c.SetLocation("emily", "kitchen") })
	if !in.EveryoneHome() {
		t.Fatal("EveryoneHome false after emily returns (userIDs not remapped?)")
	}

	// Arrival store.
	if key, ok := tab.Lookup("alan|home-from-work"); !ok || !in.HasEventKeyID(key) {
		t.Fatalf("arrival key lost in remap (ok=%v)", ok)
	}
	if name, ok := tab.Lookup(EventDepKey("home-from-work")); !ok || !in.HasEventNameID(name) {
		t.Fatalf("arrival name index lost in remap (ok=%v)", ok)
	}

	// TTL-expired events must NOT survive an epoch (see
	// TestCompactReclaimsExpiredEvents); fresh ones must.

	// Post-remap writes must keep working (new ids append past the live set).
	each(func(c *Context) { c.SetNumber("hall/darkness", 3) })
	if gv, gok := in.Number("hall/darkness"); !gok || gv != 3 {
		t.Fatalf("fresh write after remap = %v,%v", gv, gok)
	}
	// ...and the unqualified resolution cache was dropped: "darkness" must
	// now see the new qualified key.
	if gv, gok := in.Number("darkness"); !gok || gv != 3 {
		t.Fatalf("unqualified resolution after remap = %v,%v, want 3,true", gv, gok)
	}
}

// TestCompactReclaimsExpiredEvents: an arrival event older than the TTL is
// invisible to every reader, so a compaction epoch reclaims its ids and
// prunes it from the Events map — otherwise event-name churn would regrow
// the store forever. Fresh events survive, and the readers keep agreeing
// with the string-keyed reference (whose map keeps expired entries but
// TTL-gates them) before and after.
func TestCompactReclaimsExpiredEvents(t *testing.T) {
	tab := NewSymtab()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	in := NewInternedContext(now, tab)
	ref := NewContext(now)
	in.EventTTL, ref.EventTTL = time.Minute, time.Minute

	each := func(fn func(c *Context)) { fn(in); fn(ref) }
	each(func(c *Context) { c.RecordEvent("alan", "old-event") })
	each(func(c *Context) { c.Now = c.Now.Add(2 * time.Minute) })
	each(func(c *Context) { c.RecordEvent("emily", "fresh-event") })

	live := &IDSet{}
	in.MarkLive(live)
	remap, _ := tab.Compact(live)
	in.Remap(remap, tab.Len())

	if _, ok := tab.Lookup("alan|old-event"); ok {
		t.Fatal("expired event key survived compaction")
	}
	if _, ok := tab.Lookup(EventDepKey("old-event")); ok {
		t.Fatal("expired event's name id survived compaction (no fresh key under it)")
	}
	if _, ok := in.Events["alan|old-event"]; ok {
		t.Fatal("expired event still in the Events map after compaction")
	}
	for _, probe := range []struct{ person, event string }{
		{"alan", "old-event"}, {"emily", "fresh-event"},
		{Someone, "old-event"}, {Someone, "fresh-event"},
	} {
		if got, want := in.HasEvent(probe.person, probe.event), ref.HasEvent(probe.person, probe.event); got != want {
			t.Fatalf("HasEvent(%q,%q) = %v after compaction, reference %v", probe.person, probe.event, got, want)
		}
	}

	// Re-recording the reclaimed event re-interns fresh ids and is visible
	// again on both sides.
	each(func(c *Context) { c.RecordEvent("alan", "old-event") })
	if !in.HasEvent("alan", "old-event") || !ref.HasEvent("alan", "old-event") {
		t.Fatal("re-recorded event invisible after reclamation")
	}
}
