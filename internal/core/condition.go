package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/simplex"
)

// Condition is a compiled, executable condition tree node.
type Condition interface {
	fmt.Stringer
	// Eval reports whether the condition holds in the context.
	Eval(ctx *Context) bool
	// Vars appends the variable names the condition reads to dst. The
	// engine uses this to index rules by the sensors they depend on.
	Vars(dst []string) []string
}

// And is a conjunction of conditions.
type And struct {
	Terms []Condition
}

// Eval implements Condition.
func (a *And) Eval(ctx *Context) bool {
	for _, t := range a.Terms {
		if !t.Eval(ctx) {
			return false
		}
	}
	return true
}

// Vars implements Condition.
func (a *And) Vars(dst []string) []string {
	for _, t := range a.Terms {
		dst = t.Vars(dst)
	}
	return dst
}

func (a *And) String() string { return joinCond(a.Terms, " and ") }

// Or is a disjunction of conditions.
type Or struct {
	Terms []Condition
}

// Eval implements Condition.
func (o *Or) Eval(ctx *Context) bool {
	for _, t := range o.Terms {
		if t.Eval(ctx) {
			return true
		}
	}
	return false
}

// Vars implements Condition.
func (o *Or) Vars(dst []string) []string {
	for _, t := range o.Terms {
		dst = t.Vars(dst)
	}
	return dst
}

func (o *Or) String() string { return "( " + joinCond(o.Terms, " or ") + " )" }

func joinCond(terms []Condition, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, sep)
}

// Compare is a numeric sensor comparison, e.g. temperature > 28.
type Compare struct {
	Var   string
	Op    simplex.Relation
	Value float64
}

// Eval implements Condition. An unknown variable makes the comparison false.
func (c *Compare) Eval(ctx *Context) bool {
	v, ok := ctx.Number(c.Var)
	if !ok {
		return false
	}
	switch c.Op {
	case simplex.LE:
		return v <= c.Value
	case simplex.GE:
		return v >= c.Value
	case simplex.LT:
		return v < c.Value
	case simplex.GT:
		return v > c.Value
	case simplex.EQ:
		return v == c.Value
	default:
		return false
	}
}

// Vars implements Condition.
func (c *Compare) Vars(dst []string) []string { return append(dst, c.Var) }

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %g", c.Var, c.Op, c.Value)
}

// BoolIs is a boolean device/sensor state test, e.g. tv/power == true.
type BoolIs struct {
	Var  string
	Want bool
}

// Eval implements Condition. An unknown variable makes the test false.
func (b *BoolIs) Eval(ctx *Context) bool {
	v, ok := ctx.Bool(b.Var)
	return ok && v == b.Want
}

// Vars implements Condition.
func (b *BoolIs) Vars(dst []string) []string { return append(dst, b.Var) }

func (b *BoolIs) String() string {
	return fmt.Sprintf("%s == %v", b.Var, b.Want)
}

// Presence tests whether a person (or anyone, with Person == Someone) is at
// a place.
type Presence struct {
	Person string
	Place  string
}

// Eval implements Condition.
func (p *Presence) Eval(ctx *Context) bool {
	if p.Person == Someone {
		return ctx.AnyoneAt(p.Place)
	}
	return ctx.At(p.Person, p.Place)
}

// Vars implements Condition.
func (p *Presence) Vars(dst []string) []string {
	return append(dst, "presence/"+p.Person)
}

func (p *Presence) String() string {
	who := p.Person
	if who == Someone {
		who = "someone"
	}
	return fmt.Sprintf("%s at %s", who, p.Place)
}

// Nobody tests that no user is at a place.
type Nobody struct {
	Place string
}

// Eval implements Condition.
func (n *Nobody) Eval(ctx *Context) bool { return !ctx.AnyoneAt(n.Place) }

// Vars implements Condition.
func (n *Nobody) Vars(dst []string) []string { return append(dst, "presence/*") }

func (n *Nobody) String() string { return "nobody at " + n.Place }

// Everyone tests that every registered user is at a place.
type Everyone struct {
	Place string
}

// Eval implements Condition.
func (e *Everyone) Eval(ctx *Context) bool { return ctx.EveryoneAt(e.Place) }

// Vars implements Condition.
func (e *Everyone) Vars(dst []string) []string { return append(dst, "presence/*") }

func (e *Everyone) String() string { return "everyone at " + e.Place }

// Arrival tests for a recent arrival event ("alan got home from work").
type Arrival struct {
	Person string // concrete name or Someone
	Event  string // canonical event name, e.g. "home-from-work"
}

// Eval implements Condition.
func (a *Arrival) Eval(ctx *Context) bool { return ctx.HasEvent(a.Person, a.Event) }

// Vars implements Condition.
func (a *Arrival) Vars(dst []string) []string {
	return append(dst, "event/"+a.Event)
}

func (a *Arrival) String() string {
	who := a.Person
	if who == Someone {
		who = "someone"
	}
	return fmt.Sprintf("%s %s", who, a.Event)
}

// OnAir tests whether a matching programme is being broadcast.
type OnAir struct {
	Keyword    string // concrete keyword/category ("baseball game")
	Category   string // category restriction for favourite matches ("movie")
	FavoriteOf string // owner whose favourites must match, "" for none
}

// Eval implements Condition.
func (o *OnAir) Eval(ctx *Context) bool {
	return ctx.OnAirMatch(o.Keyword, o.Category, o.FavoriteOf)
}

// Vars implements Condition.
func (o *OnAir) Vars(dst []string) []string { return append(dst, "epg/programs") }

func (o *OnAir) String() string {
	switch {
	case o.FavoriteOf != "" && o.Category != "":
		return fmt.Sprintf("favorite %s of %s on air", o.Category, o.FavoriteOf)
	case o.Keyword != "":
		return fmt.Sprintf("%q on air", o.Keyword)
	default:
		return "something on air"
	}
}

// TimeWindow restricts to a daily window of minutes [From, To). When From >
// To the window wraps midnight (e.g. night = 22:00-06:00). Weekday, when
// non-negative, additionally requires time.Weekday(Weekday).
type TimeWindow struct {
	FromMin int
	ToMin   int
	Weekday int // -1 for any day
}

// Eval implements Condition.
func (w *TimeWindow) Eval(ctx *Context) bool {
	if w.Weekday >= 0 && int(ctx.Now.Weekday()) != w.Weekday {
		return false
	}
	minute := ctx.Now.Hour()*60 + ctx.Now.Minute()
	from, to := w.FromMin, w.ToMin%(24*60)
	if w.FromMin == w.ToMin {
		return true // degenerate full-day window
	}
	if w.FromMin < w.ToMin && w.ToMin <= 24*60 {
		return minute >= from && minute < w.ToMin
	}
	// Wrapping window.
	return minute >= from || minute < to
}

// Vars implements Condition.
func (w *TimeWindow) Vars(dst []string) []string { return append(dst, "clock/minute") }

func (w *TimeWindow) String() string {
	day := ""
	if w.Weekday >= 0 {
		day = " on " + time.Weekday(w.Weekday).String()
	}
	return fmt.Sprintf("time in [%02d:%02d, %02d:%02d)%s",
		w.FromMin/60, w.FromMin%60, (w.ToMin%(24*60))/60, w.ToMin%60, day)
}

// Duration requires its inner condition to have held continuously for at
// least Seconds. The engine tracks the hold start per Key via
// Context.MarkHeld/ClearHeld.
type Duration struct {
	Inner   Condition
	Seconds float64
	Key     string
}

// Eval implements Condition.
func (d *Duration) Eval(ctx *Context) bool {
	if !d.Inner.Eval(ctx) {
		return false
	}
	since, ok := ctx.HeldSince(d.Key)
	if !ok {
		return false
	}
	return ctx.Now.Sub(since) >= time.Duration(d.Seconds*float64(time.Second))
}

// Vars implements Condition.
func (d *Duration) Vars(dst []string) []string {
	dst = d.Inner.Vars(dst)
	return append(dst, "clock/minute")
}

func (d *Duration) String() string {
	return fmt.Sprintf("(%s) held for %gs", d.Inner, d.Seconds)
}

// Always is the trivially true condition used for rules without one.
type Always struct{}

// Eval implements Condition.
func (Always) Eval(*Context) bool { return true }

// Vars implements Condition.
func (Always) Vars(dst []string) []string { return dst }

func (Always) String() string { return "always" }

// WalkCond visits every node of the condition tree in depth-first order.
func WalkCond(c Condition, visit func(Condition)) {
	if c == nil {
		return
	}
	visit(c)
	switch n := c.(type) {
	case *And:
		for _, t := range n.Terms {
			WalkCond(t, visit)
		}
	case *Or:
		for _, t := range n.Terms {
			WalkCond(t, visit)
		}
	case *Duration:
		WalkCond(n.Inner, visit)
	}
}
