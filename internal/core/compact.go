package core

// Symbol-compaction support for the id-holding rule state: a registered
// rule's interned identity (IDSym/OwnerSym/DeviceSym), its sorted dependency
// ids (DepIDs) and the ids embedded in its pre-bound condition tree all
// reference the owning database's symbol table, so a compaction epoch must
// mark them live and rewrite them through the remap table. The two walkers
// below cover exactly the bound node kinds Bind emits, field for field: a
// field Bind leaves unset (the person of an "anyone" presence, the key of a
// Someone arrival) is neither marked nor remapped.

// MarkLiveIDs adds every symbol id the registered rule holds to live.
func (r *Rule) MarkLiveIDs(live *IDSet) {
	live.AddAll(r.DepIDs)
	for _, sym := range [...]uint32{r.IDSym, r.OwnerSym, r.DeviceSym} {
		if sym != 0 {
			live.Add(sym - 1)
		}
	}
	MarkCondIDs(r.Bound, live)
}

// RemapIDs rewrites every symbol id the registered rule holds for a
// compaction epoch. All of them must have been marked live (MarkLiveIDs);
// the ids are rewritten in place, so the rule object keeps its identity.
func (r *Rule) RemapIDs(remap []uint32) {
	for i, id := range r.DepIDs {
		r.DepIDs[i] = remap[id]
	}
	if r.IDSym != 0 {
		r.IDSym = remap[r.IDSym-1] + 1
	}
	if r.OwnerSym != 0 {
		r.OwnerSym = remap[r.OwnerSym-1] + 1
	}
	if r.DeviceSym != 0 {
		r.DeviceSym = remap[r.DeviceSym-1] + 1
	}
	RemapCondIDs(r.Bound, remap)
}

// MarkCondIDs adds every symbol id a bound condition tree reads to live.
// Unbound leaves (time windows, EPG, foreign kinds) hold no ids.
func MarkCondIDs(c Condition, live *IDSet) {
	switch n := c.(type) {
	case *And:
		for _, t := range n.Terms {
			MarkCondIDs(t, live)
		}
	case *Or:
		for _, t := range n.Terms {
			MarkCondIDs(t, live)
		}
	case *Duration:
		MarkCondIDs(n.Inner, live)
	case *BoundCompare:
		live.Add(n.ID)
	case *BoundBoolIs:
		live.Add(n.ID)
	case *BoundPresence:
		if !n.anyone {
			live.Add(n.person)
		}
		if !n.home {
			live.Add(n.place)
		}
	case *BoundNobody:
		if !n.home {
			live.Add(n.place)
		}
	case *BoundEveryone:
		if !n.home {
			live.Add(n.place)
		}
	case *BoundArrival:
		live.Add(n.nameID)
		if n.Person != Someone {
			live.Add(n.keyID)
		}
	}
}

// RemapCondIDs rewrites a bound condition tree's symbol ids in place for a
// compaction epoch; every id must have been marked live via MarkCondIDs.
func RemapCondIDs(c Condition, remap []uint32) {
	switch n := c.(type) {
	case *And:
		for _, t := range n.Terms {
			RemapCondIDs(t, remap)
		}
	case *Or:
		for _, t := range n.Terms {
			RemapCondIDs(t, remap)
		}
	case *Duration:
		RemapCondIDs(n.Inner, remap)
	case *BoundCompare:
		n.ID = remap[n.ID]
	case *BoundBoolIs:
		n.ID = remap[n.ID]
	case *BoundPresence:
		if !n.anyone {
			n.person = remap[n.person]
		}
		if !n.home {
			n.place = remap[n.place]
		}
	case *BoundNobody:
		if !n.home {
			n.place = remap[n.place]
		}
	case *BoundEveryone:
		if !n.home {
			n.place = remap[n.place]
		}
	case *BoundArrival:
		n.nameID = remap[n.nameID]
		if n.Person != Someone {
			n.keyID = remap[n.keyID]
		}
	}
}
