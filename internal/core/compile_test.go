package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

func testLexicon(t *testing.T) *vocab.Lexicon {
	t.Helper()
	lex := vocab.Default()
	for _, p := range []string{"tom", "alan", "emily"} {
		if err := lex.Add(vocab.Entry{Phrase: p, Kind: vocab.KindPerson}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lex.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom"); err != nil {
		t.Fatal(err)
	}
	if err := lex.DefineConfWord("half-lighting", "50 percent of brightness setting", "tom"); err != nil {
		t.Fatal(err)
	}
	return lex
}

func compileRule(t *testing.T, lex *vocab.Lexicon, src, owner string) *Rule {
	t.Helper()
	cmd, err := lang.Parse(src, lex)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	def, ok := cmd.(*lang.RuleDef)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want RuleDef", src, cmd)
	}
	rule, err := NewCompiler(lex).CompileRule(def, "r1", owner)
	if err != nil {
		t.Fatalf("CompileRule(%q): %v", src, err)
	}
	return rule
}

func TestCompilePaperRule1(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"If humidity is higher than 80 percent and temperature is higher than 28 degrees, "+
			"turn on the air conditioner with 25 degrees of temperature setting.", "tom")

	if rule.Device.Name != "air conditioner" {
		t.Errorf("device = %q", rule.Device.Name)
	}
	if rule.Action.Verb != "turn-on" {
		t.Errorf("verb = %q", rule.Action.Verb)
	}
	if v := rule.Action.Settings["temperature"]; !v.IsNumber || v.Number != 25 || v.Unit != "celsius" {
		t.Errorf("temperature setting = %+v", v)
	}
	and, ok := rule.Cond.(*And)
	if !ok || len(and.Terms) != 2 {
		t.Fatalf("cond = %v", rule.Cond)
	}
	cmp, ok := and.Terms[0].(*Compare)
	if !ok || cmp.Var != "humidity" || cmp.Op != simplex.GT || cmp.Value != 80 {
		t.Errorf("first term = %v", and.Terms[0])
	}

	// Evaluate against contexts on both sides of the thresholds.
	ctx := NewContext(baseTime)
	ctx.Numbers["humidity"] = 85
	ctx.Numbers["temperature"] = 29
	if !rule.Ready(ctx) {
		t.Error("rule should fire at 85%/29C")
	}
	ctx.Numbers["temperature"] = 28
	if rule.Ready(ctx) {
		t.Error("strict > must not fire at the boundary")
	}
}

func TestCompilePaperRule2(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.", "tom")

	if rule.Device.Name != "light" || rule.Device.Location != "hall" {
		t.Errorf("device = %+v", rule.Device)
	}
	ctx := NewContext(time.Date(2005, 3, 7, 19, 0, 0, 0, time.UTC))
	ctx.Bools["hall/dark"] = true
	ctx.RecordEvent("tom", "return-home")
	if !rule.Ready(ctx) {
		t.Error("rule should fire: evening, arrival, dark hall")
	}
	// Morning: the time window fails.
	morning := NewContext(time.Date(2005, 3, 7, 9, 0, 0, 0, time.UTC))
	morning.Bools["hall/dark"] = true
	morning.RecordEvent("tom", "return-home")
	if rule.Ready(morning) {
		t.Error("rule must not fire in the morning")
	}
	// Hall lit: the bool atom fails.
	ctx.Bools["hall/dark"] = false
	if rule.Ready(ctx) {
		t.Error("rule must not fire when the hall is lit")
	}
}

func TestCompilePaperRule3Duration(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.", "tom")

	var dur *Duration
	WalkCond(rule.Cond, func(c Condition) {
		if d, ok := c.(*Duration); ok {
			dur = d
		}
	})
	if dur == nil {
		t.Fatal("no duration condition compiled")
	}
	if dur.Seconds != 3600 {
		t.Errorf("duration = %g s, want 3600", dur.Seconds)
	}
	if dur.Key == "" {
		t.Error("duration key empty")
	}

	ctx := NewContext(time.Date(2005, 3, 7, 23, 0, 0, 0, time.UTC))
	ctx.Bools["entrance door/locked"] = false
	if rule.Ready(ctx) {
		t.Error("no hold yet")
	}
	ctx.MarkHeld(dur.Key)
	ctx.Now = ctx.Now.Add(61 * time.Minute)
	if !rule.Ready(ctx) {
		t.Error("held 61 minutes at night: should fire")
	}
	// Same hold, but daytime.
	ctx.Now = time.Date(2005, 3, 8, 12, 0, 0, 0, time.UTC)
	if rule.Ready(ctx) {
		t.Error("must not fire at noon")
	}
}

func TestCompileUserCondWordExpansion(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.", "tom")

	ctx := NewContext(baseTime)
	ctx.Numbers["humidity"] = 65
	ctx.Numbers["temperature"] = 29
	if !rule.Ready(ctx) {
		t.Error("hot and stuffy holds at 65%/29C")
	}
	ctx.Numbers["humidity"] = 55
	if rule.Ready(ctx) {
		t.Error("not stuffy at 55%")
	}
	// The expansion must contain both comparisons.
	var compares int
	WalkCond(rule.Cond, func(c Condition) {
		if _, ok := c.(*Compare); ok {
			compares++
		}
	})
	if compares != 2 {
		t.Errorf("expanded compares = %d, want 2", compares)
	}
}

func TestCompileRecursiveWordFails(t *testing.T) {
	lex := vocab.Default()
	if err := lex.DefineCondWord("gloomy", "gloomy", "tom"); err != nil {
		t.Fatal(err)
	}
	cmd, err := lang.Parse("If gloomy, turn on the light.", lex)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCompiler(lex).CompileRule(cmd.(*lang.RuleDef), "r", "tom")
	if !errors.Is(err, ErrCompile) {
		t.Errorf("error = %v, want ErrCompile for self-recursive word", err)
	}
}

func TestCompileUnknownWordFails(t *testing.T) {
	lex := vocab.Default()
	if err := lex.DefineCondWord("chilly", "temperature is lower than nonsense degrees", "x"); err != nil {
		t.Fatal(err)
	}
	cmd, err := lang.Parse("If chilly, turn on the heater.", lex)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompiler(lex).CompileRule(cmd.(*lang.RuleDef), "r", "x"); err == nil {
		t.Error("malformed word definition should fail compilation")
	}
}

func TestCompileConfWordExpansion(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"When i am in the living room, turn on the floor lamp with half-lighting.", "tom")
	v, ok := rule.Action.Settings["brightness"]
	if !ok || !v.IsNumber || v.Number != 50 {
		t.Errorf("brightness = %+v, want 50", v)
	}
}

func TestCompileDuplicateParameterFails(t *testing.T) {
	lex := testLexicon(t)
	cmd, err := lang.Parse(
		"Turn on the air conditioner with 25 degrees of temperature setting and 27 degrees of temperature setting.", lex)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompiler(lex).CompileRule(cmd.(*lang.RuleDef), "r", "tom"); !errors.Is(err, ErrCompile) {
		t.Errorf("duplicate parameter error = %v, want ErrCompile", err)
	}
}

func TestCompilePresenceSubjects(t *testing.T) {
	lex := testLexicon(t)
	tests := []struct {
		src   string
		owner string
		check func(t *testing.T, c Condition)
	}{
		{
			src: "If i am in the living room, turn on the stereo.", owner: "tom",
			check: func(t *testing.T, c Condition) {
				p, ok := c.(*Presence)
				if !ok || p.Person != "tom" || p.Place != "living room" {
					t.Errorf("cond = %v", c)
				}
			},
		},
		{
			src: "If nobody is at home, turn off the light.", owner: "tom",
			check: func(t *testing.T, c Condition) {
				if n, ok := c.(*Nobody); !ok || n.Place != "home" {
					t.Errorf("cond = %v", c)
				}
			},
		},
		{
			src: "If everyone is in the living room, turn on the tv.", owner: "tom",
			check: func(t *testing.T, c Condition) {
				if e, ok := c.(*Everyone); !ok || e.Place != "living room" {
					t.Errorf("cond = %v", c)
				}
			},
		},
		{
			src: "If someone is at the kitchen, turn on the kitchen light.", owner: "tom",
			check: func(t *testing.T, c Condition) {
				if p, ok := c.(*Presence); !ok || p.Person != Someone {
					t.Errorf("cond = %v", c)
				}
			},
		},
	}
	for _, tt := range tests {
		rule := compileRule(t, lex, tt.src, tt.owner)
		tt.check(t, rule.Cond)
	}
}

func TestCompileMeWithoutOwnerFails(t *testing.T) {
	lex := testLexicon(t)
	cmd, err := lang.Parse("If i am in the living room, turn on the stereo.", lex)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompiler(lex).CompileRule(cmd.(*lang.RuleDef), "r", ""); !errors.Is(err, ErrCompile) {
		t.Errorf("error = %v, want ErrCompile for ownerless \"i\"", err)
	}
}

func TestCompileOnAirFavorite(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex, "If my favorite movie is on air, turn on the tv.", "emily")
	oa, ok := rule.Cond.(*OnAir)
	if !ok {
		t.Fatalf("cond = %v", rule.Cond)
	}
	if oa.Category != "movie" || oa.FavoriteOf != "emily" {
		t.Errorf("onair = %+v", oa)
	}

	rule = compileRule(t, lex, "If a baseball game is on air, turn on the tv.", "alan")
	oa, ok = rule.Cond.(*OnAir)
	if !ok || oa.Keyword != "baseball game" || oa.FavoriteOf != "" {
		t.Errorf("onair = %+v", rule.Cond)
	}
}

func TestCompileFahrenheitConversion(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"If temperature is higher than 86 degrees fahrenheit, turn on the air conditioner.", "tom")
	cmp := rule.Cond.(*Compare)
	if cmp.Value < 29.9 || cmp.Value > 30.1 {
		t.Errorf("86F = %gC, want 30C", cmp.Value)
	}
}

func TestCompileLocationQualifiedSensor(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"If temperature at the living room is higher than 28 degrees, turn on the air conditioner at the living room.", "tom")
	cmp := rule.Cond.(*Compare)
	if cmp.Var != "living room/temperature" {
		t.Errorf("var = %q", cmp.Var)
	}
	if rule.Device.Location != "living room" {
		t.Errorf("device = %+v", rule.Device)
	}
}

func TestCompileTimeWindows(t *testing.T) {
	lex := testLexicon(t)
	tests := []struct {
		src      string
		from, to int
	}{
		{"After evening, turn on the light.", 17 * 60, 24 * 60},
		{"Before evening, turn on the light.", 0, 17 * 60},
		{"Until 22:00, turn on the light.", 0, 22 * 60},
		{"In the evening, turn on the light.", 17 * 60, 22 * 60},
		{"At night, turn on the light.", 22 * 60, 30 * 60},
		{"At 18:00, turn on the light.", 18 * 60, 18*60 + 1},
	}
	for _, tt := range tests {
		rule := compileRule(t, lex, tt.src, "tom")
		win, ok := rule.Cond.(*TimeWindow)
		if !ok {
			t.Errorf("%q: cond = %v", tt.src, rule.Cond)
			continue
		}
		if win.FromMin != tt.from || win.ToMin != tt.to {
			t.Errorf("%q: window = [%d,%d), want [%d,%d)", tt.src, win.FromMin, win.ToMin, tt.from, tt.to)
		}
	}
}

func TestCompileEveryWeekday(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex, "At every monday 8 o'clock, turn on the coffee maker.", "tom")
	win := rule.Cond.(*TimeWindow)
	if win.Weekday != 1 {
		t.Errorf("weekday = %d, want 1 (Monday)", win.Weekday)
	}
}

func TestCompilePeriodFromTo(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex, "If the tv is turned on from 22:00 to 23:00, turn off the tv.", "tom")
	and, ok := rule.Cond.(*And)
	if !ok {
		t.Fatalf("cond = %v", rule.Cond)
	}
	foundWin := false
	for _, term := range and.Terms {
		if w, ok := term.(*TimeWindow); ok && w.FromMin == 22*60 && w.ToMin == 23*60 {
			foundWin = true
		}
	}
	if !foundWin {
		t.Errorf("cond = %v, want 22:00-23:00 window", rule.Cond)
	}
}

func TestCompileDurationKeyStability(t *testing.T) {
	lex := testLexicon(t)
	r1 := compileRule(t, lex, "At night, if entrance door is unlocked for 1 hour, turn on the alarm.", "a")
	r2 := compileRule(t, lex, "At night, if entrance door is unlocked for 1 hour, turn on the alarm.", "b")
	key := func(r *Rule) string {
		var k string
		WalkCond(r.Cond, func(c Condition) {
			if d, ok := c.(*Duration); ok {
				k = d.Key
			}
		})
		return k
	}
	if key(r1) == "" || key(r1) != key(r2) {
		t.Errorf("duration keys differ for identical conditions: %q vs %q", key(r1), key(r2))
	}
}

func TestCompileSourcePreserved(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex, "If hot and stuffy, turn on the air conditioner.", "tom")
	if !strings.Contains(rule.Source, "hot and stuffy") {
		t.Errorf("source = %q", rule.Source)
	}
	// The source must be reparseable (database round trip).
	if _, err := lang.Parse(rule.Source, lex); err != nil {
		t.Errorf("source not reparseable: %v", err)
	}
}

func TestRuleVars(t *testing.T) {
	lex := testLexicon(t)
	rule := compileRule(t, lex,
		"If hot and stuffy and i am in the living room, turn on the air conditioner.", "tom")
	vars := rule.Vars()
	joined := strings.Join(vars, ",")
	for _, want := range []string{"humidity", "temperature", "presence/tom"} {
		if !strings.Contains(joined, want) {
			t.Errorf("vars %v missing %s", vars, want)
		}
	}
	// Sorted and unique.
	for i := 1; i < len(vars); i++ {
		if vars[i-1] >= vars[i] {
			t.Errorf("vars not sorted/unique: %v", vars)
		}
	}
}

func TestDeviceRefMatches(t *testing.T) {
	tests := []struct {
		a, b DeviceRef
		want bool
	}{
		{DeviceRef{Name: "tv"}, DeviceRef{Name: "tv"}, true},
		{DeviceRef{Name: "tv"}, DeviceRef{Name: "stereo"}, false},
		{DeviceRef{Name: "light", Location: "hall"}, DeviceRef{Name: "light", Location: "hall"}, true},
		{DeviceRef{Name: "light", Location: "hall"}, DeviceRef{Name: "light", Location: "kitchen"}, false},
		{DeviceRef{Name: "light", Location: "hall"}, DeviceRef{Name: "light"}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Matches(tt.b); got != tt.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Matches(tt.a); got != tt.want {
			t.Errorf("Matches not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestActionEqual(t *testing.T) {
	a := Action{Verb: "turn-on", Settings: map[string]Value{"temperature": {IsNumber: true, Number: 25, Unit: "celsius"}}}
	b := Action{Verb: "turn-on", Settings: map[string]Value{"temperature": {IsNumber: true, Number: 25, Unit: "celsius"}}}
	c := Action{Verb: "turn-on", Settings: map[string]Value{"temperature": {IsNumber: true, Number: 24, Unit: "celsius"}}}
	d := Action{Verb: "turn-off"}
	if !a.Equal(b) {
		t.Error("identical actions should be equal")
	}
	if a.Equal(c) {
		t.Error("different settings should differ")
	}
	if a.Equal(d) {
		t.Error("different verbs should differ")
	}
	if d.Equal(Action{Verb: "turn-off", Settings: map[string]Value{"x": {}}}) {
		t.Error("different setting counts should differ")
	}
}
