package core

import (
	"sort"
	"strings"
	"time"
)

// Someone is the wildcard person used by conditions like "someone returns
// home".
const Someone = "*"

// Program is a broadcast programme currently on air, as reported by the EPG
// sensor.
type Program struct {
	Title    string
	Category string   // "movie", "baseball game", "news", ...
	Keywords []string // free-form keywords ("yankees", "roman holiday")
}

// Context is the instantaneous world snapshot conditions are evaluated
// against. The rule execution engine maintains one Context and updates it
// from sensor events; Eval never mutates it.
type Context struct {
	// Now is the current simulation or wall-clock time.
	Now time.Time
	// Numbers holds numeric sensor readings keyed by variable name,
	// optionally location-qualified: "temperature" or
	// "living room/temperature".
	Numbers map[string]float64
	// Bools holds boolean device/sensor states: "tv/power",
	// "entrance door/locked", "hall/dark".
	Bools map[string]bool
	// Locations maps each user to the place they are currently in; absent or
	// empty means away from home.
	Locations map[string]string
	// Users lists every registered user (needed by "everyone"/"nobody").
	Users []string
	// Events holds recent arrival events keyed by person + "|" + event name
	// ("alan|home-from-work") with the time the event fired.
	Events map[string]time.Time
	// EventTTL is how long an arrival event stays fresh. Zero means 5
	// minutes.
	EventTTL time.Duration
	// Programs lists the programmes currently on air.
	Programs []Program
	// Favorites maps a user to their registered favourite keywords, used by
	// "my favorite movie is on air".
	Favorites map[string][]string
	// Held maps a duration-condition key to the time its inner condition
	// most recently became true. Maintained by the engine.
	Held map[string]time.Time
}

// NewContext returns an empty context at the given time.
func NewContext(now time.Time) *Context {
	return &Context{
		Now:       now,
		Numbers:   make(map[string]float64),
		Bools:     make(map[string]bool),
		Locations: make(map[string]string),
		Events:    make(map[string]time.Time),
		Favorites: make(map[string][]string),
		Held:      make(map[string]time.Time),
	}
}

// Clone returns a deep copy of the context.
func (c *Context) Clone() *Context {
	out := NewContext(c.Now)
	out.EventTTL = c.EventTTL
	for k, v := range c.Numbers {
		out.Numbers[k] = v
	}
	for k, v := range c.Bools {
		out.Bools[k] = v
	}
	for k, v := range c.Locations {
		out.Locations[k] = v
	}
	out.Users = append(out.Users, c.Users...)
	for k, v := range c.Events {
		out.Events[k] = v
	}
	out.Programs = append(out.Programs, c.Programs...)
	for k, v := range c.Favorites {
		out.Favorites[k] = append([]string(nil), v...)
	}
	for k, v := range c.Held {
		out.Held[k] = v
	}
	return out
}

// Number resolves a numeric variable. An exact key match wins; an
// unqualified name additionally matches a location-qualified entry when the
// suffix match is unique (sorted order breaks ties deterministically).
func (c *Context) Number(name string) (float64, bool) {
	if v, ok := c.Numbers[name]; ok {
		return v, true
	}
	if strings.Contains(name, "/") {
		return 0, false
	}
	var keys []string
	suffix := "/" + name
	for k := range c.Numbers {
		if strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, false
	}
	sort.Strings(keys)
	return c.Numbers[keys[0]], true
}

// Bool resolves a boolean variable with the same qualification rules as
// Number.
func (c *Context) Bool(name string) (bool, bool) {
	if v, ok := c.Bools[name]; ok {
		return v, true
	}
	if strings.Contains(name, "/") {
		return false, false
	}
	var keys []string
	suffix := "/" + name
	for k := range c.Bools {
		if strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return false, false
	}
	sort.Strings(keys)
	return c.Bools[keys[0]], true
}

// At reports whether the person is at the place. "home" matches any
// non-empty location.
func (c *Context) At(person, place string) bool {
	loc, ok := c.Locations[person]
	if !ok || loc == "" {
		return false
	}
	if place == "home" {
		return true
	}
	return loc == place
}

// AnyoneAt reports whether at least one user is at the place.
func (c *Context) AnyoneAt(place string) bool {
	for person := range c.Locations {
		if c.At(person, place) {
			return true
		}
	}
	return false
}

// EveryoneAt reports whether every registered user is at the place. It is
// false when no users are registered.
func (c *Context) EveryoneAt(place string) bool {
	if len(c.Users) == 0 {
		return false
	}
	for _, person := range c.Users {
		if !c.At(person, place) {
			return false
		}
	}
	return true
}

// eventTTL returns the configured freshness window.
func (c *Context) eventTTL() time.Duration {
	if c.EventTTL > 0 {
		return c.EventTTL
	}
	return 5 * time.Minute
}

// HasEvent reports whether the arrival event fired recently for the person
// (or for anyone, when person is Someone).
func (c *Context) HasEvent(person, event string) bool {
	if person != Someone {
		at, ok := c.Events[person+"|"+event]
		return ok && c.Now.Sub(at) <= c.eventTTL()
	}
	suffix := "|" + event
	for key, at := range c.Events {
		if strings.HasSuffix(key, suffix) && c.Now.Sub(at) <= c.eventTTL() {
			return true
		}
	}
	return false
}

// RecordEvent stores an arrival event at the current context time.
func (c *Context) RecordEvent(person, event string) {
	c.Events[person+"|"+event] = c.Now
}

// OnAirMatch reports whether a programme matching the query is on air.
// A non-empty keyword matches the programme title, category or any keyword
// (case-insensitive). A non-empty category restricts by category, and a
// non-empty favoriteOf additionally requires one of that user's favourite
// keywords to appear among the programme's title or keywords.
func (c *Context) OnAirMatch(keyword, category, favoriteOf string) bool {
	for _, prog := range c.Programs {
		if category != "" && !strings.EqualFold(prog.Category, category) {
			continue
		}
		if keyword != "" && !programHasKeyword(prog, keyword) {
			continue
		}
		if favoriteOf != "" {
			found := false
			for _, fav := range c.Favorites[favoriteOf] {
				if programHasKeyword(prog, fav) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		return true
	}
	return false
}

func programHasKeyword(p Program, kw string) bool {
	if strings.EqualFold(p.Category, kw) {
		return true
	}
	if strings.Contains(strings.ToLower(p.Title), strings.ToLower(kw)) {
		return true
	}
	for _, k := range p.Keywords {
		if strings.EqualFold(k, kw) {
			return true
		}
	}
	return false
}

// HeldSince returns when the duration-condition key last became true.
func (c *Context) HeldSince(key string) (time.Time, bool) {
	at, ok := c.Held[key]
	return at, ok
}

// MarkHeld records that the duration-condition key became true at the
// current time, unless already marked.
func (c *Context) MarkHeld(key string) {
	if _, ok := c.Held[key]; !ok {
		c.Held[key] = c.Now
	}
}

// ClearHeld removes the held mark for the key.
func (c *Context) ClearHeld(key string) {
	delete(c.Held, key)
}
