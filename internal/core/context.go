package core

import (
	"sort"
	"strings"
	"time"
)

// Someone is the wildcard person used by conditions like "someone returns
// home".
const Someone = "*"

// Program is a broadcast programme currently on air, as reported by the EPG
// sensor.
type Program struct {
	Title    string
	Category string   // "movie", "baseball game", "news", ...
	Keywords []string // free-form keywords ("yankees", "roman holiday")
}

// resCache is one unqualified-name resolution result: the symbol id the name
// resolved to (-1 for "no match") and the key-population generation the
// result was computed at. An entry is valid while the population has not
// grown since; gen is 1-based so the zero value is always invalid.
type resCache struct {
	gen  uint32
	slot int32
}

// Context is the instantaneous world snapshot conditions are evaluated
// against. The rule execution engine maintains one Context and updates it
// from sensor events; Eval never mutates it.
//
// Numeric and boolean variables — and, since the presence/event interning,
// user locations and arrival events — have two representations. The
// string-keyed maps (Numbers, Bools, Locations, Events) are always truthful
// and serve observability, cloning and the retained string-keyed oracle
// path. A context built with NewInternedContext additionally keeps dense,
// symbol-id-indexed stores: value slices with presence tracking for
// numbers/booleans (NumberID/BoolID), location slots with reverse-index
// counters for presence quantifiers (AtID/AnyoneAtID/EveryoneAtID and
// friends) and keyed last-fired times with a per-event-name index for
// arrivals (HasEventKeyID/HasEventNameID) — the evaluation hot path reads
// those with no map lookup, no map iteration, no string comparison and no
// allocation. Interned contexts must be written through the setter methods
// (SetNumber/SetLocation/RecordEvent and friends) so both representations
// stay in step.
type Context struct {
	// Now is the current simulation or wall-clock time.
	Now time.Time
	// Numbers holds numeric sensor readings keyed by variable name,
	// optionally location-qualified: "temperature" or
	// "living room/temperature".
	Numbers map[string]float64
	// Bools holds boolean device/sensor states: "tv/power",
	// "entrance door/locked", "hall/dark".
	Bools map[string]bool
	// Locations maps each user to the place they are currently in; absent or
	// empty means away from home.
	Locations map[string]string
	// Users lists every registered user (needed by "everyone"/"nobody").
	Users []string
	// Events holds recent arrival events keyed by person + "|" + event name
	// ("alan|home-from-work") with the time the event fired.
	Events map[string]time.Time
	// EventTTL is how long an arrival event stays fresh. Zero means 5
	// minutes.
	EventTTL time.Duration
	// Programs lists the programmes currently on air.
	Programs []Program
	// Favorites maps a user to their registered favourite keywords, used by
	// "my favorite movie is on air".
	Favorites map[string][]string
	// Held maps a duration-condition key to the time its inner condition
	// most recently became true. Maintained by the engine.
	Held map[string]time.Time

	// tab, when non-nil, activates the interned store below.
	tab *Symtab

	// Dense value arrays indexed by symbol id, with presence flags and the
	// population (ids ever written, in first-write order). len(pop) is the
	// resolution generation: it grows exactly when a new key appears, which
	// is the only event that can change how an unqualified name resolves.
	numVals []float64
	numHas  []bool
	numPop  []uint32
	numRes  []resCache

	boolVals []bool
	boolHas  []bool
	boolPop  []uint32
	boolRes  []resCache

	// Interned presence store: each person's location as a dense
	// person-id-indexed slice of place slots (interned place id plus one; 0 =
	// away from home), with an incrementally maintained reverse index — how
	// many persons are at each place and how many are home at all — so
	// quantified conditions ("nobody", "everyone", "someone at ...") read a
	// counter instead of iterating the Locations map.
	locVals    []uint32
	placeCount []int32
	present    int
	userIDs    []uint32

	// Interned arrival-event store: last-fired times indexed by the interned
	// "person|event" key id, plus a per-event-name index (keyed by the
	// event's dependency id) listing every key ever recorded under that name,
	// so "someone <event>" scans a short id list instead of the Events map.
	evTimes  []time.Time
	evHas    []bool
	evByName [][]uint32

	// ver counts data mutations (not Now advances); the engine uses it to
	// cache read-only snapshots for observability.
	ver uint64
}

// NewContext returns an empty string-keyed context at the given time.
func NewContext(now time.Time) *Context {
	return &Context{
		Now:       now,
		Numbers:   make(map[string]float64),
		Bools:     make(map[string]bool),
		Locations: make(map[string]string),
		Events:    make(map[string]time.Time),
		Favorites: make(map[string][]string),
		Held:      make(map[string]time.Time),
	}
}

// NewInternedContext returns an empty context whose numeric and boolean
// variables are additionally backed by the symbol-indexed slice store, with
// unqualified-name resolution cached per population generation.
func NewInternedContext(now time.Time, tab *Symtab) *Context {
	c := NewContext(now)
	c.tab = tab
	return c
}

// Symtab returns the symbol table backing the interned store, or nil for a
// purely string-keyed context.
func (c *Context) Symtab() *Symtab { return c.tab }

// Version counts data mutations applied through the setter methods. Now
// advances are excluded, so an idle engine's context keeps a stable version
// and observability snapshots can be cached.
func (c *Context) Version() uint64 { return c.ver }

// Clone returns a deep copy of the context. The copy is always string-keyed
// (the dense arrays are an evaluation-path acceleration; clones serve
// observability and tests), so it is fully independent of the original and
// of the symbol table.
func (c *Context) Clone() *Context {
	out := NewContext(c.Now)
	out.EventTTL = c.EventTTL
	for k, v := range c.Numbers {
		out.Numbers[k] = v
	}
	for k, v := range c.Bools {
		out.Bools[k] = v
	}
	for k, v := range c.Locations {
		out.Locations[k] = v
	}
	out.Users = append(out.Users, c.Users...)
	for k, v := range c.Events {
		out.Events[k] = v
	}
	out.Programs = append(out.Programs, c.Programs...)
	for k, v := range c.Favorites {
		out.Favorites[k] = append([]string(nil), v...)
	}
	for k, v := range c.Held {
		out.Held[k] = v
	}
	return out
}

// ---- compaction (epoch/remap contract) ----

// MarkLive adds every symbol id the interned store holds to live: populated
// number/boolean slots, present persons and their places, the registered
// user ids, and fresh arrival keys with their event-name index ids.
// Persons recorded as away (slot 0) are deliberately not marked — the
// id-indexed readers treat an unknown person and an away person
// identically, and the string-keyed Locations map stays truthful either
// way — so unreferenced ids can be reclaimed.
//
// Arrival events are freshness-gated: an event older than the TTL is
// already invisible to every reader (HasEventKeyID and friends test
// freshness), so pinning its ids would regrow the event store without bound
// under event-name churn — the exact leak compaction exists to close.
// Expired events are therefore pruned here, from the id store and the
// Events map alike, before their ids go unmarked. This assumes Now does not
// move backwards, like the rest of the engine's clock handling.
func (c *Context) MarkLive(live *IDSet) {
	if c.tab == nil {
		return
	}
	live.AddAll(c.numPop)
	live.AddAll(c.boolPop)
	for person, slot := range c.locVals {
		if slot != 0 {
			live.Add(uint32(person))
			live.Add(slot - 1)
		}
	}
	live.AddAll(c.userIDs)
	ttl := c.eventTTL()
	pruned := false
	for name, keys := range c.evByName {
		kept := keys[:0]
		for _, key := range keys {
			if c.Now.Sub(c.evTimes[key]) <= ttl {
				kept = append(kept, key)
				live.Add(key)
				live.Add(uint32(name))
				continue
			}
			c.evHas[key] = false
			c.evTimes[key] = time.Time{}
			delete(c.Events, c.tab.Name(key))
			pruned = true
		}
		c.evByName[name] = kept
	}
	if pruned {
		c.ver++
	}
}

// Remap rewrites the interned store for a compaction epoch: every id-indexed
// slice is rebuilt under the new numbering (newLen = the compacted symtab
// length) and the per-generation resolution caches are dropped (cached slots
// reference old ids; the populations are unchanged, so the next read of each
// name recomputes once). Every id the store holds must have been marked live
// (MarkLive) or Remap panics on the DeadID sentinel — by contract the string
// maps are untouched, so observability and clones see no change.
func (c *Context) Remap(remap []uint32, newLen int) {
	if c.tab == nil {
		return
	}
	// Numbers / booleans: rebuild the dense value arrays; the populations
	// remap in place (populated slots are live by construction).
	numVals, numHas := make([]float64, newLen), make([]bool, newLen)
	for i, id := range c.numPop {
		nid := remap[id]
		numVals[nid], numHas[nid] = c.numVals[id], true
		c.numPop[i] = nid
	}
	c.numVals, c.numHas, c.numRes = numVals, numHas, nil
	boolVals, boolHas := make([]bool, newLen), make([]bool, newLen)
	for i, id := range c.boolPop {
		nid := remap[id]
		boolVals[nid], boolHas[nid] = c.boolVals[id], true
		c.boolPop[i] = nid
	}
	c.boolVals, c.boolHas, c.boolRes = boolVals, boolHas, nil

	// Presence: present persons move to their new ids; away persons whose
	// ids died are dropped (semantically identical for the id readers). The
	// reverse-index counters are rebuilt from the new slots.
	locVals := make([]uint32, newLen)
	placeCount := make([]int32, 0, len(c.placeCount))
	present := 0
	for person, slot := range c.locVals {
		if slot == 0 {
			continue // away: the new slot is zero whether the id lived or died
		}
		np, ns := remap[person], remap[slot-1]+1
		locVals[np] = ns
		for int(ns-1) >= len(placeCount) {
			placeCount = append(placeCount, 0)
		}
		placeCount[ns-1]++
		present++
	}
	c.locVals, c.placeCount, c.present = locVals, placeCount, present
	for i, u := range c.userIDs {
		c.userIDs[i] = remap[u]
	}

	// Arrival events: recorded keys move; the per-event-name index is
	// rebuilt under the new name ids.
	evTimes, evHas := make([]time.Time, newLen), make([]bool, newLen)
	evByName := make([][]uint32, 0, len(c.evByName))
	for name, keys := range c.evByName {
		if len(keys) == 0 {
			continue
		}
		nn := remap[name]
		for int(nn) >= len(evByName) {
			evByName = append(evByName, nil)
		}
		for _, key := range keys {
			nk := remap[key]
			evTimes[nk], evHas[nk] = c.evTimes[key], true
			evByName[nn] = append(evByName[nn], nk)
		}
	}
	c.evTimes, c.evHas, c.evByName = evTimes, evHas, evByName
}

// IDSliceLens reports the lengths of the interned store's id-indexed slices
// (numbers, booleans, locations, arrival events) for memory observability.
func (c *Context) IDSliceLens() (num, boolean, loc, ev int) {
	return len(c.numVals), len(c.boolVals), len(c.locVals), len(c.evTimes)
}

// ---- writes ----

// SetNumber stores a numeric reading under its full key.
func (c *Context) SetNumber(key string, v float64) {
	if c.tab != nil {
		c.SetNumberID(c.tab.Intern(key), v)
		return
	}
	c.Numbers[key] = v
	c.ver++
}

// SetNumberID stores a numeric reading by symbol id (interned contexts
// only). First sight of an id grows the key population, invalidating every
// cached unqualified-name resolution in this namespace.
func (c *Context) SetNumberID(id uint32, v float64) {
	for int(id) >= len(c.numHas) {
		c.numHas = append(c.numHas, false)
		c.numVals = append(c.numVals, 0)
	}
	if !c.numHas[id] {
		c.numHas[id] = true
		c.numPop = append(c.numPop, id)
	}
	c.numVals[id] = v
	c.Numbers[c.tab.Name(id)] = v
	c.ver++
}

// SetBool stores a boolean state under its full key.
func (c *Context) SetBool(key string, v bool) {
	if c.tab != nil {
		c.SetBoolID(c.tab.Intern(key), v)
		return
	}
	c.Bools[key] = v
	c.ver++
}

// SetBoolID stores a boolean state by symbol id (interned contexts only).
func (c *Context) SetBoolID(id uint32, v bool) {
	for int(id) >= len(c.boolHas) {
		c.boolHas = append(c.boolHas, false)
		c.boolVals = append(c.boolVals, false)
	}
	if !c.boolHas[id] {
		c.boolHas[id] = true
		c.boolPop = append(c.boolPop, id)
	}
	c.boolVals[id] = v
	c.Bools[c.tab.Name(id)] = v
	c.ver++
}

// SetLocation moves a user to a place ("" = away from home).
func (c *Context) SetLocation(person, place string) {
	if c.tab != nil {
		slot := uint32(0)
		if place != "" {
			slot = c.tab.Intern(place) + 1
		}
		c.SetLocationID(c.tab.Intern(person), slot)
		return
	}
	c.Locations[person] = place
	c.ver++
}

// SetLocationID moves a user by interned person id (interned contexts only).
// slot is the interned place id plus one; 0 means away from home. The
// reverse-index counters and the Locations map are kept in step.
func (c *Context) SetLocationID(person, slot uint32) {
	for int(person) >= len(c.locVals) {
		c.locVals = append(c.locVals, 0)
	}
	if old := c.locVals[person]; old != 0 {
		c.present--
		c.placeCount[old-1]--
	}
	if slot != 0 {
		for int(slot-1) >= len(c.placeCount) {
			c.placeCount = append(c.placeCount, 0)
		}
		c.present++
		c.placeCount[slot-1]++
	}
	c.locVals[person] = slot
	place := ""
	if slot != 0 {
		place = c.tab.Name(slot - 1)
	}
	c.Locations[c.tab.Name(person)] = place
	c.ver++
}

// SetUsers replaces the registered user list.
func (c *Context) SetUsers(users []string) {
	c.Users = append(c.Users[:0:0], users...)
	if c.tab != nil {
		c.userIDs = c.userIDs[:0]
		for _, u := range users {
			c.userIDs = append(c.userIDs, c.tab.Intern(u))
		}
	}
	c.ver++
}

// SetFavorites replaces one user's favourite keywords.
func (c *Context) SetFavorites(user string, keywords []string) {
	c.Favorites[user] = append([]string(nil), keywords...)
	c.ver++
}

// SetPrograms replaces the on-air programme list.
func (c *Context) SetPrograms(programs []Program) {
	c.Programs = programs
	c.ver++
}

// ---- numeric / boolean reads ----

// Number resolves a numeric variable. An exact key match wins; an
// unqualified name additionally matches a location-qualified entry when the
// suffix match is unique (sorted order breaks ties deterministically).
func (c *Context) Number(name string) (float64, bool) {
	if c.tab != nil {
		return c.NumberID(c.tab.Intern(name))
	}
	if v, ok := c.Numbers[name]; ok {
		return v, true
	}
	if strings.Contains(name, "/") {
		return 0, false
	}
	var keys []string
	suffix := "/" + name
	for k := range c.Numbers {
		if strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, false
	}
	sort.Strings(keys)
	return c.Numbers[keys[0]], true
}

// NumberID resolves a numeric variable by symbol id (interned contexts
// only), with the same qualification rules as Number. The steady-state cost
// is two slice indexes: an exact presence check, then the cached resolution
// for the current population generation.
func (c *Context) NumberID(id uint32) (float64, bool) {
	if int(id) < len(c.numHas) && c.numHas[id] {
		return c.numVals[id], true
	}
	gen := uint32(len(c.numPop)) + 1
	if int(id) < len(c.numRes) {
		if rc := c.numRes[id]; rc.gen == gen {
			if rc.slot < 0 {
				return 0, false
			}
			return c.numVals[rc.slot], true
		}
	}
	slot := c.resolveSlow(id, gen, &c.numRes, c.numPop)
	if slot < 0 {
		return 0, false
	}
	return c.numVals[slot], true
}

// Bool resolves a boolean variable with the same qualification rules as
// Number.
func (c *Context) Bool(name string) (bool, bool) {
	if c.tab != nil {
		return c.BoolID(c.tab.Intern(name))
	}
	if v, ok := c.Bools[name]; ok {
		return v, true
	}
	if strings.Contains(name, "/") {
		return false, false
	}
	var keys []string
	suffix := "/" + name
	for k := range c.Bools {
		if strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return false, false
	}
	sort.Strings(keys)
	return c.Bools[keys[0]], true
}

// BoolID resolves a boolean variable by symbol id (interned contexts only).
func (c *Context) BoolID(id uint32) (bool, bool) {
	if int(id) < len(c.boolHas) && c.boolHas[id] {
		return c.boolVals[id], true
	}
	gen := uint32(len(c.boolPop)) + 1
	if int(id) < len(c.boolRes) {
		if rc := c.boolRes[id]; rc.gen == gen {
			if rc.slot < 0 {
				return false, false
			}
			return c.boolVals[rc.slot], true
		}
	}
	slot := c.resolveSlow(id, gen, &c.boolRes, c.boolPop)
	if slot < 0 {
		return false, false
	}
	return c.boolVals[slot], true
}

// resolveSlow recomputes one unqualified-name resolution against the current
// key population and caches it for the generation. It runs once per (name,
// generation): qualified names never suffix-match, unqualified names take
// the lexicographically smallest qualified entry, exactly like the
// string-keyed scan-and-sort.
func (c *Context) resolveSlow(id, gen uint32, cache *[]resCache, pop []uint32) int32 {
	for int(id) >= len(*cache) {
		*cache = append(*cache, resCache{})
	}
	name := c.tab.Name(id)
	slot := int32(-1)
	if !strings.Contains(name, "/") {
		slot = c.tab.minSuffixMatch(pop, "/"+name)
	}
	(*cache)[id] = resCache{gen: gen, slot: slot}
	return slot
}

// ---- presence / events / EPG ----

// At reports whether the person is at the place. "home" matches any
// non-empty location.
func (c *Context) At(person, place string) bool {
	loc, ok := c.Locations[person]
	if !ok || loc == "" {
		return false
	}
	if place == "home" {
		return true
	}
	return loc == place
}

// AnyoneAt reports whether at least one user is at the place.
func (c *Context) AnyoneAt(place string) bool {
	for person := range c.Locations {
		if c.At(person, place) {
			return true
		}
	}
	return false
}

// EveryoneAt reports whether every registered user is at the place. It is
// false when no users are registered.
func (c *Context) EveryoneAt(place string) bool {
	if len(c.Users) == 0 {
		return false
	}
	for _, person := range c.Users {
		if !c.At(person, place) {
			return false
		}
	}
	return true
}

// ---- interned presence reads (bound conditions; interned contexts only) ----
//
// The id-indexed readers mirror At/AnyoneAt/EveryoneAt exactly, reading the
// dense location slots and the reverse-index counters instead of the maps:
// no map iteration, no string comparison, no allocation.

// AtID reports whether the person (by interned id) is at the place (by
// interned id).
func (c *Context) AtID(person, place uint32) bool {
	if int(person) >= len(c.locVals) {
		return false
	}
	v := c.locVals[person]
	return v != 0 && v-1 == place
}

// AtHomeID reports whether the person (by interned id) is anywhere at home.
func (c *Context) AtHomeID(person uint32) bool {
	return int(person) < len(c.locVals) && c.locVals[person] != 0
}

// AnyoneAtID reports whether at least one person is at the place (by
// interned id).
func (c *Context) AnyoneAtID(place uint32) bool {
	return int(place) < len(c.placeCount) && c.placeCount[place] > 0
}

// AnyoneHome reports whether at least one person has a non-empty location.
func (c *Context) AnyoneHome() bool { return c.present > 0 }

// EveryoneAtID reports whether every registered user is at the place (by
// interned id). False when no users are registered.
func (c *Context) EveryoneAtID(place uint32) bool {
	if len(c.userIDs) == 0 {
		return false
	}
	for _, u := range c.userIDs {
		if int(u) >= len(c.locVals) {
			return false
		}
		v := c.locVals[u]
		if v == 0 || v-1 != place {
			return false
		}
	}
	return true
}

// EveryoneHome reports whether every registered user is somewhere at home.
// False when no users are registered.
func (c *Context) EveryoneHome() bool {
	if len(c.userIDs) == 0 {
		return false
	}
	for _, u := range c.userIDs {
		if int(u) >= len(c.locVals) || c.locVals[u] == 0 {
			return false
		}
	}
	return true
}

// eventTTL returns the configured freshness window.
func (c *Context) eventTTL() time.Duration {
	if c.EventTTL > 0 {
		return c.EventTTL
	}
	return 5 * time.Minute
}

// HasEvent reports whether the arrival event fired recently for the person
// (or for anyone, when person is Someone).
func (c *Context) HasEvent(person, event string) bool {
	if person != Someone {
		return c.HasEventKey(person + "|" + event)
	}
	return c.HasEventSuffix("|" + event)
}

// HasEventKey is HasEvent for a pre-built "person|event" key; bound arrival
// conditions use it to test freshness without rebuilding the key.
func (c *Context) HasEventKey(key string) bool {
	at, ok := c.Events[key]
	return ok && c.Now.Sub(at) <= c.eventTTL()
}

// HasEventSuffix reports whether any person's arrival event with the
// pre-built "|event" suffix fired recently.
func (c *Context) HasEventSuffix(suffix string) bool {
	for key, at := range c.Events {
		if strings.HasSuffix(key, suffix) && c.Now.Sub(at) <= c.eventTTL() {
			return true
		}
	}
	return false
}

// RecordEvent stores an arrival event at the current context time.
func (c *Context) RecordEvent(person, event string) {
	if c.tab != nil {
		c.RecordEventID(c.tab.Intern(person+"|"+event), c.tab.Intern(EventDepKey(event)))
		return
	}
	c.Events[person+"|"+event] = c.Now
	c.ver++
}

// RecordEventID stores an arrival event by its interned "person|event" key id
// and the event name's dependency id (interned contexts only). The Events map
// stays truthful; steady-state re-fires of a known event allocate nothing.
func (c *Context) RecordEventID(key, name uint32) {
	for int(key) >= len(c.evHas) {
		c.evHas = append(c.evHas, false)
		c.evTimes = append(c.evTimes, time.Time{})
	}
	if !c.evHas[key] {
		c.evHas[key] = true
		for int(name) >= len(c.evByName) {
			c.evByName = append(c.evByName, nil)
		}
		c.evByName[name] = append(c.evByName[name], key)
	}
	c.evTimes[key] = c.Now
	c.Events[c.tab.Name(key)] = c.Now
	c.ver++
}

// HasEventKeyID reports whether the arrival event with the interned
// "person|event" key id fired recently (interned contexts only).
func (c *Context) HasEventKeyID(key uint32) bool {
	return int(key) < len(c.evHas) && c.evHas[key] && c.Now.Sub(c.evTimes[key]) <= c.eventTTL()
}

// HasEventNameID reports whether any person's arrival event with the given
// event-name dependency id fired recently (interned contexts only).
func (c *Context) HasEventNameID(name uint32) bool {
	if int(name) >= len(c.evByName) {
		return false
	}
	for _, key := range c.evByName[name] {
		if c.Now.Sub(c.evTimes[key]) <= c.eventTTL() {
			return true
		}
	}
	return false
}

// OnAirMatch reports whether a programme matching the query is on air.
// A non-empty keyword matches the programme title, category or any keyword
// (case-insensitive). A non-empty category restricts by category, and a
// non-empty favoriteOf additionally requires one of that user's favourite
// keywords to appear among the programme's title or keywords.
func (c *Context) OnAirMatch(keyword, category, favoriteOf string) bool {
	for _, prog := range c.Programs {
		if category != "" && !strings.EqualFold(prog.Category, category) {
			continue
		}
		if keyword != "" && !programHasKeyword(prog, keyword) {
			continue
		}
		if favoriteOf != "" {
			found := false
			for _, fav := range c.Favorites[favoriteOf] {
				if programHasKeyword(prog, fav) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		return true
	}
	return false
}

func programHasKeyword(p Program, kw string) bool {
	if strings.EqualFold(p.Category, kw) {
		return true
	}
	if strings.Contains(strings.ToLower(p.Title), strings.ToLower(kw)) {
		return true
	}
	for _, k := range p.Keywords {
		if strings.EqualFold(k, kw) {
			return true
		}
	}
	return false
}

// HeldSince returns when the duration-condition key last became true.
func (c *Context) HeldSince(key string) (time.Time, bool) {
	at, ok := c.Held[key]
	return at, ok
}

// MarkHeld records that the duration-condition key became true at the
// current time, unless already marked.
func (c *Context) MarkHeld(key string) {
	if _, ok := c.Held[key]; !ok {
		c.Held[key] = c.Now
		c.ver++
	}
}

// ClearHeld removes the held mark for the key.
func (c *Context) ClearHeld(key string) {
	if _, ok := c.Held[key]; ok {
		delete(c.Held, key)
		c.ver++
	}
}
