package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simplex"
)

var baseTime = time.Date(2005, 3, 7, 18, 30, 0, 0, time.UTC) // a Monday evening

func exampleContext() *Context {
	ctx := NewContext(baseTime)
	ctx.Numbers["living room/temperature"] = 29
	ctx.Numbers["living room/humidity"] = 70
	ctx.Bools["tv/power"] = true
	ctx.Bools["hall/dark"] = true
	ctx.Bools["entrance door/locked"] = false
	ctx.Users = []string{"tom", "alan", "emily"}
	ctx.Locations["tom"] = "living room"
	ctx.Locations["alan"] = ""
	ctx.Programs = []Program{
		{Title: "Tigers vs Giants", Category: "baseball game", Keywords: []string{"tigers"}},
		{Title: "Roman Holiday", Category: "movie", Keywords: []string{"audrey hepburn"}},
	}
	ctx.Favorites["emily"] = []string{"roman holiday"}
	return ctx
}

func TestCompareEval(t *testing.T) {
	ctx := exampleContext()
	tests := []struct {
		name string
		cond Condition
		want bool
	}{
		{name: "gt true", cond: &Compare{Var: "living room/temperature", Op: simplex.GT, Value: 28}, want: true},
		{name: "gt false", cond: &Compare{Var: "living room/temperature", Op: simplex.GT, Value: 29}, want: false},
		{name: "ge boundary", cond: &Compare{Var: "living room/temperature", Op: simplex.GE, Value: 29}, want: true},
		{name: "lt false", cond: &Compare{Var: "living room/humidity", Op: simplex.LT, Value: 60}, want: false},
		{name: "le true", cond: &Compare{Var: "living room/humidity", Op: simplex.LE, Value: 70}, want: true},
		{name: "eq", cond: &Compare{Var: "living room/humidity", Op: simplex.EQ, Value: 70}, want: true},
		{name: "unknown var", cond: &Compare{Var: "basement/radon", Op: simplex.GT, Value: 0}, want: false},
		{name: "suffix fallback", cond: &Compare{Var: "temperature", Op: simplex.GT, Value: 28}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.cond.Eval(ctx); got != tt.want {
				t.Errorf("Eval(%s) = %v, want %v", tt.cond, got, tt.want)
			}
		})
	}
}

func TestBoolIsEval(t *testing.T) {
	ctx := exampleContext()
	if !(&BoolIs{Var: "tv/power", Want: true}).Eval(ctx) {
		t.Error("tv power should be on")
	}
	if (&BoolIs{Var: "tv/power", Want: false}).Eval(ctx) {
		t.Error("tv power=false should fail")
	}
	if !(&BoolIs{Var: "entrance door/locked", Want: false}).Eval(ctx) {
		t.Error("door is unlocked")
	}
	if (&BoolIs{Var: "garage/door", Want: true}).Eval(ctx) {
		t.Error("unknown var should be false")
	}
	// Suffix fallback: bare "dark" finds hall/dark.
	if !(&BoolIs{Var: "dark", Want: true}).Eval(ctx) {
		t.Error("bare dark should resolve to hall/dark")
	}
}

func TestPresenceEval(t *testing.T) {
	ctx := exampleContext()
	if !(&Presence{Person: "tom", Place: "living room"}).Eval(ctx) {
		t.Error("tom is in the living room")
	}
	if (&Presence{Person: "alan", Place: "living room"}).Eval(ctx) {
		t.Error("alan is away")
	}
	if !(&Presence{Person: "tom", Place: "home"}).Eval(ctx) {
		t.Error("tom is home")
	}
	if !(&Presence{Person: Someone, Place: "living room"}).Eval(ctx) {
		t.Error("someone is in the living room")
	}
	if (&Presence{Person: Someone, Place: "kitchen"}).Eval(ctx) {
		t.Error("kitchen is empty")
	}
}

func TestNobodyEveryoneEval(t *testing.T) {
	ctx := exampleContext()
	if !(&Nobody{Place: "kitchen"}).Eval(ctx) {
		t.Error("nobody in kitchen")
	}
	if (&Nobody{Place: "living room"}).Eval(ctx) {
		t.Error("tom is in living room")
	}
	if (&Everyone{Place: "living room"}).Eval(ctx) {
		t.Error("not everyone in living room")
	}
	ctx.Locations["alan"] = "living room"
	ctx.Locations["emily"] = "living room"
	if !(&Everyone{Place: "living room"}).Eval(ctx) {
		t.Error("everyone is in living room now")
	}
	empty := NewContext(baseTime)
	if (&Everyone{Place: "anywhere"}).Eval(empty) {
		t.Error("everyone with no users should be false")
	}
}

func TestArrivalEvalAndTTL(t *testing.T) {
	ctx := exampleContext()
	ctx.RecordEvent("alan", "home-from-work")
	if !(&Arrival{Person: "alan", Event: "home-from-work"}).Eval(ctx) {
		t.Error("fresh event should match")
	}
	if !(&Arrival{Person: Someone, Event: "home-from-work"}).Eval(ctx) {
		t.Error("someone matcher should match")
	}
	if (&Arrival{Person: "emily", Event: "home-from-work"}).Eval(ctx) {
		t.Error("emily did not arrive")
	}
	// Stale events do not match.
	ctx.Now = ctx.Now.Add(10 * time.Minute)
	if (&Arrival{Person: "alan", Event: "home-from-work"}).Eval(ctx) {
		t.Error("event older than TTL should not match")
	}
	ctx.EventTTL = time.Hour
	if !(&Arrival{Person: "alan", Event: "home-from-work"}).Eval(ctx) {
		t.Error("longer TTL should keep event fresh")
	}
}

func TestOnAirEval(t *testing.T) {
	ctx := exampleContext()
	if !(&OnAir{Keyword: "baseball game"}).Eval(ctx) {
		t.Error("baseball game is on air")
	}
	if !(&OnAir{Keyword: "tigers"}).Eval(ctx) {
		t.Error("keyword match should work")
	}
	if (&OnAir{Keyword: "sumo"}).Eval(ctx) {
		t.Error("sumo is not on air")
	}
	if !(&OnAir{Category: "movie", FavoriteOf: "emily"}).Eval(ctx) {
		t.Error("emily's favourite movie is on air")
	}
	if (&OnAir{Category: "movie", FavoriteOf: "tom"}).Eval(ctx) {
		t.Error("tom has no favourites")
	}
	ctx.Programs = ctx.Programs[:1]
	if (&OnAir{Category: "movie", FavoriteOf: "emily"}).Eval(ctx) {
		t.Error("movie went off air")
	}
}

func TestTimeWindowEval(t *testing.T) {
	tests := []struct {
		name string
		win  TimeWindow
		at   time.Time
		want bool
	}{
		{
			name: "inside evening",
			win:  TimeWindow{FromMin: 17 * 60, ToMin: 22 * 60, Weekday: -1},
			at:   time.Date(2005, 3, 7, 18, 30, 0, 0, time.UTC),
			want: true,
		},
		{
			name: "before evening",
			win:  TimeWindow{FromMin: 17 * 60, ToMin: 22 * 60, Weekday: -1},
			at:   time.Date(2005, 3, 7, 12, 0, 0, 0, time.UTC),
			want: false,
		},
		{
			name: "night wraps midnight (before)",
			win:  TimeWindow{FromMin: 22 * 60, ToMin: 30 * 60, Weekday: -1},
			at:   time.Date(2005, 3, 7, 23, 30, 0, 0, time.UTC),
			want: true,
		},
		{
			name: "night wraps midnight (after)",
			win:  TimeWindow{FromMin: 22 * 60, ToMin: 30 * 60, Weekday: -1},
			at:   time.Date(2005, 3, 8, 3, 0, 0, 0, time.UTC),
			want: true,
		},
		{
			name: "night excludes noon",
			win:  TimeWindow{FromMin: 22 * 60, ToMin: 30 * 60, Weekday: -1},
			at:   time.Date(2005, 3, 8, 12, 0, 0, 0, time.UTC),
			want: false,
		},
		{
			name: "weekday match",
			win:  TimeWindow{FromMin: 0, ToMin: 24 * 60, Weekday: 1}, // Monday
			at:   time.Date(2005, 3, 7, 10, 0, 0, 0, time.UTC),       // a Monday
			want: true,
		},
		{
			name: "weekday mismatch",
			win:  TimeWindow{FromMin: 0, ToMin: 24 * 60, Weekday: 2},
			at:   time.Date(2005, 3, 7, 10, 0, 0, 0, time.UTC),
			want: false,
		},
		{
			name: "single minute at",
			win:  TimeWindow{FromMin: 18*60 + 30, ToMin: 18*60 + 31, Weekday: -1},
			at:   time.Date(2005, 3, 7, 18, 30, 45, 0, time.UTC),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx := NewContext(tt.at)
			if got := tt.win.Eval(ctx); got != tt.want {
				t.Errorf("Eval(%s at %v) = %v, want %v", tt.win.String(), tt.at, got, tt.want)
			}
		})
	}
}

func TestDurationEval(t *testing.T) {
	ctx := exampleContext()
	inner := &BoolIs{Var: "entrance door/locked", Want: false}
	d := &Duration{Inner: inner, Seconds: 3600, Key: "k1"}

	if d.Eval(ctx) {
		t.Error("no hold recorded yet")
	}
	ctx.MarkHeld("k1")
	if d.Eval(ctx) {
		t.Error("hold just started")
	}
	ctx.Now = ctx.Now.Add(time.Hour)
	if !d.Eval(ctx) {
		t.Error("held for an hour")
	}
	// Inner turning false defeats the duration even if the mark is stale.
	ctx.Bools["entrance door/locked"] = true
	if d.Eval(ctx) {
		t.Error("inner false should defeat duration")
	}
	ctx.ClearHeld("k1")
	ctx.Bools["entrance door/locked"] = false
	if d.Eval(ctx) {
		t.Error("cleared mark should reset hold")
	}
}

func TestAndOrEval(t *testing.T) {
	ctx := exampleContext()
	hot := &Compare{Var: "living room/temperature", Op: simplex.GT, Value: 28}
	cold := &Compare{Var: "living room/temperature", Op: simplex.LT, Value: 10}
	dark := &BoolIs{Var: "hall/dark", Want: true}

	if !(&And{Terms: []Condition{hot, dark}}).Eval(ctx) {
		t.Error("hot and dark should hold")
	}
	if (&And{Terms: []Condition{hot, cold}}).Eval(ctx) {
		t.Error("hot and cold cannot hold")
	}
	if !(&Or{Terms: []Condition{cold, dark}}).Eval(ctx) {
		t.Error("cold or dark should hold")
	}
	if (&Or{Terms: []Condition{cold}}).Eval(ctx) {
		t.Error("or of false is false")
	}
	if !(Always{}).Eval(ctx) {
		t.Error("always is true")
	}
}

func TestVarsCollection(t *testing.T) {
	cond := &And{Terms: []Condition{
		&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
		&Or{Terms: []Condition{
			&BoolIs{Var: "tv/power", Want: true},
			&Presence{Person: "tom", Place: "living room"},
		}},
		&Duration{Inner: &BoolIs{Var: "door/locked", Want: false}, Seconds: 10, Key: "k"},
	}}
	vars := cond.Vars(nil)
	joined := strings.Join(vars, ",")
	for _, want := range []string{"temperature", "tv/power", "presence/tom", "door/locked", "clock/minute"} {
		if !strings.Contains(joined, want) {
			t.Errorf("vars %v missing %q", vars, want)
		}
	}
}

func TestWalkCond(t *testing.T) {
	cond := &And{Terms: []Condition{
		&Compare{Var: "a", Op: simplex.GT, Value: 1},
		&Or{Terms: []Condition{
			&BoolIs{Var: "b", Want: true},
			&Duration{Inner: &BoolIs{Var: "c", Want: false}, Seconds: 5, Key: "k"},
		}},
	}}
	count := 0
	WalkCond(cond, func(Condition) { count++ })
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
}

func TestContextClone(t *testing.T) {
	ctx := exampleContext()
	ctx.MarkHeld("x")
	clone := ctx.Clone()
	clone.Numbers["living room/temperature"] = 10
	clone.Locations["tom"] = "kitchen"
	clone.ClearHeld("x")
	if ctx.Numbers["living room/temperature"] != 29 {
		t.Error("clone mutated original numbers")
	}
	if ctx.Locations["tom"] != "living room" {
		t.Error("clone mutated original locations")
	}
	if _, ok := ctx.HeldSince("x"); !ok {
		t.Error("clone mutated original held marks")
	}
}

func TestConditionStrings(t *testing.T) {
	conds := []Condition{
		&Compare{Var: "temperature", Op: simplex.GT, Value: 28},
		&BoolIs{Var: "tv/power", Want: true},
		&Presence{Person: Someone, Place: "hall"},
		&Nobody{Place: "home"},
		&Everyone{Place: "living room"},
		&Arrival{Person: "alan", Event: "home-from-work"},
		&OnAir{Keyword: "baseball game"},
		&OnAir{Category: "movie", FavoriteOf: "emily"},
		&TimeWindow{FromMin: 17 * 60, ToMin: 22 * 60, Weekday: -1},
		&Duration{Inner: Always{}, Seconds: 60, Key: "k"},
		&And{Terms: []Condition{Always{}, Always{}}},
		&Or{Terms: []Condition{Always{}, Always{}}},
	}
	for _, c := range conds {
		if c.String() == "" {
			t.Errorf("%T has empty String()", c)
		}
	}
}
