// Package registry implements the CADEL rule database: indexed storage for
// compiled rule objects with the access paths the paper's home server needs —
// most importantly the "extract all rules controlling the same device"
// operation that feeds conflict detection (the paper measures it at 10 ms or
// less over 10,000 rules).
//
// Rules serialize as their original CADEL source text plus metadata; import
// recompiles the source, so the database file format is human-readable CADEL,
// mirroring the paper's "CADEL DB".
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Errors reported by the database.
var (
	ErrDuplicateID = errors.New("registry: rule id already registered")
	ErrNotFound    = errors.New("registry: rule not found")
)

// DB is a concurrency-safe, indexed rule database. Every DB owns a symbol
// table: Add interns the rule's dependency keys, binds the condition tree
// (core.Bind) and maintains an id-keyed dependency index alongside the
// string-keyed one, so the engine's interned hot path and the retained
// string-keyed oracle path index the same rules. A rule object therefore
// belongs to at most one DB at a time.
type DB struct {
	mu       sync.RWMutex
	tab      *core.Symtab
	rules    map[string]*core.Rule
	byName   map[string][]*core.Rule // device name → rules
	byOwner  map[string][]*core.Rule
	byDep    map[string][]*core.Rule // context dependency key → rules
	byDepID  map[uint32][]*core.Rule // interned dependency key → rules
	timeDep  []*core.Rule            // rules whose readiness can change with time alone
	gen      uint64                  // bumped on every Add/Remove
	seq      uint64
	inserted []string // insertion order of rule IDs
	// retired is an upper-bound estimate of symbol ids orphaned by Remove
	// since the last compaction epoch (a removed rule's dependency ids,
	// identity symbols and condition variables may still be shared by live
	// rules, so this overcounts). The engine compares it against the symtab
	// length as its compaction watermark.
	retired uint64
}

// New returns an empty database with a fresh symbol table.
func New() *DB {
	return &DB{
		tab:     core.NewSymtab(),
		rules:   make(map[string]*core.Rule),
		byName:  make(map[string][]*core.Rule),
		byOwner: make(map[string][]*core.Rule),
		byDep:   make(map[string][]*core.Rule),
		byDepID: make(map[uint32][]*core.Rule),
	}
}

// Symtab returns the database's symbol table. The engine evaluating this
// database's rules shares it, so bound conditions and interned context keys
// agree on ids; in a fleet each home's database (and thus symtab) is its
// own.
func (db *DB) Symtab() *core.Symtab { return db.tab }

// Add registers a rule and assigns its sequence number.
func (db *DB) Add(r *core.Rule) error {
	if r == nil || r.ID == "" {
		return errors.New("registry: rule must have an id")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rules[r.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, r.ID)
	}
	db.seq++
	r.Seq = db.seq
	r.Bound = core.Bind(r.Cond, db.tab)
	r.Holds = core.CollectHolds(r.Bound)
	r.IDSym = db.tab.Intern(r.ID) + 1
	r.OwnerSym = db.tab.Intern(r.Owner) + 1
	r.DeviceSym = db.tab.Intern(r.Device.Key()) + 1
	db.rules[r.ID] = r
	db.byName[r.Device.Name] = append(db.byName[r.Device.Name], r)
	db.byOwner[r.Owner] = append(db.byOwner[r.Owner], r)
	deps := core.CondDeps(r.Cond)
	r.DepIDs = deps.IDsIn(db.tab)
	for key := range deps.Keys {
		db.byDep[key] = append(db.byDep[key], r)
	}
	for _, id := range r.DepIDs {
		db.byDepID[id] = append(db.byDepID[id], r)
	}
	if deps.Time {
		db.timeDep = append(db.timeDep, r)
	}
	db.inserted = append(db.inserted, r.ID)
	db.gen++
	return nil
}

// Remove deletes a rule by id.
func (db *DB) Remove(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rules[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(db.rules, id)
	// Emptied index entries are deleted, not left as empty slices: a home
	// churning uniquely-named rules would otherwise grow every string-keyed
	// index map without bound (the map-key twin of the symtab id leak).
	setOrDelete(db.byName, r.Device.Name, removeRule(db.byName[r.Device.Name], id))
	setOrDelete(db.byOwner, r.Owner, removeRule(db.byOwner[r.Owner], id))
	deps := core.CondDeps(r.Cond)
	for key := range deps.Keys {
		setOrDelete(db.byDep, key, removeRule(db.byDep[key], id))
	}
	for _, depID := range r.DepIDs {
		setOrDelete(db.byDepID, depID, removeRule(db.byDepID[depID], id))
	}
	if deps.Time {
		db.timeDep = removeRule(db.timeDep, id)
	}
	for i, insertedID := range db.inserted {
		if insertedID == id {
			db.inserted = append(db.inserted[:i:i], db.inserted[i+1:]...)
			break
		}
	}
	// Rough id-orphan estimate: the dependency ids, the three identity
	// symbols, and one condition-variable id per dependency (variable names
	// and dependency keys intern separately: "temperature" vs
	// "num/temperature").
	db.retired += uint64(2*len(r.DepIDs) + 3)
	db.gen++
	return nil
}

// setOrDelete stores a (possibly shrunk) index list back, dropping the map
// entry entirely once the list is empty.
func setOrDelete[K comparable](m map[K][]*core.Rule, key K, list []*core.Rule) {
	if len(list) == 0 {
		delete(m, key)
		return
	}
	m[key] = list
}

func removeRule(list []*core.Rule, id string) []*core.Rule {
	for i, r := range list {
		if r.ID == id {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// Get returns the rule with the given id.
func (db *DB) Get(id string) (*core.Rule, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rules[id]
	return r, ok
}

// Len returns the number of registered rules.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.rules)
}

// All returns every rule in insertion order.
func (db *DB) All() []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*core.Rule, 0, len(db.inserted))
	for _, id := range db.inserted {
		if r, ok := db.rules[id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// SameDevice returns all rules whose target matches the reference — the
// indexed extraction step of the paper's conflict check (experiment E2a).
func (db *DB) SameDevice(ref core.DeviceRef) []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	candidates := db.byName[ref.Name]
	out := make([]*core.Rule, 0, len(candidates))
	for _, r := range candidates {
		if r.Device.Matches(ref) {
			out = append(out, r)
		}
	}
	return out
}

// SameDeviceScan is the unindexed baseline for the ablation benchmark: a
// linear scan over every rule.
func (db *DB) SameDeviceScan(ref core.DeviceRef) []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*core.Rule
	for _, id := range db.inserted {
		r := db.rules[id]
		if r != nil && r.Device.Matches(ref) {
			out = append(out, r)
		}
	}
	return out
}

// ByOwner returns the rules registered by a user, in insertion order.
func (db *DB) ByOwner(owner string) []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*core.Rule, len(db.byOwner[owner]))
	copy(out, db.byOwner[owner])
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ByDep returns the rules whose dependency set (core.CondDeps) contains the
// given context key. This is the inverted index behind the engine's
// incremental evaluation: a dirtied key maps straight to the rules it can
// affect.
func (db *DB) ByDep(key string) []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*core.Rule, len(db.byDep[key]))
	copy(out, db.byDep[key])
	return out
}

// ByDepID is ByDep keyed by interned dependency id — the zero-copy access
// path of the engine's interned evaluation. The returned slice is the
// index's own backing array: callers must not modify it and should treat it
// as a point-in-time snapshot (a concurrent Add or Remove replaces the
// index entry rather than mutating the returned elements in place).
func (db *DB) ByDepID(id uint32) []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.byDepID[id]
}

// TimeDependent returns the rules whose readiness can change with the
// passage of time alone (time windows, duration holds, arrival TTLs). The
// engine re-evaluates them whenever the clock advances, regardless of which
// context keys were dirtied.
func (db *DB) TimeDependent() []*core.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*core.Rule, len(db.timeDep))
	copy(out, db.timeDep)
	return out
}

// Generation returns a counter that increments on every Add and Remove. The
// engine compares it against the generation of its last pass to detect rule
// churn without diffing the whole database.
func (db *DB) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// Retired returns the upper-bound estimate of symbol ids orphaned by rule
// removals since the last compaction epoch. The engine's dead-id watermark
// reads it; CompactSymtab resets it.
func (db *DB) Retired() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retired
}

// CompactResult reports one symbol-compaction epoch.
type CompactResult struct {
	// Before and After are the symtab lengths around the epoch.
	Before, After int
	// Epoch is the symtab's epoch counter after compaction.
	Epoch uint64
}

// CompactSymtab runs one symbol-compaction epoch over the database and its
// symbol table, coordinating every id holder under the database lock so no
// Add or Remove can interleave with the renumbering:
//
//  1. every registered rule's ids are marked live (identity symbols,
//     dependency ids, bound condition tree), then mark — typically the
//     engine marking its context's populated slots — adds the rest;
//  2. the symtab compacts, renumbering live ids densely;
//  3. every rule is rewritten through the remap table and the id-keyed
//     dependency index is rebuilt;
//  4. remapped hands the remap table to the caller so it can rewrite its own
//     id-indexed state (context slices, engine reconciliation state) before
//     anything can evaluate again.
//
// ifGen guards against state the caller synced going stale: when the
// database generation no longer equals it, some rule was added or removed
// after the caller's last sync and the epoch is refused (ok=false) — the
// caller retries at its next sync point. Both callbacks run under the
// database lock and must not call back into the database.
func (db *DB) CompactSymtab(ifGen uint64, mark func(live *core.IDSet), remapped func(remap []uint32)) (CompactResult, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.gen != ifGen {
		return CompactResult{}, false
	}
	live := &core.IDSet{}
	for _, r := range db.rules {
		r.MarkLiveIDs(live)
	}
	if mark != nil {
		mark(live)
	}
	res := CompactResult{Before: db.tab.Len()}
	remap, epoch := db.tab.Compact(live)
	res.After, res.Epoch = db.tab.Len(), epoch
	byDepID := make(map[uint32][]*core.Rule, len(db.byDepID))
	for _, id := range db.inserted {
		r := db.rules[id]
		r.RemapIDs(remap)
		for _, dep := range r.DepIDs {
			byDepID[dep] = append(byDepID[dep], r)
		}
	}
	db.byDepID = byDepID
	if remapped != nil {
		remapped(remap)
	}
	db.retired = 0
	return res, true
}

// Record is the serialized form of one rule: its CADEL source plus metadata.
// The database file format and the fleet store's rule records both use it, so
// a persisted rule is always human-readable CADEL.
type Record struct {
	ID     string `json:"id"`
	Owner  string `json:"owner"`
	Source string `json:"source"`
}

type exportDoc struct {
	Rules []Record `json:"rules"`
}

// Records returns every rule's serialized form in insertion order. The fleet
// store snapshots a home's rule database through this.
func (db *DB) Records() []Record {
	rules := db.All()
	out := make([]Record, 0, len(rules))
	for _, r := range rules {
		out = append(out, Record{ID: r.ID, Owner: r.Owner, Source: r.Source})
	}
	return out
}

// Export serializes all rules (insertion order) as JSON-wrapped CADEL
// source. This is the import/export mechanism of Sect. 4.3(iv).
func (db *DB) Export() ([]byte, error) {
	return json.MarshalIndent(exportDoc{Rules: db.Records()}, "", "  ")
}

// CompileFunc recompiles one exported rule. The server wires this to the
// CADEL parser + compiler.
type CompileFunc func(source, id, owner string) (*core.Rule, error)

// Import adds every rule from an Export document, recompiling each source.
// It stops at the first error.
func (db *DB) Import(data []byte, compile CompileFunc) (int, error) {
	var doc exportDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("registry: decode import: %w", err)
	}
	count := 0
	for _, er := range doc.Rules {
		rule, err := compile(er.Source, er.ID, er.Owner)
		if err != nil {
			return count, fmt.Errorf("registry: recompile %q: %w", er.ID, err)
		}
		if err := db.Add(rule); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}
