package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

func simpleRule(id, owner, device string) *core.Rule {
	return &core.Rule{
		ID:     id,
		Owner:  owner,
		Device: core.DeviceRef{Name: device},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 28},
		Source: "if temperature is higher than 28 degrees, turn on the " + device,
	}
}

func TestAddGetRemove(t *testing.T) {
	db := New()
	r := simpleRule("r1", "tom", "tv")
	if err := db.Add(r); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if r.Seq != 1 {
		t.Errorf("seq = %d, want 1", r.Seq)
	}
	got, ok := db.Get("r1")
	if !ok || got.ID != "r1" {
		t.Fatal("Get failed")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if err := db.Add(simpleRule("r1", "x", "y")); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate Add = %v, want ErrDuplicateID", err)
	}
	if err := db.Remove("r1"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := db.Remove("r1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove = %v, want ErrNotFound", err)
	}
	if db.Len() != 0 {
		t.Errorf("Len after remove = %d", db.Len())
	}
}

func TestAddValidation(t *testing.T) {
	db := New()
	if err := db.Add(nil); err == nil {
		t.Error("nil rule should fail")
	}
	if err := db.Add(&core.Rule{}); err == nil {
		t.Error("empty id should fail")
	}
}

func TestSameDevice(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		device := "tv"
		if i%2 == 0 {
			device = "stereo"
		}
		if err := db.Add(simpleRule(fmt.Sprintf("r%d", i), "tom", device)); err != nil {
			t.Fatal(err)
		}
	}
	tvRules := db.SameDevice(core.DeviceRef{Name: "tv"})
	if len(tvRules) != 5 {
		t.Errorf("tv rules = %d, want 5", len(tvRules))
	}
	for _, r := range tvRules {
		if r.Device.Name != "tv" {
			t.Errorf("wrong device %q in result", r.Device.Name)
		}
	}
}

func TestSameDeviceLocationFilter(t *testing.T) {
	db := New()
	hall := simpleRule("r1", "tom", "light")
	hall.Device.Location = "hall"
	kitchen := simpleRule("r2", "tom", "light")
	kitchen.Device.Location = "kitchen"
	anywhere := simpleRule("r3", "tom", "light")
	for _, r := range []*core.Rule{hall, kitchen, anywhere} {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	got := db.SameDevice(core.DeviceRef{Name: "light", Location: "hall"})
	if len(got) != 2 { // hall + unlocated
		t.Errorf("hall light rules = %d, want 2", len(got))
	}
	got = db.SameDevice(core.DeviceRef{Name: "light"})
	if len(got) != 3 {
		t.Errorf("any light rules = %d, want 3", len(got))
	}
}

func TestSameDeviceScanAgrees(t *testing.T) {
	db := New()
	for i := 0; i < 50; i++ {
		device := fmt.Sprintf("dev%d", i%7)
		if err := db.Add(simpleRule(fmt.Sprintf("r%d", i), "tom", device)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 7; i++ {
		ref := core.DeviceRef{Name: fmt.Sprintf("dev%d", i)}
		indexed := db.SameDevice(ref)
		scanned := db.SameDeviceScan(ref)
		if len(indexed) != len(scanned) {
			t.Errorf("dev%d: indexed %d vs scanned %d", i, len(indexed), len(scanned))
		}
	}
}

func TestByOwnerAndByDep(t *testing.T) {
	db := New()
	r1 := simpleRule("r1", "tom", "tv")
	r2 := simpleRule("r2", "alan", "tv")
	r3 := &core.Rule{
		ID: "r3", Owner: "tom", Device: core.DeviceRef{Name: "light"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.BoolIs{Var: "hall/dark", Want: true},
	}
	for _, r := range []*core.Rule{r1, r2, r3} {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.ByOwner("tom"); len(got) != 2 {
		t.Errorf("tom rules = %d, want 2", len(got))
	}
	if got := db.ByDep(core.NumberDepKey("temperature")); len(got) != 2 {
		t.Errorf("temperature rules = %d, want 2", len(got))
	}
	if got := db.ByDep(core.BoolDepKey("hall/dark")); len(got) != 1 || got[0].ID != "r3" {
		t.Errorf("hall/dark rules = %v", got)
	}
	if err := db.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if got := db.ByDep(core.NumberDepKey("temperature")); len(got) != 1 {
		t.Errorf("temperature rules after removal = %d, want 1", len(got))
	}
}

func TestAllInsertionOrder(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		if err := db.Add(simpleRule(fmt.Sprintf("r%d", i), "tom", "tv")); err != nil {
			t.Fatal(err)
		}
	}
	all := db.All()
	for i, r := range all {
		if r.ID != fmt.Sprintf("r%d", i) {
			t.Errorf("All()[%d] = %s, want r%d", i, r.ID, i)
		}
	}
}

func TestExportImport(t *testing.T) {
	lex := vocab.Default()
	compiler := core.NewCompiler(lex)
	compile := func(source, id, owner string) (*core.Rule, error) {
		cmd, err := lang.Parse(source, lex)
		if err != nil {
			return nil, err
		}
		def, ok := cmd.(*lang.RuleDef)
		if !ok {
			return nil, fmt.Errorf("not a rule: %q", source)
		}
		return compiler.CompileRule(def, id, owner)
	}

	db := New()
	srcs := []string{
		"If temperature is higher than 28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
	}
	for i, src := range srcs {
		rule, err := compile(src, fmt.Sprintf("r%d", i), "tom")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(rule); err != nil {
			t.Fatal(err)
		}
	}

	data, err := db.Export()
	if err != nil {
		t.Fatalf("Export: %v", err)
	}

	restored := New()
	n, err := restored.Import(data, compile)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if n != 2 || restored.Len() != 2 {
		t.Errorf("imported %d rules, len %d; want 2", n, restored.Len())
	}
	r, ok := restored.Get("r0")
	if !ok {
		t.Fatal("r0 missing after import")
	}
	if r.Device.Name != "air conditioner" || r.Owner != "tom" {
		t.Errorf("restored rule = %+v", r)
	}
	// Conditions survive recompilation.
	ctx := core.NewContext(baseTime())
	ctx.Numbers["temperature"] = 30
	if !r.Ready(ctx) {
		t.Error("restored rule should fire at 30C")
	}
}

func TestImportBadData(t *testing.T) {
	db := New()
	if _, err := db.Import([]byte("not json"), nil); err == nil {
		t.Error("garbage import should fail")
	}
	bad := []byte(`{"rules":[{"id":"x","owner":"t","source":"gibberish"}]}`)
	failCompile := func(source, id, owner string) (*core.Rule, error) {
		return nil, errors.New("nope")
	}
	if _, err := db.Import(bad, failCompile); err == nil {
		t.Error("compile failure should propagate")
	}
}

// TestQuickRandomOps runs random add/remove sequences and checks that the
// indexes stay consistent with the ground-truth map.
func TestQuickRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		db := New()
		alive := make(map[string]string) // id → device
		for op := 0; op < 60; op++ {
			if r.Intn(3) > 0 || len(alive) == 0 {
				id := fmt.Sprintf("r%d", op)
				device := fmt.Sprintf("dev%d", r.Intn(4))
				if err := db.Add(simpleRule(id, "u", device)); err != nil {
					return false
				}
				alive[id] = device
			} else {
				for id := range alive {
					if err := db.Remove(id); err != nil {
						return false
					}
					delete(alive, id)
					break
				}
			}
		}
		if db.Len() != len(alive) {
			return false
		}
		counts := make(map[string]int)
		for _, dev := range alive {
			counts[dev]++
		}
		for dev, want := range counts {
			if got := len(db.SameDevice(core.DeviceRef{Name: dev})); got != want {
				return false
			}
			if got := len(db.SameDeviceScan(core.DeviceRef{Name: dev})); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestByDepIDIndex pins the interned dependency index: Add interns and binds
// (Bound/Holds/DepIDs populated), ByDepID mirrors ByDep, Remove cleans the
// id-keyed postings, and re-adding a rule rebinds it against this database's
// symbol table.
func TestByDepIDIndex(t *testing.T) {
	db := New()
	tab := db.Symtab()
	if tab == nil {
		t.Fatal("Symtab is nil")
	}
	r := &core.Rule{
		ID: "r1", Owner: "tom", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond: &core.And{Terms: []core.Condition{
			&core.Compare{Var: "temperature", Op: simplex.GT, Value: 25},
			&core.BoolIs{Var: "tv/power", Want: true},
		}},
	}
	if err := db.Add(r); err != nil {
		t.Fatal(err)
	}
	if r.Bound == nil {
		t.Fatal("Add did not bind the condition tree")
	}
	if len(r.DepIDs) != 2 {
		t.Fatalf("DepIDs = %v, want 2 entries", r.DepIDs)
	}
	for _, key := range []string{core.NumberDepKey("temperature"), core.BoolDepKey("tv/power")} {
		id, ok := tab.Lookup(key)
		if !ok {
			t.Fatalf("dep key %q not interned", key)
		}
		byStr, byID := db.ByDep(key), db.ByDepID(id)
		if len(byStr) != 1 || len(byID) != 1 || byStr[0] != r || byID[0] != r {
			t.Fatalf("index mismatch for %q: ByDep=%v ByDepID=%v", key, byStr, byID)
		}
	}
	if err := db.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	for _, id := range r.DepIDs {
		if got := db.ByDepID(id); len(got) != 0 {
			t.Fatalf("ByDepID(%d) = %v after Remove, want empty", id, got)
		}
	}
	// Re-adding rebinds: DepIDs stay resolvable in this table.
	if err := db.Add(r); err != nil {
		t.Fatal(err)
	}
	if r.Bound == nil || len(r.DepIDs) != 2 {
		t.Fatalf("re-add did not rebind: Bound=%v DepIDs=%v", r.Bound, r.DepIDs)
	}
	if holds := core.CollectHolds(r.Bound); len(holds) != len(r.Holds) {
		t.Fatalf("Holds = %d, want %d", len(r.Holds), len(holds))
	}
}
