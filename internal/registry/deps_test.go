package registry

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simplex"
)

func ruleIDs(rules []*core.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.ID
	}
	return out
}

func TestByDepIndexMaintenance(t *testing.T) {
	db := New()
	temp := &core.Rule{
		ID: "temp", Owner: "tom", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 28},
	}
	pres := &core.Rule{
		ID: "pres", Owner: "tom", Device: core.DeviceRef{Name: "lamp"},
		Action: core.Action{Verb: "turn-on"},
		Cond: &core.And{Terms: []core.Condition{
			&core.Presence{Person: "tom", Place: "hall"},
			&core.TimeWindow{FromMin: 0, ToMin: 6 * 60, Weekday: -1},
		}},
	}
	for _, r := range []*core.Rule{temp, pres} {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	if got := ruleIDs(db.ByDep(core.NumberDepKey("temperature"))); len(got) != 1 || got[0] != "temp" {
		t.Errorf("ByDep(num/temperature) = %v", got)
	}
	if got := ruleIDs(db.ByDep(core.LocationDepKey("tom"))); len(got) != 1 || got[0] != "pres" {
		t.Errorf("ByDep(loc/tom) = %v", got)
	}
	if got := db.ByDep("num/nothing-reads-this"); len(got) != 0 {
		t.Errorf("ByDep(unused key) = %v", ruleIDs(got))
	}
	if got := ruleIDs(db.TimeDependent()); len(got) != 1 || got[0] != "pres" {
		t.Errorf("TimeDependent() = %v", got)
	}

	if err := db.Remove("pres"); err != nil {
		t.Fatal(err)
	}
	if got := db.ByDep(core.LocationDepKey("tom")); len(got) != 0 {
		t.Errorf("ByDep(loc/tom) after remove = %v", ruleIDs(got))
	}
	if got := db.TimeDependent(); len(got) != 0 {
		t.Errorf("TimeDependent() after remove = %v", ruleIDs(got))
	}
	if got := ruleIDs(db.ByDep(core.NumberDepKey("temperature"))); len(got) != 1 || got[0] != "temp" {
		t.Errorf("ByDep(num/temperature) after unrelated remove = %v", got)
	}
}

func TestGenerationBumpsOnChurn(t *testing.T) {
	db := New()
	g0 := db.Generation()
	if err := db.Add(simpleRule("a", "u", "tv")); err != nil {
		t.Fatal(err)
	}
	g1 := db.Generation()
	if g1 == g0 {
		t.Error("Add must bump the generation")
	}
	if err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if db.Generation() == g1 {
		t.Error("Remove must bump the generation")
	}
	// Failed operations leave the generation alone.
	before := db.Generation()
	if err := db.Remove("a"); err == nil {
		t.Fatal("expected remove of missing rule to fail")
	}
	if db.Generation() != before {
		t.Error("failed Remove must not bump the generation")
	}
}
