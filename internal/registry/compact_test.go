package registry

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/simplex"
)

func uniqueVarRule(i int) *core.Rule {
	return &core.Rule{
		ID:     fmt.Sprintf("u%d", i),
		Owner:  "tom",
		Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: fmt.Sprintf("room%d/temperature", i), Op: simplex.GT, Value: 20},
	}
}

// TestCompactSymtab pins the database side of a compaction epoch: the
// generation guard, the retired-estimate lifecycle, the dense renumbering of
// every surviving rule's ids, and the ByDepID rebuild.
func TestCompactSymtab(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		if err := db.Add(uniqueVarRule(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Retired() != 0 {
		t.Fatalf("retired = %d before any removal", db.Retired())
	}
	for i := 0; i < 8; i++ {
		if err := db.Remove(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Retired() == 0 {
		t.Fatal("retired estimate did not grow with removals")
	}

	// A stale generation refuses the epoch.
	if _, ok := db.CompactSymtab(db.Generation()-1, nil, nil); ok {
		t.Fatal("CompactSymtab accepted a stale generation")
	}
	if db.Symtab().Epoch() != 0 {
		t.Fatal("refused epoch still compacted")
	}

	before := db.Symtab().Len()
	var remapLen int
	res, ok := db.CompactSymtab(db.Generation(), nil, func(remap []uint32) { remapLen = len(remap) })
	if !ok {
		t.Fatal("CompactSymtab refused a current generation")
	}
	if res.Before != before || res.After >= before || res.Epoch != 1 {
		t.Fatalf("result = %+v (before %d)", res, before)
	}
	if remapLen != before {
		t.Fatalf("remap covered %d ids, want %d", remapLen, before)
	}
	if db.Retired() != 0 {
		t.Fatalf("retired = %d after compaction, want 0", db.Retired())
	}

	// Surviving rules carry dense renumbered ids and the id index finds them.
	for i := 8; i < 10; i++ {
		r, ok := db.Get(fmt.Sprintf("u%d", i))
		if !ok {
			t.Fatal("surviving rule lost")
		}
		for _, sym := range []uint32{r.IDSym, r.OwnerSym, r.DeviceSym} {
			if sym == 0 || int(sym-1) >= res.After {
				t.Fatalf("rule %s identity symbol %d outside compacted table (%d)", r.ID, sym, res.After)
			}
		}
		for _, dep := range r.DepIDs {
			if int(dep) >= res.After {
				t.Fatalf("rule %s dep id %d outside compacted table (%d)", r.ID, dep, res.After)
			}
			rules := db.ByDepID(dep)
			found := false
			for _, rr := range rules {
				found = found || rr == r
			}
			if !found {
				t.Fatalf("ByDepID(%d) lost rule %s after rebuild", dep, r.ID)
			}
		}
	}
}
