package registry

import "time"

func baseTime() time.Time {
	return time.Date(2005, 3, 7, 18, 30, 0, 0, time.UTC)
}
