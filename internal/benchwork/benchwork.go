// Package benchwork holds the benchmark workload builders shared by the
// root package's `go test -bench` benchmarks and the cmd/corebench and
// cmd/fleetbench JSON emitters, so the BENCH_*.json perf trajectory measures
// exactly the same rule sets and event streams the in-repo benchmarks do.
//
// Three engine workloads reproduce the paper's example-rule shapes:
//
//   - RoomTempDB — Example Rule 1: rule 0 reads the unqualified
//     "temperature" (the string-keyed path resolves it with a suffix scan
//     over every populated key), every other rule its own room's qualified
//     temperature; a single-key sensor event touches exactly one rule.
//   - PresenceDB — Example Rules 2/3: quantified presence conditions
//     (nobody / everyone / someone-at / per-person presence / arrival) over
//     a populated home; presence churn re-evaluates the quantified rules
//     every pass.
//   - ArbitrationDB — the Fig. 1 hand-off shape: several owners' rules
//     contending for one device under a contextual priority order whose
//     context is dirtied by presence churn, so every pass re-arbitrates.
//
// The fleet workload (BuildHub) seeds one user and one temperature rule per
// home, with event values that flip the rule's readiness on alternate
// sweeps.
package benchwork

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

// RunMeta is the run environment block every BENCH_*.json report embeds, so
// a perf trajectory across commits can tell a regression from a machine or
// toolchain change.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewRunMeta captures the current process's run environment.
func NewRunMeta() RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Epoch is the fixed simulation instant every benchmark clock reports.
var Epoch = time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)

// EngineWorkload is one engine benchmark wired up end to end: a seeded,
// steady-state engine plus the event stream and the device identity to
// replay it under. Both the root package's benchmarks and cmd/corebench
// consume workloads through this, so the timed loops are byte-for-byte the
// same measurement.
type EngineWorkload struct {
	Engine *engine.Engine
	Events []map[string]string
	// DeviceType/DeviceName/DeviceLocation identify the sensor the events
	// arrive from.
	DeviceType, DeviceName, DeviceLocation string
}

// Replay feeds the i-th event of the stream — the timed-loop body.
func (w *EngineWorkload) Replay(i int) {
	w.Engine.HandleDeviceEvent(w.DeviceType, w.DeviceName, w.DeviceLocation, w.Events[i%len(w.Events)])
}

// TraceCap is the firing-trace ring capacity benchmark engines run with.
const TraceCap = 16

// NewEngineWorkload builds the named workload at n rules, seeded to steady
// state. Engines are fully instrumented by default — metrics into a private
// obs registry plus a TraceCap-slot firing-trace ring — so every benchmark
// measures the production configuration; pass engine.WithMetrics(nil) /
// engine.WithTrace(0) to strip either back off (the overhead gate's
// baseline). Names:
//
//	engine_evaluate         single-key temperature event, no readiness flip
//	engine_evaluate_firing  single-key event crossing rule 0's threshold
//	presence_eval           quantified-presence churn, no readiness flip
//	arbitrate               arbitration churn, winner unchanged
//	arbitrate_handoff       arbitration churn flipping the winner every pass
func NewEngineWorkload(name string, n int, opts ...engine.Option) (*EngineWorkload, error) {
	opts = append([]engine.Option{
		engine.WithMetrics(&obs.New(1).Shard(0).Engine),
		engine.WithTrace(TraceCap),
	}, opts...)
	w := &EngineWorkload{DeviceType: device.TypePresenceSensor, DeviceName: "presence sensor", DeviceLocation: "home"}
	var (
		db  *registry.DB
		err error
	)
	tbl := conflict.NewTable()
	switch name {
	case "engine_evaluate", "engine_evaluate_firing":
		db, err = RoomTempDB(n)
		w.Events = TempEvents()
		if name == "engine_evaluate_firing" {
			w.Events = FiringTempEvents()
		}
		w.DeviceType, w.DeviceName, w.DeviceLocation = device.TypeThermometer, "thermometer", "room0"
	case "presence_eval":
		db, err = PresenceDB(n)
		w.Events = PresenceEvents()
	case "arbitrate":
		db, err = ArbitrationDB(n)
		tbl = ArbitrationTable()
		w.Events = ArbitrationEvents()
	case "arbitrate_handoff":
		db, err = ArbitrationDB(n)
		tbl = HandoffTable()
		w.Events = HandoffEvents()
	default:
		return nil, fmt.Errorf("benchwork: unknown workload %q", name)
	}
	if err != nil {
		return nil, err
	}
	w.Engine = engine.New(db, tbl, func() time.Time { return Epoch }, nil, opts...)
	switch name {
	case "engine_evaluate", "engine_evaluate_firing":
		SeedRoomTemp(w.Engine, n, w.Events)
	case "presence_eval":
		SeedPresence(w.Engine, w.Events)
	default:
		SeedArbitration(w.Engine, w.Events)
	}
	// Cycle the trace ring so every slot's slices reach steady-state capacity
	// before the timed (and allocation-gated) loop starts.
	for i := 0; i < 2*TraceCap+4; i++ {
		w.Replay(i)
	}
	return w, nil
}

// ---- Example Rule 1: single-key temperature workload ----

// RoomTempDB builds n rules: rule 0 reads the unqualified "temperature",
// rule i > 0 its own room's qualified key, all additionally gated on Tom
// being in the living room.
func RoomTempDB(n int) (*registry.DB, error) {
	db := registry.New()
	for i := 0; i < n; i++ {
		v := "temperature"
		if i > 0 {
			v = fmt.Sprintf("room%d/temperature", i)
		}
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: v, Op: simplex.GT, Value: float64(20 + i%15)},
				&core.Presence{Person: "tom", Place: "living room"},
			}},
		}
		if err := db.Add(rule); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// SeedRoomTemp brings an engine over a RoomTempDB to steady state: Tom in
// the living room, every room's sensor key populated once (coalesced into a
// single pass), then the event stream replayed once to warm the ingest
// caches and the readiness diff.
func SeedRoomTemp(e *engine.Engine, n int, events []map[string]string) {
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})
	low := map[string]string{"temperature": "10"}
	for i := 1; i < n; i++ {
		e.Ingest(device.TypeThermometer, "thermometer", fmt.Sprintf("room%d", i), low)
	}
	e.Tick()
	for _, ev := range events {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", ev)
	}
}

// TempEvents returns the below-threshold value stream: room0's temperature
// cycling under every rule's threshold, so no readiness flips and the
// benchmark isolates pure evaluation cost.
func TempEvents() []map[string]string {
	events := make([]map[string]string, 10)
	for i := range events {
		events[i] = map[string]string{"temperature": fmt.Sprintf("%d", 10+i)}
	}
	return events
}

// FiringTempEvents returns the threshold-crossing stream: every event flips
// rule 0's readiness, so each pass re-arbitrates and fires.
func FiringTempEvents() []map[string]string {
	return []map[string]string{
		{"temperature": "40"},
		{"temperature": "10"},
	}
}

// ---- Example Rules 2/3: quantified presence workload ----

// PresenceUserCount is how many users PresenceDB registers: large enough
// that the string-keyed path's per-eval map iteration over every location is
// visible next to the interned counters.
const PresenceUserCount = 32

// PresenceUsers returns the registered users: tom, alan, emily plus
// background residents.
func PresenceUsers() []string {
	users := []string{"tom", "alan", "emily"}
	for i := len(users); i < PresenceUserCount; i++ {
		users = append(users, fmt.Sprintf("u%d", i))
	}
	return users
}

// PresenceDB builds n rules, the first five quantified over presence —
// nobody-at-home (Example Rule 2's shape), everyone-at, someone-at,
// per-person presence, and an arrival (Example Rule 3's shape) — the rest
// the qualified-temperature fillers that scale the database.
func PresenceDB(n int) (*registry.DB, error) {
	db := registry.New()
	quantified := []*core.Rule{
		{ID: "off", Owner: "tom", Device: core.DeviceRef{Name: "fluorescent light"},
			Action: core.Action{Verb: "turn-off"},
			Cond:   &core.Nobody{Place: "home"}},
		{ID: "heat", Owner: "tom", Device: core.DeviceRef{Name: "heater"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Everyone{Place: "living room"}},
		{ID: "kettle", Owner: "alan", Device: core.DeviceRef{Name: "kettle"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Presence{Person: core.Someone, Place: "kitchen"}},
		{ID: "lamp", Owner: "tom", Device: core.DeviceRef{Name: "floor lamp"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Presence{Person: "tom", Place: "living room"}},
		{ID: "welcome", Owner: "alan", Device: core.DeviceRef{Name: "stereo"},
			Action: core.Action{Verb: "play"},
			Cond:   &core.Arrival{Person: "alan", Event: "home-from-work"}},
	}
	for i, r := range quantified {
		if i >= n {
			break
		}
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	for i := len(quantified); i < n; i++ {
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: fmt.Sprintf("room%d/temperature", i), Op: simplex.GT, Value: float64(20 + i%15)},
		}
		if err := db.Add(rule); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// SeedPresence brings an engine over a PresenceDB to steady state: the users
// registered, Alan settled in the living room (so nobody-at-home stays
// false), Tom in the hall, then the event stream replayed once to warm the
// ingest caches. The PresenceEvents churn keeps every quantified condition's
// truth stable, so the timed loop measures pure quantified re-evaluation.
func SeedPresence(e *engine.Engine, events []map[string]string) {
	e.SetUsers(PresenceUsers())
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-alan": "living room"})
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "hall"})
	for _, ev := range events {
		e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home", ev)
	}
}

// PresenceEvents returns the presence-churn stream: Tom moving between the
// hall and the study. Every event dirties loc/tom and the location wildcard,
// re-evaluating all quantified rules, without flipping any readiness.
func PresenceEvents() []map[string]string {
	return []map[string]string{
		{"presence-tom": "hall"},
		{"presence-tom": "study"},
	}
}

// ---- arbitration workload: contending owners on one device ----

// ArbContenders is how many owners contend for the stereo in ArbitrationDB.
const ArbContenders = 8

// ArbitrationDB builds n rules: ArbContenders unconditional rules from
// distinct owners all targeting the stereo, plus qualified-temperature
// fillers that scale the database.
func ArbitrationDB(n int) (*registry.DB, error) {
	db := registry.New()
	for i := 0; i < ArbContenders && i < n; i++ {
		rule := &core.Rule{
			ID:     fmt.Sprintf("c%d", i),
			Owner:  fmt.Sprintf("u%d", i),
			Device: core.DeviceRef{Name: "stereo"},
			Action: core.Action{Verb: "play", Settings: map[string]core.Value{"volume": {IsNumber: true, Number: float64(i)}}},
			Cond:   core.Always{},
		}
		if err := db.Add(rule); err != nil {
			return nil, err
		}
	}
	for i := ArbContenders; i < n; i++ {
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: fmt.Sprintf("room%d/temperature", i), Op: simplex.GT, Value: float64(20 + i%15)},
		}
		if err := db.Add(rule); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ArbitrationTable returns the stereo's priority orders: a default order and
// a contextual one that applies while nobody is in the bedroom. Both rank u0
// highest, so the steady-state churn re-arbitrates without a hand-off.
func ArbitrationTable() *conflict.Table {
	tbl := conflict.NewTable()
	users := make([]string, ArbContenders)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}
	tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "stereo"}, Users: users})
	ctxUsers := append([]string{"u0"}, users[1:]...)
	for i, j := 1, len(ctxUsers)-1; i < j; i, j = i+1, j-1 {
		ctxUsers[i], ctxUsers[j] = ctxUsers[j], ctxUsers[i]
	}
	tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "stereo"},
		Context:       &core.Nobody{Place: "bedroom"},
		ContextSource: "nobody at bedroom",
		Users:         ctxUsers,
	})
	return tbl
}

// HandoffTable is ArbitrationTable with the contextual order led by u1
// instead of u0, so flipping the bedroom's occupancy (HandoffEvents) flips
// the applicable order and hands the stereo between u1 and u0 every pass —
// the paper's Fig. 1 stereo hand-off shape.
func HandoffTable() *conflict.Table {
	tbl := ArbitrationTable()
	users := make([]string, ArbContenders)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}
	users[0], users[1] = users[1], users[0]
	tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "stereo"},
		Context:       &core.Nobody{Place: "bedroom"},
		ContextSource: "nobody at bedroom",
		Users:         users,
	})
	return tbl
}

// SeedArbitration brings an engine over an ArbitrationDB to steady state:
// Emily present (her churn drives the contextual order's dependency), one
// pass to register and fire the initial winner, then the event stream
// replayed once to warm the caches.
func SeedArbitration(e *engine.Engine, events []map[string]string) {
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-emily": "hall"})
	for _, ev := range events {
		e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home", ev)
	}
}

// ArbitrationEvents returns the arbitration-churn stream: Emily moving
// between hall and study. Every event dirties the location wildcard the
// contextual order depends on, so every pass re-arbitrates the stereo's
// contenders — and the winner never changes, so nothing fires.
func ArbitrationEvents() []map[string]string {
	return []map[string]string{
		{"presence-emily": "hall"},
		{"presence-emily": "study"},
	}
}

// HandoffEvents returns the hand-off stream: Alan toggling between the
// bedroom and away flips the contextual order's applicability, so every
// pass's arbitration picks a different winner and fires.
func HandoffEvents() []map[string]string {
	return []map[string]string{
		{"presence-alan": "bedroom"},
		{"presence-alan": ""},
	}
}

// ---- rule-churn workload: symtab growth under unique-name lifecycle ----

// ChurnWorkload drives one rule-lifecycle step per op over a fixed live
// window: register a rule with names unique to its sequence number, remove
// the oldest, evaluate. This is the shape that grows a home's symbol table
// (and every id-indexed slice hanging off it) without bound unless epoch
// compaction reclaims the retired ids; BenchmarkRuleChurn measures it with
// the default watermark against a compaction-disabled baseline.
type ChurnWorkload struct {
	DB     *registry.DB
	Engine *engine.Engine
	live   int
	seq    int
}

// churnRule builds the seq-th unique-named rule: its variable, id and
// device all carry the sequence number, so nothing is shared with any other
// churn rule.
func churnRule(seq int) *core.Rule {
	return &core.Rule{
		ID:     fmt.Sprintf("churn-%d", seq),
		Owner:  "u",
		Device: core.DeviceRef{Name: fmt.Sprintf("churn-dev-%d", seq)},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: fmt.Sprintf("churn-room-%d/temperature", seq), Op: simplex.GT, Value: 20},
	}
}

// NewChurnWorkload builds a churn workload with live rules resident and the
// engine at a pass boundary. Pass engine.WithCompactFloor(0) to measure the
// no-compaction baseline.
func NewChurnWorkload(live int, opts ...engine.Option) (*ChurnWorkload, error) {
	w := &ChurnWorkload{DB: registry.New(), live: live}
	w.Engine = engine.New(w.DB, conflict.NewTable(), func() time.Time { return Epoch }, nil, opts...)
	for ; w.seq < live; w.seq++ {
		if err := w.DB.Add(churnRule(w.seq)); err != nil {
			return nil, err
		}
	}
	w.Engine.Tick()
	return w, nil
}

// Step runs one churn op: add the next unique-named rule, remove the oldest,
// and run the evaluation pass whose boundary hosts the compaction watermark.
func (w *ChurnWorkload) Step() error {
	if err := w.DB.Add(churnRule(w.seq)); err != nil {
		return err
	}
	if err := w.DB.Remove(fmt.Sprintf("churn-%d", w.seq-w.live)); err != nil {
		return err
	}
	w.seq++
	w.Engine.Tick()
	return nil
}

// Symbols returns the current symtab length — the quantity compaction
// bounds.
func (w *ChurnWorkload) Symbols() int { return w.Engine.SymbolStats().Symbols }

// ---- fleet workload ----

// FleetRule is the one rule every benchmark home registers.
const FleetRule = "If temperature is higher than 28 degrees, turn on the air conditioner."

// BuildHub seeds a hub with the standard fleet workload: homes sharing one
// lexicon (none defines words; a per-home vocab.Default() would dominate
// setup at 100k homes), each holding one user and one temperature rule.
func BuildHub(homes, shards int) (*fleet.Hub, []string, error) {
	lex := vocab.Default()
	hub, err := fleet.NewHub(
		fleet.WithShards(shards),
		fleet.WithClock(func() time.Time { return Epoch }),
		fleet.WithLexiconFactory(func(string) *vocab.Lexicon { return lex }),
		fleet.WithLogLimit(64),
	)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]string, homes)
	for i := range ids {
		ids[i] = fmt.Sprintf("home-%06d", i)
		if err := hub.RegisterUser(ids[i], "u"); err != nil {
			_ = hub.Close()
			return nil, nil, err
		}
		if _, err := hub.Submit(ids[i], FleetRule, "u"); err != nil {
			_ = hub.Close()
			return nil, nil, err
		}
	}
	return hub, ids, nil
}

// FleetEventValue returns the i-th event's temperature value: alternating
// above/below the rule threshold on successive sweeps over the homes, so
// every event flips its home's rule readiness and each coalesced pass
// re-arbitrates and fires.
func FleetEventValue(i uint64, homes int) string {
	if (i/uint64(homes))%2 == 1 {
		return "20"
	}
	return "31"
}
