package obs

import (
	"math"
	"strings"
	"testing"
)

// Every sample must land in a bucket whose bound brackets it, and bucket
// bounds must be strictly increasing so cumulative rendering is valid.
func TestBucketIndexBrackets(t *testing.T) {
	prev := -1.0
	for i := 0; i < histBuckets; i++ {
		b := bucketBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %g not above previous %g", i, b, prev)
		}
		prev = b
	}
	samples := []uint64{0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, 1<<63 + 12345, math.MaxUint64}
	for _, v := range samples {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if float64(v) > bucketBound(i)+1 { // +1: bound is float-rounded at high octaves
			t.Errorf("sample %d above its bucket bound %g (bucket %d)", v, bucketBound(i), i)
		}
		if i > 0 && float64(v) < bucketBound(i-1) {
			t.Errorf("sample %d below previous bucket bound %g (bucket %d)", v, bucketBound(i-1), i)
		}
	}
}

func TestHistogramCountSumQuantile(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	var s histSnap
	h.addTo(&s)
	p50 := s.quantile(0.5)
	if p50 < 400 || p50 > 700 {
		t.Errorf("p50 = %g, want ~500 within bucket resolution", p50)
	}
	p99 := s.quantile(0.99)
	if p99 < 900 || p99 > 1100 {
		t.Errorf("p99 = %g, want ~990 within bucket resolution", p99)
	}
}

// The hot-path write ops must not allocate: the engine's steady-state
// zero-alloc gates run with metrics enabled.
func TestWritesAreAllocationFree(t *testing.T) {
	m := New(2)
	sh := m.Shard(0)
	if n := testing.AllocsPerRun(200, func() {
		sh.Engine.Passes.Inc()
		sh.Engine.RulesChecked.Add(3)
		sh.Engine.PassNs.Observe(420)
		sh.Ingest.DecodeNs.Observe(97)
		m.Homes.Add(1)
	}); n != 0 {
		t.Fatalf("allocs/op = %g, want 0", n)
	}
}

func TestIngestShardStableAndInRange(t *testing.T) {
	m := New(4)
	a := m.IngestShard("home-0001")
	if a != m.IngestShard("home-0001") {
		t.Fatal("stripe not stable for a home")
	}
	hit := false
	for i := 0; i < 4; i++ {
		if a == &m.Shard(i).Ingest {
			hit = true
		}
	}
	if !hit {
		t.Fatal("stripe is not one of the shard blocks")
	}
}

func TestWritePrometheus(t *testing.T) {
	m := New(2)
	m.Homes.Set(3)
	m.StoreAppends.Add(7)
	m.Shard(0).Engine.Passes.Add(10)
	m.Shard(1).Engine.Passes.Add(5)
	m.Shard(0).Engine.PassNs.Observe(100)
	m.Shard(1).Engine.PassNs.Observe(5000)
	m.Shard(1).Ingest.EventsDecoded.Add(2)

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"cadel_homes 3",
		"cadel_store_appends_total 7",
		"cadel_engine_passes_total 15", // aggregated across shards
		"cadel_ingest_events_decoded_total 2",
		"cadel_engine_pass_duration_ns_count 2",
		"cadel_engine_pass_duration_ns_sum 5100",
		`cadel_engine_pass_duration_ns_bucket{le="+Inf"} 2`,
		"# TYPE cadel_engine_pass_duration_ns histogram",
		"# TYPE cadel_engine_passes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets: the 100ns bucket line must show 1, not 2.
	if !strings.Contains(out, `cadel_engine_pass_duration_ns_bucket{le="111"} 1`) {
		t.Errorf("expected cumulative bucket le=111 count 1\n%s", out)
	}
}

func TestTotals(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		m.Shard(i).Engine.RulesFired.Add(uint64(i + 1))
		m.Shard(i).Ingest.DecodeNs.Observe(50)
	}
	tot := m.Totals()
	if tot.RulesFired != 6 {
		t.Errorf("RulesFired = %d, want 6", tot.RulesFired)
	}
	if tot.DecodeNs.Count != 3 || tot.DecodeNs.Sum != 150 {
		t.Errorf("DecodeNs = %+v", tot.DecodeNs)
	}
}
