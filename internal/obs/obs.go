// Package obs is the fleet's allocation-free observability layer: atomic
// counters and gauges plus fixed-bucket log-linear histograms, grouped into
// per-hub-shard blocks so the hot writers (one mailbox goroutine per shard,
// plus the transport goroutines hashed onto the owning shard's stripe) never
// contend on a shared cache line, and rendered as hand-rolled Prometheus
// text exposition — no dependencies beyond the standard library.
//
// The zero-alloc contract: Observe/Inc/Add never allocate and never lock.
// A Histogram is a fixed [256]uint64 bucket array (values 0–15 linear, then
// four sub-buckets per power-of-two octave), so one observation is exactly
// two atomic adds; the bucket count is derived at scrape time instead of
// being a third counter. Scrape-side calls (WritePrometheus, Totals) may
// allocate freely — they run per scrape, not per event.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: values below histLinear each get their own
// bucket; larger values are split into histSub sub-buckets per power-of-two
// octave, giving a worst-case relative bucket width of 1/histSub (~25%
// resolution) across the whole uint64 range in a fixed 256-slot array.
const (
	histLinear  = 16
	histSub     = 4
	histBuckets = histLinear + (64-4)*histSub
)

// Histogram is a fixed-bucket log-linear histogram of uint64 samples
// (durations in nanoseconds, set sizes). Observe is wait-free: one atomic
// add on the bucket, one on the running sum. There is no count field — the
// count is the sum of the buckets, computed at scrape time.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// bucketIndex maps a sample to its bucket: identity below histLinear, then
// octave o = floor(log2 v) with the next two bits selecting the sub-bucket.
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	o := bits.Len64(v) - 1 // 4..63
	sub := int((v >> (uint(o) - 2)) & (histSub - 1))
	return histLinear + (o-4)*histSub + sub
}

// bucketBound returns the inclusive upper bound of bucket i as a float (the
// top octaves exceed the float64 integer range; monitoring does not care).
func bucketBound(i int) float64 {
	if i < histLinear {
		return float64(i)
	}
	i -= histLinear
	o := i/histSub + 4
	sub := i % histSub
	return math.Ldexp(1, o) + float64(sub+1)*math.Ldexp(1, o-2) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples recorded (scrape-side: O(buckets)).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Stats summarizes the histogram for JSON stats endpoints (scrape-side).
func (h *Histogram) Stats() HistStats {
	var s histSnap
	h.addTo(&s)
	return histStats(&s)
}

// histSnap is a scrape-time merge of one or more histograms.
type histSnap struct {
	buckets [histBuckets]uint64
	sum     uint64
	count   uint64
}

func (h *Histogram) addTo(s *histSnap) {
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] += n
		s.count += n
	}
	s.sum += h.sum.Load()
}

// quantile estimates the q-quantile as the upper bound of the bucket where
// the cumulative count crosses q.
func (s *histSnap) quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	target := uint64(q * float64(s.count))
	if target >= s.count {
		target = s.count - 1
	}
	var cum uint64
	for i := range s.buckets {
		cum += s.buckets[i]
		if cum > target {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

// EngineMetrics is the per-shard block the evaluation engines write. Engines
// batch their deltas in plain fields under the engine lock and flush them
// here at firing passes and every 32nd pass (see engine.WithMetrics), so a
// steady-state pass costs well under one atomic add; the histograms are
// sampled on the same every-32nd cadence.
type EngineMetrics struct {
	Passes          Counter
	RulesChecked    Counter
	RulesFired      Counter
	RulesSuppressed Counter
	DispatchBatches Counter
	CompactEpochs   Counter
	PassNs          Histogram // sampled: wall duration of the locked pass
	DirtyKeys       Histogram // sampled: dirty dependency ids per pass
}

// IngestMetrics is the per-shard-stripe block the transport decoders write
// (one observation per posted event — the wire path is request-scale, not
// pass-scale, so nothing is sampled or batched here).
type IngestMetrics struct {
	EventsDecoded Counter
	DecodeErrors  Counter
	DecodeNs      Histogram
}

// StoreMetrics is the hub-level block the store backend writes — the remote
// record-log client's retry/backoff/breaker instrumentation. Store traffic is
// mutation-scale (one append per rule/user/priority change), not event-scale,
// so a single unsharded block is contention-free in practice; every write is
// still one wait-free atomic op.
type StoreMetrics struct {
	AppendErrors  Counter   // appends that failed after exhausting retries
	AppendRetries Counter   // individual retried append attempts
	BreakerTrips  Counter   // circuit-breaker open transitions
	Degraded      Gauge     // 1 while the breaker holds the store degraded
	AppendNs      Histogram // wall duration of successful appends (incl. retries)
}

// MigrationMetrics is the hub-level block live home migration writes (see
// internal/ring). Migration is operator-scale — a handful per rebalance, not
// per event — so a single unsharded block suffices; writes are still
// wait-free atomic ops.
type MigrationMetrics struct {
	Started         Counter   // migrations begun on this node as the source
	Completed       Counter   // migrations fully released (target acked)
	Failed          Counter   // migrations aborted and unsealed (home stayed)
	Imported        Counter   // homes imported on this node as the target
	TransferRetries Counter   // retried transfer POST attempts
	DurationNs      Histogram // seal-to-release wall time of completed migrations
}

// ConnMetrics is the per-stripe connection block the raw-socket HTTP front
// end writes (see internal/rawhttp). Connections are assigned a stripe
// round-robin at accept (Metrics.ConnShard), so concurrent connection
// goroutines spread over the shard stripes instead of hammering one cache
// line; every write is a single wait-free atomic op, nothing allocates.
type ConnMetrics struct {
	ConnsAccepted  Counter // connections accepted by the raw listener
	ConnsActive    Gauge   // connections currently open
	KeepaliveReuse Counter // requests served on an already-used connection
	ParseErrors    Counter // request heads the parser rejected
	ReadTimeouts   Counter // reads that hit a deadline (slowloris, stalls)
}

// ShardMetrics groups one hub shard's blocks. The shard's mailbox goroutine
// owns the Engine block; transport goroutines hash each home onto its owning
// shard's Ingest stripe (Metrics.IngestShard), so cross-shard traffic never
// shares a write-hot cache line. Conn stripes are claimed round-robin by the
// raw front end's connections.
type ShardMetrics struct {
	Engine EngineMetrics
	Ingest IngestMetrics
	Conn   ConnMetrics
}

// Metrics is a hub's full metric surface: hub-level series plus one
// ShardMetrics per shard. Scrapes aggregate across shards, so shard count is
// an implementation detail of the exposition.
type Metrics struct {
	Homes        Gauge   // homes resident in the hub
	StoreAppends Counter // journal records appended to the store
	Store        StoreMetrics
	Migration    MigrationMetrics
	shards       []*ShardMetrics
}

// New builds a Metrics with the given shard count (minimum one).
func New(shards int) *Metrics {
	if shards < 1 {
		shards = 1
	}
	m := &Metrics{shards: make([]*ShardMetrics, shards)}
	for i := range m.shards {
		m.shards[i] = &ShardMetrics{}
	}
	return m
}

// NumShards returns the shard count.
func (m *Metrics) NumShards() int { return len(m.shards) }

// Shard returns shard i's block.
func (m *Metrics) Shard(i int) *ShardMetrics { return m.shards[i] }

// IngestShard returns the ingest stripe for a home, hashed with the same
// FNV-1a the fleet hub shards homes by, so a home's transport metrics land
// on its owning shard's block.
func (m *Metrics) IngestShard(home string) *IngestMetrics {
	return &m.shards[fnv32(home)%uint32(len(m.shards))].Ingest
}

// ConnShard returns the connection stripe for the i-th accepted connection;
// the raw front end assigns stripes round-robin from its accept counter.
func (m *Metrics) ConnShard(i uint64) *ConnMetrics {
	return &m.shards[i%uint64(len(m.shards))].Conn
}

func fnv32(s string) uint32 {
	hash := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		hash ^= uint32(s[i])
		hash *= 16777619
	}
	return hash
}

// HistStats is a scrape-time histogram summary for JSON stats endpoints.
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Totals is the cross-shard aggregate for JSON stats endpoints.
type Totals struct {
	Passes          uint64    `json:"passes"`
	RulesChecked    uint64    `json:"rules_checked"`
	RulesFired      uint64    `json:"rules_fired"`
	RulesSuppressed uint64    `json:"rules_suppressed"`
	DispatchBatches uint64    `json:"dispatch_batches"`
	CompactEpochs   uint64    `json:"compact_epochs"`
	EventsDecoded   uint64    `json:"events_decoded"`
	DecodeErrors    uint64    `json:"decode_errors"`
	StoreAppends    uint64    `json:"store_appends"`
	PassNs          HistStats `json:"pass_ns"`
	DecodeNs        HistStats `json:"decode_ns"`
}

// StoreTotals is the store-backend aggregate for JSON stats endpoints: the
// health signal operators read to see a flapping backend before homes start
// shedding writes.
type StoreTotals struct {
	Appends       uint64    `json:"appends"`
	AppendErrors  uint64    `json:"append_errors"`
	AppendRetries uint64    `json:"append_retries"`
	BreakerTrips  uint64    `json:"breaker_trips"`
	Degraded      bool      `json:"degraded"`
	AppendNs      HistStats `json:"append_ns"`
}

// StoreTotals summarizes the store block.
func (m *Metrics) StoreTotals() StoreTotals {
	return StoreTotals{
		Appends:       m.StoreAppends.Load(),
		AppendErrors:  m.Store.AppendErrors.Load(),
		AppendRetries: m.Store.AppendRetries.Load(),
		BreakerTrips:  m.Store.BreakerTrips.Load(),
		Degraded:      m.Store.Degraded.Load() != 0,
		AppendNs:      m.Store.AppendNs.Stats(),
	}
}

func histStats(s *histSnap) HistStats {
	return HistStats{
		Count: s.count,
		Sum:   s.sum,
		P50:   s.quantile(0.50),
		P90:   s.quantile(0.90),
		P99:   s.quantile(0.99),
	}
}

// Totals sums every shard's counters and merges the histograms.
func (m *Metrics) Totals() Totals {
	var t Totals
	var passNs, decodeNs histSnap
	for _, sh := range m.shards {
		t.Passes += sh.Engine.Passes.Load()
		t.RulesChecked += sh.Engine.RulesChecked.Load()
		t.RulesFired += sh.Engine.RulesFired.Load()
		t.RulesSuppressed += sh.Engine.RulesSuppressed.Load()
		t.DispatchBatches += sh.Engine.DispatchBatches.Load()
		t.CompactEpochs += sh.Engine.CompactEpochs.Load()
		t.EventsDecoded += sh.Ingest.EventsDecoded.Load()
		t.DecodeErrors += sh.Ingest.DecodeErrors.Load()
		sh.Engine.PassNs.addTo(&passNs)
		sh.Ingest.DecodeNs.addTo(&decodeNs)
	}
	t.StoreAppends = m.StoreAppends.Load()
	t.PassNs = histStats(&passNs)
	t.DecodeNs = histStats(&decodeNs)
	return t
}

// WritePrometheus renders every metric in Prometheus text exposition format,
// aggregated across shards. Histograms render sparsely: only buckets whose
// cumulative count changes, plus the mandatory +Inf.
func (m *Metrics) WritePrometheus(w io.Writer) {
	t := m.Totals()
	writeGauge(w, "cadel_homes", "Homes resident in the hub.", m.Homes.Load())
	writeCounter(w, "cadel_store_appends_total", "Journal records appended to the fleet store.", t.StoreAppends)
	writeCounter(w, "cadel_store_append_errors_total", "Store appends that failed after exhausting retries.", m.Store.AppendErrors.Load())
	writeCounter(w, "cadel_store_append_retries_total", "Retried store append attempts.", m.Store.AppendRetries.Load())
	writeCounter(w, "cadel_store_breaker_trips_total", "Store circuit-breaker open transitions.", m.Store.BreakerTrips.Load())
	writeGauge(w, "cadel_store_degraded", "1 while the store circuit breaker holds writes degraded.", m.Store.Degraded.Load())
	writeCounter(w, "cadel_engine_passes_total", "Evaluation passes run across all homes.", t.Passes)
	writeCounter(w, "cadel_engine_rules_checked_total", "Candidate rules re-evaluated.", t.RulesChecked)
	writeCounter(w, "cadel_engine_rules_fired_total", "Rule actions dispatched (arbitration winners).", t.RulesFired)
	writeCounter(w, "cadel_engine_rules_suppressed_total", "Ready rules that lost arbitration on a firing pass.", t.RulesSuppressed)
	writeCounter(w, "cadel_engine_dispatch_batches_total", "Dispatch batches handed out (at most one per pass).", t.DispatchBatches)
	writeCounter(w, "cadel_engine_compact_epochs_total", "Symbol-compaction epochs run.", t.CompactEpochs)
	writeCounter(w, "cadel_ingest_events_decoded_total", "Events decoded by the wire fast path.", t.EventsDecoded)
	writeCounter(w, "cadel_ingest_decode_errors_total", "Event bodies the wire decoder rejected.", t.DecodeErrors)

	var accepted, reuse, parseErrs, timeouts uint64
	var active int64
	for _, sh := range m.shards {
		accepted += sh.Conn.ConnsAccepted.Load()
		active += sh.Conn.ConnsActive.Load()
		reuse += sh.Conn.KeepaliveReuse.Load()
		parseErrs += sh.Conn.ParseErrors.Load()
		timeouts += sh.Conn.ReadTimeouts.Load()
	}
	writeCounter(w, "cadel_http_conns_accepted_total", "Connections accepted by the raw-socket ingest listener.", accepted)
	writeGauge(w, "cadel_http_conns_active", "Raw-socket ingest connections currently open.", active)
	writeCounter(w, "cadel_http_keepalive_reuse_total", "Requests served on an already-used raw connection.", reuse)
	writeCounter(w, "cadel_http_parse_errors_total", "Request heads the raw parser rejected.", parseErrs)
	writeCounter(w, "cadel_http_read_timeouts_total", "Raw connection reads that hit a deadline.", timeouts)

	var passNs, dirty, decodeNs histSnap
	for _, sh := range m.shards {
		sh.Engine.PassNs.addTo(&passNs)
		sh.Engine.DirtyKeys.addTo(&dirty)
		sh.Ingest.DecodeNs.addTo(&decodeNs)
	}
	writeHist(w, "cadel_engine_pass_duration_ns", "Wall duration of the locked evaluation pass (sampled every 32nd pass).", &passNs)
	writeHist(w, "cadel_engine_dirty_keys", "Dirty dependency ids per pass (sampled every 32nd pass).", &dirty)
	writeHist(w, "cadel_ingest_decode_duration_ns", "Wire decode duration per event.", &decodeNs)

	var appendNs histSnap
	m.Store.AppendNs.addTo(&appendNs)
	writeHist(w, "cadel_store_append_duration_ns", "Wall duration of successful store appends, retries included.", &appendNs)

	writeCounter(w, "cadel_migrations_started_total", "Home migrations begun with this node as the source.", m.Migration.Started.Load())
	writeCounter(w, "cadel_migrations_completed_total", "Home migrations released after the target acked.", m.Migration.Completed.Load())
	writeCounter(w, "cadel_migrations_failed_total", "Home migrations aborted and unsealed.", m.Migration.Failed.Load())
	writeCounter(w, "cadel_migrations_imported_total", "Homes imported with this node as the target.", m.Migration.Imported.Load())
	writeCounter(w, "cadel_migration_transfer_retries_total", "Retried migration transfer attempts.", m.Migration.TransferRetries.Load())
	var migNs histSnap
	m.Migration.DurationNs.addTo(&migNs)
	writeHist(w, "cadel_migration_duration_ns", "Seal-to-release wall time of completed migrations.", &migNs)
}

func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func writeHist(w io.Writer, name, help string, s *histSnap) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := s.buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bucketBound(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n", name, s.count, name, s.sum, name, s.count)
}
