// Package faultinject is the deterministic fault layer for the remote
// record-log stack (internal/logserver + fleet.RemoteStore): everything a
// flaky network or a dying process does to a store, reproducible from a
// seed.
//
// Three seams, matching where real faults strike:
//
//   - Transport wraps an http.RoundTripper and injects connection timeouts,
//     resets before and after delivery (the reset-after case performs the
//     request and then loses the ack — the delivery the server must
//     deduplicate), synthetic 500s, and duplicated deliveries.
//
//   - FlakyStore wraps a fleet.Store and injects failed appends (before the
//     write), in-doubt appends (write lands, ack lost) and failed snapshots —
//     the server-side view of the same faults, used to drive hub rollback
//     paths without a network.
//
//   - The Crash* helpers build fleet.FaultHooks that kill the process at a
//     chosen append or snapshot step; the crash-recovery harness runs a
//     logserver under them in a child process and asserts recovery.
//
// All randomness comes from one seeded, mutex-guarded source, so a failing
// run replays exactly from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// Config sets the per-call probabilities (0..1) of each injected fault.
type Config struct {
	// Seed feeds the deterministic random source.
	Seed int64

	// TimeoutP drops the request before it is sent with a timeout error.
	TimeoutP float64
	// ResetBeforeP fails the request before it is sent (connection reset).
	ResetBeforeP float64
	// ResetAfterP performs the request, then reports a reset: the server saw
	// and applied the request, the client never saw the ack.
	ResetAfterP float64
	// HTTP500P performs the request, then replaces the response with a 500.
	HTTP500P float64
	// DuplicateP performs the request twice (a retransmitted delivery) and
	// returns the second response.
	DuplicateP float64

	// DelayP sleeps before delivering the request — injected network
	// latency. The sleep is a seeded-uniform draw in (0, Delay], so a run's
	// latency pattern replays exactly from its seed.
	DelayP float64
	// Delay is the maximum injected latency; zero disables DelayP.
	Delay time.Duration
}

// Stats counts the faults a Transport actually injected.
type Stats struct {
	Timeouts       uint64
	ResetsBefore   uint64
	ResetsAfter    uint64
	HTTP500s       uint64
	Duplicates     uint64
	Delays         uint64
	PartitionDrops uint64
}

// timeoutError satisfies net.Error with Timeout() true, like a real dial or
// read deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultinject: request timed out" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrReset is the injected connection-reset error.
var ErrReset = errors.New("faultinject: connection reset")

// ErrPartitioned is the error a one-way-partitioned Transport returns: the
// request was delivered and applied, the response never came back.
var ErrPartitioned = errors.New("faultinject: response lost to one-way partition")

// Transport is a fault-injecting http.RoundTripper.
type Transport struct {
	base http.RoundTripper
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand

	// partitioned, while set, turns the link one-way: requests deliver (the
	// server applies them) but every response is dropped. The asymmetric
	// half of a network partition — the half that forces servers to
	// deduplicate, because the client must retry what already happened.
	partitioned atomic.Bool

	timeouts, resetsBefore, resetsAfter, http500s, duplicates, delays, partitionDrops atomic.Uint64
}

// NewTransport wraps base (nil means http.DefaultTransport) with the faults
// in cfg.
func NewTransport(cfg Config, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats reports the faults injected so far.
func (t *Transport) Stats() Stats {
	return Stats{
		Timeouts:       t.timeouts.Load(),
		ResetsBefore:   t.resetsBefore.Load(),
		ResetsAfter:    t.resetsAfter.Load(),
		HTTP500s:       t.http500s.Load(),
		Duplicates:     t.duplicates.Load(),
		Delays:         t.delays.Load(),
		PartitionDrops: t.partitionDrops.Load(),
	}
}

// SetPartition toggles the one-way partition: while on, every request is
// delivered but its response is dropped with ErrPartitioned. Heal with
// SetPartition(false).
func (t *Transport) SetPartition(on bool) { t.partitioned.Store(on) }

// Partitioned reports whether the one-way partition is active.
func (t *Transport) Partitioned() bool { return t.partitioned.Load() }

func (t *Transport) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < p
}

// perform runs the request once against the base transport, rewinding the
// body via GetBody so one logical request can be delivered more than once.
func (t *Transport) perform(req *http.Request) (*http.Response, error) {
	r := req
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, fmt.Errorf("faultinject: rewind body: %w", err)
		}
		r = req.Clone(req.Context())
		r.Body = body
	}
	return t.base.RoundTrip(r)
}

func drain(resp *http.Response) {
	if resp != nil && resp.Body != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// sleepFor draws a seeded-uniform latency in (0, max].
func (t *Transport) sleepFor(max time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.rng.Int63n(int64(max))) + 1
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.cfg.Delay > 0 && t.hit(t.cfg.DelayP) {
		t.delays.Add(1)
		select {
		case <-time.After(t.sleepFor(t.cfg.Delay)):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if t.partitioned.Load() {
		resp, err := t.perform(req)
		if err != nil {
			return nil, err
		}
		drain(resp)
		t.partitionDrops.Add(1)
		return nil, ErrPartitioned
	}
	if t.hit(t.cfg.TimeoutP) {
		t.timeouts.Add(1)
		return nil, timeoutError{}
	}
	if t.hit(t.cfg.ResetBeforeP) {
		t.resetsBefore.Add(1)
		return nil, fmt.Errorf("%w before delivery", ErrReset)
	}
	dup := t.hit(t.cfg.DuplicateP)
	resetAfter := t.hit(t.cfg.ResetAfterP)
	fake500 := t.hit(t.cfg.HTTP500P)

	resp, err := t.perform(req)
	if err != nil {
		return nil, err
	}
	if dup {
		t.duplicates.Add(1)
		drain(resp)
		if resp, err = t.perform(req); err != nil {
			return nil, err
		}
	}
	if resetAfter {
		t.resetsAfter.Add(1)
		drain(resp)
		return nil, fmt.Errorf("%w after delivery", ErrReset)
	}
	if fake500 {
		t.http500s.Add(1)
		drain(resp)
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error (injected)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("injected fault\n")),
			Request: req,
		}, nil
	}
	return resp, nil
}

// ErrInjected is the error FlakyStore returns for its injected failures.
var ErrInjected = errors.New("faultinject: injected store fault")

// FlakyStore wraps a fleet.Store with server-side append/snapshot faults.
type FlakyStore struct {
	inner fleet.Store

	// FailBeforeP fails an Append without performing it.
	FailBeforeP float64
	// FailAfterP performs the Append, then reports failure: the record is
	// durable but the caller thinks it is not (the in-doubt append).
	FailAfterP float64
	// SnapshotFailP fails WriteSnapshot without performing it.
	SnapshotFailP float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFlakyStore wraps inner with seeded fault draws; set the probability
// fields before first use.
func NewFlakyStore(inner fleet.Store, seed int64) *FlakyStore {
	return &FlakyStore{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

func (s *FlakyStore) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64() < p
}

// Append implements fleet.Store.
func (s *FlakyStore) Append(rec fleet.Record) error {
	if s.hit(s.FailBeforeP) {
		return fmt.Errorf("%w: append refused", ErrInjected)
	}
	if err := s.inner.Append(rec); err != nil {
		return err
	}
	if s.hit(s.FailAfterP) {
		return fmt.Errorf("%w: append ack lost", ErrInjected)
	}
	return nil
}

// Replay implements fleet.Store.
func (s *FlakyStore) Replay(fn func(fleet.Record) error) error { return s.inner.Replay(fn) }

// WriteSnapshot implements fleet.Store.
func (s *FlakyStore) WriteSnapshot(recs []fleet.Record) error {
	if s.hit(s.SnapshotFailP) {
		return fmt.Errorf("%w: snapshot refused", ErrInjected)
	}
	return s.inner.WriteSnapshot(recs)
}

// Close implements fleet.Store.
func (s *FlakyStore) Close() error { return s.inner.Close() }

// CrashOnAppend builds fleet.FaultHooks that call crash on the n'th append
// write (1-based). With torn true, half the record reaches the WAL first —
// the mid-append process kill; otherwise the whole record lands and the
// crash hits before the append returns — the durable-but-unacked kill.
// crash must not return (os.Exit in the harness's child process).
func CrashOnAppend(n uint64, torn bool, crash func()) fleet.FaultHooks {
	var calls atomic.Uint64
	return fleet.FaultHooks{AppendWrite: func(w io.Writer, line []byte) (int, error) {
		if calls.Add(1) != n {
			return w.Write(line)
		}
		if torn {
			w.Write(line[:len(line)/2])
			crash()
			return 0, errors.New("faultinject: crash hook returned")
		}
		nw, err := w.Write(line)
		if err == nil && nw == len(line) {
			crash()
		}
		return nw, errors.New("faultinject: crash hook returned")
	}}
}

// CrashOnSnapshotStep builds fleet.FaultHooks that call crash when
// WriteSnapshot reaches the given step. crash must not return.
func CrashOnSnapshotStep(step fleet.SnapshotStep, crash func()) fleet.FaultHooks {
	return fleet.FaultHooks{Snapshot: func(at fleet.SnapshotStep) error {
		if at == step {
			crash()
			return errors.New("faultinject: crash hook returned")
		}
		return nil
	}}
}
