package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportDelayInjection: DelayP injects seeded latency without
// corrupting the request/response, and the stat counter proves the fault
// actually fired (non-vacuous).
func TestTransportDelayInjection(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte("pong"))
	}))
	defer srv.Close()

	tr := NewTransport(Config{Seed: 7, DelayP: 1.0, Delay: 5 * time.Millisecond}, nil)
	client := &http.Client{Transport: tr}

	const reqs = 5
	start := time.Now()
	for i := 0; i < reqs; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "pong" {
			t.Fatalf("delayed response corrupted: %q", body)
		}
	}
	elapsed := time.Since(start)

	st := tr.Stats()
	if st.Delays != reqs {
		t.Fatalf("Delays = %d, want %d — the fault never fired", st.Delays, reqs)
	}
	if hits.Load() != reqs {
		t.Errorf("server saw %d requests, want %d", hits.Load(), reqs)
	}
	// Each draw is in (0, 5ms]; the run must at least have slept a seeded,
	// replayable total. Only the loose floor is asserted (a microscopic draw
	// sequence is possible in theory, but the seed pins it).
	if elapsed <= 0 {
		t.Errorf("no wall time elapsed: %v", elapsed)
	}

	// Delay honors context cancellation: a canceled request does not sleep
	// out its injected latency.
	slow := NewTransport(Config{Seed: 1, DelayP: 1.0, Delay: 10 * time.Second}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	t0 := time.Now()
	if _, err := slow.RoundTrip(req); err == nil {
		t.Fatal("canceled delayed request succeeded")
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Errorf("cancellation ignored: waited %v", waited)
	}
}

// TestTransportOneWayPartition: while partitioned, requests deliver (the
// server applies them) but responses are dropped — the asymmetric fault
// that forces idempotent servers. Healing restores the link.
func TestTransportOneWayPartition(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(Config{Seed: 1}, nil)
	client := &http.Client{Transport: tr}

	// Healthy link first.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tr.SetPartition(true)
	if !tr.Partitioned() {
		t.Fatal("partition toggle lost")
	}
	_, err = client.Get(srv.URL)
	if err == nil {
		t.Fatal("partitioned request returned a response")
	}
	if !errors.Is(errors.Unwrap(err), ErrPartitioned) && !errors.Is(err, ErrPartitioned) {
		t.Errorf("partition error = %v, want ErrPartitioned", err)
	}
	// One-way: the request WAS delivered.
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (delivery must survive the partition)", hits.Load())
	}

	tr.SetPartition(false)
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
	resp.Body.Close()

	st := tr.Stats()
	if st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want exactly 1 — the fault never fired (or double-fired)", st.PartitionDrops)
	}
}

// TestTransportSeededDeterminism: identical seeds inject the identical fault
// sequence — the property that makes a failing matrix case replayable.
func TestTransportSeededDeterminism(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	run := func() Stats {
		tr := NewTransport(Config{
			Seed: 42, TimeoutP: 0.2, ResetBeforeP: 0.2, ResetAfterP: 0.2, HTTP500P: 0.2, DuplicateP: 0.2,
		}, nil)
		client := &http.Client{Transport: tr}
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}
		return tr.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults:\n a: %+v\n b: %+v", a, b)
	}
	if a.Timeouts+a.ResetsBefore+a.ResetsAfter+a.HTTP500s+a.Duplicates == 0 {
		t.Fatal("no faults injected at p=0.2 over 40 requests — vacuous")
	}
}
