// Server-level tests live in rawhttp_test because they drive the raw
// listener against real fleet hubs (fleet imports rawhttp, so an in-package
// test would cycle). The central instrument is the twin harness: the same
// bytes go to the raw server and to a net/http server running the same sink
// on an identical hub, and both the wire answers and the engine-observed
// state must match.
package rawhttp_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/rawhttp"
)

var testEpoch = time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)

func testClock() func() time.Time { return func() time.Time { return testEpoch } }

// hotRule is the paper's example rule 1, minus the user-defined word.
const hotRule = "If temperature is higher than 28 degrees, turn on the air conditioner " +
	"with 25 degrees of temperature setting."

func newHub(t *testing.T, opts ...fleet.HubOption) *fleet.Hub {
	t.Helper()
	h, err := fleet.NewHub(append([]fleet.HubOption{
		fleet.WithClock(testClock()), fleet.WithShards(1),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func seedHome(t *testing.T, h *fleet.Hub, homes ...string) {
	t.Helper()
	for _, home := range homes {
		if err := h.RegisterUser(home, "tom"); err != nil {
			t.Fatalf("%s: register: %v", home, err)
		}
		if _, err := h.Submit(home, hotRule, "tom"); err != nil {
			t.Fatalf("%s: submit: %v", home, err)
		}
	}
}

// startRaw serves a raw listener for sink and returns its address.
func startRaw(t *testing.T, hub *fleet.Hub, sink *ingest.Sink, opts ...rawhttp.Option) (*rawhttp.Server, string) {
	t.Helper()
	raw := fleet.NewRawIngest(hub, sink, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go raw.Serve(ln)
	t.Cleanup(func() { _ = raw.Close() })
	return raw, ln.Addr().String()
}

// twin is the parity harness: the raw server and a net/http oracle over
// identically configured hubs and sinks.
type twin struct {
	rawHub, oracleHub   *fleet.Hub
	rawAddr, oracleAddr string
	raw                 *rawhttp.Server
}

func newTwin(t *testing.T, limits ingest.Limits, rawOpts ...rawhttp.Option) *twin {
	t.Helper()
	tw := &twin{rawHub: newHub(t), oracleHub: newHub(t)}
	sink := fleet.NewEventSink(tw.rawHub, limits)
	tw.raw, tw.rawAddr = startRaw(t, tw.rawHub, sink, rawOpts...)

	oSink := fleet.NewEventSink(tw.oracleHub, limits)
	oln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	osrv := &http.Server{
		Handler:           fleet.NewHTTPHandler(tw.oracleHub, fleet.WithEventSink(oSink)),
		MaxHeaderBytes:    4 << 10,
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
	}
	go osrv.Serve(oln)
	t.Cleanup(func() { _ = osrv.Close() })
	tw.oracleAddr = oln.Addr().String()
	return tw
}

// sendBytes writes one connection's worth of raw bytes, half-closes, and
// returns every status code the server answered before hanging up.
func sendBytes(t *testing.T, addr string, payload []byte) []int {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	data, _ := io.ReadAll(conn) // until the server closes (or deadline)
	return statuses(data)
}

// statuses extracts the status code of every response status line in data.
func statuses(data []byte) []int {
	var out []int
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSuffix(line, "\r")
		if strings.HasPrefix(line, "HTTP/1.") && len(line) >= 12 {
			if code, err := strconv.Atoi(line[9:12]); err == nil {
				out = append(out, code)
			}
		}
	}
	return out
}

// eventBody builds the standard thermometer body.
func eventBody(temp string, sync bool) string {
	s := `{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","vars":{"temperature":"` + temp + `"}`
	if sync {
		s += `,"sync":true`
	}
	return s + "}"
}

// eventReq builds one well-formed request for the event route.
func eventReq(home, body string, close bool) string {
	s := "POST /fleet/homes/" + home + "/events HTTP/1.1\r\nHost: hub\r\n"
	if close {
		s += "Connection: close\r\n"
	}
	return s + "Content-Length: " + strconv.Itoa(len(body)) + "\r\n\r\n" + body
}

// compareState asserts the twin hubs observed identical engine state for
// the given homes: fired logs (rule ids and firing times), rule owners, and
// the hub-wide accepted-event count.
func (tw *twin) compareState(t *testing.T, homes ...string) {
	t.Helper()
	if err := tw.rawHub.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := tw.oracleHub.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for _, home := range homes {
		rLog, err1 := tw.rawHub.Log(home)
		oLog, err2 := tw.oracleHub.Log(home)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(rLog) != len(oLog) {
			t.Fatalf("%s: raw fired %d, oracle fired %d", home, len(rLog), len(oLog))
		}
		for i := range rLog {
			if rLog[i].Rule.ID != oLog[i].Rule.ID || !rLog[i].Time.Equal(oLog[i].Time) {
				t.Fatalf("%s log[%d]: raw %v@%v, oracle %v@%v",
					home, i, rLog[i].Rule.ID, rLog[i].Time, oLog[i].Rule.ID, oLog[i].Time)
			}
		}
		rOwn, _ := tw.rawHub.Owners(home)
		oOwn, _ := tw.oracleHub.Owners(home)
		if !reflect.DeepEqual(rOwn, oOwn) {
			t.Fatalf("%s owners diverge: raw %v, oracle %v", home, rOwn, oOwn)
		}
	}
	rStats, _ := tw.rawHub.Stats()
	oStats, _ := tw.oracleHub.Stats()
	if rStats.Events != oStats.Events {
		t.Fatalf("accepted events: raw %d, oracle %d", rStats.Events, oStats.Events)
	}
}

// TestRawOracleParityTable sends scripted byte streams — valid, malformed,
// pipelined, truncated — to the raw server and the net/http oracle and
// asserts both answer the same status sequence before hanging up.
func TestRawOracleParityTable(t *testing.T) {
	valid := eventReq("h", eventBody("20", false), false)
	validClose := eventReq("h", eventBody("20", false), true)
	bigPad := strings.Repeat("x", 20<<10) // over both 431 caps (raw 4K, oracle 4K+slack)
	overBody := strings.Repeat("x", 70<<10)

	cases := []struct {
		name    string
		payload string
	}{
		{"valid single", validClose},
		{"pipelined trio", valid + valid + validClose},
		{"http10", "POST /fleet/homes/h/events HTTP/1.0\r\nContent-Length: 2\r\n\r\n{}"},
		{"http10 keepalive", "POST /fleet/homes/h/events HTTP/1.0\r\nConnection: keep-alive\r\nContent-Length: 2\r\n\r\n{}" +
			"POST /fleet/homes/h/events HTTP/1.0\r\nContent-Length: 2\r\n\r\n{}"},
		{"bare lf lines", "POST /fleet/homes/h/events HTTP/1.1\nHost: hub\nConnection: close\nContent-Length: 2\n\n{}"},
		{"query target", "POST /fleet/homes/h/events?x=1 HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}"},
		{"double space", "POST  /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\n\r\n"},
		{"bad proto", "POST /fleet/homes/h/events XTTP/1.1\r\nHost: hub\r\n\r\n"},
		{"http2 request line", "POST /fleet/homes/h/events HTTP/2.0\r\nHost: hub\r\n\r\n"},
		{"http09 request line", "POST /fleet/homes/h/events HTTP/0.9\r\nHost: hub\r\n\r\n"},
		{"missing host", "POST /fleet/homes/h/events HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"},
		{"two hosts", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: a\r\nHost: b\r\nContent-Length: 2\r\n\r\n{}"},
		{"cl not digits", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nContent-Length: 2x\r\n\r\n{}"},
		{"cl negative", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nContent-Length: -2\r\n\r\n{}"},
		{"cl plus", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nContent-Length: +2\r\n\r\n{}"},
		{"cl conflict", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}"},
		{"cl duplicate identical", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}"},
		{"unknown transfer-encoding", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nTransfer-Encoding: gzip\r\n\r\n"},
		{"header name space", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nBad Header: v\r\n\r\n"},
		{"header space before colon", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nBad : v\r\n\r\n"},
		{"header no colon", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nBadHeader\r\n\r\n"},
		{"fold untracked header", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nX-A: b\r\n  cont\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}"},
		{"bad expect", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nExpect: tomorrow\r\nContent-Length: 2\r\n\r\n{}"},
		{"expect 100-continue", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nExpect: 100-continue\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}"},
		{"oversized head", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nX-Pad: " + bigPad + "\r\n\r\n"},
		{"wrong method keepalive", "GET /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\n\r\n" + validClose},
		{"wrong route", "POST /fleet/nowhere HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}"},
		{"wrong route with body drain", "POST /fleet/homes/h/nowhere HTTP/1.1\r\nHost: hub\r\nContent-Length: 10\r\n\r\n0123456789" + validClose},
		{"malformed body", eventReq("h", `{"deviceType":`, false) + validClose},
		{"empty body", eventReq("h", "", false) + validClose},
		{"chunked valid", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nTransfer-Encoding: chunked\r\n\r\n" +
			chunked(eventBody("30", false), 7)},
		{"chunked with extension", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nTransfer-Encoding: chunked\r\n\r\n" +
			"2;ext=1\r\n{}\r\n0\r\n\r\n"},
		{"chunked bad size", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\n{}\r\n0\r\n\r\n"},
		{"chunked bad terminator", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}XX0\r\n\r\n"},
		{"chunked truncated", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nTransfer-Encoding: chunked\r\n\r\n5\r\n{}"},
		{"oversized body", "POST /fleet/homes/h/events HTTP/1.1\r\nHost: hub\r\nContent-Length: " +
			strconv.Itoa(len(overBody)) + "\r\n\r\n" + overBody + validClose},
		{"early eof mid head", "POST /fleet/homes/h/ev"},
		{"early eof mid body", eventReq("h", "{\"deviceType\":\"x\",...............", false)[:90]},
		{"empty connection", ""},
	}
	tw := newTwin(t, ingest.Limits{}, rawhttp.WithMaxHeader(4<<10))
	seedHome(t, tw.rawHub, "h")
	seedHome(t, tw.oracleHub, "h")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := sendBytes(t, tw.rawAddr, []byte(tc.payload))
			oracle := sendBytes(t, tw.oracleAddr, []byte(tc.payload))
			if !reflect.DeepEqual(raw, oracle) {
				t.Fatalf("status sequences diverge:\n  raw    %v\n  oracle %v", raw, oracle)
			}
		})
	}
	tw.compareState(t, "h")
}

// chunked encodes body as chunked transfer coding with the given chunk size.
func chunked(body string, size int) string {
	var sb strings.Builder
	for len(body) > 0 {
		n := size
		if n > len(body) {
			n = len(body)
		}
		fmt.Fprintf(&sb, "%x\r\n%s\r\n", n, body[:n])
		body = body[n:]
	}
	sb.WriteString("0\r\n\r\n")
	return sb.String()
}

// TestRawOracleAdmissionParity: a token bucket with burst 1 sheds the
// second and third pipelined posts identically on both transports, and the
// raw 429 carries Retry-After like the net/http one.
func TestRawOracleAdmissionParity(t *testing.T) {
	tw := newTwin(t, ingest.Limits{Rate: 0.0001, Burst: 1})
	seedHome(t, tw.rawHub, "h")
	seedHome(t, tw.oracleHub, "h")
	payload := eventReq("h", eventBody("20", false), false) +
		eventReq("h", eventBody("20", false), false) +
		eventReq("h", eventBody("20", false), true)
	raw := sendBytes(t, tw.rawAddr, []byte(payload))
	oracle := sendBytes(t, tw.oracleAddr, []byte(payload))
	want := []int{202, 429, 429}
	if !reflect.DeepEqual(raw, want) || !reflect.DeepEqual(oracle, want) {
		t.Fatalf("raw %v, oracle %v, want %v", raw, oracle, want)
	}

	// Raw shed responses carry the Retry-After hint.
	conn, err := net.Dial("tcp", tw.rawAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	conn.Write([]byte(eventReq("h", eventBody("20", false), true)))
	conn.(*net.TCPConn).CloseWrite()
	data, _ := io.ReadAll(conn)
	if !strings.Contains(string(data), "HTTP/1.1 429") || !strings.Contains(string(data), "Retry-After: ") {
		t.Fatalf("shed response missing Retry-After:\n%s", data)
	}
	tw.compareState(t, "h")
}

// TestRawOracleKnownDivergences pins the deliberate routing divergences
// (documented in README.md): net/http's ServeMux path-cleans an empty home
// segment into a 301 redirect and decodes percent-escapes, and the full
// handler serves the whole fleet API; the raw front end answers 404 for all
// three — it refuses the path ambiguity and serves only the ingest route.
func TestRawOracleKnownDivergences(t *testing.T) {
	tw := newTwin(t, ingest.Limits{})
	cases := []struct {
		name                string
		payload             string
		wantRaw, wantOracle []int
	}{
		{"empty home segment", "POST /fleet/homes//events HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}",
			[]int{404}, []int{301}},
		{"percent-escaped home", "POST /fleet/homes/h%31/events HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}",
			[]int{404}, []int{202}},
		{"non-ingest fleet route", "POST /fleet/homes/h/trace HTTP/1.1\r\nHost: hub\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}",
			[]int{404}, []int{405}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sendBytes(t, tw.rawAddr, []byte(tc.payload)); !reflect.DeepEqual(got, tc.wantRaw) {
				t.Errorf("raw: %v, want %v", got, tc.wantRaw)
			}
			if got := sendBytes(t, tw.oracleAddr, []byte(tc.payload)); !reflect.DeepEqual(got, tc.wantOracle) {
				t.Errorf("oracle: %v, want %v", got, tc.wantOracle)
			}
		})
	}
}

// TestRawOracleEquivalenceRandomized drives both transports with the same
// seeded-random mix of valid, malformed, misrouted, chunked, sync and no-op
// requests over pipelined keep-alive connections, then asserts
// status-sequence and engine-state equivalence.
//
// Rule-observable temperature changes ride only on sync posts: the hub
// coalesces async backlogs into one evaluation pass per drain, so the
// number of edge-triggered firings produced by an async threshold crossing
// depends on drain timing — on purpose. Async coverage here uses events
// whose variables no rule observes, which keeps both the 202 wire path and
// engine-state determinism.
func TestRawOracleEquivalenceRandomized(t *testing.T) {
	tw := newTwin(t, ingest.Limits{})
	homes := []string{"alpha", "beta", "gamma"}
	seedHome(t, tw.rawHub, homes...)
	seedHome(t, tw.oracleHub, homes...)

	rng := rand.New(rand.NewSource(7))
	temps := []string{"20", "25", "29", "31", "33.5"}
	noop := `{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","vars":{"mode":"eco"}}`
	genReq := func(home string, close bool) string {
		switch rng.Intn(10) {
		case 0: // malformed body
			return eventReq(home, `{"deviceType":"x"`, close)
		case 1: // empty body
			return eventReq(home, "", close)
		case 2: // wrong route, body drained
			s := "POST /fleet/homes/" + home + "/nowhere HTTP/1.1\r\nHost: hub\r\n"
			if close {
				s += "Connection: close\r\n"
			}
			return s + "Content-Length: 4\r\n\r\nabcd"
		case 3: // wrong method
			s := "GET /fleet/homes/" + home + "/events HTTP/1.1\r\nHost: hub\r\n"
			if close {
				s += "Connection: close\r\n"
			}
			return s + "\r\n"
		case 4: // chunked sync event
			s := "POST /fleet/homes/" + home + "/events HTTP/1.1\r\nHost: hub\r\n"
			if close {
				s += "Connection: close\r\n"
			}
			return s + "Transfer-Encoding: chunked\r\n\r\n" +
				chunked(eventBody(temps[rng.Intn(len(temps))], true), 1+rng.Intn(20))
		case 5, 6: // steady-state async: decodes fine, no rule-visible vars
			return eventReq(home, noop, close)
		default: // sync event; may cross the firing threshold either way
			return eventReq(home, eventBody(temps[rng.Intn(len(temps))], true), close)
		}
	}

	for conn := 0; conn < 40; conn++ {
		home := homes[rng.Intn(len(homes))]
		n := 1 + rng.Intn(8)
		var payload strings.Builder
		for i := 0; i < n; i++ {
			payload.WriteString(genReq(home, i == n-1))
		}
		raw := sendBytes(t, tw.rawAddr, []byte(payload.String()))
		oracle := sendBytes(t, tw.oracleAddr, []byte(payload.String()))
		if !reflect.DeepEqual(raw, oracle) {
			t.Fatalf("conn %d (%s): status sequences diverge:\n  raw    %v\n  oracle %v\npayload:\n%s",
				conn, home, raw, oracle, payload.String())
		}
	}
	tw.compareState(t, homes...)
}

// TestRawShutdownDrain: Shutdown pokes idle keep-alive connections closed,
// lets a mid-request connection finish (its response carries Connection:
// close), and returns once both are gone.
func TestRawShutdownDrain(t *testing.T) {
	hub := newHub(t)
	seedHome(t, hub, "h")
	raw, addr := startRaw(t, hub, fleet.NewEventSink(hub, ingest.Limits{}))

	// Idle connection: one request served, then parked between requests.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetDeadline(time.Now().Add(5 * time.Second))
	idle.Write([]byte(eventReq("h", eventBody("20", false), false)))
	buf := make([]byte, 4096)
	if n, _ := idle.Read(buf); !strings.HasPrefix(string(buf[:n]), "HTTP/1.1 202") {
		t.Fatalf("idle conn first response: %q", buf[:n])
	}

	// In-flight connection: the head is half-written when shutdown starts.
	inflight, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer inflight.Close()
	inflight.SetDeadline(time.Now().Add(5 * time.Second))
	full := eventReq("h", eventBody("31", true), false)
	inflight.Write([]byte(full[:30]))
	time.Sleep(20 * time.Millisecond) // let the server start reading the head

	shutErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	go func() { shutErr <- raw.Shutdown(ctx) }()

	// The idle connection is poked awake and closed without a response.
	if n, err := idle.Read(buf); err != io.EOF {
		t.Fatalf("idle conn after shutdown: n=%d err=%v, want EOF", n, err)
	}

	// The in-flight request still completes — and is told to go away.
	time.Sleep(20 * time.Millisecond)
	inflight.Write([]byte(full[30:]))
	data, _ := io.ReadAll(inflight)
	resp := string(data)
	if !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Fatalf("in-flight response during drain: %q", resp)
	}
	if !strings.Contains(resp, "Connection: close") {
		t.Fatalf("drain response must announce the close:\n%s", resp)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Accepted events survived the drain: the sync 31° post fired the rule.
	if log, err := hub.Log("h"); err != nil || len(log) != 1 {
		t.Fatalf("log after drain = %v, %v (want the one firing)", log, err)
	}

	// New connections are refused after shutdown.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after Shutdown closed the listener")
	}
}

// TestRawConnMetrics: accepted/active/reuse/parse-error/timeout counters
// move on the sharded stripes.
func TestRawConnMetrics(t *testing.T) {
	hub := newHub(t)
	seedHome(t, hub, "h")
	m := obs.New(4)
	sink := fleet.NewEventSink(hub, ingest.Limits{})
	raw := rawhttp.NewServer(sink,
		rawhttp.WithMetrics(m), rawhttp.WithReadHeaderTimeout(80*time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go raw.Serve(ln)
	t.Cleanup(func() { _ = raw.Close() })
	addr := ln.Addr().String()

	// Two requests on one keep-alive connection: 1 reuse.
	if got := sendBytes(t, addr, []byte(eventReq("h", eventBody("20", false), false)+
		eventReq("h", eventBody("20", false), true))); !reflect.DeepEqual(got, []int{202, 202}) {
		t.Fatalf("keep-alive pair: %v", got)
	}
	// One malformed head: 1 parse error.
	if got := sendBytes(t, addr, []byte("BAD\r\n\r\n")); !reflect.DeepEqual(got, []int{400}) {
		t.Fatalf("malformed head: %v", got)
	}
	// One stalled head: 1 read timeout (the 80ms header deadline fires).
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slow.SetDeadline(time.Now().Add(5 * time.Second))
	slow.Write([]byte("POST /fleet/homes/h/ev"))
	data, _ := io.ReadAll(slow)
	if !strings.Contains(string(data), "HTTP/1.1 408") {
		t.Fatalf("stalled head answer: %q", data)
	}

	var accepted, reuse, parseErrs, timeouts uint64
	var active int64
	for i := 0; i < m.NumShards(); i++ {
		cm := &m.Shard(i).Conn
		accepted += cm.ConnsAccepted.Load()
		reuse += cm.KeepaliveReuse.Load()
		parseErrs += cm.ParseErrors.Load()
		timeouts += cm.ReadTimeouts.Load()
		active += cm.ConnsActive.Load()
	}
	if accepted != 3 || reuse != 1 || parseErrs != 1 || timeouts != 1 {
		t.Fatalf("accepted=%d reuse=%d parseErrs=%d timeouts=%d, want 3/1/1/1",
			accepted, reuse, parseErrs, timeouts)
	}
	// The conn goroutines decrement active on their way out; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for active != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		active = 0
		for i := 0; i < m.NumShards(); i++ {
			active += m.Shard(i).Conn.ConnsActive.Load()
		}
	}
	if active != 0 {
		t.Fatalf("active connections = %d after close, want 0", active)
	}
}

// rawClient is a zero-alloc loopback client for the alloc test and the
// benchmarks: prebuilt request bytes out, fixed-size responses back.
type rawClient struct {
	conn net.Conn
	req  []byte
	buf  []byte
}

func newRawClient(t testing.TB, addr, home string, sync bool) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Minute))
	body := eventBody("31", sync)
	return &rawClient{conn: conn, req: []byte(eventReq(home, body, false)), buf: make([]byte, 4096)}
}

// roundTrip sends n pipelined copies of the request and reads n responses,
// returning false on any non-2xx.
func (c *rawClient) roundTrip(n int) bool {
	for i := 0; i < n; i++ {
		if _, err := c.conn.Write(c.req); err != nil {
			return false
		}
	}
	got := 0
	fill := 0
	for got < n {
		m, err := c.conn.Read(c.buf[fill:])
		if err != nil {
			return false
		}
		fill += m
		// Responses are header-only; count terminators in place.
		for i := 0; i+3 < fill; i++ {
			if c.buf[i] == '\r' && c.buf[i+1] == '\n' && c.buf[i+2] == '\r' && c.buf[i+3] == '\n' {
				got++
				i += 3
			}
		}
		if got < n {
			continue
		}
		if c.buf[9] != '2' { // "HTTP/1.1 2xx"
			return false
		}
		fill = 0
	}
	return true
}

// TestRawRequestZeroAlloc is the tentpole's acceptance gate: the
// steady-state raw request path — parse, route, admit, body, decode, post,
// evaluate, respond — performs zero heap allocations per event, measured
// across the whole process (client included).
func TestRawRequestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	hub := newHub(t)
	seedHome(t, hub, "h")
	m := obs.New(1)
	sink := fleet.NewEventSink(hub, ingest.Limits{Rate: 1e9, Burst: 1e9})
	raw := rawhttp.NewServer(sink, rawhttp.WithMetrics(m))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go raw.Serve(ln)
	t.Cleanup(func() { _ = raw.Close() })

	// Sync events: the ack waits for evaluation, so the pooled event is
	// back in the pool before the next request — fully deterministic reuse.
	c := newRawClient(t, ln.Addr().String(), "h", true)
	for i := 0; i < 100; i++ { // warm pools, buffers, interned home, map sizes
		if !c.roundTrip(1) {
			t.Fatal("warmup round trip failed")
		}
	}
	if n := testing.AllocsPerRun(300, func() {
		if !c.roundTrip(1) {
			t.Fatal("round trip failed")
		}
	}); n != 0 {
		t.Fatalf("raw request path allocates %v/op, want 0", n)
	}
}

// BenchmarkRawServerRequest measures the raw transport end to end over
// loopback TCP with the zero-alloc client. Sync mode pins deterministic
// event-pool reuse (the allocs/op=0 CI gate reads these rows); pipelined
// batches 16 requests per write to show the batched-flush path.
func BenchmarkRawServerRequest(b *testing.B) {
	hub, err := fleet.NewHub(fleet.WithClock(testClock()), fleet.WithShards(1))
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()
	if err := hub.RegisterUser("h", "tom"); err != nil {
		b.Fatal(err)
	}
	if _, err := hub.Submit("h", hotRule, "tom"); err != nil {
		b.Fatal(err)
	}
	m := obs.New(1)
	sink := fleet.NewEventSink(hub, ingest.Limits{Rate: 1e9, Burst: 1e9})
	raw := rawhttp.NewServer(sink, rawhttp.WithMetrics(m))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go raw.Serve(ln)
	defer raw.Close()

	for _, bench := range []struct {
		name  string
		depth int
	}{{"sync", 1}, {"pipelined16", 16}} {
		b.Run(bench.name, func(b *testing.B) {
			c := newRawClient(b, ln.Addr().String(), "h", true)
			for i := 0; i < 32; i++ {
				if !c.roundTrip(bench.depth) {
					b.Fatal("warmup failed")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += bench.depth {
				if !c.roundTrip(bench.depth) {
					b.Fatal("round trip failed")
				}
			}
		})
	}
}
