package rawhttp

import (
	"context"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("rawhttp: server closed")

// errIdleClose marks a connection that went away between requests (EOF,
// idle timeout, or a shutdown poke) — closed silently, like net/http.
var errIdleClose = errors.New("rawhttp: idle connection closed")

// errHeadTooLarge answers a request head that outgrew the connection's
// read buffer (the configured header cap).
var errHeadTooLarge = &ParseError{Status: 431, Msg: "request head too large"}

// errTruncatedHead answers a connection that went EOF partway through a
// request head; net/http reports 400 here, not a silent close.
var errTruncatedHead = &ParseError{Status: 400, Msg: "unexpected EOF reading request head"}

// Sink is the transport-neutral event sink the server posts into.
// *ingest.Sink implements it, so the raw listener and the net/http handler
// share one admission budget, one body cap, and one error→status table.
type Sink interface {
	Admit(home string) (d ingest.Disposition, ok bool)
	Deliver(home string, ev *ingest.Event) ingest.Disposition
	MaxBody() int64
}

// Server is a raw-socket HTTP/1.1 listener serving exactly one route:
// POST /fleet/homes/{home}/events. Everything else answers 404/405 so a
// misdirected client fails loudly instead of silently hitting the wrong
// transport. See the package comment and README for what is deliberately
// not supported relative to net/http.
type Server struct {
	sink              Sink
	maxHeader         int
	maxBody           int64
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	metrics           *obs.Metrics

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	accepted  atomic.Uint64
	shutdown  atomic.Bool

	// homes interns home-id bytes to strings so the steady-state request
	// path never allocates for the []byte→string conversion the sink,
	// admission and hub APIs need. Fleet membership bounds the table; the
	// cap below only guards against a hostile client inventing home names.
	homesMu sync.RWMutex
	homes   map[string]string
}

// maxInternedHomes bounds the intern table; past it, unseen home ids fall
// back to an allocating conversion (still correct, no longer zero-alloc).
const maxInternedHomes = 1 << 16

// Option configures NewServer.
type Option interface{ apply(*Server) }

type optionFunc func(*Server)

func (f optionFunc) apply(s *Server) { f(s) }

// WithMaxHeader caps the request head (request line + headers) in bytes;
// larger heads answer 431. Also the size of each connection's read buffer.
func WithMaxHeader(n int) Option {
	return optionFunc(func(s *Server) { s.maxHeader = n })
}

// WithReadHeaderTimeout bounds reading one request head.
func WithReadHeaderTimeout(d time.Duration) Option {
	return optionFunc(func(s *Server) { s.readHeaderTimeout = d })
}

// WithReadTimeout bounds each body read.
func WithReadTimeout(d time.Duration) Option {
	return optionFunc(func(s *Server) { s.readTimeout = d })
}

// WithWriteTimeout bounds each response flush.
func WithWriteTimeout(d time.Duration) Option {
	return optionFunc(func(s *Server) { s.writeTimeout = d })
}

// WithIdleTimeout bounds how long a keep-alive connection may sit between
// requests.
func WithIdleTimeout(d time.Duration) Option {
	return optionFunc(func(s *Server) { s.idleTimeout = d })
}

// WithMetrics records connection metrics into m's sharded Conn stripes,
// striped round-robin by accept order. Nil leaves the server unobserved.
func WithMetrics(m *obs.Metrics) Option {
	return optionFunc(func(s *Server) { s.metrics = m })
}

// noopConn absorbs metric writes when the server is unobserved, so the hot
// path carries no nil branches.
var noopConn obs.ConnMetrics

// NewServer builds a raw ingest server in front of sink.
func NewServer(sink Sink, opts ...Option) *Server {
	s := &Server{
		sink:              sink,
		maxHeader:         8 << 10,
		maxBody:           sink.MaxBody(),
		readHeaderTimeout: 5 * time.Second,
		readTimeout:       30 * time.Second,
		writeTimeout:      30 * time.Second,
		idleTimeout:       2 * time.Minute,
		listeners:         make(map[net.Listener]struct{}),
		conns:             make(map[*conn]struct{}),
		homes:             make(map[string]string),
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.maxHeader < 256 {
		s.maxHeader = 256
	}
	return s
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, one goroutine per connection, until
// Shutdown/Close. Accept errors during shutdown return ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	var pause time.Duration
	for {
		rwc, err := ln.Accept()
		if err != nil {
			if s.shutdown.Load() {
				return ErrServerClosed
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if pause == 0 {
					pause = 5 * time.Millisecond
				} else if pause *= 2; pause > time.Second {
					pause = time.Second
				}
				time.Sleep(pause)
				continue
			}
			return err
		}
		pause = 0
		c := s.newConn(rwc)
		go c.serve()
	}
}

func (s *Server) newConn(rwc net.Conn) *conn {
	cm := &noopConn
	if s.metrics != nil {
		cm = s.metrics.ConnShard(s.accepted.Add(1))
	}
	cm.ConnsAccepted.Inc()
	cm.ConnsActive.Add(1)
	c := &conn{srv: s, rwc: rwc, cm: cm, rbuf: make([]byte, s.maxHeader)}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return c
}

// Shutdown stops accepting, lets in-flight requests finish (their response
// carries Connection: close), and pokes idle keep-alive connections awake
// with an expired read deadline so they observe the drain instead of
// sleeping through it. The poke repeats on a short poll — a connection that
// goes idle between ticks is caught on the next one — so there is no missed
// wakeup. Remaining connections are force-closed when ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdown.Store(true)
	s.closeListeners()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	past := time.Unix(1, 0)
	for {
		s.mu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			if c.idle.Load() {
				c.rwc.SetReadDeadline(past)
			}
		}
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.closeConns()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close force-closes all listeners and connections.
func (s *Server) Close() error {
	s.shutdown.Store(true)
	s.closeListeners()
	s.closeConns()
	return nil
}

func (s *Server) closeListeners() {
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.rwc.Close()
	}
	s.mu.Unlock()
}

// internHome converts home-id bytes to a stable string without allocating
// in steady state: the compiler's map[string(b)] lookup special case makes
// the read path allocation-free, and each id pays its copy once fleet-wide.
func (s *Server) internHome(b []byte) string {
	s.homesMu.RLock()
	h, ok := s.homes[string(b)]
	s.homesMu.RUnlock()
	if ok {
		return h
	}
	s.homesMu.Lock()
	defer s.homesMu.Unlock()
	if h, ok = s.homes[string(b)]; ok {
		return h
	}
	h = string(b)
	if len(s.homes) < maxInternedHomes {
		s.homes[h] = h
	}
	return h
}

// conn is one accepted connection. The goroutine serving it owns every
// field; idle is the only cross-goroutine signal (read by Shutdown's poke
// loop).
type conn struct {
	srv *Server
	rwc net.Conn
	cm  *obs.ConnMetrics

	rbuf   []byte // fixed window, len == Server.maxHeader
	rs, re int    // unconsumed bytes are rbuf[rs:re]

	wbuf    []byte // pending responses, flushed before any blocking read
	scratch []byte // JSON error bodies, reused

	reqs uint64      // requests served on this connection
	idle atomic.Bool // parked between requests with an empty buffer

	// Single-entry home cache: an appliance's connection posts to one home,
	// so this usually short-circuits even the intern table's RLock.
	lastHomeB []byte
	lastHome  string
}

func (c *conn) serve() {
	defer func() {
		c.rwc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.cm.ConnsActive.Add(-1)
	}()
	var req Request
	for {
		n, err := c.readHead(&req)
		if err != nil {
			var pe *ParseError
			switch {
			case errors.As(err, &pe):
				c.cm.ParseErrors.Inc()
				c.writeError(pe.Status, 0, pe.Msg, true)
				c.flush()
			case err == errIdleClose:
				// Clean keep-alive departure: EOF, idle timeout, or a
				// shutdown poke. Nothing to answer.
			case isTimeout(err):
				c.cm.ReadTimeouts.Inc()
				if c.re > c.rs { // mid-head slowloris: answer like net/http
					c.wbuf = append(c.wbuf, resp408...)
					c.flush()
				}
			}
			return
		}
		c.rs += n
		if c.reqs > 0 {
			c.cm.KeepaliveReuse.Inc()
		}
		c.reqs++
		if c.srv.shutdown.Load() {
			// Drain: finish this in-flight request, tell the client.
			req.Close = true
		}
		if !c.handle(&req) {
			c.flush()
			return
		}
	}
}

// readHead reads and parses one request head, returning the bytes consumed.
// It flushes pending responses before every blocking read (a pipelining
// client that has stopped sending is owed its answers before we wait), and
// parks with the idle flag set when the buffer is empty so Shutdown can
// poke it.
func (c *conn) readHead(req *Request) (int, error) {
	for {
		if c.re > c.rs {
			n, err := ParseRequest(c.rbuf[c.rs:c.re], req)
			if err == nil {
				return n, nil
			}
			if err != ErrIncomplete {
				return 0, err
			}
		}
		if c.rs == c.re {
			c.rs, c.re = 0, 0
		} else if c.rs > 0 {
			c.re = copy(c.rbuf, c.rbuf[c.rs:c.re])
			c.rs = 0
		}
		if c.re == len(c.rbuf) { // head can't fit the configured cap
			return 0, errHeadTooLarge
		}
		if err := c.flush(); err != nil {
			return 0, err
		}
		empty := c.re == 0
		if empty {
			dl := c.srv.idleTimeout
			if c.reqs == 0 {
				dl = c.srv.readHeaderTimeout
			}
			c.rwc.SetReadDeadline(time.Now().Add(dl))
			c.idle.Store(true)
		} else {
			c.rwc.SetReadDeadline(time.Now().Add(c.srv.readHeaderTimeout))
		}
		n, err := c.rwc.Read(c.rbuf[c.re:])
		if empty {
			c.idle.Store(false)
		}
		c.re += n
		if err != nil {
			if n > 0 {
				continue // parse what arrived; the next read gets a fresh deadline
			}
			if empty {
				return 0, errIdleClose
			}
			if err == io.EOF {
				return 0, errTruncatedHead
			}
			return 0, err
		}
	}
}

// handle serves one parsed request and reports whether the connection may
// take another.
func (c *conn) handle(req *Request) bool {
	home, onRoute := MatchEventRoute(req.Target)
	if !onRoute {
		return c.reject(req, 404, 0, "not found")
	}
	if string(req.Method) != "POST" {
		return c.reject(req, 405, 0, "method not allowed")
	}
	hs := c.homeString(home)
	if d, ok := c.srv.sink.Admit(hs); !ok {
		return c.reject(req, d.Status, d.RetryAfter, d.Err.Error())
	}
	if req.ContentLength > c.srv.maxBody {
		return c.reject(req, 413, 0, ingest.ErrBodyTooLarge.Error())
	}
	if req.Expect100 {
		c.wbuf = append(c.wbuf, resp100...)
		if c.flush() != nil {
			return false
		}
	}
	ev := ingest.AcquireEvent()
	if cap(ev.Body) == 0 {
		ev.Body = make([]byte, 0, 512)
	}
	ev.Body = ev.Body[:0]
	var err error
	if req.Chunked {
		err = c.readChunked(&ev.Body, c.srv.maxBody)
	} else if req.ContentLength > 0 {
		err = c.readCL(&ev.Body, req.ContentLength)
	}
	if err != nil {
		ev.Release()
		return c.bodyReadFailed(err)
	}
	d := c.srv.sink.Deliver(hs, ev)
	return c.respond(req, d)
}

// homeString resolves home-id bytes to a string via the connection-local
// cache, falling back to the server-wide intern table.
func (c *conn) homeString(b []byte) string {
	if len(b) == len(c.lastHomeB) && string(b) == string(c.lastHomeB) {
		return c.lastHome
	}
	h := c.srv.internHome(b)
	c.lastHomeB = append(c.lastHomeB[:0], b...)
	c.lastHome = h
	return h
}

// bodyReadFailed maps a body-read error to a response and always ends the
// connection: the stream position is unknowable after a failed read, so
// resyncing for keep-alive is not safe. The statuses mirror what the
// net/http sink answers when its body read fails (400 for truncated or
// malformed framing, 413 over the cap), keeping transport parity even on
// broken streams.
func (c *conn) bodyReadFailed(err error) bool {
	switch {
	case errors.Is(err, ingest.ErrBodyTooLarge):
		c.writeError(413, 0, err.Error(), true)
	case isTimeout(err):
		c.cm.ReadTimeouts.Inc()
		c.writeError(400, 0, "reading body: timeout", true)
	default:
		var pe *ParseError
		if errors.As(err, &pe) { // malformed chunked framing
			c.cm.ParseErrors.Inc()
			c.writeError(pe.Status, 0, "reading body: "+pe.Msg, true)
		} else { // truncated body: early EOF or a mid-stream socket error
			c.writeError(400, 0, "reading body: "+err.Error(), true)
		}
	}
	c.flush()
	return false
}

// reject answers an error status for a request whose body we never wanted,
// draining the declared body so a keep-alive client stays in sync. The
// connection closes when draining is unsafe (chunked or oversized bodies,
// or an Expect: 100-continue client that is still waiting for permission
// and will never send the bytes we would wait on).
func (c *conn) reject(req *Request, status, retryAfter int, msg string) bool {
	keep := !req.Close
	if keep {
		keep = c.discardBody(req)
	}
	c.writeError(status, retryAfter, msg, !keep)
	return keep
}

// drainLimit caps how much rejected body we are willing to read to save a
// keep-alive connection (net/http uses the same order of magnitude).
const drainLimit = 256 << 10

func (c *conn) discardBody(req *Request) bool {
	if req.Expect100 || req.Chunked {
		return false
	}
	cl := req.ContentLength
	if cl <= 0 {
		return true
	}
	if cl > drainLimit {
		return false
	}
	// Consume buffered bytes first, then read the remainder into the (now
	// fully consumed) read buffer and throw it away.
	if buffered := int64(c.re - c.rs); buffered > 0 {
		take := buffered
		if take > cl {
			take = cl
		}
		c.rs += int(take)
		cl -= take
	}
	for cl > 0 {
		c.rwc.SetReadDeadline(time.Now().Add(c.srv.readTimeout))
		max := int64(len(c.rbuf))
		if max > cl {
			max = cl
		}
		n, err := c.rwc.Read(c.rbuf[:max])
		cl -= int64(n)
		if err != nil {
			if isTimeout(err) {
				c.cm.ReadTimeouts.Inc()
			}
			return false
		}
	}
	return true
}

// readCL appends exactly cl body bytes to *dst: buffered bytes first, the
// rest read straight off the socket into dst (no intermediate copy). dst's
// capacity is pooled with the event, so the steady state never grows it.
func (c *conn) readCL(dst *[]byte, cl int64) error {
	b := *dst
	if buffered := int64(c.re - c.rs); buffered > 0 {
		take := buffered
		if take > cl {
			take = cl
		}
		b = append(b, c.rbuf[c.rs:c.rs+int(take)]...)
		c.rs += int(take)
		cl -= take
	}
	for cl > 0 {
		if int64(cap(b)-len(b)) < cl {
			need := len(b) + int(cl)
			nb := make([]byte, len(b), need)
			copy(nb, b)
			b = nb
		}
		c.rwc.SetReadDeadline(time.Now().Add(c.srv.readTimeout))
		n, err := c.rwc.Read(b[len(b) : len(b)+int(cl)])
		b = b[:len(b)+n]
		cl -= int64(n)
		if err != nil {
			*dst = b
			return err
		}
	}
	*dst = b
	return nil
}

// Chunked-framing parse errors (the oracle's net/http answers 400 for all
// of these via the sink's body-read error path).
var (
	errBadChunkSize = &ParseError{Status: 400, Msg: "malformed chunk size"}
	errBadChunkEnd  = &ParseError{Status: 400, Msg: "malformed chunk terminator"}
)

// readChunked decodes a Transfer-Encoding: chunked body into *dst, bounded
// by max (overflow answers 413 like the Content-Length path). Chunk
// extensions are ignored; trailers are read and discarded.
func (c *conn) readChunked(dst *[]byte, max int64) error {
	b := *dst
	defer func() { *dst = b }()
	for {
		line, err := c.bodyLine()
		if err != nil {
			return err
		}
		if i := indexByte(line, ';'); i >= 0 { // chunk extension
			line = line[:i]
		}
		size, ok := parseChunkSize(trimOWS(line))
		if !ok {
			return errBadChunkSize
		}
		if size == 0 { // last chunk: discard trailers through the blank line
			for {
				line, err = c.bodyLine()
				if err != nil {
					return err
				}
				if len(line) == 0 {
					return nil
				}
			}
		}
		if int64(len(b))+size > max {
			return ingest.ErrBodyTooLarge
		}
		for size > 0 {
			if c.rs == c.re {
				if err := c.fillBody(); err != nil {
					return err
				}
			}
			take := int64(c.re - c.rs)
			if take > size {
				take = size
			}
			b = append(b, c.rbuf[c.rs:c.rs+int(take)]...)
			c.rs += int(take)
			size -= take
		}
		// Chunk data must be followed by CRLF (net/http is strict here too).
		if err := c.needBody(2); err != nil {
			return err
		}
		if c.rbuf[c.rs] != '\r' || c.rbuf[c.rs+1] != '\n' {
			return errBadChunkEnd
		}
		c.rs += 2
	}
}

// bodyLine returns the next CRLF/LF-terminated line of a chunked body,
// filling the buffer as needed. Lines longer than the read buffer are
// malformed by construction.
func (c *conn) bodyLine() ([]byte, error) {
	for {
		if i := indexByte(c.rbuf[c.rs:c.re], '\n'); i >= 0 {
			line := c.rbuf[c.rs : c.rs+i]
			c.rs += i + 1
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return line, nil
		}
		if err := c.fillBody(); err != nil {
			return nil, err
		}
	}
}

// needBody blocks until at least n unconsumed bytes are buffered.
func (c *conn) needBody(n int) error {
	for c.re-c.rs < n {
		if err := c.fillBody(); err != nil {
			return err
		}
	}
	return nil
}

// fillBody reads more body bytes into the buffer, compacting first. A full
// buffer with no consumable bytes means a chunk-size line longer than the
// header cap — hostile framing, rejected.
func (c *conn) fillBody() error {
	if c.rs == c.re {
		c.rs, c.re = 0, 0
	} else if c.rs > 0 {
		c.re = copy(c.rbuf, c.rbuf[c.rs:c.re])
		c.rs = 0
	}
	if c.re == len(c.rbuf) {
		return errBadChunkSize
	}
	c.rwc.SetReadDeadline(time.Now().Add(c.srv.readTimeout))
	n, err := c.rwc.Read(c.rbuf[c.re:])
	c.re += n
	if err != nil && n == 0 {
		return err
	}
	return nil
}

// parseChunkSize parses a hex chunk size; 16 digits bound the value below
// overflow (net/http errors on longer runs too).
func parseChunkSize(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var n int64
	for _, ch := range b {
		var d int64
		switch {
		case ch >= '0' && ch <= '9':
			d = int64(ch - '0')
		case ch >= 'a' && ch <= 'f':
			d = int64(ch-'a') + 10
		case ch >= 'A' && ch <= 'F':
			d = int64(ch-'A') + 10
		default:
			return 0, false
		}
		n = n<<4 | d
	}
	return n, true
}

// respond renders a delivery disposition. Success statuses are canned
// single-write byte slices; anything else carries the shared JSON error
// body. Keep-alive survives sink-level errors (a 409 duplicate should not
// cost the appliance its connection), matching the net/http transport.
func (c *conn) respond(req *Request, d ingest.Disposition) bool {
	if d.Err == nil {
		switch {
		case d.Status == 200 && !req.Close:
			c.wbuf = append(c.wbuf, resp200...)
		case d.Status == 200:
			c.wbuf = append(c.wbuf, resp200close...)
		case !req.Close:
			c.wbuf = append(c.wbuf, resp202...)
		default:
			c.wbuf = append(c.wbuf, resp202close...)
		}
		return !req.Close
	}
	c.writeError(d.Status, d.RetryAfter, d.Err.Error(), req.Close)
	return !req.Close
}

// Canned responses for the steady state: one append, no formatting.
var (
	resp100      = []byte("HTTP/1.1 100 Continue\r\n\r\n")
	resp200      = []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
	resp200close = []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
	resp202      = []byte("HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n")
	resp202close = []byte("HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
	resp408      = []byte("HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
)

// writeError appends an error response with the transport-shared JSON body
// into the write buffer. Everything formats by append; no fmt, no
// intermediate strings.
func (c *conn) writeError(status, retryAfter int, msg string, close bool) {
	c.scratch = ingest.AppendJSONError(c.scratch[:0], msg)
	c.wbuf = append(c.wbuf, "HTTP/1.1 "...)
	c.wbuf = appendStatusLine(c.wbuf, status)
	c.wbuf = append(c.wbuf, "\r\nContent-Type: application/json\r\n"...)
	if status == 405 {
		c.wbuf = append(c.wbuf, "Allow: POST\r\n"...)
	}
	if retryAfter > 0 {
		c.wbuf = append(c.wbuf, "Retry-After: "...)
		c.wbuf = strconv.AppendInt(c.wbuf, int64(retryAfter), 10)
		c.wbuf = append(c.wbuf, '\r', '\n')
	}
	c.wbuf = append(c.wbuf, "Content-Length: "...)
	c.wbuf = strconv.AppendInt(c.wbuf, int64(len(c.scratch)), 10)
	c.wbuf = append(c.wbuf, '\r', '\n')
	if close {
		c.wbuf = append(c.wbuf, "Connection: close\r\n"...)
	}
	c.wbuf = append(c.wbuf, '\r', '\n')
	c.wbuf = append(c.wbuf, c.scratch...)
}

// appendStatusLine appends "code reason" for the statuses the two ingest
// transports actually emit; unlisted codes get a bare reason (legal per
// RFC 7230 — the reason phrase is decorative).
func appendStatusLine(b []byte, status int) []byte {
	switch status {
	case 200:
		return append(b, "200 OK"...)
	case 202:
		return append(b, "202 Accepted"...)
	case 400:
		return append(b, "400 Bad Request"...)
	case 403:
		return append(b, "403 Forbidden"...)
	case 404:
		return append(b, "404 Not Found"...)
	case 405:
		return append(b, "405 Method Not Allowed"...)
	case 409:
		return append(b, "409 Conflict"...)
	case 413:
		return append(b, "413 Request Entity Too Large"...)
	case 417:
		return append(b, "417 Expectation Failed"...)
	case 422:
		return append(b, "422 Unprocessable Entity"...)
	case 429:
		return append(b, "429 Too Many Requests"...)
	case 431:
		return append(b, "431 Request Header Fields Too Large"...)
	case 500:
		return append(b, "500 Internal Server Error"...)
	case 501:
		return append(b, "501 Not Implemented"...)
	case 503:
		return append(b, "503 Service Unavailable"...)
	case 505:
		return append(b, "505 HTTP Version Not Supported"...)
	}
	b = strconv.AppendInt(b, int64(status), 10)
	return append(b, " Status"...)
}

// flush writes the pending response bytes. Called before every blocking
// read and at connection end, so pipelined responses batch into one write.
func (c *conn) flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	c.rwc.SetWriteDeadline(time.Now().Add(c.srv.writeTimeout))
	_, err := c.rwc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
