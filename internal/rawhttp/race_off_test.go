//go:build !race

package rawhttp

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = false
