package rawhttp

import (
	"errors"
	"strings"
	"testing"
)

// parseCase is one request head and its expected outcome. wantStatus 0
// means a successful parse; -1 means ErrIncomplete.
type parseCase struct {
	name       string
	in         string
	wantStatus int
	check      func(t *testing.T, req *Request, n int)
}

var parseCases = []parseCase{
	{
		name: "simple post",
		in:   "POST /fleet/homes/h1/events HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
		check: func(t *testing.T, req *Request, n int) {
			if string(req.Method) != "POST" || string(req.Target) != "/fleet/homes/h1/events" {
				t.Errorf("method/target = %q %q", req.Method, req.Target)
			}
			if req.ContentLength != 5 || req.Chunked || req.Close || req.Minor != 1 {
				t.Errorf("req = %+v", req)
			}
			if want := strings.Index("POST /fleet/homes/h1/events HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello", "hello"); n != want {
				t.Errorf("consumed %d, want %d (head only)", n, want)
			}
		},
	},
	{
		name: "bare lf lines",
		in:   "POST /x HTTP/1.1\nHost: x\nContent-Length: 0\n\n",
		check: func(t *testing.T, req *Request, n int) {
			if req.ContentLength != 0 {
				t.Errorf("ContentLength = %d", req.ContentLength)
			}
		},
	},
	{
		name: "case-insensitive headers",
		in:   "POST /x HTTP/1.1\r\nhOsT: x\r\ncOnTeNt-LeNgTh: 7\r\ncOnNeCtIoN: ClOsE\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if req.ContentLength != 7 || !req.Close {
				t.Errorf("req = %+v", req)
			}
		},
	},
	{
		name: "http10 implicit close",
		in:   "POST /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if !req.Close || req.Minor != 0 {
				t.Errorf("req = %+v", req)
			}
		},
	},
	{
		name: "http10 keep-alive",
		in:   "POST /x HTTP/1.0\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if req.Close {
				t.Error("explicit keep-alive should not close")
			}
		},
	},
	{
		name: "connection token list",
		in:   "POST /x HTTP/1.1\r\nHost: x\r\nConnection: foo, Close ,bar\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if !req.Close {
				t.Error("close token in list not found")
			}
		},
	},
	{
		name: "chunked overrides content-length",
		in:   "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\nTransfer-Encoding: chunked\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if !req.Chunked || req.ContentLength != -1 {
				t.Errorf("req = %+v", req)
			}
		},
	},
	{
		name: "expect 100-continue",
		in:   "POST /x HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if !req.Expect100 {
				t.Error("Expect100 not set")
			}
		},
	},
	{
		name: "identical duplicate content-length",
		in:   "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if req.ContentLength != 4 {
				t.Errorf("ContentLength = %d", req.ContentLength)
			}
		},
	},
	{
		name: "fold on untracked header",
		in:   "POST /x HTTP/1.1\r\nHost: x\r\nX-Custom: a\r\n  continued\r\nContent-Length: 0\r\n\r\n",
		check: func(t *testing.T, req *Request, n int) {
			if req.ContentLength != 0 {
				t.Errorf("ContentLength = %d", req.ContentLength)
			}
		},
	},

	// Rejections — statuses pinned to net/http's observed answers.
	{name: "empty request line", in: "\r\n\r\n", wantStatus: 400},
	{name: "no spaces", in: "POST\r\n\r\n", wantStatus: 400},
	{name: "double space", in: "POST  /x HTTP/1.1\r\nHost: x\r\n\r\n", wantStatus: 400},
	{name: "tab in method", in: "PO\tST /x HTTP/1.1\r\nHost: x\r\n\r\n", wantStatus: 400},
	{name: "bad proto", in: "POST /x XTTP/1.1\r\nHost: x\r\n\r\n", wantStatus: 400},
	{name: "http2", in: "POST /x HTTP/2.0\r\nHost: x\r\n\r\n", wantStatus: 505},
	{name: "http09", in: "POST /x HTTP/0.9\r\nHost: x\r\n\r\n", wantStatus: 505},
	{name: "missing host http11", in: "POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n", wantStatus: 400},
	{name: "duplicate host", in: "POST /x HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n", wantStatus: 400},
	{name: "cl not digits", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 4x\r\n\r\n", wantStatus: 400},
	{name: "cl negative", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: -1\r\n\r\n", wantStatus: 400},
	{name: "cl plus sign", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: +2\r\n\r\n", wantStatus: 400},
	{name: "cl empty", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length:\r\n\r\n", wantStatus: 400},
	{name: "cl overflow", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 9999999999999999999\r\n\r\n", wantStatus: 400},
	{name: "conflicting content-length", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n", wantStatus: 400},
	{name: "unknown transfer-encoding", in: "POST /x HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: gzip\r\n\r\n", wantStatus: 501},
	{name: "bad expect", in: "POST /x HTTP/1.1\r\nHost: x\r\nExpect: tomorrow\r\n\r\n", wantStatus: 417},
	{name: "header no colon", in: "POST /x HTTP/1.1\r\nHost: x\r\nBadHeader\r\n\r\n", wantStatus: 400},
	{name: "space in header name", in: "POST /x HTTP/1.1\r\nHost: x\r\nBad Header: v\r\n\r\n", wantStatus: 400},
	{name: "space before colon", in: "POST /x HTTP/1.1\r\nHost: x\r\nBad : v\r\n\r\n", wantStatus: 400},
	{name: "empty header name", in: "POST /x HTTP/1.1\r\nHost: x\r\n: v\r\n\r\n", wantStatus: 400},
	{name: "fold on framing header", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n 2\r\n\r\n", wantStatus: 400},

	// Incomplete heads: the caller should keep reading.
	{name: "empty buffer", in: "", wantStatus: -1},
	{name: "partial request line", in: "POST /fleet/home", wantStatus: -1},
	{name: "no blank line yet", in: "POST /x HTTP/1.1\r\nHost: x\r\n", wantStatus: -1},
	{name: "partial header line", in: "POST /x HTTP/1.1\r\nHost: x\r\nContent-Le", wantStatus: -1},
}

func TestParseRequest(t *testing.T) {
	for _, tc := range parseCases {
		t.Run(tc.name, func(t *testing.T) {
			var req Request
			n, err := ParseRequest([]byte(tc.in), &req)
			switch {
			case tc.wantStatus == -1:
				if err != ErrIncomplete {
					t.Fatalf("err = %v, want ErrIncomplete", err)
				}
			case tc.wantStatus == 0:
				if err != nil {
					t.Fatalf("err = %v, want success", err)
				}
				if tc.check != nil {
					tc.check(t, &req, n)
				}
			default:
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v, want *ParseError", err)
				}
				if pe.Status != tc.wantStatus {
					t.Fatalf("status = %d (%s), want %d", pe.Status, pe.Msg, tc.wantStatus)
				}
			}
		})
	}
}

// TestParseRequestIncremental feeds a head one byte at a time: every prefix
// must answer ErrIncomplete, then the full head parses, and the consumed
// count must not swallow body bytes.
func TestParseRequestIncremental(t *testing.T) {
	const head = "POST /fleet/homes/kitchen/events HTTP/1.1\r\nHost: hub\r\nContent-Length: 2\r\n\r\n"
	full := head + "okEXTRA"
	var req Request
	for i := 0; i < len(head); i++ {
		if _, err := ParseRequest([]byte(full[:i]), &req); err != ErrIncomplete {
			t.Fatalf("prefix %d: err = %v, want ErrIncomplete", i, err)
		}
	}
	n, err := ParseRequest([]byte(full), &req)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(head) {
		t.Fatalf("consumed %d, want %d", n, len(head))
	}
}

func TestMatchEventRoute(t *testing.T) {
	cases := []struct {
		target string
		home   string
		ok     bool
	}{
		{"/fleet/homes/h1/events", "h1", true},
		{"/fleet/homes/h1/events?sync=1", "h1", true},
		{"/fleet/homes/kitchen-2/events", "kitchen-2", true},
		{"/fleet/homes//events", "", false},       // empty home
		{"/fleet/homes/a/b/events", "", false},    // slash in home
		{"/fleet/homes/h%31/events", "", false},   // percent-escapes refused
		{"/fleet/homes/h1/event", "", false},      // wrong suffix
		{"/fleet/homes/h1/events/", "", false},    // trailing slash
		{"/fleet/home/h1/events", "", false},      // wrong prefix
		{"/metrics", "", false},
		{"/", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		home, ok := MatchEventRoute([]byte(tc.target))
		if ok != tc.ok || string(home) != tc.home {
			t.Errorf("MatchEventRoute(%q) = %q, %v; want %q, %v", tc.target, home, ok, tc.home, tc.ok)
		}
	}
}

func TestParseRequestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	in := []byte("POST /fleet/homes/h1/events HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello")
	bad := []byte("POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n")
	var req Request
	if n := testing.AllocsPerRun(200, func() {
		if _, err := ParseRequest(in, &req); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseRequest(bad, &req); err == nil {
			t.Fatal("bad head parsed")
		}
	}); n != 0 {
		t.Fatalf("ParseRequest allocates %v/op, want 0 (reject path included)", n)
	}
}

// FuzzParseRequest hammers the head parser with mutated heads. Invariants:
// no panic, consumed bytes stay within the buffer and cover at least the
// blank line when the parse succeeds, and a successful parse yields a valid
// method token and a sane length.
func FuzzParseRequest(f *testing.F) {
	for _, tc := range parseCases {
		f.Add([]byte(tc.in))
	}
	f.Add([]byte("POST /fleet/homes/h1/events HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"))
	f.Add([]byte("GET /metrics HTTP/1.0\r\n\r\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		var req Request
		n, err := ParseRequest(in, &req)
		if err != nil {
			if err != ErrIncomplete {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("non-ParseError failure: %v", err)
				}
				switch pe.Status {
				case 400, 417, 501, 505:
				default:
					t.Fatalf("unexpected reject status %d", pe.Status)
				}
			}
			return
		}
		if n <= 0 || n > len(in) {
			t.Fatalf("consumed %d of %d", n, len(in))
		}
		if !validToken(req.Method) {
			t.Fatalf("invalid method %q accepted", req.Method)
		}
		if len(req.Target) == 0 {
			t.Fatal("empty target accepted")
		}
		if req.ContentLength < -1 {
			t.Fatalf("negative length %d", req.ContentLength)
		}
		if req.Chunked && req.ContentLength != -1 {
			t.Fatal("chunked must drop Content-Length")
		}
		// The head must end in a blank line exactly at the consumed offset.
		tail := in[:n]
		if !(len(tail) >= 2 && tail[len(tail)-1] == '\n') {
			t.Fatalf("head does not end at a line boundary: %q", tail)
		}
	})
}
