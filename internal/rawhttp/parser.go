// Package rawhttp is the fleet's raw-socket HTTP/1.1 ingest front end: a
// minimal server for the one route that matters at fleet scale —
// POST /fleet/homes/{home}/events — that takes the wire path past net/http.
//
// net/http spends the ingest budget before the sink ever runs: an
// *http.Request and header map per request, canonicalized header strings, a
// bufio pair per connection, and response bookkeeping. This package replaces
// that front door for the hot route only: each connection goroutine owns one
// reusable read buffer and one reusable write buffer, the request head is
// parsed in place as byte slices (case-insensitive header matches without
// canonicalization, no maps, no strings), the body lands directly in a
// pooled ingest.Event, and responses are canned status lines. The
// steady-state request path allocates nothing.
//
// The net/http transport stays registered on the stock API server as the
// behavioral oracle: the same bytes must produce the same statuses and the
// same engine-observed state on either path (see the parity suites in
// server_test.go and internal/rawhttp/README.md for what is deliberately
// not supported).
package rawhttp

import (
	"errors"
	"strconv"
)

// ErrIncomplete reports that the buffer does not yet hold a full request
// head (no terminating blank line); the caller should read more bytes.
var ErrIncomplete = errors.New("rawhttp: incomplete request head")

// ParseError reports a malformed request head and the HTTP status the
// connection answers before closing.
type ParseError struct {
	Status int
	Msg    string
}

func (e *ParseError) Error() string {
	return "rawhttp: " + strconv.Itoa(e.Status) + " " + e.Msg
}

// Preallocated parse errors: the parser itself never allocates, not even on
// the reject path — a fuzzer or a hostile peer churning malformed heads
// should not be able to make the server allocate per attempt.
var (
	errBadRequestLine = &ParseError{Status: 400, Msg: "malformed request line"}
	errBadVersion     = &ParseError{Status: 505, Msg: "unsupported HTTP version"}
	errBadHeader      = &ParseError{Status: 400, Msg: "malformed header line"}
	errBadLength      = &ParseError{Status: 400, Msg: "bad Content-Length"}
	errLengthConflict = &ParseError{Status: 400, Msg: "conflicting Content-Length headers"}
	errUnsupportedTE  = &ParseError{Status: 501, Msg: "unsupported transfer encoding"}
	errMissingHost    = &ParseError{Status: 400, Msg: "missing required Host header"}
	errManyHosts      = &ParseError{Status: 400, Msg: "multiple Host headers"}
	errBadExpect      = &ParseError{Status: 417, Msg: "unsupported Expect"}
	errBadFold        = &ParseError{Status: 400, Msg: "folded framing header"}
)

// Request is one parsed HTTP/1.1 request head. Every byte-slice field
// aliases the connection's read buffer: it is valid until the next request
// is read on that connection and must not be retained.
type Request struct {
	Method []byte
	Target []byte // origin-form request target, query included
	Minor  int    // protocol minor version: HTTP/1.Minor

	// ContentLength is the declared body length; -1 means no
	// Content-Length header was present. Ignored when Chunked.
	ContentLength int64
	// Chunked marks a Transfer-Encoding: chunked body.
	Chunked bool
	// Close reports whether the connection must close after this exchange:
	// an explicit Connection: close, or HTTP/1.0 without keep-alive.
	Close bool
	// Expect100 marks Expect: 100-continue; the server owes an interim 100
	// before it reads the body.
	Expect100 bool
}

// ParseRequest parses one request head from buf in a single forward scan,
// filling req with slices into buf. It returns the number of bytes consumed
// through the head's terminating blank line. ErrIncomplete means buf does
// not yet hold a complete head; a *ParseError carries the status to answer
// before closing. Grammar quirks mirror net/http where they matter for
// transport parity: bare-LF line endings are accepted, header names must be
// valid tokens, Content-Length must be all digits with conflicting repeats
// rejected (identical repeats allowed), chunked overrides Content-Length,
// HTTP/1.1 requires a Host header, and folded continuation lines are
// tolerated only for headers the framing does not depend on.
func ParseRequest(buf []byte, req *Request) (int, error) {
	*req = Request{ContentLength: -1}

	p, n, ok := nextLine(buf, 0)
	if !ok {
		return 0, ErrIncomplete
	}
	if err := parseRequestLine(buf[:n], req); err != nil {
		return 0, err
	}

	var (
		keepAlive bool   // explicit Connection: keep-alive (HTTP/1.0)
		hasHost   bool   // at least one Host header seen
		sawCL     bool   // a Content-Length header already parsed
		lastFramy bool   // previous header line was framing-sensitive
	)
	for {
		lineStart := p
		var lineEnd int
		p, lineEnd, ok = nextLine(buf, p)
		if !ok {
			return 0, ErrIncomplete
		}
		line := buf[lineStart:lineEnd]
		if len(line) == 0 { // blank line: end of head
			break
		}
		if line[0] == ' ' || line[0] == '\t' {
			// Obsolete line folding: net/http splices the continuation into
			// the previous value. We never need multi-line values for the
			// event route, so continuations of untracked headers are
			// skipped; a fold that would extend a framing header is
			// ambiguous and refused.
			if lastFramy {
				return 0, errBadFold
			}
			continue
		}
		colon := indexByte(line, ':')
		if colon <= 0 {
			return 0, errBadHeader
		}
		name := line[:colon]
		if !validToken(name) {
			return 0, errBadHeader
		}
		value := trimOWS(line[colon+1:])
		lastFramy = true
		switch {
		case foldEq(name, "content-length"):
			cl, ok := parseContentLength(value)
			if !ok {
				return 0, errBadLength
			}
			if sawCL && cl != req.ContentLength {
				return 0, errLengthConflict
			}
			sawCL = true
			req.ContentLength = cl
		case foldEq(name, "transfer-encoding"):
			if !foldEq(value, "chunked") {
				return 0, errUnsupportedTE
			}
			req.Chunked = true
		case foldEq(name, "connection"):
			closeTok, kaTok := connectionTokens(value)
			req.Close = req.Close || closeTok
			keepAlive = keepAlive || kaTok
		case foldEq(name, "host"):
			if hasHost {
				return 0, errManyHosts
			}
			hasHost = true
		case foldEq(name, "expect"):
			if !foldEq(value, "100-continue") {
				return 0, errBadExpect
			}
			req.Expect100 = true
		default:
			lastFramy = false
		}
	}

	if req.Minor == 0 {
		// HTTP/1.0 closes by default; an explicit keep-alive keeps it open.
		req.Close = req.Close || !keepAlive
	} else if !hasHost {
		return 0, errMissingHost
	}
	if req.Chunked {
		// RFC 7230 §3.3.3: chunked wins over Content-Length (net/http
		// likewise drops the length).
		req.ContentLength = -1
	}
	return p, nil
}

// parseRequestLine fills Method/Target/Minor from "METHOD SP target SP
// HTTP/1.x". Single spaces only, like net/http's strict split.
func parseRequestLine(line []byte, req *Request) error {
	sp1 := indexByte(line, ' ')
	if sp1 <= 0 {
		return errBadRequestLine
	}
	rest := line[sp1+1:]
	sp2 := indexByte(rest, ' ')
	if sp2 <= 0 {
		return errBadRequestLine
	}
	method, target, proto := line[:sp1], rest[:sp2], rest[sp2+1:]
	if !validToken(method) || len(target) == 0 {
		return errBadRequestLine
	}
	minor, err := parseVersion(proto)
	if err != nil {
		return err
	}
	req.Method = method
	req.Target = target
	req.Minor = minor
	return nil
}

// parseVersion accepts exactly HTTP/1.0 and HTTP/1.1; well-formed HTTP/D.D
// of any other version answers 505 (as net/http does for HTTP/2.0 and
// HTTP/0.9 request lines), anything else 400.
func parseVersion(proto []byte) (minor int, err error) {
	if len(proto) != 8 || string(proto[:5]) != "HTTP/" ||
		proto[6] != '.' || proto[5] < '0' || proto[5] > '9' || proto[7] < '0' || proto[7] > '9' {
		return 0, errBadRequestLine
	}
	if proto[5] != '1' {
		return 0, errBadVersion
	}
	switch proto[7] {
	case '0':
		return 0, nil
	case '1':
		return 1, nil
	}
	return 0, errBadVersion
}

// nextLine finds the next LF from p and returns the scan position just past
// it plus the index past the line's content (terminator stripped — CRLF or
// bare LF, both of which net/http accepts). ok is false when no full line
// is buffered yet.
func nextLine(buf []byte, p int) (next, contentEnd int, ok bool) {
	i := indexByte(buf[p:], '\n')
	if i < 0 {
		return p, 0, false
	}
	end := p + i
	if end > p && buf[end-1] == '\r' {
		end--
	}
	return p + i + 1, end, true
}

// parseContentLength parses an all-digit length. Empty values, signs,
// whitespace and overflow are rejected, mirroring net/http's strict digits.
func parseContentLength(v []byte) (int64, bool) {
	if len(v) == 0 || len(v) > 18 { // 18 digits < 2^63, far beyond any real body
		return 0, false
	}
	var n int64
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// connectionTokens scans a Connection header's comma-separated token list
// for close and keep-alive.
func connectionTokens(v []byte) (closeTok, keepAlive bool) {
	for len(v) > 0 {
		item := v
		if i := indexByte(v, ','); i >= 0 {
			item, v = v[:i], v[i+1:]
		} else {
			v = nil
		}
		item = trimOWS(item)
		if foldEq(item, "close") {
			closeTok = true
		} else if foldEq(item, "keep-alive") {
			keepAlive = true
		}
	}
	return closeTok, keepAlive
}

// MatchEventRoute reports whether target is the event fast route
// POST /fleet/homes/{home}/events and returns the home id bytes. The match
// is exact: no path cleaning, no trailing slash, and percent-escapes in the
// home segment are refused rather than decoded (net/http would decode them;
// the raw path serves only literal home ids — see README).
func MatchEventRoute(target []byte) (home []byte, ok bool) {
	if i := indexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	const prefix = "/fleet/homes/"
	const suffix = "/events"
	if len(target) < len(prefix)+1+len(suffix) ||
		string(target[:len(prefix)]) != prefix ||
		string(target[len(target)-len(suffix):]) != suffix {
		return nil, false
	}
	home = target[len(prefix) : len(target)-len(suffix)]
	for _, c := range home {
		if c == '/' || c == '%' {
			return nil, false
		}
	}
	return home, true
}

// indexByte is bytes.IndexByte without the import (the compiler lowers this
// loop shape to the same vectorized scan for the short lines seen here).
func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// trimOWS strips optional whitespace (SP / HTAB) from both ends of a header
// value.
func trimOWS(v []byte) []byte {
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return v
}

// foldEq reports whether b ASCII-case-insensitively equals the lowercase
// literal s — the header match that replaces net/http's canonicalization.
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// isTokenChar is the RFC 7230 tchar set.
var isTokenChar = [256]bool{}

func init() {
	for c := '0'; c <= '9'; c++ {
		isTokenChar[c] = true
	}
	for c := 'a'; c <= 'z'; c++ {
		isTokenChar[c] = true
	}
	for c := 'A'; c <= 'Z'; c++ {
		isTokenChar[c] = true
	}
	for _, c := range "!#$%&'*+-.^_`|~" {
		isTokenChar[c] = true
	}
}

func validToken(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, c := range b {
		if !isTokenChar[c] {
			return false
		}
	}
	return true
}
