//go:build race

package rawhttp_test

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = true
