package engine

import (
	"fmt"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
)

// Firing trace: a bounded ring of structured pass records answering "why did
// this device switch to that rule". Capture runs on the interned pass under
// the engine lock with every ring slot's slices reused in place (lengths
// truncated, capacities retained), so once the ring has cycled a
// steady-state pass records its trace without allocating. Recorded strings
// are the symbol interner's (dirty keys) and the rules' own (ids, owners) —
// string headers copy for free and stay valid across compaction epochs,
// which renumber ids but never mutate interned strings.
//
// Per-record caps bound a slot's footprint against pathological passes (an
// allDirty pass over 10k rules); overflow sets the record's truncated flag
// instead of growing without bound.
const (
	traceMaxDirty  = 32
	traceMaxCands  = 64
	traceMaxDecs   = 32
	traceMaxLosers = 16
)

// traceRing is the fixed-capacity record ring. Slots are preallocated so the
// only steady-state growth is each slot's slice capacities during the first
// cycle through the ring.
type traceRing struct {
	recs []passRec
	next int    // slot the next record claims
	n    int    // filled slots
	seq  uint64 // records ever started (monotonic pass trace id)
}

func newTraceRing(n int) *traceRing {
	return &traceRing{recs: make([]passRec, n)}
}

// passRec is one captured pass.
type passRec struct {
	seq       uint64
	at        time.Time
	allDirty  bool
	truncated bool
	dirty     []string
	cands     []string
	decs      []passDec
}

// passDec is one device's arbitration outcome within a pass.
type passDec struct {
	devName, devLoc     string
	winner, winnerOwner string
	rank                int
	orderCtx            string
	ordered             bool
	sole                bool
	fired               bool
	losers              []passLoser
}

type passLoser struct{ id, owner string }

// start claims the next slot, truncating its slices in place so their
// capacity carries over to the new record.
func (tr *traceRing) start(at time.Time, allDirty bool) *passRec {
	r := &tr.recs[tr.next]
	tr.next++
	if tr.next == len(tr.recs) {
		tr.next = 0
	}
	if tr.n < len(tr.recs) {
		tr.n++
	}
	tr.seq++
	r.seq = tr.seq
	r.at = at
	r.allDirty = allDirty
	r.truncated = false
	r.dirty = r.dirty[:0]
	r.cands = r.cands[:0]
	r.decs = r.decs[:0]
	return r
}

func (r *passRec) addDirty(name string) {
	if len(r.dirty) >= traceMaxDirty {
		r.truncated = true
		return
	}
	r.dirty = append(r.dirty, name)
}

func (r *passRec) addCand(id string) {
	if len(r.cands) >= traceMaxCands {
		r.truncated = true
		return
	}
	r.cands = append(r.cands, id)
}

// addDec claims the next decision slot. A previously used slot's loser slice
// must survive the reset (an appended passDec{} literal would overwrite its
// capacity with nil), so the slice is re-lengthened in place when capacity
// allows.
func (r *passRec) addDec() *passDec {
	if len(r.decs) >= traceMaxDecs {
		r.truncated = true
		return nil
	}
	if n := len(r.decs); n < cap(r.decs) {
		r.decs = r.decs[:n+1]
	} else {
		r.decs = append(r.decs, passDec{})
	}
	d := &r.decs[len(r.decs)-1]
	losers := d.losers[:0]
	*d = passDec{losers: losers}
	return d
}

func (d *passDec) setDevice(ref core.DeviceRef) {
	d.devName, d.devLoc = ref.Name, ref.Location
}

// setOutcome records the winner scan's result: winner identity, the
// applicable order and rank from the explain, and every losing contender.
func (d *passDec) setOutcome(winner *core.Rule, ex conflict.Explain, list []*core.Rule) {
	d.winner, d.winnerOwner = winner.ID, winner.Owner
	d.rank, d.ordered, d.orderCtx = ex.Rank, ex.Ordered, ex.Context
	d.sole = len(list) == 1
	for _, r := range list {
		if r == winner {
			continue
		}
		if len(d.losers) >= traceMaxLosers {
			break
		}
		d.losers = append(d.losers, passLoser{r.ID, r.Owner})
	}
}

// ---- exported snapshot ----

// PassTrace is one evaluation pass as captured by the firing-trace ring
// (WithTrace): the dirty dependency keys that triggered it, the candidate
// rules re-checked, and each reconciled device's arbitration outcome.
type PassTrace struct {
	Seq        uint64          `json:"seq"`
	Time       time.Time       `json:"time"`
	AllDirty   bool            `json:"all_dirty,omitempty"`
	Truncated  bool            `json:"truncated,omitempty"`
	Dirty      []string        `json:"dirty,omitempty"`
	Candidates []string        `json:"candidates,omitempty"`
	Decisions  []TraceDecision `json:"decisions,omitempty"`
}

// TraceDecision is one device's arbitration outcome: the winning rule (empty
// when every ready rule lapsed and the device lost its owner), the rules it
// beat, and a rendered reason — which priority order applied and where the
// winning owner ranks in it. Fired marks the decisions that changed
// ownership (dispatched an action or cleared the owner).
type TraceDecision struct {
	Device string       `json:"device"`
	Winner string       `json:"winner,omitempty"`
	Owner  string       `json:"owner,omitempty"`
	Reason string       `json:"reason"`
	Fired  bool         `json:"fired,omitempty"`
	Losers []TraceLoser `json:"losers,omitempty"`
}

// TraceLoser is a ready rule that lost arbitration.
type TraceLoser struct {
	Rule  string `json:"rule"`
	Owner string `json:"owner"`
}

// reason renders the arbitration explanation for a decision.
func (d *passDec) reason() string {
	label := "default"
	if d.orderCtx != "" {
		label = fmt.Sprintf("contextual %q", d.orderCtx)
	}
	switch {
	case d.winner == "":
		return "no ready rule remains; device released"
	case !d.ordered && d.sole:
		return "sole ready rule"
	case !d.ordered:
		return "no priority order applies; registration order decides"
	case d.rank < 0 && d.sole:
		return fmt.Sprintf("sole ready rule (owner %q unranked in the %s order)", d.winnerOwner, label)
	case d.rank < 0:
		return fmt.Sprintf("owner %q unlisted in the %s order; registration order decides among unranked owners", d.winnerOwner, label)
	default:
		return fmt.Sprintf("owner %q ranks #%d in the %s priority order", d.winnerOwner, d.rank+1, label)
	}
}

// TraceSnapshot returns the ring's records, oldest first. It allocates
// freely (it is a read endpoint, not the firing path) and renders each
// decision's reason string at snapshot time. Nil when tracing is disabled
// or the engine runs a string-keyed oracle mode.
func (e *Engine) TraceSnapshot() []PassTrace {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tr == nil {
		return nil
	}
	tr := e.tr
	out := make([]PassTrace, 0, tr.n)
	start := tr.next - tr.n
	if start < 0 {
		start += len(tr.recs)
	}
	for i := 0; i < tr.n; i++ {
		r := &tr.recs[(start+i)%len(tr.recs)]
		p := PassTrace{
			Seq:        r.seq,
			Time:       r.at,
			AllDirty:   r.allDirty,
			Truncated:  r.truncated,
			Dirty:      append([]string(nil), r.dirty...),
			Candidates: append([]string(nil), r.cands...),
		}
		for j := range r.decs {
			d := &r.decs[j]
			td := TraceDecision{
				Device: core.DeviceRef{Name: d.devName, Location: d.devLoc}.Key(),
				Winner: d.winner,
				Owner:  d.winnerOwner,
				Reason: d.reason(),
				Fired:  d.fired,
			}
			for _, l := range d.losers {
				td.Losers = append(td.Losers, TraceLoser{Rule: l.id, Owner: l.owner})
			}
			p.Decisions = append(p.Decisions, td)
		}
		out = append(out, p)
	}
	return out
}
