package engine

import (
	"errors"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// This file is the engine's half of live home migration (internal/ring):
// exporting the volatile evaluation state that the durable store records do
// not carry — context values, arrival/hold timestamps, the fired-action log —
// and importing it on a target engine without re-firing anything.
//
// The correctness argument is that arbitration is memoryless: a device's
// owner is a pure function of the current context, the registered rules and
// the priority table (internedPassLocked recomputes readiness from
// ReadyBound and the owner from ArbitrateWinner every time the device is
// touched). So a target that (a) replays the durable records, (b) restores
// the volatile context with its original timestamps, and (c) runs one full
// reconciliation pass in quiet mode reaches exactly the ownership state the
// source had — and the next real event behaves as if the home never moved.

// StateExport is one home engine's volatile state, JSON-serializable for the
// migration transfer stream. Users, favorites, rules, words and priorities
// are NOT here: they ride in the durable fleet.Store records.
type StateExport struct {
	Now      time.Time     `json:"now"`
	EventTTL time.Duration `json:"event_ttl,omitempty"`

	Numbers   map[string]float64   `json:"numbers,omitempty"`
	Bools     map[string]bool      `json:"bools,omitempty"`
	Locations map[string]string    `json:"locations,omitempty"`
	Events    map[string]time.Time `json:"events,omitempty"` // "person|event" → arrival time
	Held      map[string]time.Time `json:"held,omitempty"`   // duration-hold key → since
	Programs  []core.Program       `json:"programs,omitempty"`

	Log []LogEntry `json:"log,omitempty"` // fired-action history, oldest first
}

// LogEntry is one Fired entry with rules flattened to their ids; the importer
// resolves them against the target's (already replayed) rule database.
type LogEntry struct {
	Time       time.Time `json:"time"`
	Rule       string    `json:"rule"`
	Suppressed []string  `json:"suppressed,omitempty"`
	Err        string    `json:"err,omitempty"`
}

// SetQuiet switches the engine in or out of quiet mode. A quiet pass updates
// readiness, holds and device ownership exactly like a normal pass, but
// dispatches nothing, logs nothing, traces nothing and publishes no metrics —
// it is invisible to every observer. Migration import runs the whole durable
// replay and the final reconciliation under quiet so that rules whose
// conditions already hold (they fired once on the source; the log proves it)
// are adopted as current owners instead of firing a second time.
func (e *Engine) SetQuiet(q bool) {
	e.mu.Lock()
	e.quiet = q
	e.mu.Unlock()
}

// ExportState snapshots the engine's volatile state for migration. The
// caller must have drained the home's event stream first (the fleet hub runs
// this on the shard goroutine after a quiesce barrier).
func (e *Engine) ExportState() *StateExport {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.ctx.Clone()
	st := &StateExport{
		Now:      c.Now,
		EventTTL: c.EventTTL,
		Programs: c.Programs,
	}
	if len(c.Numbers) > 0 {
		st.Numbers = c.Numbers
	}
	if len(c.Bools) > 0 {
		st.Bools = c.Bools
	}
	if len(c.Locations) > 0 {
		st.Locations = c.Locations
	}
	if len(c.Events) > 0 {
		st.Events = c.Events
	}
	if len(c.Held) > 0 {
		st.Held = c.Held
	}
	for _, f := range e.log {
		le := LogEntry{Time: f.Time, Rule: f.Rule.ID}
		for _, s := range f.Suppressed {
			le.Suppressed = append(le.Suppressed, s.ID)
		}
		if f.Err != nil {
			le.Err = f.Err.Error()
		}
		st.Log = append(st.Log, le)
	}
	return st
}

// ImportState restores volatile state exported by ExportState onto this
// engine and runs one quiet full-reconciliation pass, leaving device
// ownership identical to the exporter's without dispatching anything. The
// durable records (rules, users, words, priorities) must already be replayed;
// log entries whose rule id no longer resolves are dropped (a rule removed
// between export and a retried transfer cannot be re-materialized, and the
// log is observability, not state).
//
// The caller is expected to hold the engine in quiet mode across the whole
// import (SetQuiet(true) before replaying records, SetQuiet(false) after
// this returns), so no replay tick can fire either.
func (e *Engine) ImportState(st *StateExport) {
	e.mu.Lock()
	if st.EventTTL > 0 {
		e.ctx.EventTTL = st.EventTTL
	}
	// Values first, in sorted order so interning produces a deterministic id
	// layout for a given export.
	for _, k := range sortedKeys(st.Numbers) {
		e.ctx.SetNumber(k, st.Numbers[k])
	}
	for _, k := range sortedKeys(st.Bools) {
		e.ctx.SetBool(k, st.Bools[k])
	}
	for _, k := range sortedKeys(st.Locations) {
		e.ctx.SetLocation(k, st.Locations[k])
	}
	// Events and holds store "now" at record time, so the import rewinds the
	// context clock per entry to preserve the original timestamps — TTL
	// expiry and duration conditions keep their exact deadlines.
	saved := e.ctx.Now
	for _, k := range sortedKeys(st.Events) {
		person, event, ok := strings.Cut(k, "|")
		if !ok || person == "" {
			continue
		}
		e.ctx.Now = st.Events[k]
		e.ctx.RecordEvent(person, event)
	}
	for _, k := range sortedKeys(st.Held) {
		e.ctx.Now = st.Held[k]
		e.ctx.MarkHeld(k)
	}
	e.ctx.Now = saved
	if len(st.Programs) > 0 {
		e.ctx.SetPrograms(st.Programs)
	}
	// Fired log: resolve rule ids against the replayed database.
	e.log = e.log[:0]
	for _, le := range st.Log {
		r, ok := e.db.Get(le.Rule)
		if !ok {
			continue
		}
		f := Fired{Time: le.Time, Rule: r}
		for _, sid := range le.Suppressed {
			if sr, ok := e.db.Get(sid); ok {
				f.Suppressed = append(f.Suppressed, sr)
			}
		}
		if le.Err != "" {
			f.Err = errors.New(le.Err)
		}
		e.log = append(e.log, f)
	}
	e.allDirty = true
	// One full reconciliation pass adopts ownership. evaluateLocked releases
	// the lock; with quiet set it fires nothing.
	e.evaluateLocked()
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
