package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// The churn-compaction equivalence suite: an interned engine with an
// aggressive compaction watermark (plus occasional forced epochs) paired
// against the string-keyed oracle over one shared rule database. The oracle
// never touches symbol ids, so it is oblivious to the renumbering; any
// id-holding state the remap misses — a bound condition, a readiness bit, a
// device owner, a dirty id, a priority-rank vector — diverges the fired
// logs or the owner maps at the next check.

// uniqueRule builds a rule whose variable, id and device names are unique to
// seq, the shape that grows a symtab without bound until compaction. The
// variable is a room-qualified temperature so a thermometer event at the
// rule's room (churnEvent) actually reaches it through the device mapping.
func uniqueRule(seq int, owner string) *core.Rule {
	return &core.Rule{
		ID:     fmt.Sprintf("churn-%d", seq),
		Owner:  owner,
		Device: core.DeviceRef{Name: fmt.Sprintf("churn-dev-%d", seq)},
		Action: core.Action{Verb: "turn-on"},
		Cond: &core.And{Terms: []core.Condition{
			&core.Compare{Var: fmt.Sprintf("churn-room-%d/temperature", seq), Op: simplex.GT, Value: 20},
			&core.Presence{Person: "tom", Place: "living room"},
		}},
	}
}

// churnEvent returns the thermometer event hitting uniqueRule(seq)'s
// variable.
func churnEvent(seq int, value string) (deviceType, name, location string, vars map[string]string) {
	return device.TypeThermometer, "thermometer", fmt.Sprintf("churn-room-%d", seq),
		map[string]string{"temperature": value}
}

// TestCompactionEquivalenceScripted interleaves unique-named rule churn,
// automatic and forced compaction epochs, and the full stimulus alphabet
// (sensor values, presence, arrivals, clock advances, priority edits) on the
// pair, checking logs and owners after every step.
func TestCompactionEquivalenceScripted(t *testing.T) {
	p := newEnginePairOpts(t, []Option{WithCompactFloor(16)}, []Option{WithStringKeys()})
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "stereo"}, Users: []string{"emily", "alan", "tom"}})
	p.each(func(e *Engine) { e.SetUsers([]string{"tom", "alan", "emily"}) })

	// A stable rule whose readiness the churn must never disturb. The
	// variable is qualified: an unqualified "temperature" would suffix-
	// resolve to the lexicographically smallest churn room instead.
	if err := p.db.Add(&core.Rule{
		ID: "stable", Owner: "alan", Device: core.DeviceRef{Name: "stereo"},
		Action: core.Action{Verb: "play"},
		Cond:   &core.Compare{Var: "living room/temperature", Op: simplex.GT, Value: 25},
	}); err != nil {
		t.Fatal(err)
	}
	p.event(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})
	p.event(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "30"})
	if owners := p.inc.Owners(); owners["stereo"] != "stable" {
		t.Fatalf("owners = %v, want stereo owned before churn", owners)
	}

	live := 0
	for seq := 0; seq < 200; seq++ {
		if err := p.db.Add(uniqueRule(seq, "tom")); err != nil {
			t.Fatal(err)
		}
		live++
		if live > 8 {
			if err := p.db.Remove(fmt.Sprintf("churn-%d", seq-8)); err != nil {
				t.Fatal(err)
			}
			live--
		}
		// Fire the freshest churn rule's variable every few steps so churned
		// state is exercised, not just registered.
		switch seq % 5 {
		case 0:
			p.event(churnEvent(seq, "30"))
		case 1:
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-tom": "living room"})
		case 2:
			p.advance(time.Minute)
		case 3:
			p.event(device.TypeThermometer, "thermometer", "living room",
				map[string]string{"temperature": fmt.Sprintf("%d", 20+seq%15)})
		default:
			p.each(func(e *Engine) { e.Tick() })
		}
		if seq%37 == 36 {
			// Forced epoch at a quiet point: both engines just evaluated, so
			// the extra pass inside CompactSymbols fires nothing.
			if _, ok := p.inc.CompactSymbols(); !ok {
				t.Fatalf("seq %d: forced compaction refused", seq)
			}
			p.check()
		}
	}
	st := p.inc.SymbolStats()
	if st.Epoch == 0 {
		t.Fatal("no compaction epoch ran; churn test is vacuous")
	}
	if st.Symbols > 400 {
		t.Fatalf("symtab still holds %d symbols after compacting churn of 200 rules (live %d)", st.Symbols, live)
	}
	// The stable rule must still hand the stereo over correctly after all
	// the renumbering.
	p.event(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "10"})
	if owners := p.inc.Owners(); owners["stereo"] != "" {
		t.Fatalf("owners = %v, want stereo released after temperature drop", owners)
	}
	p.event(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "28"})
	if owners := p.inc.Owners(); owners["stereo"] != "stable" {
		t.Fatalf("owners = %v, want stereo re-owned through post-compaction ids", owners)
	}
}

// TestCompactionEquivalenceRandom drives randomized churn + stimulus streams
// (several seeds) with automatic compaction on the interned side, asserting
// identical fired logs and owner maps after every step.
func TestCompactionEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runCompactionChurnScenario(t,
				newEnginePairOpts(t, []Option{WithCompactFloor(16)}, []Option{WithStringKeys()}), seed)
		})
	}
}

func runCompactionChurnScenario(t *testing.T, p *enginePair, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	people := []string{"tom", "alan", "emily"}
	places := []string{"living room", "kitchen", "hall", ""}
	p.each(func(e *Engine) { e.SetUsers(people) })
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"tom", "alan", "emily"}})

	// Contending rules on one device keep arbitration (and the owner-rank
	// cache the compaction invalidates) in play throughout.
	for i, who := range people {
		if err := p.db.Add(&core.Rule{
			ID: fmt.Sprintf("tv-%s", who), Owner: who,
			Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on", Settings: map[string]core.Value{"channel": {IsNumber: true, Number: float64(i)}}},
			Cond:   &core.Presence{Person: who, Place: "living room"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	var pending []int // live churn-rule sequence numbers
	next := 0
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1: // add a unique-named churn rule
			r := uniqueRule(next, people[rng.Intn(len(people))])
			if err := p.db.Add(r); err != nil {
				t.Fatal(err)
			}
			pending = append(pending, next)
			next++
			p.each(func(e *Engine) { e.Tick() })
		case 2, 3: // remove a random live churn rule
			if len(pending) == 0 {
				continue
			}
			i := rng.Intn(len(pending))
			if err := p.db.Remove(fmt.Sprintf("churn-%d", pending[i])); err != nil {
				t.Fatal(err)
			}
			pending = append(pending[:i], pending[i+1:]...)
			p.each(func(e *Engine) { e.Tick() })
		case 4: // fire a live churn rule's unique variable
			if len(pending) == 0 {
				continue
			}
			p.event(churnEvent(pending[rng.Intn(len(pending))], fmt.Sprintf("%d", 10+rng.Intn(25))))
		case 5, 6: // presence churn (drives the tv contenders)
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-" + people[rng.Intn(len(people))]: places[rng.Intn(len(places))]})
		case 7:
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"event": fmt.Sprintf("%s|home-from-work|%d", people[rng.Intn(len(people))], step)})
		case 8:
			p.advance(time.Duration(1+rng.Intn(30)) * time.Minute)
		default: // forced epoch at a quiet point
			if _, ok := p.inc.CompactSymbols(); !ok {
				t.Fatalf("step %d: forced compaction refused", step)
			}
			p.check()
		}
	}
	if st := p.inc.SymbolStats(); st.Epoch == 0 {
		t.Fatal("no compaction epoch ran; churn stream too quiet to be convincing")
	}
	if len(p.inc.Log()) < 5 {
		t.Fatalf("only %d firings over 400 steps; stream too quiet to be convincing", len(p.inc.Log()))
	}
}

// TestAutoCompactionWatermark pins the dead-id watermark: with a low floor,
// pure rule churn alone (no manual compaction) must trigger epochs, and the
// symtab must stay within a constant factor of the live symbol set.
func TestAutoCompactionWatermark(t *testing.T) {
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil, WithCompactFloor(64))
	for seq := 0; seq < 500; seq++ {
		if err := db.Add(uniqueRule(seq, "tom")); err != nil {
			t.Fatal(err)
		}
		if seq >= 4 {
			if err := db.Remove(fmt.Sprintf("churn-%d", seq-4)); err != nil {
				t.Fatal(err)
			}
		}
		e.Tick()
	}
	st := e.SymbolStats()
	if st.Epoch == 0 {
		t.Fatal("watermark never triggered a compaction epoch")
	}
	if st.Symbols > 200 {
		t.Fatalf("symtab holds %d symbols with 4 live rules; watermark not bounding growth", st.Symbols)
	}
}

// TestCompactSymbolsOracleModes: oracle engines refuse compaction (they hold
// no compactible state or no synced rule state).
func TestCompactSymbolsOracleModes(t *testing.T) {
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"stringkeys", []Option{WithStringKeys()}},
		{"fullscan", []Option{WithFullScan()}},
	} {
		e := New(registry.New(), conflict.NewTable(), func() time.Time { return now }, nil, tc.opts...)
		if _, ok := e.CompactSymbols(); ok {
			t.Fatalf("%s: CompactSymbols succeeded on an oracle engine", tc.name)
		}
	}
}

// TestChurnCompactionBounds is the acceptance check: churn 100k unique-named
// rules through a 1k live window under the DEFAULT watermark, force a final
// epoch, and require the symtab and every id-indexed slice to sit within 2x
// of the live symbol count — "runs for years under rule churn" as a test.
func TestChurnCompactionBounds(t *testing.T) {
	total, window := 100_000, 1_000
	if testing.Short() || raceEnabled {
		total = 20_000 // race instrumentation makes the full sweep slow; the bound is identical
	}
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})

	maxSymbols := 0
	for seq := 0; seq < total; seq++ {
		if err := db.Add(uniqueRule(seq, "tom")); err != nil {
			t.Fatal(err)
		}
		if seq >= window {
			if err := db.Remove(fmt.Sprintf("churn-%d", seq-window)); err != nil {
				t.Fatal(err)
			}
		}
		if seq%50 == 0 {
			e.Tick() // pass boundary: watermark check
			if st := e.SymbolStats(); st.Symbols > maxSymbols {
				maxSymbols = st.Symbols
			}
		}
	}
	e.Tick()
	auto := e.SymbolStats()
	if auto.Epoch == 0 {
		t.Fatalf("default watermark never compacted over %d churned rules", total)
	}

	st, ok := e.CompactSymbols()
	if !ok {
		t.Fatal("final forced compaction refused")
	}

	// Independent live-symbol count: exactly what a mark pass sees.
	live := &core.IDSet{}
	for _, r := range db.All() {
		r.MarkLiveIDs(live)
	}
	e.Snapshot() // ensure nothing panics reading post-compaction state
	final := e.SymbolStats()
	bound := 2 * live.Len()
	if final.Symbols > bound {
		t.Fatalf("symtab = %d symbols after final epoch, want <= 2x live (%d)", final.Symbols, bound)
	}
	if final.NumSlots > bound || final.BoolSlots > bound || final.LocSlots > bound ||
		final.EventSlots > bound || final.ReadySlots > bound+1 {
		t.Fatalf("id-slice lengths %+v exceed 2x live (%d)", final, bound)
	}
	// The watermark must have bounded growth all along, not just at the end:
	// the table may never have exceeded ~2x its steady live size plus the
	// retirement backlog the watermark tolerates.
	if ceiling := 3 * final.Symbols; maxSymbols > ceiling {
		t.Fatalf("symtab peaked at %d symbols mid-churn, want <= %d (watermark not engaging)", maxSymbols, ceiling)
	}
	if st.After >= st.Before && st.Before > 0 && auto.Symbols > final.Symbols {
		t.Fatalf("final epoch grew the table: %+v", st)
	}

	// And the engine still works: the newest rule fires through the
	// compacted ids.
	e.HandleDeviceEvent(churnEvent(total-1, "30"))
	owners := e.Owners()
	if owners[fmt.Sprintf("churn-dev-%d", total-1)] != fmt.Sprintf("churn-%d", total-1) {
		t.Fatalf("owners = %v, want newest churn rule firing after compaction", owners)
	}
}
