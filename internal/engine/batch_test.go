package engine

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// tempRule builds a rule "room<i>/temperature > threshold → turn on dev<i>".
func tempRule(t *testing.T, db *registry.DB, i int, threshold float64) {
	t.Helper()
	r := &core.Rule{
		ID:     fmt.Sprintf("r%d", i),
		Owner:  "u",
		Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: fmt.Sprintf("room%d/temperature", i), Op: simplex.GT, Value: threshold},
	}
	if err := db.Add(r); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchOneBatchPerPass pins down the batched dispatch path: a pass
// that fires K rules hands them to the dispatcher as exactly one batch (one
// BatchDispatcher call, one log append), not K lock round-trips.
func TestDispatchOneBatchPerPass(t *testing.T) {
	const k = 7
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	for i := 0; i < k; i++ {
		tempRule(t, db, i, 25)
	}
	var calls int
	var sizes []int
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil,
		WithBatchDispatcher(func(batch []Fired) {
			calls++
			sizes = append(sizes, len(batch))
			for i := range batch {
				batch[i].Err = fmt.Errorf("dispatched %s", batch[i].Rule.ID)
			}
		}))

	// One ingested event burst making all K rules ready, evaluated in one pass.
	for i := 0; i < k; i++ {
		e.Ingest(device.TypeThermometer, "t", fmt.Sprintf("room%d", i),
			map[string]string{"temperature": "30"})
	}
	e.Tick()

	if calls != 1 {
		t.Fatalf("batch dispatcher called %d times, want 1 (one batch per pass)", calls)
	}
	if sizes[0] != k {
		t.Fatalf("batch size = %d, want %d", sizes[0], k)
	}
	if got := e.DispatchBatches(); got != 1 {
		t.Fatalf("DispatchBatches = %d, want 1", got)
	}
	log := e.Log()
	if len(log) != k {
		t.Fatalf("log has %d entries, want %d", len(log), k)
	}
	for _, f := range log {
		if f.Err == nil {
			t.Fatalf("batch dispatcher's Err for %s was not recorded in the log", f.Rule.ID)
		}
	}
	// A pass with nothing fired must not produce an empty batch.
	e.Tick()
	if calls != 1 {
		t.Fatalf("no-op pass invoked the batch dispatcher (calls = %d)", calls)
	}
}

// TestIngestThenTickMatchesHandleDeviceEvent is the engine-level coalescing
// oracle: K ingests followed by one Tick leave the same final context,
// owners and readiness as K sequential HandleDeviceEvent passes — in exactly
// one evaluation pass instead of K.
func TestIngestThenTickMatchesHandleDeviceEvent(t *testing.T) {
	const k = 12
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	build := func() (*Engine, *registry.DB) {
		db := registry.New()
		for i := 0; i < k; i++ {
			tempRule(t, db, i, 25)
		}
		return New(db, conflict.NewTable(), func() time.Time { return now }, nil), db
	}
	burst, _ := build()
	sequential, _ := build()

	// The burst includes contradictory writes to the same room; last write wins.
	events := make([]map[string]string, 0, k+2)
	for i := 0; i < k; i++ {
		events = append(events, map[string]string{"temperature": "30"})
	}
	events = append(events,
		map[string]string{"temperature": "10"}, // cools room0 back down...
		map[string]string{"temperature": "31"}) // ...then heats it again

	room := func(i int) string {
		if i >= k {
			return "room0"
		}
		return fmt.Sprintf("room%d", i)
	}
	base := burst.Passes()
	for i, vars := range events {
		burst.Ingest(device.TypeThermometer, "t", room(i), vars)
	}
	burst.Tick()
	if got := burst.Passes() - base; got != 1 {
		t.Fatalf("burst ran %d passes, want 1", got)
	}
	for i, vars := range events {
		sequential.HandleDeviceEvent(device.TypeThermometer, "t", room(i), vars)
	}

	if got, want := burst.Owners(), sequential.Owners(); !reflect.DeepEqual(got, want) {
		t.Fatalf("final owners diverge:\nburst      = %v\nsequential = %v", got, want)
	}
	bc, sc := burst.Context(), sequential.Context()
	if !reflect.DeepEqual(bc.Numbers, sc.Numbers) {
		t.Fatalf("final contexts diverge:\nburst      = %v\nsequential = %v", bc.Numbers, sc.Numbers)
	}
	// The burst fired every device exactly once; the sequential run may have
	// fired room0's device more than once, but the set of fired devices and
	// their final actions agree.
	final := func(log []Fired) map[string]string {
		out := make(map[string]string)
		for _, f := range log {
			out[f.Rule.Device.Key()] = f.Rule.Action.String()
		}
		return out
	}
	if got, want := final(burst.Log()), final(sequential.Log()); !reflect.DeepEqual(got, want) {
		t.Fatalf("final fired actions diverge:\nburst      = %v\nsequential = %v", got, want)
	}
}

// TestWithLogLimit checks the capped fired-action log keeps the most recent
// entries.
func TestWithLogLimit(t *testing.T) {
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	tempRule(t, db, 0, 25)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil, WithLogLimit(4))
	for i := 0; i < 40; i++ {
		v := "30"
		if i%2 == 1 {
			v = "10" // drop below threshold so the next event re-fires
		}
		e.HandleDeviceEvent(device.TypeThermometer, "t", "room0", map[string]string{"temperature": v})
	}
	if got := len(e.Log()); got > 8 {
		t.Fatalf("capped log holds %d entries, want ≤ 8 (2×limit hysteresis)", got)
	}
	if got := len(e.Log()); got == 0 {
		t.Fatal("capped log is empty")
	}
}
