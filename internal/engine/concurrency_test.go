package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// TestStereoHandoffTomToEmily is the paper's Fig. 1 stereo lane as an
// explicit regression test: Tom's rule owns the stereo, Emily's arrival
// makes her contextual priority order apply and takes it over, and when the
// arrival expires the stereo returns to Tom — a hand-off driven purely by
// the priority context, with both rules continuously ready, which an
// incremental evaluator misses unless it re-arbitrates on order-context
// changes.
func TestStereoHandoffTomToEmily(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"incremental", nil},
		{"full-scan", []Option{WithFullScan()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db := registry.New()
			tbl := conflict.NewTable()
			rec := &recorder{}
			clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
			opts := append([]Option{WithEventTTL(30 * time.Minute)}, mode.opts...)
			e := New(db, tbl, clock.Now, rec.dispatch, opts...)

			stereo := core.DeviceRef{Name: "stereo"}
			if err := db.Add(&core.Rule{
				ID: "tom-stereo", Owner: "tom", Device: stereo,
				Action: core.Action{Verb: "play", Settings: map[string]core.Value{"volume": {IsNumber: true, Number: 5}}},
				Cond:   &core.Presence{Person: "tom", Place: "living room"},
			}); err != nil {
				t.Fatal(err)
			}
			if err := db.Add(&core.Rule{
				ID: "emily-stereo", Owner: "emily", Device: stereo,
				Action: core.Action{Verb: "play", Settings: map[string]core.Value{"volume": {IsNumber: true, Number: 2}}},
				Cond:   &core.Presence{Person: "emily", Place: "living room"},
			}); err != nil {
				t.Fatal(err)
			}
			tbl.Set(conflict.Order{
				Device:        stereo,
				Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
				ContextSource: "emily got home from shopping",
				Users:         []string{"emily", "tom"},
			})
			e.SetUsers([]string{"tom", "emily"})

			// Tom alone: his rule owns the stereo.
			e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-tom": "living room"})
			if rec.last() != "stereo <- play with volume=5" {
				t.Fatalf("applied = %v, want tom's stereo rule", rec.applied)
			}

			// Emily gets home from shopping and joins Tom: her contextual
			// order applies and the stereo hands off to her.
			e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-emily": "living room", "event": "emily|home-from-shopping|1"})
			if rec.last() != "stereo <- play with volume=2" {
				t.Fatalf("applied = %v, want hand-off to emily", rec.applied)
			}
			if owners := e.Owners(); owners["stereo"] != "emily-stereo" {
				t.Fatalf("owners = %v, want emily-stereo", owners)
			}

			// Both stay in the room. After the arrival TTL lapses the
			// contextual order stops applying and the stereo returns to Tom
			// (registration order breaks the tie) — no sensor changed at all.
			clock.advance(45 * time.Minute)
			e.Tick()
			if rec.last() != "stereo <- play with volume=5" {
				t.Fatalf("applied = %v, want hand-back to tom after TTL", rec.applied)
			}
			if rec.count() != 3 {
				t.Fatalf("applied = %v, want exactly 3 hand-offs", rec.applied)
			}
		})
	}
}

// TestEngineConcurrentStimuli interleaves HandleDeviceEvent, Tick,
// SetFavorites/SetUsers, rule churn and snapshot reads from many goroutines.
// Run under -race; the assertions only require the engine to stay coherent.
func TestEngineConcurrentStimuli(t *testing.T) {
	db := registry.New()
	tbl := conflict.NewTable()
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	e := New(db, tbl, clock.Now, func(core.DeviceRef, core.Action) error { return nil },
		WithEventTTL(time.Hour), WithOnFire(func(Fired) {}))

	for i := 0; i < 50; i++ {
		rule := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  fmt.Sprintf("user%d", i%3),
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i%10)},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.Or{Terms: []core.Condition{
				&core.Compare{Var: "temperature", Op: simplex.GT, Value: float64(20 + i%15)},
				&core.Presence{Person: "tom", Place: "living room"},
			}},
		}
		if err := db.Add(rule); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "dev0"}, Users: []string{"user0", "user1", "user2"}})

	const iters = 200
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}

	run(func(i int) {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
			map[string]string{"temperature": fmt.Sprintf("%d", 10+i%30)})
	})
	run(func(i int) {
		place := "living room"
		if i%2 == 0 {
			place = ""
		}
		e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
			map[string]string{"presence-tom": place})
	})
	run(func(i int) {
		clock.advance(time.Second)
		e.Tick()
	})
	run(func(i int) {
		e.SetFavorites("emily", []string{"roman holiday"})
		if i%10 == 0 {
			e.SetUsers([]string{"tom", "alan", "emily"})
		}
	})
	run(func(i int) {
		_ = e.Log()
		_ = e.Owners()
		_ = e.Context()
	})
	run(func(i int) {
		id := fmt.Sprintf("churn%d", i)
		if err := db.Add(&core.Rule{
			ID: id, Owner: "tom", Device: core.DeviceRef{Name: "lamp"},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 15},
		}); err != nil {
			t.Error(err)
			return
		}
		e.Tick()
		if err := db.Remove(id); err != nil {
			t.Error(err)
		}
	})
	wg.Wait()

	// The engine must still evaluate coherently after the storm.
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})
	if owners := e.Owners(); len(owners) == 0 {
		t.Error("no owners after tom present; engine wedged")
	}
}
