package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/lang"
	"repro/internal/registry"
	"repro/internal/simplex"
	"repro/internal/vocab"
)

// fakeClock is a trivial manual clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// recorder captures dispatched actions.
type recorder struct {
	mu      sync.Mutex
	applied []string
}

func (r *recorder) dispatch(ref core.DeviceRef, action core.Action) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applied = append(r.applied, ref.Key()+" <- "+action.String())
	return nil
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.applied)
}

func (r *recorder) last() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.applied) == 0 {
		return ""
	}
	return r.applied[len(r.applied)-1]
}

func testEngine(t *testing.T) (*Engine, *registry.DB, *conflict.Table, *recorder, *fakeClock) {
	t.Helper()
	db := registry.New()
	tbl := conflict.NewTable()
	rec := &recorder{}
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	e := New(db, tbl, clock.Now, rec.dispatch, WithEventTTL(4*time.Hour))
	return e, db, tbl, rec, clock
}

func compileRule(t *testing.T, src, id, owner string) *core.Rule {
	t.Helper()
	lex := vocab.Default()
	for _, p := range []string{"tom", "alan", "emily"} {
		if err := lex.Add(vocab.Entry{Phrase: p, Kind: vocab.KindPerson}); err != nil {
			t.Fatal(err)
		}
	}
	cmd, err := lang.Parse(src, lex)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rule, err := core.NewCompiler(lex).CompileRule(cmd.(*lang.RuleDef), id, owner)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return rule
}

func TestFiresOnSensorThreshold(t *testing.T) {
	e, db, _, rec, _ := testEngine(t)
	rule := compileRule(t,
		"If temperature is higher than 28 degrees and humidity is higher than 60 percent, "+
			"turn on the air conditioner with 25 degrees of temperature setting.", "r1", "tom")
	if err := db.Add(rule); err != nil {
		t.Fatal(err)
	}

	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "29"})
	if rec.count() != 0 {
		t.Fatal("humidity not yet known; must not fire")
	}
	e.HandleDeviceEvent(device.TypeHygrometer, "hygrometer", "living room",
		map[string]string{"humidity": "65"})
	if rec.count() != 1 {
		t.Fatalf("applied = %v, want 1 firing", rec.applied)
	}
	// Re-delivering the same conditions does not re-fire (ownership stable).
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "30"})
	if rec.count() != 1 {
		t.Fatalf("applied = %v, want still 1", rec.applied)
	}
	// Condition lapses, then returns: fires again.
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "20"})
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "31"})
	if rec.count() != 2 {
		t.Fatalf("applied = %v, want 2 firings", rec.applied)
	}
}

func TestPresenceAndArrival(t *testing.T) {
	e, db, _, rec, _ := testEngine(t)
	if err := db.Add(compileRule(t,
		"If tom is in the living room, turn on the floor lamp.", "r1", "tom")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(compileRule(t,
		"If alan got home from work, turn on the tv.", "r2", "alan")); err != nil {
		t.Fatal(err)
	}

	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})
	if rec.count() != 1 || rec.last() != "floor lamp <- turn-on" {
		t.Fatalf("applied = %v", rec.applied)
	}
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"event": "alan|home-from-work|1"})
	if rec.count() != 2 || rec.last() != "tv <- turn-on" {
		t.Fatalf("applied = %v", rec.applied)
	}
}

func TestTimeWindowGating(t *testing.T) {
	e, db, _, rec, clock := testEngine(t)
	if err := db.Add(compileRule(t,
		"At night, if tom is in the living room, turn on the floor lamp.", "r1", "tom")); err != nil {
		t.Fatal(err)
	}
	// 18:00 is not night.
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room"})
	if rec.count() != 0 {
		t.Fatalf("applied = %v, want none at 18:00", rec.applied)
	}
	// 22:30 is night.
	clock.advance(4*time.Hour + 30*time.Minute)
	e.Tick()
	if rec.count() != 1 {
		t.Fatalf("applied = %v, want firing at 22:30", rec.applied)
	}
}

func TestDurationCondition(t *testing.T) {
	e, db, _, rec, clock := testEngine(t)
	if err := db.Add(compileRule(t,
		"If entrance door is unlocked for 1 hour, turn on the alarm.", "r1", "tom")); err != nil {
		t.Fatal(err)
	}
	e.HandleDeviceEvent(device.TypeDoorLock, "entrance door", "entrance",
		map[string]string{"locked": "0"})
	if rec.count() != 0 {
		t.Fatal("must not fire before the hold elapses")
	}
	clock.advance(30 * time.Minute)
	e.Tick()
	if rec.count() != 0 {
		t.Fatal("30 minutes is too early")
	}
	clock.advance(31 * time.Minute)
	e.Tick()
	if rec.count() != 1 {
		t.Fatalf("applied = %v, want alarm after 61 minutes", rec.applied)
	}
}

func TestDurationResetOnInterruption(t *testing.T) {
	e, db, _, rec, clock := testEngine(t)
	if err := db.Add(compileRule(t,
		"If entrance door is unlocked for 1 hour, turn on the alarm.", "r1", "tom")); err != nil {
		t.Fatal(err)
	}
	e.HandleDeviceEvent(device.TypeDoorLock, "entrance door", "entrance",
		map[string]string{"locked": "0"})
	clock.advance(40 * time.Minute)
	e.Tick()
	// Door re-locked: the hold resets.
	e.HandleDeviceEvent(device.TypeDoorLock, "entrance door", "entrance",
		map[string]string{"locked": "1"})
	clock.advance(30 * time.Minute)
	e.HandleDeviceEvent(device.TypeDoorLock, "entrance door", "entrance",
		map[string]string{"locked": "0"})
	clock.advance(40 * time.Minute)
	e.Tick()
	if rec.count() != 0 {
		t.Fatalf("applied = %v; hold must restart after interruption", rec.applied)
	}
	clock.advance(21 * time.Minute)
	e.Tick()
	if rec.count() != 1 {
		t.Fatalf("applied = %v, want alarm after uninterrupted hour", rec.applied)
	}
}

func TestPriorityHandoff(t *testing.T) {
	// Fig. 1's TV hand-off: Alan watches; Emily arrives with higher
	// priority in her context and takes the TV; when her movie ends the TV
	// returns to Alan.
	e, db, tbl, rec, _ := testEngine(t)
	alanRule := compileRule(t,
		"If alan is in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.",
		"alan-tv", "alan")
	emilyRule := compileRule(t,
		"If emily is in the living room and my favorite movie is on air, turn on the tv with 3 of channel setting.",
		"emily-tv", "emily")
	for _, r := range []*core.Rule{alanRule, emilyRule} {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "tv"},
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "alan", "tom"},
	})
	e.SetFavorites("emily", []string{"roman holiday"})
	e.SetUsers([]string{"tom", "alan", "emily"})

	// Alan in the room, game on air.
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-alan": "living room"})
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
		})})
	if rec.last() != "tv <- turn-on with channel=1" {
		t.Fatalf("applied = %v, want alan's tv rule", rec.applied)
	}

	// Emily arrives from shopping; her movie is on air.
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-emily": "living room", "event": "emily|home-from-shopping|1"})
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
			{Title: "Roman Holiday", Category: "movie", Keywords: []string{"roman holiday"}},
		})})
	if rec.last() != "tv <- turn-on with channel=3" {
		t.Fatalf("applied = %v, want emily's tv rule to win", rec.applied)
	}
	log := e.Log()
	lastFired := log[len(log)-1]
	if len(lastFired.Suppressed) != 1 || lastFired.Suppressed[0].Owner != "alan" {
		t.Errorf("suppressed = %v, want alan", lastFired.Suppressed)
	}

	// Movie ends: the TV goes back to Alan's rule.
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
		})})
	if rec.last() != "tv <- turn-on with channel=1" {
		t.Fatalf("applied = %v, want hand-back to alan", rec.applied)
	}
}

func TestNobodyCondition(t *testing.T) {
	e, db, _, rec, _ := testEngine(t)
	e.SetUsers([]string{"tom", "alan"})
	if err := db.Add(compileRule(t,
		"If nobody is at home, turn off the fluorescent light.", "r1", "tom")); err != nil {
		t.Fatal(err)
	}
	// Empty context: nobody home. SetUsers triggered a tick, and the add
	// happened after — tick now.
	e.Tick()
	if rec.count() != 1 || rec.last() != "fluorescent light <- turn-off" {
		t.Fatalf("applied = %v", rec.applied)
	}
	// Someone comes home: condition lapses; light keeps state (no un-do).
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "kitchen"})
	if rec.count() != 1 {
		t.Fatalf("applied = %v", rec.applied)
	}
	// Everyone leaves again: fires again.
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": ""})
	if rec.count() != 2 {
		t.Fatalf("applied = %v", rec.applied)
	}
}

func TestDispatchErrorIsLogged(t *testing.T) {
	db := registry.New()
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	boom := func(core.DeviceRef, core.Action) error { return fmt.Errorf("device unreachable") }
	e := New(db, conflict.NewTable(), clock.Now, boom)
	if err := db.Add(&core.Rule{
		ID: "r", Owner: "tom",
		Device: core.DeviceRef{Name: "tv"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   core.Always{},
	}); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	log := e.Log()
	if len(log) != 1 || log[0].Err == nil {
		t.Fatalf("log = %v, want one errored firing", log)
	}
	if log[0].String() == "" {
		t.Error("Fired.String empty")
	}
}

func TestOnFireCallback(t *testing.T) {
	db := registry.New()
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	var mu sync.Mutex
	var seen []string
	e := New(db, conflict.NewTable(), clock.Now, nil, WithOnFire(func(f Fired) {
		mu.Lock()
		seen = append(seen, f.Rule.ID)
		mu.Unlock()
	}))
	if err := db.Add(&core.Rule{
		ID: "r", Owner: "t", Device: core.DeviceRef{Name: "x"},
		Action: core.Action{Verb: "turn-on"}, Cond: core.Always{},
	}); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "r" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestEventTTLExpiry(t *testing.T) {
	db := registry.New()
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	rec := &recorder{}
	e := New(db, conflict.NewTable(), clock.Now, rec.dispatch, WithEventTTL(10*time.Minute))
	if err := db.Add(&core.Rule{
		ID: "r", Owner: "alan", Device: core.DeviceRef{Name: "tv"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Arrival{Person: "alan", Event: "home-from-work"},
	}); err != nil {
		t.Fatal(err)
	}
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"event": "alan|home-from-work|1"})
	if rec.count() != 1 {
		t.Fatalf("applied = %v", rec.applied)
	}
	// After the TTL the arrival no longer holds; a fresh arrival re-fires.
	clock.advance(time.Hour)
	e.Tick()
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"event": "alan|home-from-work|2"})
	if rec.count() != 2 {
		t.Fatalf("applied = %v, want re-fire after TTL", rec.applied)
	}
}

func TestContextSnapshotIsolation(t *testing.T) {
	e, _, _, _, _ := testEngine(t)
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": "25"})
	snap := e.Context()
	snap.Numbers["living room/temperature"] = 99
	if v, _ := e.Context().Number("living room/temperature"); v != 25 {
		t.Error("snapshot mutation leaked into engine context")
	}
}

func TestAppliancesStateVisibleToRules(t *testing.T) {
	// Rules can observe appliance state ("if the tv is turned on").
	e, db, _, rec, _ := testEngine(t)
	if err := db.Add(&core.Rule{
		ID: "r", Owner: "tom", Device: core.DeviceRef{Name: "stereo"},
		Action: core.Action{Verb: "turn-off"},
		Cond:   &core.BoolIs{Var: "tv/power", Want: true},
	}); err != nil {
		t.Fatal(err)
	}
	e.HandleDeviceEvent(device.TypeTV, "tv", "living room", map[string]string{"power": "1"})
	if rec.count() != 1 || rec.last() != "stereo <- turn-off" {
		t.Fatalf("applied = %v", rec.applied)
	}
}

func TestCompareUnknownVarNeverFires(t *testing.T) {
	e, db, _, rec, _ := testEngine(t)
	if err := db.Add(&core.Rule{
		ID: "r", Owner: "tom", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "attic/radon", Op: simplex.GT, Value: 4},
	}); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	if rec.count() != 0 {
		t.Fatalf("applied = %v, want none for unknown sensor", rec.applied)
	}
}
