package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// enginePair runs two engine configurations over one shared rule database
// and priority table; every stimulus is applied to both so their fired logs
// and owner maps must stay identical. The default pairing is the interned
// incremental evaluator against the full-scan oracle; the interned
// equivalence suite pairs it against the string-keyed oracle instead.
type enginePair struct {
	t     *testing.T
	db    *registry.DB
	tbl   *conflict.Table
	clock *fakeClock
	inc   *Engine
	full  *Engine
	step  int

	// apply overrides how an event stimulus reaches an engine (nil =
	// HandleDeviceEvent); the wire-ingest suite routes p.inc through the
	// byte-path decoder while the oracle keeps the map path.
	apply func(e *Engine, deviceType, name, location string, vars map[string]string)
}

func newEnginePair(t *testing.T) *enginePair {
	return newEnginePairOpts(t, nil, []Option{WithFullScan()})
}

func newEnginePairOpts(t *testing.T, incOpts, oracleOpts []Option) *enginePair {
	t.Helper()
	p := &enginePair{
		t:     t,
		db:    registry.New(),
		tbl:   conflict.NewTable(),
		clock: &fakeClock{now: time.Date(2005, 3, 7, 8, 0, 0, 0, time.UTC)},
	}
	p.inc = New(p.db, p.tbl, p.clock.Now, nil,
		append([]Option{WithEventTTL(30 * time.Minute)}, incOpts...)...)
	p.full = New(p.db, p.tbl, p.clock.Now, nil,
		append([]Option{WithEventTTL(30 * time.Minute)}, oracleOpts...)...)
	return p
}

func (p *enginePair) each(fn func(e *Engine)) {
	p.step++
	fn(p.inc)
	fn(p.full)
	p.check()
}

func (p *enginePair) event(deviceType, name, location string, vars map[string]string) {
	p.each(func(e *Engine) {
		if p.apply != nil {
			p.apply(e, deviceType, name, location, vars)
			return
		}
		e.HandleDeviceEvent(deviceType, name, location, vars)
	})
}

func (p *enginePair) advance(d time.Duration) {
	p.clock.advance(d)
	p.each(func(e *Engine) { e.Tick() })
}

func renderLog(log []Fired) []string {
	out := make([]string, len(log))
	for i, f := range log {
		sup := make([]string, len(f.Suppressed))
		for j, r := range f.Suppressed {
			sup[j] = r.ID
		}
		out[i] = fmt.Sprintf("%s %s sup=[%s] err=%v",
			f.Time.Format("01-02 15:04:05"), f.Rule.ID, strings.Join(sup, ","), f.Err)
	}
	return out
}

// check asserts both engines agree on the fired log and the owners map.
func (p *enginePair) check() {
	p.t.Helper()
	gotInc, gotFull := renderLog(p.inc.Log()), renderLog(p.full.Log())
	if !reflect.DeepEqual(gotInc, gotFull) {
		p.t.Fatalf("step %d: fired logs diverge\nincremental: %v\nfull scan:   %v",
			p.step, gotInc, gotFull)
	}
	if inc, full := p.inc.Owners(), p.full.Owners(); !reflect.DeepEqual(inc, full) {
		p.t.Fatalf("step %d: owners diverge\nincremental: %v\nfull scan:   %v", p.step, inc, full)
	}
}

// TestOracleEquivalenceScripted replays the paper's scenarios — threshold
// rules, presence, arrivals with TTL, time windows, duration holds, on-air
// matching and contextual priority hand-offs — on both evaluators.
func TestOracleEquivalenceScripted(t *testing.T) {
	runScriptedScenario(t, newEnginePair(t))
}

// runScriptedScenario drives the paper's scripted scenario over a pair.
func runScriptedScenario(t *testing.T, p *enginePair) {
	rules := []*core.Rule{
		{ID: "ac", Owner: "tom", Device: core.DeviceRef{Name: "air conditioner"},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.And{Terms: []core.Condition{
				&core.Compare{Var: "temperature", Op: simplex.GT, Value: 28},
				&core.Compare{Var: "humidity", Op: simplex.GT, Value: 60},
			}}},
		{ID: "lamp", Owner: "tom", Device: core.DeviceRef{Name: "floor lamp"},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.And{Terms: []core.Condition{
				&core.TimeWindow{FromMin: 22 * 60, ToMin: 6 * 60, Weekday: -1},
				&core.Presence{Person: "tom", Place: "living room"},
			}}},
		{ID: "tv-alan", Owner: "alan", Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on", Settings: map[string]core.Value{"channel": {IsNumber: true, Number: 1}}},
			Cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "alan", Place: "living room"},
				&core.OnAir{Keyword: "baseball game"},
			}}},
		{ID: "tv-emily", Owner: "emily", Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on", Settings: map[string]core.Value{"channel": {IsNumber: true, Number: 3}}},
			Cond: &core.And{Terms: []core.Condition{
				&core.Presence{Person: "emily", Place: "living room"},
				&core.OnAir{Category: "movie", FavoriteOf: "emily"},
			}}},
		{ID: "alarm", Owner: "tom", Device: core.DeviceRef{Name: "alarm"},
			Action: core.Action{Verb: "turn-on"},
			Cond: &core.Duration{Key: "door-open-1h", Seconds: 3600,
				Inner: &core.BoolIs{Var: "entrance door/locked", Want: false}}},
		{ID: "off", Owner: "tom", Device: core.DeviceRef{Name: "fluorescent light"},
			Action: core.Action{Verb: "turn-off"},
			Cond:   &core.Nobody{Place: "home"}},
		{ID: "welcome", Owner: "alan", Device: core.DeviceRef{Name: "stereo"},
			Action: core.Action{Verb: "play"},
			Cond:   &core.Arrival{Person: "alan", Event: "home-from-work"}},
	}
	for _, r := range rules {
		if err := p.db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	p.tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "tv"},
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "alan", "tom"},
	})
	p.each(func(e *Engine) { e.SetUsers([]string{"tom", "alan", "emily"}) })
	p.each(func(e *Engine) { e.SetFavorites("emily", []string{"roman holiday"}) })

	game := device.EncodePrograms([]core.Program{{Title: "Tigers vs Giants", Category: "baseball game"}})
	gameAndMovie := device.EncodePrograms([]core.Program{
		{Title: "Tigers vs Giants", Category: "baseball game"},
		{Title: "Roman Holiday", Category: "movie", Keywords: []string{"roman holiday"}},
	})

	p.event(device.TypeThermometer, "thermometer", "living room", map[string]string{"temperature": "29"})
	p.event(device.TypeHygrometer, "hygrometer", "living room", map[string]string{"humidity": "65"})
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-tom": "living room"})
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-alan": "living room"})
	p.event(device.TypeEPGTuner, "epg tuner", "home", map[string]string{"programs": game})
	p.event(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-emily": "living room", "event": "emily|home-from-shopping|1"})
	p.event(device.TypeEPGTuner, "epg tuner", "home", map[string]string{"programs": gameAndMovie})
	p.event(device.TypeDoorLock, "entrance door", "entrance", map[string]string{"locked": "0"})
	p.advance(45 * time.Minute) // event TTL (30 min) lapses → TV back to alan
	p.advance(20 * time.Minute) // door open 65 min → alarm
	p.event(device.TypeEPGTuner, "epg tuner", "home", map[string]string{"programs": ""})
	p.event(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "", "presence-alan": "", "presence-emily": ""})
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"event": "alan|home-from-work|2"})
	p.advance(13 * time.Hour) // 22:05 next window; lamp needs tom back
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-tom": "living room"})
	p.event(device.TypeDoorLock, "entrance door", "entrance", map[string]string{"locked": "1"})
	p.advance(2 * time.Hour)

	if len(p.inc.Log()) == 0 {
		t.Fatal("scenario fired nothing; test is vacuous")
	}
}

// TestOracleEquivalenceRandom drives both evaluators through randomized
// rule sets and shuffled event streams (several hundred events per seed)
// and asserts identical fired logs and owner maps after every stimulus.
func TestOracleEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runRandomScenario(t, newEnginePair(t), seed)
		})
	}
}

// runRandomScenario drives one randomized rule set and event stream (seeded)
// over a pair.
func runRandomScenario(t *testing.T, p *enginePair, seed int64) {
	people := []string{"tom", "alan", "emily"}
	places := []string{"living room", "kitchen", "hall", ""}
	rooms := []string{"living room", "kitchen", "hall"}
	events := []string{"home-from-work", "home-from-shopping"}
	devices := []string{"tv", "stereo", "air conditioner", "floor lamp", "alarm"}

	rng := rand.New(rand.NewSource(seed))

	randLeaf := func(i int) core.Condition {
		switch rng.Intn(7) {
		case 0:
			return &core.Compare{Var: rooms[rng.Intn(len(rooms))] + "/temperature",
				Op: simplex.GT, Value: float64(15 + rng.Intn(20))}
		case 1:
			return &core.Compare{Var: "humidity", Op: simplex.LT, Value: float64(40 + rng.Intn(40))}
		case 2:
			return &core.BoolIs{Var: "tv/power", Want: rng.Intn(2) == 0}
		case 3:
			return &core.Presence{Person: people[rng.Intn(len(people))], Place: rooms[rng.Intn(len(rooms))]}
		case 4:
			return &core.Arrival{Person: people[rng.Intn(len(people))], Event: events[rng.Intn(len(events))]}
		case 5:
			return &core.OnAir{Keyword: "baseball game"}
		default:
			return &core.Nobody{Place: "home"}
		}
	}
	randCond := func(i int) core.Condition {
		leaf := randLeaf(i)
		switch rng.Intn(5) {
		case 0:
			return &core.And{Terms: []core.Condition{leaf, randLeaf(i)}}
		case 1:
			return &core.Or{Terms: []core.Condition{leaf, randLeaf(i)}}
		case 2:
			return &core.And{Terms: []core.Condition{
				&core.TimeWindow{FromMin: rng.Intn(24 * 60), ToMin: rng.Intn(24 * 60), Weekday: -1}, leaf}}
		case 3:
			return &core.Duration{Key: fmt.Sprintf("hold-%d", i),
				Seconds: float64(60 * (1 + rng.Intn(90))), Inner: leaf}
		default:
			return leaf
		}
	}
	for i := 0; i < 40; i++ {
		r := &core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  people[rng.Intn(len(people))],
			Device: core.DeviceRef{Name: devices[rng.Intn(len(devices))]},
			Action: core.Action{Verb: "turn-on",
				Settings: map[string]core.Value{"channel": {IsNumber: true, Number: float64(i)}}},
			Cond: randCond(i),
		}
		if err := p.db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"tom", "alan", "emily"}})
	p.tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "stereo"},
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "tom", "alan"},
	})
	p.each(func(e *Engine) { e.SetUsers(people) })

	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1:
			p.event(device.TypeThermometer, "thermometer", rooms[rng.Intn(len(rooms))],
				map[string]string{"temperature": fmt.Sprintf("%d", 10+rng.Intn(30))})
		case 2:
			p.event(device.TypeHygrometer, "hygrometer", rooms[rng.Intn(len(rooms))],
				map[string]string{"humidity": fmt.Sprintf("%d", 30+rng.Intn(60))})
		case 3, 4:
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-" + people[rng.Intn(len(people))]: places[rng.Intn(len(places))]})
		case 5:
			who := people[rng.Intn(len(people))]
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"event": fmt.Sprintf("%s|%s|%d", who, events[rng.Intn(len(events))], step)})
		case 6:
			var progs []core.Program
			if rng.Intn(2) == 0 {
				progs = append(progs, core.Program{Title: "Tigers vs Giants", Category: "baseball game"})
			}
			p.event(device.TypeEPGTuner, "epg tuner", "home",
				map[string]string{"programs": device.EncodePrograms(progs)})
		case 7:
			p.event(device.TypeTV, "tv", "living room",
				map[string]string{"power": fmt.Sprintf("%d", rng.Intn(2))})
		case 8:
			p.advance(time.Duration(1+rng.Intn(40)) * time.Minute)
		default:
			if rng.Intn(4) == 0 {
				p.each(func(e *Engine) { e.SetFavorites("emily", []string{"roman holiday"}) })
			} else {
				p.advance(time.Duration(rng.Intn(90)) * time.Second)
			}
		}
	}
	if len(p.inc.Log()) < 10 {
		t.Fatalf("only %d firings over 400 events; stream too quiet to be convincing", len(p.inc.Log()))
	}
}

// TestOracleEquivalenceRuleChurn adds and removes rules mid-stream: the
// incremental engine must pick up additions (evaluate-once semantics for
// unconditional rules) and drop removed owners exactly like the oracle.
func TestOracleEquivalenceRuleChurn(t *testing.T) {
	runChurnScenario(t, newEnginePair(t))
}

// runChurnScenario adds, removes and re-registers rules mid-stream over a
// pair.
func runChurnScenario(t *testing.T, p *enginePair) {
	if err := p.db.Add(&core.Rule{
		ID: "a", Owner: "tom", Device: core.DeviceRef{Name: "tv"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 20},
	}); err != nil {
		t.Fatal(err)
	}
	p.event(device.TypeThermometer, "thermometer", "living room", map[string]string{"temperature": "25"})

	// An always-true rule registered later must fire once on the next pass.
	if err := p.db.Add(&core.Rule{
		ID: "b", Owner: "alan", Device: core.DeviceRef{Name: "stereo"},
		Action: core.Action{Verb: "play"}, Cond: core.Always{},
	}); err != nil {
		t.Fatal(err)
	}
	p.each(func(e *Engine) { e.Tick() })

	// Removing the TV rule while it owns the device: ownership lapses on
	// the next pass in both modes.
	if err := p.db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	p.each(func(e *Engine) { e.Tick() })
	if owners := p.inc.Owners(); owners["tv"] != "" {
		t.Fatalf("owners = %v, want tv released after rule removal", owners)
	}

	// A replacement rule for the same device takes over.
	if err := p.db.Add(&core.Rule{
		ID: "c", Owner: "emily", Device: core.DeviceRef{Name: "tv"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 10},
	}); err != nil {
		t.Fatal(err)
	}
	p.each(func(e *Engine) { e.Tick() })
	if owners := p.inc.Owners(); owners["tv"] != "c" {
		t.Fatalf("owners = %v, want tv owned by replacement rule", owners)
	}

	// Remove and re-register the same ID with a different condition and
	// device between passes: the engine must evict the stale cached rule
	// and evaluate the replacement, like the oracle does.
	if err := p.db.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Add(&core.Rule{
		ID: "c", Owner: "emily", Device: core.DeviceRef{Name: "lamp"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.LT, Value: 100},
	}); err != nil {
		t.Fatal(err)
	}
	p.each(func(e *Engine) { e.Tick() })
	owners := p.inc.Owners()
	if owners["tv"] != "" || owners["lamp"] != "c" {
		t.Fatalf("owners = %v, want tv released and lamp owned by re-registered rule", owners)
	}
}
