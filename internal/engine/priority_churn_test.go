package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/simplex"
)

// The priority-churn suites drive the shared priority table through edits
// mid-stream — new defaults, replaced slots, contextual orders superseding
// each other — while sensor events keep flipping rule readiness. The
// interned arbitration index (owner-rank vectors, bound order contexts,
// generation-gated device cache) must leave the fired and suppressed logs
// byte-identical to the map-keyed oracle across every evaluator pairing.

func churnPairs(t *testing.T, run func(t *testing.T, p *enginePair)) {
	t.Run("interned-vs-fullscan", func(t *testing.T) {
		run(t, newEnginePair(t))
	})
	t.Run("interned-vs-stringkeys", func(t *testing.T) {
		run(t, newEnginePairOpts(t, nil, []Option{WithStringKeys()}))
	})
	t.Run("interned-vs-stringfullscan", func(t *testing.T) {
		run(t, newEnginePairOpts(t, nil, []Option{WithStringKeys(), WithFullScan()}))
	})
}

// TestPriorityChurnScripted replays the paper's hand-off scenario with the
// priority table edited mid-stream: the applicable order must flip winners
// on the very next pass, identically on every evaluator.
func TestPriorityChurnScripted(t *testing.T) {
	churnPairs(t, runPriorityChurnScripted)
}

func runPriorityChurnScripted(t *testing.T, p *enginePair) {
	owners := []string{"tom", "alan", "emily"}
	for i, owner := range owners {
		if err := p.db.Add(&core.Rule{
			ID: fmt.Sprintf("tv-%s", owner), Owner: owner,
			Device: core.DeviceRef{Name: "tv"},
			Action: core.Action{Verb: "turn-on", Settings: map[string]core.Value{"channel": {IsNumber: true, Number: float64(i)}}},
			Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 20},
		}); err != nil {
			t.Fatal(err)
		}
		if err := p.db.Add(&core.Rule{
			ID: fmt.Sprintf("stereo-%s", owner), Owner: owner,
			Device: core.DeviceRef{Name: "stereo"},
			Action: core.Action{Verb: "play"},
			Cond:   &core.Presence{Person: owner, Place: "living room"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.each(func(e *Engine) { e.SetUsers(owners) })

	// All three TV rules ready; no order yet → registration order wins.
	p.event(device.TypeThermometer, "thermometer", "living room", map[string]string{"temperature": "25"})

	// A default order flips the TV to Emily.
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"emily", "alan", "tom"}})
	p.each(func(e *Engine) { e.Tick() })

	// Replacing the same slot (device + empty context source) flips it again.
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "tv"}, Users: []string{"alan", "tom", "emily"}})
	p.each(func(e *Engine) { e.Tick() })

	// A contextual order applies only while Emily is home from shopping.
	p.tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "tv"},
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "tom", "alan"},
	})
	p.each(func(e *Engine) { e.Tick() })
	p.event(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"event": "emily|home-from-shopping|1"})
	p.advance(45 * time.Minute) // TTL (30 min) lapses → back to the default order

	// Stereo: presence-driven ready-set with a nobody-gated contextual order.
	p.event(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-tom": "living room", "presence-alan": "living room"})
	p.tbl.Set(conflict.Order{Device: core.DeviceRef{Name: "stereo"}, Users: []string{"tom", "alan", "emily"}})
	p.each(func(e *Engine) { e.Tick() })
	p.tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "stereo"},
		Context:       &core.Nobody{Place: "bedroom"},
		ContextSource: "nobody at bedroom",
		Users:         []string{"alan", "tom", "emily"},
	})
	p.each(func(e *Engine) { e.Tick() })
	// Occupying the bedroom flips back to the default order.
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-emily": "bedroom"})
	// Leaving it flips to the contextual order again.
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-emily": ""})

	// A later-registered contextual order (distinct context source)
	// supersedes the earlier one while both contexts hold.
	p.tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "stereo"},
		Context:       &core.Everyone{Place: "living room"},
		ContextSource: "everyone at living room",
		Users:         []string{"emily", "alan", "tom"},
	})
	p.each(func(e *Engine) { e.Tick() })
	p.event(device.TypePresenceSensor, "presence sensor", "home", map[string]string{"presence-emily": "living room"})

	if len(p.inc.Log()) < 5 {
		t.Fatalf("only %d firings; churn scenario too quiet to be convincing", len(p.inc.Log()))
	}
}

// TestPriorityChurnRandom drives randomized event streams with priority
// orders registered, replaced and superseded at random points, across every
// evaluator pairing.
func TestPriorityChurnRandom(t *testing.T) {
	churnPairs(t, func(t *testing.T, p *enginePair) {
		t.Helper()
		runPriorityChurnRandom(t, p, 1)
	})
	t.Run("more-seeds", func(t *testing.T) {
		for seed := int64(2); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
				runPriorityChurnRandom(t, newEnginePair(t), seed)
			})
		}
	})
}

func runPriorityChurnRandom(t *testing.T, p *enginePair, seed int64) {
	people := []string{"tom", "alan", "emily", "guest"}
	rooms := []string{"living room", "kitchen", "bedroom"}
	devices := []string{"tv", "stereo", "air conditioner"}
	contexts := []struct {
		cond   core.Condition
		source string
	}{
		{nil, ""},
		{&core.Arrival{Person: "emily", Event: "home-from-shopping"}, "emily got home from shopping"},
		{&core.Nobody{Place: "bedroom"}, "nobody at bedroom"},
		{&core.Everyone{Place: "living room"}, "everyone at living room"},
		{&core.Presence{Person: core.Someone, Place: "kitchen"}, "someone at kitchen"},
		{&core.Compare{Var: "temperature", Op: simplex.GT, Value: 25}, "hot"},
	}

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 24; i++ {
		var cond core.Condition
		cond = &core.Compare{Var: "temperature", Op: simplex.GT, Value: float64(15 + rng.Intn(15))}
		if i%3 == 0 {
			cond = &core.Presence{Person: people[rng.Intn(len(people))], Place: rooms[rng.Intn(len(rooms))]}
		}
		if err := p.db.Add(&core.Rule{
			ID:     fmt.Sprintf("r%d", i),
			Owner:  people[rng.Intn(len(people))],
			Device: core.DeviceRef{Name: devices[rng.Intn(len(devices))]},
			Action: core.Action{Verb: "turn-on", Settings: map[string]core.Value{"level": {IsNumber: true, Number: float64(i)}}},
			Cond:   cond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.each(func(e *Engine) { e.SetUsers(people[:3]) })

	for step := 0; step < 300; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			p.event(device.TypeThermometer, "thermometer", rooms[rng.Intn(len(rooms))],
				map[string]string{"temperature": fmt.Sprintf("%d", 10+rng.Intn(25))})
		case 3, 4:
			place := ""
			if rng.Intn(3) > 0 {
				place = rooms[rng.Intn(len(rooms))]
			}
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-" + people[rng.Intn(len(people))]: place})
		case 5:
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"event": fmt.Sprintf("%s|home-from-shopping|%d", people[rng.Intn(len(people))], step)})
		case 6:
			p.advance(time.Duration(1+rng.Intn(30)) * time.Minute)
		default:
			// Priority churn: a random order (fresh or replacing its slot) on
			// a random device, with a random user permutation.
			users := append([]string(nil), people...)
			rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
			cc := contexts[rng.Intn(len(contexts))]
			p.tbl.Set(conflict.Order{
				Device:        core.DeviceRef{Name: devices[rng.Intn(len(devices))]},
				Context:       cc.cond,
				ContextSource: cc.source,
				Users:         users[:1+rng.Intn(len(users))],
			})
			p.each(func(e *Engine) { e.Tick() })
		}
	}
	if len(p.inc.Log()) < 10 {
		t.Fatalf("only %d firings over 300 steps; stream too quiet to be convincing", len(p.inc.Log()))
	}
}
