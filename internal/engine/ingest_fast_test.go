package engine

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ingest"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// The wire-ingest equivalence suite replays the oracle scenarios with the
// interned engine fed through the byte path — each stimulus is marshalled to
// the HTTP event-body shape, run through the wire decoder, and applied with
// IngestEvent — while the oracle engine takes the same stimulus as a plain
// map through HandleDeviceEvent. Fired logs and owner maps must stay
// byte-identical: decoding plus the byte-keyed ingest caches must be
// invisible next to the string path.

// newWirePair pairs an interned engine fed via the wire decoder against the
// string-keyed map-path oracle.
func newWirePair(t *testing.T) *enginePair {
	p := newEnginePairOpts(t, nil, []Option{WithStringKeys()})
	ev := ingest.AcquireEvent()
	t.Cleanup(ev.Release)
	p.apply = func(e *Engine, deviceType, name, location string, vars map[string]string) {
		if e != p.inc {
			e.HandleDeviceEvent(deviceType, name, location, vars)
			return
		}
		e.IngestEvent(decodeWire(t, ev, deviceType, name, location, vars))
		e.Tick()
	}
	return p
}

func decodeWire(t *testing.T, ev *ingest.Event, deviceType, name, location string, vars map[string]string) *ingest.Event {
	t.Helper()
	body, err := json.Marshal(struct {
		DeviceType string            `json:"deviceType"`
		Name       string            `json:"name"`
		Location   string            `json:"location"`
		Vars       map[string]string `json:"vars"`
	}{deviceType, name, location, vars})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Decode(body); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return ev
}

func TestWireIngestEquivalenceScripted(t *testing.T) {
	runScriptedScenario(t, newWirePair(t))
}

func TestWireIngestEquivalenceRandom(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runRandomScenario(t, newWirePair(t), seed)
		})
	}
}

func TestWireIngestEquivalenceRuleChurn(t *testing.T) {
	runChurnScenario(t, newWirePair(t))
}

// TestWireIngestStringKeysFallback pins the oracle-mode fallback: a
// string-keyed engine fed through IngestEvent materializes the map shape and
// must agree with one fed the map directly.
func TestWireIngestStringKeysFallback(t *testing.T) {
	p := newEnginePairOpts(t, []Option{WithStringKeys()}, []Option{WithStringKeys()})
	ev := ingest.AcquireEvent()
	t.Cleanup(ev.Release)
	p.apply = func(e *Engine, deviceType, name, location string, vars map[string]string) {
		if e != p.inc {
			e.HandleDeviceEvent(deviceType, name, location, vars)
			return
		}
		e.IngestEvent(decodeWire(t, ev, deviceType, name, location, vars))
		e.Tick()
	}
	runScriptedScenario(t, p)
}

// TestWireIngestCompactionInvalidatesByteCaches pins the lifecycle hazard:
// symbol compaction remaps every interned id, so byte-keyed ingest cache
// entries built before an epoch must not survive into the next one.
func TestWireIngestCompactionInvalidatesByteCaches(t *testing.T) {
	db := registry.New()
	add := func(id, varName string, value float64) {
		t.Helper()
		if err := db.Add(&core.Rule{
			ID: id, Owner: "u", Device: core.DeviceRef{Name: "dev-" + id},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: varName, Op: simplex.GT, Value: value},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("keep", "temperature", 25)
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)

	ev := ingest.AcquireEvent()
	t.Cleanup(ev.Release)
	ingestWire := func(temp string) {
		e.IngestEvent(decodeWire(t, ev, device.TypeThermometer, "thermometer", "kitchen",
			map[string]string{"temperature": temp}))
		e.Tick()
	}

	ingestWire("30")
	if owners := e.Owners(); owners["dev-keep"] != "keep" {
		t.Fatalf("owners before compaction: %v", owners)
	}

	// Churn unrelated rules so compaction has garbage, then force an epoch.
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("tmp%d", i), fmt.Sprintf("attic%d/pressure", i), 1)
	}
	for i := 0; i < 50; i++ {
		if err := db.Remove(fmt.Sprintf("tmp%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := e.CompactSymbols(); !ok {
		t.Fatal("compaction did not run")
	}
	if len(e.varCacheB) != 0 || len(e.arrCacheB) != 0 {
		t.Fatalf("byte caches survived compaction: %d var, %d arr",
			len(e.varCacheB), len(e.arrCacheB))
	}

	// The same wire signature rebuilds against the remapped ids; a stale
	// cache would write through dead ids and strand the rule.
	ingestWire("20")
	if owners := e.Owners(); owners["dev-keep"] != "" {
		t.Fatalf("owners after cooling: %v", owners)
	}
	ingestWire("31")
	if owners := e.Owners(); owners["dev-keep"] != "keep" {
		t.Fatalf("owners after re-heating: %v", owners)
	}
}

// TestWireIngestSteadyStateZeroAlloc extends the tentpole's allocation
// budget to the wire path: decode plus IngestEvent plus Tick on a warm
// signature must not allocate.
func TestWireIngestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	db := registry.New()
	if err := db.Add(&core.Rule{
		ID: "hot", Owner: "u", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 50},
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)

	bodies := [][]byte{
		[]byte(`{"deviceType":"urn:schemas-upnp-org:device:thermometer:1","name":"thermometer","location":"kitchen","vars":{"temperature":"20","humidity":"40"}}`),
		[]byte(`{"deviceType":"urn:schemas-upnp-org:device:thermometer:1","name":"thermometer","location":"kitchen","vars":{"temperature":"21","humidity":"41"}}`),
	}
	ev := ingest.AcquireEvent()
	t.Cleanup(ev.Release)
	for _, b := range bodies { // warm the decoder scratch and ingest caches
		if err := ev.Decode(b); err != nil {
			t.Fatal(err)
		}
		e.IngestEvent(ev)
		e.Tick()
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		b := bodies[i%2]
		i++
		if err := ev.Decode(b); err != nil {
			t.Fatal(err)
		}
		e.IngestEvent(ev)
		e.Tick()
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire ingest allocated %.1f allocs/op, want 0", allocs)
	}
}
