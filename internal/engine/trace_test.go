package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/simplex"
)

func TestTraceRingWrapAndReuse(t *testing.T) {
	tr := newTraceRing(3)
	at := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r := tr.start(at, false)
		r.addDirty(fmt.Sprintf("key%d", i))
		r.addCand(fmt.Sprintf("rule%d", i))
		d := r.addDec()
		d.setDevice(core.DeviceRef{Name: fmt.Sprintf("dev%d", i)})
		d.losers = append(d.losers, passLoser{"l", "u"})
	}
	if tr.seq != 5 || tr.n != 3 {
		t.Fatalf("seq=%d n=%d, want 5/3", tr.seq, tr.n)
	}
	// Oldest surviving record is seq 3; newest is 5.
	var seqs []uint64
	var dirt []string
	for i := 0; i < tr.n; i++ {
		start := tr.next - tr.n
		if start < 0 {
			start += len(tr.recs)
		}
		r := &tr.recs[(start+i)%len(tr.recs)]
		seqs = append(seqs, r.seq)
		dirt = append(dirt, r.dirty...)
	}
	if seqs[0] != 3 || seqs[2] != 5 {
		t.Fatalf("seqs = %v, want oldest-first 3..5", seqs)
	}
	if strings.Join(dirt, ",") != "key2,key3,key4" {
		t.Fatalf("dirty keys = %v", dirt)
	}
	// Slot reuse must not leak prior contents.
	r := tr.start(at, true)
	if len(r.dirty) != 0 || len(r.cands) != 0 || len(r.decs) != 0 {
		t.Fatalf("reused slot not truncated: %+v", r)
	}
	d := r.addDec()
	if len(d.losers) != 0 || cap(d.losers) == 0 {
		t.Fatalf("reused decision must keep loser capacity, got len=%d cap=%d",
			len(d.losers), cap(d.losers))
	}
	if d.devName != "" || d.winner != "" || d.fired {
		t.Fatalf("reused decision not zeroed: %+v", d)
	}
}

func TestTraceRecordTruncation(t *testing.T) {
	tr := newTraceRing(1)
	r := tr.start(time.Time{}, false)
	for i := 0; i < traceMaxDirty+5; i++ {
		r.addDirty("k")
	}
	for i := 0; i < traceMaxCands+5; i++ {
		r.addCand("c")
	}
	for i := 0; i < traceMaxDecs+5; i++ {
		d := r.addDec()
		if i < traceMaxDecs && d == nil {
			t.Fatalf("decision %d unexpectedly rejected", i)
		}
		if i >= traceMaxDecs && d != nil {
			t.Fatalf("decision %d exceeded cap", i)
		}
	}
	if len(r.dirty) != traceMaxDirty || len(r.cands) != traceMaxCands || len(r.decs) != traceMaxDecs {
		t.Fatalf("lens = %d/%d/%d", len(r.dirty), len(r.cands), len(r.decs))
	}
	if !r.truncated {
		t.Fatal("truncated flag not set")
	}
	d := r.decs[0]
	winner := &core.Rule{ID: "w", Owner: "u0"}
	list := []*core.Rule{winner}
	for i := 0; i < traceMaxLosers+5; i++ {
		list = append(list, &core.Rule{ID: fmt.Sprintf("l%d", i), Owner: "u"})
	}
	d.setOutcome(winner, conflict.Explain{Rank: -1}, list)
	if len(d.losers) != traceMaxLosers {
		t.Fatalf("losers = %d, want capped at %d", len(d.losers), traceMaxLosers)
	}
}

// TestTraceSnapshotHandoff drives the Fig. 1 hand-off and checks the trace
// explains it: emily's contextual priority beats alan for the TV, and the
// hand-back is recorded when her movie ends.
func TestTraceSnapshotHandoff(t *testing.T) {
	db := registry.New()
	tbl := conflict.NewTable()
	rec := &recorder{}
	clock := &fakeClock{now: time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)}
	e := New(db, tbl, clock.Now, rec.dispatch,
		WithEventTTL(4*time.Hour), WithTrace(16))

	alanRule := compileRule(t,
		"If alan is in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.",
		"alan-tv", "alan")
	emilyRule := compileRule(t,
		"If emily is in the living room and my favorite movie is on air, turn on the tv with 3 of channel setting.",
		"emily-tv", "emily")
	for _, r := range []*core.Rule{alanRule, emilyRule} {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Set(conflict.Order{
		Device:        core.DeviceRef{Name: "tv"},
		Context:       &core.Arrival{Person: "emily", Event: "home-from-shopping"},
		ContextSource: "emily got home from shopping",
		Users:         []string{"emily", "alan", "tom"},
	})
	e.SetFavorites("emily", []string{"roman holiday"})
	e.SetUsers([]string{"tom", "alan", "emily"})

	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-alan": "living room"})
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
		})})
	e.HandleDeviceEvent(device.TypePresenceSensor, "presence sensor", "home",
		map[string]string{"presence-emily": "living room", "event": "emily|home-from-shopping|1"})
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
			{Title: "Roman Holiday", Category: "movie", Keywords: []string{"roman holiday"}},
		})})

	traces := e.TraceSnapshot()
	if len(traces) == 0 {
		t.Fatal("no traces captured")
	}

	// The hand-off pass: emily wins, alan loses, contextual order explains it.
	var handoff *TraceDecision
	for i := range traces {
		for j := range traces[i].Decisions {
			d := &traces[i].Decisions[j]
			if d.Device == "tv" && d.Winner == "emily-tv" && len(d.Losers) > 0 {
				handoff = d
			}
		}
	}
	if handoff == nil {
		t.Fatalf("no hand-off decision in traces: %+v", traces)
	}
	if !handoff.Fired {
		t.Error("hand-off decision not marked fired")
	}
	if handoff.Owner != "emily" {
		t.Errorf("owner = %q, want emily", handoff.Owner)
	}
	if handoff.Losers[0].Rule != "alan-tv" || handoff.Losers[0].Owner != "alan" {
		t.Errorf("losers = %+v, want alan-tv/alan", handoff.Losers)
	}
	if !strings.Contains(handoff.Reason, "emily") ||
		!strings.Contains(handoff.Reason, "#1") ||
		!strings.Contains(handoff.Reason, `"emily got home from shopping"`) {
		t.Errorf("reason = %q, want emily ranked #1 in the contextual order", handoff.Reason)
	}

	// Movie ends: trace records the hand-back to alan.
	e.HandleDeviceEvent(device.TypeEPGTuner, "epg tuner", "home",
		map[string]string{"programs": device.EncodePrograms([]core.Program{
			{Title: "Tigers vs Giants", Category: "baseball game"},
		})})
	traces = e.TraceSnapshot()
	last := traces[len(traces)-1]
	var back *TraceDecision
	for j := range last.Decisions {
		if last.Decisions[j].Device == "tv" {
			back = &last.Decisions[j]
		}
	}
	if back == nil || back.Winner != "alan-tv" || !back.Fired {
		t.Fatalf("hand-back decision = %+v, want alan-tv fired", back)
	}

	// Seqs are strictly increasing oldest-first.
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq <= traces[i-1].Seq {
			t.Fatalf("trace seqs not increasing: %d then %d", traces[i-1].Seq, traces[i].Seq)
		}
	}
}

// TestTraceDirtyAndCandidates: the record names the interned dependency keys
// that triggered the pass and the candidate rules re-checked.
func TestTraceDirtyAndCandidates(t *testing.T) {
	db := registry.New()
	if err := db.Add(&core.Rule{
		ID: "hot", Owner: "tom", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 25},
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil, WithTrace(4))
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "kitchen",
		map[string]string{"temperature": "30"})

	traces := e.TraceSnapshot()
	if len(traces) == 0 {
		t.Fatal("no trace")
	}
	last := traces[len(traces)-1]
	if len(last.Dirty) == 0 || !strings.Contains(strings.Join(last.Dirty, ","), "temperature") {
		t.Errorf("dirty = %v, want the temperature key", last.Dirty)
	}
	foundCand := false
	for _, c := range last.Candidates {
		if c == "hot" {
			foundCand = true
		}
	}
	if !foundCand {
		t.Errorf("candidates = %v, want rule hot", last.Candidates)
	}
	dec := last.Decisions[len(last.Decisions)-1]
	if dec.Device != "fan" || dec.Winner != "hot" || dec.Reason != "sole ready rule" {
		t.Errorf("decision = %+v", dec)
	}
}

// TestTraceEquivalenceVsOracle: full instrumentation (metrics + tracing) on
// the interned path must not perturb evaluation — fired logs and owner maps
// stay byte-identical to the string-keyed oracle.
func TestTraceEquivalenceVsOracle(t *testing.T) {
	m := obs.New(1)
	runScriptedScenario(t, newEnginePairOpts(t,
		[]Option{WithMetrics(&m.Shard(0).Engine), WithTrace(8)},
		[]Option{WithStringKeys()}))
	m2 := obs.New(1)
	runRandomScenario(t, newEnginePairOpts(t,
		[]Option{WithMetrics(&m2.Shard(0).Engine), WithTrace(8)},
		[]Option{WithStringKeys()}), 42)
}

// TestTraceSteadyStateZeroAlloc: after the ring has cycled, a steady-state
// firing pass with metrics and tracing enabled must not allocate.
func TestTraceSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	db := registry.New()
	for i := 0; i < 100; i++ {
		v := "temperature"
		if i > 0 {
			v = fmt.Sprintf("room%d/temperature", i)
		}
		if err := db.Add(&core.Rule{
			ID: fmt.Sprintf("r%d", i), Owner: "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: v, Op: simplex.GT, Value: 50},
		}); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	m := obs.New(1)
	const ringCap = 8
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil,
		WithMetrics(&m.Shard(0).Engine), WithTrace(ringCap))
	events := []map[string]string{
		{"temperature": "20"},
		{"temperature": "21"},
	}
	for i := 1; i < 100; i++ {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", fmt.Sprintf("room%d", i), events[0])
	}
	// Warm the ingest cache and cycle the trace ring so every slot's slice
	// capacities are grown before the measured window.
	for i := 0; i < 2*ringCap+4; i++ {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", events[i%2])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", events[i%2])
		i++
	})
	if allocs != 0 {
		t.Fatalf("instrumented steady-state event allocated %v times, want 0", allocs)
	}
	e.FlushMetrics()
	if m.Shard(0).Engine.Passes.Load() == 0 {
		t.Fatal("metrics not recorded")
	}
	if len(e.TraceSnapshot()) != ringCap {
		t.Fatalf("ring not full: %d", len(e.TraceSnapshot()))
	}
}
