package engine

import (
	"bytes"

	"repro/internal/device"
	"repro/internal/ingest"
)

// IngestEvent applies a wire-decoded event without materializing Go strings
// on the steady-state path. It is the byte-slice twin of Ingest: the decoded
// fields alias the request body, so interning happens here — on the shard
// goroutine that owns this engine's symbol table — through byte-keyed twins
// of the ingest caches. A cache hit costs one map lookup per variable (the
// allocation-free m[string(b)] form); a miss materializes the strings once
// and reuses the existing string-keyed cache builders.
//
// The caller keeps ownership of ev and its slices; the engine retains
// nothing that aliases them.
func (e *Engine) IngestEvent(ev *ingest.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stringKeys {
		// Oracle mode has no id caches to hit; materialize the map shape the
		// string path expects.
		vars := make(map[string]string, len(ev.Vars))
		for _, v := range ev.Vars {
			vars[string(v.Key)] = string(v.Value)
		}
		e.ingestStringLocked(string(ev.DeviceType), string(ev.Name), string(ev.Location), vars)
		return
	}
	for _, v := range ev.Vars {
		e.ingestVarBytesLocked(ev.DeviceType, ev.Name, ev.Location, v.Key, v.Value)
	}
}

func (e *Engine) ingestVarBytesLocked(deviceType, friendlyName, location, name, value []byte) {
	sig := e.sigBytesLocked(deviceType, friendlyName, location, name)
	cv, ok := e.varCacheB[string(sig)]
	if !ok {
		cv = e.varCacheMissLocked(sig, deviceType, friendlyName, location, name)
	}
	switch cv.kind {
	case device.VarKindSpecial:
		e.applySpecialBytesLocked(cv, name, value)
	case device.VarKindNumber:
		// A null value decodes to empty bytes, which ParseFloat rejects —
		// the same silent skip the string path applies.
		if f, ok := ingest.ParseFloat(value); ok {
			for _, id := range cv.keyIDs {
				e.ctx.SetNumberID(id, f)
			}
			e.dirtyIDs.AddAll(cv.dirtyIDs)
		}
	case device.VarKindBool:
		b := (len(value) == 1 && value[0] == '1') || string(value) == "true"
		for _, id := range cv.keyIDs {
			e.ctx.SetBoolID(id, b)
		}
		e.dirtyIDs.AddAll(cv.dirtyIDs)
	default:
		// String vars (mode) are not observable by CADEL conditions in this
		// version; ignored.
	}
}

// sigBytesLocked assembles the combined variable signature in the reusable
// scratch buffer. 0xff separates the fields: decoded event fields are valid
// UTF-8 (the wire decoder coerces invalid sequences to U+FFFD), so the
// separator byte cannot occur inside any of them and the encoding is
// unambiguous.
func (e *Engine) sigBytesLocked(deviceType, friendlyName, location, name []byte) []byte {
	s := e.sigScratch[:0]
	s = append(s, deviceType...)
	s = append(s, 0xff)
	s = append(s, friendlyName...)
	s = append(s, 0xff)
	s = append(s, location...)
	s = append(s, 0xff)
	s = append(s, name...)
	e.sigScratch = s
	return s
}

// varCacheMissLocked materializes a first-sight signature's strings, builds
// (or reuses) the string-keyed cache entry, and memoizes it under the
// combined byte key. Runs once per distinct event signature.
func (e *Engine) varCacheMissLocked(sig, deviceType, friendlyName, location, name []byte) *cachedVar {
	ssig := varSig{
		deviceType:   string(deviceType),
		friendlyName: string(friendlyName),
		location:     string(location),
		name:         string(name),
	}
	cv, ok := e.varCache[ssig]
	if !ok {
		cv = e.buildVarCacheLocked(ssig)
	}
	e.varCacheB[string(sig)] = cv
	return cv
}

// applySpecialBytesLocked is the byte twin of applySpecialInternedLocked.
func (e *Engine) applySpecialBytesLocked(cv *cachedVar, name, value []byte) {
	switch {
	case cv.user != "":
		e.ctx.SetLocationID(cv.userID, e.placeSlotBytesLocked(value))
		e.dirtyIDs.AddAll(cv.dirtyIDs)
	case string(name) == "event":
		// "person|event|seq", person must be non-empty.
		i := bytes.IndexByte(value, '|')
		if i <= 0 {
			return
		}
		rest := value[i+1:]
		event := rest
		if j := bytes.IndexByte(rest, '|'); j >= 0 {
			event = rest[:j]
		}
		arrKey := value[:i+1+len(event)] // the "person|event" prefix
		ids, ok := e.arrCacheB[string(arrKey)]
		if !ok {
			ids = e.buildArrCacheLocked(string(value[:i]), string(event))
			e.arrCacheB[string(arrKey)] = ids
		}
		e.ctx.Now = e.now()
		e.ctx.RecordEventID(ids.key, ids.name)
		e.dirtyIDs.Add(ids.name)
	case string(name) == "programs":
		e.ctx.SetPrograms(device.DecodePrograms(string(value)))
		e.dirtyIDs.Add(e.programsDep)
	}
}

// placeSlotBytesLocked resolves a place name from its wire bytes; the
// memoized hit is one allocation-free map lookup.
func (e *Engine) placeSlotBytesLocked(place []byte) uint32 {
	if len(place) == 0 {
		return 0
	}
	if slot, ok := e.placeSlot[string(place)]; ok {
		return slot
	}
	return e.placeSlotLocked(string(place))
}
