package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
	"repro/internal/simplex"
)

// The interned equivalence suite replays the oracle scenarios with the
// symbol-interned hot path (the default) paired against the retained
// string-keyed path (WithStringKeys): pre-bound condition trees, the
// id-indexed context store and the bitset dirty plumbing must produce
// byte-identical fired logs and owner maps. A second pairing against the
// string-keyed full scan closes the matrix: every evaluator configuration
// agrees with every other.

func TestInternedEquivalenceScripted(t *testing.T) {
	runScriptedScenario(t, newEnginePairOpts(t, nil, []Option{WithStringKeys()}))
}

func TestInternedEquivalenceScriptedVsStringFullScan(t *testing.T) {
	runScriptedScenario(t, newEnginePairOpts(t, nil, []Option{WithStringKeys(), WithFullScan()}))
}

func TestInternedEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runRandomScenario(t, newEnginePairOpts(t, nil, []Option{WithStringKeys()}), seed)
		})
	}
}

func TestInternedEquivalenceRandomVsStringFullScan(t *testing.T) {
	for seed := int64(5); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runRandomScenario(t, newEnginePairOpts(t, nil, []Option{WithStringKeys(), WithFullScan()}), seed)
		})
	}
}

func TestInternedEquivalenceRuleChurn(t *testing.T) {
	runChurnScenario(t, newEnginePairOpts(t, nil, []Option{WithStringKeys()}))
}

// TestInternedSuffixInvalidationMidStream pins the resolution-generation
// semantics end to end: a rule reading the unqualified "temperature" must
// re-resolve when a qualified key the engine has never seen is interned
// mid-stream — including one that sorts before the current winner and an
// exact unqualified key that overrides every suffix match. The string-keyed
// oracle recomputes the suffix scan on every evaluation, so any stale cache
// on the interned side diverges the fired logs.
func TestInternedSuffixInvalidationMidStream(t *testing.T) {
	p := newEnginePairOpts(t, nil, []Option{WithStringKeys()})
	if err := p.db.Add(&core.Rule{
		ID: "hot", Owner: "tom", Device: core.DeviceRef{Name: "fan"},
		Action: core.Action{Verb: "turn-on"},
		Cond:   &core.Compare{Var: "temperature", Op: simplex.GT, Value: 25},
	}); err != nil {
		t.Fatal(err)
	}

	// "kitchen/temperature" resolves the unqualified name; rule fires.
	p.event(device.TypeThermometer, "thermometer", "kitchen", map[string]string{"temperature": "30"})
	if owners := p.inc.Owners(); owners["fan"] != "hot" {
		t.Fatalf("owners = %v, want fan owned via kitchen resolution", owners)
	}

	// A new qualified key that sorts BEFORE kitchen takes over the
	// resolution with a cold value: the rule must lapse.
	p.event(device.TypeThermometer, "thermometer", "attic", map[string]string{"temperature": "10"})
	if owners := p.inc.Owners(); owners["fan"] != "" {
		t.Fatalf("owners = %v, want fan released after attic takes resolution", owners)
	}

	// A key sorting AFTER the winner must not change the resolution.
	p.event(device.TypeThermometer, "thermometer", "zebra room", map[string]string{"temperature": "40"})
	if owners := p.inc.Owners(); owners["fan"] != "" {
		t.Fatalf("owners = %v, want resolution pinned to attic", owners)
	}

	// Updating the winner's value (no population growth) flows through.
	p.event(device.TypeThermometer, "thermometer", "attic", map[string]string{"temperature": "35"})
	if owners := p.inc.Owners(); owners["fan"] != "hot" {
		t.Fatalf("owners = %v, want fan re-owned on attic update", owners)
	}

	// An exact unqualified key wins over every suffix match.
	p.event(device.TypeThermometer, "thermometer", "", map[string]string{"temperature": "5"})
	if owners := p.inc.Owners(); owners["fan"] != "" {
		t.Fatalf("owners = %v, want fan released once exact key wins", owners)
	}
}

// TestInternedSteadyStateZeroAlloc is the tentpole's allocation budget: a
// steady-state single-key sensor event — warm ingest cache, no readiness
// flip, no arbitration — must evaluate with zero heap allocations.
func TestInternedSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	db := registry.New()
	for i := 0; i < 100; i++ {
		v := "temperature"
		if i > 0 {
			v = fmt.Sprintf("room%d/temperature", i)
		}
		if err := db.Add(&core.Rule{
			ID: fmt.Sprintf("r%d", i), Owner: "u",
			Device: core.DeviceRef{Name: fmt.Sprintf("dev%d", i)},
			Action: core.Action{Verb: "turn-on"},
			Cond:   &core.Compare{Var: v, Op: simplex.GT, Value: 50},
		}); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)
	events := []map[string]string{
		{"temperature": "20"},
		{"temperature": "21"},
	}
	for i := 1; i < 100; i++ {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", fmt.Sprintf("room%d", i), events[0])
	}
	for _, ev := range events { // warm the ingest cache for room0
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", ev)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "room0", events[i%2])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state single-key event allocated %v times, want 0", allocs)
	}
}

// TestMalformedPresenceVarIgnored: a bare "presence-" variable (empty user
// name) is rejected identically on every path — recording it would count a
// phantom "" user in the presence quantifiers and diverge the fired logs.
func TestMalformedPresenceVarIgnored(t *testing.T) {
	for name, oracleOpts := range map[string][]Option{
		"vs-stringkeys": {WithStringKeys()},
		"vs-fullscan":   {WithFullScan()},
	} {
		t.Run(name, func(t *testing.T) {
			p := newEnginePairOpts(t, nil, oracleOpts)
			if err := p.db.Add(&core.Rule{
				ID: "off", Owner: "tom", Device: core.DeviceRef{Name: "fluorescent light"},
				Action: core.Action{Verb: "turn-off"},
				Cond:   &core.Nobody{Place: "home"},
			}); err != nil {
				t.Fatal(err)
			}
			p.each(func(e *Engine) { e.SetUsers([]string{"tom"}) })
			// The malformed variable must not register a phantom presence:
			// nobody-at-home still holds and both logs stay identical (the
			// pair's check asserts that after every stimulus).
			p.event(device.TypePresenceSensor, "presence sensor", "home",
				map[string]string{"presence-": "living room"})
			if owners := p.inc.Owners(); owners["fluorescent light"] != "off" {
				t.Fatalf("owners = %v, want nobody-at-home rule in effect", owners)
			}
			if locs := p.inc.Snapshot().Locations; len(locs) != 0 {
				t.Fatalf("Locations = %v, want no phantom user recorded", locs)
			}
		})
	}
}

// TestSnapshotCaching pins the observability path: repeated Snapshot calls
// without context changes return the same object (no clone per poll), any
// data write or clock advance refreshes it, and Context still hands out
// independent deep copies.
func TestSnapshotCaching(t *testing.T) {
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "hall", map[string]string{"temperature": "21"})

	s1 := e.Snapshot()
	s2 := e.Snapshot()
	if s1 != s2 {
		t.Fatal("idle Snapshot calls should return the cached object")
	}
	if v, ok := s1.Number("hall/temperature"); !ok || v != 21 {
		t.Fatalf("snapshot Number = %v,%v", v, ok)
	}

	// A data write invalidates the cache and the new snapshot sees it.
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "hall", map[string]string{"temperature": "22"})
	s3 := e.Snapshot()
	if s3 == s1 {
		t.Fatal("Snapshot not refreshed after context write")
	}
	if v, _ := s3.Number("hall/temperature"); v != 22 {
		t.Fatalf("refreshed snapshot reads %v, want 22", v)
	}
	// The old snapshot is immutable history.
	if v, _ := s1.Number("hall/temperature"); v != 21 {
		t.Fatalf("old snapshot mutated: %v", v)
	}

	// A clock advance (Tick without data change) also refreshes, so
	// time-sensitive reads (event TTLs) stay current.
	now = now.Add(time.Hour)
	e.Tick()
	s4 := e.Snapshot()
	if s4 == s3 {
		t.Fatal("Snapshot not refreshed after clock advance")
	}
	if !s4.Now.Equal(now) {
		t.Fatalf("snapshot Now = %v, want %v", s4.Now, now)
	}

	// Context() clones are private: mutating one touches neither the cache
	// nor the engine.
	c := e.Context()
	c.Numbers["hall/temperature"] = 99
	if v, _ := e.Snapshot().Number("hall/temperature"); v != 22 {
		t.Fatalf("clone mutation leaked into snapshot: %v", v)
	}
}

// TestInternedIngestCacheAcrossSignatures checks that the ingest cache keys
// on the full device signature: the same variable name arriving from
// different locations maps to different context keys.
func TestInternedIngestCacheAcrossSignatures(t *testing.T) {
	db := registry.New()
	now := time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)
	e := New(db, conflict.NewTable(), func() time.Time { return now }, nil)
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "kitchen", map[string]string{"temperature": "20"})
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "hall", map[string]string{"temperature": "25"})
	e.HandleDeviceEvent(device.TypeThermometer, "thermometer", "kitchen", map[string]string{"temperature": "21"})
	ctx := e.Snapshot()
	if v, _ := ctx.Number("kitchen/temperature"); v != 21 {
		t.Fatalf("kitchen = %v, want 21", v)
	}
	if v, _ := ctx.Number("hall/temperature"); v != 25 {
		t.Fatalf("hall = %v, want 25", v)
	}
	// Appliance states keep their name-qualified and room-qualified aliases.
	e.HandleDeviceEvent(device.TypeTV, "tv", "living room", map[string]string{"power": "1"})
	ctx = e.Snapshot()
	for _, key := range []string{"tv/power", "living room/tv/power"} {
		if v, ok := ctx.Bool(key); !ok || !v {
			t.Fatalf("Bool(%q) = %v,%v, want true", key, v, ok)
		}
	}
}
