// Package engine implements the paper's rule execution module: it maintains
// the current context from sensor events, re-evaluates the registered rule
// objects whenever the context changes, arbitrates rules that want the same
// device with the context-attached priority table, and dispatches the
// winning actions to the appliances.
//
// Arbitration is reconciliation-style: for every device the engine tracks
// which rule currently "owns" it (the highest-priority rule whose condition
// holds). When ownership changes — a higher-priority user's rule becomes
// ready, or the current owner's condition lapses — the new owner's action is
// dispatched. This reproduces the hand-offs of the paper's Fig. 1 time
// chart (stereo: Tom → Emily; TV: Alan → Emily).
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
)

// Dispatcher applies a rule action to a device. The home server wires this
// to UPnP control; tests plug in fakes.
type Dispatcher func(ref core.DeviceRef, action core.Action) error

// Fired records one dispatched action for the scenario log.
type Fired struct {
	Time       time.Time
	Rule       *core.Rule
	Suppressed []*core.Rule // ready rules that lost arbitration
	Err        error        // dispatch error, if any
}

func (f Fired) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %-24s %-22s (rule %s, owner %s)",
		f.Time.Format("15:04"), f.Rule.Device.Key(), f.Rule.Action.String(), f.Rule.ID, f.Rule.Owner)
	if len(f.Suppressed) > 0 {
		names := make([]string, len(f.Suppressed))
		for i, r := range f.Suppressed {
			names[i] = r.Owner
		}
		fmt.Fprintf(&sb, " [over %s]", strings.Join(names, ","))
	}
	if f.Err != nil {
		fmt.Fprintf(&sb, " ERROR: %v", f.Err)
	}
	return sb.String()
}

// Engine is the rule execution module.
type Engine struct {
	mu         sync.Mutex
	ctx        *core.Context
	db         *registry.DB
	priorities *conflict.Table
	dispatch   Dispatcher
	now        func() time.Time

	owners map[string]string // device key → owning rule ID
	log    []Fired
	onFire func(Fired)
}

// Option configures the engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithEventTTL sets how long arrival events stay fresh in the context.
func WithEventTTL(ttl time.Duration) Option {
	return optionFunc(func(e *Engine) { e.ctx.EventTTL = ttl })
}

// WithOnFire installs a callback invoked (outside the engine lock) after
// every dispatched action.
func WithOnFire(fn func(Fired)) Option {
	return optionFunc(func(e *Engine) { e.onFire = fn })
}

// New builds an engine over a rule database and priority table. now supplies
// the (simulated or wall) clock; dispatch applies actions.
func New(db *registry.DB, priorities *conflict.Table, now func() time.Time, dispatch Dispatcher, opts ...Option) *Engine {
	e := &Engine{
		ctx:        core.NewContext(now()),
		db:         db,
		priorities: priorities,
		dispatch:   dispatch,
		now:        now,
		owners:     make(map[string]string),
	}
	for _, o := range opts {
		o.apply(e)
	}
	return e
}

// Context returns a snapshot of the current context.
func (e *Engine) Context() *core.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ctx.Clone()
}

// Log returns the fired-action log.
func (e *Engine) Log() []Fired {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Fired, len(e.log))
	copy(out, e.log)
	return out
}

// SetFavorites registers a user's favourite keywords ("my favorite movie").
func (e *Engine) SetFavorites(user string, keywords []string) {
	e.mu.Lock()
	e.ctx.Favorites[user] = append([]string(nil), keywords...)
	e.mu.Unlock()
	e.Tick()
}

// SetUsers registers the known users (needed by nobody/everyone).
func (e *Engine) SetUsers(users []string) {
	e.mu.Lock()
	e.ctx.Users = append([]string(nil), users...)
	e.mu.Unlock()
	e.Tick()
}

// ---- event entry points (wired to UPnP event subscriptions) ----

// HandleDeviceEvent ingests a UPnP property-change event from a device: the
// server passes the device's identity and the changed variables; the engine
// maps them onto context keys and re-evaluates.
func (e *Engine) HandleDeviceEvent(deviceType, friendlyName, location string, vars map[string]string) {
	e.mu.Lock()
	for name, value := range vars {
		switch device.KindOfVar(name) {
		case device.VarKindSpecial:
			e.applySpecialLocked(name, value)
		case device.VarKindNumber:
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
					e.ctx.Numbers[key] = f
				}
			}
		case device.VarKindBool:
			b := value == "1" || value == "true"
			for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
				e.ctx.Bools[key] = b
			}
		default:
			// String vars (mode) are not observable by CADEL conditions in
			// this version; ignored.
		}
	}
	e.evaluateLocked()
}

func (e *Engine) applySpecialLocked(name, value string) {
	switch {
	case strings.HasPrefix(name, "presence-"):
		user := strings.TrimPrefix(name, "presence-")
		e.ctx.Locations[user] = value
	case name == "event":
		// "person|event|seq"
		parts := strings.SplitN(value, "|", 3)
		if len(parts) >= 2 && parts[0] != "" {
			e.ctx.Now = e.now()
			e.ctx.RecordEvent(parts[0], parts[1])
		}
	case name == "programs":
		e.ctx.Programs = device.DecodePrograms(value)
	}
}

// Tick re-evaluates all rules at the current time; the server calls it after
// advancing the simulation clock so time windows and duration conditions
// progress.
func (e *Engine) Tick() {
	e.mu.Lock()
	e.evaluateLocked()
}

// evaluateLocked runs one reconciliation pass. It is entered with e.mu held
// and releases it before invoking dispatch callbacks.
func (e *Engine) evaluateLocked() {
	e.ctx.Now = e.now()
	rules := e.db.All()

	// Maintain duration holds.
	for _, r := range rules {
		core.WalkCond(r.Cond, func(c core.Condition) {
			d, ok := c.(*core.Duration)
			if !ok {
				return
			}
			if d.Inner.Eval(e.ctx) {
				e.ctx.MarkHeld(d.Key)
			} else {
				e.ctx.ClearHeld(d.Key)
			}
		})
	}

	// Group ready rules by device.
	ready := make(map[string][]*core.Rule)
	refs := make(map[string]core.DeviceRef)
	for _, r := range rules {
		if r.Ready(e.ctx) {
			key := r.Device.Key()
			ready[key] = append(ready[key], r)
			refs[key] = r.Device
		}
	}

	// Reconcile ownership per device.
	var fired []Fired
	keys := make([]string, 0, len(ready))
	for key := range ready {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ranked := e.priorities.Arbitrate(refs[key], e.ctx, ready[key])
		winner := ranked[0]
		if e.owners[key] == winner.ID {
			continue // already in effect
		}
		e.owners[key] = winner.ID
		fired = append(fired, Fired{
			Time:       e.ctx.Now,
			Rule:       winner,
			Suppressed: ranked[1:],
		})
	}
	// Devices whose owning rule lapsed lose their owner; the device keeps
	// its last state (the paper defines no un-do semantics).
	for key, ruleID := range e.owners {
		if _, still := ready[key]; !still {
			delete(e.owners, key)
			_ = ruleID
		}
	}

	dispatch := e.dispatch
	onFire := e.onFire
	e.mu.Unlock()

	for i := range fired {
		if dispatch != nil {
			fired[i].Err = dispatch(fired[i].Rule.Device, fired[i].Rule.Action)
		}
		e.mu.Lock()
		e.log = append(e.log, fired[i])
		e.mu.Unlock()
		if onFire != nil {
			onFire(fired[i])
		}
	}
}
