// Package engine implements the paper's rule execution module: it maintains
// the current context from sensor events, re-evaluates the registered rule
// objects whenever the context changes, arbitrates rules that want the same
// device with the context-attached priority table, and dispatches the
// winning actions to the appliances.
//
// Evaluation is incremental. Every context write marks the dependency keys
// it invalidates (core.NumberDirtyKeys and friends) in a dirty set, and an
// evaluation pass only re-evaluates the rules whose dependency set
// (core.CondDeps, inverted-indexed by registry.DB.ByDep) intersects it —
// plus the time-dependent rules whenever the clock has advanced, and rules
// added since the last pass. Per-rule readiness is cached between passes, so
// arbitration reconciles only the devices whose ready-set actually changed,
// or whose contextual priority order was touched by the dirty keys.
//
// The hot path is symbol-interned. By default the engine shares the rule
// database's symbol table (core.Symtab): device events resolve to interned
// context-key and dirty-key ids through a per-signature cache, the context
// stores values in id-indexed slices, conditions evaluate in their pre-bound
// form (core.Bind — no map lookup, no string compare per leaf), the dirty
// set is an id bitset, and per-pass scratch is reused — so a steady-state
// single-key event evaluates with zero heap allocations. The previous
// string-keyed path (map-backed context, string dirty keys, unbound
// conditions) is retained behind WithStringKeys as the oracle the interned
// path must agree with, exactly as WithFullScan retains the naive evaluator
// as the oracle for incrementality.
//
// Arbitration is reconciliation-style: for every device the engine tracks
// which rule currently "owns" it (the highest-priority rule whose condition
// holds). When ownership changes — a higher-priority user's rule becomes
// ready, or the current owner's condition lapses — the new owner's action is
// dispatched. This reproduces the hand-offs of the paper's Fig. 1 time
// chart (stereo: Tom → Emily; TV: Alan → Emily).
//
// The firing path is id-indexed end to end: rules and devices are addressed
// by their interned identity (core.Rule.IDSym/DeviceSym), per-rule readiness
// is a bit slice, per-device ready-sets and ownership are DeviceSym-indexed
// slices, quantified presence conditions and arrivals evaluate against the
// context's counter-backed interned store, and winner selection goes through
// conflict.Table.ArbitrateWinner's owner-rank scan — so a steady-state pass,
// including one that re-arbitrates without an ownership change, performs no
// map iteration and no allocation. The ranked list (and its allocation) is
// built only when ownership actually changes and the suppressed set must be
// logged.
//
// Symbol ids are stable only within a compaction epoch. Rule churn with
// unique names retires ids forever, so the engine watches a dead-id
// watermark (registry.DB.Retired vs symtab size) at churn-pass boundaries
// and runs an epoch (CompactSymbols) that renumbers the live ids densely
// and rewrites every holder — database rules and indexes, context slices,
// the engine's reconciliation state, the priority table's caches — under
// one registry lock (see the epoch/remap contract in internal/core's
// README). Steady-state passes never check the watermark, so the zero-alloc
// hot path is untouched.
package engine

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Dispatcher applies a rule action to a device. The home server wires this
// to UPnP control; tests plug in fakes.
type Dispatcher func(ref core.DeviceRef, action core.Action) error

// BatchDispatcher applies all actions fired by one evaluation pass as a
// single batch, recording any dispatch error in each entry's Err field in
// place. It is invoked outside the engine lock, at most once per pass, and
// must not return before every entry has been dispatched (the engine appends
// the batch to its log when it returns). The fleet hub wires this to a
// dispatch worker pool so a pass's actions go out in parallel.
type BatchDispatcher func(batch []Fired)

// Fired records one dispatched action for the scenario log.
type Fired struct {
	Time       time.Time
	Rule       *core.Rule
	Suppressed []*core.Rule // ready rules that lost arbitration
	Err        error        // dispatch error, if any
}

func (f Fired) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %-24s %-22s (rule %s, owner %s)",
		f.Time.Format("15:04"), f.Rule.Device.Key(), f.Rule.Action.String(), f.Rule.ID, f.Rule.Owner)
	if len(f.Suppressed) > 0 {
		names := make([]string, len(f.Suppressed))
		for i, r := range f.Suppressed {
			names[i] = r.Owner
		}
		fmt.Fprintf(&sb, " [over %s]", strings.Join(names, ","))
	}
	if f.Err != nil {
		fmt.Fprintf(&sb, " ERROR: %v", f.Err)
	}
	return sb.String()
}

// orderDep caches the dependency set of one contextual priority order, so a
// pass can tell whether the dirty keys may have flipped which order applies.
type orderDep struct {
	device core.DeviceRef
	deps   core.DepSet
	ids    []uint32 // interned form of deps.Keys (interned mode only)
}

// varSig identifies one device variable as it arrives in events; the ingest
// cache is keyed by it, so mapping a variable onto interned context keys and
// dirty ids costs one comparable-struct map lookup after first sight.
type varSig struct {
	deviceType, friendlyName, location, name string
}

// cachedVar is the resolved ingest plan for one device-variable signature.
type cachedVar struct {
	kind     device.VarKind
	user     string   // presence-* specials: the user moving
	userID   uint32   // interned user (presence-* specials, interned mode)
	keyIDs   []uint32 // interned context keys the value writes
	dirtyIDs []uint32 // interned dependency ids the write invalidates
}

// arrSig identifies one arrival event's person and event name as cut out of
// the raw "person|event|seq" value; the ingest cache keyed by it maps a
// repeated arrival onto interned ids without building a string.
type arrSig struct {
	person, event string
}

// arrIDs is the resolved ingest plan for one arrival signature: the interned
// "person|event" key and the event name's dependency id (which doubles as
// the dirty key).
type arrIDs struct {
	key, name uint32
}

// Engine is the rule execution module.
type Engine struct {
	mu            sync.Mutex
	ctx           *core.Context
	db            *registry.DB
	tab           *core.Symtab // shared with db; nil in string-keyed mode
	priorities    *conflict.Table
	dispatch      Dispatcher
	batchDispatch BatchDispatcher // when set, replaces the per-action dispatcher
	now           func() time.Time

	fullScan   bool // evaluate every rule on every pass (oracle mode)
	stringKeys bool // string-keyed context + unbound conditions (oracle mode)
	quiet      bool // migration import: reconcile ownership, observe nothing (see SetQuiet)

	passes  uint64 // evaluation passes run
	batches uint64 // dispatch batches handed out (≤ one per pass)
	logCap  int    // keep at most this many log entries; 0 = unbounded
	// compactFloor is the symbol-count floor for automatic symbol
	// compaction (see WithCompactFloor); <= 0 disables the watermark.
	compactFloor int

	// Incremental-evaluation state (unused in full-scan mode).
	dirty      map[string]struct{}   // dirty dependency keys (string-keyed mode)
	dirtyIDs   core.IDSet            // dirty dependency ids (interned mode)
	allDirty   bool                  // re-evaluate everything on the next pass
	dbGen      uint64                // registry generation at the last pass
	tblGen     uint64                // priority-table generation at the last pass
	tblDeps    []orderDep            // cached contextual-order dependencies for tblGen
	lastEvalAt time.Time             // clock reading of the last pass
	timeRules  []*core.Rule          // cached db.TimeDependent() for dbGen
	known      map[string]*core.Rule // rules the engine has synced from the db
	ready      map[string]bool       // rule ID → readiness at the last pass (string-keyed mode)
	readyByDev map[string]map[string]*core.Rule
	refs       map[string]core.DeviceRef // device key → reference (string-keyed mode)

	// Id-indexed reconciliation state (interned mode): rules and devices are
	// addressed by their interned identity (core.Rule.IDSym / DeviceSym), so
	// the per-pass bookkeeping is slice indexing and bitsets instead of
	// string-keyed map-of-map juggling.
	readyBits  []bool           // rule IDSym → readiness at the last pass
	readyRules [][]*core.Rule   // device DeviceSym → ready rules
	devRefs    []core.DeviceRef // device DeviceSym → reference
	devOwner   []uint32         // device DeviceSym → owning rule IDSym (0 = none)
	devSeen    core.IDSet       // DeviceSyms that ever had a ready rule
	devRank    []uint32         // DeviceSym → lexicographic rank among seen devices
	rankStale  bool             // devSeen grew; devRank must be rebuilt

	// Ingest caches (interned mode): first sight of a device variable, an
	// arrival signature, a place name or the EPG feed interns its keys; every
	// later event with the same signature reuses the ids without building a
	// string.
	varCache    map[varSig]*cachedVar
	arrCache    map[arrSig]arrIDs // arrival person+event → interned ids
	placeSlot   map[string]uint32 // place name → interned place id + 1
	programsDep uint32            // interned core.ProgramsDepKey

	// Byte-path ingest caches (interned mode): the wire decoder hands
	// IngestEvent byte slices, so these mirror varCache/arrCache under
	// combined byte-string keys (0xff-separated — decoded fields are valid
	// UTF-8, so the separator cannot occur in them) and are consulted with
	// the allocation-free m[string(b)] lookup form. Invalidated together
	// with the string caches on symbol compaction.
	varCacheB  map[string]*cachedVar
	arrCacheB  map[string]arrIDs
	sigScratch []byte

	// Per-pass scratch, reused across passes and cleared on exit so a
	// steady-state pass allocates nothing.
	scCand    map[string]*core.Rule   // candidate rules to re-evaluate (string-keyed mode)
	scChanged map[string]struct{}     // device keys whose ready-set changed (string-keyed mode)
	scKeys    []string                // sorted device keys to reconcile
	scList    []*core.Rule            // ready-rule list handed to arbitration
	scReady   map[string][]*core.Rule // full-scan mode: ready rules by device
	scRefs    map[string]core.DeviceRef
	scCandSet core.IDSet   // candidate rule IDSyms (interned mode dedup)
	scCands   []*core.Rule // candidate rules (interned mode)
	scDevs    core.IDSet   // DeviceSyms whose ready-set changed (interned mode)
	scDevIDs  []uint32     // reconciliation-order scratch (interned mode)

	// Cached observability snapshot: rebuilt only when the context data (or
	// its clock) actually changed since the last Snapshot call.
	snap    *core.Context
	snapVer uint64

	// Metrics (WithMetrics): deltas accumulate in the plain mAcc fields
	// under the engine lock and flush to the shared atomic block at firing
	// passes and every 32nd pass, so a steady-state pass amortizes to well
	// under one atomic add; the histograms are sampled on the same cadence.
	em   *obs.EngineMetrics
	mAcc metricsAcc

	// Firing trace (WithTrace): a bounded ring of structured pass records,
	// captured on the interned path with every slot's slices reused in
	// place, so steady-state capture allocates nothing once the ring has
	// cycled. traceCap is the requested capacity; the ring itself is built
	// in New once the evaluation mode is known.
	traceCap int
	tr       *traceRing

	owners map[string]string // device key → owning rule ID
	log    []Fired
	onFire func(Fired)
}

// Option configures the engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithEventTTL sets how long arrival events stay fresh in the context.
func WithEventTTL(ttl time.Duration) Option {
	return optionFunc(func(e *Engine) { e.ctx.EventTTL = ttl })
}

// WithOnFire installs a callback invoked (outside the engine lock) after
// every dispatched action.
func WithOnFire(fn func(Fired)) Option {
	return optionFunc(func(e *Engine) { e.onFire = fn })
}

// WithBatchDispatcher routes each pass's fired actions through fn as one
// batch instead of the per-action Dispatcher. fn must fill every entry's Err
// before returning; the engine then appends the whole batch to its log under
// a single lock acquisition.
func WithBatchDispatcher(fn BatchDispatcher) Option {
	return optionFunc(func(e *Engine) { e.batchDispatch = fn })
}

// WithLogLimit caps the fired-action log at roughly n entries, discarding the
// oldest. A fleet-scale hub sets a cap so millions of long-lived homes do not
// grow their logs without bound; the default (0) keeps everything.
func WithLogLimit(n int) Option {
	return optionFunc(func(e *Engine) { e.logCap = n })
}

// metricsAcc batches metric deltas between flushes to the shared atomic
// block (see Engine.flushMetricsLocked).
type metricsAcc struct {
	passes, checked, fired, suppressed, batches uint64
}

// WithMetrics points the engine at a shared metric block (typically its hub
// shard's obs.ShardMetrics.Engine). The engine batches counter deltas under
// its lock and flushes them at firing passes and every 32nd pass; PassNs
// and DirtyKeys are sampled every 32nd pass. nil disables instrumentation
// (the default), overriding an earlier WithMetrics.
func WithMetrics(m *obs.EngineMetrics) Option {
	return optionFunc(func(e *Engine) { e.em = m })
}

// WithTrace keeps a bounded ring of the last n structured pass records —
// triggering dirty keys, candidate rules, per-device arbitration outcome
// with winner, losers and rank reason — retrievable via TraceSnapshot.
// Tracing runs only on the interned evaluation path and keeps it
// allocation-free once the ring has cycled. n <= 0 disables tracing (the
// default), overriding an earlier WithTrace.
func WithTrace(n int) Option {
	return optionFunc(func(e *Engine) { e.traceCap = n })
}

// DefaultCompactFloor is the symbol count below which automatic symbol
// compaction never triggers: small homes never pay a compaction pause, and
// oracle pairings that share one rule database between two interned engines
// (which compaction does not support — see WithCompactFloor) stay safe as
// long as they stay under it.
const DefaultCompactFloor = 4096

// WithCompactFloor tunes the automatic symbol-compaction watermark: at the
// end of an interned evaluation pass that saw rule churn, the engine runs a
// compaction epoch (CompactSymbols) once the symbol table holds at least n
// symbols AND the registry's retired-id estimate says at least half of them
// may be dead. n <= 0 disables automatic compaction entirely.
//
// Compaction rewrites the rule database's symbol ids in place, so it assumes
// this engine is the database's only interned evaluator; a second interned
// engine over the same database (e.g. a full-scan oracle pairing) must
// disable it. String-keyed engines never hold ids and are unaffected.
func WithCompactFloor(n int) Option {
	return optionFunc(func(e *Engine) { e.compactFloor = n })
}

// WithFullScan disables incremental evaluation: every pass re-evaluates
// every registered rule and re-arbitrates every device, exactly as the
// paper's prototype does. Tests use a full-scan engine as the oracle the
// incremental evaluator must agree with; benchmarks use it as the baseline.
func WithFullScan() Option {
	return optionFunc(func(e *Engine) { e.fullScan = true })
}

// WithStringKeys disables the symbol-interned hot path: the context stays
// purely map-backed, conditions evaluate unbound (per-leaf name resolution
// with the suffix scan of Context.Number), and the dirty set holds string
// keys. Tests use a string-keyed engine as the oracle the interned path must
// agree with; benchmarks use it as the baseline the interned path is
// measured against.
func WithStringKeys() Option {
	return optionFunc(func(e *Engine) { e.stringKeys = true })
}

// New builds an engine over a rule database and priority table. now supplies
// the (simulated or wall) clock; dispatch applies actions. Unless
// WithStringKeys is given, the engine adopts the database's symbol table and
// evaluates on the interned hot path.
func New(db *registry.DB, priorities *conflict.Table, now func() time.Time, dispatch Dispatcher, opts ...Option) *Engine {
	e := &Engine{
		ctx:          core.NewContext(now()),
		db:           db,
		priorities:   priorities,
		dispatch:     dispatch,
		now:          now,
		compactFloor: DefaultCompactFloor,
		dirty:        make(map[string]struct{}),
		allDirty:     true,
		known:        make(map[string]*core.Rule),
		ready:        make(map[string]bool),
		readyByDev:   make(map[string]map[string]*core.Rule),
		refs:         make(map[string]core.DeviceRef),
		owners:       make(map[string]string),
		scCand:       make(map[string]*core.Rule),
		scChanged:    make(map[string]struct{}),
		scReady:      make(map[string][]*core.Rule),
		scRefs:       make(map[string]core.DeviceRef),
	}
	for _, o := range opts {
		o.apply(e)
	}
	if !e.stringKeys && db != nil {
		e.tab = db.Symtab()
		ictx := core.NewInternedContext(e.ctx.Now, e.tab)
		ictx.EventTTL = e.ctx.EventTTL
		e.ctx = ictx
		e.varCache = make(map[varSig]*cachedVar)
		e.arrCache = make(map[arrSig]arrIDs)
		e.placeSlot = make(map[string]uint32)
		e.varCacheB = make(map[string]*cachedVar)
		e.arrCacheB = make(map[string]arrIDs)
		e.programsDep = e.tab.Intern(core.ProgramsDepKey)
		if e.traceCap > 0 {
			e.tr = newTraceRing(e.traceCap)
		}
	} else {
		e.stringKeys = true
	}
	return e
}

// Snapshot returns a read-only snapshot of the current context for
// observability (HTTP stats, scenario logs). The snapshot is cached: as long
// as no context data changed and no pass advanced the clock, repeated calls
// return the same object without cloning, so polling does not tax the engine
// lock. Callers must not mutate the result; use Context for a private copy.
func (e *Engine) Snapshot() *core.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap == nil || e.snapVer != e.ctx.Version() || !e.snap.Now.Equal(e.ctx.Now) {
		e.snap = e.ctx.Clone()
		e.snapVer = e.ctx.Version()
	}
	return e.snap
}

// Context returns a mutation-safe copy of the current context. The deep
// clone happens outside the engine lock, from the cached snapshot.
func (e *Engine) Context() *core.Context {
	return e.Snapshot().Clone()
}

// Log returns the fired-action log.
func (e *Engine) Log() []Fired {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Fired, len(e.log))
	copy(out, e.log)
	return out
}

// Passes returns the number of evaluation passes the engine has run. The
// fleet hub reads it to measure ingestion coalescing (events handled per
// pass), and tests use it to pin down "a burst is one pass" semantics.
func (e *Engine) Passes() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.passes
}

// DispatchBatches returns how many dispatch batches the engine has handed
// out. Every pass dispatches its fired set as at most one batch, so this is
// bounded by Passes.
func (e *Engine) DispatchBatches() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batches
}

// flushMetricsLocked publishes the batched metric deltas to the shared
// atomic block. Called with e.mu held, at firing passes and every 32nd
// pass; FlushMetrics exposes it so a stats snapshot can drain the remainder.
func (e *Engine) flushMetricsLocked() {
	a := &e.mAcc
	if a.passes != 0 {
		e.em.Passes.Add(a.passes)
	}
	if a.checked != 0 {
		e.em.RulesChecked.Add(a.checked)
	}
	if a.fired != 0 {
		e.em.RulesFired.Add(a.fired)
	}
	if a.suppressed != 0 {
		e.em.RulesSuppressed.Add(a.suppressed)
	}
	if a.batches != 0 {
		e.em.DispatchBatches.Add(a.batches)
	}
	*a = metricsAcc{}
}

// FlushMetrics publishes any batched metric deltas immediately. The fleet
// hub calls it per home before reading the shard blocks, so stats and
// scrapes observe exact counts instead of up-to-seven-pass-stale ones.
func (e *Engine) FlushMetrics() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.em != nil {
		e.flushMetricsLocked()
	}
}

// Owners returns a snapshot of the device → owning-rule-ID map.
func (e *Engine) Owners() map[string]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.stringKeys && !e.fullScan {
		out := make(map[string]string, e.devSeen.Len())
		for _, dev := range e.devSeen.IDs() {
			if o := e.devOwner[dev]; o != 0 {
				out[e.tab.Name(dev-1)] = e.tab.Name(o - 1)
			}
		}
		return out
	}
	out := make(map[string]string, len(e.owners))
	for k, v := range e.owners {
		out[k] = v
	}
	return out
}

// SetFavorites registers a user's favourite keywords ("my favorite movie").
// Favourites are configuration rather than sensor state, so the next pass
// re-evaluates everything.
func (e *Engine) SetFavorites(user string, keywords []string) {
	e.mu.Lock()
	e.ctx.SetFavorites(user, keywords)
	e.allDirty = true
	e.mu.Unlock()
	e.Tick()
}

// SetUsers registers the known users (needed by nobody/everyone).
func (e *Engine) SetUsers(users []string) {
	e.mu.Lock()
	e.ctx.SetUsers(users)
	e.allDirty = true
	e.mu.Unlock()
	e.Tick()
}

// ---- event entry points (wired to UPnP event subscriptions) ----

// HandleDeviceEvent ingests a UPnP property-change event from a device: the
// server passes the device's identity and the changed variables; the engine
// maps them onto context keys, marks the matching dependency keys dirty, and
// re-evaluates.
func (e *Engine) HandleDeviceEvent(deviceType, friendlyName, location string, vars map[string]string) {
	e.mu.Lock()
	e.ingestLocked(deviceType, friendlyName, location, vars)
	e.evaluateLocked()
}

// Ingest applies a device event's context writes and dirty-key marks without
// running an evaluation pass. The fleet hub uses it to coalesce an event
// burst: ingest every event of the burst, then run a single Tick, which
// evaluates all the accumulated dirty keys in one pass.
func (e *Engine) Ingest(deviceType, friendlyName, location string, vars map[string]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ingestLocked(deviceType, friendlyName, location, vars)
}

func (e *Engine) ingestLocked(deviceType, friendlyName, location string, vars map[string]string) {
	if e.stringKeys {
		e.ingestStringLocked(deviceType, friendlyName, location, vars)
		return
	}
	for name, value := range vars {
		sig := varSig{deviceType, friendlyName, location, name}
		cv, ok := e.varCache[sig]
		if !ok {
			cv = e.buildVarCacheLocked(sig)
		}
		switch cv.kind {
		case device.VarKindSpecial:
			e.applySpecialInternedLocked(cv, name, value)
		case device.VarKindNumber:
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				for _, id := range cv.keyIDs {
					e.ctx.SetNumberID(id, f)
				}
				e.dirtyIDs.AddAll(cv.dirtyIDs)
			}
		case device.VarKindBool:
			b := value == "1" || value == "true"
			for _, id := range cv.keyIDs {
				e.ctx.SetBoolID(id, b)
			}
			e.dirtyIDs.AddAll(cv.dirtyIDs)
		default:
			// String vars (mode) are not observable by CADEL conditions in
			// this version; ignored.
		}
	}
}

// buildVarCacheLocked interns the context keys and dirty ids for one device
// variable and memoizes them; it runs once per distinct event signature.
func (e *Engine) buildVarCacheLocked(sig varSig) *cachedVar {
	cv := &cachedVar{kind: device.KindOfVar(sig.name)}
	switch cv.kind {
	case device.VarKindSpecial:
		// A bare "presence-" (empty user) stays out of the cache plan: the
		// empty cv.user makes the apply step a no-op, matching the string
		// path's rejection of the malformed variable.
		if user, ok := strings.CutPrefix(sig.name, "presence-"); ok && user != "" {
			cv.user = user
			cv.userID = e.tab.Intern(user)
			for _, k := range core.LocationDirtyKeys(user) {
				cv.dirtyIDs = append(cv.dirtyIDs, e.tab.Intern(k))
			}
		}
	case device.VarKindNumber:
		for _, key := range device.ContextKeys(sig.deviceType, sig.friendlyName, sig.location, sig.name) {
			cv.keyIDs = append(cv.keyIDs, e.tab.Intern(key))
			for _, dk := range core.NumberDirtyKeys(key) {
				cv.dirtyIDs = append(cv.dirtyIDs, e.tab.Intern(dk))
			}
		}
	case device.VarKindBool:
		for _, key := range device.ContextKeys(sig.deviceType, sig.friendlyName, sig.location, sig.name) {
			cv.keyIDs = append(cv.keyIDs, e.tab.Intern(key))
			for _, dk := range core.BoolDirtyKeys(key) {
				cv.dirtyIDs = append(cv.dirtyIDs, e.tab.Intern(dk))
			}
		}
	}
	e.varCache[sig] = cv
	return cv
}

func (e *Engine) applySpecialInternedLocked(cv *cachedVar, name, value string) {
	switch {
	case cv.user != "":
		e.ctx.SetLocationID(cv.userID, e.placeSlotLocked(value))
		e.dirtyIDs.AddAll(cv.dirtyIDs)
	case name == "event":
		// "person|event|seq" — Cut instead of Split so the steady state
		// slices the value without allocating.
		person, rest, ok := strings.Cut(value, "|")
		if !ok || person == "" {
			return
		}
		event, _, _ := strings.Cut(rest, "|")
		ids, ok := e.arrCache[arrSig{person, event}]
		if !ok {
			ids = e.buildArrCacheLocked(person, event)
		}
		e.ctx.Now = e.now()
		e.ctx.RecordEventID(ids.key, ids.name)
		e.dirtyIDs.Add(ids.name)
	case name == "programs":
		e.ctx.SetPrograms(device.DecodePrograms(value))
		e.dirtyIDs.Add(e.programsDep)
	}
}

// placeSlotLocked resolves a place name to its interned slot (place id plus
// one; "" = 0), memoized so the steady-state presence churn between known
// places costs one map lookup and no interning lock.
func (e *Engine) placeSlotLocked(place string) uint32 {
	if place == "" {
		return 0
	}
	if slot, ok := e.placeSlot[place]; ok {
		return slot
	}
	slot := e.tab.Intern(place) + 1
	e.placeSlot[strings.Clone(place)] = slot
	return slot
}

// buildArrCacheLocked interns one arrival signature's ids and memoizes them
// under cloned keys (the signature's strings alias the raw event value).
func (e *Engine) buildArrCacheLocked(person, event string) arrIDs {
	person, event = strings.Clone(person), strings.Clone(event)
	ids := arrIDs{
		key:  e.tab.Intern(person + "|" + event),
		name: e.tab.Intern(core.EventDepKey(event)),
	}
	e.arrCache[arrSig{person, event}] = ids
	return ids
}

// ingestStringLocked is the retained string-keyed ingest path (oracle mode).
func (e *Engine) ingestStringLocked(deviceType, friendlyName, location string, vars map[string]string) {
	for name, value := range vars {
		switch device.KindOfVar(name) {
		case device.VarKindSpecial:
			e.applySpecialLocked(name, value)
		case device.VarKindNumber:
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
					e.ctx.SetNumber(key, f)
					e.markDirtyLocked(core.NumberDirtyKeys(key))
				}
			}
		case device.VarKindBool:
			b := value == "1" || value == "true"
			for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
				e.ctx.SetBool(key, b)
				e.markDirtyLocked(core.BoolDirtyKeys(key))
			}
		default:
			// String vars (mode) are not observable by CADEL conditions in
			// this version; ignored.
		}
	}
}

func (e *Engine) markDirtyLocked(keys []string) {
	for _, k := range keys {
		e.dirty[k] = struct{}{}
	}
}

func (e *Engine) applySpecialLocked(name, value string) {
	switch {
	case strings.HasPrefix(name, "presence-"):
		user := strings.TrimPrefix(name, "presence-")
		if user == "" {
			// A bare "presence-" variable is malformed; recording it would
			// count a phantom "" user in the presence quantifiers. The
			// interned ingest path drops it the same way.
			return
		}
		e.ctx.SetLocation(user, value)
		e.markDirtyLocked(core.LocationDirtyKeys(user))
	case name == "event":
		// "person|event|seq"
		parts := strings.SplitN(value, "|", 3)
		if len(parts) >= 2 && parts[0] != "" {
			e.ctx.Now = e.now()
			e.ctx.RecordEvent(parts[0], parts[1])
			e.markDirtyLocked([]string{core.EventDepKey(parts[1])})
		}
	case name == "programs":
		e.ctx.SetPrograms(device.DecodePrograms(value))
		e.markDirtyLocked([]string{core.ProgramsDepKey})
	}
}

// Tick re-evaluates at the current time; the server calls it after advancing
// the simulation clock so time windows, duration conditions and event TTLs
// progress.
func (e *Engine) Tick() {
	e.mu.Lock()
	e.evaluateLocked()
}

// evaluateLocked runs one reconciliation pass. It is entered with e.mu held
// and releases it before invoking dispatch callbacks. The pass's fired set is
// dispatched as a single batch — one BatchDispatcher call (or one loop over
// the per-action Dispatcher) followed by one lock re-acquisition to append
// the whole batch to the log — never a lock round-trip per action.
func (e *Engine) evaluateLocked() {
	if e.quiet {
		// Migration import: run the pass for its state transitions (readiness
		// cache, holds, device ownership) but keep it invisible — nothing
		// dispatched, logged, traced or counted. The fired set the pass
		// computes is exactly the set of rules being ADOPTED as current
		// owners (they already fired once on the migration source).
		e.ctx.Now = e.now()
		em, tr := e.em, e.tr
		e.em, e.tr = nil, nil
		switch {
		case e.fullScan:
			e.fullScanPassLocked()
		case e.stringKeys:
			e.incrementalPassLocked()
		default:
			e.internedPassLocked()
		}
		e.em, e.tr = em, tr
		e.mu.Unlock()
		return
	}
	e.ctx.Now = e.now()
	e.passes++
	// Metrics: histograms are sampled every 32nd pass (two extra clock
	// reads and four atomic adds, amortized under a nanosecond per pass) so
	// the instrumented steady state stays within the CI overhead gate.
	var t0 time.Time
	sampled := e.em != nil && e.passes&31 == 0
	if sampled {
		e.em.DirtyKeys.Observe(uint64(e.dirtyIDs.Len() + len(e.dirty)))
		t0 = time.Now()
	}
	var fired []Fired
	switch {
	case e.fullScan:
		fired = e.fullScanPassLocked()
	case e.stringKeys:
		fired = e.incrementalPassLocked()
	default:
		fired = e.internedPassLocked()
	}
	if len(fired) > 0 {
		e.batches++
	}
	if e.em != nil {
		e.mAcc.passes++
		if n := len(fired); n > 0 {
			e.mAcc.batches++
			e.mAcc.fired += uint64(n)
			for i := range fired {
				e.mAcc.suppressed += uint64(len(fired[i].Suppressed))
			}
		}
		if sampled {
			e.em.PassNs.Observe(uint64(time.Since(t0)))
		}
		if sampled || len(fired) > 0 {
			e.flushMetricsLocked()
		}
	}

	batchDispatch := e.batchDispatch
	dispatch := e.dispatch
	onFire := e.onFire
	e.mu.Unlock()

	if len(fired) == 0 {
		return
	}
	if batchDispatch != nil {
		batchDispatch(fired)
	} else if dispatch != nil {
		for i := range fired {
			fired[i].Err = dispatch(fired[i].Rule.Device, fired[i].Rule.Action)
		}
	}

	e.mu.Lock()
	e.log = append(e.log, fired...)
	if e.logCap > 0 && len(e.log) > 2*e.logCap {
		// Trim with hysteresis so a capped log costs one copy per logCap
		// appends, not one per fire.
		e.log = append(e.log[:0:0], e.log[len(e.log)-e.logCap:]...)
	}
	e.mu.Unlock()

	if onFire != nil {
		for i := range fired {
			onFire(fired[i])
		}
	}
}

// ruleReady evaluates one rule's condition on the mode's evaluation path:
// pre-bound (symbol slots) by default, unbound name resolution in
// string-keyed oracle mode.
func (e *Engine) ruleReady(r *core.Rule) bool {
	if e.stringKeys {
		return r.Ready(e.ctx)
	}
	return r.ReadyBound(e.ctx)
}

// maintainHoldsLocked updates the context's duration-hold marks for one
// rule's condition tree. The interned path iterates the rule's pre-collected
// Duration nodes (usually none) instead of walking the tree.
func (e *Engine) maintainHoldsLocked(r *core.Rule) {
	if !e.stringKeys && r.Bound != nil {
		for _, d := range r.Holds {
			if d.Inner.Eval(e.ctx) {
				e.ctx.MarkHeld(d.Key)
			} else {
				e.ctx.ClearHeld(d.Key)
			}
		}
		return
	}
	core.WalkCond(r.Cond, func(c core.Condition) {
		d, ok := c.(*core.Duration)
		if !ok {
			return
		}
		if d.Inner.Eval(e.ctx) {
			e.ctx.MarkHeld(d.Key)
		} else {
			e.ctx.ClearHeld(d.Key)
		}
	})
}

// fullScanPassLocked is the naive evaluator: walk every rule, rebuild every
// device's ready-set, re-arbitrate every device. Its per-pass maps are
// reused across passes and cleared on exit.
func (e *Engine) fullScanPassLocked() []Fired {
	clear(e.dirty) // tracked but unused in oracle mode
	e.dirtyIDs.Reset()
	rules := e.db.All()
	if e.em != nil {
		e.mAcc.checked += uint64(len(rules))
	}

	// Maintain duration holds.
	for _, r := range rules {
		e.maintainHoldsLocked(r)
	}

	// Group ready rules by device.
	ready := e.scReady
	refs := e.scRefs
	for _, r := range rules {
		if e.ruleReady(r) {
			key := r.Device.Key()
			ready[key] = append(ready[key], r)
			refs[key] = r.Device
		}
	}

	// Reconcile ownership per device.
	var fired []Fired
	keys := e.scKeys[:0]
	for key := range ready {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	e.scKeys = keys
	for _, key := range keys {
		ranked := e.priorities.Arbitrate(refs[key], e.ctx, ready[key])
		winner := ranked[0]
		if e.owners[key] == winner.ID {
			continue // already in effect
		}
		e.owners[key] = winner.ID
		fired = append(fired, Fired{
			Time:       e.ctx.Now,
			Rule:       winner,
			Suppressed: ranked[1:],
		})
	}
	// Devices whose owning rule lapsed lose their owner; the device keeps
	// its last state (the paper defines no un-do semantics).
	for key := range e.owners {
		if _, still := ready[key]; !still {
			delete(e.owners, key)
		}
	}
	e.scReady = resetScratchMap(ready)
	e.scRefs = resetScratchMap(refs)
	return fired
}

// incrementalPassLocked is the string-keyed incremental evaluator (oracle
// mode): dirty keys are strings, readiness is cached in string-keyed maps,
// and arbitration rebuilds owner-position maps. The interned pass
// (internedPassLocked) must agree with it exactly.
func (e *Engine) incrementalPassLocked() []Fired {
	nowChanged := !e.ctx.Now.Equal(e.lastEvalAt)
	e.lastEvalAt = e.ctx.Now

	// Device keys whose ready-set changed this pass.
	changed := e.scChanged

	// Sync rule additions and removals with the database.
	var added []*core.Rule
	if g := e.db.Generation(); g != e.dbGen {
		e.dbGen = g
		e.timeRules = e.db.TimeDependent()
		all := e.db.All()
		current := make(map[string]*core.Rule, len(all))
		for _, r := range all {
			current[r.ID] = r
			// A pointer mismatch means the ID was removed and re-registered
			// with a different rule between passes: evict the stale cached
			// state below, then treat the replacement as newly added.
			if known, ok := e.known[r.ID]; !ok || known != r {
				added = append(added, r)
			}
		}
		for id, r := range e.known {
			if current[id] == r {
				continue
			}
			delete(e.known, id)
			delete(e.ready, id)
			key := r.Device.Key()
			if m := e.readyByDev[key]; m != nil {
				if _, was := m[id]; was {
					delete(m, id)
					changed[key] = struct{}{}
				}
			}
		}
		for _, r := range added {
			e.known[r.ID] = r
		}
	}

	// Collect the candidate rules to re-evaluate.
	candidates := e.scCand
	if e.allDirty {
		for id, r := range e.known {
			candidates[id] = r
		}
	} else {
		// The index can return rules added to the db after this pass's
		// generation sync; only evaluate rules the sync has seen (the rest
		// are picked up as added on the next pass), or cached state could
		// outlive a rule the eviction loop never knew about.
		for key := range e.dirty {
			for _, r := range e.db.ByDep(key) {
				if e.known[r.ID] == r {
					candidates[r.ID] = r
				}
			}
		}
		if nowChanged {
			for _, r := range e.timeRules {
				if e.known[r.ID] == r {
					candidates[r.ID] = r
				}
			}
		}
		for _, r := range added {
			candidates[r.ID] = r
		}
	}

	// Maintain duration holds before readiness: all duration rules are
	// time-dependent, so whenever time advanced they are all candidates and
	// the hold marks stay exactly as the full scan would leave them.
	if e.em != nil {
		e.mAcc.checked += uint64(len(candidates))
	}
	for _, r := range candidates {
		e.maintainHoldsLocked(r)
	}

	// Re-evaluate candidates and diff cached readiness.
	for id, r := range candidates {
		rdy := e.ruleReady(r)
		if rdy == e.ready[id] {
			continue
		}
		e.ready[id] = rdy
		key := r.Device.Key()
		if rdy {
			m := e.readyByDev[key]
			if m == nil {
				m = make(map[string]*core.Rule)
				e.readyByDev[key] = m
				e.refs[key] = r.Device
			}
			m[id] = r
		} else if m := e.readyByDev[key]; m != nil {
			delete(m, id)
		}
		changed[key] = struct{}{}
	}

	// Decide which devices to re-arbitrate: those whose ready-set changed,
	// plus those whose contextual priority order may have flipped.
	arbitrate := changed
	if g := e.priorities.Generation(); g != e.tblGen {
		e.syncTableDepsLocked(g)
		// The table itself changed: every owned or ready device may rank
		// differently now.
		for key, m := range e.readyByDev {
			if len(m) > 0 {
				arbitrate[key] = struct{}{}
			}
		}
	} else {
		for _, od := range e.tblDeps {
			touched := e.allDirty || (od.deps.Time && nowChanged) || od.deps.Intersects(e.dirty)
			if !touched {
				continue
			}
			for key, m := range e.readyByDev {
				if len(m) > 0 && od.device.Matches(e.refs[key]) {
					arbitrate[key] = struct{}{}
				}
			}
		}
	}

	// Reconcile ownership for the affected devices, in sorted key order so
	// the fired log is deterministic (and identical to the full scan's).
	var fired []Fired
	if len(arbitrate) > 0 {
		keys := e.scKeys[:0]
		for key := range arbitrate {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		e.scKeys = keys
		for _, key := range keys {
			m := e.readyByDev[key]
			if len(m) == 0 {
				delete(e.owners, key)
				delete(e.readyByDev, key)
				delete(e.refs, key)
				continue
			}
			list := e.scList[:0]
			for _, r := range m {
				list = append(list, r)
			}
			sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
			ranked := e.priorities.Arbitrate(e.refs[key], e.ctx, list)
			e.scList = list
			winner := ranked[0]
			if e.owners[key] == winner.ID {
				continue
			}
			e.owners[key] = winner.ID
			fired = append(fired, Fired{
				Time:       e.ctx.Now,
				Rule:       winner,
				Suppressed: ranked[1:],
			})
		}
	}

	clear(e.dirty)
	e.allDirty = false
	e.scCand = resetScratchMap(candidates)
	e.scChanged = resetScratchMap(changed)
	return fired
}

// syncTableDepsLocked recomputes the cached contextual-order dependency sets
// for a new priority-table generation (interning them when in interned mode).
func (e *Engine) syncTableDepsLocked(gen uint64) {
	e.tblGen = gen
	e.tblDeps = e.tblDeps[:0]
	for _, o := range e.priorities.Orders() {
		if o.Context != nil {
			od := orderDep{device: o.Device, deps: core.CondDeps(o.Context)}
			if !e.stringKeys {
				od.ids = od.deps.IDsIn(e.tab)
			}
			e.tblDeps = append(e.tblDeps, od)
		}
	}
}

// internedPassLocked is the id-indexed incremental evaluator — the default
// firing path. It mirrors incrementalPassLocked step for step, but every
// piece of per-pass bookkeeping is addressed by interned ids: candidates are
// deduplicated through a rule-id bitset, readiness lives in an IDSym-indexed
// bit slice, ready rules are grouped in DeviceSym-indexed slices, ownership
// is a DeviceSym-indexed id vector, and reconciliation order comes from a
// cached lexicographic device rank — so a steady-state pass (and a
// steady-state re-arbitration whose winner does not change) performs no map
// iteration, no string comparison and no allocation.
func (e *Engine) internedPassLocked() []Fired {
	nowChanged := !e.ctx.Now.Equal(e.lastEvalAt)
	e.lastEvalAt = e.ctx.Now

	// Sync rule additions and removals with the database.
	var added []*core.Rule
	churned := false
	if g := e.db.Generation(); g != e.dbGen {
		churned = true
		e.dbGen = g
		e.timeRules = e.db.TimeDependent()
		all := e.db.All()
		current := make(map[string]*core.Rule, len(all))
		for _, r := range all {
			current[r.ID] = r
			// A pointer mismatch means the ID was removed and re-registered
			// with a different rule between passes: evict the stale cached
			// state below, then treat the replacement as newly added.
			if known, ok := e.known[r.ID]; !ok || known != r {
				added = append(added, r)
			}
		}
		for id, r := range e.known {
			if current[id] == r {
				continue
			}
			delete(e.known, id)
			if int(r.IDSym) < len(e.readyBits) && e.readyBits[r.IDSym] {
				e.readyBits[r.IDSym] = false
				e.dropReadyLocked(r)
				e.scDevs.Add(r.DeviceSym)
			}
		}
		for _, r := range added {
			e.known[r.ID] = r
		}
	}

	// Collect the candidate rules to re-evaluate, deduplicated through the
	// rule-id bitset.
	cands := e.scCands[:0]
	if e.allDirty {
		for _, r := range e.known {
			if e.scCandSet.Add(r.IDSym) {
				cands = append(cands, r)
			}
		}
	} else {
		// As in the string pass: only evaluate rules the generation sync has
		// seen, or cached state could outlive a rule the eviction loop never
		// knew about.
		for _, depID := range e.dirtyIDs.IDs() {
			for _, r := range e.db.ByDepID(depID) {
				if e.known[r.ID] == r && e.scCandSet.Add(r.IDSym) {
					cands = append(cands, r)
				}
			}
		}
		if nowChanged {
			for _, r := range e.timeRules {
				if e.known[r.ID] == r && e.scCandSet.Add(r.IDSym) {
					cands = append(cands, r)
				}
			}
		}
		for _, r := range added {
			if e.known[r.ID] == r && e.scCandSet.Add(r.IDSym) {
				cands = append(cands, r)
			}
		}
	}

	if e.em != nil {
		e.mAcc.checked += uint64(len(cands))
	}

	// Maintain duration holds before readiness (see incrementalPassLocked).
	for _, r := range cands {
		e.maintainHoldsLocked(r)
	}

	// Re-evaluate candidates and diff cached readiness.
	for _, r := range cands {
		rdy := r.ReadyBound(e.ctx)
		for int(r.IDSym) >= len(e.readyBits) {
			e.readyBits = append(e.readyBits, false)
		}
		if rdy == e.readyBits[r.IDSym] {
			continue
		}
		e.readyBits[r.IDSym] = rdy
		dev := r.DeviceSym
		if rdy {
			for int(dev) >= len(e.readyRules) {
				e.readyRules = append(e.readyRules, nil)
				e.devRefs = append(e.devRefs, core.DeviceRef{})
				e.devOwner = append(e.devOwner, 0)
			}
			if e.devSeen.Add(dev) {
				e.rankStale = true
				e.devRefs[dev] = r.Device
			}
			e.readyRules[dev] = append(e.readyRules[dev], r)
		} else {
			e.dropReadyLocked(r)
		}
		e.scDevs.Add(dev)
	}

	// Decide which devices to re-arbitrate: those whose ready-set changed,
	// plus those whose contextual priority order may have flipped.
	if g := e.priorities.Generation(); g != e.tblGen {
		e.syncTableDepsLocked(g)
		for _, dev := range e.devSeen.IDs() {
			if len(e.readyRules[dev]) > 0 {
				e.scDevs.Add(dev)
			}
		}
	} else {
		for _, od := range e.tblDeps {
			touched := e.allDirty || (od.deps.Time && nowChanged) || e.dirtyIDs.IntersectsAny(od.ids)
			if !touched {
				continue
			}
			for _, dev := range e.devSeen.IDs() {
				if len(e.readyRules[dev]) > 0 && od.device.Matches(e.devRefs[dev]) {
					e.scDevs.Add(dev)
				}
			}
		}
	}

	// Firing trace: claim and fill a ring slot only when the pass has work
	// (steady empty ticks do not churn the ring). Dirty names resolve
	// through the symtab here, before the pass resets the dirty set; the
	// recorded strings are the interner's own, so records stay valid across
	// compaction epochs.
	var rec *passRec
	if e.tr != nil && (len(cands) > 0 || churned || e.allDirty || e.dirtyIDs.Len() > 0 || e.scDevs.Len() > 0) {
		rec = e.tr.start(e.ctx.Now, e.allDirty)
		for _, id := range e.dirtyIDs.IDs() {
			rec.addDirty(e.tab.Name(id))
		}
		for _, r := range cands {
			rec.addCand(r.ID)
		}
	}

	// Reconcile ownership for the affected devices, ordered by the devices'
	// lexicographic rank so the fired log is deterministic and identical to
	// the string-keyed passes' sorted-key order.
	var fired []Fired
	if e.scDevs.Len() > 0 {
		if e.rankStale {
			e.rebuildDevRankLocked()
		}
		devs := append(e.scDevIDs[:0], e.scDevs.IDs()...)
		slices.SortFunc(devs, func(a, b uint32) int { return int(e.devRank[a]) - int(e.devRank[b]) })
		e.scDevIDs = devs
		for _, dev := range devs {
			list := e.readyRules[dev]
			var dec *passDec
			if rec != nil {
				if dec = rec.addDec(); dec != nil {
					dec.setDevice(e.devRefs[dev])
				}
			}
			if len(list) == 0 {
				if dec != nil {
					dec.fired = e.devOwner[dev] != 0 // ownership lapsed
				}
				e.devOwner[dev] = 0
				continue
			}
			var winner *core.Rule
			if dec != nil {
				// The explain variant shares the winner scan but also
				// resolves which priority order applied, so the trace can
				// answer "why does this rule hold the device".
				var ex conflict.Explain
				winner, ex = e.priorities.ArbitrateWinnerExplain(e.devRefs[dev], e.ctx, list)
				dec.setOutcome(winner, ex, list)
			} else {
				winner = e.priorities.ArbitrateWinner(e.devRefs[dev], e.ctx, list)
			}
			if e.devOwner[dev] == winner.IDSym {
				continue
			}
			// Ownership changed: build the full ranked list for the log. The
			// recorded owner comes from the ranked list, not the earlier
			// winner scan: a concurrent Table.Set between the two calls may
			// re-rank, and owner, dispatch and log must agree (the table's
			// generation bump re-arbitrates on the next pass regardless).
			ranked := e.priorities.Arbitrate(e.devRefs[dev], e.ctx, list)
			if e.devOwner[dev] == ranked[0].IDSym {
				continue
			}
			e.devOwner[dev] = ranked[0].IDSym
			if dec != nil {
				dec.fired = true
				if ranked[0] != winner {
					// A concurrent Table.Set re-ranked between the two scans;
					// the trace records the rule that actually took ownership.
					dec.winner, dec.winnerOwner = ranked[0].ID, ranked[0].Owner
				}
			}
			fired = append(fired, Fired{
				Time:       e.ctx.Now,
				Rule:       ranked[0],
				Suppressed: ranked[1:],
			})
		}
	}

	e.dirtyIDs.Reset()
	e.allDirty = false
	clear(cands)
	e.scCands = cands[:0]
	e.scCandSet.Reset()
	e.scDevs.Reset()

	// Dead-id watermark: only passes that saw rule churn can have retired
	// ids, so the steady state never takes the registry lock or the symtab
	// lock here. The epoch runs at this pass boundary, with the engine's
	// cached rule state freshly in sync.
	if churned && e.compactFloor > 0 {
		if n := e.tab.Len(); n >= e.compactFloor && 2*e.db.Retired() >= uint64(n) {
			e.compactLocked()
		}
	}
	return fired
}

// ---- symbol compaction (epoch/remap contract) ----

// CompactStats reports one symbol-compaction epoch.
type CompactStats struct {
	// Before and After are the symbol-table lengths around the epoch.
	Before int `json:"symbols_before"`
	After  int `json:"symbols_after"`
	// Epoch is the symbol table's epoch counter after the compaction.
	Epoch uint64 `json:"epoch"`
}

// SymbolStats is an engine's symbol-table and id-slice footprint, for
// idle-memory observability: how many symbols are interned, an upper-bound
// estimate of how many are dead (retired by rule removals since the last
// epoch), the compaction epoch, and the lengths of the id-indexed stores
// that grow with the id space. All zero for string-keyed engines.
type SymbolStats struct {
	Symbols      int    `json:"symbols"`
	DeadEstimate uint64 `json:"dead_estimate"`
	Epoch        uint64 `json:"epoch"`
	NumSlots     int    `json:"num_slots"`
	BoolSlots    int    `json:"bool_slots"`
	LocSlots     int    `json:"loc_slots"`
	EventSlots   int    `json:"event_slots"`
	ReadySlots   int    `json:"ready_slots"`
}

// SymbolStats returns the engine's current symbol footprint.
func (e *Engine) SymbolStats() SymbolStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tab == nil {
		return SymbolStats{}
	}
	st := SymbolStats{
		Symbols:      e.tab.Len(),
		DeadEstimate: e.db.Retired(),
		Epoch:        e.tab.Epoch(),
		ReadySlots:   len(e.readyBits),
	}
	st.NumSlots, st.BoolSlots, st.LocSlots, st.EventSlots = e.ctx.IDSliceLens()
	return st
}

// CompactSymbols forces a symbol-compaction epoch: run an evaluation pass to
// sync with the rule database, then renumber the live symbols densely and
// rewrite every id holder (database rules and indexes, context slices,
// reconciliation state, priority-table caches). ok is false when the engine
// runs an oracle mode (string-keyed engines hold no ids; full-scan engines
// keep no synced rule state) or when concurrent rule churn kept outrunning
// the sync. Automatic compaction calls the same machinery from the
// watermark check at churn-pass boundaries.
func (e *Engine) CompactSymbols() (CompactStats, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		e.mu.Lock()
		if e.stringKeys || e.fullScan {
			e.mu.Unlock()
			return CompactStats{}, false
		}
		e.evaluateLocked() // releases e.mu
		e.mu.Lock()
		st, ok := e.compactLocked()
		e.mu.Unlock()
		if ok {
			return st, true
		}
	}
	return CompactStats{}, false
}

// compactLocked runs one compaction epoch under the engine lock, at a pass
// boundary. The whole renumbering happens inside the database lock
// (registry.DB.CompactSymtab), so no rule mutation interleaves; the ifGen
// guard refuses the epoch if the database moved past the engine's last sync,
// in which case the caller retries at the next sync point.
func (e *Engine) compactLocked() (CompactStats, bool) {
	if e.stringKeys || e.fullScan || e.tab == nil {
		return CompactStats{}, false
	}
	res, ok := e.db.CompactSymtab(e.dbGen, func(live *core.IDSet) {
		e.ctx.MarkLive(live)
	}, func(remap []uint32) {
		e.ctx.Remap(remap, e.tab.Len())
		e.remapStateLocked(remap)
	})
	if !ok {
		return CompactStats{}, false
	}
	// The priority table's per-device caches hold pre-remap ids and cannot
	// notice the renumbering (the symtab pointer is unchanged); invalidating
	// bumps its generation, so the next pass re-syncs the cached order
	// dependencies and re-arbitrates — winners are unchanged, so nothing
	// fires.
	e.priorities.Invalidate()
	if e.em != nil {
		e.em.CompactEpochs.Inc()
	}
	return CompactStats{Before: res.Before, After: res.After, Epoch: res.Epoch}, true
}

// remapStateLocked rewrites the engine's id-indexed reconciliation state for
// a compaction epoch and drops the ingest caches (they memoize pre-remap
// ids; the next event per signature re-interns against the compacted table).
// It runs inside the database lock, after the database rewrote its rules.
func (e *Engine) remapStateLocked(remap []uint32) {
	n := e.tab.Len()

	// Rule readiness: every set bit belongs to a known (hence live) rule.
	readyBits := make([]bool, n+1)
	for i, rdy := range e.readyBits {
		if rdy {
			readyBits[remap[i-1]+1] = true
		}
	}
	e.readyBits = readyBits

	// Device-indexed state: seen devices with remaining state move to their
	// new ids; devices whose rules were all removed earlier may be dead, and
	// by construction their ready list is empty and their owner cleared, so
	// they are simply forgotten.
	readyRules := make([][]*core.Rule, n+1)
	devRefs := make([]core.DeviceRef, n+1)
	devOwner := make([]uint32, n+1)
	var devSeen core.IDSet
	for _, dev := range e.devSeen.IDs() {
		nd := remap[dev-1]
		if nd == core.DeadID {
			continue
		}
		readyRules[nd+1] = e.readyRules[dev]
		devRefs[nd+1] = e.devRefs[dev]
		if o := e.devOwner[dev]; o != 0 {
			devOwner[nd+1] = remap[o-1] + 1
		}
		devSeen.Add(nd + 1)
	}
	e.readyRules, e.devRefs, e.devOwner, e.devSeen = readyRules, devRefs, devOwner, devSeen
	e.devRank = nil
	e.rankStale = true

	// Pending dirty ids (ingested but not yet evaluated): a dirty id that
	// died has no live rule depending on it, so dropping it is sound; new
	// rules re-intern their dependencies and are candidates on their first
	// pass regardless.
	dirty := append([]uint32(nil), e.dirtyIDs.IDs()...)
	e.dirtyIDs = core.IDSet{}
	for _, id := range dirty {
		if nid := remap[id]; nid != core.DeadID {
			e.dirtyIDs.Add(nid)
		}
	}
	e.scCandSet, e.scDevs = core.IDSet{}, core.IDSet{}
	e.scDevIDs = nil

	clear(e.varCache)
	clear(e.arrCache)
	clear(e.placeSlot)
	clear(e.varCacheB)
	clear(e.arrCacheB)
	e.programsDep = e.tab.Intern(core.ProgramsDepKey)
}

// dropReadyLocked removes a rule from its device's ready list by identity
// (order is irrelevant: arbitration is a total order over the list).
func (e *Engine) dropReadyLocked(r *core.Rule) {
	if int(r.DeviceSym) >= len(e.readyRules) {
		return
	}
	list := e.readyRules[r.DeviceSym]
	for i, x := range list {
		if x == r {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = nil
			e.readyRules[r.DeviceSym] = list[:last]
			return
		}
	}
}

// rebuildDevRankLocked recomputes the lexicographic rank of every seen
// device key. It runs only when a device is seen for the first time — the
// only event that can change relative order — so steady-state passes sort
// device ids by a cached integer rank instead of comparing strings.
func (e *Engine) rebuildDevRankLocked() {
	ids := append([]uint32(nil), e.devSeen.IDs()...)
	slices.SortFunc(ids, func(a, b uint32) int {
		return strings.Compare(e.tab.Name(a-1), e.tab.Name(b-1))
	})
	for _, id := range ids {
		for int(id) >= len(e.devRank) {
			e.devRank = append(e.devRank, 0)
		}
	}
	for rank, id := range ids {
		e.devRank[id] = uint32(rank)
	}
	e.rankStale = false
}

// scratchShrink bounds how large a reused per-pass scratch map may stay.
// clear() costs O(bucket count) no matter how few entries are left, so after
// a rare huge pass (allDirty re-evaluating every rule) holding on to the
// grown map would tax every steady-state pass; dropping it restores O(1)
// amortized clearing at the cost of one allocation on the next big pass.
const scratchShrink = 512

// resetScratchMap empties a per-pass scratch map for reuse, replacing it
// when it grew past scratchShrink.
func resetScratchMap[V any](m map[string]V) map[string]V {
	if len(m) > scratchShrink {
		return make(map[string]V)
	}
	clear(m)
	return m
}
